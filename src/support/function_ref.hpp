// Non-owning callable reference, a minimal stand-in for C++26
// std::function_ref. Used on the thread-pool dispatch path where a
// heap-allocating std::function would be unacceptable.
#pragma once

#include <type_traits>
#include <utility>

namespace nbody::support {

template <class Signature>
class function_ref;  // undefined primary

/// Type-erased, non-owning view of a callable with signature R(Args...).
///
/// The referenced callable must outlive the function_ref. Copy is shallow.
template <class R, class... Args>
class function_ref<R(Args...)> {
 public:
  template <class F,
            class = std::enable_if_t<!std::is_same_v<std::decay_t<F>, function_ref> &&
                                     std::is_invocable_r_v<R, F&, Args...>>>
  function_ref(F&& f) noexcept  // NOLINT(google-explicit-constructor): mirrors std::function_ref
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return call_(obj_, std::forward<Args>(args)...); }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace nbody::support
