#include "support/timer.hpp"

#include <algorithm>
#include <numeric>

namespace nbody::support {

double PhaseTimer::seconds(std::string_view name) const {
  auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) return 0.0;
  return totals_[static_cast<std::size_t>(it - names_.begin())];
}

double PhaseTimer::total() const {
  return std::accumulate(totals_.begin(), totals_.end(), 0.0);
}

void PhaseTimer::reattribute_since(const std::vector<double>& snap, std::string_view to) {
  double moved = 0.0;
  for (std::size_t i = 0; i < totals_.size(); ++i) {
    const double base = i < snap.size() ? snap[i] : 0.0;
    const double delta = totals_[i] - base;
    if (delta <= 0.0) continue;
    totals_[i] = base;
    moved += delta;
  }
  if (moved > 0.0) add(to, moved);
}

void PhaseTimer::clear() {
  names_.clear();
  totals_.clear();
}

std::size_t PhaseTimer::index_of(std::string_view name) {
  auto it = std::find(names_.begin(), names_.end(), name);
  if (it != names_.end()) return static_cast<std::size_t>(it - names_.begin());
  names_.emplace_back(name);
  totals_.push_back(0.0);
  return names_.size() - 1;
}

}  // namespace nbody::support
