// Minimal command-line option parser for the example applications.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` options with
// typed accessors and defaults; collects bare positionals. Unknown options
// are an error (typo protection). Deliberately tiny: no subcommands, no
// abbreviations.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace nbody::support {

class CliParser {
 public:
  /// Declare a value option. `help` is printed by usage().
  void add_option(std::string name, std::string help, std::string default_value) {
    specs_[name] = Spec{std::move(help), std::move(default_value), /*is_flag=*/false};
  }

  /// Declare a boolean flag (false unless present).
  void add_flag(std::string name, std::string help) {
    specs_[name] = Spec{std::move(help), "false", /*is_flag=*/true};
  }

  /// Parses argv. Throws std::invalid_argument on unknown options, missing
  /// values, or malformed input.
  void parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positionals_.push_back(std::move(arg));
        continue;
      }
      std::string name = arg.substr(2);
      std::optional<std::string> inline_value;
      if (const auto eq = name.find('='); eq != std::string::npos) {
        inline_value = name.substr(eq + 1);
        name = name.substr(0, eq);
      }
      const auto it = specs_.find(name);
      if (it == specs_.end())
        throw std::invalid_argument("unknown option --" + name);
      if (it->second.is_flag) {
        if (inline_value)
          throw std::invalid_argument("flag --" + name + " takes no value");
        values_[name] = "true";
      } else if (inline_value) {
        values_[name] = *inline_value;
      } else {
        if (i + 1 >= argc)
          throw std::invalid_argument("option --" + name + " needs a value");
        values_[name] = argv[++i];
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& name) const {
    if (const auto v = values_.find(name); v != values_.end()) return v->second;
    const auto s = specs_.find(name);
    if (s == specs_.end()) throw std::invalid_argument("undeclared option --" + name);
    return s->second.default_value;
  }

  [[nodiscard]] std::size_t get_size(const std::string& name) const {
    const std::string v = get(name);
    std::size_t pos = 0;
    const auto out = std::stoull(v, &pos);
    if (pos != v.size())
      throw std::invalid_argument("--" + name + ": expected integer, got '" + v + "'");
    return static_cast<std::size_t>(out);
  }

  [[nodiscard]] double get_double(const std::string& name) const {
    const std::string v = get(name);
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size())
      throw std::invalid_argument("--" + name + ": expected number, got '" + v + "'");
    return out;
  }

  [[nodiscard]] bool get_flag(const std::string& name) const { return get(name) == "true"; }

  [[nodiscard]] bool was_set(const std::string& name) const {
    return values_.count(name) != 0;
  }

  [[nodiscard]] const std::vector<std::string>& positionals() const { return positionals_; }

  /// One line per declared option, sorted by name.
  [[nodiscard]] std::string usage() const {
    std::string out;
    for (const auto& [name, spec] : specs_) {
      out += "  --" + name;
      if (!spec.is_flag) out += " <" + spec.default_value + ">";
      out += "  " + spec.help + "\n";
    }
    return out;
  }

 private:
  struct Spec {
    std::string help;
    std::string default_value;
    bool is_flag = false;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace nbody::support
