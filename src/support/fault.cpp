#include "support/fault.hpp"

#include <array>
#include <mutex>

#include "support/env.hpp"

namespace nbody::support {

namespace {

constexpr std::array<const char*, kFaultSiteCount> kSiteNames = {
    "exec.pool.task", "exec.algo.chunk", "octree.node_alloc", "snapshot.write",
    "snapshot.read",  "exec.chunk.hang",
};

struct SiteState {
  FaultConfig cfg;
  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<std::uint64_t> fires{0};
  std::uint64_t threshold = 0;  // fire when hash(seed, tick) < threshold
};

SiteState g_sites[kFaultSiteCount];
std::mutex g_arm_mutex;  // serializes arm/disarm (fault_point stays lock-free)

// SplitMix64: the per-tick decision hash. Full-period, cheap, and the same
// generator support/rng.hpp seeds from, so firing sequences are portable.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D49BB133111EB2ull;
  return x ^ (x >> 31);
}

std::uint64_t rate_threshold(double rate) noexcept {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return ~std::uint64_t{0};
  return static_cast<std::uint64_t>(rate * 18446744073709551616.0 /* 2^64 */);
}

// Arm NBODY_FAULTS at static initialization so instrumented binaries honor
// the environment without any explicit setup call.
const bool g_env_armed = [] {
  try {
    arm_faults_from_env();
  } catch (const std::exception&) {
    // A malformed spec at startup must not terminate before main(); the
    // explicit arm_faults_from_env() call (CLI) reports it properly.
  }
  return true;
}();

}  // namespace

namespace fault_detail {

std::atomic<std::uint32_t> g_armed_mask{0};

bool should_fire(FaultSite site) noexcept {
  auto& st = g_sites[static_cast<std::size_t>(site)];
  const std::uint64_t tick = st.evaluations.fetch_add(1, std::memory_order_relaxed);
  if (tick < st.cfg.skip) return false;
  if (st.threshold == 0) return false;
  if (st.threshold != ~std::uint64_t{0} &&
      splitmix64(st.cfg.seed ^ (tick * 0xD1342543DE82EF95ull)) >= st.threshold)
    return false;
  if (st.cfg.max_fires != 0) {
    // Consume one unit of the injection budget; losers of the race between
    // the last units simply do not fire.
    const std::uint64_t prior = st.fires.fetch_add(1, std::memory_order_relaxed);
    if (prior >= st.cfg.max_fires) return false;
  } else {
    st.fires.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void throw_fault(FaultSite site) {
  const auto& st = g_sites[static_cast<std::size_t>(site)];
  throw FaultInjected(site, st.evaluations.load(std::memory_order_relaxed));
}

}  // namespace fault_detail

FaultInjected::FaultInjected(FaultSite site, std::uint64_t tick)
    : std::runtime_error(std::string("injected fault at site '") + fault_site_name(site) +
                         "' (evaluation #" + std::to_string(tick) + ")"),
      site_(site),
      tick_(tick) {}

const char* fault_site_name(FaultSite site) noexcept {
  return kSiteNames[static_cast<std::size_t>(site)];
}

std::optional<FaultSite> fault_site_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i)
    if (name == kSiteNames[i]) return static_cast<FaultSite>(i);
  return std::nullopt;
}

void arm_fault(FaultSite site, FaultConfig cfg) {
  std::lock_guard lock(g_arm_mutex);
  auto& st = g_sites[static_cast<std::size_t>(site)];
  st.cfg = cfg;
  st.threshold = rate_threshold(cfg.rate);
  st.evaluations.store(0, std::memory_order_relaxed);
  st.fires.store(0, std::memory_order_relaxed);
  fault_detail::g_armed_mask.fetch_or(1u << static_cast<unsigned>(site),
                                      std::memory_order_relaxed);
}

void disarm_fault(FaultSite site) noexcept {
  std::lock_guard lock(g_arm_mutex);
  fault_detail::g_armed_mask.fetch_and(~(1u << static_cast<unsigned>(site)),
                                       std::memory_order_relaxed);
}

void disarm_all_faults() noexcept {
  std::lock_guard lock(g_arm_mutex);
  fault_detail::g_armed_mask.store(0, std::memory_order_relaxed);
}

std::size_t arm_faults_from_spec(const std::string& spec) {
  std::size_t armed = 0;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    // site:rate[:seed[:max_fires[:skip]]]
    std::array<std::string, 5> fields;
    std::size_t nfields = 0, fpos = 0;
    while (nfields < fields.size()) {
      const std::size_t colon = entry.find(':', fpos);
      if (colon == std::string::npos) {
        fields[nfields++] = entry.substr(fpos);
        break;
      }
      fields[nfields++] = entry.substr(fpos, colon - fpos);
      fpos = colon + 1;
    }
    const auto site = fault_site_from_name(fields[0]);
    if (!site)
      throw std::invalid_argument("NBODY_FAULTS: unknown fault site '" + fields[0] + "'");
    FaultConfig cfg;
    try {
      if (nfields >= 2 && !fields[1].empty()) cfg.rate = std::stod(fields[1]);
      if (nfields >= 3 && !fields[2].empty()) cfg.seed = std::stoull(fields[2]);
      if (nfields >= 4 && !fields[3].empty()) cfg.max_fires = std::stoull(fields[3]);
      if (nfields >= 5 && !fields[4].empty()) cfg.skip = std::stoull(fields[4]);
    } catch (const std::exception&) {
      throw std::invalid_argument("NBODY_FAULTS: malformed entry '" + entry + "'");
    }
    if (cfg.rate < 0.0 || cfg.rate > 1.0)
      throw std::invalid_argument("NBODY_FAULTS: rate out of [0,1] in '" + entry + "'");
    arm_fault(*site, cfg);
    ++armed;
  }
  return armed;
}

std::size_t arm_faults_from_env() {
  const auto spec = env_string("NBODY_FAULTS");
  if (!spec) return 0;
  return arm_faults_from_spec(*spec);
}

bool fault_armed(FaultSite site) noexcept {
  return (fault_detail::g_armed_mask.load(std::memory_order_relaxed) >>
          static_cast<unsigned>(site)) &
         1u;
}

std::uint64_t fault_evaluations(FaultSite site) noexcept {
  return g_sites[static_cast<std::size_t>(site)].evaluations.load(std::memory_order_relaxed);
}

std::uint64_t fault_fires(FaultSite site) noexcept {
  const auto& st = g_sites[static_cast<std::size_t>(site)];
  const std::uint64_t f = st.fires.load(std::memory_order_relaxed);
  return st.cfg.max_fires != 0 && f > st.cfg.max_fires ? st.cfg.max_fires : f;
}

std::string armed_faults_description() {
  std::string out;
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (!fault_armed(site)) continue;
    const auto& st = g_sites[i];
    if (!out.empty()) out += '\n';
    out += std::string(fault_site_name(site)) + " rate=" + std::to_string(st.cfg.rate) +
           " seed=" + std::to_string(st.cfg.seed) +
           " fires=" + std::to_string(fault_fires(site)) + "/" +
           (st.cfg.max_fires == 0 ? std::string("inf") : std::to_string(st.cfg.max_fires));
  }
  return out;
}

}  // namespace nbody::support
