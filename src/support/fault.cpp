#include "support/fault.hpp"

#include <array>
#include <mutex>
#include <vector>

#include "support/env.hpp"

namespace nbody::support {

namespace {

constexpr std::array<const char*, kFaultSiteCount> kSiteNames = {
    "exec.pool.task", "exec.algo.chunk", "octree.node_alloc",
    "snapshot.write", "snapshot.read",   "exec.chunk.hang",
    "server.admit",   "server.journal.write", "server.dispatch",
};

struct SiteState {
  FaultConfig cfg;
  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<std::uint64_t> fires{0};
  std::uint64_t threshold = 0;  // fire when hash(seed, tick) < threshold
};

SiteState g_sites[kFaultSiteCount];
std::mutex g_arm_mutex;  // serializes arm/disarm (fault_point stays lock-free)

// SplitMix64: the per-tick decision hash. Full-period, cheap, and the same
// generator support/rng.hpp seeds from, so firing sequences are portable.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D49BB133111EB2ull;
  return x ^ (x >> 31);
}

std::uint64_t rate_threshold(double rate) noexcept {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return ~std::uint64_t{0};
  return static_cast<std::uint64_t>(rate * 18446744073709551616.0 /* 2^64 */);
}

// Arm NBODY_FAULTS at static initialization so instrumented binaries honor
// the environment without any explicit setup call.
const bool g_env_armed = [] {
  try {
    arm_faults_from_env();
  } catch (const std::exception&) {
    // A malformed spec at startup must not terminate before main(); the
    // explicit arm_faults_from_env() call (CLI) reports it properly.
  }
  return true;
}();

}  // namespace

namespace fault_detail {

std::atomic<std::uint32_t> g_armed_mask{0};

bool should_fire(FaultSite site) noexcept {
  auto& st = g_sites[static_cast<std::size_t>(site)];
  const std::uint64_t tick = st.evaluations.fetch_add(1, std::memory_order_relaxed);
  if (tick < st.cfg.skip) return false;
  if (st.threshold == 0) return false;
  if (st.threshold != ~std::uint64_t{0} &&
      splitmix64(st.cfg.seed ^ (tick * 0xD1342543DE82EF95ull)) >= st.threshold)
    return false;
  if (st.cfg.max_fires != 0) {
    // Consume one unit of the injection budget; losers of the race between
    // the last units simply do not fire.
    const std::uint64_t prior = st.fires.fetch_add(1, std::memory_order_relaxed);
    if (prior >= st.cfg.max_fires) return false;
  } else {
    st.fires.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void throw_fault(FaultSite site) {
  const auto& st = g_sites[static_cast<std::size_t>(site)];
  throw FaultInjected(site, st.evaluations.load(std::memory_order_relaxed));
}

}  // namespace fault_detail

FaultInjected::FaultInjected(FaultSite site, std::uint64_t tick)
    : std::runtime_error(std::string("injected fault at site '") + fault_site_name(site) +
                         "' (evaluation #" + std::to_string(tick) + ")"),
      site_(site),
      tick_(tick) {}

const char* fault_site_name(FaultSite site) noexcept {
  return kSiteNames[static_cast<std::size_t>(site)];
}

std::optional<FaultSite> fault_site_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i)
    if (name == kSiteNames[i]) return static_cast<FaultSite>(i);
  return std::nullopt;
}

void arm_fault(FaultSite site, FaultConfig cfg) {
  std::lock_guard lock(g_arm_mutex);
  auto& st = g_sites[static_cast<std::size_t>(site)];
  st.cfg = cfg;
  st.threshold = rate_threshold(cfg.rate);
  st.evaluations.store(0, std::memory_order_relaxed);
  st.fires.store(0, std::memory_order_relaxed);
  fault_detail::g_armed_mask.fetch_or(1u << static_cast<unsigned>(site),
                                      std::memory_order_relaxed);
}

void disarm_fault(FaultSite site) noexcept {
  std::lock_guard lock(g_arm_mutex);
  fault_detail::g_armed_mask.fetch_and(~(1u << static_cast<unsigned>(site)),
                                       std::memory_order_relaxed);
}

void disarm_all_faults() noexcept {
  std::lock_guard lock(g_arm_mutex);
  fault_detail::g_armed_mask.store(0, std::memory_order_relaxed);
}

namespace {

[[noreturn]] void bad_spec(const std::string& what, const std::string& entry) {
  throw FaultSpecError("NBODY_FAULTS: " + what + " in entry '" + entry +
                       "' (grammar: site:rate[:seed[:max_fires[:skip]]])");
}

// Full-token rate parse: the whole field must be one finite decimal in
// [0, 1]. std::stod alone accepts trailing garbage ("0.5x"), leading
// whitespace and hex — all of which previously mis-armed campaigns silently.
double parse_rate_field(const std::string& tok, const std::string& entry) {
  if (tok.find_first_not_of("0123456789.eE+-") != std::string::npos)
    bad_spec("rate '" + tok + "' is not a decimal number", entry);
  double v = 0.0;
  std::size_t consumed = 0;
  try {
    v = std::stod(tok, &consumed);
  } catch (const std::exception&) {
    bad_spec("rate '" + tok + "' is not a decimal number", entry);
  }
  if (consumed != tok.size())
    bad_spec("rate '" + tok + "' has trailing characters", entry);
  if (!(v >= 0.0 && v <= 1.0))
    bad_spec("rate '" + tok + "' out of [0,1]", entry);
  return v;
}

// Full-token unsigned parse: digits only. std::stoull alone accepts "-3"
// (wraps to 2^64-3), "7q" (trailing garbage) and " 8" (whitespace).
std::uint64_t parse_u64_field(const std::string& tok, const char* what,
                              const std::string& entry) {
  if (tok.find_first_not_of("0123456789") != std::string::npos)
    bad_spec(std::string(what) + " '" + tok + "' is not a non-negative integer", entry);
  try {
    return std::stoull(tok);
  } catch (const std::exception&) {
    bad_spec(std::string(what) + " '" + tok + "' is out of range", entry);
  }
}

}  // namespace

std::size_t arm_faults_from_spec(const std::string& spec) {
  if (spec.empty()) bad_spec("no fault entries", spec);
  // Two-phase: validate every entry before arming anything, so a bad entry
  // can never leave a partially-armed campaign behind.
  std::vector<std::pair<FaultSite, FaultConfig>> parsed;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    // A stray comma means some entry got lost (unquoted shell expansion,
    // trailing separator) — refuse rather than arm a partial campaign.
    if (entry.empty()) bad_spec("empty entry (stray comma)", spec);

    // site:rate[:seed[:max_fires[:skip]]] — site and rate are mandatory;
    // an empty *optional* field keeps its default, anything non-empty must
    // parse in full.
    std::vector<std::string> fields;
    std::size_t fpos = 0;
    for (;;) {
      const std::size_t colon = entry.find(':', fpos);
      if (colon == std::string::npos) {
        fields.push_back(entry.substr(fpos));
        break;
      }
      fields.push_back(entry.substr(fpos, colon - fpos));
      fpos = colon + 1;
    }
    if (fields.size() > 5) bad_spec("too many fields", entry);
    if (fields[0].empty()) bad_spec("empty site name", entry);
    const auto site = fault_site_from_name(fields[0]);
    if (!site) bad_spec("unknown fault site '" + fields[0] + "'", entry);
    if (fields.size() < 2 || fields[1].empty()) bad_spec("missing rate", entry);
    FaultConfig cfg;
    cfg.rate = parse_rate_field(fields[1], entry);
    if (fields.size() >= 3 && !fields[2].empty())
      cfg.seed = parse_u64_field(fields[2], "seed", entry);
    if (fields.size() >= 4 && !fields[3].empty())
      cfg.max_fires = parse_u64_field(fields[3], "max_fires", entry);
    if (fields.size() >= 5 && !fields[4].empty())
      cfg.skip = parse_u64_field(fields[4], "skip", entry);
    parsed.emplace_back(*site, cfg);
  }
  for (const auto& [site, cfg] : parsed) arm_fault(site, cfg);
  return parsed.size();
}

std::size_t arm_faults_from_env() {
  const auto spec = env_string("NBODY_FAULTS");
  if (!spec) return 0;
  return arm_faults_from_spec(*spec);
}

bool fault_armed(FaultSite site) noexcept {
  return (fault_detail::g_armed_mask.load(std::memory_order_relaxed) >>
          static_cast<unsigned>(site)) &
         1u;
}

std::uint64_t fault_evaluations(FaultSite site) noexcept {
  return g_sites[static_cast<std::size_t>(site)].evaluations.load(std::memory_order_relaxed);
}

std::uint64_t fault_fires(FaultSite site) noexcept {
  const auto& st = g_sites[static_cast<std::size_t>(site)];
  const std::uint64_t f = st.fires.load(std::memory_order_relaxed);
  return st.cfg.max_fires != 0 && f > st.cfg.max_fires ? st.cfg.max_fires : f;
}

std::string armed_faults_description() {
  std::string out;
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (!fault_armed(site)) continue;
    const auto& st = g_sites[i];
    if (!out.empty()) out += '\n';
    out += std::string(fault_site_name(site)) + " rate=" + std::to_string(st.cfg.rate) +
           " seed=" + std::to_string(st.cfg.seed) +
           " fires=" + std::to_string(fault_fires(site)) + "/" +
           (st.cfg.max_fires == 0 ? std::string("inf") : std::to_string(st.cfg.max_fires));
  }
  return out;
}

}  // namespace nbody::support
