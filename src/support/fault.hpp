// Deterministic fault-injection framework.
//
// Every failure path the robustness story depends on — a task dying inside
// the thread pool, a scheduling-backend chunk throwing, the octree's node
// pool "running out", snapshot I/O failing, the job server's admission /
// journal / dispatch paths failing — is represented by a named *fault
// site*. Instrumented code calls fault_point(site); an armed site
// throws FaultInjected on a seeded-deterministic subsequence of its
// evaluations, so tests can exercise recovery paths on demand and replay
// them.
//
// Arming is programmatic (arm_fault) or via the environment:
//
//   NBODY_FAULTS=site:rate[:seed[:max_fires[:skip]]][,site:rate...]
//   e.g. NBODY_FAULTS=octree.node_alloc:0.01:7:3,snapshot.write:1
//        NBODY_FAULTS=exec.chunk.hang:1:0:1:64
//
// rate is the per-evaluation firing probability; seed selects the
// deterministic firing subsequence; max_fires (0 = unlimited) bounds the
// total number of injections, which keeps end-to-end recovery tests
// convergent under a finite retry budget; skip exempts the first `skip`
// evaluations, so an injection can be aimed deterministically at a later
// phase of a run (e.g. a mid-force-phase hang) instead of the first thing
// the process does.
//
// Most sites fail by throwing FaultInjected from fault_point(). The
// exec.chunk.hang site is *behavioral*: the scheduling layer asks
// fault_fires_now() and, when it fires, simulates a wedged worker — a spin
// that only the cooperative-cancellation machinery (exec/stop_token.hpp,
// tripped by a deadline or the pool watchdog) can reclaim.
//
// Cost when disarmed: fault_point() is a single relaxed atomic load and a
// predicted-not-taken branch — safe to leave in hot paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace nbody::support {

enum class FaultSite : std::uint8_t {
  pool_task,            // "exec.pool.task"       — thread_pool::run rank bodies
  algo_chunk,           // "exec.algo.chunk"      — scheduling-backend chunks
  octree_node_alloc,    // "octree.node_alloc"    — octree subdivision/allocation
  snapshot_write,       // "snapshot.write"       — snapshot save paths
  snapshot_read,        // "snapshot.read"        — snapshot load paths
  chunk_hang,           // "exec.chunk.hang"      — behavioral: wedge a worker
  server_admit,         // "server.admit"         — JobServer admission path
  server_journal_write, // "server.journal.write" — job-journal append
  server_dispatch,      // "server.dispatch"      — runner claiming/dispatching a job
};
inline constexpr std::size_t kFaultSiteCount = 9;

/// Stable textual name of a site (the NBODY_FAULTS spelling).
const char* fault_site_name(FaultSite site) noexcept;

/// Parses a site name; nullopt for unknown names.
std::optional<FaultSite> fault_site_from_name(std::string_view name) noexcept;

struct FaultConfig {
  double rate = 1.0;           // per-evaluation firing probability in [0, 1]
  std::uint64_t seed = 0;      // selects the deterministic firing subsequence
  std::uint64_t max_fires = 0; // total injection budget; 0 = unlimited
  std::uint64_t skip = 0;      // first `skip` evaluations never fire
};

/// A malformed NBODY_FAULTS spec string. Derives from std::invalid_argument
/// (existing catch sites keep working) but is distinguishable so the CLI can
/// map it to its own exit code (4) instead of the generic usage error (2):
/// a silently mis-armed fault campaign is worse than no campaign at all.
class FaultSpecError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// The exception an armed fault site throws.
class FaultInjected : public std::runtime_error {
 public:
  FaultInjected(FaultSite site, std::uint64_t tick);
  [[nodiscard]] FaultSite site() const noexcept { return site_; }
  [[nodiscard]] std::uint64_t tick() const noexcept { return tick_; }

 private:
  FaultSite site_;
  std::uint64_t tick_;  // which evaluation of the site fired
};

/// Arms `site` with `cfg` (resets its evaluation/fire counters).
void arm_fault(FaultSite site, FaultConfig cfg);
void disarm_fault(FaultSite site) noexcept;
void disarm_all_faults() noexcept;

/// Arms every site in a spec string (the NBODY_FAULTS grammar above).
/// Returns the number of sites armed; throws FaultSpecError (an
/// std::invalid_argument) on any malformed field: unknown/empty site, rate
/// not a full decimal in [0,1], seed/max_fires/skip not plain non-negative
/// integers, or more than five fields. Nothing degrades silently.
std::size_t arm_faults_from_spec(const std::string& spec);

/// Arms from the NBODY_FAULTS environment variable (no-op when unset).
/// Runs automatically at static initialization in any binary linking this
/// library; callable again for idempotent re-arming.
std::size_t arm_faults_from_env();

[[nodiscard]] bool fault_armed(FaultSite site) noexcept;
[[nodiscard]] std::uint64_t fault_evaluations(FaultSite site) noexcept;
[[nodiscard]] std::uint64_t fault_fires(FaultSite site) noexcept;

/// One line per armed site ("site rate=R seed=S fires=F/max") or "" when
/// nothing is armed — for CLI observability.
[[nodiscard]] std::string armed_faults_description();

namespace fault_detail {
extern std::atomic<std::uint32_t> g_armed_mask;  // bit per FaultSite
/// Slow path: counts the evaluation and decides deterministically.
bool should_fire(FaultSite site) noexcept;
[[noreturn]] void throw_fault(FaultSite site);
}  // namespace fault_detail

/// The injection point. Disarmed: one relaxed load, no branch taken.
/// Armed and firing: throws FaultInjected.
inline void fault_point(FaultSite site) {
  const std::uint32_t mask = fault_detail::g_armed_mask.load(std::memory_order_relaxed);
  if (mask == 0) [[likely]]
    return;
  if ((mask >> static_cast<unsigned>(site)) & 1u) {
    if (fault_detail::should_fire(site)) fault_detail::throw_fault(site);
  }
}

/// Non-throwing query form for behavioral sites (exec.chunk.hang): returns
/// true when the site is armed and fires on this evaluation; the caller
/// enacts the failure itself. Same disarmed cost as fault_point().
inline bool fault_fires_now(FaultSite site) noexcept {
  const std::uint32_t mask = fault_detail::g_armed_mask.load(std::memory_order_relaxed);
  if (mask == 0) [[likely]]
    return false;
  return ((mask >> static_cast<unsigned>(site)) & 1u) != 0 &&
         fault_detail::should_fire(site);
}

}  // namespace nbody::support
