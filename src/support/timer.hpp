// Wall-clock timing utilities used by the simulation driver and benches.
//
// `Stopwatch` measures one interval; `PhaseTimer` accumulates named phases
// (the per-step breakdown behind the paper's Figure 8).
#pragma once

#include <array>
#include <optional>
#include <chrono>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace nbody::support {

/// Monotonic stopwatch. Started on construction or `reset()`.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction / last reset.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall time into named phases across many iterations.
///
/// Usage:
///   PhaseTimer t;
///   { auto s = t.scope("build"); build(); }
///   t.seconds("build");
class PhaseTimer {
 public:
  class Scope {
   public:
    Scope(PhaseTimer& owner, std::size_t idx) : owner_(&owner), idx_(idx) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope(Scope&& o) noexcept : owner_(o.owner_), idx_(o.idx_), watch_(o.watch_) {
      o.owner_ = nullptr;
    }
    Scope& operator=(Scope&&) = delete;
    ~Scope() {
      if (owner_ != nullptr) owner_->add(idx_, watch_.seconds());
    }

   private:
    PhaseTimer* owner_;
    std::size_t idx_;
    Stopwatch watch_;
  };

  /// RAII scope that accumulates its lifetime into phase `name`.
  [[nodiscard]] Scope scope(std::string_view name) { return Scope(*this, index_of(name)); }

  /// Scope against an optional timer: strategies accept PhaseTimer* and pass
  /// it here; a null timer costs nothing.
  [[nodiscard]] static std::optional<Scope> maybe(PhaseTimer* timer, std::string_view name) {
    if (timer == nullptr) return std::nullopt;
    return std::optional<Scope>(std::in_place, *timer, timer->index_of(name));
  }

  /// Directly accumulate `secs` into phase `name`.
  void add(std::string_view name, double secs) { add(index_of(name), secs); }

  /// Total seconds recorded for `name` (0 when the phase never ran).
  [[nodiscard]] double seconds(std::string_view name) const;

  /// Sum over all phases.
  [[nodiscard]] double total() const;

  /// Phase names in first-use order.
  [[nodiscard]] const std::vector<std::string>& names() const { return names_; }

  /// Copy of the per-phase totals, index-aligned with names() at the time of
  /// the call. Pair with reattribute_since() to undo speculative work.
  [[nodiscard]] std::vector<double> snapshot() const { return totals_; }

  /// Moves everything accumulated since `snap` (taken via snapshot()) into
  /// phase `to`: each phase's positive delta is subtracted back out and the
  /// sum is added to `to`. Used by run_guarded to re-label the time of a
  /// failed-and-retried step as "(discarded)" instead of double-counting it
  /// under the real phase names.
  void reattribute_since(const std::vector<double>& snap, std::string_view to);

  void clear();

 private:
  std::size_t index_of(std::string_view name);
  void add(std::size_t idx, double secs) { totals_[idx] += secs; }

  std::vector<std::string> names_;
  std::vector<double> totals_;
};

}  // namespace nbody::support
