// Environment-variable configuration helpers.
//
// All runtime tunables of the library are read through this one interface so
// benchmarks and tests have a single documented surface:
//   NBODY_THREADS  — worker count of the global thread pool (default:
//                    hardware_concurrency).
//   NBODY_CSV      — when "1", benches additionally emit CSV files.
//   NBODY_SCALE    — global workload scale factor for benches (default 1.0);
//                    lets the full harness run on small machines.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace nbody::support {

/// Returns the raw value of an environment variable, if set and non-empty.
std::optional<std::string> env_string(const char* name);

/// Parses an environment variable as a non-negative integer.
/// Returns `fallback` when unset; throws std::invalid_argument on garbage.
std::size_t env_size(const char* name, std::size_t fallback);

/// Parses an environment variable as a double. Returns `fallback` when unset.
double env_double(const char* name, double fallback);

/// True when the variable is set to "1", "true", "yes" or "on".
bool env_flag(const char* name, bool fallback = false);

}  // namespace nbody::support
