// Compensated (Kahan-Neumaier) summation.
//
// Energy-conservation diagnostics sum O(N^2) pairwise potential terms whose
// magnitudes span many orders; naive accumulation loses the signal the tests
// assert on. The simulation itself does NOT use compensated sums (matching
// the paper's plain FP64 arithmetic) — only the diagnostics do.
#pragma once

namespace nbody::support {

/// Neumaier variant of Kahan summation: robust when the addend exceeds the
/// running sum in magnitude.
class KahanSum {
 public:
  constexpr KahanSum() = default;
  explicit constexpr KahanSum(double init) : sum_(init) {}

  constexpr void add(double v) {
    const double t = sum_ + v;
    if ((sum_ >= 0 ? sum_ : -sum_) >= (v >= 0 ? v : -v)) {
      comp_ += (sum_ - t) + v;
    } else {
      comp_ += (v - t) + sum_;
    }
    sum_ = t;
  }

  constexpr KahanSum& operator+=(double v) {
    add(v);
    return *this;
  }

  /// Merge another compensated sum (used to combine per-thread partials).
  constexpr void merge(const KahanSum& other) {
    add(other.sum_);
    comp_ += other.comp_;
  }

  [[nodiscard]] constexpr double value() const { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

}  // namespace nbody::support
