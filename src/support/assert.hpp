// Lightweight assertion/contract macros for the nbody library.
//
// NBODY_ASSERT      — checked in all build types; aborts with a message.
//                     Used for cheap invariants on hot-path boundaries.
// NBODY_DEBUG_ASSERT— checked only when NDEBUG is not defined; free in
//                     release builds, used inside inner loops.
// NBODY_REQUIRE     — precondition check that throws std::invalid_argument,
//                     for public API entry points where recovery is possible.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace nbody::support {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) noexcept {
  std::fprintf(stderr, "nbody assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace nbody::support

#define NBODY_ASSERT_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) ::nbody::support::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define NBODY_ASSERT(expr) NBODY_ASSERT_MSG(expr, nullptr)

#ifdef NDEBUG
#define NBODY_DEBUG_ASSERT(expr) ((void)0)
#else
#define NBODY_DEBUG_ASSERT(expr) NBODY_ASSERT(expr)
#endif

#define NBODY_REQUIRE(expr, what)                                   \
  do {                                                              \
    if (!(expr)) throw std::invalid_argument(std::string("nbody: ") + (what)); \
  } while (0)
