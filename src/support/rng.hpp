// Deterministic pseudo-random number generation for workload synthesis.
//
// Two generators:
//   SplitMix64 — tiny, used for seeding and cheap per-index hashing.
//   Xoshiro256ss — the workhorse stream generator (xoshiro256**), with
//                  double/normal helpers. Both are fully deterministic across
//                  platforms, which keeps the paper's "deterministic galaxy
//                  collision" workload bit-reproducible.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace nbody::support {

/// SplitMix64: statistically solid 64-bit mixer (Steele et al.).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless hash of a 64-bit index; handy for per-body jitter.
constexpr std::uint64_t hash_u64(std::uint64_t x) {
  SplitMix64 s(x);
  return s.next();
}

/// xoshiro256** by Blackman & Vigna; public-domain reference algorithm.
class Xoshiro256ss {
 public:
  explicit Xoshiro256ss(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box-Muller (discards the paired variate for
  /// simplicity; workload generation is not performance-sensitive).
  double normal() {
    double u1 = uniform();
    while (u1 == 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace nbody::support
