#include "support/env.hpp"

#include <cstdlib>
#include <stdexcept>

namespace nbody::support {

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::size_t env_size(const char* name, std::size_t fallback) {
  auto s = env_string(name);
  if (!s) return fallback;
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(*s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(name) + ": expected integer, got '" + *s + "'");
  }
  if (pos != s->size())
    throw std::invalid_argument(std::string(name) + ": trailing characters in '" + *s + "'");
  return static_cast<std::size_t>(v);
}

double env_double(const char* name, double fallback) {
  auto s = env_string(name);
  if (!s) return fallback;
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(*s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(name) + ": expected number, got '" + *s + "'");
  }
  if (pos != s->size())
    throw std::invalid_argument(std::string(name) + ": trailing characters in '" + *s + "'");
  return v;
}

bool env_flag(const char* name, bool fallback) {
  auto s = env_string(name);
  if (!s) return fallback;
  return *s == "1" || *s == "true" || *s == "yes" || *s == "on";
}

}  // namespace nbody::support
