// Parallel algorithms in the shape of the C++ standard library ones the
// paper uses: Parallel For (for_each), Parallel Reduce (transform_reduce),
// Parallel Sort (sort), plus scans and permutation helpers needed by the
// Hilbert BVH pipeline.
//
// Every algorithm is templated on the execution policy (seq / par /
// par_unseq). Parallel policies run on the global thread pool and install a
// progress_region so the vectorization-unsafety enforcement in
// exec/atomic.hpp can see which guarantee the current region provides.
//
// Four scheduling backends: static contiguous chunking, dynamic
// atomic-counter chunking, and topology-aware work-stealing (per-worker
// steal-half deques seeded in curve order — exec/steal_deque.hpp,
// exec/topology.hpp) stand in for the paper's "two toolchains per system"
// (Sec. V-A); the fourth, chaos_permute, is a correctness tool, not a
// performance backend — it dispatches chunks in a seed-permuted order with
// deterministic yield/delay injection so schedule-sensitive bugs reproduce
// from NBODY_CHAOS_SEED (see exec/chaos/chaos.hpp). Select globally via
// set_default_backend() or NBODY_BACKEND=static|dynamic|steal|chaos.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <iterator>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "exec/chaos/chaos.hpp"
#include "exec/policy.hpp"
#include "exec/steal_deque.hpp"
#include "exec/stop_token.hpp"
#include "exec/thread_pool.hpp"
#include "exec/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/env.hpp"
#include "support/fault.hpp"

namespace nbody::exec {

enum class backend : std::uint8_t { static_chunk, dynamic_chunk, work_steal, chaos_permute };

inline const char* backend_name(backend b) {
  switch (b) {
    case backend::static_chunk: return "static";
    case backend::dynamic_chunk: return "dynamic";
    case backend::work_steal: return "steal";
    case backend::chaos_permute: return "chaos";
  }
  return "?";
}

namespace detail {
inline backend& backend_ref() {
  static backend b = [] {
    auto s = support::env_string("NBODY_BACKEND");
    if (s && *s == "dynamic") return backend::dynamic_chunk;
    if (s && *s == "steal") return backend::work_steal;
    if (s && *s == "chaos") return backend::chaos_permute;
    return backend::static_chunk;
  }();
  return b;
}

/// Bounded exponential backoff for the victim-scan loop: a rank whose scan
/// found every deque empty (while chunks are still in flight on other
/// ranks) must not spin the scan at full rate — that is the unbounded-polls
/// bug class the regression test in tests/test_steal.cpp pins down. Three
/// regimes, escalating per consecutive failed scan and reset on any
/// successful pop or steal: hardware pauses, OS yields, then capped
/// exponential naps (4..128 us). checkpoint_waiting() on every step keeps
/// the progress simulator and chaos injector able to deschedule the waiter.
class StealBackoff {
 public:
  void pause() {
    checkpoint_waiting();
    if (round_ < kSpinRounds) {
      spin_wait sw;
      const unsigned spins = 8u << round_;
      for (unsigned i = 0; i < spins; ++i) sw.pause();
    } else if (round_ < kSpinRounds + kYieldRounds) {
      std::this_thread::yield();
    } else {
      const unsigned shift = std::min(round_ - (kSpinRounds + kYieldRounds), 5u);
      std::this_thread::sleep_for(std::chrono::microseconds(4u << shift));
    }
    ++round_;
  }
  void reset() { round_ = 0; }

 private:
  static constexpr unsigned kSpinRounds = 4;
  static constexpr unsigned kYieldRounds = 4;
  unsigned round_ = 0;
};
}  // namespace detail

inline backend default_backend() { return detail::backend_ref(); }
inline void set_default_backend(backend b) { detail::backend_ref() = b; }

namespace detail {

/// Stripe length between cancellation polls when a stop token is installed:
/// each chunk body is executed in stripes of at most this many iterations
/// with a token poll + liveness heartbeat between stripes, so cancellation
/// latency is bounded by min(chunk, stripe) work. Flags-off (no ambient
/// token) the stripe loop is bypassed entirely.
inline constexpr std::size_t kPollStripe = 8192;

/// Drain-side throw point: called by the dispatching thread after a region
/// completes (and from sequential fallbacks). Never called from inside a
/// region's iterations — see the flag-then-drain contract in stop_token.hpp.
inline void throw_if_cancelled(const stop_token& tok) {
  if (!tok.stop_requested()) return;
  if (auto* m = obs::global_metrics(); m != nullptr)
    m->counter("exec.cancel.regions").add();
  tok.throw_if_stopped();
}

/// The exec.chunk.hang fault's wedge: burns time on this rank until the
/// cancellation machinery (deadline or watchdog via the stop token) reclaims
/// it — returns true, the chunk's work is dropped (the region is being
/// abandoned anyway). Re-reads the ambient token each iteration so a token
/// installed after the wedge began still frees it. If no stop can ever
/// arrive — stopless region and no ambient source, e.g. the site fired in
/// a guard-check region outside the guarded step's scope — the wedge is
/// inert and returns false so the caller runs the chunk normally: a fault
/// that nothing can reclaim must not turn into silent data loss or a
/// deadlock of the *recovery* machinery itself.
inline bool hang_until_stopped(const stop_token& tok) {
  for (;;) {
    if (tok.stop_requested()) return true;
    const stop_token ambient = ambient_stop_token();
    if (ambient.stop_requested()) return true;
    if (!tok.stop_possible() && !ambient.stop_possible()) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

/// Chunk size for dynamic scheduling: small enough to balance irregular
/// iterations, large enough to amortize the shared counter.
inline std::size_t dynamic_grain(std::size_t n, unsigned workers) {
  const std::size_t target_chunks = static_cast<std::size_t>(workers) * 16;
  std::size_t grain = n / (target_chunks == 0 ? 1 : target_chunks);
  return grain == 0 ? 1 : grain;
}

/// Per-rank trace span for one scheduling region, named after the ambient
/// region label (the enclosing StepContext phase). Records via
/// complete_span() directly — never TraceSession::Scope, whose label
/// exchange is a caller-thread protocol that worker ranks must not touch.
/// Null session = two branches per *region*, not per element.
class RankSpan {
 public:
  RankSpan(obs::TraceSession* trace, const char* label, unsigned rank)
      : trace_(trace), label_(label), rank_(rank),
        start_ns_(trace != nullptr ? trace->now_ns() : 0) {}
  RankSpan(const RankSpan&) = delete;
  RankSpan& operator=(const RankSpan&) = delete;
  ~RankSpan() {
    if (trace_ != nullptr) trace_->complete_span(label_, rank_, start_ns_, trace_->now_ns());
  }

 private:
  obs::TraceSession* trace_;
  const char* label_;
  unsigned rank_;
  std::uint64_t start_ns_;
};

/// Runs f(begin, end) over [0, n) partitioned across the pool according to
/// the active backend, inside a progress_region for `progress`.
template <class F>
void parallel_blocks(thread_pool& pool, forward_progress progress, std::size_t n, F&& raw_f) {
  if (n == 0) return;
  // Cancellation: capture the ambient stop token once per region. With no
  // token installed (the common case) every chunk takes one predicted branch
  // and runs raw_f directly; with a token, chunks execute in kPollStripe
  // stripes with a poll + pool heartbeat between stripes, and a chunk that
  // observes the flag stops claiming work (flag-then-drain — the throw
  // happens on the dispatching thread after the region drains).
  const stop_token tok = ambient_stop_token();
  // Fault site exec.algo.chunk: every chunk dispatch of every backend passes
  // through here, so injected failures exercise exception propagation out of
  // static, dynamic, and work-stealing scheduling alike. exec.chunk.hang is
  // the behavioral variant: it wedges this rank inside the chunk until the
  // stop token reclaims it (the chunk's work is dropped — the region is
  // being abandoned anyway).
  auto f = [&raw_f, &pool, &tok](std::size_t b, std::size_t e, unsigned rank) {
    support::fault_point(support::FaultSite::algo_chunk);
    if (support::fault_fires_now(support::FaultSite::chunk_hang)) [[unlikely]] {
      if (hang_until_stopped(tok)) return;  // reclaimed: drop the chunk
      // Inert wedge (no reclaimer anywhere): fall through, run normally.
    }
    // Single raw_f call site on purpose: a separate flags-off direct call
    // would be a second inlined clone of the (often hot) chunk body, and the
    // clones' layout can differ by far more than the poll cost being avoided
    // (bench/ablation_cancel.cpp measured double-digit % between clones).
    // Flags-off the stripe covers the whole chunk: one iteration, two
    // predicted branches, no heartbeat.
    const bool cancellable = tok.stop_possible();
    const std::size_t stripe = cancellable ? kPollStripe : e - b;
    for (std::size_t s = b; s < e; s += stripe) {
      if (cancellable && tok.stop_requested()) return;  // drain, don't throw
      raw_f(s, std::min(s + stripe, e));
      if (cancellable) pool.beat(rank);
    }
  };
  obs::TraceSession* const trace = obs::global_trace();
  const char* const label = obs::region_label();
  const unsigned p = pool.concurrency();
  const backend b = default_backend();
  // The chaos backend keeps its permuted dispatch even on a single
  // participant: chunk-*order* dependence (e.g. order-sensitive
  // accumulation) is a schedule bug a one-thread pool can still expose.
  if (n == 1 || (p == 1 && b != backend::chaos_permute)) {
    {
      progress_region guard(progress);
      RankSpan span(trace, label, obs::thread_rank());
      thread_pool::inline_region region(pool);  // watchdog sees inline work
      f(std::size_t{0}, n, obs::thread_rank());
      pool.note_chunks(1);
    }
    throw_if_cancelled(tok);
    return;
  }
  if (b == backend::chaos_permute) {
    // Schedule permutation: chunks are claimed from a shared counter like
    // the dynamic backend, but the counter indexes a seed-shuffled chunk
    // permutation, and each claim may first yield or delay (deterministic
    // per (seed, region, rank)). Cooperative checkpoints inside f —
    // spin_wait::pause, the octree's critical section — are routed through
    // the same seeded stream, so lock-holder-suspended interleavings are
    // explored and replayed from the master seed alone.
    const std::size_t grain = dynamic_grain(n, p);
    const std::size_t nchunks = (n + grain - 1) / grain;
    const std::uint64_t rseed = chaos::next_region_seed();
    const std::vector<std::uint32_t> order = chaos::make_permutation(rseed, nchunks);
    std::atomic<std::size_t> next{0};
    pool.run([&](unsigned rank) {
      progress_region guard(progress);
      RankSpan span(trace, label, rank);
      chaos::YieldInjector inject(rseed, rank);
      chaos::Perturber perturb(rseed, rank);
      std::uint64_t chunks = 0;
      for (;;) {
        if (tok.stop_requested()) break;  // drain
        const std::size_t pos = next.fetch_add(1, std::memory_order_relaxed);
        if (pos >= nchunks) break;
        perturb.maybe_perturb();
        const std::size_t begin = static_cast<std::size_t>(order[pos]) * grain;
        f(begin, std::min(begin + grain, n), rank);
        ++chunks;
      }
      pool.note_chunks(chunks);
    });
    throw_if_cancelled(tok);
  } else if (b == backend::static_chunk) {
    const std::size_t base = n / p;
    const std::size_t rem = n % p;
    pool.run([&](unsigned rank) {
      progress_region guard(progress);
      RankSpan span(trace, label, rank);
      const std::size_t begin = rank * base + std::min<std::size_t>(rank, rem);
      const std::size_t end = begin + base + (rank < rem ? 1 : 0);
      if (begin < end) {
        f(begin, end, rank);  // cancellation polls via the stripe loop in f
        pool.note_chunks(1);
      }
    });
    throw_if_cancelled(tok);
  } else if (b == backend::dynamic_chunk) {
    const std::size_t grain = dynamic_grain(n, p);
    std::atomic<std::size_t> next{0};
    pool.run([&](unsigned rank) {
      progress_region guard(progress);
      RankSpan span(trace, label, rank);
      std::uint64_t chunks = 0;
      for (;;) {
        if (tok.stop_requested()) break;  // drain
        const std::size_t begin = next.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= n) break;
        f(begin, std::min(begin + grain, n), rank);
        ++chunks;
      }
      pool.note_chunks(chunks);
    });
    throw_if_cancelled(tok);
  } else {
    // Work stealing: per-worker steal-half deques of curve-ordered chunks.
    // The index space is already SFC-sorted (Hilbert for the BVH, Morton
    // leaf order for the octree), so chunk c = [c*grain, (c+1)*grain) is a
    // span of the curve; deques are seeded by dealing contiguous chunk
    // blocks to ranks in topology order (hardware-adjacent ranks own
    // curve-adjacent spans), owners pop their spatially-near front, and a
    // rank that runs dry probes victims nearest-first (same cluster before
    // cross-package) and steals the spatially-far back half of the richest
    // probe in one CAS-confirmed transaction. Unlike the packed-range
    // scheme this one replaces, stolen work re-enters a deque and stays
    // stealable, so termination is a shared chunk countdown rather than
    // one failed full scan — and a dry rank backs off exponentially
    // (StealBackoff) instead of spinning its polls unbounded.
    NBODY_REQUIRE(n <= 0xFFFFFFFFull, "work_steal backend: range too large");
    const std::uint32_t grain =
        static_cast<std::uint32_t>(std::min<std::size_t>(dynamic_grain(n, p), 0xFFFFu));
    const std::size_t nchunks = (n + grain - 1) / grain;
    const VictimTable& topo = victim_table(p);
    const auto deques = std::make_unique<StealDeque[]>(p);
    for (unsigned r = 0; r < p; ++r) deques[r].reset(nchunks);
    // Seed: the j-th contiguous block of chunks goes to the rank in the
    // j-th topology seat (pushes happen-before the workers via dispatch).
    const std::size_t cbase = nchunks / p;
    const std::size_t crem = nchunks % p;
    for (unsigned j = 0; j < p; ++j) {
      const std::size_t cb = j * cbase + std::min<std::size_t>(j, crem);
      const std::size_t ce = cb + cbase + (j < crem ? 1 : 0);
      StealDeque& d = deques[topo.seed_seat()[j]];
      for (std::size_t c = cb; c < ce; ++c) {
        const std::size_t begin = c * grain;
        d.push_back({static_cast<std::uint32_t>(begin),
                     static_cast<std::uint32_t>(std::min(begin + grain, n))});
      }
    }
    std::atomic<std::size_t> remaining{nchunks};
    std::atomic<bool> failed{false};
    pool.run([&](unsigned rank) {
      progress_region guard(progress);
      RankSpan span(trace, label, rank);
      std::uint64_t chunks = 0, steals = 0, polls = 0;
      std::vector<IndexChunk> loot(nchunks);  // steal_half scratch
      StealDeque& own = deques[rank];
      const unsigned* victims = topo.victims_of(rank);
      detail::StealBackoff backoff;
      IndexChunk c;
      try {
        while (remaining.load(std::memory_order_acquire) != 0) {
          if (tok.stop_requested() || failed.load(std::memory_order_acquire))
            break;  // drain
          if (own.pop_front(c)) {
            f(c.begin, c.end, rank);
            ++chunks;
            remaining.fetch_sub(1, std::memory_order_acq_rel);
            backoff.reset();
            continue;
          }
          bool stole = false;
          for (unsigned v = 0; v + 1 < p && !stole; ++v) {
            ++polls;
            const std::size_t k = deques[victims[v]].steal_half(loot.data(), loot.size());
            if (k != 0) {
              for (std::size_t i = 0; i < k; ++i) own.push_back(loot[i]);
              stole = true;
              ++steals;
              backoff.reset();
            }
          }
          // All victims empty but chunks still in flight elsewhere: back off
          // instead of re-scanning at full rate.
          if (!stole) backoff.pause();
        }
      } catch (...) {
        // A throwing chunk never decrements `remaining`, so the countdown
        // can no longer reach zero — release the other ranks explicitly or
        // they back off forever. pool.run rethrows the first error after
        // every rank drains.
        failed.store(true, std::memory_order_release);
        throw;
      }
      pool.note_chunks(chunks);
      pool.note_steals(steals);
      pool.note_polls(polls);
    });
    throw_if_cancelled(tok);
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Parallel For
// ---------------------------------------------------------------------------

/// for_each over the index range [0, n): f(i). The index-range form matches
/// the views::iota + for_each idiom of the paper's Algorithm 1.
template <class Policy, class F>
  requires is_execution_policy_v<Policy>
void for_each_index(Policy, std::size_t n, F f) {
  if constexpr (!Policy::is_parallel) {
    const stop_token tok = ambient_stop_token();
    if (!tok.stop_possible()) {
      for (std::size_t i = 0; i < n; ++i) f(i);
      return;
    }
    // seq is cancellable too (deadlines apply at every rung of the
    // degradation ladder); here dispatcher == executor, so the poll may
    // throw directly between stripes.
    for (std::size_t s = 0; s < n; s += detail::kPollStripe) {
      detail::throw_if_cancelled(tok);
      const std::size_t e = std::min(s + detail::kPollStripe, n);
      for (std::size_t i = s; i < e; ++i) f(i);
    }
    detail::throw_if_cancelled(tok);
  } else {
    detail::parallel_blocks(thread_pool::global(), Policy::progress, n,
                            [&](std::size_t b, std::size_t e) {
                              for (std::size_t i = b; i < e; ++i) f(i);
                            });
  }
}

/// Iterator form over a contiguous random-access range.
template <class Policy, class It, class F>
  requires is_execution_policy_v<Policy>
void for_each(Policy policy, It first, It last, F f) {
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  for_each_index(policy, n, [&](std::size_t i) { f(first[i]); });
}

// ---------------------------------------------------------------------------
// Parallel Reduce
// ---------------------------------------------------------------------------

/// transform_reduce over [0, n): reduce(init, transform(i), ...).
///
/// Deterministic by construction: per-rank (static) or per-chunk (dynamic)
/// partials are combined sequentially in index order, so floating-point
/// results do not vary run to run — required for the paper's "consistent
/// final results across all systems" claim (Sec. V-A).
template <class Policy, class T, class Reduce, class Transform>
  requires is_execution_policy_v<Policy>
T transform_reduce_index(Policy, std::size_t n, T init, Reduce reduce, Transform transform) {
  if constexpr (!Policy::is_parallel) {
    const stop_token tok = ambient_stop_token();
    T acc = std::move(init);
    for (std::size_t s = 0; s < n; s += detail::kPollStripe) {
      if (tok.stop_possible()) detail::throw_if_cancelled(tok);
      const std::size_t e = std::min(s + detail::kPollStripe, n);
      for (std::size_t i = s; i < e; ++i) acc = reduce(std::move(acc), transform(i));
    }
    return acc;
  } else {
    if (n == 0) return init;
    auto& pool = thread_pool::global();
    const unsigned p = pool.concurrency();
    if (p == 1) {
      const stop_token tok = ambient_stop_token();
      progress_region guard(Policy::progress);
      T acc = std::move(init);
      for (std::size_t s = 0; s < n; s += detail::kPollStripe) {
        if (tok.stop_possible()) detail::throw_if_cancelled(tok);
        const std::size_t e = std::min(s + detail::kPollStripe, n);
        for (std::size_t i = s; i < e; ++i) acc = reduce(std::move(acc), transform(i));
      }
      return acc;
    }
    // One partial per fixed-size chunk, combined in chunk order.
    const std::size_t grain = std::max<std::size_t>(detail::dynamic_grain(n, p), 1);
    const std::size_t nchunks = (n + grain - 1) / grain;
    std::vector<T> partials(nchunks, init);
    std::vector<char> used(nchunks, 0);
    detail::parallel_blocks(pool, Policy::progress, nchunks, [&](std::size_t cb, std::size_t ce) {
      for (std::size_t c = cb; c < ce; ++c) {
        const std::size_t b = c * grain;
        const std::size_t e = std::min(b + grain, n);
        if (b >= e) continue;
        T acc = transform(b);
        for (std::size_t i = b + 1; i < e; ++i) acc = reduce(std::move(acc), transform(i));
        partials[c] = std::move(acc);
        used[c] = 1;
      }
    });
    T acc = std::move(init);
    for (std::size_t c = 0; c < nchunks; ++c)
      if (used[c]) acc = reduce(std::move(acc), std::move(partials[c]));
    return acc;
  }
}

/// Iterator form mirroring std::transform_reduce(policy, first, last, init,
/// reduce, transform) — the signature of the paper's Algorithm 3.
template <class Policy, class It, class T, class Reduce, class Transform>
  requires is_execution_policy_v<Policy>
T transform_reduce(Policy policy, It first, It last, T init, Reduce reduce,
                   Transform transform) {
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  return transform_reduce_index(policy, n, std::move(init), std::move(reduce),
                                [&](std::size_t i) { return transform(first[i]); });
}

// ---------------------------------------------------------------------------
// Parallel Sort
// ---------------------------------------------------------------------------

/// Comparison sort: parallel merge sort (stable). Runs are sorted in
/// parallel with std::stable_sort, then merged pairwise in log2 rounds with
/// each merge executed by one participant — wall-clock O(n log n / p + n).
template <class Policy, class It, class Comp = std::less<>>
  requires is_execution_policy_v<Policy>
void sort(Policy, It first, It last, Comp comp = {}) {
  using value_type = typename std::iterator_traits<It>::value_type;
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  auto& pool = thread_pool::global();
  const unsigned p = pool.concurrency();

  if constexpr (!Policy::is_parallel) {
    std::stable_sort(first, last, comp);
    return;
  }
  constexpr std::size_t kSerialCutoff = 1 << 12;
  if (p == 1 || n <= kSerialCutoff) {
    // A serial stable_sort has no chunk boundaries to poll at; honor a stop
    // that is already pending, then run to completion (bounded by cutoff).
    detail::throw_if_cancelled(ambient_stop_token());
    progress_region guard(Policy::progress);
    std::stable_sort(first, last, comp);
    return;
  }

  // Number of runs: smallest power of two >= p (so merge rounds pair evenly).
  std::size_t runs = 1;
  while (runs < p) runs <<= 1;
  while (runs > 1 && n / runs < 1024) runs >>= 1;  // keep runs big enough
  const std::size_t run_len = (n + runs - 1) / runs;

  auto run_bounds = [&](std::size_t r) {
    const std::size_t b = std::min(r * run_len, n);
    const std::size_t e = std::min(b + run_len, n);
    return std::pair{b, e};
  };

  detail::parallel_blocks(pool, Policy::progress, runs, [&](std::size_t rb, std::size_t re) {
    for (std::size_t r = rb; r < re; ++r) {
      auto [b, e] = run_bounds(r);
      std::stable_sort(first + static_cast<std::ptrdiff_t>(b),
                       first + static_cast<std::ptrdiff_t>(e), comp);
    }
  });

  // Ping-pong merge rounds.
  std::vector<value_type> buffer(n);
  bool data_in_input = true;
  for (std::size_t width = 1; width < runs; width <<= 1) {
    const std::size_t pairs = runs / (2 * width);
    auto merge_pair = [&](std::size_t pair_idx, auto* src, auto* dst) {
      const std::size_t lo = run_bounds(pair_idx * 2 * width).first;
      const std::size_t mid = run_bounds(pair_idx * 2 * width + width).first;
      const std::size_t hi =
          (pair_idx + 1) * 2 * width >= runs ? n : run_bounds((pair_idx + 1) * 2 * width).first;
      std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, comp);
    };
    if (data_in_input) {
      detail::parallel_blocks(pool, Policy::progress, pairs,
                              [&](std::size_t b, std::size_t e) {
                                for (std::size_t q = b; q < e; ++q)
                                  merge_pair(q, &*first, buffer.data());
                              });
    } else {
      detail::parallel_blocks(pool, Policy::progress, pairs,
                              [&](std::size_t b, std::size_t e) {
                                for (std::size_t q = b; q < e; ++q)
                                  merge_pair(q, buffer.data(), &*first);
                              });
    }
    data_in_input = !data_in_input;
  }
  if (!data_in_input) {
    detail::parallel_blocks(pool, Policy::progress, n, [&](std::size_t b, std::size_t e) {
      std::copy(buffer.begin() + static_cast<std::ptrdiff_t>(b),
                buffer.begin() + static_cast<std::ptrdiff_t>(e),
                first + static_cast<std::ptrdiff_t>(b));
    });
  }
}

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

/// Blocked two-pass exclusive scan over contiguous storage.
/// out[i] = init op in[0] op ... op in[i-1].
template <class Policy, class T, class Op = std::plus<>>
  requires is_execution_policy_v<Policy>
void exclusive_scan(Policy, const T* in, T* out, std::size_t n, T init, Op op = {}) {
  if (n == 0) return;
  auto& pool = thread_pool::global();
  const unsigned p = pool.concurrency();
  if constexpr (!Policy::is_parallel) {
    std::exclusive_scan(in, in + n, out, init, op);
    return;
  }
  const stop_token tok = ambient_stop_token();
  if (p == 1 || n < 4096) {
    detail::throw_if_cancelled(tok);
    progress_region guard(Policy::progress);
    std::exclusive_scan(in, in + n, out, init, op);
    return;
  }
  const std::size_t nblocks = p;
  const std::size_t block = (n + nblocks - 1) / nblocks;
  std::vector<T> block_sums(nblocks, T{});
  // Pass 1: local reductions (striped with cancellation polls when a stop
  // token is installed — a rank that observes the flag drains; the throw
  // happens here on the dispatching thread between passes).
  pool.run([&](unsigned rank) {
    progress_region guard(Policy::progress);
    const std::size_t b = std::min<std::size_t>(rank * block, n);
    const std::size_t e = std::min(b + block, n);
    T acc{};
    bool any = false;
    for (std::size_t s = b; s < e; s += detail::kPollStripe) {
      if (tok.stop_possible() && tok.stop_requested()) return;  // drain
      const std::size_t se = std::min(s + detail::kPollStripe, e);
      for (std::size_t i = s; i < se; ++i) {
        acc = any ? op(std::move(acc), in[i]) : in[i];
        any = true;
      }
      if (tok.stop_possible()) pool.beat(rank);
    }
    if (any) block_sums[rank] = std::move(acc);
  });
  detail::throw_if_cancelled(tok);
  // Sequential scan of block sums.
  std::vector<T> block_offsets(nblocks);
  T acc = init;
  for (std::size_t bidx = 0; bidx < nblocks; ++bidx) {
    block_offsets[bidx] = acc;
    acc = op(std::move(acc), block_sums[bidx]);
  }
  // Pass 2: local scans seeded with block offsets.
  pool.run([&](unsigned rank) {
    progress_region guard(Policy::progress);
    const std::size_t b = std::min<std::size_t>(rank * block, n);
    const std::size_t e = std::min(b + block, n);
    T local = block_offsets[rank];
    for (std::size_t s = b; s < e; s += detail::kPollStripe) {
      if (tok.stop_possible() && tok.stop_requested()) return;  // drain
      const std::size_t se = std::min(s + detail::kPollStripe, e);
      for (std::size_t i = s; i < se; ++i) {
        out[i] = local;
        local = op(std::move(local), in[i]);
      }
      if (tok.stop_possible()) pool.beat(rank);
    }
  });
  detail::throw_if_cancelled(tok);
}

/// Inclusive scan built on the exclusive one: out[i] = in[0] op ... op in[i].
template <class Policy, class T, class Op = std::plus<>>
  requires is_execution_policy_v<Policy>
void inclusive_scan(Policy policy, const T* in, T* out, std::size_t n, Op op = {}) {
  if (n == 0) return;
  exclusive_scan(policy, in, out, n, T{}, op);
  for_each_index(policy, n, [&](std::size_t i) { out[i] = op(out[i], in[i]); });
}

// ---------------------------------------------------------------------------
// Permutations (the paper's workaround for missing views::zip, Sec. V-A #2:
// sort an auxiliary key/index buffer, then apply it as a permutation)
// ---------------------------------------------------------------------------

/// Returns `perm` such that keys[perm[0]] <= keys[perm[1]] <= ... (stable).
template <class Policy, class Key>
  requires is_execution_policy_v<Policy>
std::vector<std::uint32_t> make_sort_permutation(Policy policy, const std::vector<Key>& keys) {
  NBODY_REQUIRE(keys.size() < (std::size_t{1} << 32), "sort permutation: too many elements");
  std::vector<std::pair<Key, std::uint32_t>> tagged(keys.size());
  for_each_index(policy, keys.size(), [&](std::size_t i) {
    tagged[i] = {keys[i], static_cast<std::uint32_t>(i)};
  });
  nbody::exec::sort(policy, tagged.begin(), tagged.end(),
                    [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::uint32_t> perm(keys.size());
  for_each_index(policy, keys.size(), [&](std::size_t i) { perm[i] = tagged[i].second; });
  return perm;
}

/// Gathers `src` through `perm` into `dst`: dst[i] = src[perm[i]].
template <class Policy, class T>
  requires is_execution_policy_v<Policy>
void apply_permutation(Policy policy, const std::vector<std::uint32_t>& perm,
                       const std::vector<T>& src, std::vector<T>& dst) {
  NBODY_REQUIRE(perm.size() == src.size(), "apply_permutation: size mismatch");
  dst.resize(src.size());
  for_each_index(policy, perm.size(), [&](std::size_t i) { dst[i] = src[perm[i]]; });
}

}  // namespace nbody::exec
