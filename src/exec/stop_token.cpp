#include "exec/stop_token.hpp"

#include "obs/metrics.hpp"
#include "obs/runtime.hpp"
#include "obs/trace.hpp"

namespace nbody::exec {

namespace {
// Ambient stop target, one per thread. The installer (scoped_ambient_stop on
// the dispatching thread, the pool's worker loop on workers) keeps the state
// alive for the scope's duration. Thread-local rather than process-global so
// concurrent jobs — server runner threads each inside their own guarded run —
// poll disjoint targets.
thread_local detail::stop_state* t_ambient = nullptr;
}  // namespace

const char* stop_cause_name(stop_cause c) noexcept {
  switch (c) {
    case stop_cause::none: return "none";
    case stop_cause::requested: return "requested";
    case stop_cause::deadline: return "deadline";
    case stop_cause::watchdog: return "watchdog";
  }
  return "?";
}

namespace detail {

bool stop_state::request(stop_cause cause, std::string reason) noexcept {
  if (claimed_.exchange(true, std::memory_order_acq_rel)) return false;
  cause_ = cause;
  // noexcept contract: losing the string on allocation failure is
  // acceptable, losing the stop is not.
  try {
    reason_ = std::move(reason);
  } catch (...) {
  }
  requested_.store(true, std::memory_order_release);
  return true;
}

stop_state* ambient_state() noexcept { return t_ambient; }

stop_state* exchange_ambient_state(stop_state* s) noexcept {
  stop_state* prev = t_ambient;
  t_ambient = s;
  return prev;
}

void ambient_progress_beat() noexcept {
  if (t_ambient != nullptr)
    t_ambient->progress_.fetch_add(1, std::memory_order_relaxed);
}

stop_state* job_region_enter() noexcept {
  stop_state* s = t_ambient;
  if (s != nullptr) s->active_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

void job_region_exit(stop_state* s) noexcept {
  if (s != nullptr) {
    s->progress_.fetch_add(1, std::memory_order_relaxed);
    s->active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace detail

Cancelled::Cancelled(stop_cause cause, const std::string& reason)
    : std::runtime_error("cancelled (" + std::string(stop_cause_name(cause)) +
                         "): " + reason),
      cause_(cause) {}

void stop_token::throw_if_stopped() const {
  if (stop_requested()) throw Cancelled(state_->cause(), state_->reason());
}

stop_source::stop_source() : state_(std::make_shared<detail::stop_state>()) {}

void stop_source::arm_deadline(std::chrono::nanoseconds budget, std::string reason) {
  arm_deadline_at(detail::stop_state::now_ns() +
                      static_cast<std::uint64_t>(budget.count()),
                  std::move(reason));
}

void stop_source::arm_deadline_at(std::uint64_t deadline_ns, std::string reason) {
  state_->deadline_ns_ = deadline_ns;
  state_->deadline_reason_ = std::move(reason);
}

bool stop_source::request_stop(stop_cause cause, std::string reason) {
  const bool won = state_->request(cause, std::move(reason));
  if (won) {
    if (auto* m = obs::global_metrics(); m != nullptr)
      m->counter("exec.cancel.requests").add();
    if (auto* t = obs::global_trace(); t != nullptr)
      t->instant("cancel.stop", std::string(stop_cause_name(cause)) + ": " +
                                    state_->reason());
  }
  return won;
}

stop_token ambient_stop_token() noexcept { return stop_token(t_ambient); }

scoped_ambient_stop::scoped_ambient_stop(stop_source& source) noexcept
    : saved_(detail::exchange_ambient_state(source.state().get())) {}

scoped_ambient_stop::~scoped_ambient_stop() {
  detail::exchange_ambient_state(saved_);
}

}  // namespace nbody::exec
