#include "exec/stop_token.hpp"

#include "obs/metrics.hpp"
#include "obs/runtime.hpp"
#include "obs/trace.hpp"

namespace nbody::exec {

namespace {
// Ambient stop target. Raw pointer + relaxed loads on the poll path; the
// installer (scoped_ambient_stop) keeps the source alive for the scope's
// duration, the same ownership contract obs::install_global uses.
std::atomic<detail::stop_state*> g_ambient{nullptr};
}  // namespace

const char* stop_cause_name(stop_cause c) noexcept {
  switch (c) {
    case stop_cause::none: return "none";
    case stop_cause::requested: return "requested";
    case stop_cause::deadline: return "deadline";
    case stop_cause::watchdog: return "watchdog";
  }
  return "?";
}

namespace detail {

bool stop_state::request(stop_cause cause, std::string reason) noexcept {
  if (claimed_.exchange(true, std::memory_order_acq_rel)) return false;
  cause_ = cause;
  // noexcept contract: losing the string on allocation failure is
  // acceptable, losing the stop is not.
  try {
    reason_ = std::move(reason);
  } catch (...) {
  }
  requested_.store(true, std::memory_order_release);
  return true;
}

}  // namespace detail

Cancelled::Cancelled(stop_cause cause, const std::string& reason)
    : std::runtime_error("cancelled (" + std::string(stop_cause_name(cause)) +
                         "): " + reason),
      cause_(cause) {}

void stop_token::throw_if_stopped() const {
  if (stop_requested()) throw Cancelled(state_->cause(), state_->reason());
}

stop_source::stop_source() : state_(std::make_shared<detail::stop_state>()) {}

void stop_source::arm_deadline(std::chrono::nanoseconds budget, std::string reason) {
  arm_deadline_at(detail::stop_state::now_ns() +
                      static_cast<std::uint64_t>(budget.count()),
                  std::move(reason));
}

void stop_source::arm_deadline_at(std::uint64_t deadline_ns, std::string reason) {
  state_->deadline_ns_ = deadline_ns;
  state_->deadline_reason_ = std::move(reason);
}

bool stop_source::request_stop(stop_cause cause, std::string reason) {
  const bool won = state_->request(cause, std::move(reason));
  if (won) {
    if (auto* m = obs::global_metrics(); m != nullptr)
      m->counter("exec.cancel.requests").add();
    if (auto* t = obs::global_trace(); t != nullptr)
      t->instant("cancel.stop", std::string(stop_cause_name(cause)) + ": " +
                                    state_->reason());
  }
  return won;
}

stop_token ambient_stop_token() noexcept {
  return stop_token(g_ambient.load(std::memory_order_relaxed));
}

scoped_ambient_stop::scoped_ambient_stop(stop_source& source) noexcept
    : saved_(g_ambient.exchange(source.state().get(), std::memory_order_relaxed)) {}

scoped_ambient_stop::~scoped_ambient_stop() {
  g_ambient.store(saved_, std::memory_order_relaxed);
}

}  // namespace nbody::exec
