// CPU topology model for the work-stealing backend: which worker ranks are
// hardware-near (same core, same last-level-cache cluster, same package), so
// steals probe nearby victims first and deque seeding hands curve-adjacent
// chunk blocks to hardware-adjacent ranks.
//
// Three sources, selected by NBODY_TOPOLOGY:
//
//   linux        read /sys/devices/system/cpu/cpuN/{topology,cache} (default;
//                falls back to flat when sysfs is absent or partial)
//   flat         deterministic fallback: one shared cluster, one core per
//                rank — victim order degenerates to ring order
//   fake:PxCxS   pinned synthetic hierarchy for tests: P packages, C
//                clusters per package, S cores per cluster; ranks are laid
//                onto cores round-robin
//
// The model is a *locality heuristic*: worker threads are not pinned, so
// rank r is mapped onto logical CPU r. A wrong guess costs a slightly worse
// probe order, never correctness — every rank still scans all victims.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nbody::exec {

class Topology {
 public:
  struct Loc {
    int package = 0;
    int cluster = 0;  // globally unique LLC-domain id
    int core = 0;     // globally unique physical-core id
  };

  /// Honors NBODY_TOPOLOGY (linux | flat | fake:PxCxS); unset or
  /// unparsable specs mean linux with flat fallback.
  static Topology detect(unsigned nranks);

  static Topology linux_sysfs(unsigned nranks);  // flat when sysfs is partial
  static Topology flat(unsigned nranks);
  static Topology fake(unsigned nranks, unsigned packages, unsigned clusters_per_package,
                       unsigned cores_per_cluster);

  [[nodiscard]] unsigned ranks() const { return static_cast<unsigned>(locs_.size()); }
  [[nodiscard]] const Loc& loc(unsigned rank) const { return locs_[rank]; }
  [[nodiscard]] const char* source() const { return source_; }

  /// Hierarchy distance: 0 same core, 1 same cluster, 2 same package,
  /// 3 cross-package.
  [[nodiscard]] unsigned distance(unsigned a, unsigned b) const;

  /// Victim probe order for `rank`: every other rank, nearest hierarchy
  /// level first, ties broken by ascending ring distance ((victim - rank)
  /// mod p) then by rank — fully deterministic for a fixed topology.
  [[nodiscard]] std::vector<unsigned> victim_order(unsigned rank) const;

  /// Deal-out order for deque seeding: ranks sorted by (package, cluster,
  /// core, rank). Assigning the j-th contiguous block of curve-ordered
  /// chunks to seed_order()[j] puts curve-adjacent work on
  /// hardware-adjacent ranks.
  [[nodiscard]] std::vector<unsigned> seed_order() const;

 private:
  std::vector<Loc> locs_;
  const char* source_ = "flat";
};

/// Flattened, cached victim orders + seed order for a pool of `nranks`
/// participants. Built once per (nranks, NBODY_TOPOLOGY) and shared by every
/// region dispatch; row r holds rank r's nranks-1 victims.
class VictimTable {
 public:
  explicit VictimTable(const Topology& topo);

  [[nodiscard]] unsigned ranks() const { return p_; }
  [[nodiscard]] const unsigned* victims_of(unsigned rank) const {
    return order_.data() + static_cast<std::size_t>(rank) * (p_ - 1);
  }
  /// seed_seat()[j] = rank owning the j-th contiguous chunk block.
  [[nodiscard]] const std::vector<unsigned>& seed_seat() const { return seats_; }
  [[nodiscard]] const char* source() const { return source_; }

 private:
  unsigned p_;
  std::vector<unsigned> order_;  // (p-1) victims per rank, concatenated
  std::vector<unsigned> seats_;
  const char* source_;
};

/// Process-cached VictimTable for a pool of `nranks` (>= 2) participants.
[[nodiscard]] const VictimTable& victim_table(unsigned nranks);

}  // namespace nbody::exec
