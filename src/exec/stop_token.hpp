// Cooperative cancellation: stop_source / stop_token in the shape of C++20
// <stop_token>, specialized for this library's execution substrate.
//
// A stop_source owns a shared stop state; stop_tokens are cheap views of it.
// A request can come from three places — an explicit request_stop() call, a
// wall-clock deadline armed on the source, or the thread-pool watchdog
// (exec/watchdog.hpp) — and every parallel algorithm polls the *ambient*
// token (installed with scoped_ambient_stop) at chunk and stripe boundaries,
// so chunk granularity bounds cancellation latency.
//
// The ambient target is *thread-local*, not process-global: concurrent jobs
// (server runner threads, each inside its own run_guarded) install disjoint
// scopes without clobbering each other. The thread pool propagates the
// dispatching thread's ambient state into its workers for the duration of
// each region (exec/thread_pool.cpp), so worker-side polls and heartbeats
// attribute to the job that dispatched the region.
//
// Cancellation is flag-then-drain under every policy: polls never throw
// inside a parallel region's iterations — a chunk loop that observes the
// flag simply stops claiming work — and the dispatching thread surfaces one
// `Cancelled` exception after the region drains, exactly like any other
// region failure. This is policy-legal even under par_unseq (no exception
// machinery, no synchronization beyond relaxed/acq-rel atomics inside the
// unsequenced iterations) and leaves no lock held: the only in-region throw
// sites are chunk boundaries, where no library lock is live.
//
// Cost when no token is installed: one relaxed atomic load (the ambient
// pointer) per region plus one predicted branch per stripe — measured ≤1%
// on the N=4096 octree force phase (bench/ablation_cancel, EXPERIMENTS.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace nbody::exec {

/// Why a stop was requested — carried by the state and by Cancelled so
/// Simulation::run_guarded can classify the recovery (deadline miss vs
/// watchdog trip vs explicit cancellation).
enum class stop_cause : std::uint8_t {
  none = 0,
  requested,  // explicit request_stop()
  deadline,   // the armed wall-clock deadline passed
  watchdog,   // the thread-pool watchdog tripped on a stalled rank
};

const char* stop_cause_name(stop_cause c) noexcept;

namespace detail {

/// Shared cancellation state. The reason/cause fields are written exactly
/// once, by whichever requester wins `claimed_`, strictly before the
/// `requested_` release-store that publishes them — readers load
/// `requested_` with acquire and may then read reason()/cause() freely.
struct stop_state {
  /// First-requester-wins. Returns true when this call performed the stop.
  bool request(stop_cause cause, std::string reason) noexcept;

  [[nodiscard]] bool stop_requested() noexcept {
    if (requested_.load(std::memory_order_acquire)) return true;
    if (deadline_ns_ != 0 && now_ns() >= deadline_ns_) {
      request(stop_cause::deadline, deadline_reason_);
      return true;
    }
    return false;
  }

  [[nodiscard]] stop_cause cause() const noexcept { return cause_; }
  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }

  [[nodiscard]] static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  std::atomic<bool> requested_{false};
  std::atomic<bool> claimed_{false};
  stop_cause cause_ = stop_cause::none;
  std::string reason_;
  // Steady-clock deadline in ns since epoch; 0 = none. Set before the state
  // is shared (stop_source::arm_deadline), read-only afterwards.
  std::uint64_t deadline_ns_ = 0;
  std::string deadline_reason_ = "deadline exceeded";

  // Per-job liveness accounting, maintained by the pool's region entry/exit
  // and chunk heartbeats while this state is the executing thread's ambient.
  // The watchdog samples *only its armed state's* counters, so concurrent
  // jobs sharing the pool can neither mask a neighbour's stall (their beats
  // don't advance this signature) nor trip a healthy neighbour.
  std::atomic<std::uint32_t> active_{0};    // regions in flight for this job
  std::atomic<std::uint64_t> progress_{0};  // heartbeats + region completions
};

/// Thread-local ambient accessors (exec-internal). The pool uses these to
/// install the dispatcher's ambient state on workers for a region's span.
[[nodiscard]] stop_state* ambient_state() noexcept;
stop_state* exchange_ambient_state(stop_state* s) noexcept;

/// Chunk/stripe heartbeat on the calling thread's ambient job state.
void ambient_progress_beat() noexcept;

/// Region accounting against the calling thread's ambient state: enter bumps
/// active_ and returns the state (may be nullptr); exit bumps progress_ and
/// drops active_. Pass enter's return value to exit even after an exception.
[[nodiscard]] stop_state* job_region_enter() noexcept;
void job_region_exit(stop_state* s) noexcept;

}  // namespace detail

/// The exception a cancelled region surfaces — caught by run_guarded like
/// any other step failure (FaultInjected, overflow, guard report).
class Cancelled : public std::runtime_error {
 public:
  Cancelled(stop_cause cause, const std::string& reason);
  [[nodiscard]] stop_cause cause() const noexcept { return cause_; }

 private:
  stop_cause cause_;
};

/// Cheap copyable view of a stop_source's state. A default-constructed
/// token is stopless: stop_requested() is false forever.
class stop_token {
 public:
  stop_token() = default;

  /// True once a stop was requested (or the armed deadline passed — the
  /// deadline is folded into the poll so no helper thread is needed to
  /// enforce it). Safe from any policy: relaxed/acquire atomics only.
  [[nodiscard]] bool stop_requested() const noexcept {
    return state_ != nullptr && state_->stop_requested();
  }

  /// True when this token can ever report a stop (has a state).
  [[nodiscard]] bool stop_possible() const noexcept { return state_ != nullptr; }

  [[nodiscard]] stop_cause cause() const noexcept {
    return state_ != nullptr ? state_->cause() : stop_cause::none;
  }
  [[nodiscard]] std::string reason() const {
    return state_ != nullptr ? state_->reason() : std::string{};
  }

  /// Throws Cancelled when stopped. Call only at safe points (no locks
  /// held); the scheduling backends never call this from inside a region's
  /// iterations — see the flag-then-drain contract above.
  void throw_if_stopped() const;

 private:
  friend class stop_source;
  friend stop_token ambient_stop_token() noexcept;
  explicit stop_token(detail::stop_state* s) noexcept : state_(s) {}
  detail::stop_state* state_ = nullptr;
};

/// Owns a cancellation state. One source per cancellable scope (run_guarded
/// creates a fresh one per step attempt, so a consumed stop never leaks
/// into the retry).
class stop_source {
 public:
  stop_source();
  stop_source(const stop_source&) = delete;
  stop_source& operator=(const stop_source&) = delete;

  /// Arms a wall-clock deadline `budget` from now; polls observe it lazily.
  /// Call before sharing tokens (not synchronized against concurrent polls
  /// of the same source).
  void arm_deadline(std::chrono::nanoseconds budget,
                    std::string reason = "deadline exceeded");
  /// Absolute steady-clock deadline in ns (stop_state::now_ns() scale).
  void arm_deadline_at(std::uint64_t deadline_ns,
                       std::string reason = "deadline exceeded");

  /// Requests a stop; first caller wins and sets cause/reason. Returns true
  /// when this call performed the transition. Bumps the ambient
  /// `exec.cancel.requests` metric and emits a `cancel.stop` trace instant.
  bool request_stop(stop_cause cause = stop_cause::requested,
                    std::string reason = "stop requested");

  [[nodiscard]] bool stop_requested() const noexcept {
    return state_->stop_requested();
  }
  [[nodiscard]] stop_token token() noexcept { return stop_token(state_.get()); }

  /// Shared handle for monitors that may outlive one attempt's stack frame
  /// (the watchdog holds one while sampling).
  [[nodiscard]] std::shared_ptr<detail::stop_state> state() const noexcept {
    return state_;
  }

 private:
  std::shared_ptr<detail::stop_state> state_;
};

/// The ambient token every exec algorithm polls: one relaxed atomic load.
/// Stopless when nothing is installed.
[[nodiscard]] stop_token ambient_stop_token() noexcept;

/// RAII: installs `source`'s state as the calling thread's ambient stop
/// target and restores the previous one on destruction (scopes nest). The
/// source must outlive the scope. Install around a cancellable region from
/// the *calling* thread before dispatch — the pool mirrors the dispatcher's
/// ambient into every worker for the region's duration, so the token is
/// visible to every rank without threading a parameter through the
/// policy-based algorithm signatures, and concurrent jobs on other threads
/// keep their own targets.
class scoped_ambient_stop {
 public:
  explicit scoped_ambient_stop(stop_source& source) noexcept;
  scoped_ambient_stop(const scoped_ambient_stop&) = delete;
  scoped_ambient_stop& operator=(const scoped_ambient_stop&) = delete;
  ~scoped_ambient_stop();

 private:
  detail::stop_state* saved_;
};

}  // namespace nbody::exec
