// Per-worker chunk arena: hands out contiguous index blocks from a shared
// pool in rank-local chunks, so the hot allocation path (octree subdivision
// under concurrent insertion) is a plain local bump instead of a shared
// atomic fetch_add per group. Node references stay plain indices into the
// tree's flat arrays — the tree remains relocatable and cache-dense, and a
// chunk allocated by one rank holds curve-adjacent sibling groups.
//
// Protocol:
//   reset(base, limit, chunk, slots)  carve [base, limit) into chunk-sized
//                                     blocks, one active block per slot
//   allocate(slot, n, first)          bump n indices from slot's active
//                                     chunk; refills from the freelist or
//                                     the shared bump pointer when spent
//   retire_all()                      region exit: every slot's partial
//                                     chunk goes back to the freelist, so
//                                     the next region (or an incremental
//                                     update) reuses it — nothing leaks
//
// Conservation is checkable: every index drawn from the shared bump pointer
// is either served to a caller, parked in a slot's active chunk (held()),
// or parked on the freelist — leaked() computes the difference and is zero
// whenever the arena is healthy. Tests assert held() == 0 and leaked() == 0
// after retire_all().
//
// Thread-safety: allocate() is safe concurrently across distinct slots (the
// scheduler maps worker rank -> slot; a clamped slot collision would mean
// two threads sharing a bump pointer, which the pool's rank-uniqueness rules
// out within a region). reset(), retire_all(), held(), leaked(), and
// stats() are region-boundary operations — callers serialize them.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "exec/atomic.hpp"
#include "support/assert.hpp"

namespace nbody::exec {

class ChunkArena {
 public:
  ChunkArena() = default;
  // Movable so the owning tree stays movable. Moves are region-boundary
  // operations (no concurrent allocate()); the mutex itself carries no
  // state worth moving.
  ChunkArena(ChunkArena&& other) noexcept { move_from(other); }
  ChunkArena& operator=(ChunkArena&& other) noexcept {
    if (this != &other) move_from(other);
    return *this;
  }
  ChunkArena(const ChunkArena&) = delete;
  ChunkArena& operator=(const ChunkArena&) = delete;

  struct Stats {
    std::uint64_t refills = 0;          // chunks drawn from the shared bump
    std::uint64_t freelist_reuses = 0;  // chunks re-issued from the freelist
    std::uint64_t retired = 0;          // partial chunks returned by retire_all
    std::uint64_t local_allocs = 0;     // allocations served by a local bump
  };

  /// Carves [base, limit) into `chunk`-sized blocks for `slots` workers.
  /// Drops any previous state (freelist, per-slot chunks, counters).
  void reset(std::uint32_t base, std::uint32_t limit, std::uint32_t chunk, unsigned slots) {
    NBODY_REQUIRE(base <= limit, "ChunkArena: base past limit");
    NBODY_REQUIRE(chunk > 0, "ChunkArena: zero chunk size");
    NBODY_REQUIRE(slots > 0, "ChunkArena: zero slots");
    base_ = base;
    limit_ = limit;
    chunk_ = chunk;
    bump_ = base;
    slots_.assign(slots, Slot{});
    std::lock_guard<std::mutex> lock(mutex_);
    freelist_.clear();
    freelist_total_ = 0;
    refills_ = 0;
    reuses_ = 0;
    retired_ = 0;
  }

  /// Allocates `n` contiguous indices (n <= chunk) for the worker in
  /// `slot` (clamped mod the slot count); returns false when the pool is
  /// exhausted — the caller's overflow/retry ladder takes it from there.
  bool allocate(unsigned slot, std::uint32_t n, std::uint32_t& first) {
    NBODY_REQUIRE(n > 0 && n <= chunk_, "ChunkArena: allocation larger than chunk");
    Slot& s = slots_[slot % slots_.size()];
    if (s.end - s.cur >= n) {
      first = s.cur;
      s.cur += n;
      s.served += n;
      ++s.local;
      return true;
    }
    return refill_and_allocate(s, n, first);
  }

  /// Region exit (single-threaded): parks every slot's partial chunk on the
  /// freelist. After this, held() == 0 and leaked() == 0.
  void retire_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Slot& s : slots_) {
      if (s.cur < s.end) {
        freelist_.emplace_back(s.cur, s.end);
        freelist_total_ += s.end - s.cur;
        ++retired_;
      }
      s.cur = s.end = 0;
    }
  }

  /// One past the highest index ever handed out (base when untouched).
  [[nodiscard]] std::uint32_t high_water() const {
    const std::uint32_t b = exec::load_relaxed(const_cast<std::uint32_t&>(bump_));
    return b < limit_ ? b : limit_;
  }

  /// Total indices handed to callers across all slots (region-boundary
  /// read; served indices are never returned, so this is the live count).
  [[nodiscard]] std::uint64_t served() const {
    std::uint64_t t = 0;
    for (const Slot& s : slots_) t += s.served;
    return t;
  }

  /// Indices parked in rank-local active chunks (0 after retire_all).
  [[nodiscard]] std::uint64_t held() const {
    std::uint64_t h = 0;
    for (const Slot& s : slots_) h += s.end - s.cur;
    return h;
  }

  /// Conservation check: indices drawn from the bump minus (served + held +
  /// freelist). Zero whenever the arena is healthy.
  [[nodiscard]] std::int64_t leaked() const {
    const std::uint64_t drawn = high_water() - base_;
    std::uint64_t served = 0;
    for (const Slot& s : slots_) served += s.served;
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<std::int64_t>(drawn) - static_cast<std::int64_t>(served) -
           static_cast<std::int64_t>(held()) - static_cast<std::int64_t>(freelist_total_);
  }

  [[nodiscard]] Stats stats() const {
    Stats st;
    std::lock_guard<std::mutex> lock(mutex_);
    st.refills = refills_;
    st.freelist_reuses = reuses_;
    st.retired = retired_;
    for (const Slot& s : slots_) st.local_allocs += s.local;
    return st;
  }

 private:
  void move_from(ChunkArena& other) {
    base_ = other.base_;
    limit_ = other.limit_;
    chunk_ = other.chunk_;
    bump_ = other.bump_;
    slots_ = std::move(other.slots_);
    freelist_ = std::move(other.freelist_);
    freelist_total_ = other.freelist_total_;
    refills_ = other.refills_;
    reuses_ = other.reuses_;
    retired_ = other.retired_;
  }

  struct alignas(64) Slot {
    std::uint32_t cur = 0;
    std::uint32_t end = 0;
    std::uint64_t served = 0;  // indices handed to callers from this slot
    std::uint64_t local = 0;   // allocations served without touching shared state
  };

  bool refill_and_allocate(Slot& s, std::uint32_t n, std::uint32_t& first) {
    std::lock_guard<std::mutex> lock(mutex_);
    // Park the remainder of the spent chunk (always smaller than n, but a
    // same-size request later can still use it when n < chunk).
    if (s.cur < s.end) {
      freelist_.emplace_back(s.cur, s.end);
      freelist_total_ += s.end - s.cur;
    }
    s.cur = s.end = 0;
    // Prefer retired partials over fresh bump space: incremental updates
    // reuse what the build left behind instead of growing the tree.
    for (std::size_t i = 0; i < freelist_.size(); ++i) {
      if (freelist_[i].second - freelist_[i].first >= n) {
        s.cur = freelist_[i].first;
        s.end = freelist_[i].second;
        freelist_total_ -= s.end - s.cur;
        freelist_[i] = freelist_.back();
        freelist_.pop_back();
        ++reuses_;
        first = s.cur;
        s.cur += n;
        s.served += n;
        return true;
      }
    }
    // Fresh chunk from the shared bump; the tail block may be partial.
    const std::uint32_t start = exec::fetch_add_relaxed(bump_, chunk_);
    if (start >= limit_ || limit_ - start < n) {
      // A tail fragment too small for this request still gets parked so
      // conservation (leaked() == 0) holds on the overflow path.
      if (start < limit_) {
        freelist_.emplace_back(start, limit_);
        freelist_total_ += limit_ - start;
      }
      return false;
    }
    s.cur = start;
    s.end = limit_ - start < chunk_ ? limit_ : start + chunk_;
    ++refills_;
    first = s.cur;
    s.cur += n;
    s.served += n;
    return true;
  }

  std::uint32_t base_ = 0;
  std::uint32_t limit_ = 0;
  std::uint32_t chunk_ = 1;
  std::uint32_t bump_ = 0;  // shared bump pointer (atomic access)
  std::vector<Slot> slots_;
  mutable std::mutex mutex_;                                 // freelist + counters
  std::vector<std::pair<std::uint32_t, std::uint32_t>> freelist_;
  std::uint64_t freelist_total_ = 0;
  std::uint64_t refills_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t retired_ = 0;
};

}  // namespace nbody::exec
