#include "exec/thread_pool.hpp"

#include "support/assert.hpp"
#include "support/env.hpp"
#include "support/fault.hpp"

namespace nbody::exec {

namespace {
thread_local bool t_in_region = false;

struct region_flag_guard {
  region_flag_guard() { t_in_region = true; }
  ~region_flag_guard() { t_in_region = false; }
};
}  // namespace

thread_pool::thread_pool(unsigned concurrency) : concurrency_(concurrency) {
  NBODY_REQUIRE(concurrency >= 1, "thread_pool: concurrency must be >= 1");
  workers_.reserve(concurrency - 1);
  for (unsigned r = 1; r < concurrency; ++r) {
    workers_.emplace_back([this, r] { worker_main(r); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void thread_pool::run(support::function_ref<void(unsigned)> f) {
  if (concurrency_ == 1 || t_in_region) {
    // Inline (or nested) execution: run every rank sequentially. Nested
    // parallelism degrades gracefully instead of deadlocking the team.
    region_flag_guard guard;
    for (unsigned r = 0; r < concurrency_; ++r) {
      support::fault_point(support::FaultSite::pool_task);
      f(r);
    }
    return;
  }

  {
    std::lock_guard lock(mutex_);
    job_ = &f;
    remaining_ = concurrency_ - 1;
    ++epoch_;
  }
  start_cv_.notify_all();

  {
    region_flag_guard guard;
    try {
      support::fault_point(support::FaultSite::pool_task);
      f(0);
    } catch (...) {
      std::lock_guard lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }

  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
  }

  std::exception_ptr err;
  {
    std::lock_guard lock(error_mutex_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void thread_pool::worker_main(unsigned rank) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    support::function_ref<void(unsigned)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    {
      region_flag_guard guard;
      try {
        support::fault_point(support::FaultSite::pool_task);
        (*job)(rank);
      } catch (...) {
        std::lock_guard lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

thread_pool& thread_pool::global() {
  static thread_pool pool([] {
    const std::size_t hw = std::thread::hardware_concurrency();
    const std::size_t n = support::env_size("NBODY_THREADS", hw == 0 ? 1 : hw);
    return static_cast<unsigned>(n == 0 ? 1 : n);
  }());
  return pool;
}

bool thread_pool::in_parallel_region() noexcept { return t_in_region; }

}  // namespace nbody::exec
