#include "exec/thread_pool.hpp"

#include <chrono>
#include <string>

#include "obs/metrics.hpp"
#include "obs/runtime.hpp"
#include "support/assert.hpp"
#include "support/env.hpp"
#include "support/fault.hpp"

namespace nbody::exec {

namespace {
thread_local bool t_in_region = false;

struct region_flag_guard {
  region_flag_guard() { t_in_region = true; }
  ~region_flag_guard() { t_in_region = false; }
};

std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Enter/exit accounting against the calling thread's ambient job state,
// exception-safe across both execution paths of run().
struct job_region_scope {
  detail::stop_state* state = detail::job_region_enter();
  job_region_scope() = default;
  job_region_scope(const job_region_scope&) = delete;
  job_region_scope& operator=(const job_region_scope&) = delete;
  ~job_region_scope() { detail::job_region_exit(state); }
};
}  // namespace

thread_pool::thread_pool(unsigned concurrency)
    : concurrency_(concurrency), rank_counters_(new RankCounters[concurrency]) {
  NBODY_REQUIRE(concurrency >= 1, "thread_pool: concurrency must be >= 1");
  workers_.reserve(concurrency - 1);
  for (unsigned r = 1; r < concurrency; ++r) {
    workers_.emplace_back([this, r] { worker_main(r); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void thread_pool::run_rank(support::function_ref<void(unsigned)>& f, unsigned rank) {
  support::fault_point(support::FaultSite::pool_task);
  const std::uint64_t start = mono_ns();
  f(rank);
  auto& rc = rank_counters_[rank];
  rc.busy_ns.fetch_add(mono_ns() - start, std::memory_order_relaxed);
  rc.tasks.fetch_add(1, std::memory_order_relaxed);
}

void thread_pool::run(support::function_ref<void(unsigned)> f) {
  const std::uint64_t region_start = mono_ns();
  if (concurrency_ == 1 || t_in_region) {
    // Inline (or nested) execution: run every rank sequentially. Nested
    // parallelism degrades gracefully instead of deadlocking the team.
    regions_.fetch_add(1, std::memory_order_relaxed);
    job_region_scope job_scope;
    region_flag_guard guard;
    try {
      for (unsigned r = 0; r < concurrency_; ++r) run_rank(f, r);
    } catch (...) {
      regions_done_.fetch_add(1, std::memory_order_relaxed);
      region_wall_ns_.fetch_add(mono_ns() - region_start, std::memory_order_relaxed);
      throw;
    }
    regions_done_.fetch_add(1, std::memory_order_relaxed);
    region_wall_ns_.fetch_add(mono_ns() - region_start, std::memory_order_relaxed);
    return;
  }

  // One dispatched region at a time: concurrent job threads queue here FIFO.
  // The job's active_/progress_ accounting starts only once the region is
  // actually dispatched — time spent queued is not a stall.
  std::lock_guard dispatch_lock(dispatch_mutex_);
  regions_.fetch_add(1, std::memory_order_relaxed);
  job_region_scope job_scope;

  {
    std::lock_guard lock(mutex_);
    job_ = &f;
    region_ambient_ = job_scope.state;
    remaining_ = concurrency_ - 1;
    ++epoch_;
  }
  start_cv_.notify_all();

  {
    region_flag_guard guard;
    try {
      run_rank(f, 0);
    } catch (...) {
      std::lock_guard lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }

  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
    region_ambient_ = nullptr;
  }
  regions_done_.fetch_add(1, std::memory_order_relaxed);
  region_wall_ns_.fetch_add(mono_ns() - region_start, std::memory_order_relaxed);

  std::exception_ptr err;
  {
    std::lock_guard lock(error_mutex_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void thread_pool::worker_main(unsigned rank) {
  obs::set_thread_rank(rank);
  std::uint64_t seen_epoch = 0;
  for (;;) {
    support::function_ref<void(unsigned)>* job = nullptr;
    detail::stop_state* job_state = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      // Service a pending region even when shutdown raced in: returning here
      // with epoch_ != seen_epoch would leave remaining_ stuck above zero and
      // deadlock the dispatcher in done_cv_.wait (with job_ never cleared) —
      // and through it, the destructor's join. Shutdown only wins once the
      // region backlog is drained.
      if (epoch_ == seen_epoch) return;  // shutdown_, nothing pending
      seen_epoch = epoch_;
      job = job_;
      job_state = region_ambient_;
    }
    {
      // Mirror the dispatcher's ambient stop state for this region's span so
      // this rank's token polls, hang-site reclaim, and heartbeats all hit
      // the dispatching job's state rather than a stale or foreign one.
      region_flag_guard guard;
      detail::stop_state* saved = detail::exchange_ambient_state(job_state);
      try {
        run_rank(*job, rank);
      } catch (...) {
        std::lock_guard lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      detail::exchange_ambient_state(saved);
    }
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

thread_pool::Stats thread_pool::stats() const noexcept {
  Stats s;
  s.regions = regions_.load(std::memory_order_relaxed);
  s.region_wall_ns = region_wall_ns_.load(std::memory_order_relaxed);
  s.chunks = chunks_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.polls = polls_.load(std::memory_order_relaxed);
  for (unsigned r = 0; r < concurrency_; ++r) {
    s.tasks += rank_counters_[r].tasks.load(std::memory_order_relaxed);
    s.busy_ns += rank_counters_[r].busy_ns.load(std::memory_order_relaxed);
  }
  return s;
}

std::uint64_t thread_pool::rank_tasks(unsigned rank) const noexcept {
  return rank < concurrency_ ? rank_counters_[rank].tasks.load(std::memory_order_relaxed)
                             : 0;
}

std::uint64_t thread_pool::rank_busy_ns(unsigned rank) const noexcept {
  return rank < concurrency_ ? rank_counters_[rank].busy_ns.load(std::memory_order_relaxed)
                             : 0;
}

std::uint64_t thread_pool::rank_progress(unsigned rank) const noexcept {
  return rank < concurrency_
             ? rank_counters_[rank].progress.load(std::memory_order_relaxed)
             : 0;
}

std::uint64_t thread_pool::progress_sum() const noexcept {
  std::uint64_t sum = 0;
  for (unsigned r = 0; r < concurrency_; ++r)
    sum += rank_counters_[r].progress.load(std::memory_order_relaxed);
  return sum;
}

void thread_pool::note_chunks(std::uint64_t n) noexcept {
  if (n != 0) chunks_.fetch_add(n, std::memory_order_relaxed);
}

void thread_pool::note_steals(std::uint64_t n) noexcept {
  if (n != 0) steals_.fetch_add(n, std::memory_order_relaxed);
}

void thread_pool::note_polls(std::uint64_t n) noexcept {
  if (n != 0) polls_.fetch_add(n, std::memory_order_relaxed);
}

void export_pool_metrics(const thread_pool& pool, obs::MetricsRegistry& reg) {
  const thread_pool::Stats s = pool.stats();
  reg.set_gauge("pool.concurrency", static_cast<double>(pool.concurrency()));
  reg.set_gauge("pool.regions", static_cast<double>(s.regions));
  reg.set_gauge("pool.tasks", static_cast<double>(s.tasks));
  reg.set_gauge("pool.chunks", static_cast<double>(s.chunks));
  reg.set_gauge("pool.steals", static_cast<double>(s.steals));
  reg.set_gauge("pool.polls", static_cast<double>(s.polls));
  reg.set_gauge("pool.busy_seconds", static_cast<double>(s.busy_ns) * 1e-9);
  const double capacity_ns =
      static_cast<double>(s.region_wall_ns) * static_cast<double>(pool.concurrency());
  reg.set_gauge("pool.utilization",
                capacity_ns > 0.0 ? static_cast<double>(s.busy_ns) / capacity_ns : 0.0);
  for (unsigned r = 0; r < pool.concurrency(); ++r) {
    const std::string prefix = "pool.worker." + std::to_string(r) + ".";
    reg.set_gauge(prefix + "tasks", static_cast<double>(pool.rank_tasks(r)));
    reg.set_gauge(prefix + "busy_seconds", static_cast<double>(pool.rank_busy_ns(r)) * 1e-9);
  }
}

thread_pool& thread_pool::global() {
  static thread_pool pool([] {
    const std::size_t hw = std::thread::hardware_concurrency();
    const std::size_t n = support::env_size("NBODY_THREADS", hw == 0 ? 1 : hw);
    return static_cast<unsigned>(n == 0 ? 1 : n);
  }());
  return pool;
}

bool thread_pool::in_parallel_region() noexcept { return t_in_region; }

}  // namespace nbody::exec
