// Parallel LSD radix sort for (key, payload) pairs.
//
// Motivation from the paper: Fig. 8 attributes most of the per-toolchain
// runtime variation to std::sort, "which is not necessarily optimised in all
// compilers". A radix sort is the classic answer for the BVH's 64-bit SFC
// keys: O(passes * n) instead of O(n log n) comparisons. This one processes
// 8 bits per pass with the standard three-phase parallel scheme:
//
//   1. per-block digit histograms               (parallel over blocks)
//   2. exclusive scan of the (digit, block) counts — digit-major, so equal
//      digits keep block order and the sort is stable
//   3. stable scatter                           (parallel over blocks)
//
// `key_bits` bounds the number of passes; SFC keys use D*bits_per_axis bits,
// so the BVH pipeline runs 8 passes for 3-D (63-bit) keys and can run fewer
// for coarser grids.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "exec/algorithms.hpp"
#include "support/assert.hpp"

namespace nbody::exec {

namespace detail {
inline constexpr unsigned kRadixBits = 8;
inline constexpr std::size_t kBuckets = 1u << kRadixBits;
}  // namespace detail

/// Stable ascending sort of `items` by `.first` (unsigned key). Keys must
/// fit in the low `key_bits` bits; higher bits are ignored by construction
/// of the pass count, so passing a too-small key_bits mis-sorts.
template <class Policy, class Key, class Payload>
  requires is_execution_policy_v<Policy> && std::is_unsigned_v<Key>
void radix_sort_pairs(Policy, std::vector<std::pair<Key, Payload>>& items,
                      unsigned key_bits = sizeof(Key) * 8) {
  NBODY_REQUIRE(key_bits >= 1 && key_bits <= sizeof(Key) * 8,
                "radix_sort_pairs: key_bits out of range");
  using Item = std::pair<Key, Payload>;
  const std::size_t n = items.size();
  if (n < 2) return;

  auto& pool = thread_pool::global();
  const std::size_t nblocks =
      Policy::is_parallel ? std::max<std::size_t>(pool.concurrency(), 1) : 1;
  const std::size_t block = (n + nblocks - 1) / nblocks;
  const unsigned passes = (key_bits + detail::kRadixBits - 1) / detail::kRadixBits;

  std::vector<Item> buffer(n);
  Item* src = items.data();
  Item* dst = buffer.data();
  // counts[b * kBuckets + d]: occurrences of digit d in block b.
  std::vector<std::size_t> counts(nblocks * detail::kBuckets);

  auto run_blocks = [&](auto&& fn) {
    if constexpr (Policy::is_parallel) {
      pool.run([&](unsigned rank) {
        progress_region guard(Policy::progress);
        if (rank < nblocks) fn(static_cast<std::size_t>(rank));
      });
    } else {
      fn(std::size_t{0});
    }
  };

  for (unsigned pass = 0; pass < passes; ++pass) {
    const unsigned shift = pass * detail::kRadixBits;
    // Phase 1: histograms.
    std::fill(counts.begin(), counts.end(), 0);
    run_blocks([&](std::size_t b) {
      const std::size_t lo = std::min(b * block, n);
      const std::size_t hi = std::min(lo + block, n);
      auto* my = counts.data() + b * detail::kBuckets;
      for (std::size_t i = lo; i < hi; ++i)
        ++my[(src[i].first >> shift) & (detail::kBuckets - 1)];
    });
    // Phase 2: digit-major exclusive scan (sequential: 256 * nblocks terms).
    std::size_t running = 0;
    for (std::size_t d = 0; d < detail::kBuckets; ++d) {
      for (std::size_t b = 0; b < nblocks; ++b) {
        const std::size_t c = counts[b * detail::kBuckets + d];
        counts[b * detail::kBuckets + d] = running;
        running += c;
      }
    }
    // Phase 3: stable scatter.
    run_blocks([&](std::size_t b) {
      const std::size_t lo = std::min(b * block, n);
      const std::size_t hi = std::min(lo + block, n);
      auto* my = counts.data() + b * detail::kBuckets;
      for (std::size_t i = lo; i < hi; ++i) {
        const auto d = (src[i].first >> shift) & (detail::kBuckets - 1);
        dst[my[d]++] = src[i];
      }
    });
    std::swap(src, dst);
  }
  // Odd pass count leaves the data in `buffer`.
  if (src != items.data()) {
    std::copy(src, src + n, items.data());
  }
}

/// Radix-sort counterpart of make_sort_permutation: returns the stable
/// ascending permutation of `keys`.
template <class Policy, class Key>
  requires is_execution_policy_v<Policy> && std::is_unsigned_v<Key>
std::vector<std::uint32_t> make_radix_sort_permutation(Policy policy,
                                                       const std::vector<Key>& keys,
                                                       unsigned key_bits = sizeof(Key) * 8) {
  NBODY_REQUIRE(keys.size() < (std::size_t{1} << 32), "radix permutation: too many elements");
  std::vector<std::pair<Key, std::uint32_t>> tagged(keys.size());
  for_each_index(policy, keys.size(), [&](std::size_t i) {
    tagged[i] = {keys[i], static_cast<std::uint32_t>(i)};
  });
  radix_sort_pairs(policy, tagged, key_bits);
  std::vector<std::uint32_t> perm(keys.size());
  for_each_index(policy, keys.size(), [&](std::size_t i) { perm[i] = tagged[i].second; });
  return perm;
}

}  // namespace nbody::exec
