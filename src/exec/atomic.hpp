// Atomic building blocks used by the concurrent tree algorithms, matching the
// operations the paper enumerates in Sec. II:
//
//   fetch_add(relaxed)        — bump allocation, multipole accumulation
//   compare_exchange(acq/rel) — the Empty/Body/Locked leaf protocol
//   acquire loads / release stores — publishing sub-divided children
//
// Helpers that synchronize (everything except the relaxed ones) call
// note_vectorization_unsafe_op() so misuse under par_unseq is detected —
// relaxed atomics are also formally vectorization-unsafe in ISO C++, but we
// only flag the synchronizing ones because those are what actually deadlock
// lockstep hardware; this mirrors the paper's practical BVH/Octree split.
//
// Under NBODY_CHAOS builds every helper additionally reports to the chaos
// race detector (exec/chaos/hooks.hpp): synchronizing operations reached
// inside a par_unseq region become attributable policy violations, and the
// access log records (rank, address, lock-set, policy) per operation.
#pragma once

#include <atomic>
#include <type_traits>

#include "exec/chaos/hooks.hpp"
#include "exec/policy.hpp"

namespace nbody::exec {

/// Relaxed fetch-add for integral types (bump allocator, arrival counters
/// when no ordering is needed).
template <class T>
  requires std::is_integral_v<T>
inline T fetch_add_relaxed(T& loc, T v) noexcept {
  chaos::hook_atomic(&loc, "fetch_add_relaxed", false);
  return std::atomic_ref<T>(loc).fetch_add(v, std::memory_order_relaxed);
}

/// Relaxed fetch-add for floating-point accumulation (multipole reduction,
/// Fig. 2). Implemented as a CAS loop: libstdc++'s atomic_ref<double>
/// fetch_add is available, but the loop keeps the operation lock-free on
/// every target and makes the memory order explicit.
template <class T>
  requires std::is_floating_point_v<T>
inline T fetch_add_relaxed(T& loc, T v) noexcept {
  chaos::hook_atomic(&loc, "fetch_add_relaxed", false);
  std::atomic_ref<T> ref(loc);
  T expected = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(expected, expected + v, std::memory_order_relaxed,
                                    std::memory_order_relaxed)) {
  }
  return expected;
}

/// Sequentially-consistent fetch-adds — the C++ default ordering the paper
/// explicitly tunes *away* from ("To enhance performance beyond atomics'
/// default sequentially consistent memory ordering, acquire/release
/// operations are used", Sec. IV-A-1). Kept for the memory-order ablation.
template <class T>
  requires std::is_integral_v<T>
inline T fetch_add_seq_cst(T& loc, T v) noexcept {
  note_vectorization_unsafe_op();
  chaos::hook_atomic(&loc, "fetch_add_seq_cst", true);
  return std::atomic_ref<T>(loc).fetch_add(v, std::memory_order_seq_cst);
}

template <class T>
  requires std::is_floating_point_v<T>
inline T fetch_add_seq_cst(T& loc, T v) noexcept {
  note_vectorization_unsafe_op();
  chaos::hook_atomic(&loc, "fetch_add_seq_cst", true);
  std::atomic_ref<T> ref(loc);
  T expected = ref.load(std::memory_order_seq_cst);
  while (!ref.compare_exchange_weak(expected, expected + v, std::memory_order_seq_cst,
                                    std::memory_order_seq_cst)) {
  }
  return expected;
}

/// Acquire+release fetch-add: the per-node arrival counter of the multipole
/// tree reduction. The release makes this thread's accumulated moments
/// visible; the acquire lets the last arriver observe its siblings' moments.
template <class T>
  requires std::is_integral_v<T>
inline T fetch_add_acq_rel(T& loc, T v) noexcept {
  note_vectorization_unsafe_op();
  chaos::hook_atomic(&loc, "fetch_add_acq_rel", true);
  return std::atomic_ref<T>(loc).fetch_add(v, std::memory_order_acq_rel);
}

template <class T>
inline T load_acquire(T& loc) noexcept {
  note_vectorization_unsafe_op();
  chaos::hook_atomic(&loc, "load_acquire", true);
  return std::atomic_ref<T>(loc).load(std::memory_order_acquire);
}

template <class T>
inline T load_relaxed(T& loc) noexcept {
  chaos::hook_atomic(&loc, "load_relaxed", false);
  return std::atomic_ref<T>(loc).load(std::memory_order_relaxed);
}

template <class T>
inline void store_release(T& loc, T v) noexcept {
  note_vectorization_unsafe_op();
  chaos::hook_atomic(&loc, "store_release", true);
  std::atomic_ref<T>(loc).store(v, std::memory_order_release);
}

template <class T>
inline void store_relaxed(T& loc, T v) noexcept {
  chaos::hook_atomic(&loc, "store_relaxed", false);
  std::atomic_ref<T>(loc).store(v, std::memory_order_relaxed);
}

/// Single CAS attempt with acquire ordering on success — the "try lock"
/// of the octree leaf protocol (Algorithm 5). Returns true on success;
/// updates `expected` with the observed value on failure.
template <class T>
inline bool compare_exchange_acquire(T& loc, T& expected, T desired) noexcept {
  note_vectorization_unsafe_op();
  chaos::hook_atomic(&loc, "compare_exchange_acquire", true);
  return std::atomic_ref<T>(loc).compare_exchange_weak(
      expected, desired, std::memory_order_acquire, std::memory_order_acquire);
}

/// CAS with acq_rel ordering for lock-free list pushes (overflow leaves).
template <class T>
inline bool compare_exchange_acq_rel(T& loc, T& expected, T desired) noexcept {
  note_vectorization_unsafe_op();
  chaos::hook_atomic(&loc, "compare_exchange_acq_rel", true);
  return std::atomic_ref<T>(loc).compare_exchange_weak(
      expected, desired, std::memory_order_acq_rel, std::memory_order_acquire);
}

}  // namespace nbody::exec
