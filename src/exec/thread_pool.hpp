// Persistent fork-join thread pool backing the par / par_unseq policies.
//
// This is the reproduction's substitute for the vendor stdpar runtimes the
// paper offloads to (NVC++, ROCm, oneAPI, AdaptiveCpp — see DESIGN.md §1):
// a fixed team of workers plus the calling thread execute a region
// `f(rank)` for rank in [0, concurrency). Regions are dispatched with an
// epoch counter + condition variable; exceptions propagate to the caller.
//
// Nested regions (a worker invoking run() again) degrade to sequential
// execution of all ranks on the calling thread — safe, and sufficient for
// this library, whose algorithms drive the pool from the outer thread only.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/function_ref.hpp"

namespace nbody::exec {

class thread_pool {
 public:
  /// Creates a pool with `concurrency` participants total: concurrency-1
  /// worker threads plus the caller of run(). concurrency == 1 means no
  /// workers (run() executes inline). concurrency == 0 is rejected.
  explicit thread_pool(unsigned concurrency);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Total participants (workers + caller).
  [[nodiscard]] unsigned concurrency() const noexcept { return concurrency_; }

  /// Executes f(rank) for every rank in [0, concurrency); blocks until all
  /// ranks finish. The caller runs rank 0. The first exception thrown by any
  /// rank is rethrown here after the region completes.
  void run(support::function_ref<void(unsigned)> f);

  /// Process-wide pool; size from NBODY_THREADS (default:
  /// hardware_concurrency). Constructed on first use.
  static thread_pool& global();

  /// True while the calling thread is inside a run() region of any pool.
  static bool in_parallel_region() noexcept;

 private:
  void worker_main(unsigned rank);

  unsigned concurrency_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;          // incremented per region
  unsigned remaining_ = 0;           // workers yet to finish current region
  bool shutdown_ = false;
  support::function_ref<void(unsigned)>* job_ = nullptr;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace nbody::exec
