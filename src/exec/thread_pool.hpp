// Persistent fork-join thread pool backing the par / par_unseq policies.
//
// This is the reproduction's substitute for the vendor stdpar runtimes the
// paper offloads to (NVC++, ROCm, oneAPI, AdaptiveCpp — see DESIGN.md §1):
// a fixed team of workers plus the calling thread execute a region
// `f(rank)` for rank in [0, concurrency). Regions are dispatched with an
// epoch counter + condition variable; exceptions propagate to the caller.
//
// Nested regions (a worker invoking run() again) degrade to sequential
// execution of all ranks on the calling thread — safe, and sufficient for
// this library, whose algorithms drive the pool from the outer thread only.
//
// Multiple *job* threads (server runners, each outside any region) may call
// run() concurrently: whole regions are serialized FIFO on an internal
// dispatch mutex, and each region carries its dispatcher's ambient stop
// state into the workers, so cancellation polls and watchdog heartbeats
// attribute to the job that dispatched it (see exec/stop_token.hpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/stop_token.hpp"
#include "support/function_ref.hpp"

namespace nbody::obs {
class MetricsRegistry;
}

namespace nbody::exec {

class thread_pool {
 public:
  /// Creates a pool with `concurrency` participants total: concurrency-1
  /// worker threads plus the caller of run(). concurrency == 1 means no
  /// workers (run() executes inline). concurrency == 0 is rejected.
  explicit thread_pool(unsigned concurrency);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Total participants (workers + caller).
  [[nodiscard]] unsigned concurrency() const noexcept { return concurrency_; }

  /// Executes f(rank) for every rank in [0, concurrency); blocks until all
  /// ranks finish. The caller runs rank 0. The first exception thrown by any
  /// rank is rethrown here after the region completes.
  void run(support::function_ref<void(unsigned)> f);

  /// Process-wide pool; size from NBODY_THREADS (default:
  /// hardware_concurrency). Constructed on first use.
  static thread_pool& global();

  /// True while the calling thread is inside a run() region of any pool.
  static bool in_parallel_region() noexcept;

  /// Lifetime scheduler statistics, accumulated with relaxed atomics. Always
  /// on — the accounting is per region / per chunk batch, never per element.
  struct Stats {
    std::uint64_t regions = 0;        // run() regions dispatched
    std::uint64_t region_wall_ns = 0; // wall time summed over regions
    std::uint64_t tasks = 0;          // rank invocations executed
    std::uint64_t busy_ns = 0;        // time ranks spent inside f(rank)
    std::uint64_t chunks = 0;         // blocks claimed (static/dynamic/steal)
    std::uint64_t steals = 0;         // successful steals (work_steal backend)
    std::uint64_t polls = 0;          // victim probes, hit or miss
  };

  /// Snapshot of the lifetime totals (and per-rank task/busy breakdown).
  [[nodiscard]] Stats stats() const noexcept;
  [[nodiscard]] std::uint64_t rank_tasks(unsigned rank) const noexcept;
  [[nodiscard]] std::uint64_t rank_busy_ns(unsigned rank) const noexcept;

  /// Accounting hooks for the scheduling layer (exec/algorithms.hpp): flush
  /// per-region local counts once per rank, not per element.
  void note_chunks(std::uint64_t n) noexcept;
  void note_steals(std::uint64_t n) noexcept;
  void note_polls(std::uint64_t n) noexcept;

  /// Liveness heartbeat: the scheduling layer beats a rank once per chunk /
  /// stripe it completes. Feeds two consumers: the pool-wide per-rank
  /// counters (stats/debugging) and the executing thread's ambient job
  /// state, which the watchdog (exec/watchdog.hpp) samples per job — an
  /// active job whose heartbeat signature freezes is a stalled worker.
  void beat(unsigned rank) noexcept {
    // Clamp: a nested/foreign caller may carry another pool's thread rank.
    rank_counters_[rank < concurrency_ ? rank : 0].progress.fetch_add(
        1, std::memory_order_relaxed);
    detail::ambient_progress_beat();
  }
  [[nodiscard]] std::uint64_t rank_progress(unsigned rank) const noexcept;
  [[nodiscard]] std::uint64_t progress_sum() const noexcept;

  /// Regions dispatched but not yet finished (0 or 1 under the single-owner
  /// contract; the inline/nested path counts too). The watchdog only arms
  /// its stall window while this is non-zero.
  [[nodiscard]] std::uint64_t active_regions() const noexcept {
    return regions_.load(std::memory_order_relaxed) -
           regions_done_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t regions_done() const noexcept {
    return regions_done_.load(std::memory_order_relaxed);
  }

  /// RAII region accounting for work the scheduling layer executes inline,
  /// without dispatching run() (single participant / single chunk). Keeps
  /// active_regions() — and the calling job's per-state counters — truthful
  /// there, so the watchdog's stall window covers inline execution: a wedge
  /// on the caller thread is still a stall.
  class inline_region {
   public:
    explicit inline_region(thread_pool& pool) noexcept
        : pool_(pool), job_state_(detail::job_region_enter()) {
      pool_.regions_.fetch_add(1, std::memory_order_relaxed);
    }
    inline_region(const inline_region&) = delete;
    inline_region& operator=(const inline_region&) = delete;
    ~inline_region() {
      pool_.regions_done_.fetch_add(1, std::memory_order_relaxed);
      detail::job_region_exit(job_state_);
    }

   private:
    thread_pool& pool_;
    detail::stop_state* job_state_;
  };

 private:
  void worker_main(unsigned rank);
  void run_rank(support::function_ref<void(unsigned)>& f, unsigned rank);

  struct RankCounters {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> progress{0};  // chunk/stripe heartbeats
  };

  unsigned concurrency_;
  std::vector<std::thread> workers_;
  std::unique_ptr<RankCounters[]> rank_counters_;  // one per rank (atomics pin it)
  std::atomic<std::uint64_t> regions_{0};
  std::atomic<std::uint64_t> regions_done_{0};
  std::atomic<std::uint64_t> region_wall_ns_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> polls_{0};

  // Serializes whole dispatched regions: concurrent job threads queue here
  // FIFO instead of interleaving writes to job_/remaining_/epoch_. Held for
  // the region's full span (dispatch through drain); the inline/nested path
  // never takes it, so a worker re-entering run() cannot self-deadlock.
  std::mutex dispatch_mutex_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;          // incremented per region
  unsigned remaining_ = 0;           // workers yet to finish current region
  bool shutdown_ = false;
  support::function_ref<void(unsigned)>* job_ = nullptr;
  detail::stop_state* region_ambient_ = nullptr;  // dispatcher's ambient, per region

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

/// Exports the pool's lifetime statistics into `reg` as `pool.*` gauges:
/// concurrency, regions, tasks, chunks, steals, polls, busy_seconds, and
/// utilization (busy time over regions × concurrency), plus per-worker
/// `pool.worker.<rank>.{tasks,busy_seconds}`.
void export_pool_metrics(const thread_pool& pool, obs::MetricsRegistry& reg);

}  // namespace nbody::exec
