// Execution policies with explicit forward-progress semantics.
//
// This is the reproduction's stand-in for the ISO C++ execution policies the
// paper builds on (std::execution::seq/par/par_unseq). Each policy carries
// its forward-progress guarantee as a compile-time tag:
//
//   seq        — no parallelism; runs on the calling thread.
//   par        — *parallel forward progress*: a thread that has started is
//                eventually rescheduled, so blocking synchronization
//                (locks, acquire/release atomics) is allowed. This is what
//                the Concurrent Octree requires (paper Sec. IV-A) and what
//                GPUs provide only with Independent Thread Scheduling.
//   par_unseq  — *weakly parallel forward progress*: iterations may be
//                interleaved on one thread of execution (vectorized or
//                lockstep-scheduled), so vectorization-unsafe operations —
//                locks and synchronizing atomics — are forbidden
//                ([algorithms.parallel.defns]).
//
// The library *enforces* the vectorization-unsafety rule at runtime: every
// lock/synchronizing-atomic helper calls `note_vectorization_unsafe_op()`,
// which records a violation when the calling thread is inside a par_unseq
// region. Tests assert on the counter; NBODY_STRICT_POLICY=1 aborts instead.
#pragma once

#include <cstdint>
#include <type_traits>

namespace nbody::exec {

enum class forward_progress : std::uint8_t {
  concurrent,       // full OS-thread guarantee (outside any parallel region)
  parallel,         // par: blocked threads are eventually rescheduled
  weakly_parallel,  // par_unseq: no independent progress guarantee
};

struct sequenced_policy {
  static constexpr forward_progress progress = forward_progress::concurrent;
  static constexpr bool is_parallel = false;
  static constexpr const char* name = "seq";
};

struct parallel_policy {
  static constexpr forward_progress progress = forward_progress::parallel;
  static constexpr bool is_parallel = true;
  static constexpr const char* name = "par";
};

struct parallel_unsequenced_policy {
  static constexpr forward_progress progress = forward_progress::weakly_parallel;
  static constexpr bool is_parallel = true;
  static constexpr const char* name = "par_unseq";
};

inline constexpr sequenced_policy seq{};
inline constexpr parallel_policy par{};
inline constexpr parallel_unsequenced_policy par_unseq{};

template <class P>
inline constexpr bool is_execution_policy_v =
    std::is_same_v<P, sequenced_policy> || std::is_same_v<P, parallel_policy> ||
    std::is_same_v<P, parallel_unsequenced_policy>;

/// Concept for algorithms that are only well-defined under policies granting
/// at least parallel forward progress (the octree's starvation-free build).
template <class P>
concept StarvationFreeCapable =
    is_execution_policy_v<P> && (P::progress != forward_progress::weakly_parallel);

/// Forward-progress guarantee of the region the calling thread currently
/// executes in. `concurrent` outside any parallel algorithm.
forward_progress current_progress() noexcept;

/// RAII guard installing a region's progress guarantee on this thread.
class progress_region {
 public:
  explicit progress_region(forward_progress p) noexcept;
  progress_region(const progress_region&) = delete;
  progress_region& operator=(const progress_region&) = delete;
  ~progress_region();

 private:
  forward_progress saved_;
};

/// Called by every lock / synchronizing-atomic helper in the library.
/// Under weakly_parallel progress this is a correctness violation
/// ([algorithms.parallel.defns]): it bumps a global counter, and aborts when
/// NBODY_STRICT_POLICY=1.
void note_vectorization_unsafe_op() noexcept;

/// Number of vectorization-unsafe operations observed inside par_unseq
/// regions since start / last reset. Tests use this to prove the octree
/// build genuinely relies on operations par_unseq forbids.
std::uint64_t vectorization_unsafe_violations() noexcept;
void reset_vectorization_unsafe_violations() noexcept;

/// Cooperative checkpoints. No-ops under real threads; the progress
/// simulator (src/progress) installs a per-thread hook here so fibers can be
/// descheduled at these points. `waiting` distinguishes a checkpoint issued
/// from a spin-wait (the thread cannot progress until another thread acts)
/// from one issued at an ordinary instruction boundary — the weakly-parallel
/// scheduler exploits exactly that difference to starve waiters, the way
/// lockstep SIMT hardware without ITS does.
using checkpoint_fn = void (*)(void*, bool waiting);
struct checkpoint_hook_state {
  checkpoint_fn fn = nullptr;
  void* ctx = nullptr;
};
void set_checkpoint_hook(checkpoint_fn fn, void* ctx) noexcept;
/// Current hook of the calling thread, so a nested installer (the chaos
/// scheduler's YieldInjector) can save and restore it.
[[nodiscard]] checkpoint_hook_state get_checkpoint_hook() noexcept;
void checkpoint() noexcept;          // ordinary progress point
void checkpoint_waiting() noexcept;  // inside a spin-wait

/// Adaptive busy-wait helper used by every spin loop in the library:
/// hardware pause first, OS yield after `kSpinLimit` iterations, and a
/// cooperative checkpoint() every iteration so the progress simulator can
/// interleave fibers.
class spin_wait {
 public:
  void pause() noexcept;

 private:
  static constexpr int kSpinLimit = 64;
  int count_ = 0;
};

}  // namespace nbody::exec
