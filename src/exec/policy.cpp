#include "exec/policy.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "exec/stop_token.hpp"
#include "support/env.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace nbody::exec {

namespace {

thread_local forward_progress t_progress = forward_progress::concurrent;
thread_local checkpoint_fn t_checkpoint = nullptr;
thread_local void* t_checkpoint_ctx = nullptr;

std::atomic<std::uint64_t> g_violations{0};

bool strict_policy() {
  static const bool strict = support::env_flag("NBODY_STRICT_POLICY");
  return strict;
}

}  // namespace

forward_progress current_progress() noexcept { return t_progress; }

progress_region::progress_region(forward_progress p) noexcept : saved_(t_progress) {
  t_progress = p;
}

progress_region::~progress_region() { t_progress = saved_; }

void note_vectorization_unsafe_op() noexcept {
  if (t_progress != forward_progress::weakly_parallel) return;
  g_violations.fetch_add(1, std::memory_order_relaxed);
  if (strict_policy()) {
    std::fprintf(stderr,
                 "nbody: vectorization-unsafe operation (lock or synchronizing atomic) "
                 "executed inside a par_unseq region; this is undefined behaviour per "
                 "[algorithms.parallel.defns]\n");
    std::abort();
  }
}

std::uint64_t vectorization_unsafe_violations() noexcept {
  return g_violations.load(std::memory_order_relaxed);
}

void reset_vectorization_unsafe_violations() noexcept {
  g_violations.store(0, std::memory_order_relaxed);
}

void set_checkpoint_hook(checkpoint_fn fn, void* ctx) noexcept {
  t_checkpoint = fn;
  t_checkpoint_ctx = ctx;
}

checkpoint_hook_state get_checkpoint_hook() noexcept {
  return {t_checkpoint, t_checkpoint_ctx};
}

void checkpoint() noexcept {
  // Observe the ambient stop token: one relaxed load when no token is
  // installed, and when one is, the poll folds in the armed deadline (the
  // token self-requests a stop once the clock passes it). Observation only —
  // checkpoint() is noexcept and runs inside critical sections, so
  // cancellation stays flag-then-drain: the scheduling layer acts on the
  // flag at chunk boundaries.
  (void)ambient_stop_token().stop_requested();
  if (t_checkpoint != nullptr) t_checkpoint(t_checkpoint_ctx, /*waiting=*/false);
}

void checkpoint_waiting() noexcept {
  (void)ambient_stop_token().stop_requested();
  if (t_checkpoint != nullptr) t_checkpoint(t_checkpoint_ctx, /*waiting=*/true);
}

void spin_wait::pause() noexcept {
  checkpoint_waiting();
  if (count_ < kSpinLimit) {
    ++count_;
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
  } else {
    std::this_thread::yield();
  }
}

}  // namespace nbody::exec
