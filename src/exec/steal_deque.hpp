// Steal-half deque for the work_steal backend: each worker owns one deque of
// curve-ordered index chunks, pops from the front (its spatially-near end),
// and thieves take the back half (the spatially-far end) in one transaction.
//
// Layout: a power-of-two ring of 64-bit chunk entries (begin << 32 | end)
// plus one 64-bit control word packing tag(16) | top(24) | bottom(24). The
// valid entries are positions [top, bottom) mod 2^24; every mutation is a
// single CAS on the control word, so push/pop/steal-half are individually
// linearizable. Thieves read their k back entries *speculatively* and then
// CAS-confirm: any concurrent pop, push, or competing steal moves top or
// bottom (or bumps the tag) and fails the confirm. The tag increments on
// every push, so a pop/steal whose (top, bottom) pair was recycled by an
// intervening push-after-steal cannot be confirmed against stale entries
// (ABA would need 2^16 pushes inside one load-to-CAS window).
//
// Concurrency contract: pop_front and steal_half are safe from any thread;
// push_back is single-producer (the owner rank — concurrent pushers could
// each write the same slot before either publishes). The scheduler seeds
// deques on the dispatching thread before the region (happens-before the
// workers via pool dispatch) and thereafter each rank pushes only into its
// own deque.
//
// Chaos integration: the control word and entry accesses report to the race
// detector via chaos::hook_atomic as *non-synchronizing* operations — the
// deque is scheduler infrastructure, outside the per-step policy table that
// governs user code under par_unseq (the same reason the old StealableRange
// used raw std::atomic instead of the policy-noting exec/atomic.hpp
// helpers). exec::checkpoint() sits in each op's speculative window so the
// chaos backend's YieldInjector can interleave push/pop/steal at exactly
// the points where a synchronization bug would surface.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "exec/chaos/hooks.hpp"
#include "exec/policy.hpp"
#include "support/assert.hpp"

namespace nbody::exec {

/// One contiguous index range [begin, end) — the unit of scheduling.
struct IndexChunk {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

class StealDeque {
 public:
  StealDeque() = default;
  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// (Re)initializes an empty deque able to hold at least `capacity_hint`
  /// chunks. Not thread-safe; call before the region starts.
  void reset(std::size_t capacity_hint) {
    std::size_t cap = 8;
    while (cap < capacity_hint + 1) cap <<= 1;
    NBODY_REQUIRE(cap <= (std::size_t{1} << 23), "StealDeque: capacity exceeds position space");
    if (cap != mask_ + 1 || ring_ == nullptr) {
      ring_ = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
      mask_ = cap - 1;
    }
    word_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Racy snapshot of the chunk count (exact when quiescent).
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t w = word_.load(std::memory_order_acquire);
    return (bot_of(w) - top_of(w)) & kPosMask;
  }

  /// Owner-only: appends one chunk at the back. False when full.
  bool push_back(IndexChunk c) {
    const std::uint64_t entry = pack_chunk(c);
    std::uint64_t w = word_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t t = top_of(w);
      const std::uint32_t b = bot_of(w);
      if (((b - t) & kPosMask) > mask_) return false;  // full
      ring_[b & mask_].store(entry, std::memory_order_relaxed);
      chaos::hook_atomic(&ring_[b & mask_], "deque.push.entry", false);
      checkpoint();  // chaos window: entry written, not yet published
      chaos::hook_atomic(&word_, "deque.push", false);
      if (word_.compare_exchange_weak(w, pack_word(tag_of(w) + 1, t, (b + 1) & kPosMask),
                                      std::memory_order_acq_rel, std::memory_order_acquire))
        return true;
    }
  }

  /// Takes the front chunk (lowest curve position). Safe from any thread.
  bool pop_front(IndexChunk& out) {
    std::uint64_t w = word_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t t = top_of(w);
      const std::uint32_t b = bot_of(w);
      if (((b - t) & kPosMask) == 0) return false;
      const std::uint64_t entry = ring_[t & mask_].load(std::memory_order_relaxed);
      chaos::hook_atomic(&ring_[t & mask_], "deque.pop.entry", false);
      checkpoint();  // chaos window: entry read, claim not yet confirmed
      chaos::hook_atomic(&word_, "deque.pop", false);
      if (word_.compare_exchange_weak(w, pack_word(tag_of(w), (t + 1) & kPosMask, b),
                                      std::memory_order_acq_rel, std::memory_order_acquire)) {
        out = unpack_chunk(entry);
        return true;
      }
    }
  }

  /// Thief: takes the back ceil(size/2) chunks (at most max_out) into
  /// out[0..k), preserving curve order. Returns k (0 = empty). Safe from
  /// any thread.
  std::size_t steal_half(IndexChunk* out, std::size_t max_out) {
    if (max_out == 0) return 0;
    std::uint64_t w = word_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t t = top_of(w);
      const std::uint32_t b = bot_of(w);
      const std::uint32_t sz = (b - t) & kPosMask;
      if (sz == 0) return 0;
      std::size_t k = (sz + 1) / 2;
      if (k > max_out) k = max_out;
      for (std::size_t i = 0; i < k; ++i) {
        const std::uint32_t pos = (b - static_cast<std::uint32_t>(k - i)) & kPosMask;
        out[i] = unpack_chunk(ring_[pos & mask_].load(std::memory_order_relaxed));
        chaos::hook_atomic(&ring_[pos & mask_], "deque.steal.entry", false);
      }
      checkpoint();  // chaos window: entries read, transfer not yet confirmed
      chaos::hook_atomic(&word_, "deque.steal", false);
      if (word_.compare_exchange_weak(
              w, pack_word(tag_of(w), t, (b - static_cast<std::uint32_t>(k)) & kPosMask),
              std::memory_order_acq_rel, std::memory_order_acquire))
        return k;
    }
  }

 private:
  static constexpr std::uint32_t kPosMask = 0xFFFFFFu;  // 24-bit positions

  static constexpr std::uint64_t pack_word(std::uint32_t tag, std::uint32_t top,
                                           std::uint32_t bot) {
    return (static_cast<std::uint64_t>(tag & 0xFFFFu) << 48) |
           (static_cast<std::uint64_t>(top & kPosMask) << 24) |
           static_cast<std::uint64_t>(bot & kPosMask);
  }
  static constexpr std::uint32_t tag_of(std::uint64_t w) {
    return static_cast<std::uint32_t>(w >> 48) & 0xFFFFu;
  }
  static constexpr std::uint32_t top_of(std::uint64_t w) {
    return static_cast<std::uint32_t>(w >> 24) & kPosMask;
  }
  static constexpr std::uint32_t bot_of(std::uint64_t w) {
    return static_cast<std::uint32_t>(w) & kPosMask;
  }
  static constexpr std::uint64_t pack_chunk(IndexChunk c) {
    return (static_cast<std::uint64_t>(c.begin) << 32) | c.end;
  }
  static constexpr IndexChunk unpack_chunk(std::uint64_t e) {
    return {static_cast<std::uint32_t>(e >> 32), static_cast<std::uint32_t>(e)};
  }

  std::atomic<std::uint64_t> word_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> ring_;
  std::size_t mask_ = 0;  // capacity - 1 (capacity is a power of two)
};

}  // namespace nbody::exec
