#include "exec/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>

#include "support/assert.hpp"
#include "support/env.hpp"

namespace nbody::exec {

namespace {

/// Reads a sysfs file holding one small integer; nullopt on any failure so
/// a partially populated hierarchy falls back to flat instead of mixing
/// real and guessed levels.
std::optional<int> read_sysfs_int(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return std::nullopt;
  int v = 0;
  const int got = std::fscanf(f, "%d", &v);
  std::fclose(f);
  if (got != 1 || v < 0) return std::nullopt;
  return v;
}

std::string cpu_path(unsigned cpu, const char* leaf) {
  return "/sys/devices/system/cpu/cpu" + std::to_string(cpu) + "/" + leaf;
}

/// fake:PxCxS — e.g. "fake:2x2x4". Returns false on malformed specs.
bool parse_fake_spec(const std::string& spec, unsigned& packages, unsigned& clusters,
                     unsigned& cores) {
  unsigned p = 0, c = 0, s = 0;
  if (std::sscanf(spec.c_str(), "fake:%ux%ux%u", &p, &c, &s) != 3) return false;
  if (p == 0 || c == 0 || s == 0) return false;
  packages = p;
  clusters = c;
  cores = s;
  return true;
}

}  // namespace

Topology Topology::flat(unsigned nranks) {
  Topology t;
  t.source_ = "flat";
  t.locs_.resize(nranks);
  for (unsigned r = 0; r < nranks; ++r) t.locs_[r] = {0, 0, static_cast<int>(r)};
  return t;
}

Topology Topology::fake(unsigned nranks, unsigned packages, unsigned clusters_per_package,
                        unsigned cores_per_cluster) {
  NBODY_REQUIRE(packages > 0 && clusters_per_package > 0 && cores_per_cluster > 0,
                "fake topology: all levels must be nonzero");
  Topology t;
  t.source_ = "fake";
  t.locs_.resize(nranks);
  const unsigned total = packages * clusters_per_package * cores_per_cluster;
  for (unsigned r = 0; r < nranks; ++r) {
    const unsigned core = r % total;  // extra ranks share cores (SMT-like)
    const unsigned cluster = core / cores_per_cluster;
    const unsigned package = cluster / clusters_per_package;
    t.locs_[r] = {static_cast<int>(package), static_cast<int>(cluster),
                  static_cast<int>(core)};
  }
  return t;
}

Topology Topology::linux_sysfs(unsigned nranks) {
  // Rank r is mapped onto logical CPU r (workers are not pinned — see the
  // header). Any missing file degrades the whole read to flat, keeping the
  // result deterministic for a given sysfs state.
  Topology t;
  t.source_ = "linux";
  t.locs_.resize(nranks);
  for (unsigned r = 0; r < nranks; ++r) {
    const auto pkg = read_sysfs_int(cpu_path(r, "topology/physical_package_id"));
    const auto core = read_sysfs_int(cpu_path(r, "topology/core_id"));
    if (!pkg || !core) return flat(nranks);
    // LLC domain: cache/index3/id on kernels that expose it; a package is
    // its own cluster otherwise (monolithic-LLC parts).
    const auto llc = read_sysfs_int(cpu_path(r, "cache/index3/id"));
    // core_id is only unique within a package; fold the package in so the
    // stored ids are global.
    t.locs_[r] = {*pkg, llc ? *llc + (*pkg << 16) : *pkg, *core + (*pkg << 16)};
  }
  return t;
}

Topology Topology::detect(unsigned nranks) {
  const auto spec = support::env_string("NBODY_TOPOLOGY");
  if (spec) {
    if (*spec == "flat") return flat(nranks);
    unsigned p = 0, c = 0, s = 0;
    if (parse_fake_spec(*spec, p, c, s)) return fake(nranks, p, c, s);
    // "linux" and anything unparsable fall through to the sysfs read.
  }
  return linux_sysfs(nranks);
}

unsigned Topology::distance(unsigned a, unsigned b) const {
  const Loc& la = locs_[a];
  const Loc& lb = locs_[b];
  if (la.package != lb.package) return 3;
  if (la.cluster != lb.cluster) return 2;
  if (la.core != lb.core) return 1;
  return 0;
}

std::vector<unsigned> Topology::victim_order(unsigned rank) const {
  const unsigned p = ranks();
  std::vector<unsigned> order;
  order.reserve(p - 1);
  for (unsigned o = 0; o < p; ++o)
    if (o != rank) order.push_back(o);
  std::sort(order.begin(), order.end(), [&](unsigned x, unsigned y) {
    const unsigned dx = distance(rank, x);
    const unsigned dy = distance(rank, y);
    if (dx != dy) return dx < dy;
    const unsigned rx = (x + p - rank) % p;
    const unsigned ry = (y + p - rank) % p;
    if (rx != ry) return rx < ry;
    return x < y;
  });
  return order;
}

std::vector<unsigned> Topology::seed_order() const {
  std::vector<unsigned> order(ranks());
  for (unsigned r = 0; r < ranks(); ++r) order[r] = r;
  std::sort(order.begin(), order.end(), [&](unsigned x, unsigned y) {
    const Loc& lx = locs_[x];
    const Loc& ly = locs_[y];
    if (lx.package != ly.package) return lx.package < ly.package;
    if (lx.cluster != ly.cluster) return lx.cluster < ly.cluster;
    if (lx.core != ly.core) return lx.core < ly.core;
    return x < y;
  });
  return order;
}

VictimTable::VictimTable(const Topology& topo)
    : p_(topo.ranks()), seats_(topo.seed_order()), source_(topo.source()) {
  NBODY_REQUIRE(p_ >= 2, "VictimTable: need at least two ranks");
  order_.reserve(static_cast<std::size_t>(p_) * (p_ - 1));
  for (unsigned r = 0; r < p_; ++r) {
    const auto row = topo.victim_order(r);
    order_.insert(order_.end(), row.begin(), row.end());
  }
}

const VictimTable& victim_table(unsigned nranks) {
  static std::mutex mutex;
  static std::map<unsigned, VictimTable> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(nranks);
  if (it == cache.end())
    it = cache.emplace(nranks, VictimTable(Topology::detect(nranks))).first;
  return it->second;
}

}  // namespace nbody::exec
