#include "exec/watchdog.hpp"

#include <algorithm>
#include <string>

#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime.hpp"
#include "obs/trace.hpp"

namespace nbody::exec {

Watchdog::Watchdog(thread_pool& pool, std::chrono::milliseconds stall_window)
    : pool_(pool), window_(std::max(stall_window, std::chrono::milliseconds(1))) {
  sampler_ = std::thread([this] { sampler_main(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
    armed_.reset();
  }
  cv_.notify_all();
  sampler_.join();
}

void Watchdog::arm(std::shared_ptr<detail::stop_state> state) {
  {
    std::lock_guard lock(mutex_);
    armed_ = std::move(state);
    ++generation_;
  }
  cv_.notify_all();
}

void Watchdog::disarm() {
  std::lock_guard lock(mutex_);
  armed_.reset();
  ++generation_;
}

std::uint64_t Watchdog::signature() const noexcept {
  // Any forward motion changes this: a heartbeat from any rank, or a region
  // finishing (covers regions too small to beat even once).
  return pool_.progress_sum() + pool_.regions_done();
}

void Watchdog::sampler_main() {
  const auto period =
      std::max<std::chrono::milliseconds>(window_ / 4, std::chrono::milliseconds(1));

  std::unique_lock lock(mutex_);
  std::uint64_t last_sig = 0;
  std::uint64_t seen_generation = 0;
  auto last_change = std::chrono::steady_clock::now();

  for (;;) {
    cv_.wait(lock, [&] { return shutdown_ || armed_ != nullptr; });
    if (shutdown_) return;

    if (generation_ != seen_generation) {
      // Fresh arm: restart the stall clock so a previous attempt's frozen
      // signature can't trip the new one instantly.
      seen_generation = generation_;
      last_sig = signature();
      last_change = std::chrono::steady_clock::now();
    }

    cv_.wait_for(lock, period,
                 [&] { return shutdown_ || generation_ != seen_generation; });
    if (shutdown_) return;
    if (armed_ == nullptr || generation_ != seen_generation) continue;

    if (auto* m = obs::global_metrics(); m != nullptr)
      m->counter("pool.watchdog.samples").add();

    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t sig = signature();
    if (sig != last_sig || pool_.active_regions() == 0) {
      // Forward motion, or nothing running (an idle pool is not a stall).
      last_sig = sig;
      last_change = now;
      continue;
    }
    if (now - last_change < window_) continue;

    // Active region, heartbeat frozen for the whole window: trip.
    const auto stalled_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - last_change).count();
    auto state = armed_;
    armed_.reset();  // one trip per arm
    ++generation_;
    lock.unlock();
    trips_.fetch_add(1, std::memory_order_relaxed);
    if (auto* m = obs::global_metrics(); m != nullptr)
      m->counter("pool.watchdog.trips").add();
    if (auto* t = obs::global_trace(); t != nullptr)
      t->instant("watchdog.trip",
                 "no worker progress for " + std::to_string(stalled_ms) + "ms");
    state->request(stop_cause::watchdog,
                   "watchdog: no worker progress for " + std::to_string(stalled_ms) +
                       "ms (window " + std::to_string(window_.count()) + "ms)");
    lock.lock();
  }
}

}  // namespace nbody::exec
