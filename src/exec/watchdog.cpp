#include "exec/watchdog.hpp"

#include <algorithm>
#include <string>

#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime.hpp"
#include "obs/trace.hpp"

namespace nbody::exec {

Watchdog::Watchdog(thread_pool& pool, std::chrono::milliseconds stall_window)
    : pool_(pool), window_(std::max(stall_window, std::chrono::milliseconds(1))) {
  sampler_ = std::thread([this] { sampler_main(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
    armed_.reset();
  }
  cv_.notify_all();
  sampler_.join();
}

void Watchdog::arm(std::shared_ptr<detail::stop_state> state) {
  {
    std::lock_guard lock(mutex_);
    armed_ = std::move(state);
    ++generation_;
  }
  cv_.notify_all();
}

void Watchdog::disarm() {
  std::lock_guard lock(mutex_);
  armed_.reset();
  ++generation_;
}

namespace {
// Any forward motion of *this job* changes this: a chunk/stripe heartbeat
// from a rank working on its behalf, or one of its regions finishing
// (job_region_exit bumps progress_, covering regions too small to beat even
// once). Other jobs' activity on the shared pool is invisible here.
std::uint64_t job_signature(const detail::stop_state& s) noexcept {
  return s.progress_.load(std::memory_order_relaxed);
}

bool job_idle(const detail::stop_state& s) noexcept {
  return s.active_.load(std::memory_order_relaxed) == 0;
}
}  // namespace

void Watchdog::sampler_main() {
  const auto period =
      std::max<std::chrono::milliseconds>(window_ / 4, std::chrono::milliseconds(1));

  std::unique_lock lock(mutex_);
  std::uint64_t last_sig = 0;
  std::uint64_t seen_generation = 0;
  auto last_change = std::chrono::steady_clock::now();

  for (;;) {
    cv_.wait(lock, [&] { return shutdown_ || armed_ != nullptr; });
    if (shutdown_) return;

    if (generation_ != seen_generation) {
      // Fresh arm: restart the stall clock so a previous attempt's frozen
      // signature can't trip the new one instantly.
      seen_generation = generation_;
      last_sig = job_signature(*armed_);
      last_change = std::chrono::steady_clock::now();
    }

    cv_.wait_for(lock, period,
                 [&] { return shutdown_ || generation_ != seen_generation; });
    if (shutdown_) return;
    if (armed_ == nullptr || generation_ != seen_generation) continue;

    if (auto* m = obs::global_metrics(); m != nullptr)
      m->counter("pool.watchdog.samples").add();

    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t sig = job_signature(*armed_);
    if (sig != last_sig || job_idle(*armed_)) {
      // Forward motion, or this job has no region in flight (a job that is
      // between regions — queued on the dispatch mutex, running guards, or
      // in backoff — is not stalled).
      last_sig = sig;
      last_change = now;
      continue;
    }
    if (now - last_change < window_) continue;

    // This job has an active region whose heartbeat froze for the whole
    // window: trip its stop state (and only its).
    const auto stalled_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - last_change).count();
    auto state = armed_;
    armed_.reset();  // one trip per arm
    ++generation_;
    lock.unlock();
    trips_.fetch_add(1, std::memory_order_relaxed);
    if (auto* m = obs::global_metrics(); m != nullptr)
      m->counter("pool.watchdog.trips").add();
    if (auto* t = obs::global_trace(); t != nullptr)
      t->instant("watchdog.trip",
                 "no worker progress for " + std::to_string(stalled_ms) + "ms");
    state->request(stop_cause::watchdog,
                   "watchdog: no worker progress for " + std::to_string(stalled_ms) +
                       "ms (window " + std::to_string(window_.count()) + "ms)");
    lock.lock();
  }
}

}  // namespace nbody::exec
