// Stuck-worker watchdog for the thread pool.
//
// A hang inside a parallel region — a wedged chunk, a livelocked spin, the
// NBODY_FAULTS exec.chunk.hang site — is invisible to the guarded loop's
// exception machinery: nothing throws, the region just never drains. The
// watchdog turns that silence into an ordinary recoverable fault. A single
// sampling thread reads the armed stop state's *per-job* heartbeat counters
// (stop_state::progress_/active_, beaten once per chunk/stripe by the
// scheduling layer and per region entry/exit by the pool, attributed through
// the thread-local ambient) and, when the job has a region active but its
// heartbeat signature has been frozen for the configured stall window,
// requests a stop on the armed stop state with stop_cause::watchdog. Healthy
// workers observe the ambient token at the next chunk boundary and drain;
// the wedged one is reclaimed by the hang site's own token poll; the
// dispatcher surfaces Cancelled and run_guarded restores the checkpoint.
//
// Sampling per-job rather than pool-global counters is what makes concurrent
// guarded runs safe: one job's beats cannot mask a neighbour's stall, and a
// deliberately wedged job cannot trip a healthy neighbour's watchdog — each
// watchdog sees only the job it armed for (tests/test_cancel.cpp covers the
// two-job concurrent-trip case).
//
// One Watchdog per guarded run, re-armed per step attempt (arm/disarm), so
// sub-millisecond steps don't pay a thread spawn each. The sampler sleeps on
// a condition variable while disarmed — an idle watchdog costs nothing but a
// parked thread.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "exec/stop_token.hpp"

namespace nbody::exec {

class thread_pool;

class Watchdog {
 public:
  /// Starts the sampler thread (parked until arm()). `stall_window` is how
  /// long an active region's heartbeat may stay frozen before the trip; the
  /// sampling period is stall_window / 4, floored at 1ms.
  Watchdog(thread_pool& pool, std::chrono::milliseconds stall_window);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Begins watching on behalf of `state` (the current attempt's stop
  /// source). The stall clock starts fresh; a trip requests a stop with
  /// stop_cause::watchdog on `state` and self-disarms (one trip per arm).
  void arm(std::shared_ptr<detail::stop_state> state);

  /// Stops watching; safe to call when not armed. After return the sampler
  /// holds no reference to the previously armed state.
  void disarm();

  /// Lifetime trip count (across arms). Also exported as the ambient
  /// `pool.watchdog.trips` counter.
  [[nodiscard]] std::uint64_t trips() const noexcept {
    return trips_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::chrono::milliseconds stall_window() const noexcept {
    return window_;
  }

 private:
  void sampler_main();

  thread_pool& pool_;  // kept for construction-site symmetry; sampling is per-job
  std::chrono::milliseconds window_;
  std::atomic<std::uint64_t> trips_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  std::shared_ptr<detail::stop_state> armed_;  // nullptr = parked
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;  // bumped per arm/disarm to reset the clock

  std::thread sampler_;
};

}  // namespace nbody::exec
