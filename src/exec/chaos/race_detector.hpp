// Lockset + access-logging race detector — the second layer of the chaos
// correctness tooling (the first is the schedule-permuting backend in
// exec/chaos/chaos.hpp).
//
// Two checks, both fed by the instrumentation hooks in exec/chaos/hooks.hpp
// (wired into every exec/atomic.hpp helper and the octree's node locks) and
// by the explicit checked_load/checked_store accessors test fixtures use:
//
//   * policy check — the paper's per-step policy table, machine-checked: a
//     lock acquisition or synchronizing atomic reached while the calling
//     thread executes under weakly-parallel forward progress (par_unseq)
//     is recorded as a `policy` violation with (rank, address, operation).
//     This turns note_vectorization_unsafe_op()'s counter into an
//     attributable report.
//
//   * Eraser-style lockset check — every *plain* instrumented access to a
//     shared address intersects the address's candidate lockset with the
//     locks the thread currently holds (Savage et al., 1997). An address
//     written by two or more threads whose candidate lockset is empty is
//     recorded as a `lockset` violation: no lock consistently guarded it.
//     Atomic accesses are synchronization, not data, and are exempt.
//
// The detector is process-global, runtime-toggled (DetectorScope RAII or
// enable()/disable()), and mutex-serialized — it is a correctness harness,
// not a production profiler. Reports append the chaos seed so any schedule
// that produced a violation replays verbatim (NBODY_CHAOS_SEED=<n>).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/chaos/hooks.hpp"
#include "exec/policy.hpp"

namespace nbody::exec::chaos {

enum class AccessKind : std::uint8_t {
  plain_read,
  plain_write,
  atomic_relaxed,
  atomic_sync,
  lock_acquire,
  lock_release,
};

[[nodiscard]] const char* access_kind_name(AccessKind k) noexcept;

/// One instrumented event, recorded when access logging is on: who touched
/// what, how, under which declared forward-progress guarantee, holding how
/// many locks. The tuple the tentpole asks for — (thread rank, address,
/// lock-set, policy).
struct AccessRecord {
  std::uintptr_t addr = 0;
  unsigned rank = 0;                 // obs::thread_rank() of the accessor
  AccessKind kind = AccessKind::plain_read;
  const char* op = "";               // helper name, e.g. "fetch_add_acq_rel"
  forward_progress policy = forward_progress::concurrent;
  std::uint32_t locks_held = 0;      // size of the thread's lockset
};

struct Violation {
  enum class Kind : std::uint8_t { policy, lockset };
  Kind kind = Kind::policy;
  std::uintptr_t addr = 0;
  unsigned rank = 0;
  const char* op = "";
  forward_progress policy = forward_progress::concurrent;

  /// One line, e.g.
  ///   policy: fetch_add_acq_rel @0x7f.. rank 2 under par_unseq
  ///   lockset: plain_write @0x7f.. rank 1 lockset={} (multi-thread write,
  ///   no common lock)
  [[nodiscard]] std::string to_string() const;
};

class RaceDetector {
 public:
  static RaceDetector& instance();

  /// Starts recording. `log_accesses` additionally keeps a bounded log of
  /// every instrumented event (kMaxLogged entries) for the output format
  /// documented in DESIGN.md §4d.
  void enable(bool log_accesses = false);
  void disable();
  [[nodiscard]] bool enabled() const noexcept;

  /// Drops all per-address state, violations, and the access log.
  void clear();

  // -- instrumentation entry points (no-ops while disabled) -----------------
  void on_lock_acquired(const void* lock);
  void on_lock_released(const void* lock);
  void on_atomic(const void* addr, const char* op, bool synchronizing);
  void on_plain(const void* addr, const char* op, bool write);

  // -- results --------------------------------------------------------------
  [[nodiscard]] std::vector<Violation> violations() const;
  [[nodiscard]] std::size_t violation_count() const;
  [[nodiscard]] std::size_t policy_violations() const;
  [[nodiscard]] std::size_t lockset_races() const;
  [[nodiscard]] std::vector<AccessRecord> access_log() const;

  /// Human-readable multi-line report: a summary header carrying the chaos
  /// seed, then one line per violation (format of Violation::to_string).
  [[nodiscard]] std::string report() const;

  static constexpr std::size_t kMaxLogged = 1 << 16;

 private:
  RaceDetector() = default;

  struct AddrState {
    std::vector<const void*> lockset;  // candidate lockset (intersection)
    bool lockset_init = false;
    std::uint64_t first_thread = 0;
    bool multi_thread = false;
    bool written = false;
    bool reported = false;
  };

  void record_policy_violation_locked(const void* addr, const char* op);
  void log_locked(const void* addr, AccessKind kind, const char* op);

  mutable std::mutex mutex_;
  std::unordered_map<std::uintptr_t, AddrState> addrs_;
  std::vector<Violation> violations_;
  std::vector<AccessRecord> log_;
  bool log_accesses_ = false;
};

/// RAII scope for tests: clears + enables on construction, disables on
/// destruction (results stay readable after the scope closes).
class DetectorScope {
 public:
  explicit DetectorScope(bool log_accesses = false) {
    RaceDetector::instance().clear();
    RaceDetector::instance().enable(log_accesses);
  }
  DetectorScope(const DetectorScope&) = delete;
  DetectorScope& operator=(const DetectorScope&) = delete;
  ~DetectorScope() { RaceDetector::instance().disable(); }
};

/// std::mutex that reports its acquire/release to the detector — the
/// lock-based counterpart of the octree's instrumented CAS lock, for
/// fixtures and future lock-protected subsystems.
class InstrumentedMutex {
 public:
  void lock() {
    m_.lock();
    RaceDetector::instance().on_lock_acquired(this);
  }
  void unlock() {
    RaceDetector::instance().on_lock_released(this);
    m_.unlock();
  }
  bool try_lock() {
    if (!m_.try_lock()) return false;
    RaceDetector::instance().on_lock_acquired(this);
    return true;
  }

 private:
  std::mutex m_;
};

/// Checked plain accessors: route a shared read/write through the lockset
/// check. Test fixtures use these to plant (or prove the absence of)
/// unsynchronized accesses.
template <class T>
inline T checked_load(const T& loc, const char* what = "plain_read") {
  RaceDetector::instance().on_plain(&loc, what, /*write=*/false);
  return loc;
}

template <class T>
inline void checked_store(T& loc, T v, const char* what = "plain_write") {
  RaceDetector::instance().on_plain(&loc, what, /*write=*/true);
  loc = v;
}

}  // namespace nbody::exec::chaos
