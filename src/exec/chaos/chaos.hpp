// Schedule-permuting ("chaos") scheduler support — the seed-replayable
// interleaving explorer behind exec::backend::chaos_permute.
//
// On this library's fork-join pool the default schedulers (static, dynamic,
// steal) explore essentially one interleaving per machine, so a
// misannotated step — a lock reached under par_unseq, an order-dependent
// accumulation — can pass every test by luck. The chaos backend makes the
// schedule itself an input: driven by one master seed it
//
//   * permutes the chunk-dispatch order of every parallel region
//     (Fisher-Yates over the chunk list, one fresh stream per region),
//   * injects yields and short delays before chunk claims and at the
//     library's cooperative checkpoints (exec::checkpoint(), which the
//     octree calls inside its subdivision critical section),
//
// and every decision derives from mix(master_seed, region, rank, step), so
// any failing schedule replays from the seed printed with the failure:
// NBODY_CHAOS_SEED=<n>. Select with NBODY_BACKEND=chaos or
// set_default_backend(backend::chaos_permute); seed from NBODY_CHAOS_SEED
// or set_seed().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/policy.hpp"

namespace nbody::exec::chaos {

/// Master seed of the chaos scheduler. Initialized once from
/// NBODY_CHAOS_SEED (default 1); set_seed() overrides and resets the region
/// counter so a run is replayable from its start.
[[nodiscard]] std::uint64_t seed() noexcept;
void set_seed(std::uint64_t s) noexcept;

/// "NBODY_CHAOS_SEED=<n>" — appended to detector reports and property-test
/// failures so the schedule can be replayed verbatim.
[[nodiscard]] std::string describe_seed();

/// Claims the next per-region stream seed: mix(seed, region_counter++).
/// Each chaos-scheduled region draws one, so region k of a run is permuted
/// identically across replays with the same master seed.
[[nodiscard]] std::uint64_t next_region_seed() noexcept;

/// Regions dispatched by the chaos backend since the last set_seed().
[[nodiscard]] std::uint64_t regions_dispatched() noexcept;

/// Deterministic permutation of [0, n) from `region_seed` (Fisher-Yates
/// over a SplitMix64 stream).
[[nodiscard]] std::vector<std::uint32_t> make_permutation(std::uint64_t region_seed,
                                                          std::size_t n);

/// Per-rank perturbation stream for one region: before every chunk claim the
/// scheduler asks maybe_perturb(), which with seed-determined probability
/// spins a short hashed-length delay or yields the OS thread.
class Perturber {
 public:
  Perturber(std::uint64_t region_seed, unsigned rank) noexcept;

  /// Advances the stream and possibly delays/yields the calling thread.
  void maybe_perturb() noexcept;

  /// Number of yields/delays injected so far (tests).
  [[nodiscard]] std::uint64_t perturbations() const noexcept { return injected_; }

 private:
  std::uint64_t state_;
  std::uint64_t injected_ = 0;
};

/// RAII: routes this thread's cooperative checkpoints (exec::checkpoint(),
/// called e.g. inside the octree's subdivision critical section and from
/// every spin_wait) into a deterministic yield stream for the duration of a
/// chaos-scheduled region. Restores the previously installed hook — the
/// forward-progress simulator owns the same hook on its fiber threads.
class YieldInjector {
 public:
  YieldInjector(std::uint64_t region_seed, unsigned rank) noexcept;
  YieldInjector(const YieldInjector&) = delete;
  YieldInjector& operator=(const YieldInjector&) = delete;
  ~YieldInjector();

 private:
  static void fire(void* self, bool waiting) noexcept;
  std::uint64_t state_;
  checkpoint_fn saved_fn_;
  void* saved_ctx_;
};

}  // namespace nbody::exec::chaos
