#include "exec/chaos/race_detector.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "exec/chaos/chaos.hpp"
#include "obs/runtime.hpp"

namespace nbody::exec::chaos {

// Defined unconditionally so the library links the same with NBODY_CHAOS on
// or off; the hot-path hooks only reference it when the macro is set.
std::atomic<bool> g_detector_enabled{false};

namespace {

// Held-lock set of the calling thread. Maintained only while the detector
// is enabled (the hooks gate before calling in), so enable()/disable()
// should bracket whole regions, not straddle critical sections — the
// release path below tolerates an unmatched unlock regardless.
thread_local std::vector<const void*> t_locks;

// Cheap stable thread identity for the first-thread/multi-thread test.
std::uint64_t this_thread_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* progress_name(forward_progress p) noexcept {
  switch (p) {
    case forward_progress::concurrent: return "concurrent";
    case forward_progress::parallel: return "par";
    case forward_progress::weakly_parallel: return "par_unseq";
  }
  return "?";
}

}  // namespace

const char* access_kind_name(AccessKind k) noexcept {
  switch (k) {
    case AccessKind::plain_read: return "plain_read";
    case AccessKind::plain_write: return "plain_write";
    case AccessKind::atomic_relaxed: return "atomic_relaxed";
    case AccessKind::atomic_sync: return "atomic_sync";
    case AccessKind::lock_acquire: return "lock_acquire";
    case AccessKind::lock_release: return "lock_release";
  }
  return "?";
}

std::string Violation::to_string() const {
  std::ostringstream os;
  os << (kind == Kind::policy ? "policy: " : "lockset: ") << op << " @0x" << std::hex
     << addr << std::dec << " rank " << rank;
  if (kind == Kind::policy) {
    os << " under " << progress_name(policy);
  } else {
    os << " lockset={} (multi-thread write, no common lock)";
  }
  return os.str();
}

RaceDetector& RaceDetector::instance() {
  static RaceDetector d;
  return d;
}

void RaceDetector::enable(bool log_accesses) {
  std::lock_guard lock(mutex_);
  log_accesses_ = log_accesses;
  g_detector_enabled.store(true, std::memory_order_relaxed);
}

void RaceDetector::disable() { g_detector_enabled.store(false, std::memory_order_relaxed); }

bool RaceDetector::enabled() const noexcept {
  return g_detector_enabled.load(std::memory_order_relaxed);
}

void RaceDetector::clear() {
  std::lock_guard lock(mutex_);
  addrs_.clear();
  violations_.clear();
  log_.clear();
}

void RaceDetector::log_locked(const void* addr, AccessKind kind, const char* op) {
  if (!log_accesses_ || log_.size() >= kMaxLogged) return;
  log_.push_back({reinterpret_cast<std::uintptr_t>(addr), obs::thread_rank(), kind, op,
                  current_progress(), static_cast<std::uint32_t>(t_locks.size())});
}

void RaceDetector::record_policy_violation_locked(const void* addr, const char* op) {
  violations_.push_back({Violation::Kind::policy, reinterpret_cast<std::uintptr_t>(addr),
                         obs::thread_rank(), op, current_progress()});
}

void RaceDetector::on_lock_acquired(const void* lock) {
  if (!enabled()) return;
  const bool policy_ok = current_progress() != forward_progress::weakly_parallel;
  std::lock_guard guard(mutex_);
  t_locks.push_back(lock);
  log_locked(lock, AccessKind::lock_acquire, "lock_acquire");
  if (!policy_ok) record_policy_violation_locked(lock, "lock_acquire");
}

void RaceDetector::on_lock_released(const void* lock) {
  if (!enabled()) return;
  std::lock_guard guard(mutex_);
  auto it = std::find(t_locks.rbegin(), t_locks.rend(), lock);
  if (it != t_locks.rend()) t_locks.erase(std::next(it).base());
  log_locked(lock, AccessKind::lock_release, "lock_release");
}

void RaceDetector::on_atomic(const void* addr, const char* op, bool synchronizing) {
  if (!enabled()) return;
  const bool violation =
      synchronizing && current_progress() == forward_progress::weakly_parallel;
  std::lock_guard guard(mutex_);
  log_locked(addr, synchronizing ? AccessKind::atomic_sync : AccessKind::atomic_relaxed, op);
  if (violation) record_policy_violation_locked(addr, op);
}

void RaceDetector::on_plain(const void* addr, const char* op, bool write) {
  if (!enabled()) return;
  const std::uint64_t tid = this_thread_id();
  std::lock_guard guard(mutex_);
  log_locked(addr, write ? AccessKind::plain_write : AccessKind::plain_read, op);
  AddrState& s = addrs_[reinterpret_cast<std::uintptr_t>(addr)];
  if (!s.lockset_init) {
    s.lockset = t_locks;
    std::sort(s.lockset.begin(), s.lockset.end());
    s.lockset_init = true;
    s.first_thread = tid;
  } else {
    // Intersect the candidate set with the locks held right now.
    std::vector<const void*> held = t_locks;
    std::sort(held.begin(), held.end());
    std::vector<const void*> kept;
    std::set_intersection(s.lockset.begin(), s.lockset.end(), held.begin(), held.end(),
                          std::back_inserter(kept));
    s.lockset = std::move(kept);
    if (tid != s.first_thread) s.multi_thread = true;
  }
  s.written = s.written || write;
  if (s.multi_thread && s.written && s.lockset.empty() && !s.reported) {
    s.reported = true;
    violations_.push_back({Violation::Kind::lockset,
                           reinterpret_cast<std::uintptr_t>(addr), obs::thread_rank(), op,
                           current_progress()});
  }
}

std::vector<Violation> RaceDetector::violations() const {
  std::lock_guard lock(mutex_);
  return violations_;
}

std::size_t RaceDetector::violation_count() const {
  std::lock_guard lock(mutex_);
  return violations_.size();
}

std::size_t RaceDetector::policy_violations() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(violations_.begin(), violations_.end(),
                    [](const Violation& v) { return v.kind == Violation::Kind::policy; }));
}

std::size_t RaceDetector::lockset_races() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(violations_.begin(), violations_.end(),
                    [](const Violation& v) { return v.kind == Violation::Kind::lockset; }));
}

std::vector<AccessRecord> RaceDetector::access_log() const {
  std::lock_guard lock(mutex_);
  return log_;
}

std::string RaceDetector::report() const {
  std::lock_guard lock(mutex_);
  std::ostringstream os;
  os << "race-detector: " << violations_.size() << " violation(s) [" << describe_seed()
     << "]\n";
  for (const Violation& v : violations_) os << "  " << v.to_string() << "\n";
  return os.str();
}

// -- out-of-line hook targets (declared in hooks.hpp under NBODY_CHAOS) -----

void detector_on_atomic(const void* addr, const char* op, bool synchronizing) noexcept {
  try {
    RaceDetector::instance().on_atomic(addr, op, synchronizing);
  } catch (...) {  // allocation failure inside the harness must not kill the run
  }
}

void detector_on_lock_acquired(const void* addr) noexcept {
  try {
    RaceDetector::instance().on_lock_acquired(addr);
  } catch (...) {
  }
}

void detector_on_lock_released(const void* addr) noexcept {
  try {
    RaceDetector::instance().on_lock_released(addr);
  } catch (...) {
  }
}

}  // namespace nbody::exec::chaos
