// Instrumentation hooks the hot paths (exec/atomic.hpp, the octree's node
// locks) call into the chaos race detector. Compiled to nothing unless the
// library is built with -DNBODY_CHAOS=1 (CMake option NBODY_CHAOS), so a
// flags-off build carries zero overhead; with the option on, a disabled
// detector costs one relaxed load + branch per instrumented operation.
//
// This header is deliberately tiny: atomic.hpp is included by every hot
// kernel, so the full detector (exec/chaos/race_detector.hpp) must not leak
// into it.
#pragma once

#include <atomic>

namespace nbody::exec::chaos {

#if defined(NBODY_CHAOS)

/// Defined in race_detector.cpp; true only between RaceDetector::enable()
/// and disable() (or for the lifetime of a DetectorScope).
extern std::atomic<bool> g_detector_enabled;

inline bool detector_enabled() noexcept {
  return g_detector_enabled.load(std::memory_order_relaxed);
}

// Out-of-line slow paths (race_detector.cpp).
void detector_on_atomic(const void* addr, const char* op, bool synchronizing) noexcept;
void detector_on_lock_acquired(const void* addr) noexcept;
void detector_on_lock_released(const void* addr) noexcept;

/// Atomic helper hook: `synchronizing` marks acquire/release/seq_cst
/// operations (the vectorization-unsafe ones); relaxed operations pass
/// false and are only recorded in the access log.
inline void hook_atomic(const void* addr, const char* op, bool synchronizing) noexcept {
  if (detector_enabled()) detector_on_atomic(addr, op, synchronizing);
}

/// Lock protocol hooks: the octree notifies these around its CAS-based
/// subdivision lock; InstrumentedMutex notifies them around a std::mutex.
inline void hook_lock_acquired(const void* addr) noexcept {
  if (detector_enabled()) detector_on_lock_acquired(addr);
}

inline void hook_lock_released(const void* addr) noexcept {
  if (detector_enabled()) detector_on_lock_released(addr);
}

#else

inline constexpr bool detector_enabled() noexcept { return false; }
inline void hook_atomic(const void*, const char*, bool) noexcept {}
inline void hook_lock_acquired(const void*) noexcept {}
inline void hook_lock_released(const void*) noexcept {}

#endif  // NBODY_CHAOS

}  // namespace nbody::exec::chaos
