#include "exec/chaos/chaos.hpp"

#include <atomic>
#include <thread>

#include "support/env.hpp"
#include "support/rng.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace nbody::exec::chaos {

namespace {

/// One-word mixer (SplitMix64 finalizer) for deriving sub-streams.
constexpr std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  return support::hash_u64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

std::atomic<std::uint64_t>& seed_ref() {
  static std::atomic<std::uint64_t> s{[] {
    return static_cast<std::uint64_t>(support::env_size("NBODY_CHAOS_SEED", 1));
  }()};
  return s;
}

std::atomic<std::uint64_t> g_region_counter{0};

void hardware_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Shared perturbation decision: draws from `state` and spins/yields.
/// Yields ~1/16 of the time, spin-delays ~1/8, otherwise does nothing —
/// frequent enough to shuffle interleavings, rare enough to keep the chaos
/// lane usable for whole test sweeps.
bool perturb_from(std::uint64_t& state) noexcept {
  support::SplitMix64 rng(state);
  const std::uint64_t draw = rng.next();
  state = draw;
  if ((draw & 0xF) == 0) {
    std::this_thread::yield();
    return true;
  }
  if ((draw & 0x7) == 1) {
    const unsigned spins = 1u + static_cast<unsigned>((draw >> 8) & 0x3FF);
    for (unsigned i = 0; i < spins; ++i) hardware_pause();
    return true;
  }
  return false;
}

}  // namespace

std::uint64_t seed() noexcept { return seed_ref().load(std::memory_order_relaxed); }

void set_seed(std::uint64_t s) noexcept {
  seed_ref().store(s, std::memory_order_relaxed);
  g_region_counter.store(0, std::memory_order_relaxed);
}

std::string describe_seed() { return "NBODY_CHAOS_SEED=" + std::to_string(seed()); }

std::uint64_t next_region_seed() noexcept {
  const std::uint64_t region = g_region_counter.fetch_add(1, std::memory_order_relaxed);
  return mix(seed(), region);
}

std::uint64_t regions_dispatched() noexcept {
  return g_region_counter.load(std::memory_order_relaxed);
}

std::vector<std::uint32_t> make_permutation(std::uint64_t region_seed, std::size_t n) {
  std::vector<std::uint32_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::uint32_t>(i);
  support::SplitMix64 rng(mix(region_seed, 0x5045524dULL));  // "PERM"
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next() % i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Perturber::Perturber(std::uint64_t region_seed, unsigned rank) noexcept
    : state_(mix(region_seed, 0x434c41494dULL + rank)) {}  // "CLAIM" + rank

void Perturber::maybe_perturb() noexcept {
  if (perturb_from(state_)) ++injected_;
}

YieldInjector::YieldInjector(std::uint64_t region_seed, unsigned rank) noexcept
    : state_(mix(region_seed, 0x434b5054ULL + rank)) {  // "CKPT" + rank
  const auto saved = get_checkpoint_hook();
  saved_fn_ = saved.fn;
  saved_ctx_ = saved.ctx;
  set_checkpoint_hook(&YieldInjector::fire, this);
}

YieldInjector::~YieldInjector() { set_checkpoint_hook(saved_fn_, saved_ctx_); }

void YieldInjector::fire(void* self, bool waiting) noexcept {
  auto* inj = static_cast<YieldInjector*>(self);
  // A waiting checkpoint (spin on a held lock) already implies the thread
  // cannot progress; perturbing there only lengthens the spin. Ordinary
  // checkpoints — e.g. inside the octree's subdivision critical section —
  // are where a deterministic yield creates the lock-holder-suspended
  // schedules lockstep hardware produces.
  if (!waiting) perturb_from(inj->state_);
}

}  // namespace nbody::exec::chaos
