// CalculateBoundingBox — step 1 of the paper's Algorithm 2.
//
// A parallel transform_reduce over all body positions whose monoid is AABB
// merge (paper Algorithm 3 reduces a (min, max) tuple; aabb packages the
// same pair with an empty-box identity).
#pragma once

#include <vector>

#include "exec/algorithms.hpp"
#include "math/aabb.hpp"

namespace nbody::core {

/// Smallest box containing all positions; the empty box for an empty range.
template <class Policy, class T, std::size_t D>
math::aabb<T, D> compute_bounding_box(Policy policy,
                                      const std::vector<math::vec<T, D>>& x) {
  using box = math::aabb<T, D>;
  return exec::transform_reduce(
      policy, x.begin(), x.end(), box{},
      [](box acc, const box& b) { return acc.merged(b); },
      [](const math::vec<T, D>& p) { return box::of_point(p); });
}

/// The root box the octree subdivides: the bounding box inflated to a
/// non-degenerate cube (isotropic subdivision needs equal side lengths).
template <class Policy, class T, std::size_t D>
math::aabb<T, D> compute_root_cube(Policy policy, const std::vector<math::vec<T, D>>& x) {
  return compute_bounding_box(policy, x).inflated_cube();
}

}  // namespace nbody::core
