// Snapshot I/O: persist a System to disk and read it back.
//
// Two formats:
//   * binary  — exact bit-level round trip (magic + header + raw arrays),
//     the format the CLI uses for checkpoints/restarts;
//   * CSV     — human/pandas readable, one body per row, for plotting.
//
// Both formats carry the stable body ids so a reloaded system continues to
// support identity-matched comparisons after Hilbert reorderings.
#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/system.hpp"
#include "support/assert.hpp"

namespace nbody::core {

namespace snapshot_detail {
inline constexpr std::uint64_t kMagic = 0x4e424f4459534e50ull;  // "NBODYSNP"
inline constexpr std::uint32_t kVersion = 1;
}  // namespace snapshot_detail

/// Writes `sys` as a binary snapshot. Throws std::runtime_error on I/O error.
template <class T, std::size_t D>
void save_snapshot_binary(const System<T, D>& sys, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_snapshot_binary: cannot open " + path);
  const std::uint64_t magic = snapshot_detail::kMagic;
  const std::uint32_t version = snapshot_detail::kVersion;
  const std::uint32_t dim = static_cast<std::uint32_t>(D);
  const std::uint32_t scalar_bytes = static_cast<std::uint32_t>(sizeof(T));
  const std::uint64_t n = sys.size();
  auto put = [&](const void* p, std::size_t bytes) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
  };
  put(&magic, sizeof magic);
  put(&version, sizeof version);
  put(&dim, sizeof dim);
  put(&scalar_bytes, sizeof scalar_bytes);
  put(&n, sizeof n);
  put(sys.m.data(), n * sizeof(T));
  put(sys.x.data(), n * sizeof(typename System<T, D>::vec_t));
  put(sys.v.data(), n * sizeof(typename System<T, D>::vec_t));
  put(sys.id.data(), n * sizeof(std::uint32_t));
  if (!out) throw std::runtime_error("save_snapshot_binary: write failed for " + path);
}

/// Reads a binary snapshot written by save_snapshot_binary. Validates the
/// header (magic, version, dimension, scalar width) before touching data.
template <class T, std::size_t D>
System<T, D> load_snapshot_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_snapshot_binary: cannot open " + path);
  std::uint64_t magic = 0;
  std::uint32_t version = 0, dim = 0, scalar_bytes = 0;
  std::uint64_t n = 0;
  auto get = [&](void* p, std::size_t bytes) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
  };
  get(&magic, sizeof magic);
  get(&version, sizeof version);
  get(&dim, sizeof dim);
  get(&scalar_bytes, sizeof scalar_bytes);
  get(&n, sizeof n);
  if (!in || magic != snapshot_detail::kMagic)
    throw std::runtime_error("load_snapshot_binary: not a snapshot file: " + path);
  if (version != snapshot_detail::kVersion)
    throw std::runtime_error("load_snapshot_binary: unsupported version in " + path);
  if (dim != D || scalar_bytes != sizeof(T))
    throw std::runtime_error("load_snapshot_binary: dimension/precision mismatch in " + path);
  System<T, D> sys(static_cast<std::size_t>(n));
  get(sys.m.data(), n * sizeof(T));
  get(sys.x.data(), n * sizeof(typename System<T, D>::vec_t));
  get(sys.v.data(), n * sizeof(typename System<T, D>::vec_t));
  get(sys.id.data(), n * sizeof(std::uint32_t));
  if (!in) throw std::runtime_error("load_snapshot_binary: truncated file: " + path);
  return sys;
}

/// Writes `sys` as CSV: id,m,x0..,v0.. — one row per body.
template <class T, std::size_t D>
void save_snapshot_csv(const System<T, D>& sys, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_snapshot_csv: cannot open " + path);
  out << "id,m";
  for (std::size_t d = 0; d < D; ++d) out << ",x" << d;
  for (std::size_t d = 0; d < D; ++d) out << ",v" << d;
  out << '\n';
  out.precision(17);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    out << sys.id[i] << ',' << sys.m[i];
    for (std::size_t d = 0; d < D; ++d) out << ',' << sys.x[i][d];
    for (std::size_t d = 0; d < D; ++d) out << ',' << sys.v[i][d];
    out << '\n';
  }
  if (!out) throw std::runtime_error("save_snapshot_csv: write failed for " + path);
}

/// Reads a CSV snapshot written by save_snapshot_csv.
template <class T, std::size_t D>
System<T, D> load_snapshot_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_snapshot_csv: cannot open " + path);
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error("load_snapshot_csv: empty file: " + path);
  System<T, D> sys;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    auto next = [&]() -> double {
      if (!std::getline(row, cell, ','))
        throw std::runtime_error("load_snapshot_csv: short row in " + path);
      return std::stod(cell);
    };
    const auto id = static_cast<std::uint32_t>(next());
    const T m = static_cast<T>(next());
    typename System<T, D>::vec_t x, v;
    for (std::size_t d = 0; d < D; ++d) x[d] = static_cast<T>(next());
    for (std::size_t d = 0; d < D; ++d) v[d] = static_cast<T>(next());
    sys.add(m, x, v);
    sys.id.back() = id;
  }
  return sys;
}

}  // namespace nbody::core
