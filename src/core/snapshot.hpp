// Snapshot I/O: persist a System to disk and read it back.
//
// Two formats:
//   * binary  — exact bit-level round trip (magic + header + raw arrays +
//     payload checksum), the format the CLI and the guarded simulation loop
//     use for checkpoints/restarts;
//   * CSV     — human/pandas readable, one body per row, for plotting.
//
// Both formats carry the stable body ids so a reloaded system continues to
// support identity-matched comparisons after Hilbert reorderings.
//
// Robustness properties (the checkpoint path must survive hostile input and
// partial failures):
//   * every write is atomic: data goes to "<path>.tmp" and is renamed over
//     the target only after a successful flush, so a crash or injected
//     fault mid-write never corrupts an existing checkpoint;
//   * binary v2 appends an FNV-1a checksum over the payload; load verifies
//     it, so bit rot and truncation are detected, not silently integrated;
//   * the header's body count is validated against the actual file size
//     *before* any allocation — a corrupted header cannot trigger a huge
//     allocation;
//   * v1 files (no checksum) remain readable.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/system.hpp"
#include "support/assert.hpp"
#include "support/fault.hpp"

namespace nbody::core {

/// Optional run metadata carried by binary snapshots from format v3 on:
/// where in the run the checkpoint was taken. Written only by the explicit
/// metadata overload of save_snapshot_binary — the default writer stays at
/// v2, so byte-identical snapshot comparisons of plain saves keep working.
struct SnapshotMeta {
  double time = 0.0;        // simulated time at the snapshot
  std::uint64_t steps = 0;  // integration steps completed
};

namespace snapshot_detail {
inline constexpr std::uint64_t kMagic = 0x4e424f4459534e50ull;  // "NBODYSNP"
inline constexpr std::uint32_t kVersion = 2;  // v2 = v1 + payload checksum
inline constexpr std::uint32_t kVersionMeta = 3;  // v3 = v2 + SnapshotMeta trailer
inline constexpr std::size_t kHeaderBytes =
    sizeof(std::uint64_t) + 3 * sizeof(std::uint32_t) + sizeof(std::uint64_t);

/// FNV-1a over a byte range, chainable across calls via `h`.
inline std::uint64_t fnv1a(const void* data, std::size_t n,
                           std::uint64_t h = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Renames tmp over path; on failure removes tmp and throws. The rename is
/// what makes snapshot writes atomic with respect to crashes.
inline void commit_tmp_file(const std::string& tmp, const std::string& path,
                            const char* what) {
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error(std::string(what) + ": cannot rename " + tmp + " to " + path);
  }
}
}  // namespace snapshot_detail

namespace snapshot_detail {
/// Shared binary writer: v2 without metadata, v3 (payload + SnapshotMeta
/// trailer, both checksummed) when `meta` is non-null.
template <class T, std::size_t D>
void save_binary_impl(const System<T, D>& sys, const std::string& path,
                      const SnapshotMeta* meta) {
  support::fault_point(support::FaultSite::snapshot_write);
  const std::string tmp = path + ".tmp";
  std::uint64_t checksum = 0xcbf29ce484222325ull;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("save_snapshot_binary: cannot open " + tmp);
    const std::uint64_t magic = kMagic;
    const std::uint32_t version = meta != nullptr ? kVersionMeta : kVersion;
    const std::uint32_t dim = static_cast<std::uint32_t>(D);
    const std::uint32_t scalar_bytes = static_cast<std::uint32_t>(sizeof(T));
    const std::uint64_t n = sys.size();
    auto put = [&](const void* p, std::size_t bytes) {
      out.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
    };
    auto put_payload = [&](const void* p, std::size_t bytes) {
      checksum = fnv1a(p, bytes, checksum);
      put(p, bytes);
    };
    put(&magic, sizeof magic);
    put(&version, sizeof version);
    put(&dim, sizeof dim);
    put(&scalar_bytes, sizeof scalar_bytes);
    put(&n, sizeof n);
    put_payload(sys.m.data(), n * sizeof(T));
    put_payload(sys.x.data(), n * sizeof(typename System<T, D>::vec_t));
    put_payload(sys.v.data(), n * sizeof(typename System<T, D>::vec_t));
    put_payload(sys.id.data(), n * sizeof(std::uint32_t));
    if (meta != nullptr) {
      put_payload(&meta->time, sizeof meta->time);
      put_payload(&meta->steps, sizeof meta->steps);
    }
    put(&checksum, sizeof checksum);
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("save_snapshot_binary: write failed for " + tmp);
    }
  }
  commit_tmp_file(tmp, path, "save_snapshot_binary");
}
}  // namespace snapshot_detail

/// Writes `sys` as a binary snapshot (format v2, checksummed), atomically:
/// the target file is either the previous content or the complete new
/// snapshot, never a torn write. Throws std::runtime_error on I/O error.
template <class T, std::size_t D>
void save_snapshot_binary(const System<T, D>& sys, const std::string& path) {
  snapshot_detail::save_binary_impl(sys, path, nullptr);
}

/// Metadata-carrying variant (format v3): additionally records simulated
/// time and completed steps so a restart can resume the clock, not just the
/// state. The checkpoint mirror of Simulation::run_guarded uses this.
template <class T, std::size_t D>
void save_snapshot_binary(const System<T, D>& sys, const std::string& path,
                          const SnapshotMeta& meta) {
  snapshot_detail::save_binary_impl(sys, path, &meta);
}

/// Reads a binary snapshot written by save_snapshot_binary (v2/v3) or the
/// pre-checksum v1 format. Validates the header (magic, version, dimension,
/// scalar width) and checks the claimed body count against the real file
/// size before allocating anything; v2+ additionally verifies the payload
/// checksum. When `meta_out` is non-null it receives the v3 metadata
/// (defaults for v1/v2 files).
template <class T, std::size_t D>
System<T, D> load_snapshot_binary(const std::string& path,
                                  SnapshotMeta* meta_out = nullptr) {
  support::fault_point(support::FaultSite::snapshot_read);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_snapshot_binary: cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  std::uint64_t magic = 0;
  std::uint32_t version = 0, dim = 0, scalar_bytes = 0;
  std::uint64_t n = 0;
  auto get = [&](void* p, std::size_t bytes) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
  };
  get(&magic, sizeof magic);
  get(&version, sizeof version);
  get(&dim, sizeof dim);
  get(&scalar_bytes, sizeof scalar_bytes);
  get(&n, sizeof n);
  if (!in || magic != snapshot_detail::kMagic)
    throw std::runtime_error("load_snapshot_binary: not a snapshot file: " + path);
  if (version < 1 || version > snapshot_detail::kVersionMeta)
    throw std::runtime_error("load_snapshot_binary: unsupported version in " + path);
  if (dim != D || scalar_bytes != sizeof(T))
    throw std::runtime_error("load_snapshot_binary: dimension/precision mismatch in " + path);
  // Validate the untrusted body count against the bytes actually present
  // before System<T,D>(n) allocates anything.
  const std::uint64_t per_body = sizeof(T) + 2 * sizeof(typename System<T, D>::vec_t) +
                                 sizeof(std::uint32_t);
  std::uint64_t trailer = version >= 2 ? sizeof(std::uint64_t) : 0;
  if (version >= 3) trailer += sizeof(double) + sizeof(std::uint64_t);
  if (n >= (std::uint64_t{1} << 31) ||
      file_size < snapshot_detail::kHeaderBytes + n * per_body + trailer)
    throw std::runtime_error("load_snapshot_binary: implausible body count " +
                             std::to_string(n) + " for file size " +
                             std::to_string(file_size) + " in " + path);
  System<T, D> sys(static_cast<std::size_t>(n));
  std::uint64_t checksum = 0xcbf29ce484222325ull;
  auto get_payload = [&](void* p, std::size_t bytes) {
    get(p, bytes);
    checksum = snapshot_detail::fnv1a(p, bytes, checksum);
  };
  get_payload(sys.m.data(), n * sizeof(T));
  get_payload(sys.x.data(), n * sizeof(typename System<T, D>::vec_t));
  get_payload(sys.v.data(), n * sizeof(typename System<T, D>::vec_t));
  get_payload(sys.id.data(), n * sizeof(std::uint32_t));
  SnapshotMeta meta{};
  if (version >= 3) {
    get_payload(&meta.time, sizeof meta.time);
    get_payload(&meta.steps, sizeof meta.steps);
  }
  if (!in) throw std::runtime_error("load_snapshot_binary: truncated file: " + path);
  if (version >= 2) {
    std::uint64_t stored = 0;
    get(&stored, sizeof stored);
    if (!in) throw std::runtime_error("load_snapshot_binary: truncated file: " + path);
    if (stored != checksum)
      throw std::runtime_error("load_snapshot_binary: payload checksum mismatch in " + path +
                               " (file corrupted)");
  }
  if (meta_out != nullptr) *meta_out = meta;
  return sys;
}

/// Writes `sys` as CSV: id,m,x0..,v0.. — one row per body. Atomic like the
/// binary writer (temp file + rename).
template <class T, std::size_t D>
void save_snapshot_csv(const System<T, D>& sys, const std::string& path) {
  support::fault_point(support::FaultSite::snapshot_write);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("save_snapshot_csv: cannot open " + tmp);
    out << "id,m";
    for (std::size_t d = 0; d < D; ++d) out << ",x" << d;
    for (std::size_t d = 0; d < D; ++d) out << ",v" << d;
    out << '\n';
    out.precision(17);
    for (std::size_t i = 0; i < sys.size(); ++i) {
      out << sys.id[i] << ',' << sys.m[i];
      for (std::size_t d = 0; d < D; ++d) out << ',' << sys.x[i][d];
      for (std::size_t d = 0; d < D; ++d) out << ',' << sys.v[i][d];
      out << '\n';
    }
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("save_snapshot_csv: write failed for " + tmp);
    }
  }
  snapshot_detail::commit_tmp_file(tmp, path, "save_snapshot_csv");
}

/// Reads a CSV snapshot written by save_snapshot_csv.
template <class T, std::size_t D>
System<T, D> load_snapshot_csv(const std::string& path) {
  support::fault_point(support::FaultSite::snapshot_read);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_snapshot_csv: cannot open " + path);
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error("load_snapshot_csv: empty file: " + path);
  System<T, D> sys;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    auto next = [&]() -> double {
      if (!std::getline(row, cell, ','))
        throw std::runtime_error("load_snapshot_csv: short row in " + path);
      return std::stod(cell);
    };
    const auto id = static_cast<std::uint32_t>(next());
    const T m = static_cast<T>(next());
    typename System<T, D>::vec_t x, v;
    for (std::size_t d = 0; d < D; ++d) x[d] = static_cast<T>(next());
    for (std::size_t d = 0; d < D; ++d) v[d] = static_cast<T>(next());
    sys.add(m, x, v);
    sys.id.back() = id;
  }
  return sys;
}

}  // namespace nbody::core
