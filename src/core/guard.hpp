// Between-step health checks for the guarded simulation loop.
//
// Each check inspects the live state and returns a structured GuardReport
// instead of asserting, so Simulation::run_guarded (and tests) can treat a
// failed invariant exactly like a thrown fault: restore the last checkpoint
// and retry down the degradation ladder.
//
// Checks:
//   * check_finite        — parallel sweep: every position/velocity
//                           component is finite (NaN/Inf poisoning is the
//                           first visible symptom of most races).
//   * check_energy_drift  — watchdog against a step-0 EnergyReport; the
//                           kinetic term optionally un-staggers leapfrog
//                           velocities on the fly so the check can run
//                           mid-run without touching state.
//   * validate_octree     — structural validator for ConcurrentOctree-style
//                           trees: parent/child consistency, no leftover
//                           locks, every body reachable exactly once.
//   * validate_bvh        — structural validator for HilbertBVH-style
//                           trees: AABB containment of children and leaf
//                           bodies, mass consistency.
//
// The tree validators are duck-typed templates (any type with the same
// introspection surface works), which keeps this header free of octree/bvh
// dependencies.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/diagnostics.hpp"
#include "core/system.hpp"
#include "exec/algorithms.hpp"

namespace nbody::core {

struct GuardReport {
  std::string check;
  bool ok = true;
  std::string detail;  // empty when ok

  [[nodiscard]] std::string to_string() const {
    return check + ": " + (ok ? "ok" : "FAILED — " + detail);
  }
};

/// Parallel finite-value sweep over positions and velocities.
template <class Policy, class T, std::size_t D>
GuardReport check_finite(Policy policy, const System<T, D>& sys) {
  const std::size_t bad = exec::transform_reduce_index(
      policy, sys.size(), std::size_t{0}, [](std::size_t a, std::size_t b) { return a + b; },
      [&](std::size_t i) -> std::size_t {
        for (std::size_t d = 0; d < D; ++d)
          if (!std::isfinite(sys.x[i][d]) || !std::isfinite(sys.v[i][d])) return 1;
        return 0;
      });
  GuardReport r{"finite", bad == 0, ""};
  if (bad != 0)
    r.detail = std::to_string(bad) + " of " + std::to_string(sys.size()) +
               " bodies have non-finite position or velocity";
  return r;
}

/// Total energy with the kinetic term evaluated at v - a*dt_stagger/2 —
/// pass dt_stagger = dt while leapfrog velocities are half-step-offset,
/// 0 when synchronized. Does not modify the system.
template <class Policy, class T, std::size_t D>
EnergyReport<T, D> staggered_energy(Policy policy, const System<T, D>& sys, T G, T eps2,
                                    T dt_stagger) {
  auto partial = exec::transform_reduce_index(
      policy, sys.size(), support::KahanSum{},
      [](support::KahanSum acc, const support::KahanSum& term) {
        acc.merge(term);
        return acc;
      },
      [&](std::size_t i) {
        support::KahanSum s;
        const auto v = sys.v[i] - sys.a[i] * (dt_stagger / T(2));
        s.add(0.5 * static_cast<double>(sys.m[i]) * static_cast<double>(norm2(v)));
        return s;
      });
  return {static_cast<T>(partial.value()), potential_energy(policy, sys, G, eps2)};
}

/// Energy-drift watchdog: relative drift of total energy against the
/// step-0 reference. The reference scale is |E0| (or the energy magnitudes
/// when E0 is near zero, as in virialized systems).
template <class Policy, class T, std::size_t D>
GuardReport check_energy_drift(Policy policy, const System<T, D>& sys,
                               const EnergyReport<T, D>& reference, T G, T eps2, T rel_tol,
                               T dt_stagger = T(0)) {
  const auto now = staggered_energy(policy, sys, G, eps2, dt_stagger);
  T scale = std::abs(reference.total());
  const T magnitude = std::abs(reference.kinetic) + std::abs(reference.potential);
  if (scale < magnitude * T(1e-3)) scale = magnitude;  // near-zero E0: use |K|+|U|
  if (scale <= T(0)) scale = T(1);
  const T drift = std::abs(now.total() - reference.total()) / scale;
  GuardReport r{"energy-drift", drift <= rel_tol, ""};
  if (!r.ok)
    r.detail = "relative drift " + std::to_string(static_cast<double>(drift)) +
               " exceeds tolerance " + std::to_string(static_cast<double>(rel_tol)) +
               " (E0=" + std::to_string(static_cast<double>(reference.total())) +
               ", E=" + std::to_string(static_cast<double>(now.total())) + ")";
  return r;
}

/// Structural validator for a ConcurrentOctree-like tree (duck-typed on its
/// introspection surface: slot(), parent_of_group(), node_count(),
/// node_index_end(), the slot
/// classification statics, and the next-in-leaf chains exposed by chain()).
/// Checks parent/child consistency, absence of leftover subdivision locks,
/// and that every body index in [0, n_bodies) is reachable exactly once.
template <class Tree>
GuardReport validate_octree(const Tree& tree, std::size_t n_bodies) {
  GuardReport r{"octree-structure", true, ""};
  auto fail = [&](std::string why) {
    r.ok = false;
    r.detail = std::move(why);
    return r;
  };
  const std::uint32_t nodes = tree.node_count();
  if (nodes == 0) return fail("empty node pool (no root)");
  // Chunked allocation leaves holes, so live nodes can sit at indices past
  // the live *count* — pointer range checks bound with the index end.
  const std::uint32_t index_end = tree.node_index_end();
  std::vector<char> seen(n_bodies, 0);
  std::size_t reachable = 0;
  std::vector<std::uint32_t> todo{0u};
  std::size_t visited = 0;
  while (!todo.empty()) {
    const std::uint32_t node = todo.back();
    todo.pop_back();
    if (++visited > nodes)
      return fail("traversal visited more slots than allocated (cycle or corrupt offsets)");
    const std::uint32_t v = tree.slot(node);
    if (Tree::is_internal(v)) {
      if (v + Tree::K > index_end)
        return fail("internal node " + std::to_string(node) + " points past the pool (" +
                    std::to_string(v) + "+" + std::to_string(Tree::K) + " > " +
                    std::to_string(index_end) + ")");
      if (tree.parent_of_group(Tree::group_of(v)) != node)
        return fail("children of node " + std::to_string(node) +
                    " carry a wrong parent offset");
      for (std::uint32_t q = 0; q < Tree::K; ++q) todo.push_back(v + q);
    } else if (Tree::is_body(v)) {
      for (std::uint32_t b : tree.chain(v)) {
        if (b >= n_bodies)
          return fail("leaf references body " + std::to_string(b) + " >= n_bodies");
        if (seen[b]) return fail("body " + std::to_string(b) + " reachable more than once");
        seen[b] = 1;
        ++reachable;
      }
    } else if (!Tree::is_empty(v)) {
      return fail("node " + std::to_string(node) +
                  " left in locked state (abandoned subdivision)");
    }
  }
  if (reachable != n_bodies)
    return fail(std::to_string(reachable) + " of " + std::to_string(n_bodies) +
                " bodies reachable from the root");
  return r;
}

/// Structural validator for a HilbertBVH-like tree (duck-typed): every
/// internal node's AABB contains its children's AABBs and node masses are
/// consistent with their children. With `check_bodies` the leaves' AABBs
/// must also contain their bodies — valid only while `x` still holds the
/// positions the tree was built from (bodies drift out of their boxes the
/// moment the integrator moves them, so the between-step guard checks only
/// the tree-internal invariants).
template <class Tree, class T, std::size_t D>
GuardReport validate_bvh(const Tree& tree, const std::vector<math::vec<T, D>>& x,
                         bool check_bodies = true) {
  GuardReport r{"bvh-structure", true, ""};
  auto fail = [&](std::string why) {
    r.ok = false;
    r.detail = std::move(why);
    return r;
  };
  const std::size_t leaf_begin = tree.leaf_count();
  const std::size_t total = tree.node_total();
  if (total < 2 * leaf_begin) return fail("node array smaller than the implicit layout");
  // Leaves: bodies inside the leaf box (build-time positions only).
  for (std::size_t j = 0; check_bodies && j < leaf_begin; ++j) {
    const std::size_t k = leaf_begin + j;
    const auto [b0, b1] = tree.leaf_range(j);
    for (std::size_t b = b0; b < b1; ++b)
      if (!tree.node_box(k).contains(x[b]))
        return fail("leaf " + std::to_string(k) + " box does not contain body " +
                    std::to_string(b));
  }
  // Internal nodes: box containment and mass consistency.
  for (std::size_t k = 1; k < leaf_begin; ++k) {
    const auto& box = tree.node_box(k);
    if (!box.contains(tree.node_box(2 * k)) || !box.contains(tree.node_box(2 * k + 1)))
      return fail("node " + std::to_string(k) + " box does not contain its children");
    const T mk = tree.node_mass(k);
    const T mc = tree.node_mass(2 * k) + tree.node_mass(2 * k + 1);
    const T scale = std::abs(mk) > T(1) ? std::abs(mk) : T(1);
    if (std::abs(mk - mc) > scale * T(1e-9))
      return fail("node " + std::to_string(k) + " mass " +
                  std::to_string(static_cast<double>(mk)) + " != children sum " +
                  std::to_string(static_cast<double>(mc)));
  }
  return r;
}

}  // namespace nbody::core
