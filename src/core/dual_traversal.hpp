// Dual-tree traversal orchestration, shared by both tree strategies.
//
// The group partition (the same contiguous leaf-order blocks the grouped
// M2P/P2P traversal walks) doubles as the leaf level of an implicit binary
// TARGET tree: leaves are the per-group bounding boxes, internal nodes their
// pairwise merges, laid out heap-style (root = 1, children 2k / 2k+1, leaves
// at [leaf_begin, leaf_begin + ngroups)). The dual walk descends this target
// tree and the source tree simultaneously:
//
//   * at each target node, the tree's dual_partition() classifies the
//     incoming source cells — far cells pass the mutual MAC and are
//     translated into the node's LocalExpansion (M2L); oversized source
//     cells are opened in place; cells the TARGET is still too coarse for
//     are deferred to the node's children;
//   * descending an edge translates the accumulated expansion to the child
//     center (L2L, an exact polynomial shift);
//   * at a target leaf the strategy's leaf callback resolves the surviving
//     cells through the existing group-walk acceptance into M2P/P2P batch
//     lists and adds the expansion per body (L2P).
//
// Parallelization: a sequential breadth-first peel of the top of the target
// tree (partitioning each expanded node exactly once) builds a frontier of
// independent subtrees, which then fan out through exec::for_each_index
// under the caller's policy — so the downward pass runs under all four
// scheduling backends and stays in bounds for the chaos lockset detector:
// subtree walks share only immutable state, every leaf writes a disjoint
// body range, and the traversal counters go through relaxed atomics.
//
// Expansions are per-step scratch: they are rebuilt from the freshly
// computed multipoles every force phase and never cached on the tree, so
// incremental maintenance (refit/update) and run_guarded checkpoint
// restores can never observe a stale expansion by construction.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "../exec/algorithms.hpp"
#include "../exec/atomic.hpp"
#include "../exec/thread_pool.hpp"
#include "../math/aabb.hpp"
#include "../math/local_expansion.hpp"

namespace nbody::core {

/// Traversal-operator counts accumulated across the whole dual walk.
struct DualWalkStats {
  std::uint64_t m2l = 0;  // cell->cell translations accepted by the mutual MAC
  std::uint64_t l2l = 0;  // expansion shifts down target-tree edges
};

/// Implicit binary tree over the group partition's bounding boxes.
template <class T, std::size_t D>
class DualTargetTree {
 public:
  using box_t = math::aabb<T, D>;

  void build(const std::vector<box_t>& group_boxes) {
    n_groups_ = group_boxes.size();
    leaf_begin_ = std::bit_ceil(std::max<std::size_t>(n_groups_, 1));
    box_.assign(2 * leaf_begin_, box_t{});  // padding leaves stay empty
    for (std::size_t i = 0; i < n_groups_; ++i) box_[leaf_begin_ + i] = group_boxes[i];
    for (std::size_t k = leaf_begin_; k-- > 1;)
      box_[k] = box_[2 * k].merged(box_[2 * k + 1]);
  }

  bool empty() const { return n_groups_ == 0; }
  std::size_t group_count() const { return n_groups_; }
  bool is_leaf(std::size_t k) const { return k >= leaf_begin_; }
  std::size_t leaf_index(std::size_t k) const { return k - leaf_begin_; }
  const box_t& box(std::size_t k) const { return box_[k]; }

 private:
  std::size_t n_groups_ = 0;
  std::size_t leaf_begin_ = 1;
  std::vector<box_t> box_;
};

namespace detail {

template <class T, std::size_t D, class Tree, class LeafFn>
void dual_walk_subtree(const Tree& tree, const DualTargetTree<T, D>& tt,
                       std::size_t t,
                       const std::vector<typename Tree::DualSourceCell>& in,
                       math::LocalExpansion<T, D> L, T theta2, T G, T eps2,
                       bool quadrupole, LeafFn& leaf_fn, DualWalkStats& st) {
  std::vector<typename Tree::DualSourceCell> defer;
  st.m2l += tree.dual_partition(tt.box(t), theta2, G, eps2, in, defer, L, quadrupole);
  if (tt.is_leaf(t)) {
    leaf_fn(tt.leaf_index(t), L, defer);
    return;
  }
  for (std::size_t c = 2 * t; c <= 2 * t + 1; ++c) {
    if (tt.box(c).empty()) continue;
    ++st.l2l;
    dual_walk_subtree(tree, tt, c, defer, math::l2l(L, tt.box(c).center()), theta2,
                      G, eps2, quadrupole, leaf_fn, st);
  }
}

}  // namespace detail

/// Run the full dual walk. `leaf_fn(group_index, expansion, cells)` is
/// invoked exactly once per non-empty target leaf, possibly concurrently
/// across leaves (each call sees its own expansion and deferred-cell list).
template <class Policy, class T, std::size_t D, class Tree, class LeafFn>
DualWalkStats dual_traverse(Policy policy, const Tree& tree,
                            const DualTargetTree<T, D>& tt, T theta2, T G, T eps2,
                            bool quadrupole, LeafFn&& leaf_fn) {
  using SC = typename Tree::DualSourceCell;
  using L_t = math::LocalExpansion<T, D>;
  DualWalkStats total;
  if (tt.empty()) return total;

  // Pending subtree: its root node, the expansion accumulated by the
  // ancestors (already translated to this node's center), and the source
  // cells they deferred. Siblings share the parent's defer list read-only,
  // so it rides in a shared_ptr instead of being copied per child.
  struct Pending {
    std::size_t t;
    L_t L;
    std::shared_ptr<const std::vector<SC>> in;
  };

  auto roots = std::make_shared<std::vector<SC>>();
  tree.dual_root_cells(*roots);

  std::vector<Pending> frontier;
  frontier.push_back({1, L_t::centered(tt.box(1).center()), std::move(roots)});

  // Peel the top of the target tree sequentially until there are enough
  // independent subtrees to feed the pool (or only leaves remain). Each
  // expanded node is partitioned here, exactly once; frontier entries are
  // partitioned by their own subtree walk below.
  const std::size_t want =
      4 * std::max<std::size_t>(exec::thread_pool::global().concurrency(), 1);
  while (frontier.size() < want) {
    std::size_t idx = frontier.size();
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      if (!tt.is_leaf(frontier[i].t)) {
        idx = i;
        break;
      }
    }
    if (idx == frontier.size()) break;  // all leaves
    Pending p = std::move(frontier[idx]);
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(idx));
    auto defer = std::make_shared<std::vector<SC>>();
    total.m2l +=
        tree.dual_partition(tt.box(p.t), theta2, G, eps2, *p.in, *defer, p.L, quadrupole);
    for (std::size_t c = 2 * p.t; c <= 2 * p.t + 1; ++c) {
      if (tt.box(c).empty()) continue;
      ++total.l2l;
      frontier.push_back({c, math::l2l(p.L, tt.box(c).center()), defer});
    }
  }

  exec::for_each_index(policy, frontier.size(), [&](std::size_t i) {
    DualWalkStats st;
    Pending& p = frontier[i];
    detail::dual_walk_subtree(tree, tt, p.t, *p.in, std::move(p.L), theta2, G, eps2,
                              quadrupole, leaf_fn, st);
    exec::fetch_add_relaxed(total.m2l, st.m2l);
    exec::fetch_add_relaxed(total.l2l, st.l2l);
  });
  return total;
}

}  // namespace nbody::core
