// Conservation-law diagnostics and cross-implementation comparison metrics.
//
// The paper validates its implementations by (a) conservation of mass and
// energy over the galaxy collision (Sec. V-A, "conserving mass and energy")
// and (b) the L2 error norm of final body positions across three
// implementations being below 1e-6. These are the functions behind both.
//
// Potential energy is the exact O(N^2) pairwise sum with compensated
// accumulation — it is a *diagnostic*, deliberately independent of any tree
// approximation being tested.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/system.hpp"
#include "exec/algorithms.hpp"
#include "math/gravity.hpp"
#include "support/kahan.hpp"

namespace nbody::core {

template <class T, std::size_t D>
struct EnergyReport {
  T kinetic{};
  T potential{};
  [[nodiscard]] T total() const { return kinetic + potential; }
};

/// Kinetic energy sum(m v^2 / 2) with compensated accumulation.
template <class Policy, class T, std::size_t D>
T kinetic_energy(Policy policy, const System<T, D>& sys) {
  auto partial = exec::transform_reduce_index(
      policy, sys.size(), support::KahanSum{},
      [](support::KahanSum acc, const support::KahanSum& term) {
        acc.merge(term);
        return acc;
      },
      [&](std::size_t i) {
        support::KahanSum s;
        s.add(0.5 * static_cast<double>(sys.m[i]) * static_cast<double>(norm2(sys.v[i])));
        return s;
      });
  return static_cast<T>(partial.value());
}

/// Exact pairwise potential energy with the same softening the force kernel
/// uses (so E_total is conserved by the softened dynamics, not the ideal
/// ones).
template <class Policy, class T, std::size_t D>
T potential_energy(Policy policy, const System<T, D>& sys, T G, T eps2) {
  const std::size_t n = sys.size();
  auto partial = exec::transform_reduce_index(
      policy, n, support::KahanSum{},
      [](support::KahanSum acc, const support::KahanSum& term) {
        acc.merge(term);
        return acc;
      },
      [&](std::size_t i) {
        support::KahanSum s;
        for (std::size_t j = i + 1; j < n; ++j) {
          s.add(static_cast<double>(
              math::gravity_potential(sys.x[i], sys.x[j], sys.m[i], sys.m[j], G, eps2)));
        }
        return s;
      });
  return static_cast<T>(partial.value());
}

template <class Policy, class T, std::size_t D>
EnergyReport<T, D> total_energy(Policy policy, const System<T, D>& sys, T G, T eps2) {
  return {kinetic_energy(policy, sys), potential_energy(policy, sys, G, eps2)};
}

/// Total mass (trivially conserved; asserted in integration tests because a
/// lost body in tree construction would show up here first).
template <class Policy, class T, std::size_t D>
T total_mass(Policy policy, const System<T, D>& sys) {
  return exec::transform_reduce_index(
      policy, sys.size(), T(0), [](T a, T b) { return a + b; },
      [&](std::size_t i) { return sys.m[i]; });
}

/// Total linear momentum sum(m v).
template <class Policy, class T, std::size_t D>
math::vec<T, D> total_momentum(Policy policy, const System<T, D>& sys) {
  using vec_t = math::vec<T, D>;
  return exec::transform_reduce_index(
      policy, sys.size(), vec_t::zero(), [](vec_t a, const vec_t& b) { return a + b; },
      [&](std::size_t i) { return sys.v[i] * sys.m[i]; });
}

/// Total angular momentum about the origin: sum(m x cross v) (3-D vector).
template <class Policy, class T>
math::vec<T, 3> angular_momentum(Policy policy, const System<T, 3>& sys) {
  using vec_t = math::vec<T, 3>;
  return exec::transform_reduce_index(
      policy, sys.size(), vec_t::zero(), [](vec_t a, const vec_t& b) { return a + b; },
      [&](std::size_t i) { return cross(sys.x[i], sys.v[i]) * sys.m[i]; });
}

/// 2-D scalar angular momentum about the origin: sum(m (x cross v)_z).
template <class Policy, class T>
T angular_momentum(Policy policy, const System<T, 2>& sys) {
  return exec::transform_reduce_index(
      policy, sys.size(), T(0), [](T a, T b) { return a + b; },
      [&](std::size_t i) { return sys.m[i] * cross_z(sys.x[i], sys.v[i]); });
}

/// Center of mass.
template <class Policy, class T, std::size_t D>
math::vec<T, D> center_of_mass(Policy policy, const System<T, D>& sys) {
  using vec_t = math::vec<T, D>;
  const T mass = total_mass(policy, sys);
  vec_t weighted = exec::transform_reduce_index(
      policy, sys.size(), vec_t::zero(), [](vec_t a, const vec_t& b) { return a + b; },
      [&](std::size_t i) { return sys.x[i] * sys.m[i]; });
  return mass > T(0) ? weighted / mass : vec_t::zero();
}

/// Reorders a copy of the position array by body identity, so systems whose
/// storage order diverged (Hilbert reordering) can be compared body-wise.
template <class T, std::size_t D>
std::vector<math::vec<T, D>> positions_by_id(const System<T, D>& sys) {
  std::vector<math::vec<T, D>> out(sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) out[sys.id[i]] = sys.x[i];
  return out;
}

/// L2 norm of the position differences between two systems, matched by body
/// identity — the validation metric of Sec. V-A.
template <class T, std::size_t D>
T l2_position_error(const System<T, D>& lhs, const System<T, D>& rhs) {
  NBODY_REQUIRE(lhs.size() == rhs.size(), "l2_position_error: size mismatch");
  const auto a = positions_by_id(lhs);
  const auto b = positions_by_id(rhs);
  support::KahanSum s;
  for (std::size_t i = 0; i < a.size(); ++i)
    s.add(static_cast<double>(norm2(a[i] - b[i])));
  return static_cast<T>(std::sqrt(s.value()));
}

/// Root-mean-square relative error of accelerations against a reference —
/// used by the θ-accuracy ablation.
template <class T, std::size_t D>
T rms_relative_error(const std::vector<math::vec<T, D>>& test,
                     const std::vector<math::vec<T, D>>& ref) {
  NBODY_REQUIRE(test.size() == ref.size(), "rms_relative_error: size mismatch");
  if (test.empty()) return T(0);
  support::KahanSum s;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double denom = static_cast<double>(norm2(ref[i]));
    if (denom == 0.0) continue;
    s.add(static_cast<double>(norm2(test[i] - ref[i])) / denom);
    ++counted;
  }
  return counted == 0 ? T(0) : static_cast<T>(std::sqrt(s.value() / static_cast<double>(counted)));
}

}  // namespace nbody::core
