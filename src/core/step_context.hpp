// StepContext — the bundle a force strategy receives for one step.
//
// This replaces the old 4-argument strategy signature
//   accelerations(Policy, System&, const SimConfig&, PhaseTimer*)
// which could not grow another out-parameter. A Strategy is now any type
// providing:
//
//   static constexpr const char* name;
//   template <class Policy> void accelerations(Policy, StepContext<T, D>&);
//
// The context carries the system, the configuration, and the observability
// sinks (all optional, null = disabled): the per-phase wall-clock
// accumulator, the metrics registry, and the trace session. New
// cross-cutting concerns land here as fields, never as signature changes.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>

#include "core/system.hpp"
#include "core/tree_maintenance.hpp"
#include "obs/obs.hpp"
#include "support/timer.hpp"

namespace nbody::core {

/// RAII scope opened by StepContext::phase(): accumulates wall time into the
/// PhaseTimer phase and records a trace span of the same name — each leg
/// independently optional and free when its sink is null.
class PhaseScope {
 public:
  PhaseScope(std::optional<support::PhaseTimer::Scope> timer,
             std::optional<obs::TraceSession::Scope> trace)
      : timer_(std::move(timer)), trace_(std::move(trace)) {}
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  PhaseScope(PhaseScope&&) noexcept = default;

 private:
  std::optional<support::PhaseTimer::Scope> timer_;
  std::optional<obs::TraceSession::Scope> trace_;
};

template <class T, std::size_t D>
struct StepContext {
  System<T, D>& sys;
  const SimConfig<T>& cfg;
  support::PhaseTimer* timer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSession* trace = nullptr;

  /// Opens the named phase: times it, traces it, and (via the trace scope's
  /// ambient region label) names the per-rank scheduler spans under it.
  /// `name` must be a literal or otherwise outlive the scope.
  [[nodiscard]] PhaseScope phase(const char* name) {
    return PhaseScope(support::PhaseTimer::maybe(timer, name),
                      obs::TraceSession::maybe(trace, name));
  }

  [[nodiscard]] bool metrics_enabled() const { return metrics != nullptr; }

  /// What the strategy's tree-lifecycle prepare() did this step (set via
  /// note_tree_action; meaningful for tree strategies only).
  std::optional<TreeAction> tree_action{};

  /// Called by a strategy's prepare() to report its lifecycle decision:
  /// records it on the context and bumps the per-action metrics counter
  /// (tree.prepare.built / rebuilt / refitted / updated).
  void note_tree_action(TreeAction a) {
    tree_action = a;
    if (metrics != nullptr)
      metrics->counter(std::string("tree.prepare.") + tree_action_name(a)).add();
  }
};

/// One-shot convenience for callers outside the Simulation loop (tests,
/// ablation harnesses): builds a transient context and runs the strategy.
template <class Strategy, class Policy, class T, std::size_t D>
  requires requires(Strategy& s, Policy p, StepContext<T, D>& c) { s.accelerations(p, c); }
void accelerate(Strategy& strategy, Policy policy, System<T, D>& sys, const SimConfig<T>& cfg,
                support::PhaseTimer* timer = nullptr,
                obs::MetricsRegistry* metrics = nullptr,
                obs::TraceSession* trace = nullptr) {
  StepContext<T, D> ctx{sys, cfg, timer, metrics, trace};
  strategy.accelerations(policy, ctx);
}

}  // namespace nbody::core
