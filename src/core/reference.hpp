// Serial reference implementations — the oracles the test suite and the
// cross-validation experiment measure against.
//
//  * reference_accelerations     — exact O(N^2) pairwise sum (Eq. 1).
//  * ReferenceBarnesHut          — a deliberately boring, pointer-based,
//    recursive Barnes-Hut. It shares no tree code with the concurrent
//    octree or the BVH, which makes it an *independent implementation* in
//    the sense of the paper's three-way L2 validation (Sec. V-A).
#pragma once

#include <memory>
#include <vector>

#include "core/bbox.hpp"
#include "core/step_context.hpp"
#include "core/system.hpp"
#include "exec/policy.hpp"
#include "math/aabb.hpp"
#include "math/gravity.hpp"
#include "math/multipole.hpp"
#include "support/timer.hpp"

namespace nbody::core {

/// Exact all-pairs accelerations, sequential, no tricks.
template <class T, std::size_t D>
void reference_accelerations(System<T, D>& sys, const SimConfig<T>& cfg) {
  const std::size_t n = sys.size();
  for (std::size_t i = 0; i < n; ++i) {
    auto acc = math::vec<T, D>::zero();
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      acc += math::gravity_accel(sys.x[i], sys.x[j], sys.m[j], cfg.G, cfg.eps2());
    }
    sys.a[i] = acc;
  }
}

/// Pointer-based recursive Barnes-Hut (sequential).
template <class T, std::size_t D>
class ReferenceBarnesHut {
 public:
  static constexpr const char* name = "reference-bh";
  static constexpr unsigned kMaxDepth = 64;

  /// Builds the tree and fills sys.a. Policy is accepted for interface
  /// uniformity but execution is always sequential.
  template <class Policy>
  void accelerations(Policy, StepContext<T, D>& ctx) {
    System<T, D>& sys = ctx.sys;
    const SimConfig<T>& cfg = ctx.cfg;
    {
      auto scope = ctx.phase("build");
      build(sys);
    }
    auto scope = ctx.phase("force");
    const T theta2 = cfg.theta2();
    for (std::size_t i = 0; i < sys.size(); ++i) {
      auto acc = math::vec<T, D>::zero();
      if (root_) force_on(*root_, sys, i, theta2, cfg.G, cfg.eps2(), cfg.quadrupole, acc);
      sys.a[i] = acc;
    }
  }

 private:
  struct Node {
    math::aabb<T, D> box;
    T mass = T(0);
    math::vec<T, D> com = math::vec<T, D>::zero();
    math::SymTensor<T, D> quad{};
    std::vector<std::uint32_t> bodies;  // non-empty only at (leaf) bottom
    std::unique_ptr<Node> children[std::size_t{1} << D];
    bool is_leaf = true;
  };

  std::unique_ptr<Node> root_;

  void build(const System<T, D>& sys) {
    root_ = std::make_unique<Node>();
    root_->box = compute_root_cube(exec::seq, sys.x);
    for (std::uint32_t b = 0; b < sys.size(); ++b) insert(*root_, sys, b, 0);
    finalize(*root_, sys);
  }

  void insert(Node& node, const System<T, D>& sys, std::uint32_t b, unsigned depth) {
    if (node.is_leaf) {
      if (node.bodies.empty() || depth >= kMaxDepth) {
        node.bodies.push_back(b);
        return;
      }
      // Subdivide: push the resident body down, then retry.
      node.is_leaf = false;
      for (std::uint32_t prev : node.bodies) insert_into_child(node, sys, prev, depth);
      node.bodies.clear();
    }
    insert_into_child(node, sys, b, depth);
  }

  void insert_into_child(Node& node, const System<T, D>& sys, std::uint32_t b,
                         unsigned depth) {
    const unsigned q = node.box.orthant(sys.x[b]);
    if (!node.children[q]) {
      node.children[q] = std::make_unique<Node>();
      node.children[q]->box = node.box.child_box(q);
    }
    insert(*node.children[q], sys, b, depth + 1);
  }

  void finalize(Node& node, const System<T, D>& sys) {
    node.mass = T(0);
    auto weighted = math::vec<T, D>::zero();
    if (node.is_leaf) {
      for (std::uint32_t b : node.bodies) {
        node.mass += sys.m[b];
        weighted += sys.x[b] * sys.m[b];
      }
    } else {
      for (auto& c : node.children) {
        if (!c) continue;
        finalize(*c, sys);
        node.mass += c->mass;
        weighted += c->com * c->mass;
      }
    }
    node.com = node.mass > T(0) ? weighted / node.mass : node.box.center();
    // Traceless quadrupole about the node's center of mass.
    node.quad = math::SymTensor<T, D>{};
    if (node.is_leaf) {
      for (std::uint32_t b : node.bodies)
        node.quad += math::point_quadrupole(sys.m[b], sys.x[b] - node.com);
    } else {
      for (const auto& c : node.children) {
        if (!c || c->mass <= T(0)) continue;
        node.quad += c->quad + math::point_quadrupole(c->mass, c->com - node.com);
      }
    }
  }

  void force_on(const Node& node, const System<T, D>& sys, std::size_t i, T theta2, T G,
                T eps2, bool quadrupole, math::vec<T, D>& acc) const {
    if (node.mass <= T(0)) return;
    if (node.is_leaf) {
      for (std::uint32_t b : node.bodies) {
        if (b == i) continue;
        acc += math::gravity_accel(sys.x[i], sys.x[b], sys.m[b], G, eps2);
      }
      return;
    }
    const math::vec<T, D> d = node.com - sys.x[i];
    const T d2 = norm2(d);
    const T s = node.box.longest_side();
    if (s * s < theta2 * d2) {
      acc += math::gravity_accel(sys.x[i], node.com, node.mass, G, eps2);
      if (quadrupole) acc += math::quadrupole_accel(sys.x[i], node.com, node.quad, G, eps2);
      return;
    }
    for (const auto& c : node.children)
      if (c) force_on(*c, sys, i, theta2, G, eps2, quadrupole, acc);
  }
};

}  // namespace nbody::core
