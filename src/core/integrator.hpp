// Störmer-Verlet time integration (paper Sec. III, [12]).
//
// Two equivalent formulations are provided:
//
//  * Leapfrog (kick-drift with half-step-offset velocities): exactly one
//    force evaluation per step — this is what the paper's Algorithm 2 loop
//    implies (CalculateForce then UpdatePosition). Call leapfrog_prime()
//    once after the first force evaluation to shift synchronized initial
//    velocities back by dt/2, then leapfrog_step() each iteration.
//
//  * Velocity Verlet (synchronized): two force evaluations per step; used
//    where synchronized velocities matter (energy-conservation tests).
//
// Both are symplectic and, for the same trajectory of positions, identical
// up to the velocity staggering.
#pragma once

#include <cmath>

#include "core/system.hpp"
#include "exec/algorithms.hpp"
#include "support/assert.hpp"

namespace nbody::core {

/// Shifts synchronized velocities to t - dt/2 using current accelerations:
/// v_{-1/2} = v_0 - a_0 dt/2. Call once before the leapfrog loop.
template <class Policy, class T, std::size_t D>
void leapfrog_prime(Policy policy, System<T, D>& sys, T dt) {
  exec::for_each_index(policy, sys.size(), [&, dt](std::size_t i) {
    sys.v[i] -= sys.a[i] * (dt / T(2));
  });
}

/// UpdatePosition — step 5 of Algorithm 2. Requires sys.a to hold the
/// accelerations at the current positions:
///   v_{n+1/2} = v_{n-1/2} + a_n dt;   x_{n+1} = x_n + v_{n+1/2} dt.
template <class Policy, class T, std::size_t D>
void leapfrog_step(Policy policy, System<T, D>& sys, T dt) {
  exec::for_each_index(policy, sys.size(), [&, dt](std::size_t i) {
    sys.v[i] += sys.a[i] * dt;
    sys.x[i] += sys.v[i] * dt;
  });
}

/// Re-synchronizes leapfrog velocities to whole-step time for diagnostics:
/// v_n = v_{n+1/2} - a dt/2 (uses the accelerations in sys.a).
template <class Policy, class T, std::size_t D>
void leapfrog_synchronize(Policy policy, System<T, D>& sys, T dt) {
  exec::for_each_index(policy, sys.size(), [&, dt](std::size_t i) {
    sys.v[i] -= sys.a[i] * (dt / T(2));
  });
}

/// One velocity-Verlet step. `force` recomputes sys.a from sys.x.
///   x_{n+1} = x_n + v_n dt + a_n dt^2/2
///   v_{n+1} = v_n + (a_n + a_{n+1}) dt/2
template <class Policy, class T, std::size_t D, class ForceFn>
void velocity_verlet_step(Policy policy, System<T, D>& sys, T dt, ForceFn&& force) {
  exec::for_each_index(policy, sys.size(), [&, dt](std::size_t i) {
    sys.x[i] += sys.v[i] * dt + sys.a[i] * (dt * dt / T(2));
    sys.v[i] += sys.a[i] * (dt / T(2));  // first half-kick with old a
  });
  force(sys);  // a_{n+1}
  exec::for_each_index(policy, sys.size(), [&, dt](std::size_t i) {
    sys.v[i] += sys.a[i] * (dt / T(2));  // second half-kick with new a
  });
}

/// Acceleration-based adaptive time-step suggestion:
///   dt = eta * sqrt(softening / max_i |a_i|),
/// the standard collisionless criterion (time to cross the softening length
/// under the strongest acceleration), clamped to [dt_min, dt_max]. Requires
/// sys.a to hold current accelerations.
template <class Policy, class T, std::size_t D>
T suggest_timestep(Policy policy, const System<T, D>& sys, T eta, T softening, T dt_min,
                   T dt_max) {
  NBODY_REQUIRE(eta > T(0) && softening > T(0) && dt_min > T(0) && dt_max >= dt_min,
                "suggest_timestep: bad parameters");
  const T a_max = exec::transform_reduce_index(
      policy, sys.size(), T(0), [](T a, T b) { return a > b ? a : b; },
      [&](std::size_t i) { return norm(sys.a[i]); });
  if (a_max <= T(0)) return dt_max;
  const T dt = eta * std::sqrt(softening / a_max);
  return dt < dt_min ? dt_min : dt > dt_max ? dt_max : dt;
}

}  // namespace nbody::core
