// Structural analysis of particle systems: the standard observables used to
// characterize cluster/galaxy simulations. These back the
// cluster_relaxation example and give the test suite physically meaningful
// invariants to check beyond raw conservation laws.
//
//   * radial_profile       — mass histogram in spherical shells about a
//                            center (density profile when divided by shell
//                            volume).
//   * lagrange_radii       — radii enclosing given mass fractions; their
//                            drift measures relaxation/collapse.
//   * velocity_dispersion  — rms velocity about the mean; with the virial
//                            theorem this diagnoses equilibrium.
//   * virial_ratio         — 2K/|U|; 1 at equilibrium.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/diagnostics.hpp"
#include "core/system.hpp"
#include "exec/algorithms.hpp"
#include "support/assert.hpp"

namespace nbody::core {

/// Mass per spherical shell: `bins` equal-width shells covering [0, r_max)
/// about `center`; bodies beyond r_max land in the last bin.
template <class T, std::size_t D>
std::vector<T> radial_profile(const System<T, D>& sys, const math::vec<T, D>& center,
                              T r_max, std::size_t bins) {
  NBODY_REQUIRE(bins >= 1, "radial_profile: need at least one bin");
  NBODY_REQUIRE(r_max > T(0), "radial_profile: r_max must be positive");
  std::vector<T> mass(bins, T(0));
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const T r = norm(sys.x[i] - center);
    auto bin = static_cast<std::size_t>(r / r_max * static_cast<T>(bins));
    if (bin >= bins) bin = bins - 1;
    mass[bin] += sys.m[i];
  }
  return mass;
}

/// Radii about `center` enclosing each requested mass fraction (fractions in
/// (0, 1], ascending output for ascending input). O(N log N).
template <class T, std::size_t D>
std::vector<T> lagrange_radii(const System<T, D>& sys, const math::vec<T, D>& center,
                              const std::vector<T>& fractions) {
  std::vector<std::pair<T, T>> radius_mass(sys.size());
  T total = T(0);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    radius_mass[i] = {norm(sys.x[i] - center), sys.m[i]};
    total += sys.m[i];
  }
  std::sort(radius_mass.begin(), radius_mass.end());
  std::vector<T> out;
  out.reserve(fractions.size());
  for (T f : fractions) {
    NBODY_REQUIRE(f > T(0) && f <= T(1), "lagrange_radii: fraction outside (0,1]");
    const T want = f * total;
    T acc = T(0);
    T radius = radius_mass.empty() ? T(0) : radius_mass.back().first;
    for (const auto& [r, m] : radius_mass) {
      acc += m;
      if (acc >= want) {
        radius = r;
        break;
      }
    }
    out.push_back(radius);
  }
  return out;
}

/// Half-mass radius — the 50% Lagrange radius.
template <class T, std::size_t D>
T half_mass_radius(const System<T, D>& sys, const math::vec<T, D>& center) {
  return lagrange_radii(sys, center, std::vector<T>{T(0.5)})[0];
}

/// Mass-weighted rms speed about the mass-weighted mean velocity.
template <class Policy, class T, std::size_t D>
T velocity_dispersion(Policy policy, const System<T, D>& sys) {
  if (sys.size() == 0) return T(0);
  const T mass = total_mass(policy, sys);
  if (mass <= T(0)) return T(0);
  const auto mean = total_momentum(policy, sys) / mass;
  const T weighted_sq = exec::transform_reduce_index(
      policy, sys.size(), T(0), [](T a, T b) { return a + b; },
      [&](std::size_t i) { return sys.m[i] * norm2(sys.v[i] - mean); });
  return std::sqrt(weighted_sq / mass);
}

/// Virial ratio 2K/|U| (1 at equilibrium). O(N^2) in the potential term.
template <class Policy, class T, std::size_t D>
T virial_ratio(Policy policy, const System<T, D>& sys, T G, T eps2) {
  const T k = kinetic_energy(policy, sys);
  const T u = potential_energy(policy, sys, G, eps2);
  if (u == T(0)) return T(0);
  return T(2) * k / std::abs(u);
}

}  // namespace nbody::core
