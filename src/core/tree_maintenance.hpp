// TreeMaintenance — the shared tree-lifecycle contract of both force
// strategies (DESIGN.md §4h).
//
// Tree codes that exploit temporal coherence (Bonsai, Cornerstone) do not
// reconstruct their spatial structure every step: they refit what moved and
// rebuild only when the structure has degraded. This header centralizes the
// *decision* side of that idea so the octree and BVH strategies stop
// duplicating `steps % reuse_interval` counters:
//
//   TreeUpdateMode    — the user-facing policy: rebuild | refit | incremental
//   TreeUpdatePolicy  — mode + rebuild cadence + quality thresholds, with
//                       parsing for the CLI's --tree-update=mode[:k] flag and
//                       a mapping from the deprecated reuse_interval integer
//   TreeAction        — what prepare() actually did this step:
//                       Built | Rebuilt | Refitted | Updated
//   TreeMaintenance   — the per-strategy decision engine: decide() walks the
//                       cadence/quality/invalidation state machine, and
//                       invalidate() forces a full rebuild on the next step
//                       (the checkpoint-restore hook)
//
// A strategy implements the lifecycle API as
//
//   TreeAction prepare(Policy, StepContext&);   // decide + build/refit/update
//   void invalidate();                          // delegate to TreeMaintenance
//
// and calls prepare() at the top of accelerations(). The tree-specific
// quality monitors (cell-crossing counts and depth skew for the octree,
// Hilbert-order inversions and sibling-box overlap for the BVH) stay in the
// strategies; TreeMaintenance only consumes their verdict.
#pragma once

#include <cstdint>
#include <string>

#include "support/assert.hpp"

namespace nbody::core {

/// What a strategy's prepare() did to its tree this step.
enum class TreeAction : std::uint8_t {
  Built,     // first construction (no prior tree)
  Rebuilt,   // full reconstruction (cadence, quality, or invalidation)
  Refitted,  // topology kept; boxes/moments recomputed from moved positions
  Updated,   // incremental maintenance (moved bodies relocated, then refit)
};

[[nodiscard]] constexpr const char* tree_action_name(TreeAction a) {
  switch (a) {
    case TreeAction::Built: return "built";
    case TreeAction::Rebuilt: return "rebuilt";
    case TreeAction::Refitted: return "refitted";
    case TreeAction::Updated: return "updated";
  }
  return "?";
}

/// How the spatial structure tracks the moving bodies.
enum class TreeUpdateMode : std::uint8_t {
  rebuild,      // full rebuild every step (the paper's Algorithm 2 default)
  refit,        // full rebuild every k-th step, refit in between (the
                // Iwasawa-style amortization the old reuse_interval expressed)
  incremental,  // move/refit in place; full rebuild on quality degradation
                // (and every k-th step when k > 0 as a safety cadence)
};

[[nodiscard]] constexpr const char* tree_update_mode_name(TreeUpdateMode m) {
  switch (m) {
    case TreeUpdateMode::rebuild: return "rebuild";
    case TreeUpdateMode::refit: return "refit";
    case TreeUpdateMode::incremental: return "incremental";
  }
  return "?";
}

/// The tree-update policy: mode, full-rebuild cadence, and the quality
/// thresholds of the incremental mode's degradation monitor.
struct TreeUpdatePolicy {
  TreeUpdateMode mode = TreeUpdateMode::rebuild;
  /// Full rebuild (octree) / Hilbert re-sort (BVH) cadence in steps.
  /// rebuild: must be 1. refit: >= 1 (1 degenerates to rebuild-every-step).
  /// incremental: 0 means quality-triggered only (no forced cadence).
  unsigned interval = 1;

  // -- incremental-mode quality thresholds (the quality monitor) -----------
  /// Octree: rebuild when more than this fraction of bodies crossed a cell
  /// boundary in one step (cheap refits stop paying off).
  double max_moved_fraction = 0.25;
  /// Octree: rebuild when cumulative cell crossings since the last rebuild
  /// exceed this fraction of N (structure entropy: vacated leaves and
  /// incremental subdivisions accumulate).
  double max_drift_fraction = 1.0;
  /// Octree: rebuild when incremental insertions deepened the tree by more
  /// than this many levels past the depth of the last full build
  /// (depth-skew monitor).
  unsigned max_depth_growth = 4;
  /// BVH: re-sort when the fraction of adjacent Hilbert-key inversions in
  /// the stale order exceeds this (order-coherence monitor).
  double max_inversion_fraction = 0.05;
  /// BVH: re-sort when the mean sibling-box overlap grows past this factor
  /// of its post-sort baseline (box-overlap-growth monitor).
  double max_overlap_growth = 2.0;

  /// Enforces the mode/interval constraints; `who` names the caller in the
  /// failure message. Both the strategy constructors and the runtime
  /// setters funnel through here, so invalid policies fail identically
  /// everywhere instead of the old constructor-throws-setter-clamps split.
  void validate(const char* who) const {
    NBODY_REQUIRE(!(mode == TreeUpdateMode::rebuild && interval != 1),
                  std::string(who) + ": tree-update mode 'rebuild' rebuilds every "
                                     "step; an interval makes no sense (use refit:k)");
    NBODY_REQUIRE(!(mode == TreeUpdateMode::refit && interval < 1),
                  std::string(who) + ": tree-update mode 'refit' needs interval >= 1");
  }

  /// The deprecated `reuse_interval` integer, mapped onto the new policy:
  /// k == 1 rebuilds every step; k > 1 is refit:k (the reuse steps always
  /// recomputed moments from the moved positions, i.e. they were refits).
  [[nodiscard]] static TreeUpdatePolicy from_reuse_interval(unsigned k, const char* who) {
    NBODY_REQUIRE(k >= 1, std::string(who) + ": reuse_interval must be >= 1");
    TreeUpdatePolicy p;
    p.mode = k == 1 ? TreeUpdateMode::rebuild : TreeUpdateMode::refit;
    p.interval = k;
    return p;
  }

  /// Parses the CLI syntax `rebuild | refit[:k] | incremental[:k]`.
  /// Throws std::invalid_argument (via NBODY_REQUIRE) on malformed input.
  [[nodiscard]] static TreeUpdatePolicy parse(const std::string& spec, const char* who) {
    TreeUpdatePolicy p;
    std::string mode = spec;
    long k = -1;
    if (const auto colon = spec.find(':'); colon != std::string::npos) {
      mode = spec.substr(0, colon);
      const std::string tail = spec.substr(colon + 1);
      NBODY_REQUIRE(!tail.empty() && tail.find_first_not_of("0123456789") == std::string::npos,
                    std::string(who) + ": malformed tree-update interval '" + tail + "'");
      k = std::stol(tail);
    }
    if (mode == "rebuild") {
      p.mode = TreeUpdateMode::rebuild;
      p.interval = k < 0 ? 1 : static_cast<unsigned>(k);
    } else if (mode == "refit") {
      p.mode = TreeUpdateMode::refit;
      p.interval = k < 0 ? 4 : static_cast<unsigned>(k);
    } else if (mode == "incremental") {
      p.mode = TreeUpdateMode::incremental;
      p.interval = k < 0 ? 0 : static_cast<unsigned>(k);
    } else {
      NBODY_REQUIRE(false, std::string(who) + ": unknown tree-update mode '" + mode +
                               "' (want rebuild|refit[:k]|incremental[:k])");
    }
    p.validate(who);
    return p;
  }

  [[nodiscard]] std::string to_string() const {
    std::string s = tree_update_mode_name(mode);
    if (!(mode == TreeUpdateMode::rebuild ||
          (mode == TreeUpdateMode::incremental && interval == 0)))
      s += ":" + std::to_string(interval);
    return s;
  }
};

/// The per-strategy lifecycle decision engine. Owns the policy and the
/// cadence counter that used to live (twice) in the strategies as
/// `steps_since_build % reuse_interval`.
class TreeMaintenance {
 public:
  TreeMaintenance() = default;
  TreeMaintenance(TreeUpdatePolicy policy, const char* who) : who_(who) {
    set_policy(policy);
  }

  void set_policy(TreeUpdatePolicy policy) {
    policy.validate(who_);
    policy_ = policy;
  }
  [[nodiscard]] const TreeUpdatePolicy& policy() const { return policy_; }

  /// True when the next decide() would keep the current tree (refit or
  /// incremental step) absent a quality degradation — the strategy runs its
  /// quality monitor only in that case.
  [[nodiscard]] bool would_keep() const {
    return built_ && !force_rebuild_ &&
           !(policy_.interval != 0 && steps_since_build_ % policy_.interval == 0);
  }

  /// Advances the lifecycle one step: full build when never built, when
  /// invalidated, when the cadence comes due, or when the strategy's quality
  /// monitor reports `degraded`; otherwise Refitted (refit mode — and
  /// rebuild mode never reaches here) or Updated (incremental mode).
  TreeAction decide(bool degraded = false) {
    const bool full = !built_ || force_rebuild_ || degraded ||
                      (policy_.interval != 0 && steps_since_build_ % policy_.interval == 0);
    TreeAction act;
    if (full) {
      act = built_ ? TreeAction::Rebuilt : TreeAction::Built;
      built_ = true;
      force_rebuild_ = false;
      steps_since_build_ = 0;
    } else {
      act = policy_.mode == TreeUpdateMode::incremental ? TreeAction::Updated
                                                        : TreeAction::Refitted;
    }
    ++steps_since_build_;
    return act;
  }

  /// Forces a full rebuild on the next decide() — the checkpoint-restore
  /// hook: restored positions invalidate every derived structure (topology,
  /// cached group partitions, incremental bookkeeping).
  void invalidate() { force_rebuild_ = true; }

  [[nodiscard]] unsigned steps_since_rebuild() const { return steps_since_build_; }

  // -- deprecated reuse_interval shims -------------------------------------
  // Kept for the accuracy-rung test surface and out-of-tree callers; both
  // validate through TreeUpdatePolicy (k < 1 now fails like the constructors
  // always did, instead of being silently clamped).
  void set_reuse_interval(unsigned k) {
    set_policy(TreeUpdatePolicy::from_reuse_interval(k, who_));
  }
  [[nodiscard]] unsigned reuse_interval() const { return policy_.interval; }

 private:
  const char* who_ = "TreeMaintenance";
  TreeUpdatePolicy policy_{};
  unsigned steps_since_build_ = 0;
  bool built_ = false;
  bool force_rebuild_ = false;
};

}  // namespace nbody::core
