// Time-integration driver — the paper's Algorithm 2 loop.
//
// Each step: Strategy::accelerations (which internally performs
// CalculateBoundingBox / BuildTree / CalculateMultipoles / CalculateForce,
// or the BVH pipeline of Algorithm 6) followed by UpdatePosition via the
// leapfrog formulation of Störmer-Verlet. The first step folds the
// half-step velocity priming in, so every step costs exactly one force
// evaluation.
//
// A Strategy is any type providing:
//   static constexpr const char* name;
//   template <class Policy> void accelerations(Policy, StepContext<T, D>&);
//
// The StepContext bundles the system, the configuration, and the optional
// observability sinks (PhaseTimer, MetricsRegistry, TraceSession) — see
// core/step_context.hpp. Attach sinks with set_observability().
#pragma once

#include <chrono>
#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/guard.hpp"
#include "core/integrator.hpp"
#include "core/snapshot.hpp"
#include "core/step_context.hpp"
#include "core/system.hpp"
#include "exec/stop_token.hpp"
#include "exec/thread_pool.hpp"
#include "exec/watchdog.hpp"
#include "obs/obs.hpp"
#include "support/fault.hpp"
#include "support/timer.hpp"

namespace nbody::core {

/// Tuning knobs for Simulation::run_guarded.
template <class T>
struct GuardedOptions {
  /// Take a checkpoint every this many completed steps (0 = only the
  /// initial one).
  std::size_t checkpoint_every = 16;
  /// When non-empty, every checkpoint is also written to this path as an
  /// atomic binary snapshot (for cross-process restart). Write failures are
  /// logged and survived — the in-memory checkpoint is the recovery
  /// authority.
  std::string checkpoint_path{};
  /// Total restore-and-retry budget for the whole run; exhausting it
  /// rethrows as std::runtime_error.
  unsigned max_retries = 4;
  /// Run the guard checks every this many steps (0 disables all checks).
  std::size_t guard_every = 1;
  /// Non-finite sweep over positions/velocities.
  bool check_finite = true;
  /// Structural tree validation (octree/BVH), when the strategy exposes a
  /// tree() with a recognized introspection surface.
  bool check_tree = true;
  /// Energy-drift watchdog tolerance relative to the step-0 energy;
  /// 0 disables (the check costs an O(N^2) potential evaluation).
  T energy_rel_tol = T(0);
  /// Wall-clock budget per step attempt, in milliseconds (0 = none). A step
  /// that blows it is cancelled cooperatively (exec::Cancelled, cause
  /// deadline), the checkpoint restored, and the recovery ladder walked.
  double step_deadline_ms = 0;
  /// Wall-clock budget for the whole run_guarded call (0 = none). Folded
  /// into each attempt's armed deadline; once it passes, run_guarded throws
  /// std::runtime_error like an exhausted retry budget.
  double run_deadline_ms = 0;
  /// Stall window of the thread-pool watchdog (0 = watchdog off): an active
  /// parallel region whose per-rank progress heartbeats freeze for this long
  /// is cancelled with cause watchdog and recovered like any other fault.
  double watchdog_ms = 0;
};

/// One recovery decision made by run_guarded, in order of occurrence.
struct RecoveryEvent {
  std::size_t step = 0;   // steps_done() when the failure was detected
  std::string reason;     // what failed (exception text or guard report)
  std::string action;     // what the loop did about it
};

/// Outcome summary of a run_guarded call.
struct GuardedRunReport {
  std::size_t steps_completed = 0;    // steps that survived their guards
  unsigned retries_used = 0;
  unsigned restores = 0;              // checkpoint restorations performed
  unsigned degrade_level = 0;         // final rung of the policy ladder
  unsigned checkpoints_written = 0;   // in-memory checkpoints taken
  unsigned checkpoint_failures = 0;   // on-disk writes that failed (survived)
  unsigned deadline_misses = 0;       // step attempts cancelled on a deadline
  unsigned watchdog_trips = 0;        // step attempts reclaimed by the watchdog
  unsigned accuracy_rungs = 0;        // accuracy degradations applied
  std::vector<RecoveryEvent> log;
};

template <class T, std::size_t D, class Strategy>
class Simulation {
 public:
  Simulation(System<T, D> sys, SimConfig<T> cfg, Strategy strategy = {})
      : sys_(std::move(sys)), cfg_(cfg), strategy_(std::move(strategy)) {}

  /// Advances `steps` time steps under `policy`.
  template <class Policy>
  void run(Policy policy, std::size_t steps) {
    for (std::size_t s = 0; s < steps; ++s) step_once(policy);
  }

  /// Attaches (or detaches, with nulls) the observability sinks threaded
  /// through every subsequent step's StepContext. The Simulation does not
  /// own them; keep them alive across the run.
  void set_observability(obs::MetricsRegistry* metrics, obs::TraceSession* trace) {
    metrics_ = metrics;
    trace_ = trace;
  }

  /// Integrates until simulated time `t_end` with per-step adaptive dt
  /// (velocity-Verlet, synchronized velocities — the leapfrog staggering is
  /// unsound under a varying step). Returns the number of steps taken.
  /// `eta` scales the acceleration-based criterion of suggest_timestep().
  template <class Policy>
  std::size_t run_adaptive(Policy policy, T t_end, T eta, T dt_min, T dt_max) {
    NBODY_REQUIRE(!primed_, "run_adaptive: velocities are leapfrog-staggered; "
                            "synchronize_velocities() first");
    std::size_t steps = 0;
    {
      StepContext<T, D> ctx = make_ctx(sys_);
      strategy_.accelerations(policy, ctx);
    }
    while (time_ < t_end) {
      T dt = suggest_timestep(policy, sys_, eta, cfg_.softening, dt_min, dt_max);
      if (time_ + dt > t_end) dt = t_end - time_;
      velocity_verlet_step(policy, sys_, dt, [&](System<T, D>& s) {
        StepContext<T, D> ctx = make_ctx(s);
        strategy_.accelerations(policy, ctx);
      });
      time_ += dt;
      ++steps;
      ++steps_done_;
    }
    return steps;
  }

  /// Advances `steps` time steps like run(), but under supervision:
  /// periodic checkpoints (in memory, optionally mirrored to disk as atomic
  /// snapshots), between-step health checks (finite sweep, structural tree
  /// validation, optional energy watchdog), and on any thrown fault or
  /// failed guard a restore of the last checkpoint followed by a retry one
  /// rung down the degradation ladder:
  ///
  ///     par_unseq -> par -> seq        (entry policy bounds the top rung)
  ///
  /// An octree node-pool overflow additionally grows the pool before the
  /// retry. The retry budget is bounded by GuardedOptions::max_retries;
  /// exhausting it throws std::runtime_error carrying the last failure.
  template <class Policy>
  GuardedRunReport run_guarded(Policy policy, std::size_t steps,
                               const GuardedOptions<T>& opts = {}) {
    GuardedRunReport rep;
    const std::size_t target = steps_done_ + steps;
    // Initial checkpoint: the pre-run state is always restorable.
    make_checkpoint(policy, opts, rep);
    EnergyReport<T, D> e0{};
    if (opts.energy_rel_tol > T(0))
      e0 = staggered_energy(policy, sys_, cfg_.G, cfg_.eps2(), primed_ ? cfg_.dt : T(0));
    unsigned level = 0;
    unsigned acc_rung = 0;
    std::size_t steps_since_ckpt = 0;
    // Time budgets. The run deadline is one absolute instant; each attempt
    // arms the earlier of (its step budget, the run deadline) on a *fresh*
    // stop source so a consumed stop never leaks into the retry.
    const std::uint64_t run_deadline_ns =
        opts.run_deadline_ms > 0
            ? exec::detail::stop_state::now_ns() +
                  static_cast<std::uint64_t>(opts.run_deadline_ms * 1e6)
            : 0;
    std::optional<exec::Watchdog> watchdog;
    if (opts.watchdog_ms > 0)
      watchdog.emplace(exec::thread_pool::global(),
                       std::chrono::milliseconds(
                           static_cast<long>(opts.watchdog_ms < 1 ? 1 : opts.watchdog_ms)));
    const bool cancellable =
        opts.step_deadline_ms > 0 || run_deadline_ns != 0 || watchdog.has_value();
    while (steps_done_ < target) {
      if (run_deadline_ns != 0 &&
          exec::detail::stop_state::now_ns() >= run_deadline_ns) {
        if (metrics_ != nullptr) metrics_->counter("sim.deadline.run_misses").add();
        if (trace_ != nullptr)
          trace_->instant("deadline.miss", "run deadline exhausted at step " +
                                               std::to_string(steps_done_));
        throw std::runtime_error("run_guarded: run deadline (" +
                                 std::to_string(opts.run_deadline_ms) +
                                 "ms) exhausted at step " + std::to_string(steps_done_) +
                                 " of " + std::to_string(target));
      }
      bool ok = true;
      std::string reason;
      bool overflowed = false;
      bool guard_failed = false;
      exec::stop_cause cancel_cause = exec::stop_cause::none;
      // Snapshot the phase totals so a failed-and-discarded attempt can be
      // re-labelled instead of double-counting under the real phase names.
      const std::vector<double> phase_snap = phases_.snapshot();
      try {
        if (cancellable) {
          exec::stop_source stop;
          std::uint64_t dl = 0;
          std::string why;
          if (opts.step_deadline_ms > 0) {
            dl = exec::detail::stop_state::now_ns() +
                 static_cast<std::uint64_t>(opts.step_deadline_ms * 1e6);
            why = "step deadline (" + std::to_string(opts.step_deadline_ms) + "ms)";
          }
          if (run_deadline_ns != 0 && (dl == 0 || run_deadline_ns < dl)) {
            dl = run_deadline_ns;
            why = "run deadline (" + std::to_string(opts.run_deadline_ms) + "ms)";
          }
          if (dl != 0) stop.arm_deadline_at(dl, why);
          if (watchdog) watchdog->arm(stop.state());
          {
            // Ambient install scoped to the step only: the guard checks below
            // run exec algorithms too and must not see this attempt's stop.
            exec::scoped_ambient_stop scope(stop);
            step_at_level(policy, level);
          }
          if (watchdog) watchdog->disarm();
        } else {
          step_at_level(policy, level);
        }
      } catch (const exec::Cancelled& e) {
        if (watchdog) watchdog->disarm();
        ok = false;
        reason = e.what();
        cancel_cause = e.cause();
      } catch (const support::FaultInjected& e) {
        if (watchdog) watchdog->disarm();
        ok = false;
        reason = e.what();
        overflowed = e.site() == support::FaultSite::octree_node_alloc;
      } catch (const std::exception& e) {
        if (watchdog) watchdog->disarm();
        ok = false;
        reason = e.what();
        overflowed = std::string(e.what()).find("overflow") != std::string::npos;
      }
      if (ok && opts.guard_every > 0 && (steps_done_ % opts.guard_every == 0 ||
                                         steps_done_ == target)) {
        const GuardReport g = run_guards(policy, opts, e0);
        if (!g.ok) {
          ok = false;
          guard_failed = true;
          reason = g.to_string();
        }
      }
      if (!ok) {
        if (metrics_ != nullptr) {
          metrics_->counter("sim.guard.failures").add();
          if (guard_failed) metrics_->counter("sim.guard.check_failures").add();
          else metrics_->counter("sim.guard.faults").add();
        }
        if (cancel_cause == exec::stop_cause::deadline) {
          ++rep.deadline_misses;
          if (metrics_ != nullptr) metrics_->counter("sim.deadline.misses").add();
          if (trace_ != nullptr) trace_->instant("deadline.miss", reason);
        } else if (cancel_cause == exec::stop_cause::watchdog) {
          ++rep.watchdog_trips;
          if (metrics_ != nullptr)
            metrics_->counter("sim.deadline.watchdog_trips").add();
        }
        phases_.reattribute_since(phase_snap, "(discarded)");
        if (rep.retries_used >= opts.max_retries) {
          if (trace_ != nullptr)
            trace_->instant("guard.retry_budget_exhausted", reason);
          throw std::runtime_error("run_guarded: retry budget (" +
                                   std::to_string(opts.max_retries) +
                                   ") exhausted at step " + std::to_string(steps_done_) +
                                   "; last failure: " + reason);
        }
        ++rep.retries_used;
        std::string action = "restored checkpoint @ step " + std::to_string(ckpt_steps_);
        restore_checkpoint();
        ++rep.restores;
        if (overflowed) {
          if constexpr (requires { strategy_.grow_capacity(); }) {
            strategy_.grow_capacity();
            action += ", grew tree capacity";
          }
        }
        if (level < max_level(policy)) {
          ++level;
          action += ", degraded to " + std::string(level_name(policy, level));
        } else if (cancel_cause != exec::stop_cause::none) {
          // Policy ladder exhausted and the failure was a time budget:
          // shed accuracy instead of dying (deadline -> degradation rungs).
          const std::string rung = apply_accuracy_rung(acc_rung);
          if (!rung.empty()) {
            ++rep.accuracy_rungs;
            if (metrics_ != nullptr)
              metrics_->counter("sim.deadline.accuracy_rungs").add();
            action += ", " + rung;
          }
        }
        if (metrics_ != nullptr) metrics_->counter("sim.guard.recoveries").add();
        if (trace_ != nullptr) trace_->instant("guard.recovery", reason + " -> " + action);
        rep.log.push_back({steps_done_, reason, std::move(action)});
        steps_since_ckpt = 0;
        continue;
      }
      ++rep.steps_completed;
      ++steps_since_ckpt;
      if (opts.checkpoint_every > 0 && steps_since_ckpt >= opts.checkpoint_every &&
          steps_done_ < target) {
        make_checkpoint(policy, opts, rep);
        steps_since_ckpt = 0;
      }
    }
    rep.degrade_level = level;
    if (metrics_ != nullptr)
      metrics_->set_gauge("sim.guard.degrade_level", static_cast<double>(level));
    return rep;
  }

  [[nodiscard]] T simulated_time() const { return time_; }

  /// Re-synchronizes velocities to whole-step time (for diagnostics);
  /// requires sys_.a to still hold the last step's accelerations.
  template <class Policy>
  void synchronize_velocities(Policy policy) {
    if (!primed_) return;
    leapfrog_synchronize(policy, sys_, cfg_.dt);
    primed_ = false;  // velocities are whole-step again; re-prime on next run
  }

  [[nodiscard]] System<T, D>& system() { return sys_; }
  [[nodiscard]] const System<T, D>& system() const { return sys_; }
  [[nodiscard]] const SimConfig<T>& config() const { return cfg_; }
  [[nodiscard]] Strategy& strategy() { return strategy_; }
  [[nodiscard]] support::PhaseTimer& phases() { return phases_; }
  [[nodiscard]] std::size_t steps_done() const { return steps_done_; }

 private:
  [[nodiscard]] StepContext<T, D> make_ctx(System<T, D>& sys) {
    return StepContext<T, D>{sys, cfg_, &phases_, metrics_, trace_};
  }

  /// One run() iteration under `policy` (shared by run and the ladder).
  template <class Policy>
  void step_once(Policy policy) {
    auto step_span = obs::TraceSession::maybe(trace_, "step");
    StepContext<T, D> ctx = make_ctx(sys_);
    strategy_.accelerations(policy, ctx);
    if (!primed_) {
      leapfrog_prime(policy, sys_, cfg_.dt);
      primed_ = true;
    }
    {
      auto scope = ctx.phase("update");
      leapfrog_step(policy, sys_, cfg_.dt);
    }
    time_ += cfg_.dt;
    ++steps_done_;
    if (metrics_ != nullptr) metrics_->counter("sim.steps").add();
  }

  // The degradation ladder. The entry policy fixes the top rung, so only
  // policies at or below it are ever instantiated — a strategy that rejects
  // par_unseq (the octree) compiles as long as run_guarded is entered with
  // seq or par, exactly mirroring run().
  template <class Policy>
  static constexpr unsigned max_level(Policy) {
    if constexpr (std::is_same_v<Policy, exec::parallel_unsequenced_policy>) return 2;
    else if constexpr (std::is_same_v<Policy, exec::parallel_policy>) return 1;
    else return 0;
  }

  template <class Policy>
  static const char* level_name(Policy, unsigned level) {
    if constexpr (std::is_same_v<Policy, exec::parallel_unsequenced_policy>)
      return level == 0 ? "par_unseq" : level == 1 ? "par" : "seq";
    else if constexpr (std::is_same_v<Policy, exec::parallel_policy>)
      return level == 0 ? "par" : "seq";
    else
      return "seq";
  }

  template <class Policy>
  void step_at_level(Policy, unsigned level) {
    if constexpr (std::is_same_v<Policy, exec::parallel_unsequenced_policy>) {
      if (level == 0) step_once(exec::par_unseq);
      else if (level == 1) step_once(exec::par);
      else step_once(exec::seq);
    } else if constexpr (std::is_same_v<Policy, exec::parallel_policy>) {
      if (level == 0) step_once(exec::par);
      else step_once(exec::seq);
    } else {
      step_once(exec::seq);
    }
  }

  /// Deadline-shedding accuracy ladder, entered only once the policy ladder
  /// is exhausted: each rung trades force accuracy for wall-clock, so an
  /// overloaded box sheds work instead of dying. Advances `rung` past every
  /// rung it consumes (including inapplicable ones) and returns a
  /// description of the applied change — empty when the ladder is spent,
  /// in which case the retry proceeds unchanged and the retry budget bounds
  /// the loop.
  std::string apply_accuracy_rung(unsigned& rung) {
    while (rung < 3) {
      const unsigned r = rung++;
      switch (r) {
        case 0:
          cfg_.theta = cfg_.theta * T(1.5);
          return "loosened theta to " + std::to_string(static_cast<double>(cfg_.theta));
        case 1:
          // Walk the tree-update policy toward cheaper maintenance: rebuild
          // and refit amortize full rebuilds over 4x more steps; a
          // cadence-capped incremental policy relaxes its cap the same way.
          // Quality-triggered incremental (interval 0) already rebuilds as
          // rarely as its monitor allows — nothing to shed, fall through.
          if constexpr (requires {
                          strategy_.update_policy();
                          strategy_.set_update_policy(TreeUpdatePolicy{});
                        }) {
            TreeUpdatePolicy p = strategy_.update_policy();
            if (p.mode == TreeUpdateMode::incremental && p.interval == 0) break;
            if (p.mode == TreeUpdateMode::rebuild) p.mode = TreeUpdateMode::refit;
            p.interval *= 4;
            strategy_.set_update_policy(p);
            return "relaxed tree maintenance to " + p.to_string();
          }
          break;
        case 2:
          // Group-traversal evaluation is the measured-faster force mode at
          // scale (DESIGN.md §4e); switch to it if the run isn't using it.
          if (cfg_.group_size == 0) {
            cfg_.group_size = 256;
            return "switched to group traversal (group_size=256)";
          }
          break;
      }
    }
    return "";
  }

  /// Runs the enabled guard checks; returns the first failing report (or an
  /// all-ok one). Tree validation is wired automatically when the strategy
  /// exposes a tree() whose introspection surface we recognize.
  template <class Policy>
  GuardReport run_guards(Policy policy, const GuardedOptions<T>& opts,
                         const EnergyReport<T, D>& e0) {
    if (opts.check_finite) {
      GuardReport r = check_finite(policy, sys_);
      if (!r.ok) return r;
    }
    if (opts.check_tree) {
      if constexpr (requires { strategy_.tree().parent_of_group(0u); }) {
        GuardReport r = validate_octree(strategy_.tree(), sys_.size());
        if (!r.ok) return r;
      } else if constexpr (requires { strategy_.tree().node_total(); }) {
        // Positions have drifted since the build: tree-internal checks only.
        GuardReport r = validate_bvh(strategy_.tree(), sys_.x, /*check_bodies=*/false);
        if (!r.ok) return r;
      }
    }
    if (opts.energy_rel_tol > T(0)) {
      GuardReport r = check_energy_drift(policy, sys_, e0, cfg_.G, cfg_.eps2(),
                                         opts.energy_rel_tol, primed_ ? cfg_.dt : T(0));
      if (!r.ok) return r;
    }
    return {"guards", true, ""};
  }

  /// Checkpoint = an exact copy of the integrator state: the system
  /// (including the staggered leapfrog velocities and last accelerations),
  /// the primed flag, and the clock. Restoring therefore resumes the
  /// *identical* trajectory — synchronizing the live velocities here would
  /// inject an O(dt^2) kick at every checkpoint, because sys_.a lags the
  /// positions by one drift. Only the on-disk mirror is synchronized (on a
  /// copy): snapshots store whole-step velocities by contract. The mirror
  /// is best-effort — a failed write (e.g. an injected snapshot.write
  /// fault) is logged and survived.
  template <class Policy>
  void make_checkpoint(Policy policy, const GuardedOptions<T>& opts,
                       GuardedRunReport& rep) {
    ckpt_sys_ = sys_;
    ckpt_time_ = time_;
    ckpt_steps_ = steps_done_;
    ckpt_primed_ = primed_;
    ++rep.checkpoints_written;
    if (metrics_ != nullptr) metrics_->counter("sim.guard.checkpoints").add();
    if (trace_ != nullptr)
      trace_->instant("guard.checkpoint", "step " + std::to_string(steps_done_));
    if (!opts.checkpoint_path.empty()) {
      try {
        // The mirror carries run metadata (v3) so a cross-process restart
        // can resume the clock, not just the body state.
        const SnapshotMeta meta{static_cast<double>(time_), steps_done_};
        if (primed_) {
          System<T, D> synced = sys_;
          leapfrog_synchronize(policy, synced, cfg_.dt);
          save_snapshot_binary(synced, opts.checkpoint_path, meta);
        } else {
          save_snapshot_binary(sys_, opts.checkpoint_path, meta);
        }
      } catch (const std::exception& e) {
        ++rep.checkpoint_failures;
        rep.log.push_back({steps_done_, e.what(), "checkpoint write failed; continuing"});
      }
    }
  }

  void restore_checkpoint() {
    sys_ = ckpt_sys_;
    time_ = ckpt_time_;
    steps_done_ = ckpt_steps_;
    primed_ = ckpt_primed_;
    if constexpr (requires(Strategy& s) { s.invalidate(); }) strategy_.invalidate();
  }

  System<T, D> sys_;
  SimConfig<T> cfg_;
  Strategy strategy_;
  support::PhaseTimer phases_;
  obs::MetricsRegistry* metrics_ = nullptr;  // not owned; may be null
  obs::TraceSession* trace_ = nullptr;       // not owned; may be null
  std::size_t steps_done_ = 0;
  T time_ = T(0);
  bool primed_ = false;
  // Last checkpoint (recovery authority; the optional disk mirror is for
  // cross-process restart).
  System<T, D> ckpt_sys_{};
  T ckpt_time_ = T(0);
  std::size_t ckpt_steps_ = 0;
  bool ckpt_primed_ = false;
};

}  // namespace nbody::core
