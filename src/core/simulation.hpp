// Time-integration driver — the paper's Algorithm 2 loop.
//
// Each step: Strategy::accelerations (which internally performs
// CalculateBoundingBox / BuildTree / CalculateMultipoles / CalculateForce,
// or the BVH pipeline of Algorithm 6) followed by UpdatePosition via the
// leapfrog formulation of Störmer-Verlet. The first step folds the
// half-step velocity priming in, so every step costs exactly one force
// evaluation.
//
// A Strategy is any type providing:
//   static constexpr const char* name;
//   template <class Policy> void accelerations(Policy, System<T,D>&,
//       const SimConfig<T>&, support::PhaseTimer*);
#pragma once

#include <utility>

#include "core/integrator.hpp"
#include "core/system.hpp"
#include "support/timer.hpp"

namespace nbody::core {

template <class T, std::size_t D, class Strategy>
class Simulation {
 public:
  Simulation(System<T, D> sys, SimConfig<T> cfg, Strategy strategy = {})
      : sys_(std::move(sys)), cfg_(cfg), strategy_(std::move(strategy)) {}

  /// Advances `steps` time steps under `policy`.
  template <class Policy>
  void run(Policy policy, std::size_t steps) {
    for (std::size_t s = 0; s < steps; ++s) {
      strategy_.accelerations(policy, sys_, cfg_, &phases_);
      if (!primed_) {
        leapfrog_prime(policy, sys_, cfg_.dt);
        primed_ = true;
      }
      {
        auto scope = phases_.scope("update");
        leapfrog_step(policy, sys_, cfg_.dt);
      }
      time_ += cfg_.dt;
      ++steps_done_;
    }
  }

  /// Integrates until simulated time `t_end` with per-step adaptive dt
  /// (velocity-Verlet, synchronized velocities — the leapfrog staggering is
  /// unsound under a varying step). Returns the number of steps taken.
  /// `eta` scales the acceleration-based criterion of suggest_timestep().
  template <class Policy>
  std::size_t run_adaptive(Policy policy, T t_end, T eta, T dt_min, T dt_max) {
    NBODY_REQUIRE(!primed_, "run_adaptive: velocities are leapfrog-staggered; "
                            "synchronize_velocities() first");
    std::size_t steps = 0;
    strategy_.accelerations(policy, sys_, cfg_, &phases_);
    while (time_ < t_end) {
      T dt = suggest_timestep(policy, sys_, eta, cfg_.softening, dt_min, dt_max);
      if (time_ + dt > t_end) dt = t_end - time_;
      velocity_verlet_step(policy, sys_, dt, [&](System<T, D>& s) {
        strategy_.accelerations(policy, s, cfg_, &phases_);
      });
      time_ += dt;
      ++steps;
      ++steps_done_;
    }
    return steps;
  }

  [[nodiscard]] T simulated_time() const { return time_; }

  /// Re-synchronizes velocities to whole-step time (for diagnostics);
  /// requires sys_.a to still hold the last step's accelerations.
  template <class Policy>
  void synchronize_velocities(Policy policy) {
    if (!primed_) return;
    leapfrog_synchronize(policy, sys_, cfg_.dt);
    primed_ = false;  // velocities are whole-step again; re-prime on next run
  }

  [[nodiscard]] System<T, D>& system() { return sys_; }
  [[nodiscard]] const System<T, D>& system() const { return sys_; }
  [[nodiscard]] const SimConfig<T>& config() const { return cfg_; }
  [[nodiscard]] Strategy& strategy() { return strategy_; }
  [[nodiscard]] support::PhaseTimer& phases() { return phases_; }
  [[nodiscard]] std::size_t steps_done() const { return steps_done_; }

 private:
  System<T, D> sys_;
  SimConfig<T> cfg_;
  Strategy strategy_;
  support::PhaseTimer phases_;
  std::size_t steps_done_ = 0;
  T time_ = T(0);
  bool primed_ = false;
};

}  // namespace nbody::core
