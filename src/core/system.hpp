// Particle system state and simulation parameters.
//
// State is structure-of-arrays (masses, positions, velocities,
// accelerations) so the inner force loops vectorize and the Hilbert sort can
// permute each attribute as a flat array (paper Sec. V-A, implementation
// issue #2: sort a key/index buffer, apply as a permutation).
//
// Every body carries a stable `id`: the Hilbert-BVH strategy physically
// reorders bodies each step, and cross-implementation validation (the L2
// comparison of Sec. V-A) must match bodies by identity, not position index.
#pragma once

#include <cstdint>
#include <numeric>
#include <string_view>
#include <vector>

#include "math/vec.hpp"
#include "support/assert.hpp"

namespace nbody::core {

template <class T, std::size_t D>
struct System {
  using vec_t = math::vec<T, D>;

  std::vector<T> m;           // mass
  std::vector<vec_t> x;       // position
  std::vector<vec_t> v;       // velocity
  std::vector<vec_t> a;       // acceleration (output of the force step)
  std::vector<std::uint32_t> id;  // stable identity across reorderings

  System() = default;

  explicit System(std::size_t n) { resize(n); }

  [[nodiscard]] std::size_t size() const { return m.size(); }

  void resize(std::size_t n) {
    NBODY_REQUIRE(n < (std::size_t{1} << 31), "System: too many bodies");
    m.resize(n, T(0));
    x.resize(n, vec_t::zero());
    v.resize(n, vec_t::zero());
    a.resize(n, vec_t::zero());
    const std::size_t old = id.size();
    id.resize(n);
    std::iota(id.begin() + static_cast<std::ptrdiff_t>(old), id.end(),
              static_cast<std::uint32_t>(old));
  }

  /// Appends one body; returns its index.
  std::size_t add(T mass, const vec_t& pos, const vec_t& vel) {
    m.push_back(mass);
    x.push_back(pos);
    v.push_back(vel);
    a.push_back(vec_t::zero());
    id.push_back(static_cast<std::uint32_t>(id.size()));
    return m.size() - 1;
  }

  /// Appends all bodies of `other` (ids are re-based to stay unique).
  void append(const System& other) {
    const auto base = static_cast<std::uint32_t>(size());
    m.insert(m.end(), other.m.begin(), other.m.end());
    x.insert(x.end(), other.x.begin(), other.x.end());
    v.insert(v.end(), other.v.begin(), other.v.end());
    a.insert(a.end(), other.a.begin(), other.a.end());
    for (std::uint32_t oid : other.id) id.push_back(base + oid);
  }

  /// Index of the body with identity `want`, or size() when absent. O(N).
  [[nodiscard]] std::size_t index_of_id(std::uint32_t want) const {
    for (std::size_t i = 0; i < id.size(); ++i)
      if (id[i] == want) return i;
    return size();
  }
};

/// How the tree strategies traverse for the force phase.
///
///   dfs   — one MAC walk per body (the paper's Algorithm 2 / Fig. 3).
///   group — one walk per group of spatially coherent bodies; accepted
///           cells/bodies replay through the SoA M2P/P2P batch kernels.
///   dual  — simultaneous walk over (target cell, source cell) pairs:
///           mutually well-separated pairs become M2L translations into a
///           local expansion carried down the target tree (L2L) and
///           evaluated per body (L2P); the remainder falls back to the
///           group-walk M2P/P2P batches.
enum class TraversalMode : std::uint8_t { dfs, group, dual };

inline const char* traversal_mode_name(TraversalMode m) {
  switch (m) {
    case TraversalMode::group: return "group";
    case TraversalMode::dual: return "dual";
    default: return "dfs";
  }
}

inline bool parse_traversal_mode(std::string_view s, TraversalMode& out) {
  if (s == "dfs") out = TraversalMode::dfs;
  else if (s == "group") out = TraversalMode::group;
  else if (s == "dual") out = TraversalMode::dual;
  else return false;
  return true;
}

/// Simulation parameters shared by all force strategies.
///
/// Defaults match the paper's evaluation setup: θ = 0.5, FP64, with a small
/// Plummer softening so the deterministic galaxy collision survives close
/// encounters (the paper's workload is collisionless in the same sense).
template <class T>
struct SimConfig {
  T G = T(1);            // gravitational constant (reduced units)
  T dt = T(1e-3);        // time step
  T theta = T(0.5);      // Barnes-Hut opening angle
  T softening = T(1e-2); // Plummer softening length eps
  bool quadrupole = false;  // add traceless-quadrupole terms to accepted nodes
  /// Bodies per traversal group for the tree strategies' force phase:
  /// 0 (default) walks the tree once per body (the paper's Algorithm 2 /
  /// Fig. 3); > 0 walks once per group of this many spatially coherent
  /// bodies and replays the shared interaction lists through the SoA batch
  /// kernels (math/batch_kernels.hpp). Values are clamped to [1, N].
  std::size_t group_size = 0;
  /// Force-phase traversal for the tree strategies. `dfs` with
  /// group_size > 0 still selects the grouped walk (pre-mode behavior);
  /// `group`/`dual` with group_size == 0 use effective_group_size().
  TraversalMode traversal = TraversalMode::dfs;

  [[nodiscard]] T eps2() const { return softening * softening; }
  [[nodiscard]] T theta2() const { return theta * theta; }
  [[nodiscard]] std::size_t effective_group_size() const {
    return group_size > 0 ? group_size : 64;
  }
};

}  // namespace nbody::core
