// The two O(N^2) brute-force baselines of the paper's evaluation (Sec. V-A):
//
//  * AllPairs     — "the classical All-Pairs implementation, parallelized
//    over the bodies using par_unseq": each body accumulates its own
//    acceleration privately; no synchronization, vectorization-safe.
//
//  * AllPairsCol  — "All-Pairs-Col, which uses par to parallelize over the
//    force-pairs with concurrent accumulation via atomic::fetch_add": each
//    unordered pair {i, j} is evaluated once, and the equal-and-opposite
//    contributions are added to both bodies with relaxed atomic adds. Half
//    the arithmetic of AllPairs, at the price of all-to-all atomic traffic —
//    the coherency-bound behaviour Figure 5/6 demonstrate.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>
#include <utility>

#include "core/step_context.hpp"
#include "core/system.hpp"
#include "exec/algorithms.hpp"
#include "exec/atomic.hpp"
#include "math/gravity.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace nbody::allpairs {

template <class T, std::size_t D>
class AllPairs {
 public:
  static constexpr const char* name = "all-pairs";

  template <class Policy>
  void accelerations(Policy policy, core::StepContext<T, D>& ctx) {
    auto scope = ctx.phase("force");
    core::System<T, D>& sys = ctx.sys;
    const std::size_t n = sys.size();
    const T G = ctx.cfg.G;
    const T eps2 = ctx.cfg.eps2();
    exec::for_each_index(policy, n, [&, G, eps2](std::size_t i) {
      const auto xi = sys.x[i];
      auto acc = math::vec<T, D>::zero();
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        acc += math::gravity_accel(xi, sys.x[j], sys.m[j], G, eps2);
      }
      sys.a[i] = acc;
    });
    if (ctx.metrics_enabled() && n >= 1)
      ctx.metrics->counter("allpairs.interactions").add(static_cast<std::uint64_t>(n) * (n - 1));
  }
};

namespace detail {

/// Decodes flat pair index p in [0, n(n-1)/2) to (i, j) with i < j.
/// Row i starts at offset i*n - i*(i+1)/2 in the flattened strict upper
/// triangle; invert with the quadratic formula, then clamp against
/// floating-point rounding.
inline std::pair<std::size_t, std::size_t> pair_from_index(std::size_t p, std::size_t n) {
  const double nd = static_cast<double>(n);
  const double pd = static_cast<double>(p);
  double id = std::floor(nd - 0.5 - std::sqrt((nd - 0.5) * (nd - 0.5) - 2.0 * pd));
  auto i = static_cast<std::size_t>(id < 0 ? 0 : id);
  // Row r holds pairs (r, r+1..n-1): row_start(r) = r*(n-1) - r*(r-1)/2.
  auto row_start = [n](std::size_t r) { return r * (n - 1) - r * (r - 1) / 2; };
  while (i > 0 && row_start(i) > p) --i;
  while (row_start(i + 1) <= p) ++i;
  const std::size_t j = i + 1 + (p - row_start(i));
  return {i, j};
}

}  // namespace detail

template <class T, std::size_t D>
class AllPairsCol {
 public:
  static constexpr const char* name = "all-pairs-col";

  /// Requires a policy with parallel forward progress (par or seq): relaxed
  /// atomic accumulation is vectorization-unsafe under par_unseq.
  template <exec::StarvationFreeCapable Policy>
  void accelerations(Policy policy, core::StepContext<T, D>& ctx) {
    auto scope = ctx.phase("force");
    core::System<T, D>& sys = ctx.sys;
    const std::size_t n = sys.size();
    const T G = ctx.cfg.G;
    const T eps2 = ctx.cfg.eps2();
    if (ctx.metrics_enabled() && n >= 2)
      ctx.metrics->counter("allpairs.interactions").add(static_cast<std::uint64_t>(n) * (n - 1) / 2);
    exec::for_each_index(policy, n, [&](std::size_t i) { sys.a[i] = math::vec<T, D>::zero(); });
    if (n < 2) return;
    const std::size_t pairs = n * (n - 1) / 2;
    exec::for_each_index(policy, pairs, [&, G, eps2, n](std::size_t p) {
      const auto [i, j] = detail::pair_from_index(p, n);
      // Unit-mass kernel G (x_j - x_i)/(r^2+eps^2)^{3/2}, evaluated once per
      // pair; Newton's third law gives both contributions.
      const auto k = math::gravity_accel(sys.x[i], sys.x[j], T(1), G, eps2);
      for (std::size_t d = 0; d < D; ++d) {
        exec::fetch_add_relaxed(sys.a[i][d], k[d] * sys.m[j]);
        exec::fetch_add_relaxed(sys.a[j][d], -k[d] * sys.m[i]);
      }
    });
  }
};

/// AllPairsTiled — the classical cache-tiling optimization of the all-pairs
/// kernel (Nyland et al., GPU Gems 3, cited in the paper's related work):
/// the j loop is processed in fixed-size tiles so the tile of positions and
/// masses stays resident in cache/shared memory while every i streams over
/// it. Same arithmetic as AllPairs (vectorization-safe, par_unseq), only
/// the memory access pattern changes — which is the point of the ablation.
template <class T, std::size_t D>
class AllPairsTiled {
 public:
  static constexpr const char* name = "all-pairs-tiled";

  AllPairsTiled() = default;
  explicit AllPairsTiled(std::size_t tile) : tile_(tile) {
    NBODY_REQUIRE(tile >= 1, "AllPairsTiled: tile must be >= 1");
  }

  [[nodiscard]] std::size_t tile() const { return tile_; }

  template <class Policy>
  void accelerations(Policy policy, core::StepContext<T, D>& ctx) {
    auto scope = ctx.phase("force");
    core::System<T, D>& sys = ctx.sys;
    const std::size_t n = sys.size();
    const T G = ctx.cfg.G;
    const T eps2 = ctx.cfg.eps2();
    const std::size_t tile = tile_;
    if (ctx.metrics_enabled() && n >= 1)
      ctx.metrics->counter("allpairs.interactions").add(static_cast<std::uint64_t>(n) * (n - 1));
    exec::for_each_index(policy, n, [&, G, eps2, tile, n](std::size_t i) {
      const auto xi = sys.x[i];
      auto acc = math::vec<T, D>::zero();
      for (std::size_t j0 = 0; j0 < n; j0 += tile) {
        const std::size_t j1 = std::min(j0 + tile, n);
        for (std::size_t j = j0; j < j1; ++j) {
          if (j == i) continue;
          acc += math::gravity_accel(xi, sys.x[j], sys.m[j], G, eps2);
        }
      }
      sys.a[i] = acc;
    });
  }

 private:
  std::size_t tile_ = 256;
};

}  // namespace nbody::allpairs
