// Hilbert-sorted Bounding Volume Hierarchy — the paper's second Barnes-Hut
// strategy (Sec. IV-B), requiring only weakly parallel forward progress:
// every stage runs under par_unseq, which is what makes it portable to GPUs
// without Independent Thread Scheduling.
//
// Structure: bodies are sorted along a Hilbert space-filling curve, then a
// *balanced binary tree* with a power-of-two leaf count is laid out
// implicitly heap-style (root at index 1, node k has children 2k and 2k+1,
// leaves occupy [leaf_begin, 2*leaf_begin)). Leaf j holds sorted body j;
// padding leaves beyond N are empty (zero mass, empty box). Because the
// shape is fixed, levels, node counts, and offsets are all predetermined —
// no connectivity needs to be stored, and the traversal can jump from any
// node to its DFS successor across multiple levels ("skip list", Fig. 4),
// purely by index arithmetic.
//
// Build is one bottom-up sweep: each coarser level reduces its children's
// bounding boxes and multipole moments with an independent Parallel For per
// level (no atomics, no locks).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/system.hpp"
#include "exec/algorithms.hpp"
#include "exec/radix_sort.hpp"
#include "math/aabb.hpp"
#include "math/batch_kernels.hpp"
#include "math/gravity.hpp"
#include "math/local_expansion.hpp"
#include "math/multipole.hpp"
#include "sfc/grid.hpp"
#include "support/assert.hpp"

namespace nbody::bvh {

/// Space-filling curve used to order bodies before the BVH build. The paper
/// argues for Hilbert (unit-step locality); Morton is provided as the
/// ablation baseline (Lauterbach-style builds sort by Morton code).
enum class CurveKind : std::uint8_t { hilbert, morton };

/// Multipole acceptance criterion for the force traversal.
///   side  — the paper's s/d < theta with s = longest box side.
///   bmax  — accept when b_max/d < theta, where b_max is the distance from
///           the node's center of mass to the farthest box corner (the
///           criterion of several production tree codes). b_max is a true
///           geometric bound: it grows past `side` when the com sits near a
///           corner (opening exactly the dangerous nodes) and shrinks to
///           ~0.87*side for a centered com in a cube — so at equal theta it
///           accepts *more* near-cubic nodes and runs faster with a
///           different error calibration. The theta scales of the two
///           criteria are not comparable one-to-one (same effect the paper
///           notes between octree and BVH thresholds, Sec. IV-B end).
enum class MacKind : std::uint8_t { side, bmax };

/// How HilbertSort orders the key/index pairs: parallel merge sort (the
/// std::sort analogue of the paper's Algorithm 7) or parallel LSD radix sort
/// (the fix for the paper's Fig. 8 observation that std::sort quality varies
/// across toolchains).
enum class SortKind : std::uint8_t { comparison, radix };

template <class T, std::size_t D>
class HilbertBVH {
 public:
  using vec_t = math::vec<T, D>;
  using box_t = math::aabb<T, D>;

  struct Options {
    /// Bodies per leaf (power of two). 1 reproduces the paper's "each leaf
    /// node contains at most one body"; larger buckets trade exact pairwise
    /// work at the bottom for a shallower tree.
    std::size_t leaf_size = 1;
    CurveKind curve = CurveKind::hilbert;
    SortKind sort = SortKind::comparison;
    MacKind mac = MacKind::side;
  };

  HilbertBVH() = default;
  explicit HilbertBVH(Options opts) : opts_(opts) {
    NBODY_REQUIRE(opts.leaf_size >= 1 && std::has_single_bit(opts.leaf_size),
                  "HilbertBVH: leaf_size must be a power of two");
  }

  [[nodiscard]] const Options& options() const { return opts_; }

  // -- HilbertSort (Algorithm 7) --------------------------------------------

  /// Computes each body's Hilbert key on the grid over `box`, then reorders
  /// the whole system (m, x, v, id) into Hilbert order. This is the paper's
  /// "sort an auxiliary buffer of Hilbert and body index pairs, applying it
  /// as a permutation afterwards" variant (Sec. V-A, issue #2): the key is
  /// precomputed once per body, never recomputed inside the comparator.
  template <class Policy>
  void sort_bodies(Policy policy, core::System<T, D>& sys, const box_t& box) {
    const std::size_t n = sys.size();
    sort_box_ = box;
    keys_.resize(n);
    if (n == 0) return;
    const sfc::GridMapper<T, D> grid(box);
    if (opts_.curve == CurveKind::hilbert) {
      exec::for_each_index(policy, n, [&](std::size_t i) {
        keys_[i] = grid.hilbert_key(sys.x[i]);
      });
    } else {
      exec::for_each_index(policy, n, [&](std::size_t i) {
        keys_[i] = grid.morton_key(sys.x[i]);
      });
    }
    const auto perm =
        opts_.sort == SortKind::comparison
            ? exec::make_sort_permutation(policy, keys_)
            : exec::make_radix_sort_permutation(policy, keys_,
                                                sfc::max_bits<D> * static_cast<unsigned>(D));
    reorder(policy, perm, sys.m);
    reorder(policy, perm, sys.x);
    reorder(policy, perm, sys.v);
    reorder(policy, perm, sys.id);
  }

  // -- BuildTreeAccumulateMass (Algorithm 6 step 4) ---------------------------

  /// Builds leaves from the (already sorted) bodies and reduces bounding
  /// boxes + multipole moments level by level up to the root. par_unseq-safe.
  template <class Policy>
  void build(Policy policy, const std::vector<T>& m, const std::vector<vec_t>& x,
             bool quadrupole = false) {
    n_bodies_ = m.size();
    const std::size_t buckets = (n_bodies_ + opts_.leaf_size - 1) / opts_.leaf_size;
    leaf_begin_ = std::bit_ceil(std::max<std::size_t>(buckets, 1));
    const std::size_t total = 2 * leaf_begin_;
    node_mass_.assign(total, T(0));
    node_com_.assign(total, vec_t::zero());
    node_box_.assign(total, box_t{});
    has_quadrupoles_ = quadrupole;
    if (quadrupole) {
      node_quad_.assign(total, math::SymTensor<T, D>{});
    } else {
      node_quad_.clear();
    }

    // Leaf level: leaf j covers the contiguous (sorted) bodies
    // [j*B, (j+1)*B); with B = 1 this is the paper's one-body-per-leaf
    // layout. Padding leaves stay empty.
    exec::for_each_index(policy, leaf_begin_, [&, quadrupole](std::size_t j) {
      const std::size_t k = leaf_begin_ + j;
      const auto [b0, b1] = leaf_range(j);
      if (b0 >= b1) return;
      if (b1 - b0 == 1) {
        node_mass_[k] = m[b0];
        node_com_[k] = x[b0];  // exact: no (x*m)/m round-trip
        node_box_[k] = box_t::of_point(x[b0]);
      } else {
        T mass = T(0);
        vec_t weighted = vec_t::zero();
        box_t box;
        for (std::size_t b = b0; b < b1; ++b) {
          mass += m[b];
          weighted += x[b] * m[b];
          box = box.merged(x[b]);
        }
        node_mass_[k] = mass;
        node_com_[k] = mass > T(0) ? weighted / mass : box.center();
        node_box_[k] = box;
      }
      if (quadrupole) {
        math::SymTensor<T, D> quad{};
        for (std::size_t b = b0; b < b1; ++b)
          quad += math::point_quadrupole(m[b], x[b] - node_com_[k]);
        node_quad_[k] = quad;
      }
    });
    // Coarser levels: independent pairwise reductions per level.
    for (std::size_t width = leaf_begin_ / 2; width >= 1; width /= 2) {
      exec::for_each_index(policy, width, [&, width](std::size_t off) {
        const std::size_t k = width + off;
        const std::size_t l = 2 * k;
        const std::size_t r = 2 * k + 1;
        const T ml = node_mass_[l];
        const T mr = node_mass_[r];
        node_mass_[k] = ml + mr;
        node_box_[k] = node_box_[l].merged(node_box_[r]);
        // When one side is empty, propagate the other side's center of mass
        // *exactly*. Computing (com*m)/m instead drifts by a few ulps, and a
        // chain of single-body ancestors then has a point-sized box (s = 0)
        // whose com sits ~1e-15 away from the body itself — which the
        // acceptance test s^2 < theta^2 d^2 happily accepts, producing an
        // enormous bogus self-force.
        if (ml <= T(0)) {
          node_com_[k] = node_com_[r];
        } else if (mr <= T(0)) {
          node_com_[k] = node_com_[l];
        } else {
          node_com_[k] = (node_com_[l] * ml + node_com_[r] * mr) / (ml + mr);
        }
        if (quadrupole) {
          // Children are complete (level-by-level order): combine their
          // quadrupoles about this node's center of mass (parallel axis).
          math::SymTensor<T, D> quad{};
          if (ml > T(0))
            quad += node_quad_[l] + math::point_quadrupole(ml, node_com_[l] - node_com_[k]);
          if (mr > T(0))
            quad += node_quad_[r] + math::point_quadrupole(mr, node_com_[r] - node_com_[k]);
          node_quad_[k] = quad;
        }
      });
      if (width == 1) break;
    }
  }

  // -- CalculateForce ---------------------------------------------------------

  /// Per-traversal work counters (see ConcurrentOctree::TraversalStats).
  struct TraversalStats {
    std::uint64_t nodes_visited = 0;
    std::uint64_t accepts = 0;
    std::uint64_t opens = 0;
    std::uint64_t exact_pairs = 0;
    TraversalStats& operator+=(const TraversalStats& o) {
      nodes_visited += o.nodes_visited;
      accepts += o.accepts;
      opens += o.opens;
      exact_pairs += o.exact_pairs;
      return *this;
    }
  };

  /// acceleration_on with work counters (identical traversal).
  vec_t acceleration_on_counted(const vec_t& xi, std::size_t self, const std::vector<T>& m,
                                const std::vector<vec_t>& x, T theta2, T G, T eps2,
                                TraversalStats& stats, bool quadrupole = false) const {
    vec_t acc = vec_t::zero();
    if (n_bodies_ == 0) return acc;
    std::size_t k = 1;
    for (;;) {
      ++stats.nodes_visited;
      bool descend = false;
      if (k >= leaf_begin_) {
        const auto [b0, b1] = leaf_range(k - leaf_begin_);
        for (std::size_t b = b0; b < b1; ++b) {
          if (b == self) continue;
          acc += math::gravity_accel(xi, x[b], m[b], G, eps2);
          ++stats.exact_pairs;
        }
      } else if (node_mass_[k] > T(0)) {
        const vec_t d = node_com_[k] - xi;
        const T d2 = norm2(d);
        const T s2 = mac_size2(k);
        if (s2 < theta2 * d2) {
          acc += math::gravity_accel(xi, node_com_[k], node_mass_[k], G, eps2);
          if (quadrupole)
            acc += math::quadrupole_accel(xi, node_com_[k], node_quad_[k], G, eps2);
          ++stats.accepts;
        } else {
          k = 2 * k;
          descend = true;
          ++stats.opens;
        }
      }
      if (descend) continue;
      while (k != 1 && (k & 1)) k >>= 1;
      if (k == 1) return acc;
      ++k;
    }
  }

  /// Acceleration on sorted body `self` at `xi`: stackless DFS over the
  /// implicit tree. The acceptance criterion uses the node's *bounding box*
  /// longest side (boxes may be elongated and overlap — see the paper's
  /// discussion of how the θ interpretation differs from the octree's).
  [[nodiscard]] vec_t acceleration_on(const vec_t& xi, std::size_t self,
                                      const std::vector<T>& m, const std::vector<vec_t>& x,
                                      T theta2, T G, T eps2,
                                      bool quadrupole = false) const {
    vec_t acc = vec_t::zero();
    if (n_bodies_ == 0) return acc;
    std::size_t k = 1;
    for (;;) {
      bool descend = false;
      if (k >= leaf_begin_) {
        const auto [b0, b1] = leaf_range(k - leaf_begin_);
        for (std::size_t b = b0; b < b1; ++b)
          if (b != self) acc += math::gravity_accel(xi, x[b], m[b], G, eps2);
      } else if (node_mass_[k] > T(0)) {
        const vec_t d = node_com_[k] - xi;
        const T d2 = norm2(d);
        const T s2 = mac_size2(k);
        if (s2 < theta2 * d2) {
          acc += math::gravity_accel(xi, node_com_[k], node_mass_[k], G, eps2);
          if (quadrupole)
            acc += math::quadrupole_accel(xi, node_com_[k], node_quad_[k], G, eps2);
        } else {
          k = 2 * k;  // open the node
          descend = true;
        }
      }
      if (descend) continue;
      // DFS successor, skipping k's subtree: climb while k is a right
      // child (possibly across several levels — the skip-list jump), then
      // step to the right sibling.
      while (k != 1 && (k & 1)) k >>= 1;
      if (k == 1) return acc;
      ++k;
    }
  }

  template <class Policy>
  void accelerations(Policy policy, const std::vector<T>& m, const std::vector<vec_t>& x,
                     std::vector<vec_t>& a_out, T theta, T G, T eps2,
                     bool quadrupole = false) const {
    NBODY_REQUIRE(!quadrupole || has_quadrupoles_,
                  "bvh accelerations: quadrupole requested but not built");
    const T theta2 = theta * theta;
    exec::for_each_index(policy, x.size(), [&, theta2, G, eps2, quadrupole](std::size_t i) {
      a_out[i] = acceleration_on(x[i], i, m, x, theta2, G, eps2, quadrupole);
    });
  }

  // -- group traversal (interaction-list collection) --------------------------

  /// One MAC-driven walk for a group of (Hilbert-contiguous) bodies bounded
  /// by `gbox`: emits the group's shared M2P/P2P interaction lists. Accepts
  /// a node only when the configured MAC holds against the *closest* point
  /// of the group box — a subset of every member's per-body accepts, so the
  /// replay is at least as accurate as acceleration_on (see
  /// ConcurrentOctree::collect_group_lists and DESIGN.md §4e). Skip-list
  /// successor stepping and the zero-mass pruning match the per-body DFS.
  /// Synchronization-free; safe under par_unseq.
  void collect_group_lists(const box_t& gbox, const std::vector<T>& m,
                           const std::vector<vec_t>& x, T theta2,
                           math::InteractionLists<T, D>& out, bool quadrupole = false) const {
    // Cooperative progress point per group walk (see
    // ConcurrentOctree::collect_group_lists).
    exec::checkpoint();
    if (n_bodies_ == 0) return;
    std::size_t k = 1;
    for (;;) {
      bool descend = false;
      if (k >= leaf_begin_) {
        const auto [b0, b1] = leaf_range(k - leaf_begin_);
        for (std::size_t b = b0; b < b1; ++b) out.push_body(x[b], m[b]);
      } else if (node_mass_[k] > T(0)) {
        const T d2 = gbox.dist2(node_com_[k]);
        if (mac_size2(k) < theta2 * d2) {
          if (quadrupole)
            out.push_node(node_com_[k], node_mass_[k], node_quad_[k]);
          else
            out.push_node(node_com_[k], node_mass_[k]);
        } else {
          k = 2 * k;
          descend = true;
        }
      }
      if (descend) continue;
      while (k != 1 && (k & 1)) k >>= 1;
      if (k == 1) return;
      ++k;
    }
  }

  // -- dual traversal (cell <-> cell far field) -------------------------------

  /// Source-tree cell handle for the dual walk: an implicit-heap node index
  /// (the BVH stores per-node boxes, so no carried width is needed).
  struct DualSourceCell {
    std::uint32_t node;
  };

  /// Seeds a dual walk with the root node.
  void dual_root_cells(std::vector<DualSourceCell>& out) const {
    out.clear();
    if (n_bodies_ == 0) return;
    out.push_back({1});
  }

  /// One dual-walk partition step against the target cell `tbox` — same
  /// contract as ConcurrentOctree::dual_partition: mutual MAC accepts
  /// translate into `L` (M2L); on failure the *larger* cell is split —
  /// the source opens in place when its size dominates the target box,
  /// otherwise the cell defers so the target's children (whose smaller
  /// boxes sit farther from the source com) can retry. The source-side
  /// criterion is exactly collect_group_lists' acceptance (mac_size2, so
  /// the configured MAC variant carries over); the target side requires
  /// tbox's longest side to pass the same θ against the box-to-com
  /// distance. Returns the number of M2L translations.
  std::size_t dual_partition(const box_t& tbox, T theta2, T G, T eps2,
                             const std::vector<DualSourceCell>& in,
                             std::vector<DualSourceCell>& defer,
                             math::LocalExpansion<T, D>& L, bool quadrupole) const {
    exec::checkpoint();
    if (n_bodies_ == 0 || tbox.empty()) return 0;
    const T side = tbox.longest_side();
    const T w2 = side * side;
    std::size_t accepted = 0;
    static thread_local std::vector<DualSourceCell> stack;
    stack.clear();
    for (const DualSourceCell& c0 : in) {
      stack.push_back(c0);
      while (!stack.empty()) {
        const std::size_t k = stack.back().node;
        stack.pop_back();
        if (k >= leaf_begin_) {  // leaf bucket: exact, resolved at the leaf
          defer.push_back({static_cast<std::uint32_t>(k)});
          continue;
        }
        if (node_mass_[k] <= T(0)) continue;
        const T d2 = tbox.dist2(node_com_[k]);
        const T s2 = mac_size2(k);
        if (s2 < theta2 * d2 && w2 < theta2 * d2) {
          if (quadrupole)
            math::m2l(L, node_mass_[k], node_com_[k], node_quad_[k], G, eps2);
          else
            math::m2l(L, node_mass_[k], node_com_[k], G, eps2);
          ++accepted;
        } else if (s2 >= w2) {  // split the larger: open the source cell
          stack.push_back({static_cast<std::uint32_t>(2 * k)});
          stack.push_back({static_cast<std::uint32_t>(2 * k + 1)});
        } else {  // target is the larger: let its children retry
          defer.push_back({static_cast<std::uint32_t>(k)});
        }
      }
    }
    return accepted;
  }

  /// Resolves a dual walk's leaf-deferred cells through the group-walk
  /// acceptance into M2P/P2P batch lists (collect_group_lists restarted
  /// from each cell instead of the root).
  void dual_finish(const box_t& gbox, const std::vector<T>& m, const std::vector<vec_t>& x,
                   T theta2, const std::vector<DualSourceCell>& in,
                   math::InteractionLists<T, D>& out, bool quadrupole = false) const {
    exec::checkpoint();
    if (n_bodies_ == 0) return;
    static thread_local std::vector<DualSourceCell> stack;
    stack.clear();
    for (const DualSourceCell& c0 : in) {
      stack.push_back(c0);
      while (!stack.empty()) {
        const std::size_t k = stack.back().node;
        stack.pop_back();
        if (k >= leaf_begin_) {
          const auto [b0, b1] = leaf_range(k - leaf_begin_);
          for (std::size_t b = b0; b < b1; ++b) out.push_body(x[b], m[b]);
          continue;
        }
        if (node_mass_[k] <= T(0)) continue;
        const T d2 = gbox.dist2(node_com_[k]);
        if (mac_size2(k) < theta2 * d2) {
          if (quadrupole)
            out.push_node(node_com_[k], node_mass_[k], node_quad_[k]);
          else
            out.push_node(node_com_[k], node_mass_[k]);
        } else {
          stack.push_back({static_cast<std::uint32_t>(2 * k)});
          stack.push_back({static_cast<std::uint32_t>(2 * k + 1)});
        }
      }
    }
  }

  // -- incremental maintenance (order-coherence monitors) ---------------------
  //
  // The BVH's build() already *is* a refit — it recomputes every box and
  // moment from the current positions each step — so keeping the tree is
  // always correct and re-sorting is purely a performance decision. These
  // two metrics quantify how far the sorted order has decayed; the strategy
  // re-sorts when either crosses its policy threshold.

  /// Box the last sort_bodies() gridded over (empty before any sort).
  [[nodiscard]] const box_t& sort_box() const { return sort_box_; }

  /// Fraction of sampled adjacent sorted-body pairs whose curve keys —
  /// recomputed for the *current* positions on the last sort's grid — are
  /// out of order. Zero right after a sort; grows as motion decays the
  /// order. GridMapper clamps positions outside the sort box onto its
  /// boundary, so drifted bodies saturate instead of faulting (pair with a
  /// sort_box() containment check: coherent bulk drift clamps whole runs to
  /// equal boundary keys, which this metric alone would read as "ordered").
  ///
  /// Pairs are sampled at `stride` (default 8): the policy threshold is a
  /// few percent, so an unbiased estimate over n/stride pairs decides the
  /// re-sort just as well as the census — at a quarter of the sort's own
  /// key-computation cost, which is the whole point of the monitor.
  template <class Policy>
  [[nodiscard]] double order_inversion_fraction(Policy policy, const std::vector<vec_t>& x,
                                                std::size_t stride = 8) const {
    const std::size_t n = x.size();
    if (n < 2 || sort_box_.empty()) return 0.0;
    if (stride == 0) stride = 1;
    const std::size_t pairs = (n - 1 + stride - 1) / stride;
    const sfc::GridMapper<T, D> grid(sort_box_);
    const auto key_of = [&](std::size_t i) {
      return opts_.curve == CurveKind::hilbert ? grid.hilbert_key(x[i]) : grid.morton_key(x[i]);
    };
    const std::uint64_t inversions = exec::transform_reduce_index(
        policy, pairs, std::uint64_t{0}, std::plus<>{}, [&](std::size_t j) -> std::uint64_t {
          const std::size_t i = j * stride;
          return key_of(i) > key_of(i + 1) ? 1 : 0;
        });
    return static_cast<double>(inversions) / static_cast<double>(pairs);
  }

  /// Mean sibling-box overlap of the last build: per internal node, the
  /// volume of its children's box intersection over its own box volume
  /// (0 when siblings are disjoint). Elongating, interpenetrating boxes —
  /// the degradation mode of a stale Hilbert order — drive it up; compared
  /// against its own post-sort baseline, not an absolute scale.
  template <class Policy>
  [[nodiscard]] double sibling_overlap_metric(Policy policy) const {
    if (leaf_begin_ < 2) return 0.0;
    const std::size_t internals = leaf_begin_ - 1;
    const double sum = exec::transform_reduce_index(
        policy, internals, 0.0, std::plus<>{}, [&](std::size_t off) -> double {
          const std::size_t k = 1 + off;
          const box_t& a = node_box_[2 * k];
          const box_t& b = node_box_[2 * k + 1];
          const box_t& p = node_box_[k];
          if (a.empty() || b.empty() || p.empty()) return 0.0;
          double ov = 1.0;
          double pv = 1.0;
          for (std::size_t d = 0; d < D; ++d) {
            const double o =
                std::min<double>(a.hi[d], b.hi[d]) - std::max<double>(a.lo[d], b.lo[d]);
            if (o <= 0.0) return 0.0;  // disjoint along d
            ov *= o;
            pv *= static_cast<double>(p.hi[d] - p.lo[d]);
          }
          return pv > 0.0 ? ov / pv : 1.0;
        });
    return sum / static_cast<double>(internals);
  }

  // -- spatial queries --------------------------------------------------------

  /// Invokes fn(sorted_body_index) for every body within `radius` of
  /// `center`. Same skip-list traversal as the force path, pruning by the
  /// stored node boxes. Read-only after build().
  template <class Fn>
  void for_each_in_radius(const vec_t& center, T radius, const std::vector<vec_t>& x,
                          Fn&& fn) const {
    NBODY_REQUIRE(radius >= T(0), "for_each_in_radius: negative radius");
    if (n_bodies_ == 0) return;
    const T r2 = radius * radius;
    auto box_outside = [&](const box_t& box) {
      if (box.empty()) return true;
      T d2 = T(0);
      for (std::size_t d = 0; d < D; ++d) {
        const T c = center[d] < box.lo[d] ? box.lo[d]
                    : center[d] > box.hi[d] ? box.hi[d]
                                            : center[d];
        const T delta = center[d] - c;
        d2 += delta * delta;
      }
      return d2 > r2;
    };
    std::size_t k = 1;
    for (;;) {
      bool descend = false;
      if (k >= leaf_begin_) {
        const auto [b0, b1] = leaf_range(k - leaf_begin_);
        for (std::size_t b = b0; b < b1; ++b)
          if (norm2(x[b] - center) <= r2) fn(b);
      } else if (!box_outside(node_box_[k])) {
        k = 2 * k;
        descend = true;
      }
      if (descend) continue;
      while (k != 1 && (k & 1)) k >>= 1;
      if (k == 1) return;
      ++k;
    }
  }

  [[nodiscard]] std::size_t count_in_radius(const vec_t& center, T radius,
                                            const std::vector<vec_t>& x) const {
    std::size_t n = 0;
    for_each_in_radius(center, radius, x, [&](std::size_t) { ++n; });
    return n;
  }

  // -- introspection ----------------------------------------------------------

  [[nodiscard]] std::size_t leaf_count() const { return leaf_begin_; }
  [[nodiscard]] std::size_t node_total() const { return node_mass_.size(); }
  [[nodiscard]] std::size_t levels() const {
    return static_cast<std::size_t>(std::bit_width(leaf_begin_));
  }
  [[nodiscard]] T node_mass(std::size_t k) const { return node_mass_[k]; }
  [[nodiscard]] vec_t node_com(std::size_t k) const { return node_com_[k]; }
  [[nodiscard]] const box_t& node_box(std::size_t k) const { return node_box_[k]; }
  [[nodiscard]] bool has_quadrupoles() const { return has_quadrupoles_; }
  [[nodiscard]] const math::SymTensor<T, D>& node_quadrupole(std::size_t k) const {
    return node_quad_[k];
  }
  [[nodiscard]] const std::vector<std::uint64_t>& keys() const { return keys_; }

  /// Squared MAC size of node k per the configured criterion.
  [[nodiscard]] T mac_size2(std::size_t k) const {
    if (opts_.mac == MacKind::side) {
      const T s = node_box_[k].longest_side();
      return s * s;
    }
    // bmax: farthest box corner from the center of mass.
    const auto& box = node_box_[k];
    const vec_t com = node_com_[k];
    T b2 = T(0);
    for (std::size_t d = 0; d < D; ++d) {
      const T lo = com[d] - box.lo[d];
      const T hi = box.hi[d] - com[d];
      const T m = lo > hi ? lo : hi;
      b2 += m * m;
    }
    return b2;
  }

  /// Sorted-body index range [first, last) covered by leaf `j`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> leaf_range(std::size_t j) const {
    const std::size_t b0 = j * opts_.leaf_size;
    const std::size_t b1 = std::min(b0 + opts_.leaf_size, n_bodies_);
    return {std::min(b0, n_bodies_), b1};
  }

 private:
  template <class Policy, class U>
  void reorder(Policy policy, const std::vector<std::uint32_t>& perm, std::vector<U>& arr) {
    std::vector<U> tmp;
    exec::apply_permutation(policy, perm, arr, tmp);
    arr.swap(tmp);
  }

  Options opts_{};
  std::size_t n_bodies_ = 0;
  std::size_t leaf_begin_ = 1;  // index of first leaf == leaf count
  std::vector<std::uint64_t> keys_;
  box_t sort_box_{};  // grid box of the last sort (order-coherence monitors)
  std::vector<T> node_mass_;
  std::vector<vec_t> node_com_;
  std::vector<box_t> node_box_;
  std::vector<math::SymTensor<T, D>> node_quad_;  // filled when built with quadrupoles
  bool has_quadrupoles_ = false;
};

}  // namespace nbody::bvh
