// BVH force strategy: Algorithm 6's per-step pipeline
// (CalculateBoundingBox -> HilbertSort -> BuildTreeAccumulateMass ->
// CalculateForce). Every stage is safe under par_unseq — this strategy
// accepts any policy, which is exactly the portability trade-off the paper
// evaluates against the octree.
//
// Note: the strategy physically reorders the system into Hilbert order each
// step (m, x, v and the stable ids all move together).
#pragma once

#include "bvh/hilbert_bvh.hpp"
#include "core/bbox.hpp"
#include "core/step_context.hpp"
#include "core/system.hpp"
#include "math/batch_kernels.hpp"
#include "support/timer.hpp"

namespace nbody::bvh {

template <class T, std::size_t D>
class BVHStrategy {
 public:
  static constexpr const char* name = "bvh";

  struct Options {
    typename HilbertBVH<T, D>::Options tree{};
    /// Re-sort along the Hilbert curve every `reuse_interval` steps; between
    /// re-sorts the stale ordering is kept and only boxes/moments are
    /// rebuilt (they track the moved bodies exactly — only box *tightness*
    /// degrades). The Iwasawa-style amortization from the paper's related
    /// work, applied to the sort instead of the build.
    unsigned reuse_interval = 1;
  };

  BVHStrategy() = default;
  explicit BVHStrategy(typename HilbertBVH<T, D>::Options opts)
      : BVHStrategy(Options{opts, 1}) {}
  explicit BVHStrategy(Options opts) : opts_(opts), tree_(opts.tree) {
    NBODY_REQUIRE(opts.reuse_interval >= 1, "BVHStrategy: reuse_interval must be >= 1");
  }

  template <class Policy>
  void accelerations(Policy policy, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    if (steps_since_sort_ % opts_.reuse_interval == 0) {
      math::aabb<T, D> box;
      {
        auto scope = ctx.phase("bbox");
        box = core::compute_bounding_box(policy, sys.x);
        if (box.empty()) box = box.inflated_cube();
      }
      {
        auto scope = ctx.phase("sort");
        support::Stopwatch sw;
        tree_.sort_bodies(policy, sys, box);
        if (ctx.metrics_enabled()) {
          ctx.metrics->counter("bvh.sorts").add();
          ctx.metrics
              ->histogram("bvh.sort_seconds", {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0})
              .observe(sw.seconds());
        }
      }
      steps_since_sort_ = 0;
    }
    ++steps_since_sort_;
    {
      auto scope = ctx.phase("build");
      tree_.build(policy, sys.m, sys.x, cfg.quadrupole);
    }
    if (ctx.metrics_enabled()) {
      ctx.metrics->counter("bvh.builds").add();
      ctx.metrics->set_gauge("bvh.nodes", static_cast<double>(tree_.node_total()));
      ctx.metrics->set_gauge("bvh.leaves", static_cast<double>(tree_.leaf_count()));
      ctx.metrics->set_gauge("bvh.levels", static_cast<double>(tree_.levels()));
    }
    {
      auto scope = ctx.phase("force");
      // group_size > 0 selects group traversal: the Hilbert sort already
      // made consecutive indices spatially coherent, so groups are plain
      // contiguous blocks of the sorted System — no gather/scatter needed.
      if (cfg.group_size > 0)
        compute_forces_grouped(policy, ctx);
      else
        compute_forces(policy, ctx);
    }
  }

  [[nodiscard]] const HilbertBVH<T, D>& tree() const { return tree_; }

  /// Recovery hook (Simulation::run_guarded): re-sort on the next
  /// accelerations() call — after a checkpoint restore the stale Hilbert
  /// ordering no longer matches the restored positions.
  void invalidate() { steps_since_sort_ = 0; }

  /// Accuracy-rung hook (Simulation::run_guarded deadline shedding): amortize
  /// Hilbert re-sorts over more steps. Values < 1 are clamped to 1.
  void set_reuse_interval(unsigned k) { opts_.reuse_interval = k < 1 ? 1 : k; }
  [[nodiscard]] unsigned reuse_interval() const noexcept { return opts_.reuse_interval; }

 private:
  template <class Policy>
  void compute_forces(Policy policy, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    if (!ctx.metrics_enabled()) {
      tree_.accelerations(policy, sys.m, sys.x, sys.a, cfg.theta, cfg.G, cfg.eps2(),
                          cfg.quadrupole);
      return;
    }
    auto& m2p = ctx.metrics->counter("bvh.traversal.m2p");
    auto& p2p = ctx.metrics->counter("bvh.traversal.p2p");
    auto& opens = ctx.metrics->counter("bvh.traversal.opens");
    auto& visited = ctx.metrics->counter("bvh.traversal.nodes_visited");
    const T theta2 = cfg.theta * cfg.theta;
    const T G = cfg.G;
    const T eps2 = cfg.eps2();
    const bool quad = cfg.quadrupole;
    exec::for_each_index(policy, sys.x.size(), [&, theta2, G, eps2, quad](std::size_t i) {
      typename HilbertBVH<T, D>::TraversalStats st;
      sys.a[i] = tree_.acceleration_on_counted(sys.x[i], i, sys.m, sys.x, theta2, G, eps2,
                                               st, quad);
      m2p.add(st.accepts);
      p2p.add(st.exact_pairs);
      opens.add(st.opens);
      visited.add(st.nodes_visited);
    });
  }

  /// Per-worker scratch of the grouped force path (see OctreeStrategy's
  /// twin): reused across groups, thread_local ⇒ synchronization-free.
  struct GroupScratch {
    math::InteractionLists<T, D> lists;
  };

  /// Group-traversal force evaluation over contiguous Hilbert-sorted blocks.
  /// One MAC-driven walk per block against the block's bounding box; the
  /// emitted lists replay through the SoA batch kernels straight into
  /// sys.a[b0, b1) — targets are already contiguous in the sorted System.
  template <class Policy>
  void compute_forces_grouped(Policy policy, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    const std::size_t n = sys.x.size();
    if (n == 0) return;
    // Dispatch guarantees group_size > 0; clamp above to N (one big group).
    const std::size_t gsize = cfg.group_size < n ? cfg.group_size : n;
    const std::size_t ngroups = (n + gsize - 1) / gsize;
    const T theta2 = cfg.theta2();
    const T G = cfg.G;
    const T eps2 = cfg.eps2();
    const bool quad = cfg.quadrupole;
    const bool counted = ctx.metrics_enabled();
    auto* groups_ctr = counted ? &ctx.metrics->counter("bvh.group.groups") : nullptr;
    auto* m2p_ctr = counted ? &ctx.metrics->counter("bvh.group.m2p") : nullptr;
    auto* p2p_ctr = counted ? &ctx.metrics->counter("bvh.group.p2p") : nullptr;
    auto* walk_ns = counted ? &ctx.metrics->counter("bvh.group.walk_ns") : nullptr;
    auto* kernel_ns = counted ? &ctx.metrics->counter("bvh.group.kernel_ns") : nullptr;
    auto* m2p_len = counted ? &ctx.metrics->histogram("bvh.group.m2p_len",
                                                      {16, 64, 256, 1024, 4096, 16384})
                            : nullptr;
    auto* p2p_len = counted ? &ctx.metrics->histogram("bvh.group.p2p_len",
                                                      {16, 64, 256, 1024, 4096, 16384})
                            : nullptr;
    exec::for_each_index(policy, ngroups, [&, theta2, G, eps2, quad, gsize, n](std::size_t gi) {
      static thread_local GroupScratch s;
      const std::size_t b0 = gi * gsize;
      const std::size_t b1 = b0 + gsize < n ? b0 + gsize : n;
      math::aabb<T, D> gbox;
      for (std::size_t k = b0; k < b1; ++k) gbox = gbox.merged(sys.x[k]);
      s.lists.clear();
      support::Stopwatch sw;
      tree_.collect_group_lists(gbox, sys.m, sys.x, theta2, s.lists, quad);
      const double walk_s = sw.seconds();
      sw.reset();
      math::evaluate_interaction_lists(s.lists, sys.x.data() + b0, b1 - b0, G, eps2,
                                       sys.a.data() + b0);
      const double kernel_s = sw.seconds();
      if (groups_ctr != nullptr) {
        groups_ctr->add();
        m2p_ctr->add(s.lists.m2p_size());
        p2p_ctr->add(s.lists.p2p_size());
        walk_ns->add(static_cast<std::uint64_t>(walk_s * 1e9));
        kernel_ns->add(static_cast<std::uint64_t>(kernel_s * 1e9));
        m2p_len->observe(static_cast<double>(s.lists.m2p_size()));
        p2p_len->observe(static_cast<double>(s.lists.p2p_size()));
      }
    });
  }

  Options opts_{};
  HilbertBVH<T, D> tree_;
  unsigned steps_since_sort_ = 0;
};

}  // namespace nbody::bvh
