// BVH force strategy: Algorithm 6's per-step pipeline
// (CalculateBoundingBox -> HilbertSort -> BuildTreeAccumulateMass ->
// CalculateForce). Every stage is safe under par_unseq — this strategy
// accepts any policy, which is exactly the portability trade-off the paper
// evaluates against the octree.
//
// Note: the strategy physically reorders the system into Hilbert order each
// step (m, x, v and the stable ids all move together).
#pragma once

#include "bvh/hilbert_bvh.hpp"
#include "core/bbox.hpp"
#include "core/system.hpp"
#include "support/timer.hpp"

namespace nbody::bvh {

template <class T, std::size_t D>
class BVHStrategy {
 public:
  static constexpr const char* name = "bvh";

  struct Options {
    typename HilbertBVH<T, D>::Options tree{};
    /// Re-sort along the Hilbert curve every `reuse_interval` steps; between
    /// re-sorts the stale ordering is kept and only boxes/moments are
    /// rebuilt (they track the moved bodies exactly — only box *tightness*
    /// degrades). The Iwasawa-style amortization from the paper's related
    /// work, applied to the sort instead of the build.
    unsigned reuse_interval = 1;
  };

  BVHStrategy() = default;
  explicit BVHStrategy(typename HilbertBVH<T, D>::Options opts)
      : BVHStrategy(Options{opts, 1}) {}
  explicit BVHStrategy(Options opts) : opts_(opts), tree_(opts.tree) {
    NBODY_REQUIRE(opts.reuse_interval >= 1, "BVHStrategy: reuse_interval must be >= 1");
  }

  template <class Policy>
  void accelerations(Policy policy, core::System<T, D>& sys, const core::SimConfig<T>& cfg,
                     support::PhaseTimer* timer = nullptr) {
    if (steps_since_sort_ % opts_.reuse_interval == 0) {
      math::aabb<T, D> box;
      {
        auto scope = support::PhaseTimer::maybe(timer, "bbox");
        box = core::compute_bounding_box(policy, sys.x);
        if (box.empty()) box = box.inflated_cube();
      }
      auto scope = support::PhaseTimer::maybe(timer, "sort");
      tree_.sort_bodies(policy, sys, box);
      steps_since_sort_ = 0;
    }
    ++steps_since_sort_;
    {
      auto scope = support::PhaseTimer::maybe(timer, "build");
      tree_.build(policy, sys.m, sys.x, cfg.quadrupole);
    }
    {
      auto scope = support::PhaseTimer::maybe(timer, "force");
      tree_.accelerations(policy, sys.m, sys.x, sys.a, cfg.theta, cfg.G, cfg.eps2(),
                          cfg.quadrupole);
    }
  }

  [[nodiscard]] const HilbertBVH<T, D>& tree() const { return tree_; }

  /// Recovery hook (Simulation::run_guarded): re-sort on the next
  /// accelerations() call — after a checkpoint restore the stale Hilbert
  /// ordering no longer matches the restored positions.
  void invalidate() { steps_since_sort_ = 0; }

 private:
  Options opts_{};
  HilbertBVH<T, D> tree_;
  unsigned steps_since_sort_ = 0;
};

}  // namespace nbody::bvh
