// BVH force strategy: Algorithm 6's per-step pipeline
// (CalculateBoundingBox -> HilbertSort -> BuildTreeAccumulateMass ->
// CalculateForce). Every stage is safe under par_unseq — this strategy
// accepts any policy, which is exactly the portability trade-off the paper
// evaluates against the octree.
//
// Note: the strategy physically reorders the system into Hilbert order each
// step (m, x, v and the stable ids all move together).
#pragma once

#include "bvh/hilbert_bvh.hpp"
#include "core/bbox.hpp"
#include "core/step_context.hpp"
#include "core/system.hpp"
#include "support/timer.hpp"

namespace nbody::bvh {

template <class T, std::size_t D>
class BVHStrategy {
 public:
  static constexpr const char* name = "bvh";

  struct Options {
    typename HilbertBVH<T, D>::Options tree{};
    /// Re-sort along the Hilbert curve every `reuse_interval` steps; between
    /// re-sorts the stale ordering is kept and only boxes/moments are
    /// rebuilt (they track the moved bodies exactly — only box *tightness*
    /// degrades). The Iwasawa-style amortization from the paper's related
    /// work, applied to the sort instead of the build.
    unsigned reuse_interval = 1;
  };

  BVHStrategy() = default;
  explicit BVHStrategy(typename HilbertBVH<T, D>::Options opts)
      : BVHStrategy(Options{opts, 1}) {}
  explicit BVHStrategy(Options opts) : opts_(opts), tree_(opts.tree) {
    NBODY_REQUIRE(opts.reuse_interval >= 1, "BVHStrategy: reuse_interval must be >= 1");
  }

  template <class Policy>
  void accelerations(Policy policy, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    if (steps_since_sort_ % opts_.reuse_interval == 0) {
      math::aabb<T, D> box;
      {
        auto scope = ctx.phase("bbox");
        box = core::compute_bounding_box(policy, sys.x);
        if (box.empty()) box = box.inflated_cube();
      }
      {
        auto scope = ctx.phase("sort");
        support::Stopwatch sw;
        tree_.sort_bodies(policy, sys, box);
        if (ctx.metrics_enabled()) {
          ctx.metrics->counter("bvh.sorts").add();
          ctx.metrics
              ->histogram("bvh.sort_seconds", {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0})
              .observe(sw.seconds());
        }
      }
      steps_since_sort_ = 0;
    }
    ++steps_since_sort_;
    {
      auto scope = ctx.phase("build");
      tree_.build(policy, sys.m, sys.x, cfg.quadrupole);
    }
    if (ctx.metrics_enabled()) {
      ctx.metrics->counter("bvh.builds").add();
      ctx.metrics->set_gauge("bvh.nodes", static_cast<double>(tree_.node_total()));
      ctx.metrics->set_gauge("bvh.leaves", static_cast<double>(tree_.leaf_count()));
      ctx.metrics->set_gauge("bvh.levels", static_cast<double>(tree_.levels()));
    }
    {
      auto scope = ctx.phase("force");
      compute_forces(policy, ctx);
    }
  }

  [[nodiscard]] const HilbertBVH<T, D>& tree() const { return tree_; }

  /// Recovery hook (Simulation::run_guarded): re-sort on the next
  /// accelerations() call — after a checkpoint restore the stale Hilbert
  /// ordering no longer matches the restored positions.
  void invalidate() { steps_since_sort_ = 0; }

 private:
  template <class Policy>
  void compute_forces(Policy policy, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    if (!ctx.metrics_enabled()) {
      tree_.accelerations(policy, sys.m, sys.x, sys.a, cfg.theta, cfg.G, cfg.eps2(),
                          cfg.quadrupole);
      return;
    }
    auto& m2p = ctx.metrics->counter("bvh.traversal.m2p");
    auto& p2p = ctx.metrics->counter("bvh.traversal.p2p");
    auto& opens = ctx.metrics->counter("bvh.traversal.opens");
    auto& visited = ctx.metrics->counter("bvh.traversal.nodes_visited");
    const T theta2 = cfg.theta * cfg.theta;
    const T G = cfg.G;
    const T eps2 = cfg.eps2();
    const bool quad = cfg.quadrupole;
    exec::for_each_index(policy, sys.x.size(), [&, theta2, G, eps2, quad](std::size_t i) {
      typename HilbertBVH<T, D>::TraversalStats st;
      sys.a[i] = tree_.acceleration_on_counted(sys.x[i], i, sys.m, sys.x, theta2, G, eps2,
                                               st, quad);
      m2p.add(st.accepts);
      p2p.add(st.exact_pairs);
      opens.add(st.opens);
      visited.add(st.nodes_visited);
    });
  }

  Options opts_{};
  HilbertBVH<T, D> tree_;
  unsigned steps_since_sort_ = 0;
};

}  // namespace nbody::bvh
