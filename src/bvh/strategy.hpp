// BVH force strategy: Algorithm 6's per-step pipeline
// (CalculateBoundingBox -> HilbertSort -> BuildTreeAccumulateMass ->
// CalculateForce). Every stage is safe under par_unseq — this strategy
// accepts any policy, which is exactly the portability trade-off the paper
// evaluates against the octree.
//
// Note: the strategy physically reorders the system into Hilbert order each
// step (m, x, v and the stable ids all move together).
#pragma once

#include "bvh/hilbert_bvh.hpp"
#include "core/bbox.hpp"
#include "core/dual_traversal.hpp"
#include "core/step_context.hpp"
#include "core/system.hpp"
#include "core/tree_maintenance.hpp"
#include "math/batch_kernels.hpp"
#include "support/timer.hpp"

namespace nbody::bvh {

template <class T, std::size_t D>
class BVHStrategy {
 public:
  static constexpr const char* name = "bvh";

  struct Options {
    typename HilbertBVH<T, D>::Options tree{};
    /// Tree-lifecycle policy (core::TreeMaintenance), applied to the
    /// Hilbert *sort*: the per-step build() already refits every box and
    /// moment from the moved positions, so keeping the stale order is
    /// always correct and re-sorting is purely a performance decision.
    /// rebuild re-sorts every step; refit:k re-sorts every k-th step (the
    /// old reuse_interval); incremental re-sorts when the order-coherence
    /// monitors (key inversions, sibling-box overlap, bounding-box escape)
    /// say the order has decayed.
    core::TreeUpdatePolicy update{};
  };

  BVHStrategy() = default;
  explicit BVHStrategy(typename HilbertBVH<T, D>::Options opts)
      : BVHStrategy(Options{opts, {}}) {}
  explicit BVHStrategy(Options opts)
      : opts_(opts), tree_(opts.tree), maint_(opts.update, "BVHStrategy") {}

  /// TreeMaintenance lifecycle: decides sort-vs-keep, performs the sort and
  /// the per-step box/moment refit (build), and reports the decision.
  /// accelerations() calls it first; exposed for tests and harnesses.
  template <class Policy>
  core::TreeAction prepare(Policy policy, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    const bool incremental = maint_.policy().mode == core::TreeUpdateMode::incremental;
    // Order-coherence monitor — only when the lifecycle would keep the
    // current order this step.
    bool degraded = false;
    if (incremental && maint_.would_keep() && sys.size() >= 2) {
      auto scope = ctx.phase("quality");
      const core::TreeUpdatePolicy& pol = maint_.policy();
      const double inv = tree_.order_inversion_fraction(policy, sys.x);
      const double ov = tree_.sibling_overlap_metric(policy);
      // Bulk drift clamps whole key runs onto the grid boundary (reading as
      // "ordered"), so bounding-box escape is its own degradation signal.
      const bool escaped =
          !tree_.sort_box().contains(core::compute_bounding_box(policy, sys.x));
      degraded = escaped || inv > pol.max_inversion_fraction ||
                 ov > baseline_overlap_ * pol.max_overlap_growth + 0.02;
      if (ctx.metrics_enabled()) {
        ctx.metrics->set_gauge("bvh.quality.inversion_fraction", inv);
        ctx.metrics->set_gauge("bvh.quality.sibling_overlap", ov);
        ctx.metrics->set_gauge("bvh.quality.escaped", escaped ? 1.0 : 0.0);
        if (degraded) ctx.metrics->counter("bvh.sorts.quality").add();
      }
    }
    core::TreeAction act = maint_.decide(degraded);
    if (act == core::TreeAction::Built || act == core::TreeAction::Rebuilt) {
      math::aabb<T, D> box;
      {
        auto scope = ctx.phase("bbox");
        box = core::compute_bounding_box(policy, sys.x);
        if (box.empty()) box = box.inflated_cube();
        // Incremental mode sorts over an inflated box so small drift stays
        // on the grid between re-sorts (escape degrades to a re-sort). The
        // 25% margin costs well under one bit of key resolution.
        if (incremental) {
          const auto center = box.center();
          const auto half = box.extent() * T(0.625);  // 1.25x half-extent
          box.lo = center - half;
          box.hi = center + half;
        }
      }
      {
        auto scope = ctx.phase("sort");
        support::Stopwatch sw;
        tree_.sort_bodies(policy, sys, box);
        if (ctx.metrics_enabled()) {
          ctx.metrics->counter("bvh.sorts").add();
          ctx.metrics
              ->histogram("bvh.sort_seconds", {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0})
              .observe(sw.seconds());
        }
      }
    }
    {
      // Every step refits boxes and moments from the current positions —
      // the Refitted/Updated actions are this pass over the kept order.
      auto scope = ctx.phase("build");
      tree_.build(policy, sys.m, sys.x, cfg.quadrupole);
    }
    if (ctx.metrics_enabled()) {
      ctx.metrics->counter("bvh.builds").add();
      ctx.metrics->set_gauge("bvh.nodes", static_cast<double>(tree_.node_total()));
      ctx.metrics->set_gauge("bvh.leaves", static_cast<double>(tree_.leaf_count()));
      ctx.metrics->set_gauge("bvh.levels", static_cast<double>(tree_.levels()));
    }
    if (incremental &&
        (act == core::TreeAction::Built || act == core::TreeAction::Rebuilt)) {
      // Post-sort overlap baseline the growth monitor compares against.
      baseline_overlap_ = tree_.sibling_overlap_metric(policy);
    }
    ctx.note_tree_action(act);
    last_action_ = act;
    return act;
  }

  template <class Policy>
  void accelerations(Policy policy, core::StepContext<T, D>& ctx) {
    const core::SimConfig<T>& cfg = ctx.cfg;
    prepare(policy, ctx);
    {
      auto scope = ctx.phase("force");
      // cfg.traversal selects the evaluation (see OctreeStrategy): the
      // Hilbert sort already made consecutive indices spatially coherent,
      // so both the grouped and the dual target partitions are plain
      // contiguous blocks of the sorted System — no gather/scatter needed.
      const bool dual = cfg.traversal == core::TraversalMode::dual;
      const bool grouped =
          !dual && (cfg.group_size > 0 || cfg.traversal == core::TraversalMode::group);
      if (dual)
        compute_forces_dual(policy, ctx);
      else if (grouped)
        compute_forces_grouped(policy, ctx);
      else
        compute_forces(policy, ctx);
    }
  }

  [[nodiscard]] const HilbertBVH<T, D>& tree() const { return tree_; }

  /// Recovery hook (Simulation::run_guarded): re-sort on the next
  /// accelerations() call — after a checkpoint restore the stale Hilbert
  /// ordering no longer matches the restored positions.
  void invalidate() { maint_.invalidate(); }

  /// Tree-lifecycle policy (accuracy-rung and CLI surface).
  [[nodiscard]] const core::TreeUpdatePolicy& update_policy() const { return maint_.policy(); }
  void set_update_policy(core::TreeUpdatePolicy p) { maint_.set_policy(p); }
  /// What prepare() did on the most recent step.
  [[nodiscard]] core::TreeAction last_action() const { return last_action_; }

  /// Deprecated reuse_interval shims: delegate to the TreeUpdatePolicy
  /// mapping (k == 1 → rebuild, k > 1 → refit:k) and validate k >= 1 like
  /// the constructors always did.
  void set_reuse_interval(unsigned k) { maint_.set_reuse_interval(k); }
  [[nodiscard]] unsigned reuse_interval() const { return maint_.reuse_interval(); }

 private:
  template <class Policy>
  void compute_forces(Policy policy, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    if (!ctx.metrics_enabled()) {
      tree_.accelerations(policy, sys.m, sys.x, sys.a, cfg.theta, cfg.G, cfg.eps2(),
                          cfg.quadrupole);
      return;
    }
    auto& m2p = ctx.metrics->counter("bvh.traversal.m2p");
    auto& p2p = ctx.metrics->counter("bvh.traversal.p2p");
    auto& opens = ctx.metrics->counter("bvh.traversal.opens");
    auto& visited = ctx.metrics->counter("bvh.traversal.nodes_visited");
    const T theta2 = cfg.theta * cfg.theta;
    const T G = cfg.G;
    const T eps2 = cfg.eps2();
    const bool quad = cfg.quadrupole;
    exec::for_each_index(policy, sys.x.size(), [&, theta2, G, eps2, quad](std::size_t i) {
      typename HilbertBVH<T, D>::TraversalStats st;
      sys.a[i] = tree_.acceleration_on_counted(sys.x[i], i, sys.m, sys.x, theta2, G, eps2,
                                               st, quad);
      m2p.add(st.accepts);
      p2p.add(st.exact_pairs);
      opens.add(st.opens);
      visited.add(st.nodes_visited);
    });
  }

  /// Per-worker scratch of the grouped force path (see OctreeStrategy's
  /// twin): reused across groups, thread_local ⇒ synchronization-free.
  struct GroupScratch {
    math::InteractionLists<T, D> lists;
  };

  /// Group-traversal force evaluation over contiguous Hilbert-sorted blocks.
  /// One MAC-driven walk per block against the block's bounding box; the
  /// emitted lists replay through the SoA batch kernels straight into
  /// sys.a[b0, b1) — targets are already contiguous in the sorted System.
  template <class Policy>
  void compute_forces_grouped(Policy policy, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    const std::size_t n = sys.x.size();
    if (n == 0) return;
    // group_size == 0 can reach here via --traversal group; clamp to N.
    const std::size_t gsize = std::min(cfg.effective_group_size(), n);
    const std::size_t ngroups = (n + gsize - 1) / gsize;
    const T theta2 = cfg.theta2();
    const T G = cfg.G;
    const T eps2 = cfg.eps2();
    const bool quad = cfg.quadrupole;
    const bool counted = ctx.metrics_enabled();
    auto* groups_ctr = counted ? &ctx.metrics->counter("bvh.group.groups") : nullptr;
    auto* m2p_ctr = counted ? &ctx.metrics->counter("bvh.group.m2p") : nullptr;
    auto* p2p_ctr = counted ? &ctx.metrics->counter("bvh.group.p2p") : nullptr;
    auto* walk_ns = counted ? &ctx.metrics->counter("bvh.group.walk_ns") : nullptr;
    auto* kernel_ns = counted ? &ctx.metrics->counter("bvh.group.kernel_ns") : nullptr;
    auto* m2p_len = counted ? &ctx.metrics->histogram("bvh.group.m2p_len",
                                                      {16, 64, 256, 1024, 4096, 16384})
                            : nullptr;
    auto* p2p_len = counted ? &ctx.metrics->histogram("bvh.group.p2p_len",
                                                      {16, 64, 256, 1024, 4096, 16384})
                            : nullptr;
    exec::for_each_index(policy, ngroups, [&, theta2, G, eps2, quad, gsize, n](std::size_t gi) {
      static thread_local GroupScratch s;
      const std::size_t b0 = gi * gsize;
      const std::size_t b1 = b0 + gsize < n ? b0 + gsize : n;
      math::aabb<T, D> gbox;
      for (std::size_t k = b0; k < b1; ++k) gbox = gbox.merged(sys.x[k]);
      s.lists.clear();
      support::Stopwatch sw;
      tree_.collect_group_lists(gbox, sys.m, sys.x, theta2, s.lists, quad);
      const double walk_s = sw.seconds();
      sw.reset();
      math::evaluate_interaction_lists(s.lists, sys.x.data() + b0, b1 - b0, G, eps2,
                                       sys.a.data() + b0);
      const double kernel_s = sw.seconds();
      if (groups_ctr != nullptr) {
        groups_ctr->add();
        m2p_ctr->add(s.lists.m2p_size());
        p2p_ctr->add(s.lists.p2p_size());
        walk_ns->add(static_cast<std::uint64_t>(walk_s * 1e9));
        kernel_ns->add(static_cast<std::uint64_t>(kernel_s * 1e9));
        m2p_len->observe(static_cast<double>(s.lists.m2p_size()));
        p2p_len->observe(static_cast<double>(s.lists.p2p_size()));
      }
    });
  }

  /// Dual-tree force evaluation over contiguous Hilbert-sorted blocks: the
  /// block bounding boxes seed core::DualTargetTree, the dual walk carries
  /// local expansions down it (M2L + L2L), and each target leaf resolves
  /// its deferred cells through the group-walk acceptance into M2P/P2P
  /// lists replayed straight into sys.a[b0, b1), plus one L2P per body.
  /// See OctreeStrategy::compute_forces_dual for the safety argument.
  template <class Policy>
  void compute_forces_dual(Policy policy, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    const std::size_t n = sys.x.size();
    if (n == 0) return;
    const std::size_t gsize = std::min(cfg.effective_group_size(), n);
    const std::size_t ngroups = (n + gsize - 1) / gsize;
    const T theta2 = cfg.theta2();
    const T G = cfg.G;
    const T eps2 = cfg.eps2();
    const bool quad = cfg.quadrupole;
    std::vector<math::aabb<T, D>> gboxes(ngroups);
    exec::for_each_index(policy, ngroups, [&, gsize, n](std::size_t gi) {
      const std::size_t b0 = gi * gsize;
      const std::size_t b1 = b0 + gsize < n ? b0 + gsize : n;
      math::aabb<T, D> gbox;
      for (std::size_t k = b0; k < b1; ++k) gbox = gbox.merged(sys.x[k]);
      gboxes[gi] = gbox;
    });
    core::DualTargetTree<T, D> target_tree;
    target_tree.build(gboxes);
    const bool counted = ctx.metrics_enabled();
    auto* groups_ctr = counted ? &ctx.metrics->counter("bvh.dual.groups") : nullptr;
    auto* m2l_ctr = counted ? &ctx.metrics->counter("bvh.dual.m2l") : nullptr;
    auto* l2l_ctr = counted ? &ctx.metrics->counter("bvh.dual.l2l") : nullptr;
    auto* l2p_ctr = counted ? &ctx.metrics->counter("bvh.dual.l2p") : nullptr;
    auto* m2p_ctr = counted ? &ctx.metrics->counter("bvh.dual.m2p") : nullptr;
    auto* p2p_ctr = counted ? &ctx.metrics->counter("bvh.dual.p2p") : nullptr;
    auto* walk_ns = counted ? &ctx.metrics->counter("bvh.dual.walk_ns") : nullptr;
    auto* kernel_ns = counted ? &ctx.metrics->counter("bvh.dual.kernel_ns") : nullptr;
    const auto leaf_fn =
        [&, theta2, G, eps2, quad, gsize, n](
            std::size_t gi, const math::LocalExpansion<T, D>& L,
            const std::vector<typename HilbertBVH<T, D>::DualSourceCell>& cells) {
          static thread_local GroupScratch s;
          const std::size_t b0 = gi * gsize;
          const std::size_t b1 = b0 + gsize < n ? b0 + gsize : n;
          s.lists.clear();
          support::Stopwatch sw;
          tree_.dual_finish(gboxes[gi], sys.m, sys.x, theta2, cells, s.lists, quad);
          const double finish_s = sw.seconds();
          sw.reset();
          math::evaluate_interaction_lists(s.lists, sys.x.data() + b0, b1 - b0, G, eps2,
                                           sys.a.data() + b0);
          for (std::size_t k = b0; k < b1; ++k) sys.a[k] += math::l2p(L, sys.x[k]);
          const double kernel_s = sw.seconds();
          if (groups_ctr != nullptr) {
            groups_ctr->add();
            l2p_ctr->add(b1 - b0);
            m2p_ctr->add(s.lists.m2p_size());
            p2p_ctr->add(s.lists.p2p_size());
            walk_ns->add(static_cast<std::uint64_t>(finish_s * 1e9));
            kernel_ns->add(static_cast<std::uint64_t>(kernel_s * 1e9));
          }
        };
    const core::DualWalkStats st =
        core::dual_traverse(policy, tree_, target_tree, theta2, G, eps2, quad, leaf_fn);
    if (counted) {
      m2l_ctr->add(st.m2l);
      l2l_ctr->add(st.l2l);
    }
  }

  Options opts_{};
  HilbertBVH<T, D> tree_;
  core::TreeMaintenance maint_{};
  core::TreeAction last_action_ = core::TreeAction::Built;
  double baseline_overlap_ = 0.0;  // sibling overlap right after a sort
};

}  // namespace nbody::bvh
