// Morton (Z-order) encoding.
//
// Used for the octree's child ordering (the paper stores the 2^D children of
// a node "in Morton order", Sec. IV-A) and as a comparison curve for the
// Hilbert-locality property tests.
#pragma once

#include <cstdint>
#include <cstddef>

#include "support/assert.hpp"

namespace nbody::sfc {

namespace detail {

/// Spreads the low 32 bits of x so consecutive bits land 2 apart.
constexpr std::uint64_t spread2(std::uint64_t x) {
  x &= 0xffffffffULL;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

constexpr std::uint64_t compact2(std::uint64_t x) {
  x &= 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x >> 4)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x >> 8)) & 0x0000ffff0000ffffULL;
  x = (x | (x >> 16)) & 0x00000000ffffffffULL;
  return x;
}

/// Spreads the low 21 bits of x so consecutive bits land 3 apart.
constexpr std::uint64_t spread3(std::uint64_t x) {
  x &= 0x1fffffULL;
  x = (x | (x << 32)) & 0x1f00000000ffffULL;
  x = (x | (x << 16)) & 0x1f0000ff0000ffULL;
  x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

constexpr std::uint64_t compact3(std::uint64_t x) {
  x &= 0x1249249249249249ULL;
  x = (x | (x >> 2)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x >> 4)) & 0x100f00f00f00f00fULL;
  x = (x | (x >> 8)) & 0x1f0000ff0000ffULL;
  x = (x | (x >> 16)) & 0x1f00000000ffffULL;
  x = (x | (x >> 32)) & 0x1fffffULL;
  return x;
}

}  // namespace detail

/// Interleaves D coordinates into a Morton key; coordinate i contributes its
/// bit b to key bit (b*D + i). 2-D supports 32 bits/axis, 3-D 21 bits/axis.
template <std::size_t D>
constexpr std::uint64_t morton_encode(const std::uint32_t (&coords)[D]);

template <>
constexpr std::uint64_t morton_encode<2>(const std::uint32_t (&c)[2]) {
  return detail::spread2(c[0]) | (detail::spread2(c[1]) << 1);
}

template <>
constexpr std::uint64_t morton_encode<3>(const std::uint32_t (&c)[3]) {
  NBODY_DEBUG_ASSERT(c[0] < (1u << 21) && c[1] < (1u << 21) && c[2] < (1u << 21));
  return detail::spread3(c[0]) | (detail::spread3(c[1]) << 1) | (detail::spread3(c[2]) << 2);
}

/// Inverse of morton_encode.
template <std::size_t D>
constexpr void morton_decode(std::uint64_t key, std::uint32_t (&coords)[D]);

template <>
constexpr void morton_decode<2>(std::uint64_t key, std::uint32_t (&c)[2]) {
  c[0] = static_cast<std::uint32_t>(detail::compact2(key));
  c[1] = static_cast<std::uint32_t>(detail::compact2(key >> 1));
}

template <>
constexpr void morton_decode<3>(std::uint64_t key, std::uint32_t (&c)[3]) {
  c[0] = static_cast<std::uint32_t>(detail::compact3(key));
  c[1] = static_cast<std::uint32_t>(detail::compact3(key >> 1));
  c[2] = static_cast<std::uint32_t>(detail::compact3(key >> 2));
}

}  // namespace nbody::sfc
