// Mapping from continuous positions to the SFC integer grid.
//
// The paper's HilbertSort "first grids the bodies within the coarsest
// equidistant Cartesian grid capable to hold all bodies" (Sec. IV-B-1).
// `GridMapper` captures that: it quantizes positions inside a bounding box
// onto a 2^bits^D lattice and exposes Hilbert/Morton keys for sorting.
#pragma once

#include <array>
#include <cstdint>

#include "math/aabb.hpp"
#include "math/vec.hpp"
#include "sfc/hilbert.hpp"
#include "sfc/morton.hpp"
#include "support/assert.hpp"

namespace nbody::sfc {

template <class T, std::size_t D>
class GridMapper {
 public:
  /// `box` must be non-empty; `bits` is the per-axis resolution
  /// (default: the maximum that still packs into a 64-bit key).
  GridMapper(const math::aabb<T, D>& box, unsigned bits = max_bits<D>)
      : lo_(box.lo), bits_(bits), cells_(std::uint64_t{1} << bits) {
    NBODY_REQUIRE(!box.empty(), "GridMapper: empty bounding box");
    NBODY_REQUIRE(bits >= 1 && static_cast<std::uint64_t>(bits) * D <= 64,
                  "GridMapper: bits out of range");
    for (std::size_t i = 0; i < D; ++i) {
      const T ext = box.hi[i] - box.lo[i];
      // Degenerate axes (all bodies share a coordinate) map to cell 0.
      inv_cell_[i] = ext > T(0) ? static_cast<T>(cells_) / ext : T(0);
    }
  }

  [[nodiscard]] unsigned bits() const { return bits_; }

  /// Quantizes `p` (clamped into the box) to lattice coordinates.
  [[nodiscard]] std::array<std::uint32_t, D> cell_of(const math::vec<T, D>& p) const {
    std::array<std::uint32_t, D> c{};
    for (std::size_t i = 0; i < D; ++i) {
      const T scaled = (p[i] - lo_[i]) * inv_cell_[i];
      auto q = static_cast<std::int64_t>(scaled);
      if (q < 0) q = 0;
      if (q >= static_cast<std::int64_t>(cells_)) q = static_cast<std::int64_t>(cells_) - 1;
      c[i] = static_cast<std::uint32_t>(q);
    }
    return c;
  }

  /// Hilbert key of the cell containing `p`.
  [[nodiscard]] std::uint64_t hilbert_key(const math::vec<T, D>& p) const {
    return hilbert_encode<D>(cell_of(p), bits_);
  }

  /// Morton key of the cell containing `p`.
  [[nodiscard]] std::uint64_t morton_key(const math::vec<T, D>& p) const {
    const auto c = cell_of(p);
    std::uint32_t raw[D];
    for (std::size_t i = 0; i < D; ++i) raw[i] = c[i];
    return morton_encode<D>(raw);
  }

 private:
  math::vec<T, D> lo_;
  math::vec<T, D> inv_cell_{};
  unsigned bits_;
  std::uint64_t cells_;
};

}  // namespace nbody::sfc
