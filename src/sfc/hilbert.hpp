// Hilbert curve indexing via Skilling's Gray-code algorithm
// ("Programming the Hilbert curve", AIP 2004) — the algorithm the paper's
// HilbertSort step cites (Sec. IV-B, [17]).
//
// Skilling's method works on the *transposed* representation of the Hilbert
// index: an array X of D coordinates, each `bits` wide, where the index's
// bits are read column-major (bit (bits-1) of X[0], of X[1], ..., then bit
// (bits-2) of X[0], ...). `axes_to_transpose` converts grid coordinates into
// that form in place; `transpose_to_key` interleaves it into one uint64.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>

#include "support/assert.hpp"

namespace nbody::sfc {

/// In-place Skilling transform: grid coordinates -> transposed Hilbert index.
/// `bits` is the per-axis resolution; requires D*bits <= 64 for key packing.
template <std::size_t D>
constexpr void axes_to_transpose(std::array<std::uint32_t, D>& x, unsigned bits) {
  NBODY_DEBUG_ASSERT(bits >= 1 && bits <= 32);
  const std::uint32_t m = 1u << (bits - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (std::size_t i = 0; i < D; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert
      } else {
        const std::uint32_t t = (x[0] ^ x[i]) & p;  // exchange
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (std::size_t i = 1; i < D; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1)
    if (x[D - 1] & q) t ^= q - 1;
  for (std::size_t i = 0; i < D; ++i) x[i] ^= t;
}

/// In-place inverse Skilling transform: transposed Hilbert index -> grid
/// coordinates.
template <std::size_t D>
constexpr void transpose_to_axes(std::array<std::uint32_t, D>& x, unsigned bits) {
  NBODY_DEBUG_ASSERT(bits >= 1 && bits <= 32);
  const std::uint32_t n = 2u << (bits - 1);
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[D - 1] >> 1;
  for (std::size_t i = D - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != n; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (std::size_t ii = D; ii-- > 0;) {
      if (x[ii] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[ii]) & p;
        x[0] ^= t;
        x[ii] ^= t;
      }
    }
  }
}

/// Packs a transposed Hilbert index into a single integer key, MSB-first
/// column-major: key bit (b*D + (D-1-i)) takes bit b of x[i].
template <std::size_t D>
constexpr std::uint64_t transpose_to_key(const std::array<std::uint32_t, D>& x,
                                         unsigned bits) {
  NBODY_DEBUG_ASSERT(static_cast<std::uint64_t>(bits) * D <= 64);
  std::uint64_t key = 0;
  for (unsigned b = bits; b-- > 0;) {
    for (std::size_t i = 0; i < D; ++i) {
      key = (key << 1) | ((x[i] >> b) & 1u);
    }
  }
  return key;
}

/// Inverse of transpose_to_key.
template <std::size_t D>
constexpr std::array<std::uint32_t, D> key_to_transpose(std::uint64_t key, unsigned bits) {
  std::array<std::uint32_t, D> x{};
  for (unsigned b = 0; b < bits; ++b) {
    for (std::size_t ii = D; ii-- > 0;) {
      x[ii] |= static_cast<std::uint32_t>(key & 1u) << b;
      key >>= 1;
    }
  }
  return x;
}

/// Grid coordinates -> Hilbert curve index in [0, 2^(D*bits)).
template <std::size_t D>
constexpr std::uint64_t hilbert_encode(std::array<std::uint32_t, D> coords, unsigned bits) {
  axes_to_transpose<D>(coords, bits);
  return transpose_to_key<D>(coords, bits);
}

/// Hilbert curve index -> grid coordinates (inverse of hilbert_encode).
template <std::size_t D>
constexpr std::array<std::uint32_t, D> hilbert_decode(std::uint64_t key, unsigned bits) {
  auto x = key_to_transpose<D>(key, bits);
  transpose_to_axes<D>(x, bits);
  return x;
}

/// Per-axis resolution that fills a 64-bit key for dimension D
/// (32 bits for D=2, 21 for D=3).
template <std::size_t D>
inline constexpr unsigned max_bits = static_cast<unsigned>(64 / D) > 32u
                                         ? 32u
                                         : static_cast<unsigned>(64 / D);

}  // namespace nbody::sfc
