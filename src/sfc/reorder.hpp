// Space-filling-curve reordering of a particle system.
//
// Shared by the Hilbert BVH (whose build *requires* curve order) and the
// octree's optional presort (curve-ordering bodies before parallel
// insertion improves build locality and reduces lock contention between
// neighboring threads — the classic trick from Burtscher & Pingali's CUDA
// Barnes-Hut, applicable here too).
#pragma once

#include <cstdint>
#include <vector>

#include "core/system.hpp"
#include "exec/algorithms.hpp"
#include "exec/radix_sort.hpp"
#include "math/aabb.hpp"
#include "sfc/grid.hpp"

namespace nbody::sfc {

enum class KeyKind : std::uint8_t { hilbert, morton };
enum class SortAlgo : std::uint8_t { comparison, radix };

/// Computes one SFC key per body position over `box`.
template <class Policy, class T, std::size_t D>
std::vector<std::uint64_t> curve_keys(Policy policy, const std::vector<math::vec<T, D>>& x,
                                      const math::aabb<T, D>& box, KeyKind kind) {
  std::vector<std::uint64_t> keys(x.size());
  if (x.empty()) return keys;
  const GridMapper<T, D> grid(box);
  if (kind == KeyKind::hilbert) {
    exec::for_each_index(policy, x.size(),
                         [&](std::size_t i) { keys[i] = grid.hilbert_key(x[i]); });
  } else {
    exec::for_each_index(policy, x.size(),
                         [&](std::size_t i) { keys[i] = grid.morton_key(x[i]); });
  }
  return keys;
}

/// Applies `perm` to every per-body attribute of `sys` (m, x, v, id).
template <class Policy, class T, std::size_t D>
void permute_system(Policy policy, core::System<T, D>& sys,
                    const std::vector<std::uint32_t>& perm) {
  auto reorder = [&](auto& arr) {
    std::remove_reference_t<decltype(arr)> tmp;
    exec::apply_permutation(policy, perm, arr, tmp);
    arr.swap(tmp);
  };
  reorder(sys.m);
  reorder(sys.x);
  reorder(sys.v);
  reorder(sys.id);
}

/// Reorders `sys` into curve order over `box`; returns the (sorted) keys.
template <class Policy, class T, std::size_t D>
std::vector<std::uint64_t> reorder_system(Policy policy, core::System<T, D>& sys,
                                          const math::aabb<T, D>& box,
                                          KeyKind kind = KeyKind::hilbert,
                                          SortAlgo algo = SortAlgo::comparison) {
  auto keys = curve_keys(policy, sys.x, box, kind);
  if (keys.empty()) return keys;
  const auto perm =
      algo == SortAlgo::comparison
          ? exec::make_sort_permutation(policy, keys)
          : exec::make_radix_sort_permutation(policy, keys,
                                              max_bits<D> * static_cast<unsigned>(D));
  permute_system(policy, sys, perm);
  std::vector<std::uint64_t> sorted_keys;
  exec::apply_permutation(policy, perm, keys, sorted_keys);
  return sorted_keys;
}

}  // namespace nbody::sfc
