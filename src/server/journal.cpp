#include "server/journal.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "core/snapshot.hpp"
#include "support/fault.hpp"

namespace nbody::server {

namespace {

constexpr const char* kMagic = "NBJL1";

constexpr const char* kTypeNames[] = {
    "admit", "checkpoint", "evict", "retry", "complete", "quarantine", "shed",
};

std::string crc_hex(const std::string& payload) {
  const std::uint64_t h = core::snapshot_detail::fnv1a(payload.data(), payload.size());
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return std::string(buf);
}

// Record fields must stay one-line; a reason string with newlines would
// desynchronize the grammar for every later record.
std::string flatten(std::string s) {
  for (char& c : s)
    if (c == '\n' || c == '\r') c = ' ';
  return s;
}

std::string format_line(std::uint64_t seq, JournalRecordType type,
                        const std::string& job_id, std::size_t steps,
                        const std::string& detail) {
  std::ostringstream line;
  line << kMagic << ' ' << seq << ' ' << journal_record_type_name(type) << ' '
       << job_id << ' ' << steps;
  if (!detail.empty()) line << ' ' << flatten(detail);
  const std::string payload = line.str();
  return payload + " crc=" + crc_hex(payload);
}

}  // namespace

const char* journal_record_type_name(JournalRecordType t) noexcept {
  return kTypeNames[static_cast<std::size_t>(t)];
}

JobJournal::JobJournal(std::string path) : path_(std::move(path)) {
  // Continue the sequence past any existing records so a restarted server
  // appends monotonically (replay keeps the *last* record per job).
  const JournalReplay prior = replay(path_);
  for (const auto& r : prior.records) seq_ = r.seq >= seq_ ? r.seq + 1 : seq_;
  if (prior.truncated) heal_torn_tail(prior);
  out_.open(path_, std::ios::app | std::ios::binary);
  if (!out_) throw std::runtime_error("JobJournal: cannot open " + path_ + " for append");
}

void JobJournal::heal_torn_tail(const JournalReplay& prior) {
  // Replay tolerates a torn tail, but appending after one would glue the
  // next record onto the partial line; that glued line fails its CRC on the
  // next replay, which then stops there and loses every record written
  // after the first crash. Cut the file back to the end of the last valid
  // record so appends start on a fresh line.
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::resize_file(path_, prior.valid_bytes, ec);
  if (!ec) {
    healed_ = true;
    return;
  }
  // resize_file failed (exotic filesystem): rewrite the valid prefix
  // through the snapshot tmp+rename commit idiom instead.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    for (const auto& r : prior.records)
      out << format_line(r.seq, r.type, r.job_id, r.steps, r.detail) << '\n';
    out.flush();
    if (!out)
      throw std::runtime_error("JobJournal: cannot heal torn tail of " + path_);
  }
  core::snapshot_detail::commit_tmp_file(tmp, path_, "journal heal");
  healed_ = true;
}

bool JobJournal::append(JournalRecordType type, const std::string& job_id,
                        std::size_t steps, const std::string& detail) noexcept {
  std::lock_guard lock(mutex_);
  try {
    support::fault_point(support::FaultSite::server_journal_write);
    out_ << format_line(seq_, type, job_id, steps, detail) << '\n';
    out_.flush();
    if (!out_) {
      out_.clear();
      ++lost_;
      return false;
    }
    ++seq_;
    return true;
  } catch (...) {
    ++lost_;
    return false;
  }
}

JournalReplay JobJournal::replay(const std::string& path) {
  JournalReplay rep;
  std::ifstream in(path, std::ios::binary);
  if (!in) return rep;  // no journal yet: empty replay
  std::string line;
  std::uint64_t consumed = 0;  // bytes up to and including the previous line
  while (std::getline(in, line)) {
    // Byte offset just past this line. tellg() is -1 once EOF is hit on a
    // final line with no trailing newline — count the raw bytes instead.
    const auto pos = in.tellg();
    const std::uint64_t line_end = pos == std::streampos(-1)
                                       ? consumed + line.size()
                                       : static_cast<std::uint64_t>(pos);
    if (line.empty()) {
      consumed = line_end;
      continue;
    }
    const std::size_t crc_pos = line.rfind(" crc=");
    bool ok = crc_pos != std::string::npos && line.compare(0, 6, "NBJL1 ") == 0;
    JournalRecord rec;
    if (ok) {
      const std::string payload = line.substr(0, crc_pos);
      ok = line.substr(crc_pos + 5) == crc_hex(payload);
      if (ok) {
        std::istringstream toks(payload);
        std::string magic, type_name;
        toks >> magic >> rec.seq >> type_name >> rec.job_id >> rec.steps;
        ok = !toks.fail();
        if (ok) {
          std::getline(toks, rec.detail);
          if (!rec.detail.empty() && rec.detail[0] == ' ') rec.detail.erase(0, 1);
          ok = false;
          for (std::size_t i = 0; i < std::size(kTypeNames); ++i) {
            if (type_name == kTypeNames[i]) {
              rec.type = static_cast<JournalRecordType>(i);
              ok = true;
              break;
            }
          }
        }
      }
    }
    if (!ok) {
      // Torn or corrupt line: everything before it is trustworthy, nothing
      // after it is. Stop here (kill -9 mid-append lands exactly here).
      rep.truncated = true;
      rep.truncated_at = line;
      rep.valid_bytes = consumed;
      return rep;
    }
    consumed = line_end;
    rep.records.push_back(std::move(rec));
  }
  rep.valid_bytes = consumed;
  return rep;
}

}  // namespace nbody::server
