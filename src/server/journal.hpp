// Write-ahead job journal for the JobServer.
//
// An append-only, line-oriented log of job lifecycle transitions, reusing
// the snapshot-v2 durability idioms (core/snapshot.hpp): every record is
// FNV-1a checksummed, appends are flushed, and replay stops at the first
// record that fails its checksum — a torn tail from a kill -9 is expected
// and tolerated, never UB. Records are deliberately self-contained: the
// `admit` record carries the full serialized JobSpec, and `checkpoint`
// records name an immutable snapshot file whose path embeds the step count
// (checkpoints/<id>.<steps>.snap), so the (journal record, snapshot file)
// pair is atomic without a two-file commit protocol — a crash between
// snapshot write and journal append simply leaves the journal pointing at
// the previous, still-existing file.
//
// Line grammar (one record per line):
//
//   NBJL1 <seq> <type> <job_id> <steps> [<detail...>] crc=<16-hex>
//
// where crc is FNV-1a over everything before " crc=". Appends go through
// the server.journal.write fault site; a failed append (injected or real
// I/O) is *counted and survived* — the journal is a recovery accelerator,
// not a correctness dependency, and a lost record at worst re-runs work.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace nbody::server {

enum class JournalRecordType : std::uint8_t {
  admit,       // detail = serialized JobSpec
  checkpoint,  // detail = snapshot path (step count embedded in the name)
  evict,       // checkpoint-evicted under pressure (detail = snapshot path)
  retry,       // a slice failed; detail = reason (backoff follows)
  complete,    // detail = result snapshot path
  quarantine,  // detail = diagnostic bundle path
  shed,        // dropped by deadline-aware load shedding before starting
};

const char* journal_record_type_name(JournalRecordType t) noexcept;

struct JournalRecord {
  std::uint64_t seq = 0;
  JournalRecordType type = JournalRecordType::admit;
  std::string job_id;
  std::size_t steps = 0;
  std::string detail;
};

/// Result of replaying a journal file: the records that passed their
/// checksums, plus whether replay stopped early on a torn/corrupt line.
struct JournalReplay {
  std::vector<JournalRecord> records;
  bool truncated = false;       // a bad line stopped the replay
  std::string truncated_at;     // the offending line (diagnostics)
  std::uint64_t valid_bytes = 0;  // byte offset just past the last valid record
};

/// Append-side handle. Thread-safe; each append is one flushed line.
class JobJournal {
 public:
  /// Opens `path` for append, creating it if missing. A torn tail (kill -9
  /// mid-append) is *healed* first: the file is truncated back to the end
  /// of its last valid record, so the next append starts on a fresh line
  /// instead of gluing onto the partial one — otherwise that glued line
  /// would fail its CRC and hide every later record from future replays.
  /// Throws on failure.
  explicit JobJournal(std::string path);

  /// Appends one checksummed record. Returns false (and counts the loss)
  /// when the write fails — including an injected server.journal.write
  /// fault. Never throws.
  bool append(JournalRecordType type, const std::string& job_id, std::size_t steps,
              const std::string& detail) noexcept;

  [[nodiscard]] std::uint64_t lost_writes() const noexcept { return lost_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// True when construction found a torn tail and truncated it away.
  [[nodiscard]] bool healed_torn_tail() const noexcept { return healed_; }

  /// Replays a journal file. A missing file is an empty replay, not an
  /// error. Stops at the first checksum/grammar failure (torn tail).
  static JournalReplay replay(const std::string& path);

 private:
  void heal_torn_tail(const JournalReplay& prior);

  std::string path_;
  std::ofstream out_;
  std::mutex mutex_;
  std::uint64_t seq_ = 0;
  std::uint64_t lost_ = 0;
  bool healed_ = false;
};

}  // namespace nbody::server
