// JobServer — a fault-isolated multi-simulation daemon over the shared pool.
//
// The server admits independent simulation jobs (server/job.hpp) and runs
// them on `max_concurrent_jobs` runner threads. Each runner executes its
// claimed job in *slices* of `slice_steps` guarded steps via
// Simulation::run_guarded, so every job gets the full robustness stack of
// PR 5 — its own stop sources and deadlines, its own per-job watchdog
// (exec/watchdog.hpp samples per-job heartbeat counters, so concurrent jobs
// neither mask nor trip each other), the policy/accuracy degradation
// ladders, and in-memory checkpoint recovery — while the slice boundary is
// where the *server's* policies act:
//
//   * fairness     — under pressure a finished slice requeues to the back,
//                    so long jobs round-robin instead of starving neighbours;
//   * durability   — each slice boundary writes an immutable snapshot
//                    (checkpoints/<id>.<steps>.snap) and journals it, so a
//                    killed server resumes from the last completed slice;
//   * memory       — a bodies-in-core budget; when a queued job doesn't fit,
//                    retained runners of other queued jobs are checkpoint-
//                    evicted (state dropped to disk) to make room;
//   * retry        — a failed slice (exhausted guarded retries, dispatch
//                    fault, anything thrown) discards the slice, backs off
//                    exponentially, and retries from the last durable
//                    checkpoint; after `job_retries` *consecutive* failures
//                    the job is quarantined with a diagnostic bundle —
//                    the server itself never crashes and healthy jobs keep
//                    running;
//   * shedding     — a job whose start_deadline_ms passes while still
//                    queued is shed instead of run.
//
// Admission control: submit() rejects (backpressure) when the queue is at
// queue_capacity, and the server.admit fault site makes admission itself
// injectable. All server state transitions ride an InstrumentedMutex and a
// chaos-schedule yield point, so the chaos backend + lockset race detector
// (exec/chaos) see the dispatch path.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/chaos/race_detector.hpp"
#include "obs/metrics.hpp"
#include "server/job.hpp"
#include "server/journal.hpp"

namespace nbody::server {

struct ServerOptions {
  /// Runner threads = concurrently executing jobs.
  std::size_t max_concurrent_jobs = 2;
  /// K: consecutive failed slices before a job is quarantined as poison.
  unsigned job_retries = 3;
  /// Admission backpressure: submit() rejects beyond this many live
  /// (non-terminal) jobs.
  std::size_t queue_capacity = 256;
  /// Bodies-in-core budget across materialized jobs (0 = unlimited).
  std::size_t memory_budget_bodies = 0;
  /// Steps per scheduling slice (0 = run each job to completion in one
  /// slice; no fairness, no durable mid-run checkpoints).
  std::size_t slice_steps = 64;
  /// Per-slice retry budget handed to run_guarded.
  unsigned guard_max_retries = 4;
  /// Watchdog stall window for jobs that don't set their own (0 = off).
  double default_watchdog_ms = 0;
  /// Exponential backoff after a failed slice: base * 2^(failures-1), capped.
  double backoff_base_ms = 5.0;
  double backoff_cap_ms = 250.0;
  /// Wall budget for run_until_drained (0 = none): on expiry in-flight jobs
  /// finish their slice, are checkpointed, and left `suspended` (resumable).
  double wall_budget_ms = 0;
  /// Root for checkpoints/, out/, quarantine/ (created on construction).
  std::string work_dir = ".";
  /// Journal file (empty = journaling and crash-resume off).
  std::string journal_path{};
  /// Also write each completed job's metrics registry to out/<id>.metrics.json.
  bool export_job_metrics = false;
};

enum class JobState : std::uint8_t {
  queued,       // admitted, waiting for a runner (includes backoff)
  running,      // a runner is executing a slice
  completed,    // all steps done; result snapshot written
  quarantined,  // K consecutive failures; diagnostic bundle written
  shed,         // start deadline passed while queued; never ran
  suspended,    // server stopped (wall budget / shutdown); resumable
};

const char* job_state_name(JobState s) noexcept;

struct JobReport {
  JobSpec spec;
  JobState state = JobState::queued;
  std::size_t steps_done = 0;
  unsigned slices = 0;            // slices attempted (ok or failed)
  unsigned failures = 0;          // failed slices (lifetime)
  unsigned evictions = 0;         // checkpoint-evictions under memory pressure
  unsigned restores = 0;          // guarded-run restores, summed over slices
  unsigned watchdog_trips = 0;    // summed over slices
  unsigned deadline_misses = 0;   // summed over slices
  double wall_ms = 0;             // execution wall time, summed over slices
  std::string last_error;
  std::string result_path;        // completed: out/<id>.snap
  std::string quarantine_path;    // quarantined: quarantine/<id>.txt
  std::vector<std::string> recovery_log;
};

struct AdmitResult {
  bool admitted = false;
  std::string reason;  // why not, when !admitted
};

class JobServer {
 public:
  explicit JobServer(ServerOptions opts);
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Admission control. Validates the spec, applies backpressure and the
  /// server.admit fault site, journals the admit. Never throws on rejection
  /// — the result says why. Duplicate ids are rejected.
  AdmitResult submit(JobSpec spec);

  /// Replays the journal and re-admits every non-terminal job at its last
  /// durable checkpoint. Call before run_until_drained on a restarted
  /// server. Returns the number of jobs resumed. Jobs whose last journal
  /// state is complete/quarantine/shed are left retired.
  std::size_t resume_from_journal();

  /// Runs runner threads until every job is terminal (or the wall budget
  /// expires / request_shutdown is called). Blocks the calling thread.
  void run_until_drained();

  /// Graceful stop: runners finish their current slice, checkpoint, and
  /// leave remaining jobs `suspended`.
  void request_shutdown();

  [[nodiscard]] std::vector<JobReport> reports() const;
  [[nodiscard]] JobReport report_for(const std::string& id) const;
  [[nodiscard]] const ServerOptions& options() const noexcept { return opts_; }
  [[nodiscard]] std::uint64_t journal_lost_writes() const noexcept;
  [[nodiscard]] std::size_t rejected_submits() const noexcept;

  /// Invoked (from runner threads, outside the server lock) whenever a job
  /// reaches a terminal state. Set before run_until_drained.
  using CompletionHook = std::function<void(const JobReport&)>;
  void set_completion_hook(CompletionHook hook);

  /// Type-erased live simulation (defined in job_server.cpp). Public only so
  /// the strategy × policy factory templates there can subclass it.
  class ISimRunner;

 private:
  struct JobEntry;
  struct SliceOutcome;
  struct PreparedSnapshot;

  void runner_loop();
  SliceOutcome run_one_slice(JobEntry& e);
  PreparedSnapshot prepare_snapshot(JobEntry& e, const SliceOutcome& out);
  void apply_outcome(std::unique_lock<exec::chaos::InstrumentedMutex>& lock,
                     std::size_t idx, const SliceOutcome& out,
                     const PreparedSnapshot& prep);
  void materialize(JobEntry& e, SliceOutcome& out);
  bool fits_in_core(const JobEntry& e) const;
  bool evict_retained_for(std::unique_lock<exec::chaos::InstrumentedMutex>& lock,
                          std::size_t needed_bodies);
  void commit_checkpoint(JobEntry& e, const std::string& path, JournalRecordType type);
  void quarantine(JobEntry& e);
  void complete(JobEntry& e, const std::string& result_path);
  [[nodiscard]] bool all_terminal() const;
  [[nodiscard]] JobReport make_report(const JobEntry& e) const;
  AdmitResult admit_internal(JobSpec spec, std::size_t steps_done,
                             std::string checkpoint_file, bool journal_admit);

  ServerOptions opts_;
  std::unique_ptr<JobJournal> journal_;

  mutable exec::chaos::InstrumentedMutex mutex_;
  std::condition_variable_any cv_;
  std::vector<std::unique_ptr<JobEntry>> jobs_;
  std::deque<std::size_t> queue_;         // indices into jobs_, FIFO
  std::size_t bodies_in_core_ = 0;
  std::size_t rejected_ = 0;
  bool shutdown_ = false;
  std::uint64_t wall_deadline_ns_ = 0;    // run_until_drained budget, 0 = none
  CompletionHook completion_hook_;
};

}  // namespace nbody::server
