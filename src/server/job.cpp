#include "server/job.hpp"

#include <cctype>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "workloads/workloads.hpp"

namespace nbody::server {

namespace {

bool valid_id(const std::string& id) {
  if (id.empty() || id.size() > 128) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("job spec: " + what);
}

std::size_t to_size(const std::string& v, const std::string& key) {
  if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos)
    bad(key + "='" + v + "' is not a non-negative integer");
  try {
    return static_cast<std::size_t>(std::stoull(v));
  } catch (const std::exception&) {
    bad(key + "='" + v + "' is out of range");
  }
}

double to_double(const std::string& v, const std::string& key) {
  std::size_t consumed = 0;
  double d = 0;
  try {
    d = std::stod(v, &consumed);
  } catch (const std::exception&) {
    bad(key + "='" + v + "' is not a number");
  }
  if (consumed != v.size()) bad(key + "='" + v + "' has trailing characters");
  return d;
}

bool to_bool(const std::string& v, const std::string& key) {
  if (v == "1" || v == "true") return true;
  if (v == "0" || v == "false") return false;
  bad(key + "='" + v + "' is not a boolean (want 0|1|true|false)");
}

}  // namespace

void validate_job_spec(const JobSpec& spec) {
  if (!valid_id(spec.id))
    bad("id '" + spec.id + "' must be non-empty [A-Za-z0-9._-]+ (max 128 chars)");
  if (spec.workload != "galaxy" && spec.workload != "plummer" &&
      spec.workload != "cube" && spec.workload != "solar" && spec.workload != "poison")
    bad("unknown workload '" + spec.workload + "' (want galaxy|plummer|cube|solar|poison)");
  if (spec.n < 2) bad("n must be >= 2");
  if (spec.steps == 0) bad("steps must be >= 1");
  if (spec.strategy != "octree" && spec.strategy != "bvh" && spec.strategy != "allpairs")
    bad("unknown strategy '" + spec.strategy + "' (want octree|bvh|allpairs)");
  if (spec.policy != "seq" && spec.policy != "par" && spec.policy != "par_unseq")
    bad("unknown policy '" + spec.policy + "' (want seq|par|par_unseq)");
  if (spec.strategy == "octree" && spec.policy == "par_unseq")
    bad("octree needs parallel forward progress: par_unseq is rejected — use par");
  if (!(spec.dt > 0)) bad("dt must be > 0");
  if (!(spec.theta > 0)) bad("theta must be > 0");
  if (spec.softening < 0) bad("softening must be >= 0");
  if (spec.step_deadline_ms < 0 || spec.run_budget_ms < 0 || spec.start_deadline_ms < 0)
    bad("time budgets must be >= 0");
}

std::string serialize_job_spec(const JobSpec& s) {
  std::ostringstream out;
  out << "id=" << s.id << " workload=" << s.workload << " n=" << s.n
      << " seed=" << s.seed << " steps=" << s.steps << " strategy=" << s.strategy
      << " policy=" << s.policy << " dt=" << s.dt << " theta=" << s.theta
      << " softening=" << s.softening << " group_size=" << s.group_size
      << " quadrupole=" << (s.quadrupole ? 1 : 0)
      << " checkpoint_every=" << s.checkpoint_every
      << " step_deadline_ms=" << s.step_deadline_ms
      << " run_budget_ms=" << s.run_budget_ms
      << " start_deadline_ms=" << s.start_deadline_ms
      << " watchdog_ms=" << s.watchdog_ms;
  return out.str();
}

JobSpec parse_job_spec(const std::string& text, const std::string& fallback_id) {
  JobSpec s;
  s.id = fallback_id;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream toks(line);
    std::string tok;
    while (toks >> tok) {
      if (tok[0] == '#') break;  // comment to end of line
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos || eq == 0)
        bad("expected key=value, got '" + tok + "'");
      const std::string key = tok.substr(0, eq);
      const std::string val = tok.substr(eq + 1);
      if (key == "id") s.id = val;
      else if (key == "workload") s.workload = val;
      else if (key == "n") s.n = to_size(val, key);
      else if (key == "seed") s.seed = to_size(val, key);
      else if (key == "steps") s.steps = to_size(val, key);
      else if (key == "strategy") s.strategy = val;
      else if (key == "policy") s.policy = val;
      else if (key == "dt") s.dt = to_double(val, key);
      else if (key == "theta") s.theta = to_double(val, key);
      else if (key == "softening") s.softening = to_double(val, key);
      else if (key == "group_size") s.group_size = to_size(val, key);
      else if (key == "quadrupole") s.quadrupole = to_bool(val, key);
      else if (key == "checkpoint_every") s.checkpoint_every = to_size(val, key);
      else if (key == "step_deadline_ms") s.step_deadline_ms = to_double(val, key);
      else if (key == "run_budget_ms") s.run_budget_ms = to_double(val, key);
      else if (key == "start_deadline_ms") s.start_deadline_ms = to_double(val, key);
      else if (key == "watchdog_ms") s.watchdog_ms = to_double(val, key);
      else bad("unknown key '" + key + "'");
    }
  }
  validate_job_spec(s);
  return s;
}

core::System<double, 3> make_job_system(const JobSpec& spec) {
  if (spec.workload == "galaxy") return workloads::galaxy_collision(spec.n, spec.seed);
  if (spec.workload == "plummer") return workloads::plummer_sphere(spec.n, spec.seed);
  if (spec.workload == "cube") return workloads::uniform_cube(spec.n, spec.seed);
  if (spec.workload == "solar") return workloads::solar_system(spec.n, spec.seed);
  if (spec.workload == "poison") {
    // A healthy-looking galaxy with a NaN planted in body 0: every guarded
    // attempt fails the finite sweep, so only quarantine can retire it.
    auto sys = workloads::galaxy_collision(spec.n, spec.seed);
    sys.x[0][0] = std::numeric_limits<double>::quiet_NaN();
    return sys;
  }
  bad("unknown workload '" + spec.workload + "'");
}

}  // namespace nbody::server
