#include "server/job_server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "allpairs/allpairs.hpp"
#include "bvh/strategy.hpp"
#include "core/integrator.hpp"
#include "core/simulation.hpp"
#include "core/snapshot.hpp"
#include "exec/policy.hpp"
#include "exec/stop_token.hpp"
#include "octree/strategy.hpp"
#include "support/fault.hpp"
#include "support/timer.hpp"

namespace nbody::server {

namespace fs = std::filesystem;

namespace {

std::uint64_t now_ns() { return exec::detail::stop_state::now_ns(); }

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

}  // namespace

const char* job_state_name(JobState s) noexcept {
  switch (s) {
    case JobState::queued: return "queued";
    case JobState::running: return "running";
    case JobState::completed: return "completed";
    case JobState::quarantined: return "quarantined";
    case JobState::shed: return "shed";
    case JobState::suspended: return "suspended";
  }
  return "?";
}

// ---------------------------------------------------------------- runner

/// Type-erased live simulation: one strategy × policy instantiation behind a
/// slice-and-snapshot interface. The Simulation (and with it the in-memory
/// guarded-run machinery) stays alive across slices, so consecutive slices
/// continue the identical trajectory a single uninterrupted run would take.
class JobServer::ISimRunner {
 public:
  virtual ~ISimRunner() = default;
  virtual core::GuardedRunReport run_slice(std::size_t steps,
                                           const core::GuardedOptions<double>& o) = 0;
  /// Writes a synchronized (whole-step velocity) snapshot of the current
  /// state without perturbing the live staggered integrator state.
  virtual void save_snapshot(const std::string& path) = 0;
};

namespace {

template <class Strategy, class Policy>
class SimRunner final : public JobServer::ISimRunner {
 public:
  SimRunner(core::System<double, 3> sys, const core::SimConfig<double>& cfg,
            Strategy strat, Policy policy, obs::MetricsRegistry* metrics)
      : sim_(std::move(sys), cfg, std::move(strat)), policy_(policy) {
    sim_.set_observability(metrics, nullptr);
  }

  core::GuardedRunReport run_slice(std::size_t steps,
                                   const core::GuardedOptions<double>& o) override {
    auto rep = sim_.run_guarded(policy_, steps, o);
    stepped_ = true;
    return rep;
  }

  void save_snapshot(const std::string& path) override {
    // Snapshots store whole-step velocities by contract; synchronize a copy
    // so the live trajectory is not perturbed (snapshot.hpp, simulation.hpp).
    core::System<double, 3> copy = sim_.system();
    if (stepped_) core::leapfrog_synchronize(exec::seq, copy, sim_.config().dt);
    core::save_snapshot_binary(copy, path);
  }

 private:
  core::Simulation<double, 3, Strategy> sim_;
  Policy policy_;
  bool stepped_ = false;  // leapfrog priming happened; velocities staggered
};

template <class Strategy>
std::unique_ptr<JobServer::ISimRunner> make_runner_for(
    core::System<double, 3> sys, const core::SimConfig<double>& cfg, Strategy strat,
    const std::string& policy, obs::MetricsRegistry* metrics) {
  if (policy == "seq")
    return std::make_unique<SimRunner<Strategy, exec::sequenced_policy>>(
        std::move(sys), cfg, std::move(strat), exec::seq, metrics);
  if (policy == "par")
    return std::make_unique<SimRunner<Strategy, exec::parallel_policy>>(
        std::move(sys), cfg, std::move(strat), exec::par, metrics);
  if constexpr (requires(Strategy s, core::StepContext<double, 3>& ctx) {
                  s.accelerations(exec::par_unseq, ctx);
                }) {
    if (policy == "par_unseq")
      return std::make_unique<SimRunner<Strategy, exec::parallel_unsequenced_policy>>(
          std::move(sys), cfg, std::move(strat), exec::par_unseq, metrics);
  }
  throw std::invalid_argument("job policy '" + policy +
                              "' is not runnable with this strategy");
}

std::unique_ptr<JobServer::ISimRunner> make_runner(const JobSpec& spec,
                                                   core::System<double, 3> sys,
                                                   obs::MetricsRegistry* metrics) {
  core::SimConfig<double> cfg;
  cfg.dt = spec.dt;
  cfg.theta = spec.theta;
  cfg.softening = spec.softening;
  cfg.quadrupole = spec.quadrupole;
  cfg.group_size = spec.group_size;
  if (spec.strategy == "octree")
    return make_runner_for(std::move(sys), cfg, octree::OctreeStrategy<double, 3>{},
                           spec.policy, metrics);
  if (spec.strategy == "bvh")
    return make_runner_for(std::move(sys), cfg, bvh::BVHStrategy<double, 3>{},
                           spec.policy, metrics);
  if (spec.strategy == "allpairs")
    return make_runner_for(std::move(sys), cfg, allpairs::AllPairs<double, 3>{},
                           spec.policy, metrics);
  throw std::invalid_argument("unknown job strategy '" + spec.strategy + "'");
}

}  // namespace

// ---------------------------------------------------------------- entries

struct JobServer::JobEntry {
  JobSpec spec;
  JobState state = JobState::queued;
  std::size_t steps_done = 0;
  unsigned slices = 0;
  unsigned failures = 0;
  unsigned consecutive_failures = 0;
  unsigned evictions = 0;
  unsigned restores = 0;
  unsigned watchdog_trips = 0;
  unsigned deadline_misses = 0;
  double wall_ms = 0;
  std::uint64_t admitted_ns = 0;
  std::uint64_t not_before_ns = 0;  // backoff release time
  std::string last_error;
  std::string checkpoint_file;      // last durable snapshot (steps_done state)
  std::string result_path;
  std::string quarantine_path;
  std::vector<std::string> recovery_log;
  obs::MetricsRegistry metrics;     // per-job metrics session
  std::unique_ptr<ISimRunner> runner;  // live between slices when retained
  // An evictor has claimed this queued entry and is snapshotting its runner
  // outside the lock; runners and other evictors must skip it until cleared.
  bool evicting = false;
};

// Everything a slice changed, carried back to apply_outcome so JobEntry
// fields are only ever written under the server lock (reports() may read
// them concurrently). The one exception is e.runner, which nothing else
// touches while the job is `running`.
struct JobServer::SliceOutcome {
  bool ok = false;
  std::string error;
  std::size_t steps_delta = 0;
  bool restarted_from_zero = false;  // corrupt checkpoint: progress reset
  unsigned restores = 0;
  unsigned watchdog_trips = 0;
  unsigned deadline_misses = 0;
  std::vector<std::string> log;
  double wall_ms = 0;
};

// A slice-boundary snapshot written *outside* the server lock (the entry is
// unshared while its job is `running`): holding mutex_ across a full-system
// disk write would serialize every runner thread and block submit()/reports()
// for the I/O duration. apply_outcome only commits the bookkeeping.
struct JobServer::PreparedSnapshot {
  bool is_result = false;  // out/<id>.snap (job finished) vs durable checkpoint
  bool ok = false;         // the write succeeded
  std::string path;
  std::string error;       // when !ok
};

// ---------------------------------------------------------------- server

JobServer::JobServer(ServerOptions opts) : opts_(std::move(opts)) {
  if (opts_.max_concurrent_jobs == 0)
    throw std::invalid_argument("JobServer: max_concurrent_jobs must be >= 1");
  fs::create_directories(fs::path(opts_.work_dir) / "checkpoints");
  fs::create_directories(fs::path(opts_.work_dir) / "out");
  fs::create_directories(fs::path(opts_.work_dir) / "quarantine");
  if (!opts_.journal_path.empty())
    journal_ = std::make_unique<JobJournal>(opts_.journal_path);
}

JobServer::~JobServer() = default;

void JobServer::set_completion_hook(CompletionHook hook) {
  std::lock_guard lock(mutex_);
  completion_hook_ = std::move(hook);
}

std::uint64_t JobServer::journal_lost_writes() const noexcept {
  return journal_ ? journal_->lost_writes() : 0;
}

std::size_t JobServer::rejected_submits() const noexcept {
  std::lock_guard lock(mutex_);
  return rejected_;
}

AdmitResult JobServer::submit(JobSpec spec) {
  return admit_internal(std::move(spec), 0, {}, /*journal_admit=*/true);
}

AdmitResult JobServer::admit_internal(JobSpec spec, std::size_t steps_done,
                                      std::string checkpoint_file, bool journal_admit) {
  try {
    validate_job_spec(spec);
  } catch (const std::exception& e) {
    std::lock_guard lock(mutex_);
    ++rejected_;
    return {false, e.what()};
  }
  std::unique_lock lock(mutex_);
  exec::checkpoint();  // chaos yield: admission is a schedulable decision
  for (const auto& j : jobs_)
    if (j->spec.id == spec.id) {
      ++rejected_;
      return {false, "duplicate job id '" + spec.id + "'"};
    }
  std::size_t live = 0;
  for (const auto& j : jobs_)
    if (j->state == JobState::queued || j->state == JobState::running) ++live;
  if (live >= opts_.queue_capacity) {
    ++rejected_;
    return {false, "backpressure: " + std::to_string(live) + " live jobs >= capacity " +
                       std::to_string(opts_.queue_capacity)};
  }
  try {
    support::fault_point(support::FaultSite::server_admit);
  } catch (const std::exception& e) {
    ++rejected_;
    return {false, std::string("admission fault: ") + e.what()};
  }
  auto entry = std::make_unique<JobEntry>();
  entry->spec = std::move(spec);
  entry->steps_done = steps_done;
  entry->checkpoint_file = std::move(checkpoint_file);
  entry->admitted_ns = now_ns();
  // Journal the admit BEFORE the job becomes runnable: runners poll every
  // 10ms, so a small job could otherwise complete — and journal its terminal
  // record — before its admit record lands, and last-record-wins replay
  // would then resurrect the finished job on the next restart.
  if (journal_ && journal_admit)
    journal_->append(JournalRecordType::admit, entry->spec.id, steps_done,
                     serialize_job_spec(entry->spec));
  jobs_.push_back(std::move(entry));
  queue_.push_back(jobs_.size() - 1);
  lock.unlock();
  cv_.notify_all();
  return {true, {}};
}

std::size_t JobServer::resume_from_journal() {
  if (!journal_) return 0;
  const JournalReplay replay = JobJournal::replay(journal_->path());
  // Fold to the last state per job. Records are appended in order, so a
  // later record supersedes an earlier one.
  struct Folded {
    std::string spec_payload;
    JournalRecordType last = JournalRecordType::admit;
    std::size_t steps = 0;
    std::string checkpoint_file;
    bool seen_admit = false;
  };
  std::vector<std::pair<std::string, Folded>> folded;  // insertion-ordered
  auto slot = [&](const std::string& id) -> Folded& {
    for (auto& [k, v] : folded)
      if (k == id) return v;
    folded.emplace_back(id, Folded{});
    return folded.back().second;
  };
  for (const auto& r : replay.records) {
    Folded& f = slot(r.job_id);
    f.last = r.type;
    switch (r.type) {
      case JournalRecordType::admit:
        f.seen_admit = true;
        f.spec_payload = r.detail;
        // A fresh admit may carry resumed progress (re-admit after restart).
        f.steps = r.steps;
        break;
      case JournalRecordType::checkpoint:
      case JournalRecordType::evict:
        f.steps = r.steps;
        f.checkpoint_file = r.detail;
        break;
      default:
        break;
    }
  }
  std::size_t resumed = 0;
  for (auto& [id, f] : folded) {
    if (!f.seen_admit) continue;
    if (f.last == JournalRecordType::complete || f.last == JournalRecordType::quarantine ||
        f.last == JournalRecordType::shed)
      continue;  // retired
    JobSpec spec;
    try {
      spec = parse_job_spec(f.spec_payload, id);
    } catch (const std::exception&) {
      continue;  // unreplayable admit payload: nothing safe to do
    }
    if (admit_internal(std::move(spec), f.steps, f.checkpoint_file,
                       /*journal_admit=*/true)
            .admitted)
      ++resumed;
  }
  return resumed;
}

void JobServer::request_shutdown() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

bool JobServer::all_terminal() const {
  for (const auto& j : jobs_)
    if (j->state == JobState::queued || j->state == JobState::running) return false;
  return true;
}

bool JobServer::fits_in_core(const JobEntry& e) const {
  if (opts_.memory_budget_bodies == 0 || e.runner != nullptr) return true;
  if (bodies_in_core_ == 0) return true;  // progress guarantee: never wedge
  return bodies_in_core_ + e.spec.n <= opts_.memory_budget_bodies;
}

bool JobServer::evict_retained_for(std::unique_lock<exec::chaos::InstrumentedMutex>& lock,
                                   std::size_t needed_bodies) {
  // Checkpoint-evict retained runners of *queued* jobs (oldest first) until
  // the newcomer fits. Running jobs are never evicted mid-slice. Each victim
  // is claimed via its `evicting` flag and snapshotted with the lock
  // dropped, so the eviction I/O never stalls the other runners. Returns
  // whether anything was evicted; when true the lock was released, so the
  // caller's scan state is stale and must be restarted.
  bool evicted_any = false;
  std::vector<std::size_t> attempted;  // jobs_ indices tried this call
  const auto tried = [&](std::size_t idx) {
    return std::find(attempted.begin(), attempted.end(), idx) != attempted.end();
  };
  for (;;) {
    if (bodies_in_core_ + needed_bodies <= opts_.memory_budget_bodies) break;
    std::size_t victim = kNone;
    for (const std::size_t idx : queue_) {
      const JobEntry& e = *jobs_[idx];
      if (e.state == JobState::queued && e.runner && !e.evicting && !tried(idx)) {
        victim = idx;
        break;
      }
    }
    if (victim == kNone) break;
    attempted.push_back(victim);
    JobEntry& e = *jobs_[victim];
    e.evicting = true;
    const std::string path = (fs::path(opts_.work_dir) / "checkpoints" /
                              (e.spec.id + "." + std::to_string(e.steps_done) + ".snap"))
                                 .string();
    lock.unlock();
    bool ok = false;
    std::string error;
    try {
      e.runner->save_snapshot(path);  // throws on I/O failure
      ok = true;
    } catch (const std::exception& ex) {
      error = ex.what();
    }
    lock.lock();
    e.evicting = false;
    if (ok) {
      commit_checkpoint(e, path, JournalRecordType::evict);
      e.runner.reset();
      bodies_in_core_ -= e.spec.n;
      ++e.evictions;
      evicted_any = true;
    } else {
      // Can't persist its state: keep it in core rather than lose progress.
      e.recovery_log.push_back("eviction checkpoint failed: " + error);
    }
  }
  return evicted_any;
}

/// Commits an already-written snapshot: records it as the job's durable
/// checkpoint and journals it. Snapshot-then-journal is crash-atomic by
/// construction — see journal.hpp.
void JobServer::commit_checkpoint(JobEntry& e, const std::string& path,
                                  JournalRecordType type) {
  const std::string previous = e.checkpoint_file;
  e.checkpoint_file = path;
  if (journal_) journal_->append(type, e.spec.id, e.steps_done, path);
  if (!previous.empty() && previous != path) {
    std::error_code ec;
    fs::remove(previous, ec);  // best-effort cleanup of the superseded file
  }
}

void JobServer::quarantine(JobEntry& e) {
  const std::string path =
      (fs::path(opts_.work_dir) / "quarantine" / (e.spec.id + ".txt")).string();
  try {
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      out << "poison job quarantined: " << e.spec.id << "\n"
          << "spec: " << serialize_job_spec(e.spec) << "\n"
          << "steps_done: " << e.steps_done << "/" << e.spec.steps << "\n"
          << "slices: " << e.slices << " failures: " << e.failures
          << " (consecutive: " << e.consecutive_failures << ")\n"
          << "guarded restores: " << e.restores
          << " watchdog trips: " << e.watchdog_trips
          << " deadline misses: " << e.deadline_misses << "\n"
          << "last error: " << e.last_error << "\n";
      if (const auto faults = support::armed_faults_description(); !faults.empty())
        out << "armed faults:\n" << faults << "\n";
      out << "recovery log:\n";
      for (const auto& line : e.recovery_log) out << "  " << line << "\n";
      if (!e.checkpoint_file.empty())
        out << "last good checkpoint: " << e.checkpoint_file << "\n";
    }
    core::snapshot_detail::commit_tmp_file(tmp, path, "quarantine bundle");
    e.quarantine_path = path;
  } catch (const std::exception& ex) {
    e.recovery_log.push_back(std::string("quarantine bundle write failed: ") + ex.what());
  }
  e.state = JobState::quarantined;
  if (journal_)
    journal_->append(JournalRecordType::quarantine, e.spec.id, e.steps_done,
                     e.quarantine_path.empty() ? e.last_error : e.quarantine_path);
}

void JobServer::complete(JobEntry& e, const std::string& result_path) {
  // The result snapshot (and optional metrics export) was already written
  // outside the lock by prepare_snapshot; this is bookkeeping only.
  e.result_path = result_path;
  e.runner.reset();
  bodies_in_core_ -= e.spec.n;
  e.state = JobState::completed;
  if (journal_)
    journal_->append(JournalRecordType::complete, e.spec.id, e.steps_done, result_path);
  if (!e.checkpoint_file.empty()) {
    std::error_code ec;
    fs::remove(e.checkpoint_file, ec);
    e.checkpoint_file.clear();
  }
}

void JobServer::materialize(JobEntry& e, SliceOutcome& out) {
  core::System<double, 3> sys;
  if (e.steps_done > 0 && !e.checkpoint_file.empty() && !out.restarted_from_zero) {
    try {
      sys = core::load_snapshot_binary<double, 3>(e.checkpoint_file);
    } catch (const std::exception& ex) {
      // Corrupt/truncated checkpoint: fail *cleanly* into the retry ladder —
      // restart the job from its workload recipe rather than propagate UB.
      out.log.push_back("checkpoint '" + e.checkpoint_file + "' unusable (" +
                        ex.what() + "); restarting from step 0");
      out.restarted_from_zero = true;
      sys = make_job_system(e.spec);
    }
  } else {
    sys = make_job_system(e.spec);
  }
  e.runner = make_runner(e.spec, std::move(sys), &e.metrics);
}

JobServer::SliceOutcome JobServer::run_one_slice(JobEntry& e) {
  SliceOutcome out;
  support::Stopwatch timer;
  try {
    support::fault_point(support::FaultSite::server_dispatch);
    if (!e.runner) materialize(e, out);
    const std::size_t done = out.restarted_from_zero ? 0 : e.steps_done;
    core::GuardedOptions<double> gopts;
    gopts.checkpoint_every = e.spec.checkpoint_every;
    gopts.max_retries = opts_.guard_max_retries;
    gopts.step_deadline_ms = e.spec.step_deadline_ms;
    gopts.watchdog_ms =
        e.spec.watchdog_ms >= 0 ? e.spec.watchdog_ms : opts_.default_watchdog_ms;
    if (e.spec.run_budget_ms > 0) {
      const double remaining = e.spec.run_budget_ms - e.wall_ms;
      if (remaining <= 0)
        throw std::runtime_error("job wall budget (" +
                                 std::to_string(e.spec.run_budget_ms) + "ms) exhausted");
      gopts.run_deadline_ms = remaining;
    }
    std::size_t todo = e.spec.steps - done;
    if (opts_.slice_steps > 0) todo = std::min(todo, opts_.slice_steps);
    const auto rep = e.runner->run_slice(todo, gopts);
    out.steps_delta = rep.steps_completed;
    out.restores = rep.restores;
    out.watchdog_trips = rep.watchdog_trips;
    out.deadline_misses = rep.deadline_misses;
    for (const auto& ev : rep.log)
      out.log.push_back("step " + std::to_string(ev.step) + ": " + ev.reason + " -> " +
                        ev.action);
    out.ok = true;
  } catch (const std::exception& ex) {
    out.error = ex.what();
  }
  out.wall_ms = timer.seconds() * 1e3;
  return out;
}

// Runs on the runner thread with the lock dropped, after the slice and
// before apply_outcome. The entry is unshared while its job is `running`
// (reports() only reads fields apply_outcome writes under the lock), so the
// snapshot I/O — the expensive part of every slice boundary — happens
// without serializing the other runners.
JobServer::PreparedSnapshot JobServer::prepare_snapshot(JobEntry& e,
                                                        const SliceOutcome& out) {
  PreparedSnapshot prep;
  if (!out.ok) return prep;  // failed slice: its in-memory state is suspect
  const std::size_t base = out.restarted_from_zero ? 0 : e.steps_done;
  const std::size_t new_steps = base + out.steps_delta;
  prep.is_result = new_steps >= e.spec.steps;
  prep.path = prep.is_result
                  ? (fs::path(opts_.work_dir) / "out" / (e.spec.id + ".snap")).string()
                  : (fs::path(opts_.work_dir) / "checkpoints" /
                     (e.spec.id + "." + std::to_string(new_steps) + ".snap"))
                        .string();
  try {
    e.runner->save_snapshot(prep.path);  // throws on I/O failure
    prep.ok = true;
  } catch (const std::exception& ex) {
    prep.error = ex.what();
  }
  if (prep.is_result && prep.ok && opts_.export_job_metrics) {
    try {
      e.metrics.write_json(
          (fs::path(opts_.work_dir) / "out" / (e.spec.id + ".metrics.json")).string());
    } catch (const std::exception&) {
      // Metrics export is best-effort; the result snapshot is the contract.
    }
  }
  return prep;
}

void JobServer::apply_outcome(std::unique_lock<exec::chaos::InstrumentedMutex>& lock,
                              std::size_t idx, const SliceOutcome& out,
                              const PreparedSnapshot& prep) {
  JobEntry& e = *jobs_[idx];
  ++e.slices;
  e.wall_ms += out.wall_ms;
  if (out.restarted_from_zero) {
    e.steps_done = 0;
    e.checkpoint_file.clear();
  }
  e.restores += out.restores;
  e.watchdog_trips += out.watchdog_trips;
  e.deadline_misses += out.deadline_misses;
  for (const auto& line : out.log) e.recovery_log.push_back(line);
  bool terminal = false;
  if (out.ok) {
    e.steps_done += out.steps_delta;
    e.consecutive_failures = 0;
    if (prep.is_result) {
      if (prep.ok) {
        complete(e, prep.path);
        terminal = true;
      } else {
        // Result write failed: the trajectory itself is fine, so keep the
        // runner alive and retry the write after a short backoff.
        ++e.failures;
        ++e.consecutive_failures;
        e.last_error = "result write failed: " + prep.error;
        e.recovery_log.push_back(e.last_error);
        e.state = JobState::queued;
        e.not_before_ns =
            now_ns() + static_cast<std::uint64_t>(opts_.backoff_base_ms * 1e6);
        queue_.push_back(idx);
      }
    } else {
      // Durable progress (already on disk), then either suspend on shutdown
      // or round-robin: requeue behind any waiters.
      if (prep.ok)
        commit_checkpoint(e, prep.path, JournalRecordType::checkpoint);
      else
        e.recovery_log.push_back("checkpoint write failed: " + prep.error);
      if (shutdown_) {
        e.runner.reset();
        bodies_in_core_ -= e.spec.n;
        e.state = JobState::suspended;
      } else {
        e.state = JobState::queued;
        queue_.push_back(idx);
      }
    }
  } else {
    ++e.failures;
    ++e.consecutive_failures;
    e.last_error = out.error;
    e.recovery_log.push_back("slice failed: " + out.error);
    // The failed attempt's in-memory state is suspect; fall back to the last
    // durable checkpoint (or a fresh start) on the retry. The job was
    // counted in-core when claimed, whether or not materialization ran.
    e.runner.reset();
    bodies_in_core_ -= e.spec.n;
    if (e.consecutive_failures >= opts_.job_retries) {
      quarantine(e);
      terminal = true;
    } else {
      // Clamp the exponent: job_retries above 32 would otherwise shift past
      // the width of unsigned (UB). The cap bounds the result anyway.
      const unsigned exponent = std::min(e.consecutive_failures - 1, 31u);
      const double backoff =
          std::min(opts_.backoff_cap_ms,
                   opts_.backoff_base_ms * static_cast<double>(1u << exponent));
      e.not_before_ns = now_ns() + static_cast<std::uint64_t>(backoff * 1e6);
      e.state = JobState::queued;
      if (journal_)
        journal_->append(JournalRecordType::retry, e.spec.id, e.steps_done, out.error);
      queue_.push_back(idx);
    }
  }
  if (terminal && completion_hook_) {
    const JobReport report = make_report(e);
    auto hook = completion_hook_;
    lock.unlock();
    hook(report);
    lock.lock();
  }
}

void JobServer::runner_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    exec::checkpoint();  // chaos yield: the dispatch decision point
    if (wall_deadline_ns_ != 0 && now_ns() >= wall_deadline_ns_) shutdown_ = true;
    if (shutdown_) return;
    if (all_terminal()) {
      cv_.notify_all();
      return;
    }
    const std::uint64_t now = now_ns();
    std::size_t picked = kNone;
    std::uint64_t earliest_wake = 0;
    bool rescan = false;
    // Shed decisions are collected during the scan and their hooks invoked
    // after it, outside the lock: unlocking mid-scan would let other runners
    // mutate queue_ under our feet and skip/re-examine entries this round.
    std::vector<JobReport> shed_reports;
    for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
      const std::size_t idx = queue_[qi];
      JobEntry& e = *jobs_[idx];
      if (e.state != JobState::queued) {  // stale index (defensive)
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(qi));
        --qi;
        continue;
      }
      if (e.evicting) continue;  // an evictor owns it while snapshotting
      // Deadline-aware shedding: too late to start is a decision, not a run.
      if (e.spec.start_deadline_ms > 0 && e.steps_done == 0 &&
          static_cast<double>(now - e.admitted_ns) * 1e-6 > e.spec.start_deadline_ms) {
        e.state = JobState::shed;
        e.last_error = "start deadline (" + std::to_string(e.spec.start_deadline_ms) +
                       "ms) passed while queued";
        if (journal_)
          journal_->append(JournalRecordType::shed, e.spec.id, 0, e.last_error);
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(qi));
        --qi;
        if (completion_hook_) shed_reports.push_back(make_report(e));
        continue;
      }
      if (e.not_before_ns > now) {  // backing off
        if (earliest_wake == 0 || e.not_before_ns < earliest_wake)
          earliest_wake = e.not_before_ns;
        continue;
      }
      if (!fits_in_core(e)) {
        if (evict_retained_for(lock, e.spec.n)) {
          // Eviction dropped the lock: the queue — and this candidate — may
          // have changed hands. Restart the scan with fresh state.
          rescan = true;
          break;
        }
        continue;  // nothing evictable: skip this round
      }
      picked = qi;
      break;
    }
    if (picked == kNone) {
      if (!shed_reports.empty()) {
        if (auto hook = completion_hook_) {
          lock.unlock();
          for (const auto& report : shed_reports) hook(report);
          lock.lock();
        }
        continue;  // hooks ran unlocked: rescan rather than wait on stale state
      }
      if (rescan) continue;
      using namespace std::chrono_literals;
      auto wait = 10ms;
      if (earliest_wake != 0 && earliest_wake > now)
        wait = std::min(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::nanoseconds(earliest_wake - now)) + 1ms,
            std::chrono::milliseconds(50));
      cv_.wait_for(lock, wait);
      continue;
    }
    const std::size_t idx = queue_[picked];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(picked));
    JobEntry& e = *jobs_[idx];
    e.state = JobState::running;
    if (!e.runner) bodies_in_core_ += e.spec.n;  // claimed for materialization
    CompletionHook shed_hook;
    if (!shed_reports.empty()) shed_hook = completion_hook_;
    lock.unlock();
    if (shed_hook)
      for (const auto& report : shed_reports) shed_hook(report);
    const SliceOutcome out = run_one_slice(e);
    const PreparedSnapshot prep = prepare_snapshot(e, out);
    lock.lock();
    apply_outcome(lock, idx, out, prep);
    cv_.notify_all();
  }
}

void JobServer::run_until_drained() {
  {
    std::lock_guard lock(mutex_);
    wall_deadline_ns_ =
        opts_.wall_budget_ms > 0
            ? now_ns() + static_cast<std::uint64_t>(opts_.wall_budget_ms * 1e6)
            : 0;
  }
  std::vector<std::thread> runners;
  runners.reserve(opts_.max_concurrent_jobs);
  for (std::size_t r = 0; r < opts_.max_concurrent_jobs; ++r)
    runners.emplace_back([this] { runner_loop(); });
  for (auto& t : runners) t.join();
  // Anything still live was stopped by shutdown/wall budget: suspend it
  // (queued jobs keep their last durable checkpoint; nothing is running).
  std::lock_guard lock(mutex_);
  for (auto& j : jobs_) {
    if (j->state == JobState::queued || j->state == JobState::running) {
      j->state = JobState::suspended;
      if (j->runner) {
        j->runner.reset();
        bodies_in_core_ -= j->spec.n;
      }
    }
  }
  queue_.clear();
}

JobReport JobServer::make_report(const JobEntry& e) const {
  JobReport r;
  r.spec = e.spec;
  r.state = e.state;
  r.steps_done = e.steps_done;
  r.slices = e.slices;
  r.failures = e.failures;
  r.evictions = e.evictions;
  r.restores = e.restores;
  r.watchdog_trips = e.watchdog_trips;
  r.deadline_misses = e.deadline_misses;
  r.wall_ms = e.wall_ms;
  r.last_error = e.last_error;
  r.result_path = e.result_path;
  r.quarantine_path = e.quarantine_path;
  r.recovery_log = e.recovery_log;
  return r;
}

std::vector<JobReport> JobServer::reports() const {
  std::lock_guard lock(mutex_);
  std::vector<JobReport> out;
  out.reserve(jobs_.size());
  for (const auto& j : jobs_) out.push_back(make_report(*j));
  return out;
}

JobReport JobServer::report_for(const std::string& id) const {
  std::lock_guard lock(mutex_);
  for (const auto& j : jobs_)
    if (j->spec.id == id) return make_report(*j);
  throw std::invalid_argument("JobServer: unknown job id '" + id + "'");
}

}  // namespace nbody::server
