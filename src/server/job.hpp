// Job descriptions for the multi-simulation JobServer (server/job_server.hpp).
//
// A JobSpec is one independent simulation: a workload recipe (so the spec is
// a few dozen bytes and fully replayable from the journal), the SimConfig
// knobs, the strategy/policy pair, and the job's robustness budgets. Specs
// travel three ways — as `key=value` job files in a --jobs-dir, as the
// payload of journal `admit` records, and programmatically from tests — so
// parse/serialize round-trip exactly.
//
// The "poison" workload is deliberate: a galaxy system with a non-finite
// position planted in body 0. Every guarded attempt fails its finite sweep,
// every retry ladder bottoms out, and the server's quarantine policy is the
// only thing that can retire it — the canonical poison-job fixture for the
// E2E robustness tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/system.hpp"

namespace nbody::server {

struct JobSpec {
  /// Identifier: [A-Za-z0-9._-]+, unique per server. Doubles as the stem of
  /// the job's checkpoint/result/quarantine file names.
  std::string id;

  // ---- what to simulate ----
  std::string workload = "galaxy";  // galaxy|plummer|cube|solar|poison
  std::size_t n = 256;              // body count
  std::uint64_t seed = 42;          // workload RNG seed
  std::size_t steps = 100;          // total steps to integrate
  std::string strategy = "octree";  // octree|bvh|allpairs
  std::string policy = "par";       // seq|par|par_unseq (par_unseq: bvh/allpairs)
  double dt = 1e-3;
  double theta = 0.5;
  double softening = 0.05;
  std::size_t group_size = 0;
  bool quadrupole = false;

  // ---- robustness budgets ----
  /// Guarded-run checkpoint cadence inside a slice.
  std::size_t checkpoint_every = 8;
  /// Per-step wall budget (0 = none), enforced by run_guarded's deadline.
  double step_deadline_ms = 0;
  /// Total wall budget across every attempt of this job (0 = none); the
  /// remaining budget is armed as each slice's run deadline.
  double run_budget_ms = 0;
  /// Load-shedding deadline: if the job has not *started* within this many
  /// ms of admission, it is shed instead of run (0 = never shed).
  double start_deadline_ms = 0;
  /// Stall window for this job's watchdog; < 0 = use the server default.
  double watchdog_ms = -1;
};

/// Throws std::invalid_argument when a spec is not runnable (bad id, unknown
/// workload/strategy/policy, zero n/steps, octree+par_unseq, ...).
void validate_job_spec(const JobSpec& spec);

/// One-line `key=value` form (space-separated) — the journal payload.
std::string serialize_job_spec(const JobSpec& spec);

/// Parses `key=value` pairs separated by whitespace or newlines; lines
/// starting with '#' are comments. Unknown keys are rejected. When the text
/// carries no `id`, `fallback_id` is used. Throws std::invalid_argument.
JobSpec parse_job_spec(const std::string& text, const std::string& fallback_id = "");

/// Materializes the job's initial system from its workload recipe.
core::System<double, 3> make_job_system(const JobSpec& spec);

}  // namespace nbody::server
