// Paper-style result tables for the benchmark harness.
//
// Each bench binary prints one or more tables whose rows mirror the data
// points of the corresponding paper figure (see DESIGN.md §3), and — when
// NBODY_CSV=1 — writes the same rows as <name>.csv in the working directory
// for post-processing.
#pragma once

#include <string>
#include <variant>
#include <vector>

namespace nbody::bench_support {

class Table {
 public:
  using Cell = std::variant<std::string, double, long long>;

  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<Cell> cells);

  /// Prints the table to stdout with aligned columns.
  void print() const;

  /// Writes `<file_stem>.csv` when NBODY_CSV=1; returns whether it wrote.
  bool maybe_write_csv(const std::string& file_stem) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  [[nodiscard]] static std::string to_string(const Cell& c);

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Throughput in the unit the paper's figures use: bodies advanced per
/// second of wall time (bodies * steps / seconds).
double throughput_bodies_per_s(std::size_t bodies, std::size_t steps, double seconds);

}  // namespace nbody::bench_support
