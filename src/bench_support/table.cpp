#include "bench_support/table.hpp"

#include <cstdio>
#include <fstream>
#include <utility>

#include "support/assert.hpp"
#include "support/env.hpp"

namespace nbody::bench_support {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::vector<Cell> cells) {
  NBODY_REQUIRE(cells.size() == columns_.size(), "Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string(const Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* d = std::get_if<double>(&c)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4g", *d);
    return buf;
  }
  return std::to_string(std::get<long long>(c));
}

void Table::print() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(to_string(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    cells.push_back(std::move(r));
  }
  std::printf("\n== %s ==\n", title_.c_str());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    std::printf("%-*s  ", static_cast<int>(widths[c]), columns_[c].c_str());
  std::printf("\n");
  for (std::size_t c = 0; c < columns_.size(); ++c)
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  std::printf("\n");
  for (const auto& row : cells) {
    for (std::size_t c = 0; c < row.size(); ++c)
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    std::printf("\n");
  }
  std::fflush(stdout);
}

bool Table::maybe_write_csv(const std::string& file_stem) const {
  if (!support::env_flag("NBODY_CSV")) return false;
  std::ofstream out(file_stem + ".csv");
  if (!out) return false;
  for (std::size_t c = 0; c < columns_.size(); ++c)
    out << (c ? "," : "") << columns_[c];
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      out << (c ? "," : "") << to_string(row[c]);
    out << '\n';
  }
  return true;
}

double throughput_bodies_per_s(std::size_t bodies, std::size_t steps, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bodies) * static_cast<double>(steps) / seconds;
}

}  // namespace nbody::bench_support
