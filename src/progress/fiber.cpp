#include "progress/fiber.hpp"

#include <cstdint>

#include "support/assert.hpp"

namespace nbody::progress {

namespace {
// The fiber currently executing on this thread (nullptr = scheduler/host).
thread_local Fiber* t_current = nullptr;
}  // namespace

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(stack_bytes) {
  NBODY_REQUIRE(stack_bytes >= 16 * 1024, "Fiber: stack too small");
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>((static_cast<std::uintptr_t>(hi) << 32) |
                                        static_cast<std::uintptr_t>(lo));
  self->run();
  // Returning from the ucontext entry point would terminate the thread;
  // instead mark done and switch back to the resumer.
  self->done_ = true;
  swapcontext(&self->context_, &self->return_context_);
}

void Fiber::run() { fn_(); }

void Fiber::resume() {
  NBODY_ASSERT_MSG(!done_, "Fiber::resume on finished fiber");
  if (!started_) {
    started_ = true;
    [[maybe_unused]] int rc = getcontext(&context_);
    NBODY_ASSERT(rc == 0);
    context_.uc_stack.ss_sp = stack_.data();
    context_.uc_stack.ss_size = stack_.size();
    context_.uc_link = nullptr;  // we always swap back explicitly
    const auto p = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(p >> 32), static_cast<unsigned>(p & 0xffffffffu));
  }
  Fiber* prev = t_current;
  t_current = this;
  swapcontext(&return_context_, &context_);
  t_current = prev;
}

void Fiber::yield() {
  Fiber* self = t_current;
  if (self == nullptr) return;
  swapcontext(&self->context_, &self->return_context_);
}

bool Fiber::in_fiber() noexcept { return t_current != nullptr; }

}  // namespace nbody::progress
