#include "progress/scheduler.hpp"

#include <memory>
#include <vector>

#include "exec/policy.hpp"
#include "progress/fiber.hpp"
#include "support/assert.hpp"

namespace nbody::progress {

namespace {

struct SchedulerState {
  bool last_yield_was_wait = false;
};

void checkpoint_hook(void* ctx, bool waiting) {
  if (!Fiber::in_fiber()) return;
  auto* state = static_cast<SchedulerState*>(ctx);
  state->last_yield_was_wait = waiting;
  Fiber::yield();
}

}  // namespace

run_result run_lanes(unsigned lanes, schedule_mode mode, std::uint64_t max_steps,
                     const std::function<void(unsigned)>& work) {
  NBODY_REQUIRE(lanes >= 1, "run_lanes: need at least one lane");

  SchedulerState state;
  exec::set_checkpoint_hook(&checkpoint_hook, &state);

  std::vector<std::unique_ptr<Fiber>> fibers;
  fibers.reserve(lanes);
  for (unsigned l = 0; l < lanes; ++l) {
    fibers.push_back(std::make_unique<Fiber>([&work, l] { work(l); }));
  }

  run_result result;
  unsigned lane = 0;
  unsigned finished = 0;
  while (finished < lanes && result.steps < max_steps) {
    // Find the lane to run. `lane` always points at the preferred candidate.
    while (fibers[lane]->done()) lane = (lane + 1) % lanes;

    state.last_yield_was_wait = false;
    fibers[lane]->resume();
    ++result.steps;

    if (fibers[lane]->done()) {
      ++finished;
      lane = (lane + 1) % lanes;
      continue;
    }
    switch (mode) {
      case schedule_mode::fair:
        // Parallel forward progress: every yielded lane is eventually
        // rescheduled — plain round-robin.
        lane = (lane + 1) % lanes;
        break;
      case schedule_mode::lockstep:
        // Weakly parallel forward progress: a lane that yielded because it
        // is *waiting* keeps being re-executed (the diverged spinning branch
        // of a warp); only lanes that yielded at an ordinary progress point
        // release the "warp" to the next lane.
        if (!state.last_yield_was_wait) lane = (lane + 1) % lanes;
        break;
    }
  }

  exec::set_checkpoint_hook(nullptr, nullptr);
  result.completed = (finished == lanes);
  result.finished_lanes = finished;
  return result;
}

}  // namespace nbody::progress
