// Forward-progress simulator.
//
// Runs L logical lanes (fibers) on the calling thread under one of two
// scheduling disciplines and reports whether the workload completed within a
// step budget:
//
//   fair      — round-robin over unfinished lanes. Every lane that yields is
//               eventually resumed: this is *parallel forward progress*, the
//               guarantee NVIDIA's Independent Thread Scheduling provides
//               and the par policy requires.
//   lockstep  — models SIMT execution without ITS (*weakly parallel forward
//               progress*): when a lane yields from a spin-wait the
//               scheduler keeps re-running that same lane, exactly the way
//               a diverged warp can keep executing its spinning branch and
//               never reconverge to let the lock-holding branch run.
//
// Under `fair` the paper's starvation-free octree build completes; under
// `lockstep` it livelocks as soon as two lanes contend for a leaf — which is
// the mechanism behind "attempts to run Octree on Intel and AMD GPUs
// reliably caused them to hang" (paper Sec. V-B). The lock-free BVH pipeline
// completes under both. tests/test_progress.cpp asserts both facts.
#pragma once

#include <cstdint>
#include <functional>

#include "support/function_ref.hpp"

namespace nbody::progress {

enum class schedule_mode : std::uint8_t {
  fair,      // parallel forward progress (ITS-like)
  lockstep,  // weakly parallel forward progress (non-ITS SIMT-like)
};

struct run_result {
  bool completed = false;   // all lanes finished within the step budget
  std::uint64_t steps = 0;  // fiber resumes consumed
  unsigned finished_lanes = 0;
};

/// Executes work(lane) for lane in [0, lanes) as fibers on this thread under
/// `mode`. A run that exceeds `max_steps` resumes is reported as not
/// completed (livelock/starvation detected) and the remaining fibers are
/// abandoned in place — their stacks are freed but destructors of locals on
/// those stacks do not run, so `work` must not own resources when starved.
/// While inside the simulator, exec::checkpoint hooks are installed so the
/// library's spin loops yield to the scheduler.
run_result run_lanes(unsigned lanes, schedule_mode mode, std::uint64_t max_steps,
                     const std::function<void(unsigned)>& work);

}  // namespace nbody::progress
