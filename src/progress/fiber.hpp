// Minimal stackful coroutine (fiber) on top of POSIX ucontext.
//
// Fibers are the substrate of the forward-progress simulator: many logical
// "GPU lanes" multiplexed on one OS thread, switched only at the cooperative
// checkpoints the library's spin loops and critical sections emit. This lets
// tests and benches *schedule* the concurrent tree algorithms adversarially
// and observe starvation, which real preemptive threads cannot demonstrate
// deterministically.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <ucontext.h>
#include <vector>

namespace nbody::progress {

class Fiber {
 public:
  /// Creates a suspended fiber that will run `fn` when first resumed.
  explicit Fiber(std::function<void()> fn, std::size_t stack_bytes = 256 * 1024);
  ~Fiber() = default;

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// True once `fn` has returned.
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Switches from the scheduler into the fiber; returns when the fiber
  /// yields or finishes. Must not be called on a finished fiber.
  void resume();

  /// Yields from inside the currently running fiber back to its resumer.
  /// No-op when called outside any fiber.
  static void yield();

  /// True when the calling code executes inside a fiber.
  static bool in_fiber() noexcept;

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run();

  std::function<void()> fn_;
  std::vector<unsigned char> stack_;
  ucontext_t context_{};
  ucontext_t return_context_{};
  bool started_ = false;
  bool done_ = false;
};

}  // namespace nbody::progress
