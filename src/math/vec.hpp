// Fixed-dimension vector type used throughout the library.
//
// Dimension is a template parameter: the paper's exposition uses a 2-D
// quadtree (Fig. 1) while the evaluation is 3-D; both are first-class here
// (D = 2 builds quadtrees, D = 3 builds octrees, and the Barnes-Hut-SNE
// example runs in 2-D).
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <limits>
#include <ostream>

namespace nbody::math {

template <class T, std::size_t D>
struct vec {
  static_assert(D >= 1 && D <= 4, "nbody::math::vec supports 1..4 dimensions");
  using value_type = T;
  static constexpr std::size_t dim = D;

  std::array<T, D> v{};

  constexpr T& operator[](std::size_t i) { return v[i]; }
  constexpr const T& operator[](std::size_t i) const { return v[i]; }

  /// Vector with all components equal to `s`.
  static constexpr vec splat(T s) {
    vec r;
    for (std::size_t i = 0; i < D; ++i) r.v[i] = s;
    return r;
  }

  static constexpr vec zero() { return splat(T(0)); }

  /// Identity for component-wise min reductions.
  static constexpr vec max_sentinel() { return splat(std::numeric_limits<T>::max()); }
  /// Identity for component-wise max reductions.
  static constexpr vec lowest_sentinel() { return splat(std::numeric_limits<T>::lowest()); }

  constexpr vec& operator+=(const vec& o) {
    for (std::size_t i = 0; i < D; ++i) v[i] += o.v[i];
    return *this;
  }
  constexpr vec& operator-=(const vec& o) {
    for (std::size_t i = 0; i < D; ++i) v[i] -= o.v[i];
    return *this;
  }
  constexpr vec& operator*=(T s) {
    for (std::size_t i = 0; i < D; ++i) v[i] *= s;
    return *this;
  }
  constexpr vec& operator/=(T s) {
    for (std::size_t i = 0; i < D; ++i) v[i] /= s;
    return *this;
  }

  friend constexpr vec operator+(vec a, const vec& b) { return a += b; }
  friend constexpr vec operator-(vec a, const vec& b) { return a -= b; }
  friend constexpr vec operator*(vec a, T s) { return a *= s; }
  friend constexpr vec operator*(T s, vec a) { return a *= s; }
  friend constexpr vec operator/(vec a, T s) { return a /= s; }
  friend constexpr vec operator-(vec a) {
    for (std::size_t i = 0; i < D; ++i) a.v[i] = -a.v[i];
    return a;
  }

  friend constexpr bool operator==(const vec& a, const vec& b) { return a.v == b.v; }
  friend constexpr bool operator!=(const vec& a, const vec& b) { return !(a == b); }
};

template <class T, std::size_t D>
constexpr T dot(const vec<T, D>& a, const vec<T, D>& b) {
  T s{};
  for (std::size_t i = 0; i < D; ++i) s += a[i] * b[i];
  return s;
}

template <class T, std::size_t D>
constexpr T norm2(const vec<T, D>& a) {
  return dot(a, a);
}

template <class T, std::size_t D>
T norm(const vec<T, D>& a) {
  return std::sqrt(norm2(a));
}

/// 3-D cross product.
template <class T>
constexpr vec<T, 3> cross(const vec<T, 3>& a, const vec<T, 3>& b) {
  return {{a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
           a[0] * b[1] - a[1] * b[0]}};
}

/// z-component of the cross product of two in-plane vectors (the scalar
/// angular momentum of 2-D systems).
template <class T>
constexpr T cross_z(const vec<T, 2>& a, const vec<T, 2>& b) {
  return a[0] * b[1] - a[1] * b[0];
}

/// Component-wise minimum — the reduction operator of the paper's
/// CalculateBoundingBox step (Algorithm 3).
template <class T, std::size_t D>
constexpr vec<T, D> min(const vec<T, D>& a, const vec<T, D>& b) {
  vec<T, D> r;
  for (std::size_t i = 0; i < D; ++i) r[i] = a[i] < b[i] ? a[i] : b[i];
  return r;
}

/// Component-wise maximum.
template <class T, std::size_t D>
constexpr vec<T, D> max(const vec<T, D>& a, const vec<T, D>& b) {
  vec<T, D> r;
  for (std::size_t i = 0; i < D; ++i) r[i] = a[i] > b[i] ? a[i] : b[i];
  return r;
}

/// Largest component.
template <class T, std::size_t D>
constexpr T max_component(const vec<T, D>& a) {
  T m = a[0];
  for (std::size_t i = 1; i < D; ++i) m = a[i] > m ? a[i] : m;
  return m;
}

template <class T, std::size_t D>
std::ostream& operator<<(std::ostream& os, const vec<T, D>& a) {
  os << '(';
  for (std::size_t i = 0; i < D; ++i) os << (i ? "," : "") << a[i];
  return os << ')';
}

using vec2d = vec<double, 2>;
using vec3d = vec<double, 3>;
using vec2f = vec<float, 2>;
using vec3f = vec<float, 3>;

}  // namespace nbody::math
