// The gravitational pair kernel (paper Eq. 1) with Plummer softening.
//
// Softening replaces 1/r^3 with 1/(r^2 + eps^2)^(3/2); eps = 0 recovers the
// exact Newtonian kernel. All force-calculation strategies (all-pairs,
// octree, BVH) call this one function so accuracy comparisons isolate the
// approximation, not the kernel.
#pragma once

#include <cmath>

#include "math/vec.hpp"

namespace nbody::math {

/// Acceleration contribution on a body at `xi` from a point mass `mj` at
/// `xj`:  G * mj * (xj - xi) / (|xj - xi|^2 + eps^2)^(3/2).
///
/// Returns zero when the two positions coincide and eps == 0 (self-
/// interaction guard), matching the j != i exclusion in Eq. 1.
template <class T, std::size_t D>
inline vec<T, D> gravity_accel(const vec<T, D>& xi, const vec<T, D>& xj, T mj, T G,
                               T eps2) {
  const vec<T, D> d = xj - xi;
  const T r2 = norm2(d) + eps2;
  if (r2 <= T(0)) return vec<T, D>::zero();
  const T inv_r = T(1) / std::sqrt(r2);
  const T inv_r3 = inv_r * inv_r * inv_r;
  return d * (G * mj * inv_r3);
}

/// Pair potential energy term: -G * mi * mj / sqrt(|xi - xj|^2 + eps^2).
template <class T, std::size_t D>
inline T gravity_potential(const vec<T, D>& xi, const vec<T, D>& xj, T mi, T mj, T G,
                           T eps2) {
  const T r2 = norm2(xj - xi) + eps2;
  if (r2 <= T(0)) return T(0);
  return -G * mi * mj / std::sqrt(r2);
}

}  // namespace nbody::math
