// SoA interaction lists + tiled batch kernels for group traversal.
//
// GPU treecodes (Bonsai; Bédorf et al.) and the many-core work of Tokuue &
// Ishiyama walk the tree once per *group* of spatially coherent bodies
// instead of once per body: the walk emits the group's shared interaction
// lists — accepted nodes (M2P) and opened leaves' bodies (P2P) — and every
// body in the group then replays the same two lists through dense,
// branch-light kernels. This header owns the list storage and the replay
// kernels; the tree classes own the MAC-driven walks that fill the lists
// (ConcurrentOctree::collect_group_lists, HilbertBVH::collect_group_lists).
//
// Memory layout: structure-of-arrays. Each list keeps one contiguous array
// per coordinate plus one for the masses, so the kernels' inner loops read
// unit-stride streams and auto-vectorize under par_unseq semantics (no
// branches in the hot path — the r² > 0 coincidence guard compiles to a
// select). Quadrupole tensors stay AoS in a side vector: they are touched
// once per accepted node, not once per (body, node) pair of the monopole
// stream. Lists grow geometrically through std::vector (the
// overflow/regrowth path is exercised in tests/test_group.cpp); callers
// reuse one InteractionLists per worker thread so steady state allocates
// nothing.
//
// Self-interaction needs no index bookkeeping: a target body appearing in
// its own P2P list contributes d = 0 ⇒ exactly zero acceleration, matching
// the j ≠ i exclusion of the per-body DFS bit-for-bit (zero is the additive
// identity). Coincident *distinct* bodies behave identically in both paths
// (softened, or zeroed by the r² > 0 guard when eps = 0).
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <vector>

#include "math/multipole.hpp"
#include "math/vec.hpp"

namespace nbody::math {

/// Shared interaction lists of one traversal group, SoA layout.
template <class T, std::size_t D>
class InteractionLists {
 public:
  /// Drops contents, keeps capacity (per-thread reuse across groups).
  void clear() {
    for (std::size_t d = 0; d < D; ++d) {
      node_pos_[d].clear();
      body_pos_[d].clear();
    }
    node_mass_.clear();
    node_quad_.clear();
    body_mass_.clear();
  }

  /// Pre-sizes both lists; appends past these bounds regrow geometrically.
  void reserve(std::size_t nodes, std::size_t bodies) {
    for (std::size_t d = 0; d < D; ++d) {
      node_pos_[d].reserve(nodes);
      body_pos_[d].reserve(bodies);
    }
    node_mass_.reserve(nodes);
    body_mass_.reserve(bodies);
  }

  /// Appends one accepted node (monopole only).
  void push_node(const vec<T, D>& com, T mass) {
    for (std::size_t d = 0; d < D; ++d) node_pos_[d].push_back(com[d]);
    node_mass_.push_back(mass);
  }

  /// Appends one accepted node with its traceless quadrupole.
  void push_node(const vec<T, D>& com, T mass, const SymTensor<T, D>& quad) {
    push_node(com, mass);
    node_quad_.push_back(quad);
  }

  /// Appends one opened-leaf source body.
  void push_body(const vec<T, D>& x, T mass) {
    for (std::size_t d = 0; d < D; ++d) body_pos_[d].push_back(x[d]);
    body_mass_.push_back(mass);
  }

  [[nodiscard]] std::size_t m2p_size() const { return node_mass_.size(); }
  [[nodiscard]] std::size_t p2p_size() const { return body_mass_.size(); }
  [[nodiscard]] std::size_t m2p_capacity() const { return node_mass_.capacity(); }
  [[nodiscard]] std::size_t p2p_capacity() const { return body_mass_.capacity(); }
  [[nodiscard]] bool has_quadrupoles() const {
    return node_quad_.size() == node_mass_.size() && !node_mass_.empty();
  }

  [[nodiscard]] const std::vector<T>& node_pos(std::size_t d) const { return node_pos_[d]; }
  [[nodiscard]] const std::vector<T>& node_mass() const { return node_mass_; }
  [[nodiscard]] const std::vector<SymTensor<T, D>>& node_quad() const { return node_quad_; }
  [[nodiscard]] const std::vector<T>& body_pos(std::size_t d) const { return body_pos_[d]; }
  [[nodiscard]] const std::vector<T>& body_mass() const { return body_mass_; }

 private:
  std::array<std::vector<T>, D> node_pos_;  // M2P: accepted-node centers of mass
  std::vector<T> node_mass_;
  std::vector<SymTensor<T, D>> node_quad_;  // parallel to node_mass_ iff quadrupole
  std::array<std::vector<T>, D> body_pos_;  // P2P: opened-leaf source bodies
  std::vector<T> body_mass_;
};

/// Source-tile length of the batch kernels: long enough to amortize the
/// per-tile loop setup, short enough that a tile's D+1 streams stay in L1
/// while every body of the group replays it.
inline constexpr std::size_t kBatchTile = 128;

namespace detail {

/// One (targets × source-tile) monopole block: acc[i] += Σ_j G m_j d /
/// (|d|² + eps²)^{3/2}. Shared by the P2P and the M2P monopole streams —
/// a point mass is a point mass.
template <class T, std::size_t D>
inline void monopole_tile(const std::array<const T*, D>& src, const T* mass,
                          std::size_t j0, std::size_t j1, const vec<T, D>* xt,
                          std::size_t g, T G, T eps2, vec<T, D>* acc) {
  for (std::size_t i = 0; i < g; ++i) {
    const vec<T, D> xi = xt[i];
    vec<T, D> a = vec<T, D>::zero();
    for (std::size_t j = j0; j < j1; ++j) {
      std::array<T, D> diff;
      T r2 = eps2;
      for (std::size_t d = 0; d < D; ++d) {
        diff[d] = src[d][j] - xi[d];
        r2 += diff[d] * diff[d];
      }
      // Branchless coincidence guard: the select keeps the loop vectorizable.
      const T inv_r = r2 > T(0) ? T(1) / std::sqrt(r2) : T(0);
      const T w = G * mass[j] * inv_r * inv_r * inv_r;
      for (std::size_t d = 0; d < D; ++d) a[d] += diff[d] * w;
    }
    acc[i] += a;
  }
}

}  // namespace detail

/// Replays the P2P list for `g` targets: acc[i] += exact pairwise terms.
template <class T, std::size_t D>
void p2p_batch(const InteractionLists<T, D>& lists, const vec<T, D>* xt, std::size_t g,
               T G, T eps2, vec<T, D>* acc) {
  std::array<const T*, D> src;
  for (std::size_t d = 0; d < D; ++d) src[d] = lists.body_pos(d).data();
  const T* mass = lists.body_mass().data();
  const std::size_t n = lists.p2p_size();
  for (std::size_t j0 = 0; j0 < n; j0 += kBatchTile)
    detail::monopole_tile<T, D>(src, mass, j0, std::min(j0 + kBatchTile, n), xt, g, G, eps2,
                                acc);
}

/// Replays the M2P list for `g` targets: acc[i] += multipole approximations
/// of the accepted nodes (monopole stream, plus the AoS quadrupole side
/// pass when the lists carry tensors).
template <class T, std::size_t D>
void m2p_batch(const InteractionLists<T, D>& lists, const vec<T, D>* xt, std::size_t g,
               T G, T eps2, vec<T, D>* acc) {
  std::array<const T*, D> src;
  for (std::size_t d = 0; d < D; ++d) src[d] = lists.node_pos(d).data();
  const T* mass = lists.node_mass().data();
  const std::size_t n = lists.m2p_size();
  for (std::size_t j0 = 0; j0 < n; j0 += kBatchTile)
    detail::monopole_tile<T, D>(src, mass, j0, std::min(j0 + kBatchTile, n), xt, g, G, eps2,
                                acc);
  if (!lists.has_quadrupoles()) return;
  const auto& quads = lists.node_quad();
  for (std::size_t i = 0; i < g; ++i) {
    const vec<T, D> xi = xt[i];
    vec<T, D> a = vec<T, D>::zero();
    for (std::size_t j = 0; j < n; ++j) {
      vec<T, D> com;
      for (std::size_t d = 0; d < D; ++d) com[d] = src[d][j];
      a += quadrupole_accel(xi, com, quads[j], G, eps2);
    }
    acc[i] += a;
  }
}

/// Full replay: zeroes acc[0, g) and accumulates both lists.
template <class T, std::size_t D>
void evaluate_interaction_lists(const InteractionLists<T, D>& lists, const vec<T, D>* xt,
                                std::size_t g, T G, T eps2, vec<T, D>* acc) {
  for (std::size_t i = 0; i < g; ++i) acc[i] = vec<T, D>::zero();
  p2p_batch(lists, xt, g, G, eps2, acc);
  m2p_batch(lists, xt, g, G, eps2, acc);
}

}  // namespace nbody::math
