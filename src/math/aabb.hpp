// Axis-aligned bounding box.
//
// The default-constructed box is *empty* (min = +inf sentinel,
// max = -inf sentinel) and acts as the identity of `merged`, which is the
// monoid the paper's Algorithm 3 reduces with. Tree nodes covering no bodies
// keep the empty box and are skipped by traversals.
#pragma once

#include "math/vec.hpp"
#include "support/assert.hpp"

namespace nbody::math {

template <class T, std::size_t D>
struct aabb {
  vec<T, D> lo = vec<T, D>::max_sentinel();
  vec<T, D> hi = vec<T, D>::lowest_sentinel();

  /// Box containing the single point `p`.
  static constexpr aabb of_point(const vec<T, D>& p) { return {p, p}; }

  /// Cube centered at `c` with half-extent `h` in every axis.
  static constexpr aabb cube(const vec<T, D>& c, T h) {
    return {c - vec<T, D>::splat(h), c + vec<T, D>::splat(h)};
  }

  [[nodiscard]] constexpr bool empty() const {
    for (std::size_t i = 0; i < D; ++i)
      if (lo[i] > hi[i]) return true;
    return false;
  }

  [[nodiscard]] constexpr bool contains(const vec<T, D>& p) const {
    for (std::size_t i = 0; i < D; ++i)
      if (p[i] < lo[i] || p[i] > hi[i]) return false;
    return true;
  }

  /// True when `other` lies entirely inside this box.
  [[nodiscard]] constexpr bool contains(const aabb& other) const {
    return other.empty() || (contains(other.lo) && contains(other.hi));
  }

  [[nodiscard]] constexpr vec<T, D> center() const {
    return (lo + hi) * T(0.5);
  }

  [[nodiscard]] constexpr vec<T, D> extent() const { return hi - lo; }

  /// Longest side — the `s` in the Barnes-Hut acceptance criterion s/d < θ.
  [[nodiscard]] constexpr T longest_side() const {
    return empty() ? T(0) : max_component(extent());
  }

  /// Smallest enclosing box of this and `other` (monoid operation).
  [[nodiscard]] constexpr aabb merged(const aabb& other) const {
    return {min(lo, other.lo), max(hi, other.hi)};
  }

  [[nodiscard]] constexpr aabb merged(const vec<T, D>& p) const {
    return {min(lo, p), max(hi, p)};
  }

  /// Index in [0, 2^D) of the orthant of `center()` containing `p`,
  /// bit d set when p[d] >= center[d]. This is the Morton child order the
  /// paper's octree uses (Sec. IV-A).
  [[nodiscard]] constexpr unsigned orthant(const vec<T, D>& p) const {
    const vec<T, D> c = center();
    unsigned q = 0;
    for (std::size_t i = 0; i < D; ++i)
      if (p[i] >= c[i]) q |= 1u << i;
    return q;
  }

  /// The sub-box for orthant `q` of an isotropic 2^D subdivision.
  [[nodiscard]] constexpr aabb child_box(unsigned q) const {
    NBODY_DEBUG_ASSERT(q < (1u << D));
    const vec<T, D> c = center();
    aabb r;
    for (std::size_t i = 0; i < D; ++i) {
      if (q & (1u << i)) {
        r.lo[i] = c[i];
        r.hi[i] = hi[i];
      } else {
        r.lo[i] = lo[i];
        r.hi[i] = c[i];
      }
    }
    return r;
  }

  /// Squared distance from `p` to the closest point of the box (0 when the
  /// box contains `p`). This is the d_min of the group opening criterion:
  /// every body inside the box is at least this far from `p`.
  [[nodiscard]] constexpr T dist2(const vec<T, D>& p) const {
    T d2 = T(0);
    for (std::size_t i = 0; i < D; ++i) {
      const T c = p[i] < lo[i] ? lo[i] : (p[i] > hi[i] ? hi[i] : p[i]);
      const T delta = p[i] - c;
      d2 += delta * delta;
    }
    return d2;
  }

  /// Expands a possibly degenerate box into a non-degenerate cube: the
  /// octree requires a root with strictly positive side length even when all
  /// bodies coincide or N == 1.
  [[nodiscard]] constexpr aabb inflated_cube(T min_half_extent = T(1)) const {
    if (empty()) return cube(vec<T, D>::zero(), min_half_extent);
    T h = longest_side() * T(0.5);
    if (!(h > T(0))) h = min_half_extent;
    // Grow slightly so bodies on the hi face stay strictly inside after
    // floating-point rounding of repeated midpoint subdivision.
    h *= T(1) + T(1e-6);
    return cube(center(), h);
  }

  friend constexpr bool operator==(const aabb& a, const aabb& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

using aabb2d = aabb<double, 2>;
using aabb3d = aabb<double, 3>;

}  // namespace nbody::math
