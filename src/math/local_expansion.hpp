// Local (Taylor) expansion of the softened gravitational acceleration field,
// plus the M2L / L2L / L2P operators that drive the dual-tree far field.
//
// A LocalExpansion approximates the acceleration a(y) due to a set of remote
// sources inside a neighborhood of its `center` c by the order-2 Taylor
// polynomial
//
//   a_i(c + d) = a0_i + sum_j J_ij d_j + (1/2) sum_jk H_i(j,k) d_j d_k
//
// where a0 = a(c), J_ij = da_i/dy_j |_c, and H_i(j,k) = d^2 a_i/dy_j dy_k |_c.
// Because a = -grad(phi) for a scalar potential, J is symmetric and H_i is
// fully symmetric in all three indices; both are stored as packed SymTensors.
//
// Operators:
//   m2l  — accumulate a remote multipole (monopole, or monopole+quadrupole)
//          into the expansion. The value term a0 is computed by literally
//          calling the same gravity_accel / quadrupole_accel kernels the
//          direct M2P path uses, so evaluating the expansion AT its center
//          reproduces the direct evaluation bit for bit (the identity the
//          test_local_expansion suite pins down).
//   l2l  — translate the expansion to a new center. A Taylor polynomial
//          shifted within its own order is EXACT (no additional truncation),
//          which gives the translation-invariance identity:
//          l2p(l2l(L, c'), y) == l2p(L, y) up to FP roundoff.
//   l2p  — evaluate the polynomial at a point.
//
// Truncation: the monopole contribution carries value+Jacobian+Hessian
// (error O(|d|^3 / r^4)); the quadrupole contribution carries
// value+Jacobian only (error O(|d|^2 / r^5)) — one consistent order beyond
// the M2P kernels for every retained moment.
//
// Softening matches the direct kernels: every radial power is built from
// u = |r|^2 + eps^2.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>

#include "gravity.hpp"
#include "multipole.hpp"
#include "vec.hpp"

namespace nbody::math {

template <class T, std::size_t D>
struct LocalExpansion {
  vec<T, D> center = vec<T, D>::zero();
  vec<T, D> a0 = vec<T, D>::zero();          // field value at center
  SymTensor<T, D> jac{};                     // J_ij = da_i/dy_j (symmetric)
  std::array<SymTensor<T, D>, D> hess{};     // hess[i](j,k) = d^2 a_i/dy_j dy_k

  static LocalExpansion centered(const vec<T, D>& c) {
    LocalExpansion L;
    L.center = c;
    return L;
  }
};

/// M2L, monopole order: accumulate the field of a point mass `m` at `z` into
/// the expansion about L.center.
template <class T, std::size_t D>
inline void m2l(LocalExpansion<T, D>& L, T m, const vec<T, D>& z, T G, T eps2) {
  const vec<T, D> r = L.center - z;  // field point relative to the source
  const T u = norm2(r) + eps2;
  if (u <= T(0) || m == T(0)) return;
  L.a0 += gravity_accel(L.center, z, m, G, eps2);
  const T inv_u = T(1) / u;
  const T u32 = inv_u * std::sqrt(inv_u);  // u^{-3/2}
  const T u52 = u32 * inv_u;               // u^{-5/2}
  const T u72 = u52 * inv_u;               // u^{-7/2}
  const T gm = G * m;
  for (std::size_t i = 0; i < D; ++i) {
    for (std::size_t j = i; j < D; ++j) {
      L.jac.at(i, j) += gm * (T(3) * r[i] * r[j] * u52 - (i == j ? u32 : T(0)));
    }
  }
  for (std::size_t i = 0; i < D; ++i) {
    for (std::size_t j = 0; j < D; ++j) {
      for (std::size_t k = j; k < D; ++k) {
        const T kron = (i == j ? r[k] : T(0)) + (i == k ? r[j] : T(0)) +
                       (j == k ? r[i] : T(0));
        L.hess[i].at(j, k) +=
            gm * (T(3) * kron * u52 - T(15) * r[i] * r[j] * r[k] * u72);
      }
    }
  }
}

/// M2L, quadrupole order: monopole term plus the traceless quadrupole `Q`
/// of the source cell (value + Jacobian; the quadrupole Hessian is beyond
/// the retained order).
template <class T, std::size_t D>
inline void m2l(LocalExpansion<T, D>& L, T m, const vec<T, D>& z,
                const SymTensor<T, D>& Q, T G, T eps2) {
  m2l(L, m, z, G, eps2);
  const vec<T, D> r = L.center - z;
  const T u = norm2(r) + eps2;
  if (u <= T(0)) return;
  L.a0 += quadrupole_accel(L.center, z, Q, G, eps2);
  const T inv_u = T(1) / u;
  const T u52 = inv_u * inv_u * std::sqrt(inv_u);  // u^{-5/2}
  const T u72 = u52 * inv_u;                       // u^{-7/2}
  const T u92 = u72 * inv_u;                       // u^{-9/2}
  const vec<T, D> Qr = Q.mul(r);
  const T rQr = dot(r, Qr);
  for (std::size_t i = 0; i < D; ++i) {
    for (std::size_t j = i; j < D; ++j) {
      T dij = Q(i, j) * u52 - T(5) * (Qr[i] * r[j] + Qr[j] * r[i]) * u72 +
              T(17.5) * rQr * r[i] * r[j] * u92;
      if (i == j) dij -= T(2.5) * rQr * u72;
      L.jac.at(i, j) += G * dij;
    }
  }
}

/// L2L: the same polynomial re-centered at `new_center` (exact shift).
template <class T, std::size_t D>
inline LocalExpansion<T, D> l2l(const LocalExpansion<T, D>& L,
                                const vec<T, D>& new_center) {
  const vec<T, D> t = new_center - L.center;
  LocalExpansion<T, D> out;
  out.center = new_center;
  out.hess = L.hess;
  out.a0 = L.a0 + L.jac.mul(t);
  for (std::size_t i = 0; i < D; ++i) out.a0[i] += T(0.5) * L.hess[i].quad_form(t);
  for (std::size_t i = 0; i < D; ++i) {
    for (std::size_t j = i; j < D; ++j) {
      T s = L.jac(i, j);
      // d/dy_j of the Hessian term evaluated at the shift: H_i(j,:) . t.
      for (std::size_t k = 0; k < D; ++k) s += L.hess[i](j, k) * t[k];
      out.jac.at(i, j) = s;
    }
  }
  return out;
}

/// L2P: evaluate the expansion at field point `y`.
template <class T, std::size_t D>
inline vec<T, D> l2p(const LocalExpansion<T, D>& L, const vec<T, D>& y) {
  const vec<T, D> d = y - L.center;
  vec<T, D> a = L.a0 + L.jac.mul(d);
  for (std::size_t i = 0; i < D; ++i) a[i] += T(0.5) * L.hess[i].quad_form(d);
  return a;
}

}  // namespace nbody::math
