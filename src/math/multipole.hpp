// Quadrupole moments — the paper's multipole extension hook.
//
// Sec. IV-A-3 uses monopoles (mass + center of mass) "for exposition" and
// notes that "the algorithms described here extend to multipoles". This
// header supplies the next order: the traceless quadrupole tensor
//
//     Q_ab = sum_k m_k (3 d_a d_b - |d|^2 delta_ab),   d = x_k - com,
//
// its parallel-axis translation (for combining children about a parent's
// center of mass), and the far-field acceleration
//
//     a = G [ Q r / r^5 - (5/2) (r^T Q r) r / r^7 ],    r = com - x_i,
//
// which both tree strategies add on top of the monopole term when
// SimConfig::quadrupole is enabled. The 2-D build uses the same formulas
// with the third coordinate identically zero (the force kernel is the 3-D
// 1/r^2 law evaluated in-plane, so the Green's function is unchanged).
#pragma once

#include <array>
#include <cmath>
#include <cstddef>

#include "math/vec.hpp"

namespace nbody::math {

/// Symmetric DxD tensor stored as the upper triangle, row-major:
/// D=3 -> (xx, xy, xz, yy, yz, zz); D=2 -> (xx, xy, yy).
template <class T, std::size_t D>
struct SymTensor {
  static constexpr std::size_t size = D * (D + 1) / 2;
  std::array<T, size> q{};

  static constexpr std::size_t index(std::size_t a, std::size_t b) {
    if (a > b) {
      const std::size_t t = a;
      a = b;
      b = t;
    }
    // Offset of row a in the packed upper triangle + column offset.
    return a * D - a * (a - 1) / 2 + (b - a);
  }

  constexpr T operator()(std::size_t a, std::size_t b) const { return q[index(a, b)]; }
  constexpr T& at(std::size_t a, std::size_t b) { return q[index(a, b)]; }

  constexpr SymTensor& operator+=(const SymTensor& o) {
    for (std::size_t i = 0; i < size; ++i) q[i] += o.q[i];
    return *this;
  }

  friend constexpr SymTensor operator+(SymTensor a, const SymTensor& b) { return a += b; }

  /// Matrix-vector product.
  [[nodiscard]] constexpr vec<T, D> mul(const vec<T, D>& v) const {
    vec<T, D> r = vec<T, D>::zero();
    for (std::size_t a = 0; a < D; ++a)
      for (std::size_t b = 0; b < D; ++b) r[a] += (*this)(a, b) * v[b];
    return r;
  }

  /// Quadratic form v^T Q v.
  [[nodiscard]] constexpr T quad_form(const vec<T, D>& v) const {
    return dot(v, mul(v));
  }

  [[nodiscard]] constexpr T trace() const {
    T t{};
    for (std::size_t a = 0; a < D; ++a) t += (*this)(a, a);
    return t;
  }
};

/// Traceless point-mass quadrupole contribution m (3 d d^T - |d|^2 I).
/// Both the leaf accumulation (d = body - leaf com) and the parallel-axis
/// shift (d = child com - parent com, m = child mass) use this one kernel —
/// the parallel-axis theorem for the traceless quadrupole is exactly
/// Q_parent = sum_children [ Q_child + m_child (3 s s^T - |s|^2 I) ].
template <class T, std::size_t D>
constexpr SymTensor<T, D> point_quadrupole(T m, const vec<T, D>& d) {
  SymTensor<T, D> out;
  const T d2 = norm2(d);
  for (std::size_t a = 0; a < D; ++a) {
    for (std::size_t b = a; b < D; ++b) {
      T v = T(3) * d[a] * d[b];
      if (a == b) v -= d2;
      out.at(a, b) = m * v;
    }
  }
  return out;
}

/// Far-field acceleration of the traceless quadrupole Q located at `com`,
/// evaluated at `xi` (to be added to the monopole gravity_accel term).
/// With r = xi - com (field point relative to the source, the convention
/// the potential phi = -G (r^T Q r)/(2 r^5) is differentiated in):
///   a = -grad phi = G [ Q r / r^5 - (5/2) (r^T Q r) r / r^7 ].
/// Softened consistently with the monopole kernel via r^2 -> r^2 + eps^2.
template <class T, std::size_t D>
inline vec<T, D> quadrupole_accel(const vec<T, D>& xi, const vec<T, D>& com,
                                  const SymTensor<T, D>& Q, T G, T eps2) {
  const vec<T, D> r = xi - com;
  const T r2 = norm2(r) + eps2;
  if (r2 <= T(0)) return vec<T, D>::zero();
  const T inv_r2 = T(1) / r2;
  const T inv_r = std::sqrt(inv_r2);
  const T inv_r5 = inv_r2 * inv_r2 * inv_r;
  const T inv_r7 = inv_r5 * inv_r2;
  const vec<T, D> Qr = Q.mul(r);
  const T rQr = dot(r, Qr);
  return (Qr * inv_r5 - r * (T(2.5) * rQr * inv_r7)) * G;
}

}  // namespace nbody::math
