// Concurrent Octree — the paper's first Barnes-Hut strategy (Sec. IV-A).
//
// Data structure (paper Fig. 1): a flat node pool where each node owns one
// 32-bit slot `child_[node]` encoding the node's state:
//
//     kEmpty              — empty leaf
//     kLocked             — leaf under subdivision (Algorithm 5's lock)
//     kBodyFlag | body    — leaf holding `body` (chains via next_in_leaf_
//                           at the maximum depth)
//     first-child offset  — internal node; its 2^D children live at
//                           [offset, offset + 2^D) in Morton order
//
// plus one parent offset per sibling group (4 bytes per 2^D nodes), enabling
// the leaf-to-root multipole reduction and the backward steps of the
// stackless force DFS. Nodes come from a per-worker chunk arena
// (exec/arena.hpp): each rank bump-allocates sibling groups from a private
// chunk of the pre-reserved pool and only touches shared state on refill,
// so concurrent subdivisions allocate contention-free and one rank's groups
// are contiguous (curve-adjacent bodies subdivide on the same rank, so its
// chunk stays cache-dense). Partial chunks merge back on region exit and
// are reissued before fresh pool space. Exhaustion aborts the attempt and
// the build retries with a doubled pool (the paper sizes the pool from an
// isotropic-subdivision estimate; the retry makes that estimate safe).
// Parked-chunk node groups look like empty sibling groups with parent 0:
// the multipole climb adds zero mass to the root and stops, traversals
// never reach them — benign by the same argument as empty leaves.
//
// The three parallel algorithms:
//   build()              — Algorithm 4: per-body root-to-leaf descent with
//                          the Empty/Body/Locked CAS protocol. Starvation-
//                          free; REQUIRES parallel forward progress, which
//                          the StarvationFreeCapable constraint enforces at
//                          compile time (this is why the paper's Octree
//                          cannot run on GPUs without ITS).
//   compute_multipoles() — Fig. 2: one thread per node; leaves push
//                          mass/center-of-mass up with relaxed atomic adds;
//                          an acq_rel arrival counter elects the last
//                          arriver to recurse toward the root. Wait-free.
//   accelerations()      — Fig. 3: per-body stackless DFS using the
//                          child-offset monotonicity + parent offsets; no
//                          synchronization, safe under par_unseq.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "exec/algorithms.hpp"
#include "exec/arena.hpp"
#include "exec/atomic.hpp"
#include "obs/runtime.hpp"
#include "math/aabb.hpp"
#include "math/batch_kernels.hpp"
#include "math/gravity.hpp"
#include "math/local_expansion.hpp"
#include "math/multipole.hpp"
#include "support/assert.hpp"
#include "support/fault.hpp"

namespace nbody::octree {

template <class T, std::size_t D>
class ConcurrentOctree {
 public:
  using vec_t = math::vec<T, D>;
  using box_t = math::aabb<T, D>;

  static constexpr std::uint32_t K = 1u << D;  // children per node
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr std::uint32_t kLocked = 0xFFFFFFFEu;
  static constexpr std::uint32_t kBodyFlag = 0x80000000u;
  static constexpr std::uint32_t kChainEnd = 0xFFFFFFFFu;
  // Beyond this depth sibling boxes collapse below FP resolution; coincident
  // bodies chain in a list leaf instead of subdividing forever.
  static constexpr unsigned kMaxDepth = D == 2 ? 48 : 36;

  struct Params {
    std::uint32_t min_capacity = 512;  // nodes
    double capacity_factor = 4.0;      // nodes per body, first attempt
    /// Bound on the overflow-retry doublings of build(). Exceeding it (or
    /// max_capacity) throws instead of doubling toward OOM.
    std::uint32_t max_build_retries = 24;
    /// Hard node-pool ceiling. Node indices must stay below kBodyFlag for
    /// the slot encoding to distinguish internal nodes from bodies, so the
    /// default sits just under that flag.
    std::uint32_t max_capacity = kBodyFlag - (1u << D);
    /// Sibling groups per rank-local arena chunk: each worker refills its
    /// private allocation chunk with this many groups at once. 1 degrades
    /// to a shared bump per group (the pre-arena behavior, kept selectable
    /// for the allocator-equivalence tests).
    std::uint32_t arena_groups = 16;
  };

  /// Memory-ordering discipline of the multipole reduction's atomics.
  /// `tuned` is the paper's choice (relaxed accumulation + acq_rel arrival
  /// counter); `seq_cst` is the C++ default the paper tunes away from —
  /// kept selectable for the ablation bench.
  enum class AtomicDiscipline : std::uint8_t { tuned, seq_cst };

  ConcurrentOctree() = default;
  explicit ConcurrentOctree(Params params) : params_(params) {}

  // -- slot classification ------------------------------------------------
  static constexpr bool is_internal(std::uint32_t v) { return v < kBodyFlag; }
  static constexpr bool is_body(std::uint32_t v) { return v >= kBodyFlag && v < kLocked; }
  static constexpr bool is_empty(std::uint32_t v) { return v == kEmpty; }
  static constexpr std::uint32_t body_of(std::uint32_t v) { return v & ~kBodyFlag; }
  static constexpr std::uint32_t group_of(std::uint32_t node) { return (node - 1) / K; }

  // -- BuildTree (Algorithm 4) ---------------------------------------------

  /// Inserts all bodies into a fresh tree over `root_box` in parallel.
  /// Starvation-free: rejects par_unseq at compile time.
  ///
  /// Pool exhaustion retries with a doubled pool, but the loop is *bounded*:
  /// after Params::max_build_retries doublings, or once the pool would
  /// exceed Params::max_capacity, build() throws a descriptive
  /// std::runtime_error instead of doubling toward OOM. The tree is left
  /// resettable — a subsequent build() call starts fresh.
  template <exec::StarvationFreeCapable Policy>
  void build(Policy policy, const std::vector<vec_t>& x, const box_t& root_box) {
    NBODY_REQUIRE(!root_box.empty(), "octree: empty root box");
    NBODY_REQUIRE(x.size() < kBodyFlag - 1, "octree: too many bodies");
    root_box_ = root_box;
    std::uint32_t capacity = std::min(initial_capacity(x.size()), params_.max_capacity);
    for (std::uint32_t attempt = 0;; ++attempt) {
      reset(capacity, x.size());
      try {
        exec::for_each_index(policy, x.size(), [&](std::size_t b) {
          insert_one(static_cast<std::uint32_t>(b), x);
        });
      } catch (...) {
        arena_.retire_all();  // keep the leak invariant across fault unwinds
        throw;
      }
      arena_.retire_all();  // merge partial chunks back (leaked() stays 0)
      if (!exec::load_relaxed(overflow_)) break;
      if (attempt >= params_.max_build_retries || capacity >= params_.max_capacity)
        throw std::runtime_error(
            "octree build: node pool overflow persists after " + std::to_string(attempt + 1) +
            " attempt(s) at capacity " + std::to_string(capacity) + " for " +
            std::to_string(x.size()) +
            " bodies (retry/capacity bound reached; raise Params::max_capacity or "
            "check for pathological body distributions)");
      capacity = capacity > params_.max_capacity / 2 ? params_.max_capacity : capacity * 2;
    }
  }

  /// Degradation-ladder hook: doubles the first-attempt pool sizing so the
  /// next build() starts with twice the headroom (clamped to max_capacity).
  void grow_capacity() {
    params_.capacity_factor *= 2.0;
    params_.min_capacity = params_.min_capacity > params_.max_capacity / 2
                               ? params_.max_capacity
                               : params_.min_capacity * 2;
  }

  /// One root-to-leaf insertion (the body of Algorithm 4's parallel loop).
  /// Public so the forward-progress simulator can drive insertions as
  /// lanes. Returns false when the node pool overflowed (build() retries).
  bool insert_one(std::uint32_t b, const std::vector<vec_t>& x) {
    box_t box = root_box_;
    std::uint32_t index = 0;
    unsigned depth = 0;
    exec::spin_wait backoff;
    const vec_t pos = x[b];
    for (;;) {
      if (exec::load_relaxed(overflow_)) return false;
      const std::uint32_t next = exec::load_acquire(child_[index]);
      if (is_internal(next)) {
        // Forward step: descend into the sibling covering b.
        const unsigned q = box.orthant(pos);
        index = next + q;
        box = box.child_box(q);
        ++depth;
        continue;
      }
      if (next == kLocked) {
        exec::fetch_add_relaxed(lock_retries_, std::uint64_t{1});
        backoff.pause();  // another thread is subdividing this node
        continue;
      }
      if (is_empty(next)) {
        // Claim the empty leaf for b. The release on success publishes the
        // chain terminator written below. The leaf record must also be
        // written *before* the CAS: a subdividing thread that later pushes b
        // down reads the slot with acquire and overwrites body_leaf_[b]
        // under its lock, so pre-CAS is the only order that cannot lose
        // that overwrite.
        exec::store_relaxed(next_in_leaf_[b], kChainEnd);
        if (track_) body_leaf_[b] = index;
        std::uint32_t expected = kEmpty;
        if (exec::compare_exchange_acq_rel(child_[index], expected, kBodyFlag | b)) {
          if (track_) note_depth(depth);
          return true;
        }
        continue;  // lost the race; re-read the slot
      }
      // Body-containing leaf.
      if (depth >= kMaxDepth) {
        // List leaf: push b onto the chain headed by the resident body.
        exec::store_relaxed(next_in_leaf_[b], body_of(next));
        if (track_) body_leaf_[b] = index;
        std::uint32_t expected = next;
        if (exec::compare_exchange_acq_rel(child_[index], expected, kBodyFlag | b)) {
          if (track_) note_depth(depth);
          return true;
        }
        continue;
      }
      // Subdivide (Algorithm 5): lock, allocate children, push the resident
      // body down, publish, and retry the descent into the new children.
      // Fault site octree.node_alloc fires *before* the lock is taken so an
      // injected failure never leaves a slot locked: siblings keep making
      // progress while the exception unwinds through the parallel region.
      support::fault_point(support::FaultSite::octree_node_alloc);
      std::uint32_t expected = next;
      if (!exec::compare_exchange_acquire(child_[index], expected, kLocked)) {
        exec::fetch_add_relaxed(lock_retries_, std::uint64_t{1});
        backoff.pause();
        continue;
      }
      // ---- critical section ----
      // The slot IS the lock (kLocked): tell the chaos race detector so its
      // lockset check sees the subdivision protocol as a guarded region and
      // its policy check attributes any par_unseq entry to this address.
      exec::chaos::hook_lock_acquired(&child_[index]);
      // Cooperative yield point: on lockstep (non-ITS) scheduling this is
      // where the lock holder gets suspended while siblings spin — the
      // mechanism the progress simulator demonstrates.
      exec::checkpoint();
      // Rank-local arena allocation: a plain bump inside this worker's
      // chunk in the common case; refills (freelist or shared bump) are
      // mutex-protected cold paths inside the arena.
      std::uint32_t first = 0;
      if (!arena_.allocate(obs::thread_rank(), K, first)) {
        exec::store_relaxed(overflow_, std::uint8_t{1});
        exec::chaos::hook_lock_released(&child_[index]);
        exec::store_release(child_[index], next);  // restore and abort
        return false;
      }
      exec::store_relaxed(parent_[group_of(first)], index);
      const std::uint32_t resident = body_of(next);
      const unsigned rq = box.orthant(x[resident]);
      if (track_) {
        // Record the new children's cell geometry and the resident's new
        // leaf inside the critical section: the release below publishes
        // them together with the children themselves.
        for (std::uint32_t q = 0; q < K; ++q) node_box_[first + q] = box.child_box(q);
        body_leaf_[resident] = first + rq;
      }
      exec::store_relaxed(child_[first + rq], kBodyFlag | resident);
      exec::chaos::hook_lock_released(&child_[index]);
      exec::store_release(child_[index], first);  // unlock + publish children
      // ---- end critical section ----
      // Loop continues: the acquire load now sees an internal node.
    }
  }

  // -- CalculateMultipoles (Fig. 2) -----------------------------------------

  /// Parallel leaf-to-root tree reduction of mass and center of mass.
  /// Wait-free but uses synchronizing atomics: requires par (or seq).
  template <exec::StarvationFreeCapable Policy>
  void compute_multipoles(Policy policy, const std::vector<T>& m,
                          const std::vector<vec_t>& x,
                          AtomicDiscipline discipline = AtomicDiscipline::tuned) {
    const bool tuned = discipline == AtomicDiscipline::tuned;
    const std::uint32_t nodes = node_index_end();
    node_mass_.assign(nodes, T(0));
    node_com_.assign(nodes, vec_t::zero());
    arrivals_.assign(nodes, 0);
    has_quadrupoles_ = false;
    // One thread per node; non-leaves exit immediately (paper Fig. 2), so
    // available parallelism stays O(N).
    exec::for_each_index(policy, nodes, [&](std::size_t node_idx) {
      auto node = static_cast<std::uint32_t>(node_idx);
      const std::uint32_t v = exec::load_relaxed(child_[node]);
      if (is_internal(v)) return;  // interior: its children's threads handle it
      // Leaf moments: zero for empty leaves, chain sum otherwise.
      T mass = T(0);
      vec_t weighted = vec_t::zero();
      if (is_body(v)) {
        for (std::uint32_t b = body_of(v); b != kChainEnd; b = next_in_leaf_[b]) {
          mass += m[b];
          weighted += x[b] * m[b];
        }
      }
      node_mass_[node] = mass;
      node_com_[node] = weighted;
      // Climb: accumulate onto the parent; the last arriver continues up.
      std::uint32_t cur = node;
      while (cur != 0) {
        const std::uint32_t parent = parent_[group_of(cur)];
        if (tuned) {
          exec::fetch_add_relaxed(node_mass_[parent], node_mass_[cur]);
          for (std::size_t d = 0; d < D; ++d)
            exec::fetch_add_relaxed(node_com_[parent][d], node_com_[cur][d]);
        } else {
          exec::fetch_add_seq_cst(node_mass_[parent], node_mass_[cur]);
          for (std::size_t d = 0; d < D; ++d)
            exec::fetch_add_seq_cst(node_com_[parent][d], node_com_[cur][d]);
        }
        const std::uint32_t prior = tuned ? exec::fetch_add_acq_rel(arrivals_[parent], 1u)
                                          : exec::fetch_add_seq_cst(arrivals_[parent], 1u);
        if (prior != K - 1) return;  // siblings still outstanding
        cur = parent;                // last arriver owns the complete parent
      }
    });
    // Normalize weighted sums into centers of mass.
    exec::for_each_index(policy, nodes, [&](std::size_t node) {
      if (node_mass_[node] > T(0)) node_com_[node] /= node_mass_[node];
    });
  }

  /// Optional second-order moments (the paper's "extends to multipoles"
  /// hook, Sec. IV-A-3): a second wait-free leaf-to-root pass accumulating
  /// each node's traceless quadrupole about its center of mass via the
  /// parallel-axis theorem. Requires compute_multipoles() to have run (the
  /// centers of mass must be final). Same progress requirements as the
  /// multipole pass.
  template <exec::StarvationFreeCapable Policy>
  void compute_quadrupoles(Policy policy, const std::vector<T>& m,
                           const std::vector<vec_t>& x) {
    const std::uint32_t nodes = node_index_end();
    NBODY_REQUIRE(node_mass_.size() == nodes,
                  "compute_quadrupoles: run compute_multipoles first");
    node_quad_.assign(nodes, math::SymTensor<T, D>{});
    arrivals_.assign(nodes, 0);
    exec::for_each_index(policy, nodes, [&](std::size_t node_idx) {
      auto node = static_cast<std::uint32_t>(node_idx);
      const std::uint32_t v = exec::load_relaxed(child_[node]);
      if (is_internal(v)) return;
      // Leaf quadrupole about the leaf's center of mass (zero for a single
      // body; nonzero only for max-depth chains).
      math::SymTensor<T, D> quad{};
      if (is_body(v)) {
        const vec_t com = node_com_[node];
        for (std::uint32_t b = body_of(v); b != kChainEnd; b = next_in_leaf_[b])
          quad += math::point_quadrupole(m[b], x[b] - com);
      }
      node_quad_[node] = quad;
      std::uint32_t cur = node;
      while (cur != 0) {
        const std::uint32_t parent = parent_[group_of(cur)];
        // Parallel-axis shift of the (complete) child quadrupole onto the
        // parent's center of mass, accumulated with relaxed atomic adds.
        if (node_mass_[cur] > T(0)) {
          const auto shifted =
              node_quad_[cur] +
              math::point_quadrupole(node_mass_[cur], node_com_[cur] - node_com_[parent]);
          for (std::size_t c = 0; c < math::SymTensor<T, D>::size; ++c)
            exec::fetch_add_relaxed(node_quad_[parent].q[c], shifted.q[c]);
        }
        const std::uint32_t prior = exec::fetch_add_acq_rel(arrivals_[parent], 1u);
        if (prior != K - 1) return;
        cur = parent;
      }
    });
    has_quadrupoles_ = true;
  }

  [[nodiscard]] bool has_quadrupoles() const { return has_quadrupoles_; }
  [[nodiscard]] const math::SymTensor<T, D>& node_quadrupole(std::uint32_t node) const {
    return node_quad_[node];
  }

  // -- CalculateForce (Fig. 3) ----------------------------------------------

  /// Per-traversal work counters: quantify how much of the tree a given θ
  /// actually touches (used by the MAC-interpretation experiment — the
  /// paper notes the θ threshold means different amounts of work for the
  /// octree vs the BVH, end of Sec. IV-B).
  struct TraversalStats {
    std::uint64_t nodes_visited = 0;    // slots examined
    std::uint64_t accepts = 0;          // multipole approximations applied
    std::uint64_t opens = 0;            // internal nodes descended into
    std::uint64_t exact_pairs = 0;      // leaf-level pairwise interactions
    TraversalStats& operator+=(const TraversalStats& o) {
      nodes_visited += o.nodes_visited;
      accepts += o.accepts;
      opens += o.opens;
      exact_pairs += o.exact_pairs;
      return *this;
    }
  };

  /// acceleration_on with work counters. The FP statements mirror
  /// acceleration_on token for token — keep them in sync, the metered and
  /// unmetered forces must agree exactly (tested in test_obs). The plain
  /// traversal stays a separate function on purpose: its codegen is the
  /// hottest loop in the library, and carrying the counter increments there
  /// (even dead ones) measurably slows it.
  vec_t acceleration_on_counted(const vec_t& xi, std::uint32_t self, const std::vector<T>& m,
                                const std::vector<vec_t>& x, T theta2, T G, T eps2,
                                TraversalStats& stats, bool quadrupole = false) const {
    vec_t acc = vec_t::zero();
    const std::uint32_t root_val = child_[0];
    if (!is_internal(root_val)) {  // 0 or 1-leaf tree
      ++stats.nodes_visited;
      for (std::uint32_t b = is_body(root_val) ? body_of(root_val) : kChainEnd;
           b != kChainEnd; b = next_in_leaf_[b]) {
        if (b == self) continue;
        acc += math::gravity_accel(xi, x[b], m[b], G, eps2);
        ++stats.exact_pairs;
      }
      return acc;
    }
    T width = root_box_.longest_side() * T(0.5);
    std::uint32_t node = root_val;
    for (;;) {
      ++stats.nodes_visited;
      const std::uint32_t v = child_[node];
      bool descend = false;
      if (is_internal(v)) {
        const vec_t d = node_com_[node] - xi;
        const T d2 = norm2(d);
        if (width * width < theta2 * d2) {
          acc += math::gravity_accel(xi, node_com_[node], node_mass_[node], G, eps2);
          if (quadrupole)
            acc += math::quadrupole_accel(xi, node_com_[node], node_quad_[node], G, eps2);
          ++stats.accepts;
        } else {
          node = v;
          width *= T(0.5);
          descend = true;
          ++stats.opens;
        }
      } else if (is_body(v)) {
        for (std::uint32_t b = body_of(v); b != kChainEnd; b = next_in_leaf_[b]) {
          if (b == self) continue;
          acc += math::gravity_accel(xi, x[b], m[b], G, eps2);
          ++stats.exact_pairs;
        }
      }
      if (descend) continue;
      for (;;) {
        if ((node - 1) % K < K - 1) {
          ++node;
          break;
        }
        node = parent_[group_of(node)];
        width *= T(2);
        if (node == 0) return acc;
      }
    }
  }

  /// Acceleration on one body via stackless DFS with the θ acceptance
  /// criterion s/d < θ (s = node box side). No synchronization: safe under
  /// par_unseq. The tree must not be mutated concurrently.
  [[nodiscard]] vec_t acceleration_on(const vec_t& xi, std::uint32_t self,
                                      const std::vector<T>& m, const std::vector<vec_t>& x,
                                      T theta2, T G, T eps2,
                                      bool quadrupole = false) const {
    vec_t acc = vec_t::zero();
    const std::uint32_t root_val = child_[0];
    if (!is_internal(root_val)) {  // 0 or 1-leaf tree
      interact_leaf(root_val, xi, self, m, x, G, eps2, acc);
      return acc;
    }
    T width = root_box_.longest_side() * T(0.5);
    std::uint32_t node = root_val;  // first child of the root
    for (;;) {
      const std::uint32_t v = child_[node];
      bool descend = false;
      if (is_internal(v)) {
        const vec_t d = node_com_[node] - xi;
        const T d2 = norm2(d);
        if (width * width < theta2 * d2) {
          // Far enough: accept the multipole approximation for the subtree.
          acc += math::gravity_accel(xi, node_com_[node], node_mass_[node], G, eps2);
          if (quadrupole)
            acc += math::quadrupole_accel(xi, node_com_[node], node_quad_[node], G, eps2);
        } else {
          node = v;  // forward step into first child
          width *= T(0.5);
          descend = true;
        }
      } else {
        interact_leaf(v, xi, self, m, x, G, eps2, acc);
      }
      if (descend) continue;
      // Backward steps (dashed arrows in Fig. 3): next sibling, or climb via
      // the per-group parent offset until a sibling exists.
      for (;;) {
        if ((node - 1) % K < K - 1) {
          ++node;  // next sibling at the same depth
          break;
        }
        node = parent_[group_of(node)];
        width *= T(2);
        if (node == 0) return acc;  // unwound past the root: traversal done
      }
    }
  }

  /// Fills sys_a for all bodies. par_unseq is the intended policy.
  template <class Policy>
  void accelerations(Policy policy, const std::vector<T>& m, const std::vector<vec_t>& x,
                     std::vector<vec_t>& a_out, T theta, T G, T eps2,
                     bool quadrupole = false) const {
    NBODY_REQUIRE(!quadrupole || has_quadrupoles_,
                  "octree accelerations: quadrupole requested but not computed");
    const T theta2 = theta * theta;
    exec::for_each_index(policy, x.size(), [&, theta2, G, eps2, quadrupole](std::size_t i) {
      a_out[i] = acceleration_on(x[i], static_cast<std::uint32_t>(i), m, x, theta2, G, eps2,
                                 quadrupole);
    });
  }

  // -- group traversal (interaction-list collection) --------------------------

  /// One MAC-driven walk for a whole *group* of bodies bounded by `gbox`
  /// (Bonsai-style): emits the group's shared interaction lists instead of
  /// accelerations. A node is accepted — appended to the M2P list — only
  /// when the criterion holds against the *closest* point of the group box
  /// (s² < θ² · dist²(com, gbox)), i.e. when every body inside the box
  /// would also accept it; otherwise it is opened, and reached leaves
  /// append their chained bodies to the P2P list. The emitted M2P set is
  /// therefore a subset of any member's per-body accepts, so replaying the
  /// lists is at least as accurate as the per-body DFS (it substitutes
  /// exact or finer terms for some approximations — the source of the
  /// tolerance band in the differential suite, DESIGN.md §4e).
  ///
  /// Group members land in their own P2P list; their self-contribution is
  /// exactly zero (see math/batch_kernels.hpp). Synchronization-free like
  /// acceleration_on: safe under par_unseq, tree must not mutate.
  void collect_group_lists(const box_t& gbox, const std::vector<T>& m,
                           const std::vector<vec_t>& x, T theta2,
                           math::InteractionLists<T, D>& out, bool quadrupole = false) const {
    // Cooperative progress point per group walk: lets the chaos scheduler
    // interleave here and keeps an armed deadline observed between chunk
    // polls even when one group's walk is long.
    exec::checkpoint();
    const std::uint32_t root_val = child_[0];
    if (!is_internal(root_val)) {  // 0 or 1-leaf tree
      if (is_body(root_val))
        for (std::uint32_t b = body_of(root_val); b != kChainEnd; b = next_in_leaf_[b])
          out.push_body(x[b], m[b]);
      return;
    }
    T width = root_box_.longest_side() * T(0.5);
    std::uint32_t node = root_val;
    for (;;) {
      const std::uint32_t v = child_[node];
      bool descend = false;
      if (is_internal(v)) {
        const T d2 = gbox.dist2(node_com_[node]);
        if (width * width < theta2 * d2) {
          if (quadrupole)
            out.push_node(node_com_[node], node_mass_[node], node_quad_[node]);
          else
            out.push_node(node_com_[node], node_mass_[node]);
        } else {
          node = v;
          width *= T(0.5);
          descend = true;
        }
      } else if (is_body(v)) {
        for (std::uint32_t b = body_of(v); b != kChainEnd; b = next_in_leaf_[b])
          out.push_body(x[b], m[b]);
      }
      if (descend) continue;
      for (;;) {
        if ((node - 1) % K < K - 1) {
          ++node;
          break;
        }
        node = parent_[group_of(node)];
        width *= T(2);
        if (node == 0) return;
      }
    }
  }

  // -- dual traversal (cell <-> cell far field) -------------------------------

  /// Source-tree cell handle for the dual walk: a node slot plus its box
  /// side (the octree derives widths by halving, so the cell carries its
  /// own — the walk is not restricted to a root-to-leaf path here).
  struct DualSourceCell {
    std::uint32_t node;
    T width;
  };

  /// Seeds a dual walk with the root cell (full root-box side).
  void dual_root_cells(std::vector<DualSourceCell>& out) const {
    out.clear();
    if (child_.empty() || is_empty(child_[0])) return;
    out.push_back({0, root_box_.longest_side()});
  }

  /// One dual-walk partition step against the target cell `tbox`:
  ///   * mutual MAC (both s² < θ²·d² and w² < θ²·d², d² = dist²(tbox, com))
  ///     → the cell's multipole is translated into `L` (M2L);
  ///   * MAC fails → split the LARGER side: a cell at least as wide as the
  ///     target is opened in place (children re-tested here); a narrower
  ///     cell is deferred to the target's children, whose smaller boxes can
  ///     only increase d² and so may yet accept it. Opening on the target
  ///     side instead would explode the whole source tree at the coarse
  ///     target nodes (where d² ≈ 0 fails every test);
  ///   * body chains (always exact) are deferred regardless, ultimately
  ///     resolved by dual_finish at the leaf.
  /// Because the source-side criterion is exactly collect_group_lists'
  /// acceptance, the far field M2L replaces is the same cell set the group
  /// walk would have accepted — dual differs from group only by the local
  /// expansion's O(θ³) truncation. Returns the number of M2L translations.
  /// Synchronization-free; safe under par_unseq, tree must not mutate.
  std::size_t dual_partition(const box_t& tbox, T theta2, T G, T eps2,
                             const std::vector<DualSourceCell>& in,
                             std::vector<DualSourceCell>& defer,
                             math::LocalExpansion<T, D>& L, bool quadrupole) const {
    exec::checkpoint();
    if (tbox.empty()) return 0;
    const T side = tbox.longest_side();
    const T w2 = side * side;
    std::size_t accepted = 0;
    static thread_local std::vector<DualSourceCell> stack;
    stack.clear();
    for (const DualSourceCell& c0 : in) {
      stack.push_back(c0);
      while (!stack.empty()) {
        const DualSourceCell c = stack.back();
        stack.pop_back();
        const std::uint32_t v = child_[c.node];
        if (is_empty(v)) continue;
        if (is_body(v)) {  // body chains stay exact: resolved at the leaf
          defer.push_back(c);
          continue;
        }
        if (node_mass_[c.node] <= T(0)) continue;
        const T d2 = tbox.dist2(node_com_[c.node]);
        const T s2 = c.width * c.width;
        if (s2 < theta2 * d2 && w2 < theta2 * d2) {
          if (quadrupole)
            math::m2l(L, node_mass_[c.node], node_com_[c.node], node_quad_[c.node], G,
                      eps2);
          else
            math::m2l(L, node_mass_[c.node], node_com_[c.node], G, eps2);
          ++accepted;
        } else if (s2 >= w2) {  // split the larger: open the source cell
          const T half = c.width * T(0.5);
          for (std::uint32_t q = 0; q < K; ++q) stack.push_back({v + q, half});
        } else {  // target is the larger: let its children retry
          defer.push_back(c);
        }
      }
    }
    return accepted;
  }

  /// Resolves the cells a dual walk deferred all the way to a target leaf:
  /// the group-walk acceptance (collect_group_lists), restarted from each
  /// surviving cell instead of the root, emitting M2P/P2P batch lists.
  void dual_finish(const box_t& gbox, const std::vector<T>& m, const std::vector<vec_t>& x,
                   T theta2, const std::vector<DualSourceCell>& in,
                   math::InteractionLists<T, D>& out, bool quadrupole = false) const {
    exec::checkpoint();
    static thread_local std::vector<DualSourceCell> stack;
    stack.clear();
    for (const DualSourceCell& c0 : in) {
      stack.push_back(c0);
      while (!stack.empty()) {
        const DualSourceCell c = stack.back();
        stack.pop_back();
        const std::uint32_t v = child_[c.node];
        if (is_empty(v)) continue;
        if (is_body(v)) {
          for (std::uint32_t b = body_of(v); b != kChainEnd; b = next_in_leaf_[b])
            out.push_body(x[b], m[b]);
          continue;
        }
        if (node_mass_[c.node] <= T(0)) continue;
        const T d2 = gbox.dist2(node_com_[c.node]);
        if (c.width * c.width < theta2 * d2) {
          if (quadrupole)
            out.push_node(node_com_[c.node], node_mass_[c.node], node_quad_[c.node]);
          else
            out.push_node(node_com_[c.node], node_mass_[c.node]);
        } else {
          const T half = c.width * T(0.5);
          for (std::uint32_t q = 0; q < K; ++q) stack.push_back({v + q, half});
        }
      }
    }
  }

  /// Appends every body to `out` in leaf DFS order — the spatially coherent
  /// order the grouped force path partitions into blocks (the octree never
  /// reorders the System, so group membership comes from this walk).
  /// Single-threaded O(nodes); runs once per (re)build.
  void leaf_body_order(std::vector<std::uint32_t>& out) const {
    out.clear();
    std::vector<std::uint32_t> todo{0};
    while (!todo.empty()) {
      const std::uint32_t node = todo.back();
      todo.pop_back();
      const std::uint32_t v = child_[node];
      if (is_internal(v)) {
        // Reverse push so orthant 0 pops first: out follows Morton order.
        for (std::uint32_t q = K; q-- > 0;) todo.push_back(v + q);
      } else if (is_body(v)) {
        for (std::uint32_t b = body_of(v); b != kChainEnd; b = next_in_leaf_[b])
          out.push_back(b);
      }
    }
  }

  // -- incremental maintenance (temporal coherence) ---------------------------
  //
  // With geometry tracking enabled, the tree additionally records each
  // node's cell box and each body's current leaf, which makes the
  // move-only update possible: plan_update() flags bodies whose position
  // left their leaf's cell, apply_update() unlinks exactly those and
  // re-runs the standard insertion protocol for them. Everything else —
  // topology, untouched chains, the per-step multipole refit — is reused.
  // Tracking costs one O(capacity) box array and per-insert bookkeeping, so
  // it is off by default and only the incremental policy turns it on.

  /// Enables/disables geometry tracking. Takes effect at the next build().
  void set_track_geometry(bool on) { track_ = on; }
  [[nodiscard]] bool track_geometry() const { return track_; }

  struct UpdatePlan {
    std::uint32_t moved = 0;    // bodies that left their leaf cell
    std::uint32_t escaped = 0;  // of those, bodies now outside the root box
  };

  /// Flags bodies that crossed a cell boundary since the tree last placed
  /// them. Read-only scan, no synchronizing atomics: any policy. Requires
  /// geometry tracking and an unchanged body count.
  template <class Policy>
  UpdatePlan plan_update(Policy policy, const std::vector<vec_t>& x) {
    NBODY_REQUIRE(track_, "octree plan_update: geometry tracking disabled");
    NBODY_REQUIRE(body_leaf_.size() == x.size(),
                  "octree plan_update: body count changed since build");
    moved_flag_.assign(x.size(), 0);
    exec::store_relaxed(moved_count_, 0u);
    exec::store_relaxed(escaped_count_, 0u);
    exec::for_each_index(policy, x.size(), [&](std::size_t i) {
      if (node_box_[body_leaf_[i]].contains(x[i])) return;
      moved_flag_[i] = 1;
      exec::fetch_add_relaxed(moved_count_, 1u);
      if (!root_box_.contains(x[i])) exec::fetch_add_relaxed(escaped_count_, 1u);
    });
    return {exec::load_relaxed(moved_count_), exec::load_relaxed(escaped_count_)};
  }

  /// Relocates the bodies the last plan_update() flagged: serial unlink
  /// from their stale leaves, then parallel reinsertion via insert_one (the
  /// same starvation-free CAS protocol as build). Vacated subtrees stay
  /// allocated as garbage until the next full rebuild — traversals never
  /// reach them and the validator tolerates them. Returns false on node-
  /// pool overflow; the tree is then mid-surgery and the caller MUST do a
  /// full rebuild before using it.
  template <exec::StarvationFreeCapable Policy>
  bool apply_update(Policy policy, const std::vector<vec_t>& x) {
    NBODY_REQUIRE(track_ && moved_flag_.size() == x.size(),
                  "octree apply_update: run plan_update first");
    moved_list_.clear();
    for (std::uint32_t b = 0; b < static_cast<std::uint32_t>(x.size()); ++b) {
      if (moved_flag_[b] != 0) {
        unlink_body(b);
        moved_list_.push_back(b);
      }
    }
    if (moved_list_.empty()) return true;
    exec::store_relaxed(overflow_, std::uint8_t{0});
    try {
      exec::for_each_index(policy, moved_list_.size(),
                           [&](std::size_t j) { insert_one(moved_list_[j], x); });
    } catch (...) {
      arena_.retire_all();
      throw;
    }
    // Reinsertions refill from the partials the build retired, so repeated
    // incremental steps reuse pool space instead of growing high_water.
    arena_.retire_all();
    return exec::load_relaxed(overflow_) == 0;
  }

  /// Deepest insertion recorded since the last build()/prepare() — grows as
  /// incremental reinsertions subdivide; the depth-skew quality signal.
  [[nodiscard]] unsigned max_insert_depth() const {
    return exec::load_relaxed(const_cast<std::uint32_t&>(max_depth_seen_));
  }
  /// Leaves emptied by incremental removals since the last build().
  [[nodiscard]] std::uint32_t vacated_leaves() const { return vacated_leaves_; }
  /// Current leaf of body b (geometry tracking only; test hook).
  [[nodiscard]] std::uint32_t leaf_of(std::uint32_t b) const { return body_leaf_[b]; }
  /// Cell box of a node (geometry tracking only; test hook).
  [[nodiscard]] const box_t& node_box(std::uint32_t node) const { return node_box_[node]; }

  // -- spatial queries --------------------------------------------------------

  /// Invokes fn(body_index) for every body within `radius` of `center`.
  /// The tree doubles as a spatial index — the "transferable to other
  /// domains and algorithms" use the paper's introduction motivates.
  /// Read-only; safe to call concurrently after build(). Prunes by
  /// box/sphere overlap using the implicit node geometry.
  template <class Fn>
  void for_each_in_radius(const vec_t& center, T radius, const std::vector<vec_t>& x,
                          Fn&& fn) const {
    NBODY_REQUIRE(radius >= T(0), "for_each_in_radius: negative radius");
    const T r2 = radius * radius;
    // Explicit stack of (node, box): a host-side utility, so recursion depth
    // control matters more than the stackless trick used on the force path.
    std::vector<std::pair<std::uint32_t, box_t>> todo{{0u, root_box_}};
    while (!todo.empty()) {
      const auto [node, box] = todo.back();
      todo.pop_back();
      // Closest point of the box to the center; prune if outside the sphere.
      T d2 = T(0);
      for (std::size_t d = 0; d < D; ++d) {
        const T c = center[d] < box.lo[d] ? box.lo[d]
                    : center[d] > box.hi[d] ? box.hi[d]
                                            : center[d];
        const T delta = center[d] - c;
        d2 += delta * delta;
      }
      if (d2 > r2) continue;
      const std::uint32_t v = child_[node];
      if (is_internal(v)) {
        for (unsigned q = 0; q < K; ++q) todo.push_back({v + q, box.child_box(q)});
      } else if (is_body(v)) {
        for (std::uint32_t b = body_of(v); b != kChainEnd; b = next_in_leaf_[b]) {
          if (norm2(x[b] - center) <= r2) fn(b);
        }
      }
    }
  }

  /// Number of bodies within `radius` of `center`.
  [[nodiscard]] std::size_t count_in_radius(const vec_t& center, T radius,
                                            const std::vector<vec_t>& x) const {
    std::size_t n = 0;
    for_each_in_radius(center, radius, x, [&](std::uint32_t) { ++n; });
    return n;
  }

  // -- introspection (tests, stats) -----------------------------------------

  /// Aggregate structural statistics (single-threaded walk; diagnostics and
  /// capacity-tuning aid, not a hot path).
  struct TreeStats {
    std::uint32_t nodes = 0;           // allocated nodes
    std::uint32_t internal_nodes = 0;
    std::uint32_t body_leaves = 0;
    std::uint32_t empty_leaves = 0;
    std::uint32_t bodies = 0;          // bodies reachable from leaves
    unsigned max_depth = 0;
    std::uint32_t max_chain = 0;       // longest max-depth overflow chain
    std::size_t memory_bytes = 0;      // pool + parent + chain arrays
  };

  [[nodiscard]] TreeStats stats() const {
    TreeStats st;
    st.nodes = node_count();
    st.memory_bytes = child_.capacity() * sizeof(std::uint32_t) +
                      parent_.capacity() * sizeof(std::uint32_t) +
                      next_in_leaf_.capacity() * sizeof(std::uint32_t);
    // Iterative DFS with explicit stack of (node, depth).
    std::vector<std::pair<std::uint32_t, unsigned>> todo{{0u, 0u}};
    while (!todo.empty()) {
      const auto [node, depth] = todo.back();
      todo.pop_back();
      st.max_depth = depth > st.max_depth ? depth : st.max_depth;
      const std::uint32_t v = child_[node];
      if (is_internal(v)) {
        ++st.internal_nodes;
        for (unsigned q = 0; q < K; ++q) todo.push_back({v + q, depth + 1});
      } else if (is_body(v)) {
        ++st.body_leaves;
        std::uint32_t len = 0;
        for (std::uint32_t b = body_of(v); b != kChainEnd; b = next_in_leaf_[b]) ++len;
        st.bodies += len;
        st.max_chain = len > st.max_chain ? len : st.max_chain;
      } else {
        ++st.empty_leaves;
      }
    }
    return st;
  }

  /// Live nodes: the root plus every sibling group the arena actually
  /// served. Chunk space still parked in the arena (holes) is not counted;
  /// sweeps over node indices must bound with node_index_end() instead.
  [[nodiscard]] std::uint32_t node_count() const {
    return capacity_ == 0 ? 0 : 1 + static_cast<std::uint32_t>(arena_.served());
  }
  /// One past the highest node index ever issued: holes from chunks still
  /// parked in the arena are empty sibling groups with parent 0 — the
  /// node-indexed passes treat them exactly like empty leaves.
  [[nodiscard]] std::uint32_t node_index_end() const { return arena_.high_water(); }
  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  /// Node-allocation arena (tests: leak/conservation assertions).
  [[nodiscard]] const exec::ChunkArena& arena() const { return arena_; }
  /// Subdivision-lock contention events observed by the most recent build
  /// (spins on a Locked slot + failed lock CASes). Reset per build attempt.
  [[nodiscard]] std::uint64_t lock_retries() const {
    return exec::load_relaxed(const_cast<std::uint64_t&>(lock_retries_));
  }
  [[nodiscard]] const box_t& root_box() const { return root_box_; }
  [[nodiscard]] std::uint32_t slot(std::uint32_t node) const { return child_[node]; }
  [[nodiscard]] std::uint32_t parent_of_group(std::uint32_t group) const {
    return parent_[group];
  }
  [[nodiscard]] T node_mass(std::uint32_t node) const { return node_mass_[node]; }
  [[nodiscard]] vec_t node_com(std::uint32_t node) const { return node_com_[node]; }

  /// Bodies chained at a leaf slot value (empty vector for kEmpty).
  [[nodiscard]] std::vector<std::uint32_t> chain(std::uint32_t slot_value) const {
    std::vector<std::uint32_t> out;
    if (!is_body(slot_value)) return out;
    for (std::uint32_t b = body_of(slot_value); b != kChainEnd; b = next_in_leaf_[b])
      out.push_back(b);
    return out;
  }

  /// Prepares an empty tree over `root_box` with capacity for roughly
  /// `n_bodies` — entry point for the progress simulator, which then calls
  /// insert_one per lane itself.
  void prepare(const box_t& root_box, std::size_t n_bodies) {
    root_box_ = root_box;
    reset(initial_capacity(n_bodies), n_bodies);
  }

 private:
  [[nodiscard]] std::uint32_t initial_capacity(std::size_t n) const {
    // Computed in double and clamped before the narrowing cast so repeated
    // grow_capacity() calls can never overflow the 32-bit node index space.
    const double want = params_.capacity_factor * static_cast<double>(n) +
                        static_cast<double>(params_.min_capacity);
    const double capped = std::min(want, static_cast<double>(params_.max_capacity));
    const auto cap = static_cast<std::uint32_t>(capped);
    return 1 + ((cap + K - 1) / K) * K;  // root + whole sibling groups
  }

  void reset(std::uint32_t capacity, std::size_t n_bodies) {
    capacity_ = capacity;
    child_.assign(capacity, kEmpty);
    parent_.assign((capacity + K - 1) / K, 0);
    next_in_leaf_.resize(n_bodies);
    // Node 0 is the root; sibling groups start at 1 and stay K-aligned
    // because every arena request is exactly K and chunks are K-multiples.
    const std::uint32_t groups = params_.arena_groups > 0 ? params_.arena_groups : 1;
    arena_.reset(1, capacity, K * groups,
                 std::max(1u, exec::thread_pool::global().concurrency()));
    overflow_ = 0;
    lock_retries_ = 0;
    if (track_) {
      node_box_.assign(capacity, box_t{});
      node_box_[0] = root_box_;
      body_leaf_.assign(n_bodies, 0);
      max_depth_seen_ = 0;
      vacated_leaves_ = 0;
    } else {
      node_box_.clear();
      body_leaf_.clear();
    }
  }

  /// Relaxed-CAS max of the tracked insertion depth (geometry mode only).
  void note_depth(unsigned depth) {
    auto d = static_cast<std::uint32_t>(depth);
    std::uint32_t cur = exec::load_relaxed(max_depth_seen_);
    while (d > cur) {
      std::uint32_t expected = cur;
      if (exec::compare_exchange_acq_rel(max_depth_seen_, expected, d)) break;
      cur = exec::load_relaxed(max_depth_seen_);
    }
  }

  /// Serial unlink of body b from its leaf chain (apply_update only; the
  /// caller guarantees no concurrent tree access).
  void unlink_body(std::uint32_t b) {
    const std::uint32_t leaf = body_leaf_[b];
    const std::uint32_t head = body_of(child_[leaf]);
    if (head == b) {
      const std::uint32_t next = next_in_leaf_[b];
      child_[leaf] = next == kChainEnd ? kEmpty : (kBodyFlag | next);
      if (next == kChainEnd) ++vacated_leaves_;
    } else {
      std::uint32_t prev = head;
      while (next_in_leaf_[prev] != b) prev = next_in_leaf_[prev];
      next_in_leaf_[prev] = next_in_leaf_[b];
    }
  }

  void interact_leaf(std::uint32_t v, const vec_t& xi, std::uint32_t self,
                     const std::vector<T>& m, const std::vector<vec_t>& x, T G, T eps2,
                     vec_t& acc) const {
    if (!is_body(v)) return;
    for (std::uint32_t b = body_of(v); b != kChainEnd; b = next_in_leaf_[b]) {
      if (b == self) continue;
      acc += math::gravity_accel(xi, x[b], m[b], G, eps2);
    }
  }

  Params params_{};
  box_t root_box_{};
  std::vector<std::uint32_t> child_;         // one slot per node
  std::vector<std::uint32_t> parent_;        // one parent offset per sibling group
  std::vector<std::uint32_t> next_in_leaf_;  // per body: max-depth chain links
  std::vector<std::uint32_t> arrivals_;      // per node: multipole arrival counters
  std::vector<T> node_mass_;
  std::vector<vec_t> node_com_;  // weighted sum during reduction, then CoM
  std::vector<math::SymTensor<T, D>> node_quad_;  // traceless quadrupoles (optional)
  bool has_quadrupoles_ = false;
  std::uint32_t capacity_ = 0;
  exec::ChunkArena arena_;       // node allocator: rank-local chunks over [1, capacity)
  std::uint8_t overflow_ = 0;    // sticky abort flag (atomic access)
  std::uint64_t lock_retries_ = 0;  // build-lock contention events (atomic access)
  // Incremental-maintenance state (populated only when track_ is on).
  bool track_ = false;
  std::vector<box_t> node_box_;            // cell geometry per node
  std::vector<std::uint32_t> body_leaf_;   // current leaf per body
  std::vector<std::uint8_t> moved_flag_;   // plan_update scratch
  std::vector<std::uint32_t> moved_list_;  // apply_update scratch
  std::uint32_t moved_count_ = 0;    // plan counters (atomic access)
  std::uint32_t escaped_count_ = 0;  // (atomic access)
  std::uint32_t max_depth_seen_ = 0;  // deepest insertion (atomic max)
  std::uint32_t vacated_leaves_ = 0;  // leaves emptied by unlinks since build
};

}  // namespace nbody::octree
