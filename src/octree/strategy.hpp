// Octree force strategy: composes Algorithm 2's per-step pipeline
// (CalculateBoundingBox -> BuildTree -> CalculateMultipoles ->
// CalculateForce) around the ConcurrentOctree, with the per-phase execution
// policies the paper prescribes:
//
//   bounding box — par_unseq-safe reduction (Algorithm 3)
//   build        — par (starvation-free locking)
//   multipoles   — par (synchronizing atomics)
//   force        — par_unseq (no synchronization)
//
// The strategy as a whole therefore requires parallel forward progress and
// only accepts seq or par.
#pragma once

#include "core/bbox.hpp"
#include "core/dual_traversal.hpp"
#include "core/step_context.hpp"
#include "core/system.hpp"
#include "core/tree_maintenance.hpp"
#include "math/batch_kernels.hpp"
#include "octree/concurrent_octree.hpp"
#include "sfc/reorder.hpp"
#include "support/timer.hpp"

namespace nbody::octree {

template <class T, std::size_t D>
class OctreeStrategy {
 public:
  static constexpr const char* name = "octree";

  struct Options {
    typename ConcurrentOctree<T, D>::Params tree{};
    /// Tree-lifecycle policy (core::TreeMaintenance): rebuild every step
    /// (default, the paper's Algorithm 2), refit:k (rebuild every k-th
    /// step, refit moments in between — the amortization of Iwasawa et al.
    /// the old reuse_interval expressed), or incremental (relocate only the
    /// bodies that crossed cell boundaries; full rebuild on quality
    /// degradation).
    core::TreeUpdatePolicy update{};
    /// Curve-order the bodies before each (re)build: neighboring threads
    /// then insert into neighboring subtrees, cutting subdivision-lock
    /// contention and improving traversal locality (Burtscher & Pingali's
    /// presort, optional here — the paper's octree inserts unsorted).
    bool presort = false;
  };

  OctreeStrategy() = default;
  explicit OctreeStrategy(typename ConcurrentOctree<T, D>::Params params)
      : OctreeStrategy(Options{params, {}, false}) {}
  explicit OctreeStrategy(Options opts)
      : opts_(opts), tree_(opts.tree), maint_(opts.update, "OctreeStrategy") {}

  /// TreeMaintenance lifecycle: decides build / refit / incremental-update
  /// for this step, performs the structural work, and reports the decision
  /// through the context. accelerations() calls it first; exposed for tests
  /// and harnesses that drive the lifecycle directly.
  template <exec::StarvationFreeCapable Policy>
  core::TreeAction prepare(Policy policy, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const bool incremental = maint_.policy().mode == core::TreeUpdateMode::incremental;
    tree_.set_track_geometry(incremental);
    // Quality monitor — only worth running when the lifecycle would
    // otherwise keep the tree this step.
    bool degraded = false;
    typename ConcurrentOctree<T, D>::UpdatePlan plan{};
    if (incremental && maint_.would_keep()) {
      if (!tracked_build_ || tracked_n_ != sys.size()) {
        degraded = true;  // no usable geometry record (mode switch / resize)
      } else if (sys.size() > 0) {
        auto scope = ctx.phase("quality");
        plan = tree_.plan_update(policy, sys.x);
        moves_since_build_ += plan.moved;
        const core::TreeUpdatePolicy& pol = maint_.policy();
        const auto n = static_cast<double>(sys.size());
        const unsigned depth_growth = tree_.max_insert_depth() - build_depth_;
        degraded = plan.escaped > 0 ||
                   static_cast<double>(plan.moved) > pol.max_moved_fraction * n ||
                   static_cast<double>(moves_since_build_) > pol.max_drift_fraction * n ||
                   depth_growth > pol.max_depth_growth;
        if (ctx.metrics_enabled()) {
          ctx.metrics->set_gauge("octree.quality.moved_fraction",
                                 static_cast<double>(plan.moved) / n);
          ctx.metrics->set_gauge("octree.quality.escaped",
                                 static_cast<double>(plan.escaped));
          ctx.metrics->set_gauge("octree.quality.depth_growth",
                                 static_cast<double>(depth_growth));
          ctx.metrics->set_gauge("octree.quality.vacated_leaves",
                                 static_cast<double>(tree_.vacated_leaves()));
          if (degraded) ctx.metrics->counter("octree.rebuilds.quality").add();
        }
      }
    }
    core::TreeAction act = maint_.decide(degraded);
    if (act == core::TreeAction::Built || act == core::TreeAction::Rebuilt) {
      rebuild(policy, ctx);
    } else if (act == core::TreeAction::Updated && plan.moved > 0) {
      bool ok = false;
      {
        auto scope = ctx.phase("update");
        ok = tree_.apply_update(policy, sys.x);
        if (ok && ctx.metrics_enabled())
          ctx.metrics->counter("octree.update.moved").add(plan.moved);
      }
      if (ok) {
        order_dirty_ = true;  // relocations perturb the leaf-DFS order
      } else {
        // Node pool exhausted mid-update: the tree is mid-surgery, so fall
        // back to a full rebuild (which also resets the bookkeeping).
        rebuild(policy, ctx);
        act = core::TreeAction::Rebuilt;
      }
    }
    // Refit steps need no structural work here: accelerations() recomputes
    // the multipole moments from the moved positions every step, which is
    // exactly the bottom-up refit.
    ctx.note_tree_action(act);
    last_action_ = act;
    return act;
  }

  template <exec::StarvationFreeCapable Policy>
  void accelerations(Policy policy, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    prepare(policy, ctx);
    {
      auto scope = ctx.phase("multipole");
      tree_.compute_multipoles(policy, sys.m, sys.x);
      if (cfg.quadrupole) tree_.compute_quadrupoles(policy, sys.m, sys.x);
    }
    {
      auto scope = ctx.phase("force");
      // The force phase is synchronization-free either way: under a parallel
      // caller it runs with par_unseq, exactly as the paper's implementation
      // does. cfg.traversal selects the evaluation: `dual` walks target and
      // source cells simultaneously (M2L/L2L/L2P far field, batch-kernel
      // fallback), `group` — or the pre-mode group_size > 0 opt-in — walks
      // once per block of spatially coherent bodies, and `dfs` is the
      // per-body walk.
      const bool dual = cfg.traversal == core::TraversalMode::dual;
      const bool grouped =
          !dual && (cfg.group_size > 0 || cfg.traversal == core::TraversalMode::group);
      if constexpr (Policy::is_parallel) {
        if (dual)
          compute_forces_dual(exec::par_unseq, ctx);
        else if (grouped)
          compute_forces_grouped(exec::par_unseq, ctx);
        else
          compute_forces(exec::par_unseq, ctx);
      } else {
        if (dual)
          compute_forces_dual(exec::seq, ctx);
        else if (grouped)
          compute_forces_grouped(exec::seq, ctx);
        else
          compute_forces(exec::seq, ctx);
      }
    }
  }

  /// The tree of the most recent accelerations() call (introspection).
  [[nodiscard]] const ConcurrentOctree<T, D>& tree() const { return tree_; }

  /// Degradation-ladder hook (Simulation::run_guarded): give the next build
  /// twice the node-pool headroom after an overflow failure.
  void grow_capacity() { tree_.grow_capacity(); }

  /// Recovery hook: force a full rebuild on the next accelerations() call —
  /// after a checkpoint restore the cached topology, the incremental
  /// bookkeeping, and the cached group partition of the grouped force path
  /// no longer match the restored positions.
  void invalidate() {
    maint_.invalidate();
    order_dirty_ = true;
  }

  /// Tree-lifecycle policy (accuracy-rung and CLI surface).
  [[nodiscard]] const core::TreeUpdatePolicy& update_policy() const { return maint_.policy(); }
  void set_update_policy(core::TreeUpdatePolicy p) { maint_.set_policy(p); }
  /// What prepare() did on the most recent step.
  [[nodiscard]] core::TreeAction last_action() const { return last_action_; }

  /// Deprecated reuse_interval shims: delegate to the TreeUpdatePolicy
  /// mapping (k == 1 → rebuild, k > 1 → refit:k) and validate k >= 1 like
  /// the constructors always did.
  void set_reuse_interval(unsigned k) { maint_.set_reuse_interval(k); }
  [[nodiscard]] unsigned reuse_interval() const { return maint_.reuse_interval(); }

 private:
  /// Full (re)build: bounding box, optional presort, fresh tree; resets the
  /// incremental bookkeeping and dirties the cached group partition.
  template <exec::StarvationFreeCapable Policy>
  void rebuild(Policy policy, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    {
      auto scope = ctx.phase("bbox");
      root_box_ = core::compute_root_cube(policy, sys.x);
      // Incremental mode inflates the root cube so small drift stays inside
      // the domain between rebuilds (any escape degrades to a rebuild).
      if (tree_.track_geometry() && !root_box_.empty()) {
        const T half = root_box_.extent()[0] * T(0.625);  // 1.25x half-extent
        root_box_ = ConcurrentOctree<T, D>::box_t::cube(root_box_.center(), half);
      }
    }
    if (opts_.presort) {
      auto scope = ctx.phase("sort");
      sfc::reorder_system(policy, sys, root_box_);
    }
    {
      auto scope = ctx.phase("build");
      tree_.build(policy, sys.x, root_box_);
    }
    order_dirty_ = true;  // new topology ⇒ stale group partition
    moves_since_build_ = 0;
    build_depth_ = tree_.max_insert_depth();
    tracked_build_ = tree_.track_geometry();
    tracked_n_ = sys.size();
    if (ctx.metrics_enabled()) record_build_metrics(*ctx.metrics);
  }

  template <class ForcePolicy>
  void compute_forces(ForcePolicy fp, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    if (!ctx.metrics_enabled()) {
      tree_.accelerations(fp, sys.m, sys.x, sys.a, cfg.theta, cfg.G, cfg.eps2(),
                          cfg.quadrupole);
      return;
    }
    // Counted traversal: identical forces, plus the interaction counters the
    // paper's work-vs-theta discussion is about. Counter handles resolve
    // once; per-body flushes are relaxed adds (par_unseq-safe).
    auto& m2p = ctx.metrics->counter("octree.traversal.m2p");
    auto& p2p = ctx.metrics->counter("octree.traversal.p2p");
    auto& opens = ctx.metrics->counter("octree.traversal.opens");
    auto& visited = ctx.metrics->counter("octree.traversal.nodes_visited");
    const T theta2 = cfg.theta * cfg.theta;
    const T G = cfg.G;
    const T eps2 = cfg.eps2();
    const bool quad = cfg.quadrupole;
    exec::for_each_index(fp, sys.x.size(), [&, theta2, G, eps2, quad](std::size_t i) {
      typename ConcurrentOctree<T, D>::TraversalStats st;
      sys.a[i] = tree_.acceleration_on_counted(sys.x[i], static_cast<std::uint32_t>(i),
                                               sys.m, sys.x, theta2, G, eps2, st, quad);
      m2p.add(st.accepts);
      p2p.add(st.exact_pairs);
      opens.add(st.opens);
      visited.add(st.nodes_visited);
    });
  }

  /// Per-worker scratch of the grouped force path, reused across groups so
  /// steady state allocates nothing. thread_local ⇒ no synchronization
  /// (par_unseq-safe and lockset-clean by construction).
  struct GroupScratch {
    math::InteractionLists<T, D> lists;
    std::vector<typename core::System<T, D>::vec_t> xt;
    std::vector<typename core::System<T, D>::vec_t> acc;
  };

  /// Group-traversal force evaluation: partition bodies into blocks of the
  /// cached leaf-DFS order (spatially coherent by construction — the octree
  /// never reorders the System), walk the tree once per block against the
  /// block's bounding box, and replay the emitted interaction lists through
  /// the SoA batch kernels. Gather/scatter through body_order_ maps block
  /// slots back to System indices.
  template <class ForcePolicy>
  void compute_forces_grouped(ForcePolicy fp, core::StepContext<T, D>& ctx) {
    using vec_t = typename core::System<T, D>::vec_t;
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    const std::size_t n = sys.x.size();
    if (n == 0) return;
    if (order_dirty_ || body_order_.size() != n) {
      tree_.leaf_body_order(body_order_);
      order_dirty_ = false;
    }
    // group_size == 0 can reach here via --traversal group; clamp to N.
    const std::size_t gsize = std::min(cfg.effective_group_size(), n);
    const std::size_t ngroups = (n + gsize - 1) / gsize;
    const T theta2 = cfg.theta2();
    const T G = cfg.G;
    const T eps2 = cfg.eps2();
    const bool quad = cfg.quadrupole;
    // Metric handles resolve once; per-group flushes are relaxed adds.
    const bool counted = ctx.metrics_enabled();
    auto* groups_ctr = counted ? &ctx.metrics->counter("octree.group.groups") : nullptr;
    auto* m2p_ctr = counted ? &ctx.metrics->counter("octree.group.m2p") : nullptr;
    auto* p2p_ctr = counted ? &ctx.metrics->counter("octree.group.p2p") : nullptr;
    auto* walk_ns = counted ? &ctx.metrics->counter("octree.group.walk_ns") : nullptr;
    auto* kernel_ns = counted ? &ctx.metrics->counter("octree.group.kernel_ns") : nullptr;
    auto* m2p_len = counted ? &ctx.metrics->histogram("octree.group.m2p_len",
                                                      {16, 64, 256, 1024, 4096, 16384})
                            : nullptr;
    auto* p2p_len = counted ? &ctx.metrics->histogram("octree.group.p2p_len",
                                                      {16, 64, 256, 1024, 4096, 16384})
                            : nullptr;
    exec::for_each_index(fp, ngroups, [&, theta2, G, eps2, quad, gsize, n](std::size_t gi) {
      static thread_local GroupScratch s;
      const std::size_t b0 = gi * gsize;
      const std::size_t b1 = b0 + gsize < n ? b0 + gsize : n;
      const std::size_t g = b1 - b0;
      s.xt.resize(g);
      s.acc.resize(g);
      typename ConcurrentOctree<T, D>::box_t gbox{};
      for (std::size_t k = 0; k < g; ++k) {
        const vec_t xi = sys.x[body_order_[b0 + k]];
        s.xt[k] = xi;
        gbox = gbox.merged(xi);
      }
      s.lists.clear();
      support::Stopwatch sw;
      tree_.collect_group_lists(gbox, sys.m, sys.x, theta2, s.lists, quad);
      const double walk_s = sw.seconds();
      sw.reset();
      math::evaluate_interaction_lists(s.lists, s.xt.data(), g, G, eps2, s.acc.data());
      const double kernel_s = sw.seconds();
      for (std::size_t k = 0; k < g; ++k) sys.a[body_order_[b0 + k]] = s.acc[k];
      if (groups_ctr != nullptr) {
        groups_ctr->add();
        m2p_ctr->add(s.lists.m2p_size());
        p2p_ctr->add(s.lists.p2p_size());
        walk_ns->add(static_cast<std::uint64_t>(walk_s * 1e9));
        kernel_ns->add(static_cast<std::uint64_t>(kernel_s * 1e9));
        m2p_len->observe(static_cast<double>(s.lists.m2p_size()));
        p2p_len->observe(static_cast<double>(s.lists.p2p_size()));
      }
    });
  }

  /// Dual-tree force evaluation: the group partition's bounding boxes form
  /// the leaf level of an implicit target tree (core::DualTargetTree); the
  /// dual walk translates mutually well-separated source cells into local
  /// expansions carried down the target tree (M2L + L2L), and each target
  /// leaf resolves its surviving cells through the group-walk acceptance
  /// into M2P/P2P batch lists, finishing with one L2P per body. The walk's
  /// only shared writes are relaxed counter adds, each leaf owns a disjoint
  /// slice of sys.a, and expansions are per-step scratch — never cached on
  /// the tree — so refit/update/restore can't observe stale ones.
  template <class ForcePolicy>
  void compute_forces_dual(ForcePolicy fp, core::StepContext<T, D>& ctx) {
    using box_t = typename ConcurrentOctree<T, D>::box_t;
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    const std::size_t n = sys.x.size();
    if (n == 0) return;
    if (order_dirty_ || body_order_.size() != n) {
      tree_.leaf_body_order(body_order_);
      order_dirty_ = false;
    }
    const std::size_t gsize = std::min(cfg.effective_group_size(), n);
    const std::size_t ngroups = (n + gsize - 1) / gsize;
    const T theta2 = cfg.theta2();
    const T G = cfg.G;
    const T eps2 = cfg.eps2();
    const bool quad = cfg.quadrupole;
    std::vector<box_t> gboxes(ngroups);
    exec::for_each_index(fp, ngroups, [&, gsize, n](std::size_t gi) {
      const std::size_t b0 = gi * gsize;
      const std::size_t b1 = b0 + gsize < n ? b0 + gsize : n;
      box_t gbox{};
      for (std::size_t k = b0; k < b1; ++k) gbox = gbox.merged(sys.x[body_order_[k]]);
      gboxes[gi] = gbox;
    });
    core::DualTargetTree<T, D> target_tree;
    target_tree.build(gboxes);
    const bool counted = ctx.metrics_enabled();
    auto* groups_ctr = counted ? &ctx.metrics->counter("octree.dual.groups") : nullptr;
    auto* m2l_ctr = counted ? &ctx.metrics->counter("octree.dual.m2l") : nullptr;
    auto* l2l_ctr = counted ? &ctx.metrics->counter("octree.dual.l2l") : nullptr;
    auto* l2p_ctr = counted ? &ctx.metrics->counter("octree.dual.l2p") : nullptr;
    auto* m2p_ctr = counted ? &ctx.metrics->counter("octree.dual.m2p") : nullptr;
    auto* p2p_ctr = counted ? &ctx.metrics->counter("octree.dual.p2p") : nullptr;
    auto* walk_ns = counted ? &ctx.metrics->counter("octree.dual.walk_ns") : nullptr;
    auto* kernel_ns = counted ? &ctx.metrics->counter("octree.dual.kernel_ns") : nullptr;
    const auto leaf_fn =
        [&, theta2, G, eps2, quad, gsize, n](
            std::size_t gi, const math::LocalExpansion<T, D>& L,
            const std::vector<typename ConcurrentOctree<T, D>::DualSourceCell>& cells) {
          static thread_local GroupScratch s;
          const std::size_t b0 = gi * gsize;
          const std::size_t b1 = b0 + gsize < n ? b0 + gsize : n;
          const std::size_t g = b1 - b0;
          s.xt.resize(g);
          s.acc.resize(g);
          for (std::size_t k = 0; k < g; ++k) s.xt[k] = sys.x[body_order_[b0 + k]];
          s.lists.clear();
          support::Stopwatch sw;
          tree_.dual_finish(gboxes[gi], sys.m, sys.x, theta2, cells, s.lists, quad);
          const double finish_s = sw.seconds();
          sw.reset();
          math::evaluate_interaction_lists(s.lists, s.xt.data(), g, G, eps2, s.acc.data());
          for (std::size_t k = 0; k < g; ++k) s.acc[k] += math::l2p(L, s.xt[k]);
          const double kernel_s = sw.seconds();
          for (std::size_t k = 0; k < g; ++k) sys.a[body_order_[b0 + k]] = s.acc[k];
          if (groups_ctr != nullptr) {
            groups_ctr->add();
            l2p_ctr->add(g);
            m2p_ctr->add(s.lists.m2p_size());
            p2p_ctr->add(s.lists.p2p_size());
            walk_ns->add(static_cast<std::uint64_t>(finish_s * 1e9));
            kernel_ns->add(static_cast<std::uint64_t>(kernel_s * 1e9));
          }
        };
    const core::DualWalkStats st =
        core::dual_traverse(fp, tree_, target_tree, theta2, G, eps2, quad, leaf_fn);
    if (counted) {
      m2l_ctr->add(st.m2l);
      l2l_ctr->add(st.l2l);
    }
  }

  void record_build_metrics(obs::MetricsRegistry& reg) const {
    const auto st = tree_.stats();
    reg.counter("octree.builds").add();
    reg.counter("octree.lock_retries").add(tree_.lock_retries());
    reg.set_gauge("octree.nodes", static_cast<double>(st.nodes));
    reg.set_gauge("octree.internal_nodes", static_cast<double>(st.internal_nodes));
    reg.set_gauge("octree.body_leaves", static_cast<double>(st.body_leaves));
    reg.set_gauge("octree.empty_leaves", static_cast<double>(st.empty_leaves));
    reg.set_gauge("octree.max_depth", static_cast<double>(st.max_depth));
    reg.set_gauge("octree.capacity", static_cast<double>(tree_.capacity()));
    reg.set_gauge("octree.memory_bytes", static_cast<double>(st.memory_bytes));
    // Leaf occupancy: bodies per occupied leaf (max-depth chains make >1
    // possible even with one-body subdivision).
    auto& occ = reg.histogram("octree.leaf_occupancy", {1, 2, 4, 8, 16, 32});
    const std::uint32_t nodes = tree_.node_index_end();
    for (std::uint32_t nd = 0; nd < nodes; ++nd) {
      const std::uint32_t v = tree_.slot(nd);
      if (!ConcurrentOctree<T, D>::is_body(v)) continue;
      occ.observe(static_cast<double>(tree_.chain(v).size()));
    }
  }

  Options opts_{};
  ConcurrentOctree<T, D> tree_;
  typename ConcurrentOctree<T, D>::box_t root_box_{};
  core::TreeMaintenance maint_{};
  core::TreeAction last_action_ = core::TreeAction::Built;
  // Incremental-quality bookkeeping, reset by rebuild().
  std::uint64_t moves_since_build_ = 0;  // cumulative cell crossings
  unsigned build_depth_ = 0;             // tree depth right after the build
  bool tracked_build_ = false;           // last build recorded geometry
  std::size_t tracked_n_ = 0;            // body count at the last build
  // Grouped force path: leaf-DFS body order cached per build; dirty after a
  // rebuild, an incremental update, or an invalidate() (checkpoint restore)
  // so stale partitions are never replayed against a new topology.
  std::vector<std::uint32_t> body_order_;
  bool order_dirty_ = true;
};

}  // namespace nbody::octree
