// Octree force strategy: composes Algorithm 2's per-step pipeline
// (CalculateBoundingBox -> BuildTree -> CalculateMultipoles ->
// CalculateForce) around the ConcurrentOctree, with the per-phase execution
// policies the paper prescribes:
//
//   bounding box — par_unseq-safe reduction (Algorithm 3)
//   build        — par (starvation-free locking)
//   multipoles   — par (synchronizing atomics)
//   force        — par_unseq (no synchronization)
//
// The strategy as a whole therefore requires parallel forward progress and
// only accepts seq or par.
#pragma once

#include "core/bbox.hpp"
#include "core/step_context.hpp"
#include "core/system.hpp"
#include "math/batch_kernels.hpp"
#include "octree/concurrent_octree.hpp"
#include "sfc/reorder.hpp"
#include "support/timer.hpp"

namespace nbody::octree {

template <class T, std::size_t D>
class OctreeStrategy {
 public:
  static constexpr const char* name = "octree";

  struct Options {
    typename ConcurrentOctree<T, D>::Params tree{};
    /// Rebuild the tree every `reuse_interval` steps and reuse its topology
    /// in between, recomputing only the multipole moments from the moved
    /// positions — the amortization of Iwasawa et al. the paper's related
    /// work notes "can be applied to any Barnes-Hut implementation".
    /// 1 (default) rebuilds every step, as the paper's Algorithm 2 does.
    unsigned reuse_interval = 1;
    /// Curve-order the bodies before each (re)build: neighboring threads
    /// then insert into neighboring subtrees, cutting subdivision-lock
    /// contention and improving traversal locality (Burtscher & Pingali's
    /// presort, optional here — the paper's octree inserts unsorted).
    bool presort = false;
  };

  OctreeStrategy() = default;
  explicit OctreeStrategy(typename ConcurrentOctree<T, D>::Params params)
      : OctreeStrategy(Options{params, 1, false}) {}
  explicit OctreeStrategy(Options opts) : opts_(opts), tree_(opts.tree) {
    NBODY_REQUIRE(opts.reuse_interval >= 1, "OctreeStrategy: reuse_interval must be >= 1");
  }

  template <exec::StarvationFreeCapable Policy>
  void accelerations(Policy policy, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    const bool rebuild = steps_since_build_ % opts_.reuse_interval == 0;
    if (rebuild) {
      {
        auto scope = ctx.phase("bbox");
        root_box_ = core::compute_root_cube(policy, sys.x);
      }
      if (opts_.presort) {
        auto scope = ctx.phase("sort");
        sfc::reorder_system(policy, sys, root_box_);
      }
      {
        auto scope = ctx.phase("build");
        tree_.build(policy, sys.x, root_box_);
      }
      steps_since_build_ = 0;
      order_dirty_ = true;  // new topology ⇒ stale group partition
      if (ctx.metrics_enabled()) record_build_metrics(*ctx.metrics);
    }
    ++steps_since_build_;
    {
      auto scope = ctx.phase("multipole");
      tree_.compute_multipoles(policy, sys.m, sys.x);
      if (cfg.quadrupole) tree_.compute_quadrupoles(policy, sys.m, sys.x);
    }
    {
      auto scope = ctx.phase("force");
      // The force phase is synchronization-free either way: under a parallel
      // caller it runs with par_unseq, exactly as the paper's implementation
      // does. group_size > 0 selects the group-traversal evaluation
      // (one walk per block of spatially coherent bodies, replayed through
      // the SoA batch kernels) instead of the per-body DFS.
      if constexpr (Policy::is_parallel) {
        if (cfg.group_size > 0)
          compute_forces_grouped(exec::par_unseq, ctx);
        else
          compute_forces(exec::par_unseq, ctx);
      } else {
        if (cfg.group_size > 0)
          compute_forces_grouped(exec::seq, ctx);
        else
          compute_forces(exec::seq, ctx);
      }
    }
  }

  /// The tree of the most recent accelerations() call (introspection).
  [[nodiscard]] const ConcurrentOctree<T, D>& tree() const { return tree_; }

  /// Degradation-ladder hook (Simulation::run_guarded): give the next build
  /// twice the node-pool headroom after an overflow failure.
  void grow_capacity() { tree_.grow_capacity(); }

  /// Recovery hook: force a full rebuild on the next accelerations() call —
  /// after a checkpoint restore the cached topology (and with it the cached
  /// group partition of the grouped force path) no longer matches the
  /// restored positions.
  void invalidate() {
    steps_since_build_ = 0;
    order_dirty_ = true;
  }

  /// Accuracy-rung hook (Simulation::run_guarded deadline shedding): amortize
  /// tree builds over more steps. Values < 1 are clamped to 1.
  void set_reuse_interval(unsigned k) { opts_.reuse_interval = k < 1 ? 1 : k; }
  [[nodiscard]] unsigned reuse_interval() const noexcept { return opts_.reuse_interval; }

 private:
  template <class ForcePolicy>
  void compute_forces(ForcePolicy fp, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    if (!ctx.metrics_enabled()) {
      tree_.accelerations(fp, sys.m, sys.x, sys.a, cfg.theta, cfg.G, cfg.eps2(),
                          cfg.quadrupole);
      return;
    }
    // Counted traversal: identical forces, plus the interaction counters the
    // paper's work-vs-theta discussion is about. Counter handles resolve
    // once; per-body flushes are relaxed adds (par_unseq-safe).
    auto& m2p = ctx.metrics->counter("octree.traversal.m2p");
    auto& p2p = ctx.metrics->counter("octree.traversal.p2p");
    auto& opens = ctx.metrics->counter("octree.traversal.opens");
    auto& visited = ctx.metrics->counter("octree.traversal.nodes_visited");
    const T theta2 = cfg.theta * cfg.theta;
    const T G = cfg.G;
    const T eps2 = cfg.eps2();
    const bool quad = cfg.quadrupole;
    exec::for_each_index(fp, sys.x.size(), [&, theta2, G, eps2, quad](std::size_t i) {
      typename ConcurrentOctree<T, D>::TraversalStats st;
      sys.a[i] = tree_.acceleration_on_counted(sys.x[i], static_cast<std::uint32_t>(i),
                                               sys.m, sys.x, theta2, G, eps2, st, quad);
      m2p.add(st.accepts);
      p2p.add(st.exact_pairs);
      opens.add(st.opens);
      visited.add(st.nodes_visited);
    });
  }

  /// Per-worker scratch of the grouped force path, reused across groups so
  /// steady state allocates nothing. thread_local ⇒ no synchronization
  /// (par_unseq-safe and lockset-clean by construction).
  struct GroupScratch {
    math::InteractionLists<T, D> lists;
    std::vector<typename core::System<T, D>::vec_t> xt;
    std::vector<typename core::System<T, D>::vec_t> acc;
  };

  /// Group-traversal force evaluation: partition bodies into blocks of the
  /// cached leaf-DFS order (spatially coherent by construction — the octree
  /// never reorders the System), walk the tree once per block against the
  /// block's bounding box, and replay the emitted interaction lists through
  /// the SoA batch kernels. Gather/scatter through body_order_ maps block
  /// slots back to System indices.
  template <class ForcePolicy>
  void compute_forces_grouped(ForcePolicy fp, core::StepContext<T, D>& ctx) {
    using vec_t = typename core::System<T, D>::vec_t;
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    const std::size_t n = sys.x.size();
    if (n == 0) return;
    if (order_dirty_ || body_order_.size() != n) {
      tree_.leaf_body_order(body_order_);
      order_dirty_ = false;
    }
    // Dispatch guarantees group_size > 0; clamp above to N (one big group).
    const std::size_t gsize = cfg.group_size < n ? cfg.group_size : n;
    const std::size_t ngroups = (n + gsize - 1) / gsize;
    const T theta2 = cfg.theta2();
    const T G = cfg.G;
    const T eps2 = cfg.eps2();
    const bool quad = cfg.quadrupole;
    // Metric handles resolve once; per-group flushes are relaxed adds.
    const bool counted = ctx.metrics_enabled();
    auto* groups_ctr = counted ? &ctx.metrics->counter("octree.group.groups") : nullptr;
    auto* m2p_ctr = counted ? &ctx.metrics->counter("octree.group.m2p") : nullptr;
    auto* p2p_ctr = counted ? &ctx.metrics->counter("octree.group.p2p") : nullptr;
    auto* walk_ns = counted ? &ctx.metrics->counter("octree.group.walk_ns") : nullptr;
    auto* kernel_ns = counted ? &ctx.metrics->counter("octree.group.kernel_ns") : nullptr;
    auto* m2p_len = counted ? &ctx.metrics->histogram("octree.group.m2p_len",
                                                      {16, 64, 256, 1024, 4096, 16384})
                            : nullptr;
    auto* p2p_len = counted ? &ctx.metrics->histogram("octree.group.p2p_len",
                                                      {16, 64, 256, 1024, 4096, 16384})
                            : nullptr;
    exec::for_each_index(fp, ngroups, [&, theta2, G, eps2, quad, gsize, n](std::size_t gi) {
      static thread_local GroupScratch s;
      const std::size_t b0 = gi * gsize;
      const std::size_t b1 = b0 + gsize < n ? b0 + gsize : n;
      const std::size_t g = b1 - b0;
      s.xt.resize(g);
      s.acc.resize(g);
      typename ConcurrentOctree<T, D>::box_t gbox{};
      for (std::size_t k = 0; k < g; ++k) {
        const vec_t xi = sys.x[body_order_[b0 + k]];
        s.xt[k] = xi;
        gbox = gbox.merged(xi);
      }
      s.lists.clear();
      support::Stopwatch sw;
      tree_.collect_group_lists(gbox, sys.m, sys.x, theta2, s.lists, quad);
      const double walk_s = sw.seconds();
      sw.reset();
      math::evaluate_interaction_lists(s.lists, s.xt.data(), g, G, eps2, s.acc.data());
      const double kernel_s = sw.seconds();
      for (std::size_t k = 0; k < g; ++k) sys.a[body_order_[b0 + k]] = s.acc[k];
      if (groups_ctr != nullptr) {
        groups_ctr->add();
        m2p_ctr->add(s.lists.m2p_size());
        p2p_ctr->add(s.lists.p2p_size());
        walk_ns->add(static_cast<std::uint64_t>(walk_s * 1e9));
        kernel_ns->add(static_cast<std::uint64_t>(kernel_s * 1e9));
        m2p_len->observe(static_cast<double>(s.lists.m2p_size()));
        p2p_len->observe(static_cast<double>(s.lists.p2p_size()));
      }
    });
  }

  void record_build_metrics(obs::MetricsRegistry& reg) const {
    const auto st = tree_.stats();
    reg.counter("octree.builds").add();
    reg.counter("octree.lock_retries").add(tree_.lock_retries());
    reg.set_gauge("octree.nodes", static_cast<double>(st.nodes));
    reg.set_gauge("octree.internal_nodes", static_cast<double>(st.internal_nodes));
    reg.set_gauge("octree.body_leaves", static_cast<double>(st.body_leaves));
    reg.set_gauge("octree.empty_leaves", static_cast<double>(st.empty_leaves));
    reg.set_gauge("octree.max_depth", static_cast<double>(st.max_depth));
    reg.set_gauge("octree.capacity", static_cast<double>(tree_.capacity()));
    reg.set_gauge("octree.memory_bytes", static_cast<double>(st.memory_bytes));
    // Leaf occupancy: bodies per occupied leaf (max-depth chains make >1
    // possible even with one-body subdivision).
    auto& occ = reg.histogram("octree.leaf_occupancy", {1, 2, 4, 8, 16, 32});
    const std::uint32_t nodes = tree_.node_count();
    for (std::uint32_t nd = 0; nd < nodes; ++nd) {
      const std::uint32_t v = tree_.slot(nd);
      if (!ConcurrentOctree<T, D>::is_body(v)) continue;
      occ.observe(static_cast<double>(tree_.chain(v).size()));
    }
  }

  Options opts_{};
  ConcurrentOctree<T, D> tree_;
  typename ConcurrentOctree<T, D>::box_t root_box_{};
  unsigned steps_since_build_ = 0;
  // Grouped force path: leaf-DFS body order cached per build; dirty after a
  // rebuild or an invalidate() (checkpoint restore) so stale partitions are
  // never replayed against a new topology.
  std::vector<std::uint32_t> body_order_;
  bool order_dirty_ = true;
};

}  // namespace nbody::octree
