// Octree force strategy: composes Algorithm 2's per-step pipeline
// (CalculateBoundingBox -> BuildTree -> CalculateMultipoles ->
// CalculateForce) around the ConcurrentOctree, with the per-phase execution
// policies the paper prescribes:
//
//   bounding box — par_unseq-safe reduction (Algorithm 3)
//   build        — par (starvation-free locking)
//   multipoles   — par (synchronizing atomics)
//   force        — par_unseq (no synchronization)
//
// The strategy as a whole therefore requires parallel forward progress and
// only accepts seq or par.
#pragma once

#include "core/bbox.hpp"
#include "core/step_context.hpp"
#include "core/system.hpp"
#include "octree/concurrent_octree.hpp"
#include "sfc/reorder.hpp"
#include "support/timer.hpp"

namespace nbody::octree {

template <class T, std::size_t D>
class OctreeStrategy {
 public:
  static constexpr const char* name = "octree";

  struct Options {
    typename ConcurrentOctree<T, D>::Params tree{};
    /// Rebuild the tree every `reuse_interval` steps and reuse its topology
    /// in between, recomputing only the multipole moments from the moved
    /// positions — the amortization of Iwasawa et al. the paper's related
    /// work notes "can be applied to any Barnes-Hut implementation".
    /// 1 (default) rebuilds every step, as the paper's Algorithm 2 does.
    unsigned reuse_interval = 1;
    /// Curve-order the bodies before each (re)build: neighboring threads
    /// then insert into neighboring subtrees, cutting subdivision-lock
    /// contention and improving traversal locality (Burtscher & Pingali's
    /// presort, optional here — the paper's octree inserts unsorted).
    bool presort = false;
  };

  OctreeStrategy() = default;
  explicit OctreeStrategy(typename ConcurrentOctree<T, D>::Params params)
      : OctreeStrategy(Options{params, 1, false}) {}
  explicit OctreeStrategy(Options opts) : opts_(opts), tree_(opts.tree) {
    NBODY_REQUIRE(opts.reuse_interval >= 1, "OctreeStrategy: reuse_interval must be >= 1");
  }

  template <exec::StarvationFreeCapable Policy>
  void accelerations(Policy policy, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    const bool rebuild = steps_since_build_ % opts_.reuse_interval == 0;
    if (rebuild) {
      {
        auto scope = ctx.phase("bbox");
        root_box_ = core::compute_root_cube(policy, sys.x);
      }
      if (opts_.presort) {
        auto scope = ctx.phase("sort");
        sfc::reorder_system(policy, sys, root_box_);
      }
      {
        auto scope = ctx.phase("build");
        tree_.build(policy, sys.x, root_box_);
      }
      steps_since_build_ = 0;
      if (ctx.metrics_enabled()) record_build_metrics(*ctx.metrics);
    }
    ++steps_since_build_;
    {
      auto scope = ctx.phase("multipole");
      tree_.compute_multipoles(policy, sys.m, sys.x);
      if (cfg.quadrupole) tree_.compute_quadrupoles(policy, sys.m, sys.x);
    }
    {
      auto scope = ctx.phase("force");
      // The force DFS is synchronization-free: under a parallel caller it
      // runs with par_unseq, exactly as the paper's implementation does.
      if constexpr (Policy::is_parallel) {
        compute_forces(exec::par_unseq, ctx);
      } else {
        compute_forces(exec::seq, ctx);
      }
    }
  }

  /// The tree of the most recent accelerations() call (introspection).
  [[nodiscard]] const ConcurrentOctree<T, D>& tree() const { return tree_; }

  /// Degradation-ladder hook (Simulation::run_guarded): give the next build
  /// twice the node-pool headroom after an overflow failure.
  void grow_capacity() { tree_.grow_capacity(); }

  /// Recovery hook: force a full rebuild on the next accelerations() call —
  /// after a checkpoint restore the cached topology no longer matches the
  /// restored positions.
  void invalidate() { steps_since_build_ = 0; }

 private:
  template <class ForcePolicy>
  void compute_forces(ForcePolicy fp, core::StepContext<T, D>& ctx) {
    core::System<T, D>& sys = ctx.sys;
    const core::SimConfig<T>& cfg = ctx.cfg;
    if (!ctx.metrics_enabled()) {
      tree_.accelerations(fp, sys.m, sys.x, sys.a, cfg.theta, cfg.G, cfg.eps2(),
                          cfg.quadrupole);
      return;
    }
    // Counted traversal: identical forces, plus the interaction counters the
    // paper's work-vs-theta discussion is about. Counter handles resolve
    // once; per-body flushes are relaxed adds (par_unseq-safe).
    auto& m2p = ctx.metrics->counter("octree.traversal.m2p");
    auto& p2p = ctx.metrics->counter("octree.traversal.p2p");
    auto& opens = ctx.metrics->counter("octree.traversal.opens");
    auto& visited = ctx.metrics->counter("octree.traversal.nodes_visited");
    const T theta2 = cfg.theta * cfg.theta;
    const T G = cfg.G;
    const T eps2 = cfg.eps2();
    const bool quad = cfg.quadrupole;
    exec::for_each_index(fp, sys.x.size(), [&, theta2, G, eps2, quad](std::size_t i) {
      typename ConcurrentOctree<T, D>::TraversalStats st;
      sys.a[i] = tree_.acceleration_on_counted(sys.x[i], static_cast<std::uint32_t>(i),
                                               sys.m, sys.x, theta2, G, eps2, st, quad);
      m2p.add(st.accepts);
      p2p.add(st.exact_pairs);
      opens.add(st.opens);
      visited.add(st.nodes_visited);
    });
  }

  void record_build_metrics(obs::MetricsRegistry& reg) const {
    const auto st = tree_.stats();
    reg.counter("octree.builds").add();
    reg.counter("octree.lock_retries").add(tree_.lock_retries());
    reg.set_gauge("octree.nodes", static_cast<double>(st.nodes));
    reg.set_gauge("octree.internal_nodes", static_cast<double>(st.internal_nodes));
    reg.set_gauge("octree.body_leaves", static_cast<double>(st.body_leaves));
    reg.set_gauge("octree.empty_leaves", static_cast<double>(st.empty_leaves));
    reg.set_gauge("octree.max_depth", static_cast<double>(st.max_depth));
    reg.set_gauge("octree.capacity", static_cast<double>(tree_.capacity()));
    reg.set_gauge("octree.memory_bytes", static_cast<double>(st.memory_bytes));
    // Leaf occupancy: bodies per occupied leaf (max-depth chains make >1
    // possible even with one-body subdivision).
    auto& occ = reg.histogram("octree.leaf_occupancy", {1, 2, 4, 8, 16, 32});
    const std::uint32_t nodes = tree_.node_count();
    for (std::uint32_t nd = 0; nd < nodes; ++nd) {
      const std::uint32_t v = tree_.slot(nd);
      if (!ConcurrentOctree<T, D>::is_body(v)) continue;
      occ.observe(static_cast<double>(tree_.chain(v).size()));
    }
  }

  Options opts_{};
  ConcurrentOctree<T, D> tree_;
  typename ConcurrentOctree<T, D>::box_t root_box_{};
  unsigned steps_since_build_ = 0;
};

}  // namespace nbody::octree
