// Octree force strategy: composes Algorithm 2's per-step pipeline
// (CalculateBoundingBox -> BuildTree -> CalculateMultipoles ->
// CalculateForce) around the ConcurrentOctree, with the per-phase execution
// policies the paper prescribes:
//
//   bounding box — par_unseq-safe reduction (Algorithm 3)
//   build        — par (starvation-free locking)
//   multipoles   — par (synchronizing atomics)
//   force        — par_unseq (no synchronization)
//
// The strategy as a whole therefore requires parallel forward progress and
// only accepts seq or par.
#pragma once

#include "core/bbox.hpp"
#include "core/system.hpp"
#include "octree/concurrent_octree.hpp"
#include "sfc/reorder.hpp"
#include "support/timer.hpp"

namespace nbody::octree {

template <class T, std::size_t D>
class OctreeStrategy {
 public:
  static constexpr const char* name = "octree";

  struct Options {
    typename ConcurrentOctree<T, D>::Params tree{};
    /// Rebuild the tree every `reuse_interval` steps and reuse its topology
    /// in between, recomputing only the multipole moments from the moved
    /// positions — the amortization of Iwasawa et al. the paper's related
    /// work notes "can be applied to any Barnes-Hut implementation".
    /// 1 (default) rebuilds every step, as the paper's Algorithm 2 does.
    unsigned reuse_interval = 1;
    /// Curve-order the bodies before each (re)build: neighboring threads
    /// then insert into neighboring subtrees, cutting subdivision-lock
    /// contention and improving traversal locality (Burtscher & Pingali's
    /// presort, optional here — the paper's octree inserts unsorted).
    bool presort = false;
  };

  OctreeStrategy() = default;
  explicit OctreeStrategy(typename ConcurrentOctree<T, D>::Params params)
      : OctreeStrategy(Options{params, 1}) {}
  explicit OctreeStrategy(Options opts) : opts_(opts), tree_(opts.tree) {
    NBODY_REQUIRE(opts.reuse_interval >= 1, "OctreeStrategy: reuse_interval must be >= 1");
  }

  template <exec::StarvationFreeCapable Policy>
  void accelerations(Policy policy, core::System<T, D>& sys, const core::SimConfig<T>& cfg,
                     support::PhaseTimer* timer = nullptr) {
    const bool rebuild = steps_since_build_ % opts_.reuse_interval == 0;
    if (rebuild) {
      {
        auto scope = support::PhaseTimer::maybe(timer, "bbox");
        root_box_ = core::compute_root_cube(policy, sys.x);
      }
      if (opts_.presort) {
        auto scope = support::PhaseTimer::maybe(timer, "sort");
        sfc::reorder_system(policy, sys, root_box_);
      }
      auto scope = support::PhaseTimer::maybe(timer, "build");
      tree_.build(policy, sys.x, root_box_);
      steps_since_build_ = 0;
    }
    ++steps_since_build_;
    {
      auto scope = support::PhaseTimer::maybe(timer, "multipole");
      tree_.compute_multipoles(policy, sys.m, sys.x);
      if (cfg.quadrupole) tree_.compute_quadrupoles(policy, sys.m, sys.x);
    }
    {
      auto scope = support::PhaseTimer::maybe(timer, "force");
      // The force DFS is synchronization-free: under a parallel caller it
      // runs with par_unseq, exactly as the paper's implementation does.
      if constexpr (Policy::is_parallel) {
        tree_.accelerations(exec::par_unseq, sys.m, sys.x, sys.a, cfg.theta, cfg.G,
                            cfg.eps2(), cfg.quadrupole);
      } else {
        tree_.accelerations(exec::seq, sys.m, sys.x, sys.a, cfg.theta, cfg.G, cfg.eps2(),
                            cfg.quadrupole);
      }
    }
  }

  /// The tree of the most recent accelerations() call (introspection).
  [[nodiscard]] const ConcurrentOctree<T, D>& tree() const { return tree_; }

  /// Degradation-ladder hook (Simulation::run_guarded): give the next build
  /// twice the node-pool headroom after an overflow failure.
  void grow_capacity() { tree_.grow_capacity(); }

  /// Recovery hook: force a full rebuild on the next accelerations() call —
  /// after a checkpoint restore the cached topology no longer matches the
  /// restored positions.
  void invalidate() { steps_since_build_ = 0; }

 private:
  Options opts_{};
  ConcurrentOctree<T, D> tree_;
  typename ConcurrentOctree<T, D>::box_t root_box_{};
  unsigned steps_since_build_ = 0;
};

}  // namespace nbody::octree
