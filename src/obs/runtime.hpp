// Observability: ambient runtime state.
//
// The strategy layers receive their MetricsRegistry*/TraceSession* through
// StepContext, but the execution substrate underneath them — the thread
// pool, the scheduling backends — predates any step and cannot take a
// context parameter through the policy-based algorithm signatures. Those
// layers read the process-wide pointers installed here instead.
//
// All three globals are read with relaxed atomics on hot-ish paths (once
// per parallel region, never per iteration); null means disabled and costs
// one predicted branch.
#pragma once

#include <cstdint>

namespace nbody::obs {

class MetricsRegistry;
class TraceSession;

/// Installs (or clears, with nullptrs) the process-wide sinks. The caller
/// keeps ownership and must clear before destroying them.
void install_global(MetricsRegistry* metrics, TraceSession* trace) noexcept;

[[nodiscard]] MetricsRegistry* global_metrics() noexcept;
[[nodiscard]] TraceSession* global_trace() noexcept;

/// Pool-participant rank of the calling thread: 0 for the main/calling
/// thread, 1..p-1 for pool workers (set once in worker_main). Trace spans
/// use this as their tid.
[[nodiscard]] unsigned thread_rank() noexcept;
void set_thread_rank(unsigned rank) noexcept;

/// Ambient label for the parallel region being dispatched — the innermost
/// live TraceSession::Scope's name ("build", "force", ...). The scheduling
/// backends name their per-rank spans after it. Returns the previous label
/// so scopes can nest. `label` must have static or enclosing-scope lifetime.
const char* exchange_region_label(const char* label) noexcept;
[[nodiscard]] const char* region_label() noexcept;

}  // namespace nbody::obs
