// Observability subsystem umbrella header: metrics registry, Chrome-trace
// session, and the ambient runtime the execution substrate reads.
// See DESIGN.md §"Observability" for the JSON schemas and overhead
// guarantees.
#pragma once

#include "obs/metrics.hpp"   // IWYU pragma: export
#include "obs/runtime.hpp"   // IWYU pragma: export
#include "obs/trace.hpp"     // IWYU pragma: export
