#include "obs/runtime.hpp"

#include <atomic>

namespace nbody::obs {

namespace {
std::atomic<MetricsRegistry*> g_metrics{nullptr};
std::atomic<TraceSession*> g_trace{nullptr};
std::atomic<const char*> g_region_label{"parallel"};
thread_local unsigned t_rank = 0;
}  // namespace

void install_global(MetricsRegistry* metrics, TraceSession* trace) noexcept {
  g_metrics.store(metrics, std::memory_order_release);
  g_trace.store(trace, std::memory_order_release);
}

MetricsRegistry* global_metrics() noexcept {
  return g_metrics.load(std::memory_order_acquire);
}

TraceSession* global_trace() noexcept { return g_trace.load(std::memory_order_acquire); }

unsigned thread_rank() noexcept { return t_rank; }

void set_thread_rank(unsigned rank) noexcept { t_rank = rank; }

const char* exchange_region_label(const char* label) noexcept {
  return g_region_label.exchange(label, std::memory_order_acq_rel);
}

const char* region_label() noexcept {
  return g_region_label.load(std::memory_order_acquire);
}

}  // namespace nbody::obs
