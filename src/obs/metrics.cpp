#include "obs/metrics.hpp"

#include <bit>
#include <cstdio>
#include <stdexcept>

namespace nbody::obs {

double MetricsRegistry::Histogram::bit_to_double(std::uint64_t b) noexcept {
  return std::bit_cast<double>(b);
}

std::uint64_t MetricsRegistry::Histogram::double_to_bit(double d) noexcept {
  return std::bit_cast<std::uint64_t>(d);
}

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  if (const auto it = counter_index_.find(name); it != counter_index_.end())
    return *it->second;
  auto [it, inserted] = counter_index_.emplace(
      std::string(name), std::unique_ptr<Counter>(new Counter(std::string(name))));
  return *it->second;
}

MetricsRegistry::Histogram& MetricsRegistry::histogram(std::string_view name,
                                                       std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  if (const auto it = histogram_index_.find(name); it != histogram_index_.end())
    return *it->second;
  auto [it, inserted] = histogram_index_.emplace(
      std::string(name),
      std::unique_ptr<Histogram>(new Histogram(std::string(name), std::move(bounds))));
  return *it->second;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  std::lock_guard lock(mu_);
  if (const auto it = gauges_.find(name); it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = counter_index_.find(name);
  return it == counter_index_.end() ? 0 : it->second->value();
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // JSON has no inf/nan literals; clamp to null (readable by every parser).
  const std::string_view sv(buf);
  if (sv.find("inf") != std::string_view::npos || sv.find("nan") != std::string_view::npos) {
    out += "null";
  } else {
    out += buf;
  }
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mu_);
  std::string out = "{\n  \"schema\": \"nbody.metrics.v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counter_index_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": " + std::to_string(c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    append_double(out, v);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histogram_index_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": {\"count\": " + std::to_string(h->count()) + ", \"sum\": ";
    append_double(out, h->sum());
    out += ", \"buckets\": [";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      if (i < h->bounds().size()) {
        append_double(out, h->bounds()[i]);
      } else {
        out += "\"+inf\"";
      }
      out += ", \"count\": " + std::to_string(h->bucket_count(i)) + "}";
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  const std::string doc = to_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("metrics: cannot open '" + path + "' for write");
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const int rc = std::fclose(f);
  if (written != doc.size() || rc != 0)
    throw std::runtime_error("metrics: short write to '" + path + "'");
}

}  // namespace nbody::obs
