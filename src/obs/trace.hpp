// Observability: TraceSession — per-phase span and instant-event recording,
// exported as Chrome trace_event JSON (the "JSON Array Format" every
// chrome://tracing and Perfetto build loads).
//
// Spans carry (name, thread rank, start ns, duration ns) where the rank is
// the thread-pool participant rank published through obs/runtime.hpp —
// rank 0 is the calling thread, workers are 1..p-1 — so a trace of one step
// shows exactly which pool lanes ran which phase for how long.
//
// Recording takes a mutex per event. Events are phase- and region-grained
// (a handful per step per rank), never per-body, so contention is
// irrelevant; the disabled state is a null TraceSession* checked once per
// scope, identical to the PhaseTimer convention.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace nbody::obs {

class TraceSession {
 public:
  TraceSession() : t0_(std::chrono::steady_clock::now()) {}
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// RAII span: records a complete ("ph":"X") event over its lifetime, on
  /// the recording thread's pool rank. While alive it also publishes `name`
  /// as the ambient region label (obs/runtime.hpp), which is how per-rank
  /// spans emitted inside the scheduling backends inherit the phase name.
  /// `name` must outlive the scope (string literals in practice).
  class Scope {
   public:
    Scope(TraceSession& session, const char* name);
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope(Scope&& o) noexcept
        : session_(o.session_), name_(o.name_), prev_label_(o.prev_label_),
          tid_(o.tid_), start_ns_(o.start_ns_) {
      o.session_ = nullptr;
    }
    Scope& operator=(Scope&&) = delete;
    ~Scope();

   private:
    TraceSession* session_;
    const char* name_;
    const char* prev_label_;
    std::uint32_t tid_;
    std::uint64_t start_ns_;
  };

  [[nodiscard]] Scope span(const char* name) { return Scope(*this, name); }

  /// Scope against an optional session: null costs one branch, mirroring
  /// support::PhaseTimer::maybe.
  [[nodiscard]] static std::optional<Scope> maybe(TraceSession* session, const char* name) {
    if (session == nullptr) return std::nullopt;
    return std::optional<Scope>(std::in_place, *session, name);
  }

  /// Records a complete span with explicit timestamps (both in session ns).
  void complete_span(const char* name, std::uint32_t tid, std::uint64_t start_ns,
                     std::uint64_t end_ns);

  /// Records an instant event ("ph":"i", global scope) at now — recovery
  /// decisions, checkpoints, guard failures. `detail` lands in args.detail.
  void instant(const char* name, const std::string& detail = {});

  /// Nanoseconds since session start (the trace timebase).
  [[nodiscard]] std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  [[nodiscard]] std::size_t event_count() const;

  /// Number of distinct thread ranks that recorded at least one span.
  [[nodiscard]] std::size_t span_rank_count() const;

  /// Chrome trace_event "JSON Object Format": {"traceEvents": [...]}.
  [[nodiscard]] std::string to_json() const;

  /// to_json() to a file; throws std::runtime_error on I/O failure.
  void write_json(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    std::string detail;     // instants only
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;
    char ph = 'X';
  };

  std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace nbody::obs
