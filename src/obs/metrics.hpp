// Observability: the process/metrics registry — counters, gauges, and
// fixed-bucket histograms, exportable as one JSON artifact
// (schema "nbody.metrics.v1", see DESIGN.md §"Observability").
//
// Designed to be compiled in always and cheap enough to leave enabled:
//
//   * handles (Counter&, Histogram&) are resolved by name once, outside the
//     hot loops, under a mutex;
//   * increments/observations on a resolved handle are relaxed atomic
//     fetch_adds — vectorization-safe by the library's convention (relaxed
//     atomics never call note_vectorization_unsafe_op), so counters may be
//     bumped from par_unseq regions;
//   * the disabled state is a null MetricsRegistry* — instrumented code
//     null-checks once per step/phase, never per iteration.
//
// Anything that needs a registry without a StepContext (thread pool,
// scheduling backends) reads the ambient pointer from obs/runtime.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nbody::obs {

class MetricsRegistry {
 public:
  /// Monotonic counter. add() is a relaxed atomic fetch_add: safe from any
  /// policy, including par_unseq.
  class Counter {
   public:
    void add(std::uint64_t v = 1) noexcept { value_.fetch_add(v, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const noexcept {
      return value_.load(std::memory_order_relaxed);
    }

   private:
    friend class MetricsRegistry;
    explicit Counter(std::string name) : name_(std::move(name)) {}
    std::string name_;
    std::atomic<std::uint64_t> value_{0};
  };

  /// Fixed-bucket histogram: `bounds` are inclusive upper bounds in
  /// ascending order, plus an implicit +inf overflow bucket. Tracks count
  /// and sum (Prometheus-style), so averages fall out of the export.
  class Histogram {
   public:
    void observe(double v) noexcept {
      std::size_t i = 0;
      while (i < bounds_.size() && v > bounds_[i]) ++i;
      buckets_[i].fetch_add(1, std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
      // Relaxed CAS accumulation of the double-valued sum (the same loop
      // exec::fetch_add_relaxed uses; duplicated so obs stays dependency-free).
      std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
      for (;;) {
        const double cur = bit_to_double(expected);
        const std::uint64_t desired = double_to_bit(cur + v);
        if (sum_bits_.compare_exchange_weak(expected, desired, std::memory_order_relaxed,
                                            std::memory_order_relaxed))
          break;
      }
    }

    [[nodiscard]] std::uint64_t count() const noexcept {
      return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const noexcept {
      return bit_to_double(sum_bits_.load(std::memory_order_relaxed));
    }
    [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
    /// Count in bucket i, i in [0, bounds().size()] (last = overflow).
    [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
      return buckets_[i].load(std::memory_order_relaxed);
    }

   private:
    friend class MetricsRegistry;
    Histogram(std::string name, std::vector<double> bounds)
        : name_(std::move(name)),
          bounds_(std::move(bounds)),
          buckets_(std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1)) {
      for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
    }

    static double bit_to_double(std::uint64_t b) noexcept;
    static std::uint64_t double_to_bit(double d) noexcept;

    std::string name_;
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds.size() + 1
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_bits_{0};  // IEEE-754 bits of the sum
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. The returned reference is stable for the
  /// registry's lifetime; resolve once, increment from anywhere.
  Counter& counter(std::string_view name);

  /// Get-or-create; `bounds` is consulted only on creation (the first caller
  /// fixes the bucket layout).
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Gauges are last-write-wins snapshots (tree depth, pool utilization...).
  void set_gauge(std::string_view name, double value);

  // Read-side accessors (tests, exporters). Missing names read as zero.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;

  /// Serializes every metric as the "nbody.metrics.v1" JSON document.
  [[nodiscard]] std::string to_json() const;

  /// to_json() to a file; throws std::runtime_error on I/O failure.
  void write_json(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  // unique_ptr values: stable metric addresses across map growth.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counter_index_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histogram_index_;
  std::map<std::string, double, std::less<>> gauges_;
};

}  // namespace nbody::obs
