#include "obs/trace.hpp"

#include <cstdio>
#include <set>
#include <stdexcept>

#include "obs/runtime.hpp"

namespace nbody::obs {

TraceSession::Scope::Scope(TraceSession& session, const char* name)
    : session_(&session),
      name_(name),
      prev_label_(exchange_region_label(name)),
      tid_(thread_rank()),
      start_ns_(session.now_ns()) {}

TraceSession::Scope::~Scope() {
  if (session_ == nullptr) return;
  exchange_region_label(prev_label_);
  session_->complete_span(name_, tid_, start_ns_, session_->now_ns());
}

void TraceSession::complete_span(const char* name, std::uint32_t tid,
                                 std::uint64_t start_ns, std::uint64_t end_ns) {
  Event e;
  e.name = name;
  e.ts_ns = start_ns;
  e.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  e.tid = tid;
  e.ph = 'X';
  std::lock_guard lock(mu_);
  events_.push_back(std::move(e));
}

void TraceSession::instant(const char* name, const std::string& detail) {
  Event e;
  e.name = name;
  e.detail = detail;
  e.ts_ns = now_ns();
  e.tid = thread_rank();
  e.ph = 'i';
  std::lock_guard lock(mu_);
  events_.push_back(std::move(e));
}

std::size_t TraceSession::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::size_t TraceSession::span_rank_count() const {
  std::lock_guard lock(mu_);
  std::set<std::uint32_t> ranks;
  for (const Event& e : events_)
    if (e.ph == 'X') ranks.insert(e.tid);
  return ranks.size();
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Chrome's ts/dur fields are microseconds; emit with ns precision.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::string TraceSession::to_json() const {
  std::lock_guard lock(mu_);
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const Event& e : events_) {
    out += first ? "\n  " : ",\n  ";
    first = false;
    out += "{\"name\": ";
    append_escaped(out, e.name);
    out += ", \"ph\": \"";
    out += e.ph;
    out += "\", \"pid\": 1, \"tid\": " + std::to_string(e.tid) + ", \"ts\": ";
    append_us(out, e.ts_ns);
    if (e.ph == 'X') {
      out += ", \"dur\": ";
      append_us(out, e.dur_ns);
      out += ", \"cat\": \"phase\"";
    } else {
      out += ", \"s\": \"g\", \"cat\": \"event\"";
      if (!e.detail.empty()) {
        out += ", \"args\": {\"detail\": ";
        append_escaped(out, e.detail);
        out += "}";
      }
    }
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

void TraceSession::write_json(const std::string& path) const {
  const std::string doc = to_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("trace: cannot open '" + path + "' for write");
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const int rc = std::fclose(f);
  if (written != doc.size() || rc != 0)
    throw std::runtime_error("trace: short write to '" + path + "'");
}

}  // namespace nbody::obs
