// Deterministic workload generators for the paper's experiments.
//
//  * galaxy_collision — the evaluation workload: "a deterministic collision
//    between two neighboring galaxies with varying number of bodies"
//    (Sec. V-A). Two rotating disk galaxies with massive central bodies on
//    an approach course. Fixed-seed, bit-reproducible.
//  * plummer_sphere   — the classic Aarseth cluster model; used by tests and
//    the θ ablation as a spherical, centrally-condensed distribution.
//  * uniform_cube     — uniform random positions; the stress case for tree
//    depth uniformity.
//  * solar_system     — the stand-in for NASA JPL's Small-Body Database in
//    the validation experiment (DESIGN.md §1): one dominant central mass and
//    N minor bodies on randomized Keplerian orbits.
//
// All generators return 3-D double-precision systems (the paper evaluates
// FP64, footnote 2); galaxy_collision_2d provides the quadtree-path variant.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/system.hpp"

namespace nbody::workloads {

struct GalaxyParams {
  double central_mass = 1000.0;   // mass of each galaxy's nucleus
  double star_mass = 1.0;         // mass of each disk star
  double disk_radius = 10.0;      // disk extent
  double thickness = 0.5;         // out-of-plane jitter (3-D only)
  double separation = 40.0;       // initial distance between nuclei
  double approach_speed = 2.0;    // closing speed along the separation axis
  double G = 1.0;                 // must match the SimConfig used to run it
};

/// Two-galaxy collision with `n` bodies total (n >= 2).
core::System<double, 3> galaxy_collision(std::size_t n, std::uint64_t seed = 42,
                                         const GalaxyParams& params = {});

/// 2-D variant exercising the quadtree code paths.
core::System<double, 2> galaxy_collision_2d(std::size_t n, std::uint64_t seed = 42,
                                            const GalaxyParams& params = {});

/// Plummer sphere of `n` equal-mass bodies in virial equilibrium
/// (total mass 1, scale radius `scale`).
core::System<double, 3> plummer_sphere(std::size_t n, std::uint64_t seed = 7,
                                       double scale = 1.0, double G = 1.0);

/// `n` unit-mass bodies uniformly random in [-half, half]^3, at rest.
core::System<double, 3> uniform_cube(std::size_t n, std::uint64_t seed = 3,
                                     double half = 1.0);

struct DriftingClusterParams {
  double cluster_radius = 1.0;      // Plummer scale radius
  double drift_speed = 0.5;         // bulk velocity magnitude
  double dispersion_fraction = 0.3; // internal velocity scale vs equilibrium
  double G = 1.0;                   // must match the SimConfig used to run it
};

/// A Plummer-like cluster of `n` bodies moving with a coherent bulk
/// velocity — the temporal-coherence workload for the tree-update
/// ablation: per step, every body translates by roughly drift_speed·dt
/// while only a small fraction cross cell boundaries, the regime where
/// incremental tree maintenance beats per-step rebuilds.
core::System<double, 3> drifting_cluster(std::size_t n, std::uint64_t seed = 5,
                                         const DriftingClusterParams& params = {});

struct SolarSystemParams {
  double sun_mass = 1.0;
  double body_mass = 1e-12;       // minor bodies are test masses in effect
  double min_radius = 0.3;        // semi-major axis range (AU-like units)
  double max_radius = 40.0;
  double max_eccentricity = 0.25;
  double max_inclination = 0.3;   // radians
  double G = 1.0;
};

/// Central star + `n_minor` bodies on randomized elliptical orbits.
/// Body 0 is the star.
core::System<double, 3> solar_system(std::size_t n_minor, std::uint64_t seed = 11,
                                     const SolarSystemParams& params = {});

}  // namespace nbody::workloads
