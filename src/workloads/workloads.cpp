#include "workloads/workloads.hpp"

#include <cmath>
#include <numbers>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace nbody::workloads {

namespace {

using support::Xoshiro256ss;
using std::numbers::pi;

/// One rotating disk galaxy appended to `sys` (3-D).
void add_galaxy_3d(core::System<double, 3>& sys, std::size_t n_stars,
                   const GalaxyParams& p, const math::vec3d& center,
                   const math::vec3d& bulk_velocity, int spin, Xoshiro256ss& rng) {
  sys.add(p.central_mass, center, bulk_velocity);
  for (std::size_t s = 0; s < n_stars; ++s) {
    // Radius ~ sqrt(u) gives a uniform surface density; floor keeps stars
    // off the singular nucleus.
    const double r = p.disk_radius * std::sqrt(rng.uniform(0.0025, 1.0));
    const double phi = rng.uniform(0.0, 2.0 * pi);
    const double z = rng.normal(0.0, p.thickness);
    const math::vec3d pos = center + math::vec3d{{r * std::cos(phi), r * std::sin(phi), z}};
    // Circular speed about the nucleus (disk self-gravity neglected — the
    // workload only needs to be deterministic and galaxy-shaped).
    const double v_circ = std::sqrt(p.G * p.central_mass / r);
    const math::vec3d vel =
        bulk_velocity +
        math::vec3d{{-std::sin(phi), std::cos(phi), 0.0}} * (v_circ * static_cast<double>(spin));
    sys.add(p.star_mass, pos, vel);
  }
}

void add_galaxy_2d(core::System<double, 2>& sys, std::size_t n_stars,
                   const GalaxyParams& p, const math::vec2d& center,
                   const math::vec2d& bulk_velocity, int spin, Xoshiro256ss& rng) {
  sys.add(p.central_mass, center, bulk_velocity);
  for (std::size_t s = 0; s < n_stars; ++s) {
    const double r = p.disk_radius * std::sqrt(rng.uniform(0.0025, 1.0));
    const double phi = rng.uniform(0.0, 2.0 * pi);
    const math::vec2d pos = center + math::vec2d{{r * std::cos(phi), r * std::sin(phi)}};
    const double v_circ = std::sqrt(p.G * p.central_mass / r);
    const math::vec2d vel =
        bulk_velocity +
        math::vec2d{{-std::sin(phi), std::cos(phi)}} * (v_circ * static_cast<double>(spin));
    sys.add(p.star_mass, pos, vel);
  }
}

}  // namespace

core::System<double, 3> galaxy_collision(std::size_t n, std::uint64_t seed,
                                         const GalaxyParams& p) {
  NBODY_REQUIRE(n >= 2, "galaxy_collision: need at least 2 bodies");
  Xoshiro256ss rng(seed);
  core::System<double, 3> sys;
  const std::size_t stars_a = (n - 2) / 2;
  const std::size_t stars_b = (n - 2) - stars_a;
  const double half_sep = p.separation / 2.0;
  const double impact = p.disk_radius / 2.0;  // grazing, not head-on
  add_galaxy_3d(sys, stars_a, p, {{-half_sep, -impact / 2.0, 0.0}},
                {{p.approach_speed / 2.0, 0.0, 0.0}}, +1, rng);
  add_galaxy_3d(sys, stars_b, p, {{half_sep, impact / 2.0, 0.0}},
                {{-p.approach_speed / 2.0, 0.0, 0.0}}, -1, rng);
  return sys;
}

core::System<double, 2> galaxy_collision_2d(std::size_t n, std::uint64_t seed,
                                            const GalaxyParams& p) {
  NBODY_REQUIRE(n >= 2, "galaxy_collision_2d: need at least 2 bodies");
  Xoshiro256ss rng(seed);
  core::System<double, 2> sys;
  const std::size_t stars_a = (n - 2) / 2;
  const std::size_t stars_b = (n - 2) - stars_a;
  const double half_sep = p.separation / 2.0;
  const double impact = p.disk_radius / 2.0;
  add_galaxy_2d(sys, stars_a, p, {{-half_sep, -impact / 2.0}},
                {{p.approach_speed / 2.0, 0.0}}, +1, rng);
  add_galaxy_2d(sys, stars_b, p, {{half_sep, impact / 2.0}},
                {{-p.approach_speed / 2.0, 0.0}}, -1, rng);
  return sys;
}

core::System<double, 3> plummer_sphere(std::size_t n, std::uint64_t seed, double scale,
                                       double G) {
  NBODY_REQUIRE(n >= 1, "plummer_sphere: need at least 1 body");
  Xoshiro256ss rng(seed);
  core::System<double, 3> sys;
  const double m = 1.0 / static_cast<double>(n);  // total mass 1
  for (std::size_t i = 0; i < n; ++i) {
    // Radius from the inverse Plummer cumulative mass profile.
    const double u = rng.uniform(1e-10, 1.0);
    const double r = scale / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    // Isotropic direction.
    const double ct = rng.uniform(-1.0, 1.0);
    const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
    const double ph = rng.uniform(0.0, 2.0 * pi);
    const math::vec3d dir{{st * std::cos(ph), st * std::sin(ph), ct}};
    // Speed via von Neumann rejection on q = v / v_escape (Aarseth et al.).
    double q = 0.0;
    for (;;) {
      const double qq = rng.uniform(0.0, 1.0);
      const double g = qq * qq * std::pow(1.0 - qq * qq, 3.5);
      if (rng.uniform(0.0, 0.1) < g) {
        q = qq;
        break;
      }
    }
    const double v_esc = std::sqrt(2.0 * G / scale) *
                         std::pow(1.0 + (r / scale) * (r / scale), -0.25);
    const double ctv = rng.uniform(-1.0, 1.0);
    const double stv = std::sqrt(std::max(0.0, 1.0 - ctv * ctv));
    const double phv = rng.uniform(0.0, 2.0 * pi);
    const math::vec3d vdir{{stv * std::cos(phv), stv * std::sin(phv), ctv}};
    sys.add(m, dir * r, vdir * (q * v_esc));
  }
  return sys;
}

core::System<double, 3> drifting_cluster(std::size_t n, std::uint64_t seed,
                                         const DriftingClusterParams& p) {
  NBODY_REQUIRE(n >= 1, "drifting_cluster: need at least 1 body");
  // Start from a virialized Plummer sphere, damp the internal motions (the
  // coherence is the point, not the equilibrium), then superimpose the bulk
  // drift along a fixed oblique direction.
  core::System<double, 3> sys = plummer_sphere(n, seed, p.cluster_radius, p.G);
  const math::vec3d dir = math::vec3d{{2.0, 1.0, 0.5}} / std::sqrt(5.25);
  const math::vec3d drift = dir * p.drift_speed;
  for (std::size_t i = 0; i < n; ++i)
    sys.v[i] = sys.v[i] * p.dispersion_fraction + drift;
  return sys;
}

core::System<double, 3> uniform_cube(std::size_t n, std::uint64_t seed, double half) {
  Xoshiro256ss rng(seed);
  core::System<double, 3> sys;
  for (std::size_t i = 0; i < n; ++i) {
    sys.add(1.0,
            {{rng.uniform(-half, half), rng.uniform(-half, half), rng.uniform(-half, half)}},
            math::vec3d::zero());
  }
  return sys;
}

core::System<double, 3> solar_system(std::size_t n_minor, std::uint64_t seed,
                                     const SolarSystemParams& p) {
  Xoshiro256ss rng(seed);
  core::System<double, 3> sys;
  sys.add(p.sun_mass, math::vec3d::zero(), math::vec3d::zero());
  const double mu = p.G * p.sun_mass;
  math::vec3d momentum = math::vec3d::zero();
  for (std::size_t i = 0; i < n_minor; ++i) {
    // Orbital elements: log-uniform semi-major axis, modest eccentricity
    // and inclination, uniform angles.
    const double a = p.min_radius * std::exp(rng.uniform(0.0, std::log(p.max_radius / p.min_radius)));
    const double e = rng.uniform(0.0, p.max_eccentricity);
    const double inc = rng.uniform(0.0, p.max_inclination);
    const double omega = rng.uniform(0.0, 2.0 * pi);   // argument of periapsis
    const double Omega = rng.uniform(0.0, 2.0 * pi);   // longitude of node
    const double nu = rng.uniform(0.0, 2.0 * pi);      // true anomaly
    // Perifocal position/velocity.
    const double plr = a * (1.0 - e * e);  // semi-latus rectum
    const double r = plr / (1.0 + e * std::cos(nu));
    const math::vec3d pos_pf{{r * std::cos(nu), r * std::sin(nu), 0.0}};
    const double vs = std::sqrt(mu / plr);
    const math::vec3d vel_pf{{-vs * std::sin(nu), vs * (e + std::cos(nu)), 0.0}};
    // Rotate perifocal -> inertial: Rz(Omega) * Rx(inc) * Rz(omega).
    auto rot_z = [](const math::vec3d& v, double ang) {
      const double c = std::cos(ang);
      const double s = std::sin(ang);
      return math::vec3d{{c * v[0] - s * v[1], s * v[0] + c * v[1], v[2]}};
    };
    auto rot_x = [](const math::vec3d& v, double ang) {
      const double c = std::cos(ang);
      const double s = std::sin(ang);
      return math::vec3d{{v[0], c * v[1] - s * v[2], s * v[1] + c * v[2]}};
    };
    const math::vec3d pos = rot_z(rot_x(rot_z(pos_pf, omega), inc), Omega);
    const math::vec3d vel = rot_z(rot_x(rot_z(vel_pf, omega), inc), Omega);
    sys.add(p.body_mass, pos, vel);
    momentum += vel * p.body_mass;
  }
  // Counter-momentum on the star: total linear momentum exactly zero.
  sys.v[0] = -momentum / p.sun_mass;
  return sys;
}

}  // namespace nbody::workloads
