// Tests for the spatial range queries both trees expose (the "tree
// structures transfer to other domains" use from the paper's introduction):
// equivalence with brute force over random centers/radii, boundary
// inclusivity, pruning correctness on clustered data, and leaf-bucket /
// max-depth-chain interaction.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "bvh/hilbert_bvh.hpp"
#include "core/bbox.hpp"
#include "octree/concurrent_octree.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using nbody::exec::par;
using nbody::exec::par_unseq;
using Octree3 = nbody::octree::ConcurrentOctree<double, 3>;
using BVH3 = nbody::bvh::HilbertBVH<double, 3>;
using vec3 = nbody::math::vec3d;

std::set<std::uint32_t> brute_force_in_radius(const std::vector<vec3>& x, const vec3& c,
                                              double r) {
  std::set<std::uint32_t> out;
  for (std::uint32_t i = 0; i < x.size(); ++i)
    if (norm2(x[i] - c) <= r * r) out.insert(i);
  return out;
}

class QueryRadii : public ::testing::TestWithParam<double> {};

TEST_P(QueryRadii, OctreeMatchesBruteForce) {
  const double radius = GetParam();
  const auto sys = nbody::workloads::plummer_sphere(3000, 31);
  Octree3 tree;
  tree.build(par, sys.x, nbody::core::compute_root_cube(par, sys.x));
  nbody::support::Xoshiro256ss rng(32);
  for (int rep = 0; rep < 20; ++rep) {
    const vec3 c{{rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)}};
    std::set<std::uint32_t> got;
    tree.for_each_in_radius(c, radius, sys.x, [&](std::uint32_t b) { got.insert(b); });
    EXPECT_EQ(got, brute_force_in_radius(sys.x, c, radius)) << "rep " << rep;
  }
}

TEST_P(QueryRadii, BvhMatchesBruteForce) {
  const double radius = GetParam();
  auto sys = nbody::workloads::plummer_sphere(3000, 33);
  BVH3 tree;
  tree.sort_bodies(par_unseq, sys, nbody::core::compute_bounding_box(par_unseq, sys.x));
  tree.build(par_unseq, sys.m, sys.x);
  nbody::support::Xoshiro256ss rng(34);
  for (int rep = 0; rep < 20; ++rep) {
    const vec3 c{{rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)}};
    std::set<std::uint32_t> got;
    tree.for_each_in_radius(c, radius, sys.x,
                            [&](std::size_t b) { got.insert(static_cast<std::uint32_t>(b)); });
    EXPECT_EQ(got, brute_force_in_radius(sys.x, c, radius)) << "rep " << rep;
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, QueryRadii, ::testing::Values(0.0, 0.05, 0.3, 1.0, 10.0));

TEST(Queries, HugeRadiusReturnsEverything) {
  const auto sys = nbody::workloads::uniform_cube(500, 35);
  Octree3 tree;
  tree.build(par, sys.x, nbody::core::compute_root_cube(par, sys.x));
  EXPECT_EQ(tree.count_in_radius(vec3::zero(), 1e9, sys.x), sys.size());
}

TEST(Queries, ZeroRadiusHitsOnlyExactPosition) {
  std::vector<vec3> x = {{{0, 0, 0}}, {{1, 0, 0}}};
  Octree3 tree;
  tree.build(par, x, nbody::math::aabb3d::cube(vec3::zero(), 2.0));
  EXPECT_EQ(tree.count_in_radius({{1, 0, 0}}, 0.0, x), 1u);
  EXPECT_EQ(tree.count_in_radius({{0.5, 0, 0}}, 0.0, x), 0u);
}

TEST(Queries, OctreeChainedBodiesAllFound) {
  // Coincident bodies chain at max depth; the query must walk the chain.
  std::vector<vec3> x(10, vec3{{0.25, 0.25, 0.25}});
  x.push_back({{0.9, 0.9, 0.9}});
  Octree3 tree;
  tree.build(par, x, nbody::math::aabb3d::cube(vec3::zero(), 1.0));
  EXPECT_EQ(tree.count_in_radius({{0.25, 0.25, 0.25}}, 0.01, x), 10u);
}

TEST(Queries, BvhLeafBucketsAllScanned) {
  auto sys = nbody::workloads::uniform_cube(777, 36);
  typename BVH3::Options opts;
  opts.leaf_size = 8;
  BVH3 tree(opts);
  tree.sort_bodies(par_unseq, sys, nbody::core::compute_bounding_box(par_unseq, sys.x));
  tree.build(par_unseq, sys.m, sys.x);
  const vec3 c{{0.1, -0.2, 0.3}};
  const double r = 0.5;
  std::set<std::uint32_t> got;
  tree.for_each_in_radius(c, r, sys.x,
                          [&](std::size_t b) { got.insert(static_cast<std::uint32_t>(b)); });
  EXPECT_EQ(got, brute_force_in_radius(sys.x, c, r));
}

TEST(Queries, NegativeRadiusRejected) {
  std::vector<vec3> x = {{{0, 0, 0}}};
  Octree3 tree;
  tree.build(par, x, nbody::math::aabb3d::cube(vec3::zero(), 1.0));
  EXPECT_THROW((void)tree.count_in_radius(vec3::zero(), -1.0, x), std::invalid_argument);
}

TEST(Queries, EmptyTreesReturnNothing) {
  std::vector<vec3> x;
  Octree3 oct;
  oct.build(par, x, nbody::math::aabb3d::cube(vec3::zero(), 1.0));
  EXPECT_EQ(oct.count_in_radius(vec3::zero(), 5.0, x), 0u);
  std::vector<double> m;
  BVH3 bvh;
  bvh.build(par_unseq, m, x);
  EXPECT_EQ(bvh.count_in_radius(vec3::zero(), 5.0, x), 0u);
}

}  // namespace
