// Algebraic identity suite for the local-expansion operators
// (math/local_expansion.hpp) that drive the dual-tree far field:
//
//   * M2L ∘ L2P at the expansion center reproduces the direct multipole
//     evaluation bit for bit — the value term is literally accumulated by
//     calling the same gravity_accel / quadrupole_accel kernels;
//   * L2L is an exact polynomial shift: translate-then-evaluate equals
//     evaluate, to FP roundoff, for any chain of translations;
//   * the Jacobian/Hessian coefficients match finite differences of the
//     direct kernels (the derivation check);
//   * expansion error decays at the retained order as the evaluation point
//     approaches the center (cubic for the monopole expansion);
//   * zero-mass and coincident-center degenerates are inert, not NaN.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "math/gravity.hpp"
#include "math/local_expansion.hpp"
#include "math/multipole.hpp"
#include "support/rng.hpp"

namespace {

using nbody::math::gravity_accel;
using nbody::math::l2l;
using nbody::math::l2p;
using nbody::math::LocalExpansion;
using nbody::math::m2l;
using nbody::math::point_quadrupole;
using nbody::math::quadrupole_accel;
using nbody::math::SymTensor;
using vec3 = nbody::math::vec3d;

struct Source {
  double m;
  vec3 z;
};

// A handful of well-separated point sources around the origin-centered
// expansion neighborhood, plus the softening the direct kernels use.
std::vector<Source> far_sources(std::uint64_t seed) {
  nbody::support::Xoshiro256ss rng(seed);
  std::vector<Source> out;
  for (int i = 0; i < 8; ++i) {
    const double r = 4.0 + 6.0 * rng.uniform();
    const double u = 2.0 * rng.uniform() - 1.0;
    const double phi = 6.283185307179586 * rng.uniform();
    const double s = std::sqrt(1.0 - u * u);
    out.push_back({0.1 + rng.uniform(),
                   vec3{{r * s * std::cos(phi), r * s * std::sin(phi), r * u}}});
  }
  return out;
}

constexpr double kEps2 = 1e-4;
constexpr double kG = 1.0;

// ------------------------------------------------------ M2L ∘ L2P identity

TEST(LocalExpansion, EvaluationAtCenterEqualsDirectMonopole) {
  const vec3 c{{0.25, -0.5, 0.125}};
  auto L = LocalExpansion<double, 3>::centered(c);
  vec3 direct = vec3::zero();
  for (const Source& s : far_sources(7)) {
    m2l(L, s.m, s.z, kG, kEps2);
    direct += gravity_accel(c, s.z, s.m, kG, kEps2);
  }
  // Bit-identical: the a0 term is accumulated through the same kernel calls
  // in the same order, and L2P at the center adds exactly zero polynomial.
  const vec3 got = l2p(L, c);
  for (std::size_t d = 0; d < 3; ++d) EXPECT_EQ(got[d], direct[d]);
}

TEST(LocalExpansion, EvaluationAtCenterEqualsDirectQuadrupole) {
  const vec3 c{{-0.3, 0.1, 0.6}};
  auto L = LocalExpansion<double, 3>::centered(c);
  vec3 direct = vec3::zero();
  for (const Source& s : far_sources(11)) {
    // A non-trivial traceless quadrupole: two half-masses offset from z.
    const vec3 off{{0.3, -0.2, 0.1}};
    SymTensor<double, 3> Q = point_quadrupole(s.m / 2, off);
    Q += point_quadrupole(s.m / 2, -off);
    m2l(L, s.m, s.z, Q, kG, kEps2);
    direct += gravity_accel(c, s.z, s.m, kG, kEps2);
    direct += quadrupole_accel(c, s.z, Q, kG, kEps2);
  }
  const vec3 got = l2p(L, c);
  for (std::size_t d = 0; d < 3; ++d) EXPECT_EQ(got[d], direct[d]);
}

// ------------------------------------------------- derivative coefficients

// The Jacobian and Hessian accumulated by m2l must be the derivatives of
// the direct kernels: central finite differences pin the derivation.
TEST(LocalExpansion, JacobianMatchesFiniteDifferenceOfDirectKernels) {
  const vec3 c{{0.2, 0.4, -0.1}};
  const Source s{1.7, vec3{{5.0, -3.0, 2.0}}};
  const vec3 off{{0.25, 0.15, -0.2}};
  SymTensor<double, 3> Q = point_quadrupole(s.m / 2, off);
  Q += point_quadrupole(s.m / 2, -off);
  auto L = LocalExpansion<double, 3>::centered(c);
  m2l(L, s.m, s.z, Q, kG, kEps2);
  const double h = 1e-5;
  for (std::size_t j = 0; j < 3; ++j) {
    vec3 cp = c, cm = c;
    cp[j] += h;
    cm[j] -= h;
    const vec3 ap = gravity_accel(cp, s.z, s.m, kG, kEps2) +
                    quadrupole_accel(cp, s.z, Q, kG, kEps2);
    const vec3 am = gravity_accel(cm, s.z, s.m, kG, kEps2) +
                    quadrupole_accel(cm, s.z, Q, kG, kEps2);
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_NEAR(L.jac(i, j), (ap[i] - am[i]) / (2 * h), 1e-6)
          << "dA_" << i << "/dy_" << j;
  }
}

TEST(LocalExpansion, HessianMatchesFiniteDifferenceOfMonopoleKernel) {
  const vec3 c{{-0.1, 0.3, 0.2}};
  const Source s{2.3, vec3{{-4.0, 5.0, -3.0}}};
  auto L = LocalExpansion<double, 3>::centered(c);
  m2l(L, s.m, s.z, kG, kEps2);
  const double h = 1e-4;
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t k = 0; k < 3; ++k) {
      vec3 cpp = c, cpm = c, cmp = c, cmm = c;
      cpp[j] += h;
      cpp[k] += h;
      cpm[j] += h;
      cpm[k] -= h;
      cmp[j] -= h;
      cmp[k] += h;
      cmm[j] -= h;
      cmm[k] -= h;
      for (std::size_t i = 0; i < 3; ++i) {
        const double fd = (gravity_accel(cpp, s.z, s.m, kG, kEps2)[i] -
                           gravity_accel(cpm, s.z, s.m, kG, kEps2)[i] -
                           gravity_accel(cmp, s.z, s.m, kG, kEps2)[i] +
                           gravity_accel(cmm, s.z, s.m, kG, kEps2)[i]) /
                          (4 * h * h);
        EXPECT_NEAR(L.hess[i](j, k), fd, 1e-5)
            << "d2A_" << i << "/dy_" << j << " dy_" << k;
      }
    }
  }
}

// -------------------------------------------------- L2L translation algebra

TEST(LocalExpansion, L2LTranslationInvariance) {
  const vec3 c{{0.0, 0.0, 0.0}};
  auto L = LocalExpansion<double, 3>::centered(c);
  for (const Source& s : far_sources(23)) m2l(L, s.m, s.z, kG, kEps2);
  const vec3 c2{{0.4, -0.3, 0.2}};
  const auto L2 = l2l(L, c2);
  // Translate-then-evaluate == evaluate, at points inside the neighborhood.
  nbody::support::Xoshiro256ss rng(99);
  for (int t = 0; t < 16; ++t) {
    const vec3 y{{rng.uniform() - 0.5, rng.uniform() - 0.5,
                  rng.uniform() - 0.5}};
    const vec3 a = l2p(L, y);
    const vec3 b = l2p(L2, y);
    for (std::size_t d = 0; d < 3; ++d)
      EXPECT_NEAR(a[d], b[d], 1e-12 * (1.0 + std::abs(a[d])));
  }
}

TEST(LocalExpansion, L2LChainEqualsSingleShift) {
  auto L = LocalExpansion<double, 3>::centered(vec3::zero());
  for (const Source& s : far_sources(31)) m2l(L, s.m, s.z, kG, kEps2);
  const vec3 mid{{0.2, 0.1, -0.3}};
  const vec3 end{{-0.1, 0.4, 0.25}};
  const auto chained = l2l(l2l(L, mid), end);
  const auto direct = l2l(L, end);
  const vec3 y{{0.05, -0.15, 0.1}};
  const vec3 a = l2p(chained, y);
  const vec3 b = l2p(direct, y);
  for (std::size_t d = 0; d < 3; ++d)
    EXPECT_NEAR(a[d], b[d], 1e-12 * (1.0 + std::abs(a[d])));
}

TEST(LocalExpansion, L2LWithQuadrupoleSourcesInvariant) {
  auto L = LocalExpansion<double, 3>::centered(vec3::zero());
  for (const Source& s : far_sources(41)) {
    const vec3 off{{0.2, 0.3, -0.1}};
    SymTensor<double, 3> Q = point_quadrupole(s.m / 2, off);
    Q += point_quadrupole(s.m / 2, -off);
    m2l(L, s.m, s.z, Q, kG, kEps2);
  }
  const auto L2 = l2l(L, vec3{{-0.25, 0.2, 0.35}});
  const vec3 y{{0.1, 0.1, -0.05}};
  const vec3 a = l2p(L, y);
  const vec3 b = l2p(L2, y);
  for (std::size_t d = 0; d < 3; ++d)
    EXPECT_NEAR(a[d], b[d], 1e-12 * (1.0 + std::abs(a[d])));
}

// ------------------------------------------------------- convergence order

// Monopole expansion carries value + Jacobian + Hessian, so the error at
// displacement d from the center is O(|d|^3): halving |d| must shrink the
// error by about 8x (we require > 4x to stay robust to FP noise).
TEST(LocalExpansion, MonopoleExpansionErrorDecaysCubically) {
  const vec3 c = vec3::zero();
  auto L = LocalExpansion<double, 3>::centered(c);
  const auto sources = far_sources(53);
  for (const Source& s : sources) m2l(L, s.m, s.z, kG, kEps2);
  const vec3 dir{{0.6, -0.48, 0.64}};  // |dir| = 1
  double prev_err = -1.0;
  for (const double scale : {0.8, 0.4, 0.2, 0.1}) {
    const vec3 y = c + dir * scale;
    vec3 direct = vec3::zero();
    for (const Source& s : sources) direct += gravity_accel(y, s.z, s.m, kG, kEps2);
    const vec3 approx = l2p(L, y);
    const double err = nbody::math::norm(approx - direct);
    if (prev_err >= 0.0) {
      EXPECT_GT(prev_err, 4.0 * err) << "at scale " << scale;
    }
    prev_err = err;
  }
}

// ------------------------------------------------------------- degenerates

TEST(LocalExpansion, ZeroMassContributesNothing) {
  auto L = LocalExpansion<double, 3>::centered(vec3{{0.1, 0.2, 0.3}});
  m2l(L, 0.0, vec3{{5.0, 5.0, 5.0}}, kG, kEps2);
  SymTensor<double, 3> Q{};  // zero quadrupole
  m2l(L, 0.0, vec3{{-4.0, 2.0, 1.0}}, Q, kG, kEps2);
  EXPECT_EQ(l2p(L, L.center), vec3::zero());
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(L.jac(i, j), 0.0);
}

TEST(LocalExpansion, CoincidentCenterIsInertNotNaN) {
  const vec3 c{{1.0, 2.0, 3.0}};
  // Source exactly at the expansion center, unsoftened: the kernels define
  // this as zero force, and the expansion must follow suit (no NaN/inf).
  auto L = LocalExpansion<double, 3>::centered(c);
  m2l(L, 5.0, c, kG, 0.0);
  const vec3 a = l2p(L, c + vec3{{0.1, 0.0, 0.0}});
  for (std::size_t d = 0; d < 3; ++d) EXPECT_TRUE(std::isfinite(a[d]));
  EXPECT_EQ(l2p(L, c), vec3::zero());
  // Softened coincident source: finite field, still no NaN.
  auto Ls = LocalExpansion<double, 3>::centered(c);
  m2l(Ls, 5.0, c, kG, kEps2);
  const vec3 as = l2p(Ls, c + vec3{{0.01, -0.02, 0.03}});
  for (std::size_t d = 0; d < 3; ++d) EXPECT_TRUE(std::isfinite(as[d]));
}

TEST(LocalExpansion, TwoDimensionalSpecialization) {
  using vec2 = nbody::math::vec<double, 2>;
  auto L = LocalExpansion<double, 2>::centered(vec2{{0.1, -0.1}});
  const vec2 z{{6.0, 4.0}};
  m2l(L, 2.0, z, kG, kEps2);
  const vec2 direct = gravity_accel(L.center, z, 2.0, kG, kEps2);
  const vec2 got = l2p(L, L.center);
  EXPECT_EQ(got[0], direct[0]);
  EXPECT_EQ(got[1], direct[1]);
  const auto L2 = l2l(L, vec2{{-0.2, 0.15}});
  const vec2 y{{0.05, 0.05}};
  EXPECT_NEAR(l2p(L, y)[0], l2p(L2, y)[0], 1e-13);
  EXPECT_NEAR(l2p(L, y)[1], l2p(L2, y)[1], 1e-13);
}

}  // namespace
