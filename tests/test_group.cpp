// Group-traversal force path: edge cases, interaction-list storage, the
// composition with reuse_interval amortization and run_guarded checkpoint
// restore (stale-partition invalidation), and chaos/race-detector coverage
// of the list build (a planted unsynchronized list-append must be caught; a
// clean grouped traversal must be lockset-clean). The broad differential
// force-equivalence sweep lives in tests/test_chaos_sweep.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bvh/strategy.hpp"
#include "core/diagnostics.hpp"
#include "core/simulation.hpp"
#include "core/step_context.hpp"
#include "core/system.hpp"
#include "exec/algorithms.hpp"
#include "exec/chaos/chaos.hpp"
#include "exec/chaos/race_detector.hpp"
#include "math/batch_kernels.hpp"
#include "math/gravity.hpp"
#include "octree/strategy.hpp"
#include "prop/generators.hpp"
#include "prop/invariants.hpp"
#include "support/fault.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace nbody;
using exec::par;
using exec::par_unseq;
using exec::seq;
using prop::forces_of;
using prop::max_abs_diff;
using prop::rel_l2_error;
using prop::System3;
using prop::Vec3;

// Guarantee real concurrency for the race-detector tests even on a 1-core
// box (same guard as test_chaos.cpp); callers may still override.
const bool g_thread_env = [] {
  setenv("NBODY_THREADS", "4", /*overwrite=*/0);
  return true;
}();

constexpr double kTreeTol = 0.08;  // matches the differential sweep's ball

core::SimConfig<double> grouped_cfg(std::size_t gsize) {
  core::SimConfig<double> cfg;
  cfg.group_size = gsize;
  return cfg;
}

// ------------------------------------------------------------ edge cases

// group_size = 1 degenerates to one walk per body — same algorithm as the
// DFS up to the conservative box MAC (a point box: dist2 to the body
// itself), so it must sit in the DFS's truncation ball.
TEST(GroupTraversal, GroupSizeOneMatchesPerBodyDFS) {
  const System3 sys = workloads::plummer_sphere(200, 11);
  const auto ref = prop::reference_forces(sys, grouped_cfg(0));
  for (std::size_t gsize : {std::size_t{1}, std::size_t{3}, std::size_t{200}, std::size_t{5000}}) {
    SCOPED_TRACE("group_size=" + std::to_string(gsize));
    const auto oct = forces_of(octree::OctreeStrategy<double, 3>{}, par, sys, grouped_cfg(gsize));
    const auto bvh = forces_of(bvh::BVHStrategy<double, 3>{}, par_unseq, sys, grouped_cfg(gsize));
    EXPECT_LE(rel_l2_error(oct, ref), kTreeTol);
    EXPECT_LE(rel_l2_error(bvh, ref), kTreeTol);
  }
}

// group_size > N collapses to a single group holding every body: the walk
// can accept nothing (every node overlaps the group box) and the kernels
// reduce to the exact all-pairs sum.
TEST(GroupTraversal, GroupLargerThanNIsExactAllPairs) {
  const System3 sys = workloads::uniform_cube(96, 17);
  const auto ref = prop::reference_forces(sys, grouped_cfg(0));
  const auto oct = forces_of(octree::OctreeStrategy<double, 3>{}, seq, sys, grouped_cfg(1 << 20));
  const auto bvh = forces_of(bvh::BVHStrategy<double, 3>{}, seq, sys, grouped_cfg(1 << 20));
  // Summation order differs from the reference loop, nothing else.
  EXPECT_LE(rel_l2_error(oct, ref), 1e-10);
  EXPECT_LE(rel_l2_error(bvh, ref), 1e-10);
}

TEST(GroupTraversal, EmptyAndSingleBodySystems) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    System3 sys;
    if (n == 1) sys.add(2.5, {0.3, -0.1, 0.7}, Vec3::zero());
    const auto cfg = grouped_cfg(4);
    auto oct = forces_of(octree::OctreeStrategy<double, 3>{}, par, sys, cfg);
    auto bvh = forces_of(bvh::BVHStrategy<double, 3>{}, par_unseq, sys, cfg);
    ASSERT_EQ(oct.size(), n);
    ASSERT_EQ(bvh.size(), n);
    for (const auto& a : oct) EXPECT_EQ(a, Vec3::zero());
    for (const auto& a : bvh) EXPECT_EQ(a, Vec3::zero());
  }
}

// ---------------------------------------------- interaction-list storage

// Deliberately undersized reserve: every append past capacity takes the
// geometric-regrowth path, and the evaluated result must still match a
// direct scalar sum over the same sources.
TEST(InteractionLists, RegrowthPastReserveKeepsContents) {
  support::Xoshiro256ss rng(99);
  math::InteractionLists<double, 3> lists;
  lists.reserve(1, 1);  // force regrowth on nearly every push
  const std::size_t kNodes = 300, kBodies = 500;
  std::vector<Vec3> src_x;
  std::vector<double> src_m;
  for (std::size_t j = 0; j < kNodes + kBodies; ++j) {
    const Vec3 x{prop::urand(rng, -3, 3), prop::urand(rng, -3, 3), prop::urand(rng, -3, 3)};
    const double m = prop::urand(rng, 0.1, 2.0);
    if (j < kNodes)
      lists.push_node(x, m);
    else
      lists.push_body(x, m);
    src_x.push_back(x);
    src_m.push_back(m);
  }
  ASSERT_EQ(lists.m2p_size(), kNodes);
  ASSERT_EQ(lists.p2p_size(), kBodies);
  EXPECT_GE(lists.m2p_capacity(), kNodes);
  EXPECT_GE(lists.p2p_capacity(), kBodies);

  const Vec3 target{0.1, 0.2, -0.3};
  const double G = 1.0, eps2 = 1e-4;
  Vec3 batch;
  math::evaluate_interaction_lists(lists, &target, 1, G, eps2, &batch);
  Vec3 direct = Vec3::zero();
  for (std::size_t j = 0; j < src_x.size(); ++j)
    direct += math::gravity_accel(target, src_x[j], src_m[j], G, eps2);
  EXPECT_LE(std::sqrt(math::norm2(batch - direct) / math::norm2(direct)), 1e-12);
}

// A target present in its own P2P list picks up exactly zero from itself —
// the self-interaction trick the grouped path relies on.
TEST(InteractionLists, SelfSourceContributesExactlyZero) {
  math::InteractionLists<double, 3> lists;
  const Vec3 self{1.0, -2.0, 0.5};
  lists.push_body(self, 3.0);
  Vec3 acc;
  math::evaluate_interaction_lists(lists, &self, 1, 1.0, /*eps2=*/0.0, &acc);
  EXPECT_EQ(acc, Vec3::zero());
}

// --------------------------------------- composition with reuse_interval

// reuse_interval > 1 keeps the octree topology (and the cached group
// partition) across steps; the grouped trajectory must track the per-body
// DFS trajectory under the same amortization.
TEST(GroupTraversal, ComposesWithReuseInterval) {
  const System3 initial = workloads::galaxy_collision(400, 23);
  auto cfg = grouped_cfg(0);

  octree::OctreeStrategy<double, 3>::Options oct_opts;
  oct_opts.update = core::TreeUpdatePolicy::parse("refit:3", "test");
  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> dfs_oct(
      initial, cfg, octree::OctreeStrategy<double, 3>(oct_opts));
  dfs_oct.run(par, 9);

  cfg.group_size = 24;
  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> grp_oct(
      initial, cfg, octree::OctreeStrategy<double, 3>(oct_opts));
  grp_oct.run(par, 9);
  EXPECT_LT(core::l2_position_error(grp_oct.system(), dfs_oct.system()), 1e-3);

  bvh::BVHStrategy<double, 3>::Options bvh_opts;
  bvh_opts.update = core::TreeUpdatePolicy::parse("refit:3", "test");
  cfg.group_size = 0;
  core::Simulation<double, 3, bvh::BVHStrategy<double, 3>> dfs_bvh(
      initial, cfg, bvh::BVHStrategy<double, 3>(bvh_opts));
  dfs_bvh.run(par_unseq, 9);

  cfg.group_size = 24;
  core::Simulation<double, 3, bvh::BVHStrategy<double, 3>> grp_bvh(
      initial, cfg, bvh::BVHStrategy<double, 3>(bvh_opts));
  grp_bvh.run(par_unseq, 9);
  EXPECT_LT(core::l2_position_error(grp_bvh.system(), dfs_bvh.system()), 1e-3);
}

// invalidate() must drop the cached group partition: after it, a strategy
// that already ran on different positions produces bit-identical forces to a
// fresh strategy (same positions, seq build ⇒ same topology, same lists).
TEST(GroupTraversal, InvalidateDropsStalePartition) {
  const System3 a = workloads::plummer_sphere(150, 31);
  const System3 b = workloads::uniform_cube(150, 32);
  const auto cfg = grouped_cfg(16);

  octree::OctreeStrategy<double, 3> warm;
  (void)forces_of(warm, seq, a, cfg);  // caches a's partition
  warm.invalidate();
  const auto warm_forces = forces_of(warm, seq, b, cfg);
  const auto fresh_forces = forces_of(octree::OctreeStrategy<double, 3>{}, seq, b, cfg);
  EXPECT_EQ(max_abs_diff(warm_forces, fresh_forces), 0.0);
}

// End-to-end stale-list invalidation: run_guarded restores a checkpoint
// after injected octree faults, calls invalidate(), and the grouped run must
// land on the unfaulted grouped trajectory — a stale partition replayed
// against the restored positions would not.
TEST(GroupTraversal, RunGuardedRestoreInvalidatesGroupPartition) {
  struct FaultScope {
    FaultScope() { support::disarm_all_faults(); }
    ~FaultScope() { support::disarm_all_faults(); }
  } scope;
  const auto sys = workloads::plummer_sphere(300, 29);
  auto cfg = grouped_cfg(32);
  cfg.dt = 1e-3;
  // A refit interval > 1 makes the invalidation load-bearing: without the
  // restore hook the pre-fault topology and group partition would be
  // replayed against the restored positions for up to 3 more steps.
  octree::OctreeStrategy<double, 3>::Options opts_reuse;
  opts_reuse.update = core::TreeUpdatePolicy::parse("refit:4", "test");

  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> ref(
      sys, cfg, octree::OctreeStrategy<double, 3>(opts_reuse));
  ref.run(par, 12);
  ref.synchronize_velocities(par);

  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> guarded(
      sys, cfg, octree::OctreeStrategy<double, 3>(opts_reuse));
  core::GuardedOptions<double> opts;
  opts.checkpoint_every = 3;
  opts.max_retries = 8;
  support::arm_fault(support::FaultSite::octree_node_alloc, {1.0, 0, 3});
  const auto rep = guarded.run_guarded(par, 12, opts);
  support::disarm_all_faults();
  guarded.synchronize_velocities(par);

  EXPECT_EQ(rep.steps_completed, 12u);
  EXPECT_GE(rep.restores, 1u);
  // The restore's forced rebuild shifts the guarded run's amortization
  // boundaries relative to the unfaulted run, so agreement is at the
  // reuse-amortization level (cf. ComposesWithReuseInterval), not bitwise.
  EXPECT_LT(core::l2_position_error(guarded.system(), ref.system()), 2e-3);
}

// ------------------------------------------------- race-detector coverage

#if defined(NBODY_CHAOS)
namespace chaos = exec::chaos;

// Planted bug: groups append to one shared interaction list through an
// unsynchronized cursor instead of thread-local scratch. The Eraser-style
// lockset check must flag the cross-thread writes.
TEST(GroupTraversalRaces, PlantedSharedListAppendIsCaught) {
  chaos::DetectorScope scope;
  std::uint64_t cursor = 0;  // shared append cursor, no lock — the bug
  std::vector<double> shared_list(4096, 0.0);
  exec::for_each_index(par, 256, [&](std::size_t i) {
    const std::uint64_t at = chaos::checked_load(cursor);
    shared_list[at % shared_list.size()] = static_cast<double>(i);
    chaos::checked_store(cursor, at + 1);
  });
  auto& det = chaos::RaceDetector::instance();
  EXPECT_GE(det.lockset_races(), 1u) << det.report();
}

// Negative control: the real grouped force path keeps all list state in
// thread-local scratch and writes disjoint acceleration slots — a full
// grouped evaluation under the detector must be violation-free.
TEST(GroupTraversalRaces, GroupedTraversalIsLocksetClean) {
  chaos::DetectorScope scope;
  System3 sys = workloads::plummer_sphere(512, 5);
  const auto cfg = grouped_cfg(32);
  {
    octree::OctreeStrategy<double, 3> strategy;
    core::accelerate(strategy, par, sys, cfg);
  }
  {
    bvh::BVHStrategy<double, 3> strategy;
    core::accelerate(strategy, par, sys, cfg);
  }
  auto& det = chaos::RaceDetector::instance();
  EXPECT_EQ(det.violation_count(), 0u) << det.report();
}
#endif  // NBODY_CHAOS

}  // namespace
