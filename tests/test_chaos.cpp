// Chaos correctness tooling: the schedule-permuting backend, the lockset +
// policy race detector, seed replay, golden determinism, and tiny-N edge
// cases. The heavyweight differential sweep lives in test_chaos_sweep.cpp
// (CTest labels chaos + slow); this binary is the fast `chaos` lane.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "allpairs/allpairs.hpp"
#include "bvh/strategy.hpp"
#include "core/simulation.hpp"
#include "core/snapshot.hpp"
#include "exec/algorithms.hpp"
#include "exec/atomic.hpp"
#include "exec/chaos/chaos.hpp"
#include "exec/chaos/race_detector.hpp"
#include "exec/thread_pool.hpp"
#include "octree/strategy.hpp"
#include "prop/generators.hpp"
#include "prop/invariants.hpp"
#include "workloads/workloads.hpp"

namespace {

namespace chaos = nbody::exec::chaos;
using nbody::exec::backend;
using nbody::exec::par;
using nbody::exec::par_unseq;
using nbody::exec::seq;
using nbody::prop::System3;
using nbody::prop::Vec3;

// The host may expose a single core; the chaos tooling needs real worker
// threads to interleave. Runs before main(), i.e. before the first
// thread_pool::global() construction. overwrite=0 respects an explicit
// NBODY_THREADS from the caller (e.g. ci/run_matrix.sh).
const bool g_thread_env = [] {
  setenv("NBODY_THREADS", "4", /*overwrite=*/0);
  return true;
}();

/// Saves and restores the process-global scheduling backend around a test.
class BackendScope {
 public:
  explicit BackendScope(backend b) : saved_(nbody::exec::default_backend()) {
    nbody::exec::set_default_backend(b);
  }
  ~BackendScope() { nbody::exec::set_default_backend(saved_); }

 private:
  backend saved_;
};

// ---------------------------------------------------------------------------
// Schedule-permuting backend
// ---------------------------------------------------------------------------

TEST(ChaosSchedule, PermutationIsCompleteAndSeedDeterministic) {
  const auto perm = chaos::make_permutation(42, 257);
  ASSERT_EQ(perm.size(), 257u);
  std::vector<bool> seen(257, false);
  for (auto v : perm) {
    ASSERT_LT(v, 257u);
    EXPECT_FALSE(seen[v]) << "index dispatched twice";
    seen[v] = true;
  }
  EXPECT_EQ(perm, chaos::make_permutation(42, 257)) << "same seed must replay";
  EXPECT_NE(perm, chaos::make_permutation(43, 257)) << "different seed, different schedule";
}

TEST(ChaosSchedule, RegionSeedStreamReplaysFromMasterSeed) {
  chaos::set_seed(1234);
  EXPECT_EQ(chaos::seed(), 1234u);
  EXPECT_EQ(chaos::describe_seed(), "NBODY_CHAOS_SEED=1234");
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 5; ++i) first.push_back(chaos::next_region_seed());
  chaos::set_seed(1234);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(chaos::next_region_seed(), first[i]);
  EXPECT_EQ(chaos::regions_dispatched(), 5u);
}

TEST(ChaosSchedule, ForEachVisitsEveryIndexExactlyOnce) {
  BackendScope scope(backend::chaos_permute);
  chaos::set_seed(7);
  const std::size_t n = 10000;
  std::vector<int> hits(n, 0);
  nbody::exec::for_each_index(par, n, [&](std::size_t i) {
    nbody::exec::fetch_add_relaxed(hits[i], 1);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ChaosSchedule, ReduceStaysDeterministicUnderPermutedSchedules) {
  BackendScope scope(backend::chaos_permute);
  // Chunk partials are combined in chunk order regardless of dispatch order,
  // so even an FP reduction must be bit-stable across chaos seeds.
  const std::size_t n = 5000;
  auto run = [&] {
    return nbody::exec::transform_reduce_index(
        par, n, 0.0, [](double a, double b) { return a + b; },
        [](std::size_t i) { return 1.0 / static_cast<double>(i + 1); });
  };
  chaos::set_seed(11);
  const double a = run();
  chaos::set_seed(99);
  const double b = run();
  EXPECT_EQ(a, b);
}

// The acceptance demonstration: a property that holds under the in-order
// backends ("chunks are dispatched in ascending order") is violated under
// some chaos schedule, the harness prints the seed, and re-running with that
// exact seed reproduces the identical failing schedule.
TEST(ChaosSchedule, FailingScheduleReplaysFromPrintedSeed) {
  BackendScope scope(backend::chaos_permute);
  nbody::exec::thread_pool pool(1);  // one participant: dispatch order == execution order
  const std::size_t n = 1600;

  auto dispatch_order = [&] {
    std::vector<std::size_t> order;
    std::mutex m;
    nbody::exec::detail::parallel_blocks(
        pool, nbody::exec::forward_progress::parallel, n,
        [&](std::size_t b, std::size_t) {
          std::lock_guard<std::mutex> lock(m);
          order.push_back(b);
        });
    return order;
  };

  std::uint64_t failing_seed = 0;
  std::vector<std::size_t> failing_order;
  for (std::uint64_t s = 1; s <= 64; ++s) {
    chaos::set_seed(s);
    auto order = dispatch_order();
    if (!std::is_sorted(order.begin(), order.end())) {
      failing_seed = s;
      failing_order = std::move(order);
      break;
    }
  }
  ASSERT_NE(failing_seed, 0u) << "no permuting schedule found in 64 seeds";
  // What a real failure would print:
  std::printf("property violated under NBODY_CHAOS_SEED=%llu\n",
              static_cast<unsigned long long>(failing_seed));

  // Replay from the printed seed: the schedule must be identical.
  chaos::set_seed(failing_seed);
  EXPECT_EQ(dispatch_order(), failing_order) << "seed replay must reproduce the schedule";
  chaos::set_seed(failing_seed);
  EXPECT_EQ(dispatch_order(), failing_order);
}

// ---------------------------------------------------------------------------
// Race detector: policy check
// ---------------------------------------------------------------------------

TEST(RaceDetector, LockAcquisitionUnderParUnseqIsPolicyViolation) {
  chaos::DetectorScope scope;
  chaos::InstrumentedMutex m;
  long shared = 0;
  nbody::exec::for_each_index(par_unseq, 64, [&](std::size_t) {
    std::lock_guard<chaos::InstrumentedMutex> lock(m);
    ++shared;
  });
  auto& det = chaos::RaceDetector::instance();
  EXPECT_GE(det.policy_violations(), 1u);
  bool found = false;
  for (const auto& v : det.violations())
    if (v.kind == chaos::Violation::Kind::policy &&
        v.to_string().find("par_unseq") != std::string::npos)
      found = true;
  EXPECT_TRUE(found) << det.report();
  EXPECT_EQ(shared, 64);
}

TEST(RaceDetector, SameLockUnderParIsClean) {
  chaos::DetectorScope scope;
  chaos::InstrumentedMutex m;
  long shared = 0;
  nbody::exec::for_each_index(par, 64, [&](std::size_t) {
    std::lock_guard<chaos::InstrumentedMutex> lock(m);
    ++shared;
  });
  EXPECT_EQ(chaos::RaceDetector::instance().violation_count(), 0u)
      << chaos::RaceDetector::instance().report();
  EXPECT_EQ(shared, 64);
}

#if defined(NBODY_CHAOS)
TEST(RaceDetector, SynchronizingAtomicHelperUnderParUnseqIsCaught) {
  chaos::DetectorScope scope;
  double cell = 0;
  nbody::exec::for_each_index(par_unseq, 32, [&](std::size_t) {
    nbody::exec::store_release(cell, 1.0);  // planted: release store in par_unseq
  });
  auto& det = chaos::RaceDetector::instance();
  ASSERT_GE(det.policy_violations(), 1u) << det.report();
  bool found = false;
  for (const auto& v : det.violations())
    if (std::string(v.op) == "store_release") found = true;
  EXPECT_TRUE(found) << det.report();
}

TEST(RaceDetector, RelaxedAtomicHelperUnderParUnseqIsNotAViolation) {
  chaos::DetectorScope scope;
  std::uint64_t counter = 0;
  nbody::exec::for_each_index(par_unseq, 64, [&](std::size_t) {
    nbody::exec::fetch_add_relaxed(counter, std::uint64_t{1});
  });
  EXPECT_EQ(chaos::RaceDetector::instance().policy_violations(), 0u)
      << chaos::RaceDetector::instance().report();
  EXPECT_EQ(counter, 64u);
}
#endif  // NBODY_CHAOS

// ---------------------------------------------------------------------------
// Race detector: Eraser-style lockset check
// ---------------------------------------------------------------------------

TEST(RaceDetector, UnsynchronizedSharedWriteIsFlagged) {
  chaos::DetectorScope scope;
  std::uint64_t shared = 0;
  // Planted race: every rank writes the same word with no lock held. The
  // static backend hands each of the >= 2 ranks its own chunk, so at least
  // two distinct threads write.
  nbody::exec::for_each_index(par, 256, [&](std::size_t i) {
    chaos::checked_store(shared, static_cast<std::uint64_t>(i));
  });
  auto& det = chaos::RaceDetector::instance();
  ASSERT_GE(det.lockset_races(), 1u) << det.report();
  bool found = false;
  for (const auto& v : det.violations())
    if (v.kind == chaos::Violation::Kind::lockset &&
        v.to_string().find("lockset={}") != std::string::npos)
      found = true;
  EXPECT_TRUE(found) << det.report();
}

TEST(RaceDetector, ConsistentlyLockedSharedWriteIsNotFlagged) {
  chaos::DetectorScope scope;
  chaos::InstrumentedMutex m;
  std::uint64_t shared = 0;
  nbody::exec::for_each_index(par, 256, [&](std::size_t i) {
    std::lock_guard<chaos::InstrumentedMutex> lock(m);
    chaos::checked_store(shared, static_cast<std::uint64_t>(i));
  });
  EXPECT_EQ(chaos::RaceDetector::instance().lockset_races(), 0u)
      << chaos::RaceDetector::instance().report();
}

TEST(RaceDetector, SingleThreadWritesAreNeverRaces) {
  chaos::DetectorScope scope;
  std::uint64_t local = 0;
  for (std::size_t i = 0; i < 100; ++i) chaos::checked_store(local, i);
  EXPECT_EQ(chaos::RaceDetector::instance().violation_count(), 0u);
}

TEST(RaceDetector, ReportCarriesTheChaosSeedForReplay) {
  chaos::set_seed(777);
  chaos::DetectorScope scope;
  chaos::InstrumentedMutex m;
  nbody::exec::for_each_index(par_unseq, 8, [&](std::size_t) {
    std::lock_guard<chaos::InstrumentedMutex> lock(m);
  });
  const std::string report = chaos::RaceDetector::instance().report();
  EXPECT_NE(report.find("NBODY_CHAOS_SEED=777"), std::string::npos) << report;
  EXPECT_NE(report.find("violation"), std::string::npos) << report;
}

#if defined(NBODY_CHAOS)
// The wiring the tentpole asks for: the octree's CAS subdivision lock and the
// atomic helpers report into the detector, and a full concurrent tree build
// under its declared policy (par) is violation-free.
TEST(RaceDetector, OctreeParallelBuildIsPolicyCleanAndLocksAreLogged) {
  chaos::DetectorScope scope(/*log_accesses=*/true);
  System3 sys = nbody::workloads::plummer_sphere(512, 5);
  nbody::octree::OctreeStrategy<double, 3> strategy;
  nbody::core::SimConfig<double> cfg;
  nbody::core::accelerate(strategy, par, sys, cfg);

  auto& det = chaos::RaceDetector::instance();
  EXPECT_EQ(det.violation_count(), 0u) << det.report();

  std::size_t acquires = 0, releases = 0, atomics = 0;
  for (const auto& rec : det.access_log()) {
    ASSERT_NE(rec.addr, 0u);
    if (rec.kind == chaos::AccessKind::lock_acquire) ++acquires;
    if (rec.kind == chaos::AccessKind::lock_release) ++releases;
    if (rec.kind == chaos::AccessKind::atomic_relaxed ||
        rec.kind == chaos::AccessKind::atomic_sync)
      ++atomics;
  }
  EXPECT_GE(acquires, 1u) << "octree subdivision lock not reported";
  EXPECT_EQ(acquires, releases) << "unbalanced lock events";
  EXPECT_GE(atomics, 1u) << "atomic helpers not reported";
}

TEST(RaceDetector, AccessLogRecordsTheFullTuple) {
  chaos::DetectorScope scope(/*log_accesses=*/true);
  std::uint64_t counter = 0;
  nbody::exec::for_each_index(par, 64, [&](std::size_t) {
    nbody::exec::fetch_add_relaxed(counter, std::uint64_t{1});
  });
  const auto log = chaos::RaceDetector::instance().access_log();
  ASSERT_FALSE(log.empty());
  bool saw_counter = false;
  for (const auto& rec : log) {
    if (rec.addr == reinterpret_cast<std::uintptr_t>(&counter)) {
      saw_counter = true;
      EXPECT_EQ(rec.kind, chaos::AccessKind::atomic_relaxed);
      EXPECT_STREQ(rec.op, "fetch_add_relaxed");
      EXPECT_EQ(rec.policy, nbody::exec::forward_progress::parallel);
    }
  }
  EXPECT_TRUE(saw_counter);
}
#endif  // NBODY_CHAOS

// ---------------------------------------------------------------------------
// Golden determinism (satellite a)
// ---------------------------------------------------------------------------

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

TEST(GoldenDeterminism, SeqRunIsBitIdenticalIncludingSnapshotBytes) {
  const System3 initial = nbody::workloads::galaxy_collision(96, 42);
  nbody::core::SimConfig<double> cfg;

  auto run_once = [&] {
    nbody::core::Simulation<double, 3, nbody::octree::OctreeStrategy<double, 3>> sim(
        initial, cfg, {});
    sim.run(seq, 5);
    return sim.system();
  };
  const System3 a = run_once();
  const System3 b = run_once();

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t d = 0; d < 3; ++d) {
      ASSERT_EQ(a.x[i][d], b.x[i][d]) << "position differs at body " << i;
      ASSERT_EQ(a.v[i][d], b.v[i][d]) << "velocity differs at body " << i;
    }
  }

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path();
  const std::string pa = (dir / "nbody_golden_a.snap").string();
  const std::string pb = (dir / "nbody_golden_b.snap").string();
  nbody::core::save_snapshot_binary(a, pa);
  nbody::core::save_snapshot_binary(b, pb);
  EXPECT_EQ(file_bytes(pa), file_bytes(pb)) << "snapshot bytes must be identical";
  fs::remove(pa);
  fs::remove(pb);
}

TEST(GoldenDeterminism, AllPairsForcesAreScheduleInvariantBitwise) {
  // Per-body private accumulation: the chunk layout must not change a single
  // bit of the result, whatever order chunks are dispatched in.
  const System3 sys = nbody::workloads::plummer_sphere(200, 9);
  nbody::core::SimConfig<double> cfg;
  nbody::allpairs::AllPairs<double, 3> ap;
  const auto baseline = nbody::prop::forces_of(ap, par, sys, cfg);
  for (std::uint64_t s = 1; s <= 4; ++s) {
    BackendScope scope(backend::chaos_permute);
    chaos::set_seed(s);
    const auto permuted = nbody::prop::forces_of(ap, par, sys, cfg);
    EXPECT_EQ(nbody::prop::max_abs_diff(baseline, permuted), 0.0)
        << "schedule changed all-pairs forces, " << chaos::describe_seed();
  }
}

// ---------------------------------------------------------------------------
// N = 0 / N = 1 edge cases through every strategy (satellite b)
// ---------------------------------------------------------------------------

class EdgeCaseTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EdgeCaseTest, AllFourStrategiesSurviveTinySystems) {
  const std::size_t n = GetParam();
  System3 sys;
  if (n == 1) sys.add(2.5, {0.5, -0.25, 1.0}, {0.1, 0.0, 0.0});
  nbody::core::SimConfig<double> cfg;

  auto expect_zero_accel = [&](const std::vector<Vec3>& f, const char* what) {
    ASSERT_EQ(f.size(), n) << what;
    for (const auto& a : f)
      for (std::size_t d = 0; d < 3; ++d) EXPECT_EQ(a[d], 0.0) << what;
  };
  // No pairs exist, so every strategy must produce exactly zero acceleration.
  expect_zero_accel(
      nbody::prop::forces_of(nbody::octree::OctreeStrategy<double, 3>{}, par, sys, cfg),
      "octree");
  expect_zero_accel(
      nbody::prop::forces_of(nbody::bvh::BVHStrategy<double, 3>{}, par_unseq, sys, cfg), "bvh");
  expect_zero_accel(
      nbody::prop::forces_of(nbody::allpairs::AllPairs<double, 3>{}, par_unseq, sys, cfg),
      "all-pairs");
  expect_zero_accel(
      nbody::prop::forces_of(nbody::allpairs::AllPairsCol<double, 3>{}, par, sys, cfg),
      "all-pairs-col");
}

TEST_P(EdgeCaseTest, SimulationAndGuardedRunSurviveTinySystems) {
  const std::size_t n = GetParam();
  System3 sys;
  if (n == 1) sys.add(2.5, {0.5, -0.25, 1.0}, {0.1, 0.0, 0.0});
  nbody::core::SimConfig<double> cfg;

  {
    nbody::core::Simulation<double, 3, nbody::bvh::BVHStrategy<double, 3>> sim(sys, cfg, {});
    sim.run(par_unseq, 3);
    EXPECT_EQ(sim.system().size(), n);
  }
  {
    nbody::core::Simulation<double, 3, nbody::octree::OctreeStrategy<double, 3>> sim(sys, cfg,
                                                                                     {});
    const auto report = sim.run_guarded(par, 3);
    EXPECT_EQ(report.steps_completed, 3u);
    EXPECT_EQ(sim.system().size(), n);
    if (n == 1) {
      // A lone body feels no force: uniform motion.
      const double expect_x = 0.5 + 3 * cfg.dt * 0.1;
      EXPECT_NEAR(sim.system().x[0][0], expect_x, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TinyN, EdgeCaseTest, ::testing::Values(0u, 1u),
                         [](const auto& param_info) {
                           return "N" + std::to_string(param_info.param);
                         });

}  // namespace
