// Unit tests for src/math: vec arithmetic, AABB semantics (the reduction
// monoid of the paper's Algorithm 3), orthant/child-box subdivision, and the
// gravity kernel.
#include <gtest/gtest.h>

#include <cmath>

#include "math/aabb.hpp"
#include "math/gravity.hpp"
#include "math/vec.hpp"

namespace {

using nbody::math::aabb;
using nbody::math::aabb2d;
using nbody::math::aabb3d;
using nbody::math::vec;
using nbody::math::vec2d;
using nbody::math::vec3d;

// ---------------------------------------------------------------- vec

TEST(Vec, Arithmetic) {
  const vec3d a{{1, 2, 3}};
  const vec3d b{{4, 5, 6}};
  EXPECT_EQ(a + b, (vec3d{{5, 7, 9}}));
  EXPECT_EQ(b - a, (vec3d{{3, 3, 3}}));
  EXPECT_EQ(a * 2.0, (vec3d{{2, 4, 6}}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(a / 2.0, (vec3d{{0.5, 1, 1.5}}));
  EXPECT_EQ(-a, (vec3d{{-1, -2, -3}}));
}

TEST(Vec, CompoundAssignment) {
  vec3d a{{1, 1, 1}};
  a += vec3d{{1, 2, 3}};
  EXPECT_EQ(a, (vec3d{{2, 3, 4}}));
  a -= vec3d{{1, 1, 1}};
  EXPECT_EQ(a, (vec3d{{1, 2, 3}}));
  a *= 3.0;
  EXPECT_EQ(a, (vec3d{{3, 6, 9}}));
  a /= 3.0;
  EXPECT_EQ(a, (vec3d{{1, 2, 3}}));
}

TEST(Vec, DotAndNorms) {
  const vec3d a{{1, 2, 2}};
  EXPECT_DOUBLE_EQ(dot(a, a), 9.0);
  EXPECT_DOUBLE_EQ(norm2(a), 9.0);
  EXPECT_DOUBLE_EQ(norm(a), 3.0);
  EXPECT_DOUBLE_EQ(dot(a, vec3d{{0, 0, 0}}), 0.0);
}

TEST(Vec, MinMaxComponentwise) {
  const vec3d a{{1, 5, 3}};
  const vec3d b{{2, 4, 3}};
  EXPECT_EQ(min(a, b), (vec3d{{1, 4, 3}}));
  EXPECT_EQ(max(a, b), (vec3d{{2, 5, 3}}));
  EXPECT_DOUBLE_EQ(max_component(a), 5.0);
}

TEST(Vec, SplatAndZero) {
  EXPECT_EQ(vec3d::splat(2.0), (vec3d{{2, 2, 2}}));
  EXPECT_EQ(vec3d::zero(), (vec3d{{0, 0, 0}}));
  EXPECT_EQ(vec2d::zero(), (vec2d{{0, 0}}));
}

TEST(Vec, TwoDimensional) {
  const vec2d a{{3, 4}};
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
  EXPECT_EQ(a + a, (vec2d{{6, 8}}));
}

// ---------------------------------------------------------------- aabb

TEST(Aabb, DefaultIsEmptyIdentity) {
  const aabb3d e;
  EXPECT_TRUE(e.empty());
  const aabb3d b = aabb3d::of_point({{1, 2, 3}});
  // Empty box is the identity of merged() — the reduction init of Alg. 3.
  EXPECT_EQ(e.merged(b), b);
  EXPECT_EQ(b.merged(e), b);
}

TEST(Aabb, MergedIsCommutativeAndGrowsMonotonically) {
  const aabb3d a = aabb3d::of_point({{0, 0, 0}});
  const aabb3d b = aabb3d::of_point({{1, -1, 2}});
  const aabb3d m = a.merged(b);
  EXPECT_EQ(m, b.merged(a));
  EXPECT_TRUE(m.contains(a));
  EXPECT_TRUE(m.contains(b));
}

TEST(Aabb, ContainsPoint) {
  const aabb3d b{{{0, 0, 0}}, {{1, 1, 1}}};
  EXPECT_TRUE(b.contains(vec3d{{0.5, 0.5, 0.5}}));
  EXPECT_TRUE(b.contains(vec3d{{0, 0, 0}}));   // boundary inclusive
  EXPECT_TRUE(b.contains(vec3d{{1, 1, 1}}));
  EXPECT_FALSE(b.contains(vec3d{{1.01, 0.5, 0.5}}));
  EXPECT_FALSE(b.contains(vec3d{{0.5, -0.01, 0.5}}));
}

TEST(Aabb, CenterExtentLongestSide) {
  const aabb3d b{{{0, 0, 0}}, {{2, 4, 6}}};
  EXPECT_EQ(b.center(), (vec3d{{1, 2, 3}}));
  EXPECT_EQ(b.extent(), (vec3d{{2, 4, 6}}));
  EXPECT_DOUBLE_EQ(b.longest_side(), 6.0);
  EXPECT_DOUBLE_EQ(aabb3d{}.longest_side(), 0.0);
}

TEST(Aabb, OrthantIndexing3d) {
  const aabb3d b{{{-1, -1, -1}}, {{1, 1, 1}}};
  EXPECT_EQ(b.orthant({{-0.5, -0.5, -0.5}}), 0u);
  EXPECT_EQ(b.orthant({{0.5, -0.5, -0.5}}), 1u);
  EXPECT_EQ(b.orthant({{-0.5, 0.5, -0.5}}), 2u);
  EXPECT_EQ(b.orthant({{0.5, 0.5, -0.5}}), 3u);
  EXPECT_EQ(b.orthant({{-0.5, -0.5, 0.5}}), 4u);
  EXPECT_EQ(b.orthant({{0.5, 0.5, 0.5}}), 7u);
}

TEST(Aabb, OrthantIndexing2d) {
  const aabb2d b{{{0, 0}}, {{2, 2}}};
  EXPECT_EQ(b.orthant({{0.5, 0.5}}), 0u);
  EXPECT_EQ(b.orthant({{1.5, 0.5}}), 1u);
  EXPECT_EQ(b.orthant({{0.5, 1.5}}), 2u);
  EXPECT_EQ(b.orthant({{1.5, 1.5}}), 3u);
}

TEST(Aabb, ChildBoxesTileParent) {
  const aabb3d b{{{-1, -2, -3}}, {{5, 6, 7}}};
  // Every child box is inside the parent and centered points round-trip:
  for (unsigned q = 0; q < 8; ++q) {
    const aabb3d c = b.child_box(q);
    EXPECT_TRUE(b.contains(c)) << q;
    EXPECT_EQ(b.orthant(c.center()), q) << q;
  }
}

TEST(Aabb, ChildBoxOrthantRoundTripRandomPoints) {
  const aabb3d b{{{-4, -4, -4}}, {{4, 4, 4}}};
  // A point lands in the child box of its orthant.
  for (double xx = -3.5; xx < 4; xx += 1.7) {
    for (double y = -3.5; y < 4; y += 1.7) {
      for (double z = -3.5; z < 4; z += 1.7) {
        const vec3d p{{xx, y, z}};
        EXPECT_TRUE(b.child_box(b.orthant(p)).contains(p));
      }
    }
  }
}

TEST(Aabb, InflatedCubeCoversBoxAndIsCubic) {
  const aabb3d b{{{0, 0, 0}}, {{1, 2, 4}}};
  const aabb3d c = b.inflated_cube();
  EXPECT_TRUE(c.contains(b));
  const vec3d e = c.extent();
  EXPECT_DOUBLE_EQ(e[0], e[1]);
  EXPECT_DOUBLE_EQ(e[1], e[2]);
  EXPECT_GT(e[0], 4.0);  // strictly inflated
}

TEST(Aabb, InflatedCubeOfPointIsNonDegenerate) {
  const aabb3d p = aabb3d::of_point({{3, 3, 3}});
  const aabb3d c = p.inflated_cube();
  EXPECT_FALSE(c.empty());
  EXPECT_GT(c.longest_side(), 0.0);
  EXPECT_TRUE(c.contains(vec3d{{3, 3, 3}}));
}

TEST(Aabb, InflatedCubeOfEmptyIsNonDegenerate) {
  const aabb3d c = aabb3d{}.inflated_cube();
  EXPECT_FALSE(c.empty());
  EXPECT_GT(c.longest_side(), 0.0);
}

// ---------------------------------------------------------------- gravity

TEST(Gravity, PointsTowardAttractor) {
  const vec3d xi{{0, 0, 0}};
  const vec3d xj{{2, 0, 0}};
  const vec3d a = nbody::math::gravity_accel(xi, xj, 3.0, 1.0, 0.0);
  EXPECT_GT(a[0], 0.0);
  EXPECT_DOUBLE_EQ(a[1], 0.0);
  EXPECT_DOUBLE_EQ(a[2], 0.0);
  // |a| = G m / r^2 = 3/4.
  EXPECT_NEAR(norm(a), 0.75, 1e-12);
}

TEST(Gravity, InverseSquareScaling) {
  const vec3d xi{{0, 0, 0}};
  const double a1 = norm(nbody::math::gravity_accel(xi, vec3d{{1, 0, 0}}, 1.0, 1.0, 0.0));
  const double a2 = norm(nbody::math::gravity_accel(xi, vec3d{{2, 0, 0}}, 1.0, 1.0, 0.0));
  EXPECT_NEAR(a1 / a2, 4.0, 1e-12);
}

TEST(Gravity, SofteningBoundsCloseEncounters) {
  const vec3d xi{{0, 0, 0}};
  const vec3d xj{{1e-9, 0, 0}};
  const double eps2 = 1e-4;
  const vec3d a = nbody::math::gravity_accel(xi, xj, 1.0, 1.0, eps2);
  // Softened kernel stays finite: |a| <= m r/(eps^2)^{3/2} -> ~r/eps^3.
  EXPECT_TRUE(std::isfinite(norm(a)));
  EXPECT_LT(norm(a), 1.0);
}

TEST(Gravity, CoincidentUnsoftenedIsZero) {
  const vec3d p{{1, 1, 1}};
  const vec3d a = nbody::math::gravity_accel(p, p, 5.0, 1.0, 0.0);
  EXPECT_EQ(a, vec3d::zero());
}

TEST(Gravity, PotentialIsNegativeAndScales) {
  const vec3d xi{{0, 0, 0}};
  const vec3d xj{{2, 0, 0}};
  const double u = nbody::math::gravity_potential(xi, xj, 2.0, 3.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(u, -3.0);  // -G m1 m2 / r = -6/2
}

TEST(Gravity, TwoDKernel) {
  const vec2d xi{{0, 0}};
  const vec2d xj{{0, 3}};
  const auto a = nbody::math::gravity_accel(xi, xj, 9.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(a[0], 0.0);
  EXPECT_NEAR(a[1], 1.0, 1e-12);  // G m / r^2 = 9/9 (3-D kernel applied in 2-D)
}

}  // namespace
