// Tests for the Hilbert-sorted BVH (paper Sec. IV-B): the Hilbert sort,
// balanced implicit-tree structure, bottom-up bbox/multipole reduction, the
// skip-list stackless traversal (checked against an explicit-stack oracle),
// and force accuracy against the exact sum.
#include <gtest/gtest.h>

#include <algorithm>
#include <stack>
#include <vector>

#include "bvh/hilbert_bvh.hpp"
#include "bvh/strategy.hpp"
#include "core/bbox.hpp"
#include "core/diagnostics.hpp"
#include "core/reference.hpp"
#include "core/system.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using nbody::exec::par;
using nbody::exec::par_unseq;
using nbody::exec::seq;
using BVH3 = nbody::bvh::HilbertBVH<double, 3>;
using vec3 = nbody::math::vec3d;

nbody::core::System<double, 3> random_system(std::size_t n, std::uint64_t seed = 1) {
  nbody::support::Xoshiro256ss rng(seed);
  nbody::core::System<double, 3> sys;
  for (std::size_t i = 0; i < n; ++i)
    sys.add(rng.uniform(0.5, 1.5),
            {{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)}},
            {{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)}});
  return sys;
}

// ---------------------------------------------------------------- hilbert sort

TEST(BvhSort, KeysAreNonDecreasingAfterSort) {
  auto sys = random_system(5000, 2);
  const auto box = nbody::core::compute_bounding_box(par_unseq, sys.x);
  BVH3 bvh;
  bvh.sort_bodies(par_unseq, sys, box);
  // Recompute keys on the sorted positions: must be sorted.
  const nbody::sfc::GridMapper<double, 3> grid(box);
  for (std::size_t i = 1; i < sys.size(); ++i)
    EXPECT_LE(grid.hilbert_key(sys.x[i - 1]), grid.hilbert_key(sys.x[i])) << i;
}

TEST(BvhSort, PermutesAllAttributesTogether) {
  auto sys = random_system(300, 3);
  // Tag: v = x so the pairing is detectable after the permutation.
  for (std::size_t i = 0; i < sys.size(); ++i) sys.v[i] = sys.x[i];
  const auto box = nbody::core::compute_bounding_box(par_unseq, sys.x);
  BVH3 bvh;
  bvh.sort_bodies(par_unseq, sys, box);
  for (std::size_t i = 0; i < sys.size(); ++i) EXPECT_EQ(sys.v[i], sys.x[i]) << i;
}

TEST(BvhSort, IdsTrackBodies) {
  auto sys = random_system(500, 4);
  const auto original = sys;
  const auto box = nbody::core::compute_bounding_box(par_unseq, sys.x);
  BVH3 bvh;
  bvh.sort_bodies(par_unseq, sys, box);
  // Each body, found by id, still has its original position.
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const std::uint32_t who = sys.id[i];
    EXPECT_EQ(sys.x[i], original.x[who]);
    EXPECT_EQ(sys.m[i], original.m[who]);
  }
}

TEST(BvhSort, IsPermutation) {
  auto sys = random_system(2000, 5);
  auto masses = sys.m;
  const auto box = nbody::core::compute_bounding_box(par_unseq, sys.x);
  BVH3 bvh;
  bvh.sort_bodies(par_unseq, sys, box);
  auto sorted_orig = masses;
  std::sort(sorted_orig.begin(), sorted_orig.end());
  auto sorted_new = sys.m;
  std::sort(sorted_new.begin(), sorted_new.end());
  EXPECT_EQ(sorted_orig, sorted_new);
}

TEST(BvhSort, EmptySystemIsFine) {
  nbody::core::System<double, 3> sys;
  BVH3 bvh;
  bvh.sort_bodies(par_unseq, sys, nbody::math::aabb3d::cube(vec3::zero(), 1.0));
  SUCCEED();
}

// ---------------------------------------------------------------- structure

class BvhShape : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BvhShape, PowerOfTwoLeavesAndPredeterminedLevels) {
  const std::size_t n = GetParam();
  auto sys = random_system(n, n);
  BVH3 bvh;
  bvh.build(par_unseq, sys.m, sys.x);
  EXPECT_GE(bvh.leaf_count(), std::max<std::size_t>(n, 1));
  EXPECT_EQ(bvh.leaf_count() & (bvh.leaf_count() - 1), 0u);  // power of two
  EXPECT_LT(bvh.leaf_count(), 2 * std::max<std::size_t>(n, 1) + 2);
  EXPECT_EQ(bvh.node_total(), 2 * bvh.leaf_count());
  EXPECT_EQ(std::size_t{1} << (bvh.levels() - 1), bvh.leaf_count());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BvhShape, ::testing::Values(1, 2, 3, 4, 5, 63, 64, 65, 1000));

TEST(BvhStructure, ParentBoxContainsChildren) {
  auto sys = random_system(3000, 7);
  const auto box = nbody::core::compute_bounding_box(par_unseq, sys.x);
  BVH3 bvh;
  bvh.sort_bodies(par_unseq, sys, box);
  bvh.build(par_unseq, sys.m, sys.x);
  for (std::size_t k = 1; k < bvh.leaf_count(); ++k) {
    EXPECT_TRUE(bvh.node_box(k).contains(bvh.node_box(2 * k))) << k;
    EXPECT_TRUE(bvh.node_box(k).contains(bvh.node_box(2 * k + 1))) << k;
    EXPECT_NEAR(bvh.node_mass(k), bvh.node_mass(2 * k) + bvh.node_mass(2 * k + 1), 1e-12)
        << k;
  }
}

TEST(BvhStructure, RootAggregatesEverything) {
  auto sys = random_system(1234, 8);
  BVH3 bvh;
  bvh.build(par_unseq, sys.m, sys.x);
  double mass = 0;
  vec3 weighted = vec3::zero();
  nbody::math::aabb3d box;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    mass += sys.m[i];
    weighted += sys.x[i] * sys.m[i];
    box = box.merged(sys.x[i]);
  }
  EXPECT_NEAR(bvh.node_mass(1), mass, 1e-9);
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(bvh.node_com(1)[d], weighted[d] / mass, 1e-9);
  EXPECT_EQ(bvh.node_box(1).lo, box.lo);
  EXPECT_EQ(bvh.node_box(1).hi, box.hi);
}

TEST(BvhStructure, PaddingLeavesAreEmpty) {
  auto sys = random_system(5, 9);  // leaves = 8, three padding
  BVH3 bvh;
  bvh.build(par_unseq, sys.m, sys.x);
  for (std::size_t j = 5; j < 8; ++j) {
    EXPECT_DOUBLE_EQ(bvh.node_mass(bvh.leaf_count() + j), 0.0);
    EXPECT_TRUE(bvh.node_box(bvh.leaf_count() + j).empty());
  }
}

TEST(BvhStructure, SingleBody) {
  nbody::core::System<double, 3> sys;
  sys.add(2.5, {{1, 2, 3}}, vec3::zero());
  BVH3 bvh;
  bvh.build(par_unseq, sys.m, sys.x);
  EXPECT_EQ(bvh.leaf_count(), 1u);
  EXPECT_DOUBLE_EQ(bvh.node_mass(1), 2.5);
}

TEST(BvhStructure, HilbertSortedBoxesAreTighterThanUnsorted) {
  // The reason to sort: adjacent leaves land close in space, so internal
  // boxes are compact. Compare total box surface between sorted & unsorted.
  auto sorted_sys = random_system(4096, 10);
  auto unsorted_sys = sorted_sys;
  const auto box = nbody::core::compute_bounding_box(par_unseq, sorted_sys.x);
  BVH3 a, b;
  a.sort_bodies(par_unseq, sorted_sys, box);
  a.build(par_unseq, sorted_sys.m, sorted_sys.x);
  b.build(par_unseq, unsorted_sys.m, unsorted_sys.x);
  auto total_extent = [](const BVH3& t) {
    double sum = 0;
    for (std::size_t k = 1; k < t.leaf_count(); ++k)
      if (!t.node_box(k).empty()) sum += norm(t.node_box(k).extent());
    return sum;
  };
  EXPECT_LT(total_extent(a), 0.8 * total_extent(b));
}

// ---------------------------------------------------------------- traversal

// Explicit-stack oracle for the same MAC — validates the skip-list DFS.
vec3 stack_traversal(const BVH3& bvh, const vec3& xi, std::size_t self,
                     const std::vector<double>& m, const std::vector<vec3>& x, double theta2,
                     double G, double eps2) {
  vec3 acc = vec3::zero();
  std::stack<std::size_t> todo;
  todo.push(1);
  while (!todo.empty()) {
    const std::size_t k = todo.top();
    todo.pop();
    if (k >= bvh.leaf_count()) {
      const std::size_t j = k - bvh.leaf_count();
      if (j < m.size() && j != self)
        acc += nbody::math::gravity_accel(xi, x[j], m[j], G, eps2);
      continue;
    }
    if (bvh.node_mass(k) <= 0.0) continue;
    const vec3 d = bvh.node_com(k) - xi;
    const double s = bvh.node_box(k).longest_side();
    if (s * s < theta2 * norm2(d)) {
      acc += nbody::math::gravity_accel(xi, bvh.node_com(k), bvh.node_mass(k), G, eps2);
    } else {
      // Push right then left so the left child pops first (DFS order).
      todo.push(2 * k + 1);
      todo.push(2 * k);
    }
  }
  return acc;
}

TEST(BvhTraversal, StacklessMatchesStackOracleExactly) {
  auto sys = random_system(2000, 11);
  const auto box = nbody::core::compute_bounding_box(par_unseq, sys.x);
  BVH3 bvh;
  bvh.sort_bodies(par_unseq, sys, box);
  bvh.build(par_unseq, sys.m, sys.x);
  for (std::size_t i = 0; i < sys.size(); i += 97) {
    const vec3 got = bvh.acceleration_on(sys.x[i], i, sys.m, sys.x, 0.25, 1.0, 1e-4);
    const vec3 want = stack_traversal(bvh, sys.x[i], i, sys.m, sys.x, 0.25, 1.0, 1e-4);
    // Identical traversal order -> bitwise identical sums.
    EXPECT_EQ(got, want) << i;
  }
}

TEST(BvhTraversal, ThetaZeroIsExact) {
  auto sys = random_system(300, 12);
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.0;
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  nbody::bvh::BVHStrategy<double, 3> strat;
  nbody::core::accelerate(strat, par_unseq, sys, cfg);
  // Bodies were reordered: compare by id.
  const auto got = nbody::core::positions_by_id(sys);  // sanity for indexing
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const std::uint32_t who = sys.id[i];
    for (int d = 0; d < 3; ++d) EXPECT_NEAR(sys.a[i][d], ref.a[who][d], 1e-9);
  }
  (void)got;
}

TEST(BvhForce, ModerateThetaWithinBarnesHutError) {
  auto sys = nbody::workloads::plummer_sphere(1500, 13);
  nbody::core::SimConfig<double> cfg;  // theta 0.5
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  nbody::bvh::BVHStrategy<double, 3> strat;
  nbody::core::accelerate(strat, par_unseq, sys, cfg);
  // Map accelerations back to original order via ids.
  std::vector<vec3> got(sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) got[sys.id[i]] = sys.a[i];
  EXPECT_LT(nbody::core::rms_relative_error(got, ref.a), 3e-2);
}

TEST(BvhForce, TwoBodyForceIsNewtonian) {
  nbody::core::System<double, 3> sys;
  sys.add(2.0, {{0, 0, 0}}, vec3::zero());
  sys.add(3.0, {{1, 0, 0}}, vec3::zero());
  nbody::core::SimConfig<double> cfg;
  cfg.softening = 0.0;
  nbody::bvh::BVHStrategy<double, 3> strat;
  nbody::core::accelerate(strat, par_unseq, sys, cfg);
  // Order may have changed; check by id.
  for (std::size_t i = 0; i < 2; ++i) {
    if (sys.id[i] == 0) {
      EXPECT_NEAR(sys.a[i][0], 3.0, 1e-12);
    } else {
      EXPECT_NEAR(sys.a[i][0], -2.0, 1e-12);
    }
  }
}

TEST(BvhForce, SeqDeterministic) {
  auto sys1 = nbody::workloads::plummer_sphere(500, 14);
  auto sys2 = sys1;
  nbody::core::SimConfig<double> cfg;
  nbody::bvh::BVHStrategy<double, 3> s1, s2;
  nbody::core::accelerate(s1, seq, sys1, cfg);
  nbody::core::accelerate(s2, seq, sys2, cfg);
  for (std::size_t i = 0; i < sys1.size(); ++i) EXPECT_EQ(sys1.a[i], sys2.a[i]);
}

TEST(BvhForce, TwoDimensionalQuadPath) {
  nbody::support::Xoshiro256ss rng(15);
  nbody::core::System<double, 2> sys;
  for (int i = 0; i < 500; ++i)
    sys.add(1.0, {{rng.uniform(-1, 1), rng.uniform(-1, 1)}}, nbody::math::vec2d::zero());
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.3;
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  nbody::bvh::BVHStrategy<double, 2> strat;
  nbody::core::accelerate(strat, par_unseq, sys, cfg);
  std::vector<nbody::math::vec2d> got(sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) got[sys.id[i]] = sys.a[i];
  // BVH boxes are elongated and overlap, so a given theta admits more error
  // than the octree's cubic cells (paper, end of Sec. IV-B).
  EXPECT_LT(nbody::core::rms_relative_error(got, ref.a), 5e-2);
}

TEST(BvhForce, IsolatedLastBodyHasNoGhostSelfForce) {
  // Regression: with N one past a power of two, the last body's ancestor
  // chain contains only that body plus empty padding. Those nodes have
  // point-sized boxes (s = 0); if their center of mass drifts from the
  // body's position by even one ulp, the MAC accepts them and the body is
  // attracted to its own ghost with ~1/ulp^2 force. Masses and coordinates
  // here are chosen so (x*m)/m does NOT round-trip.
  nbody::core::System<double, 3> sys;
  for (int i = 0; i < 8; ++i)
    sys.add(1e-12, {{0.1 * i, 0.2, 0.3}}, vec3::zero());
  sys.add(1e-12, {{21.770551018878116, -29.353662474107743, -6.516697895987388}},
          vec3::zero());
  nbody::core::SimConfig<double> cfg;
  cfg.softening = 0.0;
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  nbody::bvh::BVHStrategy<double, 3> strat;
  nbody::core::accelerate(strat, par_unseq, sys, cfg);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const auto want = ref.a[sys.id[i]];
    for (int d = 0; d < 3; ++d)
      EXPECT_NEAR(sys.a[i][d], want[d], 1e-6 * std::max(1.0, std::abs(want[d]))) << i;
  }
}

class BvhLeafSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BvhLeafSize, ThetaZeroExactForEveryBucketSize) {
  const std::size_t leaf = GetParam();
  auto sys = random_system(777, 40 + leaf);
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.0;
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  typename BVH3::Options opts;
  opts.leaf_size = leaf;
  nbody::bvh::BVHStrategy<double, 3> strat(opts);
  nbody::core::accelerate(strat, par_unseq, sys, cfg);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const auto want = ref.a[sys.id[i]];
    for (int d = 0; d < 3; ++d) EXPECT_NEAR(sys.a[i][d], want[d], 1e-9) << i;
  }
}

TEST_P(BvhLeafSize, MassConservedAndTreeShallower) {
  const std::size_t leaf = GetParam();
  auto sys = random_system(3000, 41);
  typename BVH3::Options opts;
  opts.leaf_size = leaf;
  BVH3 bvh(opts);
  bvh.build(par_unseq, sys.m, sys.x);
  double mass = 0;
  for (double m : sys.m) mass += m;
  EXPECT_NEAR(bvh.node_mass(1), mass, 1e-9);
  EXPECT_LE(bvh.leaf_count() * leaf, 2 * 4096u);  // shallower with bigger buckets
}

INSTANTIATE_TEST_SUITE_P(Buckets, BvhLeafSize, ::testing::Values(1, 2, 4, 8, 16));

TEST(BvhLeafSizeApi, RejectsNonPowerOfTwo) {
  typename BVH3::Options opts;
  opts.leaf_size = 3;
  EXPECT_THROW(BVH3 tree(opts), std::invalid_argument);
}

TEST(BvhCurve, MortonOrderAlsoSortsAndComputesCorrectForces) {
  auto sys = random_system(1000, 42);
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.3;
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  typename BVH3::Options opts;
  opts.curve = nbody::bvh::CurveKind::morton;
  nbody::bvh::BVHStrategy<double, 3> strat(opts);
  nbody::core::accelerate(strat, par_unseq, sys, cfg);
  std::vector<vec3> got(sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) got[sys.id[i]] = sys.a[i];
  EXPECT_LT(nbody::core::rms_relative_error(got, ref.a), 3e-2);
}

TEST(BvhCurve, HilbertBoxesNoLooserThanMorton) {
  // The reason the paper sorts by Hilbert rather than Morton: no large
  // jumps along the curve, so aggregated boxes stay tight. Compare total
  // internal-node extent for identical bodies.
  auto sys_h = random_system(8192, 43);
  auto sys_m = sys_h;
  const auto box = nbody::core::compute_bounding_box(par_unseq, sys_h.x);
  BVH3 hil;
  typename BVH3::Options mopts;
  mopts.curve = nbody::bvh::CurveKind::morton;
  BVH3 mor(mopts);
  hil.sort_bodies(par_unseq, sys_h, box);
  hil.build(par_unseq, sys_h.m, sys_h.x);
  mor.sort_bodies(par_unseq, sys_m, box);
  mor.build(par_unseq, sys_m.m, sys_m.x);
  auto total_extent = [](const BVH3& t) {
    double sum = 0;
    for (std::size_t k = 1; k < t.leaf_count(); ++k)
      if (!t.node_box(k).empty()) sum += norm(t.node_box(k).extent());
    return sum;
  };
  EXPECT_LE(total_extent(hil), 1.05 * total_extent(mor));
}

TEST(BvhTraversal, CountedMatchesPlain) {
  auto sys = random_system(1500, 44);
  const auto box = nbody::core::compute_bounding_box(par_unseq, sys.x);
  BVH3 bvh;
  bvh.sort_bodies(par_unseq, sys, box);
  bvh.build(par_unseq, sys.m, sys.x);
  for (std::size_t i = 0; i < sys.size(); i += 67) {
    BVH3::TraversalStats st;
    const auto counted =
        bvh.acceleration_on_counted(sys.x[i], i, sys.m, sys.x, 0.25, 1.0, 1e-4, st);
    const auto plain = bvh.acceleration_on(sys.x[i], i, sys.m, sys.x, 0.25, 1.0, 1e-4);
    EXPECT_EQ(counted, plain) << i;
    EXPECT_GT(st.nodes_visited, 0u);
  }
}

TEST(BvhMac, BmaxAcceptsMoreAndStaysBounded) {
  // b_max ~ 0.87*side for a centered com in a cubic box, so at equal theta
  // the bmax criterion accepts more nodes (fewer opens, faster) with a
  // different error calibration — the two theta scales are not one-to-one
  // comparable, the same effect the paper notes between the octree and BVH
  // thresholds (Sec. IV-B end). Assert exactly that, plus bounded error.
  auto sys = nbody::workloads::plummer_sphere(1500, 45);
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.7;
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  struct Run {
    double err;
    std::uint64_t opens;
  };
  auto run_with = [&](nbody::bvh::MacKind mac) {
    typename BVH3::Options opts;
    opts.mac = mac;
    BVH3 tree(opts);
    auto s = sys;
    tree.sort_bodies(par_unseq, s, nbody::core::compute_bounding_box(par_unseq, s.x));
    tree.build(par_unseq, s.m, s.x);
    typename BVH3::TraversalStats st;
    std::vector<vec3> got(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      got[s.id[i]] = tree.acceleration_on_counted(s.x[i], i, s.m, s.x, cfg.theta2(), cfg.G,
                                                  cfg.eps2(), st);
    }
    return Run{nbody::core::rms_relative_error(got, ref.a), st.opens};
  };
  const Run side = run_with(nbody::bvh::MacKind::side);
  const Run bmax = run_with(nbody::bvh::MacKind::bmax);
  EXPECT_LT(bmax.opens, side.opens);          // accepts more aggressively
  EXPECT_GT(bmax.err, 0.0);
  EXPECT_LT(bmax.err, 10.0 * side.err);       // but remains a sane MAC
}

TEST(BvhMac, BmaxThetaZeroStillExact) {
  auto sys = random_system(300, 46);
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.0;
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  typename BVH3::Options opts;
  opts.mac = nbody::bvh::MacKind::bmax;
  nbody::bvh::BVHStrategy<double, 3> strat(opts);
  nbody::core::accelerate(strat, par_unseq, sys, cfg);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const auto want = ref.a[sys.id[i]];
    for (int d = 0; d < 3; ++d) EXPECT_NEAR(sys.a[i][d], want[d], 1e-9);
  }
}

TEST(BvhPolicy, EntirePipelineAcceptsParUnseq) {
  // The whole point of the BVH strategy: it runs under weakly parallel
  // forward progress — no locks, no synchronizing atomics.
  nbody::exec::reset_vectorization_unsafe_violations();
  auto sys = random_system(2000, 16);
  nbody::core::SimConfig<double> cfg;
  nbody::bvh::BVHStrategy<double, 3> strat;
  nbody::core::accelerate(strat, par_unseq, sys, cfg);
  EXPECT_EQ(nbody::exec::vectorization_unsafe_violations(), 0u);
}

}  // namespace
