// TreeMaintenance lifecycle API (CTest label: chaos): policy parsing and
// validation (constructor and setter now fail identically), the decide()
// state machine, the octree's incremental move-only update (plan/apply,
// structural validity, spatial queries see relocated bodies), the quality
// monitors forcing a mid-run rebuild on degradation (octree cell-crossing
// flood, BVH order inversions), and run_guarded's checkpoint restore
// invalidating the incremental bookkeeping end to end.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "bvh/strategy.hpp"
#include "core/bbox.hpp"
#include "core/diagnostics.hpp"
#include "core/guard.hpp"
#include "core/simulation.hpp"
#include "core/step_context.hpp"
#include "core/tree_maintenance.hpp"
#include "octree/strategy.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace nbody;
using core::TreeAction;
using core::TreeMaintenance;
using core::TreeUpdateMode;
using core::TreeUpdatePolicy;
using exec::par;
using exec::par_unseq;
using exec::seq;
using System3 = core::System<double, 3>;

const bool g_thread_env = [] {
  setenv("NBODY_THREADS", "4", /*overwrite=*/0);
  return true;
}();

// ------------------------------------------------------------ policy parsing

TEST(TreeUpdatePolicyParse, RoundTripsEveryMode) {
  EXPECT_EQ(TreeUpdatePolicy::parse("rebuild", "t").to_string(), "rebuild");
  EXPECT_EQ(TreeUpdatePolicy::parse("refit", "t").to_string(), "refit:4");
  EXPECT_EQ(TreeUpdatePolicy::parse("refit:7", "t").to_string(), "refit:7");
  EXPECT_EQ(TreeUpdatePolicy::parse("incremental", "t").to_string(), "incremental");
  EXPECT_EQ(TreeUpdatePolicy::parse("incremental:16", "t").to_string(), "incremental:16");

  const auto inc = TreeUpdatePolicy::parse("incremental", "t");
  EXPECT_EQ(inc.mode, TreeUpdateMode::incremental);
  EXPECT_EQ(inc.interval, 0u);  // quality-triggered only
}

TEST(TreeUpdatePolicyParse, RejectsMalformedSpecs) {
  for (const char* bad : {"", "turbo", "refit:", "refit:abc", "refit:0",
                          "rebuild:3", "incremental:-1", "refit:4x"}) {
    SCOPED_TRACE(bad);
    EXPECT_THROW((void)TreeUpdatePolicy::parse(bad, "t"), std::invalid_argument);
  }
}

TEST(TreeUpdatePolicyParse, LegacyReuseIntervalMapsOntoPolicy) {
  const auto k1 = TreeUpdatePolicy::from_reuse_interval(1, "t");
  EXPECT_EQ(k1.mode, TreeUpdateMode::rebuild);
  EXPECT_EQ(k1.interval, 1u);
  const auto k5 = TreeUpdatePolicy::from_reuse_interval(5, "t");
  EXPECT_EQ(k5.mode, TreeUpdateMode::refit);
  EXPECT_EQ(k5.interval, 5u);
  EXPECT_THROW((void)TreeUpdatePolicy::from_reuse_interval(0, "t"), std::invalid_argument);
}

// The old API split: constructors threw on k < 1 while set_reuse_interval
// silently clamped. Both now funnel through TreeUpdatePolicy and fail the
// same way.
TEST(TreeUpdatePolicyParse, ConstructorAndSetterValidateIdentically) {
  octree::OctreeStrategy<double, 3>::Options bad;
  bad.update.mode = TreeUpdateMode::rebuild;
  bad.update.interval = 0;
  EXPECT_THROW((octree::OctreeStrategy<double, 3>{bad}), std::invalid_argument);

  octree::OctreeStrategy<double, 3> oct;
  EXPECT_THROW(oct.set_reuse_interval(0), std::invalid_argument);
  bvh::BVHStrategy<double, 3> bvh;
  EXPECT_THROW(bvh.set_reuse_interval(0), std::invalid_argument);
  // Valid updates go through and are visible via the policy surface.
  oct.set_reuse_interval(6);
  EXPECT_EQ(oct.update_policy().mode, TreeUpdateMode::refit);
  EXPECT_EQ(oct.reuse_interval(), 6u);
}

// --------------------------------------------------------- decide() machine

TEST(TreeMaintenanceDecide, RefitCadenceMatchesLegacyModulo) {
  TreeMaintenance m(TreeUpdatePolicy::parse("refit:3", "t"), "t");
  EXPECT_EQ(m.decide(), TreeAction::Built);
  EXPECT_EQ(m.decide(), TreeAction::Refitted);
  EXPECT_EQ(m.decide(), TreeAction::Refitted);
  EXPECT_EQ(m.decide(), TreeAction::Rebuilt);  // every 3rd step, like k=3 reuse
  EXPECT_EQ(m.decide(), TreeAction::Refitted);

  TreeMaintenance every(TreeUpdatePolicy::parse("rebuild", "t"), "t");
  EXPECT_EQ(every.decide(), TreeAction::Built);
  EXPECT_EQ(every.decide(), TreeAction::Rebuilt);
  EXPECT_EQ(every.decide(), TreeAction::Rebuilt);
}

TEST(TreeMaintenanceDecide, IncrementalRunsUntilDegradedOrInvalidated) {
  TreeMaintenance m(TreeUpdatePolicy::parse("incremental", "t"), "t");
  EXPECT_FALSE(m.would_keep());  // nothing built yet
  EXPECT_EQ(m.decide(), TreeAction::Built);
  EXPECT_TRUE(m.would_keep());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(m.decide(), TreeAction::Updated);
  EXPECT_EQ(m.decide(/*degraded=*/true), TreeAction::Rebuilt);
  EXPECT_EQ(m.decide(), TreeAction::Updated);
  m.invalidate();
  EXPECT_FALSE(m.would_keep());
  EXPECT_EQ(m.decide(), TreeAction::Rebuilt);
}

TEST(TreeMaintenanceDecide, IncrementalSafetyCadenceStillRebuilds) {
  TreeMaintenance m(TreeUpdatePolicy::parse("incremental:4", "t"), "t");
  EXPECT_EQ(m.decide(), TreeAction::Built);
  EXPECT_EQ(m.decide(), TreeAction::Updated);
  EXPECT_EQ(m.decide(), TreeAction::Updated);
  EXPECT_EQ(m.decide(), TreeAction::Updated);
  EXPECT_EQ(m.decide(), TreeAction::Rebuilt);
}

// ---------------------------------------------- octree incremental update

// Move-only surgery on a live tree: plan flags exactly the teleported body,
// apply relocates it, and the result is structurally valid with spatial
// queries (and the multipole refit) seeing the new position.
TEST(OctreeIncremental, PlanAndApplyRelocateAcrossTheDomain) {
  System3 sys = workloads::plummer_sphere(400, 17);
  octree::ConcurrentOctree<double, 3> tree;
  tree.set_track_geometry(true);
  const auto box = core::compute_root_cube(seq, sys.x);
  tree.build(par, sys.x, box);

  // Teleport body 0 to a far corner, well inside the root cube.
  const auto old_pos = sys.x[0];
  const auto c = box.center();
  const auto ext = box.extent();
  for (std::size_t d = 0; d < 3; ++d) sys.x[0][d] = c[d] + 0.45 * ext[d];

  const auto plan = tree.plan_update(par, sys.x);
  EXPECT_GE(plan.moved, 1u);
  EXPECT_EQ(plan.escaped, 0u);
  ASSERT_TRUE(tree.apply_update(par, sys.x));
  tree.compute_multipoles(par, sys.m, sys.x);

  const auto report = core::validate_octree(tree, sys.size());
  EXPECT_TRUE(report.ok) << report.detail;
  // The relocated body is findable at its new position and its recorded
  // leaf cell actually contains it.
  EXPECT_GE(tree.count_in_radius(sys.x[0], 1e-9, sys.x), 1u);
  EXPECT_TRUE(tree.node_box(tree.leaf_of(0)).contains(sys.x[0]));
  // And no stale copy remains at the old position (unless a neighbor
  // genuinely sits there).
  std::size_t at_old = 0;
  for (std::size_t i = 1; i < sys.size(); ++i)
    if (math::norm2(sys.x[i] - old_pos) < 1e-18) ++at_old;
  EXPECT_EQ(tree.count_in_radius(old_pos, 1e-9, sys.x), at_old);
}

// The incremental trajectory must track a rebuild-every-step trajectory on
// the coherent-drift workload the mode is designed for.
TEST(OctreeIncremental, TrajectoryTracksRebuildOnDriftingCluster) {
  const System3 initial = workloads::drifting_cluster(500, 9);
  core::SimConfig<double> cfg;
  cfg.dt = 5e-4;

  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> rebuild(initial, cfg);
  rebuild.run(par, 16);

  octree::OctreeStrategy<double, 3>::Options o;
  o.update = TreeUpdatePolicy::parse("incremental", "test");
  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> incr(
      initial, cfg, octree::OctreeStrategy<double, 3>(o));
  incr.run(par, 16);

  EXPECT_LT(core::l2_position_error(incr.system(), rebuild.system()), 1e-2);
}

// ------------------------------------------------------- quality monitors

TEST(QualityMonitor, OctreeCellCrossingFloodForcesRebuild) {
  System3 sys = workloads::plummer_sphere(300, 23);
  core::SimConfig<double> cfg;
  octree::OctreeStrategy<double, 3>::Options o;
  o.update = TreeUpdatePolicy::parse("incremental", "test");
  octree::OctreeStrategy<double, 3> strat(o);

  core::accelerate(strat, par, sys, cfg);
  EXPECT_EQ(strat.last_action(), TreeAction::Built);

  // Gentle motion: a tiny coherent nudge keeps (nearly) everyone in their
  // cell — the lifecycle keeps the tree.
  for (auto& x : sys.x) x[0] += 1e-9;
  core::accelerate(strat, par, sys, cfg);
  EXPECT_EQ(strat.last_action(), TreeAction::Updated);

  // Scramble every position: far more than max_moved_fraction of the bodies
  // cross cells (many escape the inflated root cube too) — the quality
  // monitor must force a full rebuild.
  support::Xoshiro256ss rng(77);
  for (auto& x : sys.x)
    for (std::size_t d = 0; d < 3; ++d) x[d] = rng.uniform(-50.0, 50.0);
  core::accelerate(strat, par, sys, cfg);
  EXPECT_EQ(strat.last_action(), TreeAction::Rebuilt);
}

TEST(QualityMonitor, BvhOrderInversionFloodForcesResort) {
  System3 sys = workloads::plummer_sphere(600, 29);
  core::SimConfig<double> cfg;
  bvh::BVHStrategy<double, 3>::Options o;
  o.update = TreeUpdatePolicy::parse("incremental", "test");
  bvh::BVHStrategy<double, 3> strat(o);

  core::accelerate(strat, par_unseq, sys, cfg);
  EXPECT_EQ(strat.last_action(), TreeAction::Built);

  for (auto& x : sys.x) x[0] += 1e-9;
  core::accelerate(strat, par_unseq, sys, cfg);
  EXPECT_EQ(strat.last_action(), TreeAction::Updated);

  // Point-reflect the cluster: the bounding box barely changes but the
  // Hilbert order of the (still sorted-by-old-keys) array is shredded —
  // the inversion monitor must trigger a re-sort.
  for (auto& x : sys.x) x = -x;
  core::accelerate(strat, par_unseq, sys, cfg);
  EXPECT_EQ(strat.last_action(), TreeAction::Rebuilt);
}

// ------------------------------------------- run_guarded restore semantics

// A checkpoint restore must invalidate the incremental bookkeeping: the
// restored positions no longer match the tracked geometry, so the next step
// is a forced full rebuild and the guarded trajectory lands on the unfaulted
// one at amortization level (cf. test_group's group-partition twin).
TEST(RunGuarded, RestoreInvalidatesIncrementalState) {
  struct FaultScope {
    FaultScope() { support::disarm_all_faults(); }
    ~FaultScope() { support::disarm_all_faults(); }
  } scope;
  const auto sys = workloads::drifting_cluster(300, 31);
  core::SimConfig<double> cfg;
  cfg.dt = 1e-3;
  octree::OctreeStrategy<double, 3>::Options o;
  o.update = TreeUpdatePolicy::parse("incremental", "test");

  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> ref(
      sys, cfg, octree::OctreeStrategy<double, 3>(o));
  ref.run(par, 12);
  ref.synchronize_velocities(par);

  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> guarded(
      sys, cfg, octree::OctreeStrategy<double, 3>(o));
  core::GuardedOptions<double> gopts;
  gopts.checkpoint_every = 3;
  gopts.max_retries = 8;
  support::arm_fault(support::FaultSite::octree_node_alloc, {1.0, 0, 3});
  const auto rep = guarded.run_guarded(par, 12, gopts);
  support::disarm_all_faults();
  guarded.synchronize_velocities(par);

  EXPECT_EQ(rep.steps_completed, 12u);
  EXPECT_GE(rep.restores, 1u);
  EXPECT_LT(core::l2_position_error(guarded.system(), ref.system()), 2e-3);
  // After the restore-forced rebuild the strategy went back to incremental
  // stepping (the mode survives recovery, only the bookkeeping resets).
  EXPECT_EQ(guarded.strategy().update_policy().mode, TreeUpdateMode::incremental);
}

// invalidate() alone (no fault machinery) forces the next step to rebuild.
TEST(RunGuarded, ExplicitInvalidateForcesRebuildNextStep) {
  System3 sys = workloads::plummer_sphere(200, 37);
  core::SimConfig<double> cfg;
  octree::OctreeStrategy<double, 3>::Options o;
  o.update = TreeUpdatePolicy::parse("incremental", "test");
  octree::OctreeStrategy<double, 3> strat(o);
  core::accelerate(strat, par, sys, cfg);
  core::accelerate(strat, par, sys, cfg);
  EXPECT_EQ(strat.last_action(), TreeAction::Updated);
  strat.invalidate();
  core::accelerate(strat, par, sys, cfg);
  EXPECT_EQ(strat.last_action(), TreeAction::Rebuilt);
}

}  // namespace
