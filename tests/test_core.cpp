// Tests for the core module: system state, bounding-box reduction
// (Algorithm 3), the Störmer-Verlet integrators, diagnostics, and the serial
// reference Barnes-Hut.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "allpairs/allpairs.hpp"
#include "core/bbox.hpp"
#include "core/diagnostics.hpp"
#include "core/integrator.hpp"
#include "core/reference.hpp"
#include "core/simulation.hpp"
#include "core/system.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using nbody::exec::par;
using nbody::exec::par_unseq;
using nbody::exec::seq;
using vec3 = nbody::math::vec3d;

// ---------------------------------------------------------------- system

TEST(System, ResizeAssignsSequentialIds) {
  nbody::core::System<double, 3> sys(5);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(sys.id[i], i);
  sys.resize(8);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(sys.id[i], i);
}

TEST(System, AddAppends) {
  nbody::core::System<double, 3> sys;
  const auto idx = sys.add(2.0, {{1, 2, 3}}, {{4, 5, 6}});
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(sys.size(), 1u);
  EXPECT_DOUBLE_EQ(sys.m[0], 2.0);
  EXPECT_EQ(sys.x[0], (vec3{{1, 2, 3}}));
  EXPECT_EQ(sys.v[0], (vec3{{4, 5, 6}}));
  EXPECT_EQ(sys.a[0], vec3::zero());
}

TEST(System, AppendRebasesIds) {
  nbody::core::System<double, 3> a(3), b(2);
  a.append(b);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a.id[3], 3u);
  EXPECT_EQ(a.id[4], 4u);
}

TEST(System, IndexOfId) {
  nbody::core::System<double, 3> sys(4);
  std::swap(sys.id[0], sys.id[3]);
  EXPECT_EQ(sys.index_of_id(3), 0u);
  EXPECT_EQ(sys.index_of_id(0), 3u);
  EXPECT_EQ(sys.index_of_id(99), sys.size());
}

TEST(SimConfig, DerivedQuantities) {
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.5;
  cfg.softening = 0.1;
  EXPECT_DOUBLE_EQ(cfg.theta2(), 0.25);
  EXPECT_DOUBLE_EQ(cfg.eps2(), 0.01);
}

// ---------------------------------------------------------------- bbox

TEST(BBox, ReductionFindsExtremes) {
  std::vector<vec3> x = {{{1, 5, -2}}, {{-3, 2, 7}}, {{0, 0, 0}}};
  const auto box = nbody::core::compute_bounding_box(par_unseq, x);
  EXPECT_EQ(box.lo, (vec3{{-3, 0, -2}}));
  EXPECT_EQ(box.hi, (vec3{{1, 5, 7}}));
}

TEST(BBox, EmptyInput) {
  std::vector<vec3> x;
  EXPECT_TRUE(nbody::core::compute_bounding_box(par_unseq, x).empty());
  EXPECT_FALSE(nbody::core::compute_root_cube(par_unseq, x).empty());
}

TEST(BBox, PoliciesAgree) {
  const auto sys = nbody::workloads::plummer_sphere(5000, 1);
  const auto a = nbody::core::compute_bounding_box(seq, sys.x);
  const auto b = nbody::core::compute_bounding_box(par, sys.x);
  const auto c = nbody::core::compute_bounding_box(par_unseq, sys.x);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(BBox, RootCubeContainsAllBodies) {
  const auto sys = nbody::workloads::galaxy_collision(1000);
  const auto cube = nbody::core::compute_root_cube(par, sys.x);
  for (const auto& p : sys.x) EXPECT_TRUE(cube.contains(p));
  const auto e = cube.extent();
  EXPECT_DOUBLE_EQ(e[0], e[1]);
  EXPECT_DOUBLE_EQ(e[1], e[2]);
}

// ---------------------------------------------------------------- integrators

// Two-body circular orbit: the crispest conservation test there is.
nbody::core::System<double, 3> circular_binary() {
  nbody::core::System<double, 3> sys;
  // Equal masses M=1 at +/-1 on x, circular velocity v = sqrt(G M_tot / 4r) ...
  // For two bodies of mass m separated by d=2: each orbits the COM at r=1
  // with v^2 = G m / (2 d) * 2 = G m / 4 * 2 ... derive directly:
  // centripetal: v^2/r = G m / d^2 => v = sqrt(G m r / d^2) = sqrt(1/4) = 0.5.
  sys.add(1.0, {{-1, 0, 0}}, {{0, -0.5, 0}});
  sys.add(1.0, {{1, 0, 0}}, {{0, 0.5, 0}});
  return sys;
}

TEST(Integrator, LeapfrogConservesEnergyOverManyOrbits) {
  auto sys = circular_binary();
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 1e-2;
  cfg.softening = 0.0;
  const double e0 =
      nbody::core::total_energy(seq, sys, cfg.G, 0.0).total();
  nbody::allpairs::AllPairs<double, 3> force;
  // Orbit period: T = 2 pi r / v = 2 pi / 0.5 * 1 ~ 12.57; run ~8 orbits.
  nbody::core::accelerate(force, seq, sys, cfg);
  nbody::core::leapfrog_prime(seq, sys, cfg.dt);
  const int steps = 10'000;
  for (int s = 0; s < steps; ++s) {
    nbody::core::accelerate(force, seq, sys, cfg);
    nbody::core::leapfrog_step(seq, sys, cfg.dt);
  }
  // Re-synchronize velocities for the energy measurement.
  nbody::core::accelerate(force, seq, sys, cfg);
  nbody::core::leapfrog_synchronize(seq, sys, cfg.dt);
  const double e1 = nbody::core::total_energy(seq, sys, cfg.G, 0.0).total();
  EXPECT_NEAR(e1, e0, std::abs(e0) * 1e-3);  // symplectic: bounded drift
}

TEST(Integrator, LeapfrogPreservesCircularRadius) {
  auto sys = circular_binary();
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 1e-3;
  cfg.softening = 0.0;
  nbody::allpairs::AllPairs<double, 3> force;
  nbody::core::accelerate(force, seq, sys, cfg);
  nbody::core::leapfrog_prime(seq, sys, cfg.dt);
  for (int s = 0; s < 5000; ++s) {
    nbody::core::accelerate(force, seq, sys, cfg);
    nbody::core::leapfrog_step(seq, sys, cfg.dt);
  }
  EXPECT_NEAR(norm(sys.x[0]), 1.0, 1e-3);
  EXPECT_NEAR(norm(sys.x[1]), 1.0, 1e-3);
}

TEST(Integrator, VelocityVerletMatchesLeapfrogPositions) {
  auto lf = circular_binary();
  auto vv = circular_binary();
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 1e-3;
  cfg.softening = 0.0;
  nbody::allpairs::AllPairs<double, 3> force;

  nbody::core::accelerate(force, seq, lf, cfg);
  nbody::core::leapfrog_prime(seq, lf, cfg.dt);
  for (int s = 0; s < 1000; ++s) {
    nbody::core::accelerate(force, seq, lf, cfg);
    nbody::core::leapfrog_step(seq, lf, cfg.dt);
  }

  nbody::core::accelerate(force, seq, vv, cfg);
  for (int s = 0; s < 1000; ++s) {
    nbody::core::velocity_verlet_step(
        seq, vv, cfg.dt, [&](nbody::core::System<double, 3>& s2) {
          nbody::core::accelerate(force, seq, s2, cfg);
        });
  }
  for (int i = 0; i < 2; ++i)
    for (int d = 0; d < 3; ++d) EXPECT_NEAR(lf.x[i][d], vv.x[i][d], 1e-9) << i << d;
}

TEST(Integrator, MomentumExactlyConservedByPairSymmetricForces) {
  auto sys = nbody::workloads::plummer_sphere(200, 2);
  nbody::core::SimConfig<double> cfg;
  nbody::allpairs::AllPairsCol<double, 3> force;  // exact pairwise +/- adds
  const vec3 p0 = nbody::core::total_momentum(seq, sys);
  nbody::core::accelerate(force, par, sys, cfg);
  nbody::core::leapfrog_prime(seq, sys, cfg.dt);
  for (int s = 0; s < 50; ++s) {
    nbody::core::accelerate(force, par, sys, cfg);
    nbody::core::leapfrog_step(seq, sys, cfg.dt);
  }
  const vec3 p1 = nbody::core::total_momentum(seq, sys);
  EXPECT_LT(norm(p1 - p0), 1e-9);
}

TEST(AdaptiveStep, SuggestionScalesWithAcceleration) {
  nbody::core::System<double, 3> weak, strong;
  weak.add(1.0, {{0, 0, 0}}, vec3::zero());
  weak.a[0] = {{0.01, 0, 0}};
  strong.add(1.0, {{0, 0, 0}}, vec3::zero());
  strong.a[0] = {{100.0, 0, 0}};
  const double dt_weak = nbody::core::suggest_timestep(seq, weak, 0.1, 0.05, 1e-9, 1e9);
  const double dt_strong = nbody::core::suggest_timestep(seq, strong, 0.1, 0.05, 1e-9, 1e9);
  EXPECT_GT(dt_weak, dt_strong);
  // dt ~ a^-1/2: ratio should be sqrt(100/0.01) = 100.
  EXPECT_NEAR(dt_weak / dt_strong, 100.0, 1e-9);
}

TEST(AdaptiveStep, ClampedToBounds) {
  nbody::core::System<double, 3> sys;
  sys.add(1.0, {{0, 0, 0}}, vec3::zero());
  sys.a[0] = {{1e30, 0, 0}};
  EXPECT_DOUBLE_EQ(nbody::core::suggest_timestep(seq, sys, 0.1, 0.05, 1e-4, 1.0), 1e-4);
  sys.a[0] = {{1e-30, 0, 0}};
  EXPECT_DOUBLE_EQ(nbody::core::suggest_timestep(seq, sys, 0.1, 0.05, 1e-4, 1.0), 1.0);
  sys.a[0] = vec3::zero();  // force-free: take the largest allowed step
  EXPECT_DOUBLE_EQ(nbody::core::suggest_timestep(seq, sys, 0.1, 0.05, 1e-4, 1.0), 1.0);
}

TEST(AdaptiveStep, RejectsBadParameters) {
  nbody::core::System<double, 3> sys(1);
  EXPECT_THROW(nbody::core::suggest_timestep(seq, sys, 0.0, 0.05, 1e-4, 1.0),
               std::invalid_argument);
  EXPECT_THROW(nbody::core::suggest_timestep(seq, sys, 0.1, 0.05, 1.0, 0.5),
               std::invalid_argument);
}

TEST(AdaptiveStep, RunAdaptiveReachesRequestedTime) {
  auto sys = nbody::workloads::plummer_sphere(200, 9);
  nbody::core::SimConfig<double> cfg;
  cfg.softening = 0.05;
  nbody::core::Simulation<double, 3, nbody::allpairs::AllPairs<double, 3>> sim(
      std::move(sys), cfg);
  const auto steps = sim.run_adaptive(par_unseq, 0.05, 0.2, 1e-5, 1e-2);
  EXPECT_GT(steps, 0u);
  EXPECT_NEAR(sim.simulated_time(), 0.05, 1e-12);
  EXPECT_EQ(sim.steps_done(), steps);
}

TEST(AdaptiveStep, BeatsFixedStepOnEccentricBinaryAtEqualCost) {
  // Eccentric binary: e ~ 0.9, perihelion passage needs tiny steps, the
  // rest of the orbit doesn't. Adaptive stepping spends its budget at
  // perihelion and conserves energy better than a fixed step with the SAME
  // number of force evaluations.
  auto make_binary = [] {
    nbody::core::System<double, 3> sys;
    // Apoapsis start: r = 2, vis-viva with a = 1.0526 (e=0.9): mu = 2m = 2? 
    // Use m1 = m2 = 1, mu = G(m1+m2) = 2; r_apo = 2; a = r_apo/(1+e) ...
    // a(1+e) = 2 with e = 0.9 -> a = 1.0526; v_apo = sqrt(mu(2/r - 1/a)).
    const double e = 0.9;
    const double r_apo = 2.0;
    const double a = r_apo / (1 + e);
    const double mu = 2.0;
    const double v_apo = std::sqrt(mu * (2.0 / r_apo - 1.0 / a));
    sys.add(1.0, {{-1, 0, 0}}, {{0, -v_apo / 2, 0}});
    sys.add(1.0, {{1, 0, 0}}, {{0, v_apo / 2, 0}});
    return sys;
  };
  nbody::core::SimConfig<double> cfg;
  cfg.softening = 0.02;
  const double t_end = 1.0;
  const double e0 =
      nbody::core::total_energy(seq, make_binary(), cfg.G, cfg.eps2()).total();

  nbody::core::Simulation<double, 3, nbody::allpairs::AllPairs<double, 3>> adaptive(
      make_binary(), cfg);
  const auto adaptive_steps = adaptive.run_adaptive(seq, t_end, 0.05, 1e-6, 5e-2);
  const double e_adaptive =
      nbody::core::total_energy(seq, adaptive.system(), cfg.G, cfg.eps2()).total();

  auto fixed_cfg = cfg;
  fixed_cfg.dt = t_end / static_cast<double>(adaptive_steps);  // same step count
  nbody::core::Simulation<double, 3, nbody::allpairs::AllPairs<double, 3>> fixed(
      make_binary(), fixed_cfg);
  fixed.run(seq, adaptive_steps);
  fixed.synchronize_velocities(seq);
  const double e_fixed =
      nbody::core::total_energy(seq, fixed.system(), cfg.G, cfg.eps2()).total();

  EXPECT_LT(std::abs(e_adaptive - e0), std::abs(e_fixed - e0));
}

// ---------------------------------------------------------------- diagnostics

TEST(Diagnostics, KineticEnergy) {
  nbody::core::System<double, 3> sys;
  sys.add(2.0, vec3::zero(), {{3, 0, 0}});  // 0.5*2*9 = 9
  sys.add(1.0, vec3::zero(), {{0, 4, 0}});  // 0.5*1*16 = 8
  EXPECT_NEAR(nbody::core::kinetic_energy(seq, sys), 17.0, 1e-12);
}

TEST(Diagnostics, PotentialEnergyPairSum) {
  nbody::core::System<double, 3> sys;
  sys.add(2.0, {{0, 0, 0}}, vec3::zero());
  sys.add(3.0, {{2, 0, 0}}, vec3::zero());
  EXPECT_NEAR(nbody::core::potential_energy(seq, sys, 1.0, 0.0), -3.0, 1e-12);
}

TEST(Diagnostics, PotentialPoliciesAgree) {
  const auto sys = nbody::workloads::plummer_sphere(400, 3);
  const double a = nbody::core::potential_energy(seq, sys, 1.0, 1e-4);
  const double b = nbody::core::potential_energy(par, sys, 1.0, 1e-4);
  EXPECT_NEAR(a, b, std::abs(a) * 1e-12);
}

TEST(Diagnostics, TotalMassAndCom) {
  nbody::core::System<double, 3> sys;
  sys.add(1.0, {{0, 0, 0}}, vec3::zero());
  sys.add(3.0, {{4, 0, 0}}, vec3::zero());
  EXPECT_DOUBLE_EQ(nbody::core::total_mass(par, sys), 4.0);
  EXPECT_EQ(nbody::core::center_of_mass(par, sys), (vec3{{3, 0, 0}}));
}

TEST(Diagnostics, L2ErrorMatchesById) {
  nbody::core::System<double, 3> a(3), b(3);
  a.x = {{{1, 0, 0}}, {{0, 1, 0}}, {{0, 0, 1}}};
  b.x = a.x;
  EXPECT_DOUBLE_EQ(nbody::core::l2_position_error(a, b), 0.0);
  // Permute b's storage (ids follow): error must stay zero.
  std::swap(b.x[0], b.x[2]);
  std::swap(b.id[0], b.id[2]);
  EXPECT_DOUBLE_EQ(nbody::core::l2_position_error(a, b), 0.0);
  // A real difference registers.
  b.x[0][0] += 0.5;
  EXPECT_NEAR(nbody::core::l2_position_error(a, b), 0.5, 1e-12);
}

TEST(Diagnostics, RmsRelativeError) {
  std::vector<vec3> ref = {{{1, 0, 0}}, {{0, 2, 0}}};
  std::vector<vec3> test = ref;
  EXPECT_DOUBLE_EQ(nbody::core::rms_relative_error(test, ref), 0.0);
  test[0][0] = 1.1;
  EXPECT_NEAR(nbody::core::rms_relative_error(test, ref), 0.1 / std::sqrt(2.0), 1e-12);
}

// ---------------------------------------------------------------- reference BH

TEST(ReferenceBH, MatchesDirectSumAtSmallTheta) {
  auto sys = nbody::workloads::plummer_sphere(400, 4);
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.1;
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  nbody::core::ReferenceBarnesHut<double, 3> bh;
  nbody::core::accelerate(bh, seq, sys, cfg);
  EXPECT_LT(nbody::core::rms_relative_error(sys.a, ref.a), 5e-3);
}

TEST(ReferenceBH, HandlesCoincidentBodies) {
  nbody::core::System<double, 3> sys;
  for (int i = 0; i < 5; ++i) sys.add(1.0, {{0.5, 0.5, 0.5}}, vec3::zero());
  nbody::core::SimConfig<double> cfg;
  nbody::core::ReferenceBarnesHut<double, 3> bh;
  nbody::core::accelerate(bh, seq, sys, cfg);  // must terminate (max depth)
  for (const auto& a : sys.a) EXPECT_EQ(a, vec3::zero());
}

// ---------------------------------------------------------------- simulation

TEST(Simulation, RunsAndCountsSteps) {
  auto sys = nbody::workloads::plummer_sphere(200, 5);
  nbody::core::Simulation<double, 3, nbody::allpairs::AllPairs<double, 3>> sim(
      std::move(sys), {});
  sim.run(par_unseq, 3);
  EXPECT_EQ(sim.steps_done(), 3u);
  EXPECT_GT(sim.phases().seconds("force"), 0.0);
  EXPECT_GT(sim.phases().seconds("update"), 0.0);
}

TEST(Simulation, EnergyStableOnPlummer) {
  auto sys = nbody::workloads::plummer_sphere(300, 6);
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 1e-3;
  cfg.softening = 0.05;
  const double e0 = nbody::core::total_energy(seq, sys, cfg.G, cfg.eps2()).total();
  nbody::core::Simulation<double, 3, nbody::allpairs::AllPairs<double, 3>> sim(
      std::move(sys), cfg);
  sim.run(par_unseq, 200);
  sim.synchronize_velocities(par_unseq);
  const double e1 =
      nbody::core::total_energy(seq, sim.system(), cfg.G, cfg.eps2()).total();
  EXPECT_NEAR(e1, e0, std::abs(e0) * 0.02);
}

}  // namespace
