// Tests for the CLI option parser (support/cli.hpp) and snapshot I/O
// (core/snapshot.hpp) that back the nbody_cli example.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/diagnostics.hpp"
#include "core/snapshot.hpp"
#include "support/cli.hpp"
#include "workloads/workloads.hpp"

namespace {

using nbody::support::CliParser;

CliParser make_parser() {
  CliParser cli;
  cli.add_option("n", "body count", "100");
  cli.add_option("dt", "time step", "0.5");
  cli.add_option("name", "a string", "default");
  cli.add_flag("verbose", "more output");
  return cli;
}

int parse(CliParser& cli, const std::vector<const char*>& args) {
  std::vector<const char*> argv;
  argv.reserve(args.size() + 1);
  argv.push_back("prog");
  for (const char* a : args) argv.push_back(a);
  cli.parse(static_cast<int>(argv.size()), argv.data());
  return 0;
}

// ---------------------------------------------------------------- parser

TEST(Cli, DefaultsApplyWhenUnset) {
  auto cli = make_parser();
  parse(cli, {});
  EXPECT_EQ(cli.get_size("n"), 100u);
  EXPECT_DOUBLE_EQ(cli.get_double("dt"), 0.5);
  EXPECT_EQ(cli.get("name"), "default");
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, SpaceSeparatedValues) {
  auto cli = make_parser();
  parse(cli, {"--n", "42", "--name", "abc"});
  EXPECT_EQ(cli.get_size("n"), 42u);
  EXPECT_EQ(cli.get("name"), "abc");
  EXPECT_TRUE(cli.was_set("n"));
  EXPECT_FALSE(cli.was_set("dt"));
}

TEST(Cli, EqualsSeparatedValues) {
  auto cli = make_parser();
  parse(cli, {"--n=7", "--dt=0.25"});
  EXPECT_EQ(cli.get_size("n"), 7u);
  EXPECT_DOUBLE_EQ(cli.get_double("dt"), 0.25);
}

TEST(Cli, FlagsAreBoolean) {
  auto cli = make_parser();
  parse(cli, {"--verbose"});
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, FlagRejectsValue) {
  auto cli = make_parser();
  EXPECT_THROW(parse(cli, {"--verbose=yes"}), std::invalid_argument);
}

TEST(Cli, UnknownOptionRejected) {
  auto cli = make_parser();
  EXPECT_THROW(parse(cli, {"--bogus", "1"}), std::invalid_argument);
}

TEST(Cli, MissingValueRejected) {
  auto cli = make_parser();
  EXPECT_THROW(parse(cli, {"--n"}), std::invalid_argument);
}

TEST(Cli, MalformedNumbersRejected) {
  auto cli = make_parser();
  parse(cli, {"--n", "12x", "--dt", "abc"});
  EXPECT_THROW((void)cli.get_size("n"), std::invalid_argument);
  EXPECT_THROW((void)cli.get_double("dt"), std::invalid_argument);
}

TEST(Cli, PositionalsCollected) {
  auto cli = make_parser();
  parse(cli, {"file1", "--n", "5", "file2"});
  EXPECT_EQ(cli.positionals(), (std::vector<std::string>{"file1", "file2"}));
}

TEST(Cli, UndeclaredGetRejected) {
  auto cli = make_parser();
  parse(cli, {});
  EXPECT_THROW(cli.get("nope"), std::invalid_argument);
}

TEST(Cli, UsageListsOptions) {
  auto cli = make_parser();
  const auto u = cli.usage();
  EXPECT_NE(u.find("--n"), std::string::npos);
  EXPECT_NE(u.find("--verbose"), std::string::npos);
}

// ---------------------------------------------------------------- snapshots

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() / "nbody_snapshot_test";
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string file(const char* name) const { return (path / name).string(); }
};

TEST(Snapshot, BinaryRoundTripIsExact) {
  TempDir tmp;
  const auto sys = nbody::workloads::galaxy_collision(500, 42);
  nbody::core::save_snapshot_binary(sys, tmp.file("s.bin"));
  const auto back = nbody::core::load_snapshot_binary<double, 3>(tmp.file("s.bin"));
  ASSERT_EQ(back.size(), sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) {
    EXPECT_EQ(back.m[i], sys.m[i]);
    EXPECT_EQ(back.x[i], sys.x[i]);
    EXPECT_EQ(back.v[i], sys.v[i]);
    EXPECT_EQ(back.id[i], sys.id[i]);
  }
}

TEST(Snapshot, CsvRoundTripIsExact) {
  TempDir tmp;
  const auto sys = nbody::workloads::plummer_sphere(100, 7);
  nbody::core::save_snapshot_csv(sys, tmp.file("s.csv"));
  const auto back = nbody::core::load_snapshot_csv<double, 3>(tmp.file("s.csv"));
  ASSERT_EQ(back.size(), sys.size());
  // 17 significant digits: exact double round trip through decimal.
  for (std::size_t i = 0; i < sys.size(); ++i) {
    EXPECT_EQ(back.m[i], sys.m[i]) << i;
    EXPECT_EQ(back.x[i], sys.x[i]) << i;
    EXPECT_EQ(back.v[i], sys.v[i]) << i;
    EXPECT_EQ(back.id[i], sys.id[i]) << i;
  }
}

TEST(Snapshot, TwoDimensionalBinaryRoundTrip) {
  TempDir tmp;
  const auto sys = nbody::workloads::galaxy_collision_2d(200, 3);
  nbody::core::save_snapshot_binary(sys, tmp.file("s2.bin"));
  const auto back = nbody::core::load_snapshot_binary<double, 2>(tmp.file("s2.bin"));
  ASSERT_EQ(back.size(), sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) EXPECT_EQ(back.x[i], sys.x[i]);
}

TEST(Snapshot, DimensionMismatchRejected) {
  TempDir tmp;
  const auto sys = nbody::workloads::galaxy_collision(64, 1);
  nbody::core::save_snapshot_binary(sys, tmp.file("s3.bin"));
  EXPECT_THROW((nbody::core::load_snapshot_binary<double, 2>(tmp.file("s3.bin"))),
               std::runtime_error);
  EXPECT_THROW((nbody::core::load_snapshot_binary<float, 3>(tmp.file("s3.bin"))),
               std::runtime_error);
}

TEST(Snapshot, GarbageFileRejected) {
  TempDir tmp;
  {
    std::FILE* f = std::fopen(tmp.file("junk.bin").c_str(), "wb");
    std::fputs("this is not a snapshot", f);
    std::fclose(f);
  }
  EXPECT_THROW((nbody::core::load_snapshot_binary<double, 3>(tmp.file("junk.bin"))),
               std::runtime_error);
}

TEST(Snapshot, MissingFileRejected) {
  EXPECT_THROW((nbody::core::load_snapshot_binary<double, 3>("/nonexistent/nope.bin")),
               std::runtime_error);
}

TEST(Snapshot, EmptySystemRoundTrips) {
  TempDir tmp;
  nbody::core::System<double, 3> sys;
  nbody::core::save_snapshot_binary(sys, tmp.file("empty.bin"));
  const auto back = nbody::core::load_snapshot_binary<double, 3>(tmp.file("empty.bin"));
  EXPECT_EQ(back.size(), 0u);
}

TEST(Snapshot, PreservesPermutedIds) {
  TempDir tmp;
  auto sys = nbody::workloads::plummer_sphere(50, 9);
  std::swap(sys.id[0], sys.id[49]);
  nbody::core::save_snapshot_binary(sys, tmp.file("perm.bin"));
  const auto back = nbody::core::load_snapshot_binary<double, 3>(tmp.file("perm.bin"));
  EXPECT_EQ(back.id[0], sys.id[0]);
  EXPECT_EQ(back.id[49], sys.id[49]);
}

}  // namespace
