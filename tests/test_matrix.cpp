// Configuration-matrix tests: every force strategy (including option
// variants), every workload shape, and both execution policies, run through
// a short simulation and checked against the invariants that must hold for
// ANY correct configuration:
//   * body count and stable-id permutation preserved,
//   * total mass conserved bit-exactly,
//   * all positions/velocities finite,
//   * final state within a loose L2 ball of the exact all-pairs trajectory
//     (catches wildly wrong forces without being tolerance-brittle).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "allpairs/allpairs.hpp"
#include "bvh/strategy.hpp"
#include "core/diagnostics.hpp"
#include "core/reference.hpp"
#include "core/simulation.hpp"
#include "octree/strategy.hpp"
#include "workloads/workloads.hpp"

namespace {

using nbody::exec::par;
using nbody::exec::par_unseq;
using nbody::exec::seq;
using System3 = nbody::core::System<double, 3>;

using Runner = std::function<System3(const System3&, const nbody::core::SimConfig<double>&,
                                     std::size_t steps, bool parallel)>;

// Strategies are created per run through a factory so non-copyable
// strategies (the reference BH owns a unique_ptr tree) work too.
template <class StrategyFactory, class ParPolicy>
Runner make_runner(StrategyFactory make_strategy, ParPolicy par_policy) {
  return [make_strategy, par_policy](const System3& initial,
                                     const nbody::core::SimConfig<double>& cfg,
                                     std::size_t steps, bool parallel) {
    using Strategy = decltype(make_strategy());
    nbody::core::Simulation<double, 3, Strategy> sim(initial, cfg, make_strategy());
    if (parallel) {
      sim.run(par_policy, steps);
    } else {
      sim.run(seq, steps);
    }
    return sim.system();
  };
}

struct Config {
  std::string name;
  Runner run;
};

std::vector<Config> strategy_configs() {
  std::vector<Config> out;
  using Oct = nbody::octree::OctreeStrategy<double, 3>;
  using Bvh = nbody::bvh::BVHStrategy<double, 3>;
  out.push_back({"octree", make_runner([] { return Oct{}; }, par)});
  out.push_back({"octree-presort", make_runner([] {
                   typename Oct::Options o;
                   o.presort = true;
                   return Oct(o);
                 }, par)});
  out.push_back({"octree-refit3", make_runner([] {
                   typename Oct::Options o;
                   o.update = nbody::core::TreeUpdatePolicy::parse("refit:3", "matrix");
                   return Oct(o);
                 }, par)});
  out.push_back({"octree-incr", make_runner([] {
                   typename Oct::Options o;
                   o.update = nbody::core::TreeUpdatePolicy::parse("incremental", "matrix");
                   return Oct(o);
                 }, par)});
  out.push_back({"bvh", make_runner([] { return Bvh{}; }, par_unseq)});
  out.push_back({"bvh-leaf4", make_runner([] {
                   typename Bvh::Options o;
                   o.tree.leaf_size = 4;
                   return Bvh(o);
                 }, par_unseq)});
  out.push_back({"bvh-morton-radix", make_runner([] {
                   typename Bvh::Options o;
                   o.tree.curve = nbody::bvh::CurveKind::morton;
                   o.tree.sort = nbody::bvh::SortKind::radix;
                   return Bvh(o);
                 }, par_unseq)});
  out.push_back({"bvh-incr", make_runner([] {
                   typename Bvh::Options o;
                   o.update = nbody::core::TreeUpdatePolicy::parse("incremental", "matrix");
                   return Bvh(o);
                 }, par_unseq)});
  out.push_back({"bvh-bmax", make_runner([] {
                   typename Bvh::Options o;
                   o.tree.mac = nbody::bvh::MacKind::bmax;
                   return Bvh(o);
                 }, par_unseq)});
  out.push_back({"allpairs",
                 make_runner([] { return nbody::allpairs::AllPairs<double, 3>{}; }, par_unseq)});
  out.push_back({"allpairs-col",
                 make_runner([] { return nbody::allpairs::AllPairsCol<double, 3>{}; }, par)});
  out.push_back({"allpairs-tiled", make_runner([] {
                   return nbody::allpairs::AllPairsTiled<double, 3>(128);
                 }, par_unseq)});
  out.push_back({"reference-bh", make_runner([] {
                   return nbody::core::ReferenceBarnesHut<double, 3>{};
                 }, par)});
  return out;
}

struct Workload {
  std::string name;
  System3 sys;
};

std::vector<Workload> workload_configs() {
  return {
      {"galaxy", nbody::workloads::galaxy_collision(600, 42)},
      {"plummer", nbody::workloads::plummer_sphere(600, 5)},
      {"cube", nbody::workloads::uniform_cube(600, 3, 2.0)},
  };
}

struct Case {
  std::string strategy;
  std::string workload;
  bool parallel;
};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto& s : strategy_configs())
    for (const auto& w : workload_configs())
      for (bool parallel : {false, true})
        cases.push_back({s.name, w.name, parallel});
  return cases;
}

class StrategyMatrix : public ::testing::TestWithParam<Case> {};

TEST_P(StrategyMatrix, InvariantsHold) {
  const auto& c = GetParam();
  // Locate the named strategy/workload (configs are cheap to rebuild).
  Runner runner;
  for (auto& s : strategy_configs())
    if (s.name == c.strategy) runner = s.run;
  System3 initial;
  for (auto& w : workload_configs())
    if (w.name == c.workload) initial = w.sys;
  ASSERT_TRUE(runner != nullptr);
  ASSERT_GT(initial.size(), 0u);

  nbody::core::SimConfig<double> cfg;
  cfg.dt = 5e-4;
  cfg.softening = 0.05;
  const std::size_t steps = 5;
  const double m0 = nbody::core::total_mass(seq, initial);

  const System3 fin = runner(initial, cfg, steps, c.parallel);

  // Body count and id permutation.
  ASSERT_EQ(fin.size(), initial.size());
  std::vector<char> seen(fin.size(), 0);
  for (auto id : fin.id) {
    ASSERT_LT(id, seen.size());
    ASSERT_EQ(seen[id], 0);
    seen[id] = 1;
  }
  // Mass conserved bit-exactly (reordering never changes the multiset).
  EXPECT_DOUBLE_EQ(nbody::core::total_mass(seq, fin), m0);
  // Everything finite.
  for (std::size_t i = 0; i < fin.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_TRUE(std::isfinite(fin.x[i][d])) << i;
      EXPECT_TRUE(std::isfinite(fin.v[i][d])) << i;
    }
  }
  // Loose trajectory agreement with the exact sum: catches sign errors,
  // dropped bodies, ghost self-forces.
  const System3 exact = make_runner(
      [] { return nbody::allpairs::AllPairs<double, 3>{}; }, par_unseq)(initial, cfg, steps,
                                                                        true);
  EXPECT_LT(nbody::core::l2_position_error(fin, exact), 0.5);
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string n = info.param.strategy + "_" + info.param.workload +
                  (info.param.parallel ? "_par" : "_seq");
  for (auto& ch : n)
    if (ch == '-') ch = '_';
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, StrategyMatrix, ::testing::ValuesIn(all_cases()),
                         case_name);

}  // namespace
