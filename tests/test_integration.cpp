// Cross-module integration tests: full simulations through every strategy,
// the paper's validation methodology (Sec. V-A) at laptop scale —
// conservation of mass/energy on the galaxy collision, and the three-way L2
// agreement of final positions on the solar-system workload.
#include <gtest/gtest.h>

#include <cmath>

#include "allpairs/allpairs.hpp"
#include "bvh/strategy.hpp"
#include "core/diagnostics.hpp"
#include "core/simulation.hpp"
#include "octree/strategy.hpp"
#include "workloads/workloads.hpp"

namespace {

using nbody::exec::par;
using nbody::exec::par_unseq;
using nbody::exec::seq;

template <class Strategy, class Policy>
nbody::core::System<double, 3> run_sim(nbody::core::System<double, 3> sys,
                                       nbody::core::SimConfig<double> cfg, Policy policy,
                                       std::size_t steps) {
  nbody::core::Simulation<double, 3, Strategy> sim(std::move(sys), cfg);
  sim.run(policy, steps);
  return sim.system();
}

// ------------------------------------------------------ strategies agree

TEST(Validation, ThreeWayL2AgreementOnSolarSystem) {
  // The paper integrates ~1M JPL small bodies for one day at dt = 1h and
  // finds the L2 error norm of final positions among implementations below
  // 1e-6. Scaled substitute: synthetic Kepler population, 24 steps. With a
  // dominant central mass, the Barnes-Hut approximation error is tiny, so
  // the tree codes and the exact sum agree tightly.
  const std::size_t n_minor = 2000;
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 1e-4;       // ~1/60000 of the innermost orbital period
  cfg.theta = 0.5;
  cfg.softening = 0.0;
  const auto initial = nbody::workloads::solar_system(n_minor, 11);

  const auto exact =
      run_sim<nbody::allpairs::AllPairs<double, 3>>(initial, cfg, par_unseq, 24);
  const auto octree =
      run_sim<nbody::octree::OctreeStrategy<double, 3>>(initial, cfg, par, 24);
  const auto bvh = run_sim<nbody::bvh::BVHStrategy<double, 3>>(initial, cfg, par_unseq, 24);

  const double e_oct = nbody::core::l2_position_error(exact, octree);
  const double e_bvh = nbody::core::l2_position_error(exact, bvh);
  const double e_cross = nbody::core::l2_position_error(octree, bvh);
  EXPECT_LT(e_oct, 1e-6);
  EXPECT_LT(e_bvh, 1e-6);
  EXPECT_LT(e_cross, 1e-6);
}

TEST(Validation, GalaxyStrategiesAgreeOverShortHorizon) {
  const auto initial = nbody::workloads::galaxy_collision(1500, 42);
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 1e-4;
  cfg.softening = 0.05;
  const auto exact =
      run_sim<nbody::allpairs::AllPairs<double, 3>>(initial, cfg, par_unseq, 10);
  const auto octree =
      run_sim<nbody::octree::OctreeStrategy<double, 3>>(initial, cfg, par, 10);
  const auto bvh = run_sim<nbody::bvh::BVHStrategy<double, 3>>(initial, cfg, par_unseq, 10);
  // Tree codes vs exact: bounded by the theta=0.5 approximation, which over
  // 10 tiny steps stays small relative to system scale (~40 length units).
  EXPECT_LT(nbody::core::l2_position_error(exact, octree), 1e-3);
  EXPECT_LT(nbody::core::l2_position_error(exact, bvh), 1e-3);
}

TEST(Validation, AllPairsColMatchesAllPairsAfterSteps) {
  const auto initial = nbody::workloads::galaxy_collision(400, 7);
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 1e-3;
  const auto a = run_sim<nbody::allpairs::AllPairs<double, 3>>(initial, cfg, par_unseq, 20);
  const auto b = run_sim<nbody::allpairs::AllPairsCol<double, 3>>(initial, cfg, par, 20);
  EXPECT_LT(nbody::core::l2_position_error(a, b), 1e-8);
}

// ------------------------------------------------------ conservation laws

TEST(Conservation, MassIsConservedByAllStrategies) {
  const auto initial = nbody::workloads::galaxy_collision(1000, 42);
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 1e-3;
  const double m0 = nbody::core::total_mass(seq, initial);
  const auto oct = run_sim<nbody::octree::OctreeStrategy<double, 3>>(initial, cfg, par, 5);
  const auto bvh = run_sim<nbody::bvh::BVHStrategy<double, 3>>(initial, cfg, par_unseq, 5);
  EXPECT_DOUBLE_EQ(nbody::core::total_mass(seq, oct), m0);
  EXPECT_DOUBLE_EQ(nbody::core::total_mass(seq, bvh), m0);
  EXPECT_EQ(oct.size(), initial.size());
  EXPECT_EQ(bvh.size(), initial.size());
}

TEST(Conservation, EnergyStableUnderOctreeOnGalaxy) {
  // The paper: "The simulations produce consistent final results across all
  // systems, conserving mass and energy."
  auto sys = nbody::workloads::galaxy_collision(800, 42);
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 5e-4;
  cfg.softening = 0.1;
  const double e0 = nbody::core::total_energy(seq, sys, cfg.G, cfg.eps2()).total();
  nbody::core::Simulation<double, 3, nbody::octree::OctreeStrategy<double, 3>> sim(
      std::move(sys), cfg);
  sim.run(par, 100);
  sim.synchronize_velocities(par);
  const double e1 =
      nbody::core::total_energy(seq, sim.system(), cfg.G, cfg.eps2()).total();
  EXPECT_NEAR(e1, e0, std::abs(e0) * 0.03);
}

TEST(Conservation, EnergyStableUnderBvhOnGalaxy) {
  auto sys = nbody::workloads::galaxy_collision(800, 42);
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 5e-4;
  cfg.softening = 0.1;
  const double e0 = nbody::core::total_energy(seq, sys, cfg.G, cfg.eps2()).total();
  nbody::core::Simulation<double, 3, nbody::bvh::BVHStrategy<double, 3>> sim(std::move(sys),
                                                                             cfg);
  sim.run(par_unseq, 100);
  sim.synchronize_velocities(par_unseq);
  const double e1 =
      nbody::core::total_energy(seq, sim.system(), cfg.G, cfg.eps2()).total();
  EXPECT_NEAR(e1, e0, std::abs(e0) * 0.03);
}

TEST(Conservation, BvhReorderingLosesNoBody) {
  auto sys = nbody::workloads::galaxy_collision(500, 3);
  nbody::core::Simulation<double, 3, nbody::bvh::BVHStrategy<double, 3>> sim(std::move(sys),
                                                                             {});
  sim.run(par_unseq, 3);
  // ids are a permutation of 0..n-1 after repeated Hilbert reorderings.
  std::vector<char> seen(sim.system().size(), 0);
  for (auto id : sim.system().id) {
    ASSERT_LT(id, seen.size());
    ASSERT_EQ(seen[id], 0);
    seen[id] = 1;
  }
}

// ------------------------------------------------------ policy equivalence

TEST(PolicyEquivalence, SeqAndParTrajectoriesStayClose) {
  // Parallel execution reorders only the multipole accumulation (relaxed
  // FP adds), so trajectories agree to rounding-level over short horizons.
  const auto initial = nbody::workloads::galaxy_collision(600, 9);
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 1e-3;
  const auto s = run_sim<nbody::octree::OctreeStrategy<double, 3>>(initial, cfg, seq, 10);
  const auto p = run_sim<nbody::octree::OctreeStrategy<double, 3>>(initial, cfg, par, 10);
  EXPECT_LT(nbody::core::l2_position_error(s, p), 1e-8);
}

TEST(PolicyEquivalence, BvhParUnseqMatchesSeqExactly) {
  // The BVH pipeline has no atomics at all; per-element work is identical,
  // so seq and par_unseq produce bitwise-equal states.
  const auto initial = nbody::workloads::galaxy_collision(600, 10);
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 1e-3;
  const auto s = run_sim<nbody::bvh::BVHStrategy<double, 3>>(initial, cfg, seq, 5);
  const auto p = run_sim<nbody::bvh::BVHStrategy<double, 3>>(initial, cfg, par_unseq, 5);
  EXPECT_DOUBLE_EQ(nbody::core::l2_position_error(s, p), 0.0);
}

// ------------------------------------------------------ tree reuse

TEST(TreeReuse, OctreeReusedTopologyStaysCloseToRebuilt) {
  const auto initial = nbody::workloads::galaxy_collision(800, 12);
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 5e-4;
  typename nbody::octree::OctreeStrategy<double, 3>::Options reuse4;
  reuse4.update = nbody::core::TreeUpdatePolicy::parse("refit:4", "test");
  nbody::core::Simulation<double, 3, nbody::octree::OctreeStrategy<double, 3>> every(
      initial, cfg);
  nbody::core::Simulation<double, 3, nbody::octree::OctreeStrategy<double, 3>> reused(
      initial, cfg, nbody::octree::OctreeStrategy<double, 3>(reuse4));
  every.run(par, 20);
  reused.run(par, 20);
  const double drift = nbody::core::l2_position_error(every.system(), reused.system());
  EXPECT_GT(drift, 0.0);    // it IS an approximation...
  EXPECT_LT(drift, 1e-2);   // ...but a controlled one over 20 tiny steps
}

TEST(TreeReuse, BvhReuseLosesNoBodyAndStaysClose) {
  const auto initial = nbody::workloads::galaxy_collision(800, 13);
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 5e-4;
  typename nbody::bvh::BVHStrategy<double, 3>::Options reuse4;
  reuse4.update = nbody::core::TreeUpdatePolicy::parse("refit:4", "test");
  nbody::core::Simulation<double, 3, nbody::bvh::BVHStrategy<double, 3>> every(initial,
                                                                               cfg);
  nbody::core::Simulation<double, 3, nbody::bvh::BVHStrategy<double, 3>> reused(
      initial, cfg, nbody::bvh::BVHStrategy<double, 3>(reuse4));
  every.run(par_unseq, 20);
  reused.run(par_unseq, 20);
  EXPECT_DOUBLE_EQ(nbody::core::total_mass(seq, reused.system()),
                   nbody::core::total_mass(seq, every.system()));
  EXPECT_LT(nbody::core::l2_position_error(every.system(), reused.system()), 1e-2);
}

TEST(TreeReuse, IntervalOneIsExactlyTheDefault) {
  const auto initial = nbody::workloads::galaxy_collision(400, 14);
  nbody::core::SimConfig<double> cfg;
  typename nbody::octree::OctreeStrategy<double, 3>::Options one;
  one.update = nbody::core::TreeUpdatePolicy::parse("rebuild", "test");
  nbody::core::Simulation<double, 3, nbody::octree::OctreeStrategy<double, 3>> a(initial,
                                                                                 cfg);
  nbody::core::Simulation<double, 3, nbody::octree::OctreeStrategy<double, 3>> b(
      initial, cfg, nbody::octree::OctreeStrategy<double, 3>(one));
  a.run(seq, 5);
  b.run(seq, 5);
  EXPECT_DOUBLE_EQ(nbody::core::l2_position_error(a.system(), b.system()), 0.0);
}

// ------------------------------------------------------ long-horizon sanity

TEST(LongRun, GalaxyCollisionActuallyCollides) {
  // Integrate until the nuclei pass each other: a smoke test that the full
  // pipeline simulates believable dynamics, not just short kernels.
  nbody::workloads::GalaxyParams gp;
  auto sys = nbody::workloads::galaxy_collision(400, 42, gp);
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 2e-3;
  cfg.softening = 0.2;
  std::vector<std::size_t> nuclei;
  for (std::size_t i = 0; i < sys.size(); ++i)
    if (sys.m[i] == gp.central_mass) nuclei.push_back(i);
  const double initial_gap = norm(sys.x[nuclei[0]] - sys.x[nuclei[1]]);
  nbody::core::Simulation<double, 3, nbody::octree::OctreeStrategy<double, 3>> sim(
      std::move(sys), cfg);
  double min_gap = initial_gap;
  for (int chunk = 0; chunk < 40; ++chunk) {
    sim.run(par, 200);
    // Track the nuclei by id (octree does not reorder, but be principled).
    const auto& s = sim.system();
    const auto i0 = s.index_of_id(static_cast<std::uint32_t>(nuclei[0]));
    const auto i1 = s.index_of_id(static_cast<std::uint32_t>(nuclei[1]));
    min_gap = std::min(min_gap, norm(s.x[i0] - s.x[i1]));
  }
  EXPECT_LT(min_gap, initial_gap * 0.35);
}

}  // namespace
