// Steal-path concurrency suite: the topology-aware work-stealing backend's
// three new pieces — the steal-half deque (exec/steal_deque.hpp), the CPU
// topology model (exec/topology.hpp), and the per-worker node arena
// (exec/arena.hpp) — plus their integration into the scheduler and the
// octree. Covers the ISSUE-8 lockdown list: deque edges (empty / one
// element / ring wraparound), push/pop/steal-half linearizability under
// chaos schedules, a planted unsynchronized-steal race the lockset detector
// must catch next to a clean negative control, victim-order determinism
// under a pinned fake topology, the bounded-backoff polls regression on a
// skewed workload, and the arena's merge/conservation + allocator-
// equivalence guarantees.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "core/bbox.hpp"
#include "core/simulation.hpp"
#include "exec/algorithms.hpp"
#include "exec/arena.hpp"
#include "exec/chaos/chaos.hpp"
#include "exec/steal_deque.hpp"
#include "exec/thread_pool.hpp"
#include "exec/topology.hpp"
#include "obs/metrics.hpp"
#include "octree/strategy.hpp"
#include "support/fault.hpp"
#include "support/function_ref.hpp"
#include "workloads/workloads.hpp"

#if defined(NBODY_CHAOS)
#include "exec/chaos/race_detector.hpp"
#endif

namespace {

using nbody::exec::backend;
using nbody::exec::IndexChunk;
using nbody::exec::par;
using nbody::exec::par_unseq;
using nbody::exec::seq;
using nbody::exec::StealDeque;
using nbody::exec::thread_pool;
using nbody::exec::Topology;

// Real worker threads even on single-core hosts (see test_chaos.cpp).
const bool g_thread_env = [] {
  setenv("NBODY_THREADS", "4", /*overwrite=*/0);
  return true;
}();

class BackendScope {
 public:
  explicit BackendScope(backend b) : saved_(nbody::exec::default_backend()) {
    nbody::exec::set_default_backend(b);
  }
  ~BackendScope() { nbody::exec::set_default_backend(saved_); }

 private:
  backend saved_;
};

// ---------------------------------------------------------------------------
// StealDeque edges
// ---------------------------------------------------------------------------

TEST(StealDeque, EmptyDequePopsAndStealsFail) {
  StealDeque d;
  d.reset(4);
  IndexChunk c;
  IndexChunk loot[4];
  EXPECT_FALSE(d.pop_front(c));
  EXPECT_EQ(d.steal_half(loot, 4), 0u);
  EXPECT_EQ(d.size(), 0u);
}

TEST(StealDeque, OneElementGoesToExactlyOneSide) {
  // Pop side.
  StealDeque d;
  d.reset(4);
  ASSERT_TRUE(d.push_back({7, 9}));
  IndexChunk c;
  ASSERT_TRUE(d.pop_front(c));
  EXPECT_EQ(c.begin, 7u);
  EXPECT_EQ(c.end, 9u);
  EXPECT_FALSE(d.pop_front(c));
  // Steal side: ceil(1/2) = 1 — a thief can take the last chunk.
  ASSERT_TRUE(d.push_back({1, 2}));
  IndexChunk loot[4];
  ASSERT_EQ(d.steal_half(loot, 4), 1u);
  EXPECT_EQ(loot[0].begin, 1u);
  EXPECT_EQ(d.steal_half(loot, 4), 0u);
  EXPECT_FALSE(d.pop_front(c));
}

TEST(StealDeque, RingWraparoundPreservesFifoOrder) {
  StealDeque d;
  d.reset(7);  // ring capacity 8
  ASSERT_EQ(d.capacity(), 8u);
  IndexChunk c;
  // Push/pop cycles walk top and bottom far past the ring size; order and
  // content must survive every wrap.
  std::uint32_t next_push = 0, next_pop = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(d.push_back({next_push, next_push++ + 1}));
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(d.pop_front(c));
      EXPECT_EQ(c.begin, next_pop++);
    }
  }
  EXPECT_FALSE(d.pop_front(c));
  // Wrapped ring still steals the back half in curve order.
  for (std::uint32_t i = 0; i < 6; ++i) ASSERT_TRUE(d.push_back({i, i + 1}));
  IndexChunk loot[8];
  ASSERT_EQ(d.steal_half(loot, 8), 3u);
  EXPECT_EQ(loot[0].begin, 3u);
  EXPECT_EQ(loot[1].begin, 4u);
  EXPECT_EQ(loot[2].begin, 5u);
}

TEST(StealDeque, PushFailsOnlyWhenFull) {
  StealDeque d;
  d.reset(7);  // capacity 8
  for (std::uint32_t i = 0; i < 8; ++i) ASSERT_TRUE(d.push_back({i, i + 1}));
  EXPECT_FALSE(d.push_back({8, 9}));
  IndexChunk c;
  ASSERT_TRUE(d.pop_front(c));
  EXPECT_TRUE(d.push_back({8, 9}));
}

// ---------------------------------------------------------------------------
// Linearizability under chaos schedules
// ---------------------------------------------------------------------------

// One owner pushes and pops its deque while three thieves steal halves, all
// under seeded chaos yield injection: the YieldInjector hooks the
// exec::checkpoint() calls inside push/pop/steal, so threads get descheduled
// exactly inside the speculative windows (entry written but unpublished,
// entries read but unconfirmed). Linearizability means every pushed chunk is
// claimed exactly once, whatever the interleaving.
TEST(StealDequeChaos, PushPopStealHalfLinearizableUnderChaosSchedules) {
  constexpr std::uint32_t kChunks = 512;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    StealDeque d;
    d.reset(kChunks);
    std::vector<std::atomic<int>> taken(kChunks);
    std::atomic<std::uint32_t> claimed{0};
    thread_pool pool(4);
    auto worker = [&](unsigned rank) {
      nbody::exec::chaos::YieldInjector inject(seed, rank);
      if (rank == 0) {
        // Owner: push everything, popping every few pushes.
        IndexChunk c;
        for (std::uint32_t i = 0; i < kChunks; ++i) {
          while (!d.push_back({i, i + 1})) {
            if (d.pop_front(c)) {
              taken[c.begin].fetch_add(1);
              claimed.fetch_add(1);
            }
          }
          if (i % 4 == 0 && d.pop_front(c)) {
            taken[c.begin].fetch_add(1);
            claimed.fetch_add(1);
          }
        }
        while (claimed.load() < kChunks && d.pop_front(c)) {
          taken[c.begin].fetch_add(1);
          claimed.fetch_add(1);
        }
      } else {
        // Thieves: steal halves until every chunk is accounted for.
        std::vector<IndexChunk> loot(kChunks);
        while (claimed.load(std::memory_order_acquire) < kChunks) {
          const std::size_t k = d.steal_half(loot.data(), loot.size());
          for (std::size_t i = 0; i < k; ++i) {
            taken[loot[i].begin].fetch_add(1);
            claimed.fetch_add(1);
          }
          if (k == 0) std::this_thread::yield();
        }
      }
    };
    nbody::support::function_ref<void(unsigned)> ref(worker);
    pool.run(ref);
    for (std::uint32_t i = 0; i < kChunks; ++i)
      ASSERT_EQ(taken[i].load(), 1) << "chunk " << i << " under seed " << seed;
  }
}

// The steal backend end-to-end under an irregular workload: every index
// executed exactly once, and the pool counted actual steals.
TEST(StealBackendE2E, IrregularWorkloadExecutesOnceAndSteals) {
  BackendScope scope(backend::work_steal);
  auto& pool = thread_pool::global();
  const auto before = pool.stats();
  const std::size_t n = 4096;
  std::vector<std::atomic<int>> hits(n);
  nbody::exec::for_each_index(par, n, [&](std::size_t i) {
    if (i < 16) {
      volatile double sink = 0;
      for (int k = 0; k < 100'000; ++k) sink = sink + k;
    }
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  const auto after = pool.stats();
  if (pool.concurrency() > 1) {
    EXPECT_GT(after.steals, before.steals);
  }
}

// pool.steals / pool.polls observability survives the deque rewrite: the
// watchdog and job server read these gauges.
TEST(StealBackendE2E, PoolMetricsExportSteals) {
  BackendScope scope(backend::work_steal);
  std::vector<std::atomic<int>> hits(2048);
  nbody::exec::for_each_index(par, hits.size(), [&](std::size_t i) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    hits[i].fetch_add(1);
  });
  nbody::obs::MetricsRegistry reg;
  nbody::exec::export_pool_metrics(thread_pool::global(), reg);
  EXPECT_GE(reg.gauge_value("pool.steals"), 0.0);
  EXPECT_GE(reg.gauge_value("pool.polls"), 0.0);
  EXPECT_GE(reg.gauge_value("pool.worker.0.busy_seconds"), 0.0);
}

// ---------------------------------------------------------------------------
// Bounded backoff: the victim-scan polls regression
// ---------------------------------------------------------------------------

// Skewed workload: one chunk holds ~all the work, so every other rank goes
// dry almost immediately and sits in the victim-scan loop for the whole
// straggler duration. Without backoff the scan spins polls unbounded
// (millions during a 60 ms straggler); with bounded exponential backoff the
// re-scan rate decays to the 128 us nap floor, keeping the poll count a few
// orders of magnitude smaller. The bound here is ~20x above what the
// backoff permits but far below unbounded spinning.
TEST(StealBackoff, PollsStayBoundedOnSkewedWorkload) {
  BackendScope scope(backend::work_steal);
  auto& pool = thread_pool::global();
  const auto before = pool.stats();
  const std::size_t n = 2048;
  std::vector<std::atomic<int>> hits(n);
  nbody::exec::for_each_index(par, n, [&](std::size_t i) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(60));
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  const auto after = pool.stats();
  const std::uint64_t polls = after.polls - before.polls;
  // p=4: three dry ranks, 3 probes per scan, ~470 naps/straggler-60ms at the
  // 128 us floor plus the spin/yield ramp -> O(10^4); unbounded is O(10^6+).
  EXPECT_LT(polls, 100'000u) << "victim scan polled unbounded (backoff regression)";
}

// ---------------------------------------------------------------------------
// Topology: victim order determinism under a pinned fake hierarchy
// ---------------------------------------------------------------------------

TEST(TopologyModel, FakeHierarchyDistances) {
  // 2 packages x 2 clusters x 2 cores = 8 cores; rank r on core r.
  const Topology t = Topology::fake(8, 2, 2, 2);
  EXPECT_STREQ(t.source(), "fake");
  EXPECT_EQ(t.distance(0, 0), 0u);  // same core
  EXPECT_EQ(t.distance(0, 1), 1u);  // same cluster
  EXPECT_EQ(t.distance(0, 2), 2u);  // same package
  EXPECT_EQ(t.distance(0, 4), 3u);  // cross-package
  EXPECT_EQ(t.distance(4, 0), 3u);  // symmetric
}

TEST(TopologyModel, VictimOrderIsNearestFirstAndDeterministic) {
  const Topology t = Topology::fake(8, 2, 2, 2);
  // Rank 5 (package 1, cluster 2, shares it with rank 4): nearest is 4,
  // then package-mates 6, 7 (ring order from 5), then the far package in
  // ring order 0, 1, 2, 3.
  const std::vector<unsigned> expect5 = {4, 6, 7, 0, 1, 2, 3};
  EXPECT_EQ(t.victim_order(5), expect5);
  const std::vector<unsigned> expect0 = {1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(t.victim_order(0), expect0);
  // Determinism: same spec, same orders, every rank.
  const Topology t2 = Topology::fake(8, 2, 2, 2);
  for (unsigned r = 0; r < 8; ++r) EXPECT_EQ(t.victim_order(r), t2.victim_order(r)) << r;
}

TEST(TopologyModel, SmtRanksShareCoresAndProbeThemFirst) {
  // 4 cores, 8 ranks: ranks 4..7 land on cores 0..3 — rank 0's nearest
  // victim is its core-mate rank 4.
  const Topology t = Topology::fake(8, 1, 1, 4);
  EXPECT_EQ(t.distance(0, 4), 0u);
  EXPECT_EQ(t.victim_order(0).front(), 4u);
}

TEST(TopologyModel, FlatFallbackDegeneratesToRingOrder) {
  const Topology t = Topology::flat(5);
  EXPECT_STREQ(t.source(), "flat");
  const std::vector<unsigned> expect2 = {3, 4, 0, 1};  // ring from rank 2
  EXPECT_EQ(t.victim_order(2), expect2);
  // Flat seed order is the identity: seeding matches the old contiguous
  // block partition exactly.
  const std::vector<unsigned> identity = {0, 1, 2, 3, 4};
  EXPECT_EQ(t.seed_order(), identity);
}

TEST(TopologyModel, SeedOrderPutsHardwareNeighborsOnAdjacentSeats) {
  const Topology t = Topology::fake(8, 2, 2, 2);
  const auto seats = t.seed_order();
  ASSERT_EQ(seats.size(), 8u);
  // Walking the seats visits the hierarchy cluster by cluster, package by
  // package: cluster-mates sit on paired seats, and the cross-package jump
  // happens exactly once (at the package boundary).
  unsigned package_jumps = 0;
  for (std::size_t j = 0; j + 1 < seats.size(); ++j) {
    const unsigned d = t.distance(seats[j], seats[j + 1]);
    if (j % 2 == 0) {
      EXPECT_LE(d, 1u) << "cluster-mates split across seats, seat " << j;
    }
    if (d == 3u) ++package_jumps;
  }
  EXPECT_EQ(package_jumps, 1u);
  // Determinism across equal topologies.
  EXPECT_EQ(seats, Topology::fake(8, 2, 2, 2).seed_order());
}

TEST(TopologyModel, DetectHonorsEnvSpec) {
  // detect() re-reads NBODY_TOPOLOGY each call (the victim_table cache, not
  // detect, is what pins a process's choice).
  setenv("NBODY_TOPOLOGY", "fake:2x1x2", /*overwrite=*/1);
  const Topology t = Topology::detect(4);
  EXPECT_STREQ(t.source(), "fake");
  EXPECT_EQ(t.distance(0, 1), 1u);
  EXPECT_EQ(t.distance(0, 2), 3u);  // second package
  setenv("NBODY_TOPOLOGY", "flat", /*overwrite=*/1);
  EXPECT_STREQ(Topology::detect(4).source(), "flat");
  unsetenv("NBODY_TOPOLOGY");
  // Default: sysfs when present, flat otherwise — never throws.
  const Topology sys = Topology::detect(4);
  EXPECT_TRUE(std::string(sys.source()) == "linux" || std::string(sys.source()) == "flat");
}

// ---------------------------------------------------------------------------
// Planted race vs clean negative control (lockset detector)
// ---------------------------------------------------------------------------

#if defined(NBODY_CHAOS)

// The planted bug: a deque whose steal path reads top/bottom as *plain*
// unsynchronized fields — exactly the mistake the CAS-confirmed control
// word exists to prevent. The Eraser-style lockset check must flag the
// multi-thread plain writes with an empty candidate lockset.
struct RacyDeque {
  std::uint32_t top = 0;
  std::uint32_t bottom = 0;

  void racy_push() {
    namespace cd = nbody::exec::chaos;
    const std::uint32_t b = cd::checked_load(bottom, "racy_deque.bottom");
    cd::checked_store(bottom, b + 1, "racy_deque.bottom");
  }
  bool racy_steal() {
    namespace cd = nbody::exec::chaos;
    const std::uint32_t t = cd::checked_load(top, "racy_deque.top");
    const std::uint32_t b = cd::checked_load(bottom, "racy_deque.bottom");
    if (t >= b) return false;
    cd::checked_store(bottom, b - 1, "racy_deque.bottom");  // unsynchronized!
    return true;
  }
};

TEST(StealRaceDetection, PlantedUnsynchronizedStealIsCaught) {
  namespace cd = nbody::exec::chaos;
  cd::DetectorScope detector;
  RacyDeque d;
  thread_pool pool(4);
  auto worker = [&](unsigned rank) {
    for (int i = 0; i < 200; ++i) {
      if (rank == 0)
        d.racy_push();
      else
        d.racy_steal();
    }
  };
  nbody::support::function_ref<void(unsigned)> ref(worker);
  pool.run(ref);
  EXPECT_GE(cd::RaceDetector::instance().lockset_races(), 1u)
      << cd::RaceDetector::instance().report();
}

// Negative control: the real deque hammered by the same shape of workload
// is race-free — its shared state is CAS-published atomics (exempt from the
// lockset check by design: synchronization, not data).
TEST(StealRaceDetection, RealDequeIsLocksetClean) {
  namespace cd = nbody::exec::chaos;
  cd::DetectorScope detector;
  StealDeque d;
  d.reset(256);
  std::atomic<std::uint32_t> claimed{0};
  thread_pool pool(4);
  auto worker = [&](unsigned rank) {
    IndexChunk c;
    std::vector<IndexChunk> loot(256);
    if (rank == 0) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        while (!d.push_back({i, i + 1}))
          if (d.pop_front(c)) claimed.fetch_add(1);
        if (i % 3 == 0 && d.pop_front(c)) claimed.fetch_add(1);
      }
    } else {
      while (claimed.load() < 256) {
        const std::size_t k = d.steal_half(loot.data(), loot.size());
        if (k == 0 && d.size() == 0 && claimed.load() >= 200) break;
        claimed.fetch_add(static_cast<std::uint32_t>(k));
      }
    }
  };
  nbody::support::function_ref<void(unsigned)> ref(worker);
  pool.run(ref);
  // Drain whatever is left so the invariant below is meaningful.
  IndexChunk c;
  while (d.pop_front(c)) claimed.fetch_add(1);
  EXPECT_EQ(claimed.load(), 256u);
  EXPECT_EQ(cd::RaceDetector::instance().lockset_races(), 0u)
      << cd::RaceDetector::instance().report();
}

// The steal scheduler's own synchronization is policy-exempt: a par_unseq
// region dispatched through the deque backend must not charge policy
// violations to user code that performs no synchronizing ops itself.
TEST(StealRaceDetection, SchedulerSynchronizationIsPolicyExempt) {
  namespace cd = nbody::exec::chaos;
  BackendScope scope(backend::work_steal);
  cd::DetectorScope detector;
  std::vector<double> out(4096, 0.0);
  nbody::exec::for_each_index(par_unseq, out.size(),
                              [&](std::size_t i) { out[i] = static_cast<double>(i) * 0.5; });
  EXPECT_EQ(cd::RaceDetector::instance().policy_violations(), 0u)
      << cd::RaceDetector::instance().report();
}

#endif  // NBODY_CHAOS

// ---------------------------------------------------------------------------
// ChunkArena: merge-back conservation, exhaustion, octree integration
// ---------------------------------------------------------------------------

TEST(ChunkArena, RegionExitMergeReturnsEveryChunk) {
  nbody::exec::ChunkArena a;
  a.reset(1, 1 + 64 * 8, /*chunk=*/32, /*slots=*/4);
  std::uint32_t first = 0;
  std::set<std::uint32_t> seen;
  for (unsigned slot = 0; slot < 4; ++slot) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(a.allocate(slot, 8, first));
      ASSERT_TRUE(seen.insert(first).second) << "overlapping allocation";
      EXPECT_EQ((first - 1) % 8, 0u) << "group alignment lost";
    }
  }
  // 5 allocations of 8 fill 40 of each slot's 32+32 chunk space.
  EXPECT_GT(a.held(), 0u);
  EXPECT_EQ(a.leaked(), 0);
  a.retire_all();
  EXPECT_EQ(a.held(), 0u);   // every partial chunk merged back
  EXPECT_EQ(a.leaked(), 0);  // nothing lost in the merge
  const auto st = a.stats();
  EXPECT_GT(st.retired, 0u);
  // Post-merge allocations reuse the retired partials before fresh space.
  const std::uint32_t hw = a.high_water();
  ASSERT_TRUE(a.allocate(0, 8, first));
  EXPECT_EQ(a.high_water(), hw) << "freelist partial not reused";
  EXPECT_GT(a.stats().freelist_reuses, 0u);
}

TEST(ChunkArena, ExhaustionFailsCleanlyAndConservesIndices) {
  nbody::exec::ChunkArena a;
  a.reset(1, 1 + 40, /*chunk=*/16, /*slots=*/2);
  std::uint32_t first = 0;
  std::size_t got = 0;
  while (a.allocate(got % 2, 8, first)) ++got;
  EXPECT_EQ(got, 5u);  // 40 indices / 8 per allocation
  EXPECT_EQ(a.leaked(), 0) << "overflow path lost the tail fragment";
  a.retire_all();
  EXPECT_EQ(a.leaked(), 0);
  EXPECT_EQ(a.held(), 0u);
}

TEST(ChunkArena, LocalBumpServesTheHotPath) {
  nbody::exec::ChunkArena a;
  a.reset(1, 1 + 1024, /*chunk=*/128, /*slots=*/2);
  std::uint32_t first = 0;
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(a.allocate(0, 8, first));
  const auto st = a.stats();
  EXPECT_EQ(st.refills, 1u);          // one chunk grab...
  EXPECT_EQ(st.local_allocs, 15u);    // ...then rank-local bumps only
}

using Octree3 = nbody::octree::ConcurrentOctree<double, 3>;
using OctreeStrategy3 = nbody::octree::OctreeStrategy<double, 3>;

nbody::math::aabb<double, 3> bounds_of(const std::vector<nbody::math::vec<double, 3>>& x) {
  return nbody::core::compute_root_cube(seq, x);
}

TEST(OctreeArena, BuildLeaksNothingAndAllocatesLocally) {
  const auto sys = nbody::workloads::plummer_sphere(2000, 11);
  Octree3 tree;
  tree.build(par, sys.x, bounds_of(sys.x));
  EXPECT_EQ(tree.arena().held(), 0u) << "build exited with chunks parked on ranks";
  EXPECT_EQ(tree.arena().leaked(), 0) << "node indices lost";
  const auto st = tree.arena().stats();
  // The hot path must be rank-local: far more local bumps than shared refills.
  EXPECT_GT(st.local_allocs, st.refills);
  EXPECT_LE(tree.node_count(), tree.capacity());
  const auto ts = tree.stats();
  EXPECT_EQ(ts.bodies, 2000u);
}

TEST(OctreeArena, OverflowLaddersToLargerCapacity) {
  // Start the pool far too small: the arena exhausts, the attempt aborts
  // via the sticky overflow flag, and build() doubles until it fits.
  const auto sys = nbody::workloads::plummer_sphere(1500, 3);
  Octree3::Params p;
  p.min_capacity = 8;
  p.capacity_factor = 0.01;
  Octree3 tree(p);
  tree.build(par, sys.x, bounds_of(sys.x));
  EXPECT_EQ(tree.stats().bodies, 1500u);
  EXPECT_EQ(tree.arena().leaked(), 0);
  EXPECT_EQ(tree.arena().held(), 0u);
}

TEST(OctreeArena, FaultInjectedAllocUnwindCleanly) {
  // The octree.node_alloc fault site (the NBODY_FAULTS spelling) throws out
  // of the parallel build; the arena's unwind path must keep the leak
  // invariant, and a later build must succeed untouched.
  const auto sys = nbody::workloads::plummer_sphere(800, 5);
  Octree3 tree;
  nbody::support::arm_fault(nbody::support::FaultSite::octree_node_alloc,
                            {1.0, /*seed=*/0, /*max_fires=*/1});
  EXPECT_THROW(tree.build(par, sys.x, bounds_of(sys.x)), nbody::support::FaultInjected);
  nbody::support::disarm_all_faults();
  EXPECT_EQ(tree.arena().held(), 0u) << "fault unwind left chunks parked";
  tree.build(par, sys.x, bounds_of(sys.x));
  EXPECT_EQ(tree.stats().bodies, 800u);
  EXPECT_EQ(tree.arena().leaked(), 0);
}

// Allocator equivalence: under seq the arena'd build allocates nodes in
// exactly the shared-bump order (one rank, ascending chunks), so the tree
// and the forces must match the degenerate arena_groups=1 configuration
// *bit for bit*.
TEST(OctreeArena, SeqForcesBitIdenticalToSharedAllocatorBuild) {
  auto sys_a = nbody::workloads::plummer_sphere(1024, 17);
  auto sys_b = sys_a;
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.5;
  cfg.softening = 0.05;

  OctreeStrategy3::Options arena_opts;
  arena_opts.tree.arena_groups = 16;
  OctreeStrategy3::Options shared_opts;
  shared_opts.tree.arena_groups = 1;  // degenerate: shared bump per group

  nbody::core::Simulation<double, 3, OctreeStrategy3> sim_a(sys_a, cfg,
                                                            OctreeStrategy3(arena_opts));
  nbody::core::Simulation<double, 3, OctreeStrategy3> sim_b(sys_b, cfg,
                                                            OctreeStrategy3(shared_opts));
  sim_a.run(seq, 2);
  sim_b.run(seq, 2);
  for (std::size_t i = 0; i < sim_a.system().x.size(); ++i)
    for (std::size_t d = 0; d < 3; ++d) {
      ASSERT_EQ(sim_a.system().x[i][d], sim_b.system().x[i][d]) << "body " << i;
      ASSERT_EQ(sim_a.system().v[i][d], sim_b.system().v[i][d]) << "body " << i;
    }
}

// Under par the two allocator configurations may assign different node
// indices, but the physics must agree to accumulation-order tolerance.
TEST(OctreeArena, ParForcesMatchSharedAllocatorWithinTolerance) {
  auto sys_a = nbody::workloads::plummer_sphere(1024, 19);
  auto sys_b = sys_a;
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.5;
  cfg.softening = 0.05;
  OctreeStrategy3::Options arena_opts;
  arena_opts.tree.arena_groups = 16;
  OctreeStrategy3::Options shared_opts;
  shared_opts.tree.arena_groups = 1;
  nbody::core::Simulation<double, 3, OctreeStrategy3> sim_a(sys_a, cfg,
                                                            OctreeStrategy3(arena_opts));
  nbody::core::Simulation<double, 3, OctreeStrategy3> sim_b(sys_b, cfg,
                                                            OctreeStrategy3(shared_opts));
  sim_a.run(par, 2);
  sim_b.run(par, 2);
  for (std::size_t i = 0; i < sim_a.system().x.size(); ++i)
    for (std::size_t d = 0; d < 3; ++d)
      ASSERT_NEAR(sim_a.system().x[i][d], sim_b.system().x[i][d], 1e-9) << "body " << i;
}

// Incremental maintenance on top of the arena: reinsertions draw from the
// partials the build retired, so repeated updates do not grow the pool.
TEST(OctreeArena, IncrementalUpdatesReuseRetiredChunks) {
  auto sys = nbody::workloads::plummer_sphere(1500, 23);
  Octree3 tree;
  tree.set_track_geometry(true);
  tree.build(par, sys.x, bounds_of(sys.x));
  const std::uint32_t hw_after_build = tree.node_index_end();
  // Drift a few bodies inside the root box and update incrementally.
  for (int step = 0; step < 4; ++step) {
    for (std::size_t i = 0; i < sys.x.size(); i += 7) sys.x[i] *= 0.995;
    const auto plan = tree.plan_update(par, sys.x);
    if (plan.escaped > 0) break;
    ASSERT_TRUE(tree.apply_update(par, sys.x));
    EXPECT_EQ(tree.arena().held(), 0u) << "apply_update left chunks parked";
    EXPECT_EQ(tree.arena().leaked(), 0);
  }
  EXPECT_LE(tree.node_index_end(), hw_after_build + 8 * 16 * 4u)
      << "incremental updates grew the pool instead of reusing retired chunks";
}

}  // namespace
