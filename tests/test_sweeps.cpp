// Parameterized property sweeps across the configuration space the single-
// point tests cannot cover: force accuracy bounds as a joint function of
// (workload shape, theta) for both trees, BVH option products, Hilbert grid
// resolutions, and octree capacity-parameter products. Every case asserts a
// *bound*, not a golden number, so the suite stays robust across compilers.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "bvh/strategy.hpp"
#include "core/diagnostics.hpp"
#include "core/reference.hpp"
#include "octree/strategy.hpp"
#include "sfc/grid.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using nbody::exec::par;
using nbody::exec::par_unseq;
using nbody::exec::seq;
using System3 = nbody::core::System<double, 3>;
using vec3 = nbody::math::vec3d;

System3 workload_by_name(const std::string& name, std::size_t n) {
  if (name == "galaxy") return nbody::workloads::galaxy_collision(n, 42);
  if (name == "plummer") return nbody::workloads::plummer_sphere(n, 5);
  return nbody::workloads::uniform_cube(n, 3, 2.0);
}

// Empirical Barnes-Hut error ceiling as a function of theta for monopole
// trees on these workloads; generous (2-4x observed) so the bound is a
// regression tripwire, not a tight oracle.
double error_ceiling(double theta) { return 0.12 * theta * theta + 2e-3; }

// ---------------------------------------------------- accuracy x workload

using AccuracyCase = std::tuple<std::string, double>;  // workload, theta

class TreeAccuracy : public ::testing::TestWithParam<AccuracyCase> {};

TEST_P(TreeAccuracy, OctreeErrorWithinThetaBound) {
  const auto& [wname, theta] = GetParam();
  auto sys = workload_by_name(wname, 1200);
  nbody::core::SimConfig<double> cfg;
  cfg.theta = theta;
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  nbody::octree::OctreeStrategy<double, 3> strat;
  nbody::core::accelerate(strat, par, sys, cfg);
  EXPECT_LT(nbody::core::rms_relative_error(sys.a, ref.a), error_ceiling(theta))
      << wname << " theta=" << theta;
}

TEST_P(TreeAccuracy, BvhErrorWithinThetaBound) {
  const auto& [wname, theta] = GetParam();
  auto sys = workload_by_name(wname, 1200);
  nbody::core::SimConfig<double> cfg;
  cfg.theta = theta;
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  nbody::bvh::BVHStrategy<double, 3> strat;
  nbody::core::accelerate(strat, par_unseq, sys, cfg);
  std::vector<vec3> got(sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) got[sys.id[i]] = sys.a[i];
  // BVH boxes are elongated: the same theta admits ~3x the octree error
  // (paper Sec. IV-B end) — bound scaled accordingly.
  EXPECT_LT(nbody::core::rms_relative_error(got, ref.a), 3.0 * error_ceiling(theta))
      << wname << " theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadTheta, TreeAccuracy,
    ::testing::Combine(::testing::Values("galaxy", "plummer", "cube"),
                       ::testing::Values(0.2, 0.4, 0.6, 0.8)),
    [](const ::testing::TestParamInfo<AccuracyCase>& info) {
      return std::get<0>(info.param) + "_theta" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
    });

// ---------------------------------------------------- BVH option products

using BvhOptionCase = std::tuple<std::size_t, int, int>;  // leaf, curve, sort

class BvhOptionProduct : public ::testing::TestWithParam<BvhOptionCase> {};

TEST_P(BvhOptionProduct, ExactAtThetaZeroForEveryCombination) {
  const auto& [leaf, curve, sort] = GetParam();
  typename nbody::bvh::HilbertBVH<double, 3>::Options opts;
  opts.leaf_size = leaf;
  opts.curve = static_cast<nbody::bvh::CurveKind>(curve);
  opts.sort = static_cast<nbody::bvh::SortKind>(sort);
  auto sys = nbody::workloads::plummer_sphere(500, 7);
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.0;  // MAC never accepts: must equal the exact sum
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  nbody::bvh::BVHStrategy<double, 3> strat(opts);
  nbody::core::accelerate(strat, par_unseq, sys, cfg);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const auto want = ref.a[sys.id[i]];
    for (int d = 0; d < 3; ++d) EXPECT_NEAR(sys.a[i][d], want[d], 1e-9) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Options, BvhOptionProduct,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{4}, std::size_t{16}),
                       ::testing::Values(0, 1),   // hilbert, morton
                       ::testing::Values(0, 1)),  // comparison, radix
    [](const ::testing::TestParamInfo<BvhOptionCase>& info) {
      return "leaf" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_morton" : "_hilbert") +
             (std::get<2>(info.param) ? "_radix" : "_merge");
    });

// ---------------------------------------------------- grid resolutions

class GridBits : public ::testing::TestWithParam<unsigned> {};

TEST_P(GridBits, KeysOrderPointsAlongACurveOfThatResolution) {
  const unsigned bits = GetParam();
  const nbody::math::aabb3d box{{{-1, -1, -1}}, {{1, 1, 1}}};
  const nbody::sfc::GridMapper<double, 3> grid(box, bits);
  nbody::support::Xoshiro256ss rng(bits);
  for (int rep = 0; rep < 500; ++rep) {
    const vec3 p{{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)}};
    const auto key = grid.hilbert_key(p);
    // Key fits in D*bits bits and decodes back to the cell of p.
    ASSERT_LT(key, 1ull << (3 * bits));
    const auto cell = nbody::sfc::hilbert_decode<3>(key, bits);
    EXPECT_EQ(cell, grid.cell_of(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, GridBits, ::testing::Values(1u, 2u, 4u, 8u, 16u, 21u));

// ---------------------------------------------------- octree capacity params

using CapacityCase = std::tuple<std::uint32_t, double>;  // min_capacity, factor

class OctreeCapacity : public ::testing::TestWithParam<CapacityCase> {};

TEST_P(OctreeCapacity, BuildSucceedsFromAnyStartingEstimate) {
  const auto& [min_cap, factor] = GetParam();
  typename nbody::octree::ConcurrentOctree<double, 3>::Params params;
  params.min_capacity = min_cap;
  params.capacity_factor = factor;
  nbody::octree::ConcurrentOctree<double, 3> tree(params);
  const auto sys = nbody::workloads::galaxy_collision(1500, 8);
  tree.build(par, sys.x, nbody::core::compute_root_cube(par, sys.x));
  const auto st = tree.stats();
  EXPECT_EQ(st.bodies, sys.size());
  EXPECT_LE(tree.node_count(), tree.capacity());
}

INSTANTIATE_TEST_SUITE_P(Params, OctreeCapacity,
                         ::testing::Combine(::testing::Values(8u, 512u, 4096u),
                                            ::testing::Values(0.0, 1.0, 8.0)));

}  // namespace
