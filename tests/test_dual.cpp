// Dual-tree traversal force path: edge cases, dual-vs-DFS/group agreement,
// the observability counters (m2l/l2l/l2p), and the compositions the mode
// must survive — incremental/refit tree maintenance, run_guarded checkpoint
// restore, cooperative cancellation — plus chaos/race-detector coverage of
// the parallel downward pass (a planted unsynchronized L2L write must be
// caught; the real dual walk must be lockset-clean). The broad differential
// sweep across 50 systems and four backends lives in tests/test_chaos_sweep.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bvh/strategy.hpp"
#include "core/diagnostics.hpp"
#include "core/dual_traversal.hpp"
#include "core/simulation.hpp"
#include "core/step_context.hpp"
#include "core/system.hpp"
#include "exec/algorithms.hpp"
#include "exec/chaos/chaos.hpp"
#include "exec/chaos/race_detector.hpp"
#include "exec/stop_token.hpp"
#include "math/local_expansion.hpp"
#include "obs/metrics.hpp"
#include "octree/strategy.hpp"
#include "prop/generators.hpp"
#include "prop/invariants.hpp"
#include "support/fault.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace nbody;
using exec::par;
using exec::par_unseq;
using exec::seq;
using prop::forces_of;
using prop::max_abs_diff;
using prop::rel_l2_error;
using prop::System3;
using prop::Vec3;

// Guarantee real concurrency for the race-detector tests even on a 1-core
// box (same guard as test_group.cpp); callers may still override.
const bool g_thread_env = [] {
  setenv("NBODY_THREADS", "4", /*overwrite=*/0);
  return true;
}();

constexpr double kTreeTol = 0.08;  // matches the differential sweep's ball

core::SimConfig<double> dual_cfg(std::size_t gsize = 0) {
  core::SimConfig<double> cfg;
  cfg.traversal = core::TraversalMode::dual;
  cfg.group_size = gsize;  // 0: effective group size 64
  return cfg;
}

// ------------------------------------------------------------ edge cases

TEST(DualTraversal, DegenerateSystems) {
  const auto cfg = dual_cfg();
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const System3 sys = n == 0 ? System3{} : workloads::plummer_sphere(n, 11);
    const auto ref = prop::reference_forces(sys, cfg);
    const auto oct_f = forces_of(octree::OctreeStrategy<double, 3>{}, par, sys, cfg);
    const auto bvh_f = forces_of(bvh::BVHStrategy<double, 3>{}, par_unseq, sys, cfg);
    // Tiny systems never reach the mutual MAC's far field: every cell
    // defers, the leaf resolves exactly, and L2P adds the zero expansion.
    EXPECT_LE(rel_l2_error(oct_f, ref), 1e-9);
    EXPECT_LE(rel_l2_error(bvh_f, ref), 1e-9);
  }
}

// One target leaf covering the whole system: every source cell contains the
// target box (distance zero), so both MAC tests fail all the way down to
// the leaves and the dual walk degenerates to the exact P2P sum.
TEST(DualTraversal, SingleGroupIsExact) {
  const System3 sys = workloads::uniform_cube(96, 4);
  const auto cfg = dual_cfg(/*gsize=*/128);
  const auto ref = prop::reference_forces(sys, cfg);
  EXPECT_LE(rel_l2_error(forces_of(octree::OctreeStrategy<double, 3>{}, par, sys, cfg), ref),
            1e-9);
  EXPECT_LE(rel_l2_error(forces_of(bvh::BVHStrategy<double, 3>{}, par_unseq, sys, cfg), ref),
            1e-9);
}

TEST(DualTraversal, GroupSizeSweepStaysInTruncationBall) {
  const System3 sys = workloads::plummer_sphere(700, 9);
  core::SimConfig<double> plain;
  const auto ref = prop::reference_forces(sys, plain);
  for (std::size_t gsize : {std::size_t{1}, std::size_t{8}, std::size_t{64},
                            std::size_t{4096}}) {
    SCOPED_TRACE("group_size=" + std::to_string(gsize));
    const auto cfg = dual_cfg(gsize);
    EXPECT_LE(rel_l2_error(forces_of(octree::OctreeStrategy<double, 3>{}, par, sys, cfg), ref),
              kTreeTol);
    EXPECT_LE(rel_l2_error(forces_of(bvh::BVHStrategy<double, 3>{}, par_unseq, sys, cfg), ref),
              kTreeTol);
  }
}

TEST(DualTraversal, MatchesPerBodyDFSWithinTwiceTheBall) {
  const System3 sys = workloads::galaxy_collision(1024, 42);
  core::SimConfig<double> dfs_cfg;
  const auto cfg = dual_cfg();
  const auto ref = prop::reference_forces(sys, dfs_cfg);

  const auto dfs_oct = forces_of(octree::OctreeStrategy<double, 3>{}, par, sys, dfs_cfg);
  const auto dual_oct = forces_of(octree::OctreeStrategy<double, 3>{}, par, sys, cfg);
  EXPECT_LE(rel_l2_error(dual_oct, ref), kTreeTol);
  EXPECT_LE(rel_l2_error(dual_oct, dfs_oct), 2 * kTreeTol);

  const auto dfs_bvh = forces_of(bvh::BVHStrategy<double, 3>{}, par_unseq, sys, dfs_cfg);
  const auto dual_bvh = forces_of(bvh::BVHStrategy<double, 3>{}, par_unseq, sys, cfg);
  EXPECT_LE(rel_l2_error(dual_bvh, ref), kTreeTol);
  EXPECT_LE(rel_l2_error(dual_bvh, dfs_bvh), 2 * kTreeTol);
}

TEST(DualTraversal, QuadrupoleTightensTheMonopoleResult) {
  const System3 sys = workloads::plummer_sphere(1024, 17);
  auto mono = dual_cfg();
  auto quad = dual_cfg();
  quad.quadrupole = true;
  const auto ref = prop::reference_forces(sys, mono);
  const double e_mono =
      rel_l2_error(forces_of(octree::OctreeStrategy<double, 3>{}, par, sys, mono), ref);
  const double e_quad =
      rel_l2_error(forces_of(octree::OctreeStrategy<double, 3>{}, par, sys, quad), ref);
  EXPECT_LE(e_quad, kTreeTol);
  // Quadrupole M2L + quadrupole M2P carry one more multipole order on both
  // the far field and the batch kernels, so the error must not regress.
  EXPECT_LE(e_quad, e_mono + 1e-12);
}

// Deterministic caller policy (seq) must be schedule-free: two evaluations
// are bitwise identical, with and without metrics attached.
TEST(DualTraversal, SeqIsDeterministicAndMetricsDoNotPerturbForces) {
  const System3 sys = workloads::plummer_sphere(512, 23);
  const auto cfg = dual_cfg();

  System3 a = sys, b = sys;
  octree::OctreeStrategy<double, 3> s1, s2;
  core::accelerate(s1, seq, a, cfg);
  obs::MetricsRegistry reg;
  core::accelerate(s2, seq, b, cfg, nullptr, &reg, nullptr);
  std::vector<Vec3> fa(a.size()), fb(b.size());
  for (std::size_t i = 0; i < a.size(); ++i) fa[a.id[i]] = a.a[i];
  for (std::size_t i = 0; i < b.size(); ++i) fb[b.id[i]] = b.a[i];
  EXPECT_EQ(max_abs_diff(fa, fb), 0.0);
}

// ------------------------------------------------------------ observability

TEST(DualTraversal, CountersExposeTheFarFieldPipeline) {
  const System3 sys = workloads::plummer_sphere(1024, 3);
  const auto cfg = dual_cfg();
  const std::size_t gsize = cfg.effective_group_size();
  const std::size_t ngroups = (sys.size() + gsize - 1) / gsize;

  {
    System3 work = sys;
    obs::MetricsRegistry reg;
    octree::OctreeStrategy<double, 3> strategy;
    core::accelerate(strategy, par, work, cfg, nullptr, &reg, nullptr);
    EXPECT_EQ(reg.counter_value("octree.dual.groups"), ngroups);
    EXPECT_EQ(reg.counter_value("octree.dual.l2p"), sys.size());
    EXPECT_GT(reg.counter_value("octree.dual.m2l"), 0u)
        << "a 1024-body Plummer sphere at theta=0.5 must accept far-field cells";
    EXPECT_GT(reg.counter_value("octree.dual.p2p"), 0u);
  }
  {
    System3 work = sys;
    obs::MetricsRegistry reg;
    bvh::BVHStrategy<double, 3> strategy;
    core::accelerate(strategy, par_unseq, work, cfg, nullptr, &reg, nullptr);
    EXPECT_EQ(reg.counter_value("bvh.dual.groups"), ngroups);
    EXPECT_EQ(reg.counter_value("bvh.dual.l2p"), sys.size());
    EXPECT_GT(reg.counter_value("bvh.dual.m2l"), 0u);
    EXPECT_GT(reg.counter_value("bvh.dual.p2p"), 0u);
  }
}

// ------------------------------------------------------------ compositions

template <class Strategy, class Policy>
System3 run_steps(const System3& initial, const core::SimConfig<double>& cfg,
                  typename Strategy::Options opts, Policy policy, std::size_t steps) {
  core::Simulation<double, 3, Strategy> sim(initial, cfg, Strategy(opts));
  sim.run(policy, steps);
  return sim.system();
}

// Expansions are per-step scratch rebuilt from fresh multipoles, so the
// refit/incremental maintenance modes can never leak a stale expansion into
// the dual walk; trajectories must track the rebuild-every-step baseline in
// the same amortization ball the DFS/group modes satisfy.
TEST(DualTraversal, ComposesWithTreeMaintenanceModes) {
  using Oct = octree::OctreeStrategy<double, 3>;
  using Bvh = bvh::BVHStrategy<double, 3>;
  const System3 initial = workloads::drifting_cluster(600, 21);
  auto cfg = dual_cfg();
  cfg.dt = 5e-4;
  const std::size_t steps = 12;
  constexpr double kAmortTol = 1e-2;

  typename Oct::Options oct_rebuild;
  const System3 oct_base = run_steps<Oct>(initial, cfg, oct_rebuild, par, steps);
  typename Bvh::Options bvh_rebuild;
  const System3 bvh_base = run_steps<Bvh>(initial, cfg, bvh_rebuild, par_unseq, steps);
  for (const char* spec : {"refit:4", "incremental"}) {
    SCOPED_TRACE(std::string("--tree-update=") + spec);
    typename Oct::Options oo;
    oo.update = core::TreeUpdatePolicy::parse(spec, "dual-test");
    EXPECT_LT(core::l2_position_error(run_steps<Oct>(initial, cfg, oo, par, steps), oct_base),
              kAmortTol);
    typename Bvh::Options bo;
    bo.update = core::TreeUpdatePolicy::parse(spec, "dual-test");
    EXPECT_LT(
        core::l2_position_error(run_steps<Bvh>(initial, cfg, bo, par_unseq, steps), bvh_base),
        kAmortTol);
  }
}

// run_guarded's checkpoint restore forces a rebuild and invalidates the
// cached leaf-body order the dual walk partitions by; the post-restore dual
// steps must keep the trajectory inside the amortization ball of an
// unfaulted run with the same maintenance policy.
TEST(DualTraversal, ComposesWithRunGuardedRestore) {
  using Oct = octree::OctreeStrategy<double, 3>;
  const System3 initial = workloads::drifting_cluster(500, 8);
  auto cfg = dual_cfg();
  cfg.dt = 5e-4;
  const std::size_t steps = 12;

  typename Oct::Options opts_inc;
  opts_inc.update = core::TreeUpdatePolicy::parse("incremental", "dual-test");
  const System3 base = run_steps<Oct>(initial, cfg, opts_inc, par, steps);

  core::Simulation<double, 3, Oct> guarded(initial, cfg, Oct(opts_inc));
  core::GuardedOptions<double> gopts;
  gopts.checkpoint_every = 3;
  gopts.max_retries = 8;
  support::arm_fault(support::FaultSite::octree_node_alloc, {1.0, 0, 3});
  const auto rep = guarded.run_guarded(par, steps, gopts);
  support::disarm_all_faults();

  EXPECT_EQ(rep.steps_completed, steps);
  EXPECT_GE(rep.restores, 1u) << "the injected fault never forced a restore";
  EXPECT_LT(core::l2_position_error(guarded.system(), base), 1e-2);
}

// The dual walk polls exec::checkpoint() while partitioning source cells, so
// a pending stop aborts the evaluation with Cancelled — and the aborted walk
// leaves no state behind that corrupts a subsequent clean evaluation.
TEST(DualTraversal, CancellationAbortsCleanlyAndStateSurvives) {
  const System3 sys = workloads::plummer_sphere(512, 13);
  const auto cfg = dual_cfg();
  octree::OctreeStrategy<double, 3> strategy;
  {
    exec::stop_source src;
    src.request_stop(exec::stop_cause::requested, "pre-cancelled");
    exec::scoped_ambient_stop scope(src);
    System3 work = sys;
    EXPECT_THROW(core::accelerate(strategy, par, work, cfg), exec::Cancelled);
  }
  // Same strategy object, no ambient stop: the evaluation must now succeed
  // and land in the reference ball.
  const auto ref = prop::reference_forces(sys, cfg);
  System3 work = sys;
  core::accelerate(strategy, par, work, cfg);
  std::vector<Vec3> by_id(work.size(), Vec3::zero());
  for (std::size_t i = 0; i < work.size(); ++i) by_id[work.id[i]] = work.a[i];
  EXPECT_LE(rel_l2_error(by_id, ref), kTreeTol);
}

// ------------------------------------------------- race-detector coverage

#if defined(NBODY_CHAOS)
namespace chaos = exec::chaos;

// Planted bug: the parallel downward pass translates expansions into one
// shared per-node coefficient slab through an unsynchronized cursor instead
// of keeping each target subtree's expansion on its own stack frame (what
// core::dual_traverse actually does). The Eraser-style lockset check must
// flag the cross-thread writes.
TEST(DualTraversalRaces, PlantedSharedL2LWriteIsCaught) {
  chaos::DetectorScope scope;
  using L3 = math::LocalExpansion<double, 3>;
  L3 parent = L3::centered(math::vec<double, 3>{0, 0, 0});
  math::m2l(parent, 2.5, math::vec<double, 3>{10, 0, 0}, 1.0, 1e-4);

  std::vector<double> slab(4096, 0.0);
  std::uint64_t cursor = 0;  // shared write cursor, no lock — the bug
  exec::for_each_index(par, 256, [&](std::size_t i) {
    const std::uint64_t at = chaos::checked_load(cursor);
    const math::vec<double, 3> child_center{0.1 * static_cast<double>(i % 8), 0.0, 0.0};
    const L3 shifted = math::l2l(parent, child_center);
    slab[at % slab.size()] = shifted.a0[0];
    chaos::checked_store(cursor, at + 1);
  });
  auto& det = chaos::RaceDetector::instance();
  EXPECT_GE(det.lockset_races(), 1u) << det.report();
}

// Negative control: the real dual walk shares only the source tree
// (read-only during forces), keeps expansions and interaction lists in
// per-subtree/thread-local scratch, counts through relaxed atomics, and
// writes disjoint acceleration slices — a full dual evaluation on both
// strategies under the detector must be violation-free.
TEST(DualTraversalRaces, DualTraversalIsLocksetClean) {
  chaos::DetectorScope scope;
  System3 sys = workloads::plummer_sphere(512, 5);
  const auto cfg = dual_cfg(32);
  {
    octree::OctreeStrategy<double, 3> strategy;
    core::accelerate(strategy, par, sys, cfg);
  }
  {
    bvh::BVHStrategy<double, 3> strategy;
    core::accelerate(strategy, par_unseq, sys, cfg);
  }
  auto& det = chaos::RaceDetector::instance();
  EXPECT_EQ(det.violation_count(), 0u) << det.report();
}
#endif  // NBODY_CHAOS

}  // namespace
