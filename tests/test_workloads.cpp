// Tests for the workload generators: determinism (the paper's galaxy
// collision is deterministic by construction), physical sanity (bound disks,
// zero net momentum where promised), and shape properties.
#include <gtest/gtest.h>

#include <cmath>

#include "core/diagnostics.hpp"
#include "workloads/workloads.hpp"

namespace {

using nbody::exec::seq;
using vec3 = nbody::math::vec3d;

TEST(Galaxy, DeterministicAcrossCalls) {
  const auto a = nbody::workloads::galaxy_collision(1000, 42);
  const auto b = nbody::workloads::galaxy_collision(1000, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.x[i], b.x[i]);
    EXPECT_EQ(a.v[i], b.v[i]);
    EXPECT_EQ(a.m[i], b.m[i]);
  }
}

TEST(Galaxy, SeedChangesRealization) {
  const auto a = nbody::workloads::galaxy_collision(100, 1);
  const auto b = nbody::workloads::galaxy_collision(100, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_diff |= (a.x[i] != b.x[i]);
  EXPECT_TRUE(any_diff);
}

TEST(Galaxy, RequestedBodyCount) {
  for (std::size_t n : {2u, 3u, 10u, 999u, 10'000u})
    EXPECT_EQ(nbody::workloads::galaxy_collision(n).size(), n) << n;
}

TEST(Galaxy, RejectsTooFewBodies) {
  EXPECT_THROW(nbody::workloads::galaxy_collision(1), std::invalid_argument);
}

TEST(Galaxy, TwoNucleiPresent) {
  nbody::workloads::GalaxyParams p;
  const auto sys = nbody::workloads::galaxy_collision(1000, 42, p);
  int nuclei = 0;
  for (std::size_t i = 0; i < sys.size(); ++i)
    if (sys.m[i] == p.central_mass) ++nuclei;
  EXPECT_EQ(nuclei, 2);
}

TEST(Galaxy, GalaxiesApproachEachOther) {
  nbody::workloads::GalaxyParams p;
  const auto sys = nbody::workloads::galaxy_collision(500, 42, p);
  // The two nuclei move toward each other along x.
  std::vector<std::size_t> nuclei;
  for (std::size_t i = 0; i < sys.size(); ++i)
    if (sys.m[i] == p.central_mass) nuclei.push_back(i);
  ASSERT_EQ(nuclei.size(), 2u);
  const auto& l = sys.x[nuclei[0]][0] < sys.x[nuclei[1]][0] ? nuclei[0] : nuclei[1];
  const auto& r = sys.x[nuclei[0]][0] < sys.x[nuclei[1]][0] ? nuclei[1] : nuclei[0];
  EXPECT_GT(sys.v[l][0], 0.0);
  EXPECT_LT(sys.v[r][0], 0.0);
}

TEST(Galaxy, StarsAreDiskBound) {
  nbody::workloads::GalaxyParams p;
  const auto sys = nbody::workloads::galaxy_collision(2000, 42, p);
  // Every star within disk_radius (+ thickness margin) of some nucleus.
  std::vector<vec3> centers;
  for (std::size_t i = 0; i < sys.size(); ++i)
    if (sys.m[i] == p.central_mass) centers.push_back(sys.x[i]);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (sys.m[i] == p.central_mass) continue;
    double dmin = 1e300;
    for (const auto& c : centers) dmin = std::min(dmin, norm(sys.x[i] - c));
    EXPECT_LT(dmin, p.disk_radius * 1.5) << i;
  }
}

TEST(Galaxy, TwoDVariantMatchesShape) {
  const auto sys = nbody::workloads::galaxy_collision_2d(500, 42);
  EXPECT_EQ(sys.size(), 500u);
  const auto a = nbody::workloads::galaxy_collision_2d(500, 42);
  for (std::size_t i = 0; i < sys.size(); ++i) EXPECT_EQ(sys.x[i], a.x[i]);
}

TEST(Plummer, TotalMassIsOne) {
  const auto sys = nbody::workloads::plummer_sphere(5000, 7);
  EXPECT_NEAR(nbody::core::total_mass(seq, sys), 1.0, 1e-9);
}

TEST(Plummer, HalfMassRadiusNearTheory) {
  // Plummer half-mass radius = scale / sqrt(2^(2/3) - 1) ~ 1.3048 * scale.
  const auto sys = nbody::workloads::plummer_sphere(20'000, 8, 1.0);
  std::vector<double> r(sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) r[i] = norm(sys.x[i]);
  std::nth_element(r.begin(), r.begin() + r.size() / 2, r.end());
  EXPECT_NEAR(r[r.size() / 2], 1.3048, 0.1);
}

TEST(Plummer, RoughVirialEquilibrium) {
  // 2K + U ~ 0 for an equilibrium model (generous tolerance: sampling).
  const auto sys = nbody::workloads::plummer_sphere(3000, 9);
  const double K = nbody::core::kinetic_energy(seq, sys);
  const double U = nbody::core::potential_energy(seq, sys, 1.0, 0.0);
  EXPECT_NEAR(2 * K / std::abs(U), 1.0, 0.25);
}

TEST(UniformCube, BoundsRespected) {
  const auto sys = nbody::workloads::uniform_cube(5000, 3, 2.5);
  for (const auto& p : sys.x)
    for (int d = 0; d < 3; ++d) EXPECT_LE(std::abs(p[d]), 2.5);
}

TEST(UniformCube, Deterministic) {
  const auto a = nbody::workloads::uniform_cube(100, 5);
  const auto b = nbody::workloads::uniform_cube(100, 5);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.x[i], b.x[i]);
}

TEST(SolarSystem, SunPlusMinorBodies) {
  nbody::workloads::SolarSystemParams p;
  const auto sys = nbody::workloads::solar_system(1000, 11, p);
  EXPECT_EQ(sys.size(), 1001u);
  EXPECT_DOUBLE_EQ(sys.m[0], p.sun_mass);
  for (std::size_t i = 1; i < sys.size(); ++i) EXPECT_DOUBLE_EQ(sys.m[i], p.body_mass);
}

TEST(SolarSystem, NetMomentumIsZero) {
  const auto sys = nbody::workloads::solar_system(2000, 11);
  EXPECT_LT(norm(nbody::core::total_momentum(seq, sys)), 1e-12);
}

TEST(SolarSystem, OrbitsWithinRadialRange) {
  nbody::workloads::SolarSystemParams p;
  const auto sys = nbody::workloads::solar_system(3000, 12, p);
  for (std::size_t i = 1; i < sys.size(); ++i) {
    const double r = norm(sys.x[i]);
    // r in [a(1-e), a(1+e)] with a in [min,max] and e <= emax.
    EXPECT_GE(r, p.min_radius * (1.0 - p.max_eccentricity) * 0.99) << i;
    EXPECT_LE(r, p.max_radius * (1.0 + p.max_eccentricity) * 1.01) << i;
  }
}

TEST(SolarSystem, BodiesAreBoundOrbits) {
  // Specific orbital energy negative: v^2/2 - mu/r < 0.
  nbody::workloads::SolarSystemParams p;
  const auto sys = nbody::workloads::solar_system(2000, 13, p);
  const double mu = p.G * p.sun_mass;
  for (std::size_t i = 1; i < sys.size(); ++i) {
    const double e = 0.5 * norm2(sys.v[i]) - mu / norm(sys.x[i]);
    EXPECT_LT(e, 0.0) << i;
  }
}

TEST(SolarSystem, Deterministic) {
  const auto a = nbody::workloads::solar_system(500, 14);
  const auto b = nbody::workloads::solar_system(500, 14);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.x[i], b.x[i]);
    EXPECT_EQ(a.v[i], b.v[i]);
  }
}

}  // namespace
