// Tests for the observability subsystem: MetricsRegistry semantics (under
// parallel increments), TraceSession span/instant recording and Chrome
// trace_event JSON well-formedness (parsed back by a real JSON parser),
// StepContext wiring through every force strategy, the pool-metrics export,
// and run_guarded's recovery events landing in the trace.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "allpairs/allpairs.hpp"
#include "bvh/strategy.hpp"
#include "core/reference.hpp"
#include "core/simulation.hpp"
#include "core/step_context.hpp"
#include "exec/algorithms.hpp"
#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"
#include "octree/strategy.hpp"
#include "support/fault.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace nbody;

// The multi-rank assertions below need real pool workers; the default pool
// sizing follows the host's core count, which may be 1. Pin it before the
// first thread_pool::global() call (static init runs before any TEST body).
const bool g_threads_forced = [] {
  ::setenv("NBODY_THREADS", "4", /*overwrite=*/1);
  return true;
}();

// ------------------------------------------------------------ JSON parsing
//
// Minimal recursive-descent JSON acceptor: the "parse back" half of the
// well-formedness tests. Throws std::runtime_error on any syntax error.

class JsonAcceptor {
 public:
  explicit JsonAcceptor(const std::string& text) : s_(text) {}

  void run() {
    skip_ws();
    value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
  }

 private:
  void value() {
    if (pos_ >= s_.size()) fail("unexpected end");
    const char c = s_[pos_];
    if (c == '{') object();
    else if (c == '[') array();
    else if (c == '"') string();
    else if (c == 't') literal("true");
    else if (c == 'f') literal("false");
    else if (c == 'n') literal("null");
    else number();
  }

  void object() {
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return; }
    for (;;) {
      skip_ws();
      string();
      skip_ws();
      expect(':');
      skip_ws();
      value();
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return;
    }
  }

  void array() {
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return; }
    for (;;) {
      skip_ws();
      value();
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return;
    }
  }

  void string() {
    expect('"');
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (static_cast<unsigned char>(s_[pos_]) < 0x20) fail("raw control char in string");
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) fail("dangling escape");
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              fail("bad \\u escape");
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          fail("bad escape");
        }
      }
      ++pos_;
    }
    expect('"');
  }

  void number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
  }

  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r'))
      ++pos_;
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON error at byte " + std::to_string(pos_) + ": " + why);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void expect_parses(const std::string& json) {
  ASSERT_NO_THROW(JsonAcceptor(json).run()) << json;
}

core::SimConfig<double> test_config() {
  core::SimConfig<double> cfg;
  cfg.theta = 0.6;
  cfg.dt = 1e-3;
  cfg.softening = 0.05;
  return cfg;
}

// ----------------------------------------------------------------- registry

TEST(MetricsRegistry, CounterExactUnderPar) {
  obs::MetricsRegistry reg;
  auto& c = reg.counter("test.hits");
  constexpr std::size_t kN = 100'000;
  exec::for_each_index(exec::par, kN, [&](std::size_t) { c.add(); });
  EXPECT_EQ(c.value(), kN);
  EXPECT_EQ(reg.counter_value("test.hits"), kN);
  EXPECT_EQ(reg.counter_value("test.never"), 0u);
}

TEST(MetricsRegistry, CounterHandleIsStableAcrossGrowth) {
  obs::MetricsRegistry reg;
  auto& first = reg.counter("stable");
  for (int i = 0; i < 100; ++i) reg.counter("filler." + std::to_string(i));
  first.add(7);
  EXPECT_EQ(reg.counter_value("stable"), 7u);
  EXPECT_EQ(&first, &reg.counter("stable"));
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  obs::MetricsRegistry reg;
  reg.set_gauge("depth", 3.0);
  reg.set_gauge("depth", 9.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("depth"), 9.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("missing"), 0.0);
}

TEST(MetricsRegistry, HistogramBucketsCountAndSum) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("occ", {1, 2, 4});
  for (const double v : {0.5, 1.0, 2.0, 3.0, 4.0, 100.0}) h.observe(v);
  // Inclusive upper bounds: <=1 gets 0.5 and 1.0; <=2 gets 2.0; <=4 gets
  // 3.0 and 4.0; +inf gets 100.
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 110.5);
}

TEST(MetricsRegistry, HistogramSumExactUnderPar) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("par", {10});
  constexpr std::size_t kN = 20'000;
  exec::for_each_index(exec::par, kN, [&](std::size_t) { h.observe(1.0); });
  EXPECT_EQ(h.count(), kN);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kN));
}

TEST(MetricsRegistry, HistogramBoundsFixedByFirstCaller) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("h", {1, 2});
  auto& again = reg.histogram("h", {99});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds().size(), 2u);
}

TEST(MetricsRegistry, JsonExportParsesAndCarriesEverything) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").add(42);
  reg.set_gauge("b.gauge", 2.5);
  reg.histogram("c.hist", {1, 8}).observe(3.0);
  reg.set_gauge("weird\"name\n", 1.0);  // escaping must survive a parse
  const std::string json = reg.to_json();
  expect_parses(json);
  EXPECT_NE(json.find("\"nbody.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"b.gauge\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"+inf\""), std::string::npos);
}

// -------------------------------------------------------------------- trace

TEST(TraceSession, SpansAndInstantsRecordAndExport) {
  obs::TraceSession tr;
  {
    auto s = tr.span("outer");
    auto s2 = tr.span("inner");
  }
  tr.instant("decision", "reason -> \"action\"\nwith newline");
  EXPECT_EQ(tr.event_count(), 3u);
  EXPECT_EQ(tr.span_rank_count(), 1u);  // all on the calling thread (rank 0)
  const std::string json = tr.to_json();
  expect_parses(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\""), std::string::npos);
}

TEST(TraceSession, MaybeNullIsNoop) {
  auto none = obs::TraceSession::maybe(nullptr, "x");
  EXPECT_FALSE(none.has_value());
}

TEST(TraceSession, ScopePublishesRegionLabel) {
  obs::TraceSession tr;
  const char* before = obs::region_label();
  {
    auto s = tr.span("force");
    EXPECT_STREQ(obs::region_label(), "force");
    {
      auto s2 = tr.span("build");
      EXPECT_STREQ(obs::region_label(), "build");
    }
    EXPECT_STREQ(obs::region_label(), "force");
  }
  EXPECT_STREQ(obs::region_label(), before);
}

TEST(TraceSession, ParallelRegionsRecordSpansFromMultipleRanks) {
  ASSERT_GE(exec::thread_pool::global().concurrency(), 2u) << "NBODY_THREADS not applied";
  obs::TraceSession tr;
  obs::install_global(nullptr, &tr);
  {
    auto phase = tr.span("force");
    exec::for_each_index(exec::par, 100'000, [](std::size_t i) {
      volatile double x = static_cast<double>(i);
      (void)x;
    });
  }
  obs::install_global(nullptr, nullptr);
  EXPECT_GE(tr.span_rank_count(), 2u);
  const std::string json = tr.to_json();
  expect_parses(json);
  // Per-rank scheduler spans inherit the enclosing phase name.
  EXPECT_NE(json.find("\"name\": \"force\""), std::string::npos);
}

// ----------------------------------------------------- ambient runtime slots

TEST(ObsRuntime, InstallGlobalRoundTrip) {
  obs::MetricsRegistry reg;
  obs::TraceSession tr;
  obs::install_global(&reg, &tr);
  EXPECT_EQ(obs::global_metrics(), &reg);
  EXPECT_EQ(obs::global_trace(), &tr);
  obs::install_global(nullptr, nullptr);
  EXPECT_EQ(obs::global_metrics(), nullptr);
  EXPECT_EQ(obs::global_trace(), nullptr);
}

// ------------------------------------------------------------- pool metrics

TEST(PoolMetrics, ExportReportsUtilizationAndPerWorkerCounts) {
  auto& pool = exec::thread_pool::global();
  exec::for_each_index(exec::par, 100'000, [](std::size_t i) {
    volatile double x = static_cast<double>(i) * 1.5;
    (void)x;
  });
  obs::MetricsRegistry reg;
  exec::export_pool_metrics(pool, reg);
  EXPECT_DOUBLE_EQ(reg.gauge_value("pool.concurrency"),
                   static_cast<double>(pool.concurrency()));
  EXPECT_GT(reg.gauge_value("pool.regions"), 0.0);
  EXPECT_GT(reg.gauge_value("pool.tasks"), 0.0);
  EXPECT_GT(reg.gauge_value("pool.chunks"), 0.0);
  const double util = reg.gauge_value("pool.utilization");
  EXPECT_GE(util, 0.0);
  EXPECT_LE(util, 1.0);
  EXPECT_GE(reg.gauge_value("pool.worker.0.tasks"), 1.0);
  expect_parses(reg.to_json());
}

// ------------------------------------------------- StepContext + strategies

TEST(StepContext, PhaseFeedsTimerAndTrace) {
  auto sys = workloads::plummer_sphere(64, 7);
  const auto cfg = test_config();
  support::PhaseTimer timer;
  obs::TraceSession tr;
  core::StepContext<double, 3> ctx{sys, cfg, &timer, nullptr, &tr};
  {
    auto p = ctx.phase("demo");
    volatile double sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i);
  }
  EXPECT_GT(timer.seconds("demo"), 0.0);
  EXPECT_EQ(tr.event_count(), 1u);
  EXPECT_FALSE(ctx.metrics_enabled());
}

TEST(StepContext, OctreeStrategyPopulatesMetricsWithoutChangingForces) {
  const auto initial = workloads::plummer_sphere(300, 11);
  const auto cfg = test_config();

  // seq on both sides: the parallel multipole reduction sums in scheduling
  // order, so two par runs differ in the last ulp even with metrics off.
  // The claim under test — counting never perturbs the forces — is exact
  // only on the deterministic path.
  auto plain = initial;
  octree::OctreeStrategy<double, 3> s1;
  core::accelerate(s1, exec::seq, plain, cfg);

  auto counted = initial;
  octree::OctreeStrategy<double, 3> s2;
  obs::MetricsRegistry reg;
  obs::TraceSession tr;
  support::PhaseTimer timer;
  core::accelerate(s2, exec::seq, counted, cfg, &timer, &reg, &tr);

  for (std::size_t i = 0; i < plain.size(); ++i)
    for (std::size_t d = 0; d < 3; ++d)
      EXPECT_DOUBLE_EQ(plain.a[i][d], counted.a[i][d]) << "body " << i;

  EXPECT_EQ(reg.counter_value("octree.builds"), 1u);
  EXPECT_GT(reg.gauge_value("octree.nodes"), 0.0);
  EXPECT_GT(reg.gauge_value("octree.max_depth"), 0.0);
  EXPECT_GT(reg.gauge_value("octree.memory_bytes"), 0.0);
  EXPECT_GT(reg.counter_value("octree.traversal.p2p"), 0u);
  EXPECT_GT(reg.counter_value("octree.traversal.m2p"), 0u);
  EXPECT_GT(reg.counter_value("octree.traversal.nodes_visited"), 0u);
  EXPECT_GT(tr.event_count(), 0u);
  EXPECT_GT(timer.seconds("force"), 0.0);
}

TEST(StepContext, OctreeQuadrupoleForcesMatchWithMetricsOn) {
  const auto initial = workloads::plummer_sphere(200, 3);
  auto cfg = test_config();
  cfg.quadrupole = true;

  // seq for bit-exact comparison (see note in the test above).
  auto plain = initial;
  octree::OctreeStrategy<double, 3> s1;
  core::accelerate(s1, exec::seq, plain, cfg);

  auto counted = initial;
  octree::OctreeStrategy<double, 3> s2;
  obs::MetricsRegistry reg;
  core::accelerate(s2, exec::seq, counted, cfg, nullptr, &reg, nullptr);

  for (std::size_t i = 0; i < plain.size(); ++i)
    for (std::size_t d = 0; d < 3; ++d)
      EXPECT_DOUBLE_EQ(plain.a[i][d], counted.a[i][d]) << "body " << i;
}

TEST(StepContext, OctreeLeafOccupancyHistogramCoversAllBodies) {
  auto sys = workloads::plummer_sphere(256, 5);
  const auto cfg = test_config();
  octree::OctreeStrategy<double, 3> strat;
  obs::MetricsRegistry reg;
  core::accelerate(strat, exec::par, sys, cfg, nullptr, &reg, nullptr);
  // Every body sits in exactly one leaf chain, so the histogram's sum (total
  // bodies over occupied leaves) equals N.
  const auto& h = reg.histogram("octree.leaf_occupancy", {});
  EXPECT_GT(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 256.0);
}

TEST(StepContext, BvhStrategyPopulatesMetricsWithoutChangingForces) {
  const auto initial = workloads::plummer_sphere(300, 13);
  auto cfg = test_config();
  cfg.quadrupole = true;  // exercises the counted quadrupole traversal

  auto plain = initial;
  bvh::BVHStrategy<double, 3> s1;
  core::accelerate(s1, exec::par_unseq, plain, cfg);

  auto counted = initial;
  bvh::BVHStrategy<double, 3> s2;
  obs::MetricsRegistry reg;
  core::accelerate(s2, exec::par_unseq, counted, cfg, nullptr, &reg, nullptr);

  // Both runs Hilbert-reorder identically; compare by stable body id.
  std::vector<math::vec3d> a1(plain.size()), a2(counted.size());
  for (std::size_t i = 0; i < plain.size(); ++i) a1[plain.id[i]] = plain.a[i];
  for (std::size_t i = 0; i < counted.size(); ++i) a2[counted.id[i]] = counted.a[i];
  for (std::size_t i = 0; i < a1.size(); ++i)
    for (std::size_t d = 0; d < 3; ++d) EXPECT_DOUBLE_EQ(a1[i][d], a2[i][d]) << "body " << i;

  EXPECT_EQ(reg.counter_value("bvh.builds"), 1u);
  EXPECT_EQ(reg.counter_value("bvh.sorts"), 1u);
  EXPECT_GT(reg.gauge_value("bvh.nodes"), 0.0);
  EXPECT_GT(reg.gauge_value("bvh.levels"), 0.0);
  EXPECT_GT(reg.counter_value("bvh.traversal.p2p"), 0u);
  EXPECT_GT(reg.counter_value("bvh.traversal.m2p"), 0u);
  EXPECT_EQ(reg.histogram("bvh.sort_seconds", {}).count(), 1u);
}

TEST(StepContext, AllPairsVariantsCountInteractionsExactly) {
  const std::size_t n = 64;
  const auto cfg = test_config();

  {
    auto sys = workloads::uniform_cube(n, 1);
    allpairs::AllPairs<double, 3> strat;
    obs::MetricsRegistry reg;
    core::accelerate(strat, exec::par_unseq, sys, cfg, nullptr, &reg, nullptr);
    EXPECT_EQ(reg.counter_value("allpairs.interactions"), n * (n - 1));
  }
  {
    auto sys = workloads::uniform_cube(n, 1);
    allpairs::AllPairsCol<double, 3> strat;
    obs::MetricsRegistry reg;
    core::accelerate(strat, exec::par, sys, cfg, nullptr, &reg, nullptr);
    EXPECT_EQ(reg.counter_value("allpairs.interactions"), n * (n - 1) / 2);
  }
  {
    auto sys = workloads::uniform_cube(n, 1);
    allpairs::AllPairsTiled<double, 3> strat(16);
    obs::MetricsRegistry reg;
    core::accelerate(strat, exec::par_unseq, sys, cfg, nullptr, &reg, nullptr);
    EXPECT_EQ(reg.counter_value("allpairs.interactions"), n * (n - 1));
  }
}

TEST(StepContext, ReferenceBarnesHutRunsThroughContext) {
  auto sys = workloads::plummer_sphere(100, 2);
  const auto cfg = test_config();
  core::ReferenceBarnesHut<double, 3> strat;
  support::PhaseTimer timer;
  core::accelerate(strat, exec::seq, sys, cfg, &timer);
  EXPECT_GT(timer.seconds("build"), 0.0);
  EXPECT_GT(timer.seconds("force"), 0.0);
}

// ------------------------------------------------------- simulation wiring

TEST(SimulationObs, RunRecordsStepsAndPhaseSpans) {
  auto sys = workloads::plummer_sphere(200, 17);
  const auto cfg = test_config();
  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> sim(std::move(sys), cfg);
  obs::MetricsRegistry reg;
  obs::TraceSession tr;
  sim.set_observability(&reg, &tr);
  sim.run(exec::par, 3);
  EXPECT_EQ(reg.counter_value("sim.steps"), 3u);
  EXPECT_EQ(reg.counter_value("octree.builds"), 3u);
  const std::string json = tr.to_json();
  expect_parses(json);
  EXPECT_NE(json.find("\"name\": \"step\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"force\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"update\""), std::string::npos);
}

TEST(SimulationObs, GuardedRecoveryEmitsTraceInstantsAndDiscardedPhase) {
  support::disarm_all_faults();
  auto sys = workloads::plummer_sphere(200, 23);
  const auto cfg = test_config();
  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> sim(std::move(sys), cfg);
  obs::MetricsRegistry reg;
  obs::TraceSession tr;
  sim.set_observability(&reg, &tr);

  support::arm_faults_from_spec("octree.node_alloc:1:0:2");  // first two builds fail
  core::GuardedOptions<double> opts;
  opts.checkpoint_every = 4;
  opts.max_retries = 4;
  const auto rep = sim.run_guarded(exec::par, 6, opts);
  support::disarm_all_faults();

  EXPECT_EQ(rep.steps_completed, 6u);
  ASSERT_GE(rep.retries_used, 1u);
  EXPECT_EQ(reg.counter_value("sim.guard.recoveries"), rep.retries_used);
  EXPECT_GE(reg.counter_value("sim.guard.checkpoints"), 1u);
  // The failed attempts' wall time is re-attributed, not double-counted.
  EXPECT_GT(sim.phases().seconds("(discarded)"), 0.0);

  const std::string json = tr.to_json();
  expect_parses(json);
  EXPECT_NE(json.find("\"name\": \"guard.recovery\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"guard.checkpoint\""), std::string::npos);
  EXPECT_NE(json.find("octree.node_alloc"), std::string::npos);  // reason in args
}

// ------------------------------------------------------------- phase timer

TEST(PhaseTimer, ReattributeSinceMovesOnlyTheDelta) {
  support::PhaseTimer t;
  t.add("build", 1.0);
  t.add("force", 2.0);
  const auto snap = t.snapshot();
  t.add("build", 0.5);
  t.add("update", 0.25);  // phase born after the snapshot
  t.reattribute_since(snap, "(discarded)");
  EXPECT_DOUBLE_EQ(t.seconds("build"), 1.0);
  EXPECT_DOUBLE_EQ(t.seconds("force"), 2.0);
  EXPECT_DOUBLE_EQ(t.seconds("update"), 0.0);
  EXPECT_DOUBLE_EQ(t.seconds("(discarded)"), 0.75);
  EXPECT_DOUBLE_EQ(t.total(), 3.75);
}

}  // namespace
