// Tests for the cancellation + deadline subsystem: stop_source/stop_token
// semantics (first-requester-wins, deadline folded into the poll, ambient
// scope nesting), cooperative cancellation of every parallel algorithm
// across all four scheduling backends with bit-identical restorability,
// the thread-pool watchdog (trips on a wedged worker, no false trips on a
// healthy run), the exec.chunk.hang fault site, the all-ranks-throw pool
// shutdown regression, deadline-driven recovery in run_guarded including
// the accuracy-shedding rungs, and the end-to-end acceptance scenario:
// a worker hang injected mid-run is reclaimed by the watchdog, the
// checkpoint restored, and the run completes within its deadline matching
// an un-faulted seq run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/diagnostics.hpp"
#include "core/guard.hpp"
#include "core/simulation.hpp"
#include "core/system.hpp"
#include "exec/algorithms.hpp"
#include "exec/chaos/chaos.hpp"
#include "exec/stop_token.hpp"
#include "exec/thread_pool.hpp"
#include "exec/watchdog.hpp"
#include "octree/strategy.hpp"
#include "support/fault.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace nbody;
using exec::Cancelled;
using exec::stop_cause;
using support::FaultConfig;
using support::FaultInjected;
using support::FaultSite;

struct FaultScope {
  FaultScope() { support::disarm_all_faults(); }
  ~FaultScope() { support::disarm_all_faults(); }
};

/// Switches the scheduling backend for one test and restores it after.
struct BackendScope {
  explicit BackendScope(exec::backend b) : saved_(exec::default_backend()) {
    exec::set_default_backend(b);
  }
  ~BackendScope() { exec::set_default_backend(saved_); }

 private:
  exec::backend saved_;
};

constexpr exec::backend kBackends[] = {
    exec::backend::static_chunk, exec::backend::dynamic_chunk,
    exec::backend::work_steal, exec::backend::chaos_permute};

core::SimConfig<double> small_cfg() {
  core::SimConfig<double> cfg;
  cfg.dt = 1e-3;
  cfg.theta = 0.6;
  cfg.softening = 0.05;
  return cfg;
}

// ------------------------------------------------------------- stop tokens

TEST(StopToken, DefaultTokenIsStopless) {
  exec::stop_token tok;
  EXPECT_FALSE(tok.stop_possible());
  EXPECT_FALSE(tok.stop_requested());
  EXPECT_NO_THROW(tok.throw_if_stopped());
  EXPECT_EQ(tok.cause(), stop_cause::none);
}

TEST(StopToken, RequestStopSetsCauseAndReason) {
  exec::stop_source src;
  auto tok = src.token();
  EXPECT_TRUE(tok.stop_possible());
  EXPECT_FALSE(tok.stop_requested());
  EXPECT_TRUE(src.request_stop(stop_cause::requested, "test stop"));
  EXPECT_TRUE(tok.stop_requested());
  EXPECT_EQ(tok.cause(), stop_cause::requested);
  EXPECT_EQ(tok.reason(), "test stop");
  try {
    tok.throw_if_stopped();
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& e) {
    EXPECT_EQ(e.cause(), stop_cause::requested);
    EXPECT_NE(std::string(e.what()).find("test stop"), std::string::npos);
  }
}

TEST(StopToken, FirstRequesterWins) {
  exec::stop_source src;
  EXPECT_TRUE(src.request_stop(stop_cause::watchdog, "first"));
  EXPECT_FALSE(src.request_stop(stop_cause::deadline, "second"));
  EXPECT_EQ(src.token().cause(), stop_cause::watchdog);
  EXPECT_EQ(src.token().reason(), "first");
}

TEST(StopToken, DeadlineFoldsIntoPoll) {
  exec::stop_source src;
  src.arm_deadline(std::chrono::milliseconds(5), "unit deadline");
  auto tok = src.token();
  // No helper thread: the poll itself observes the armed deadline.
  const auto t0 = std::chrono::steady_clock::now();
  while (!tok.stop_requested()) {
    ASSERT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(10));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(tok.cause(), stop_cause::deadline);
  EXPECT_EQ(tok.reason(), "unit deadline");
}

TEST(StopToken, AmbientScopesNest) {
  EXPECT_FALSE(exec::ambient_stop_token().stop_possible());
  exec::stop_source outer;
  {
    exec::scoped_ambient_stop s1(outer);
    EXPECT_TRUE(exec::ambient_stop_token().stop_possible());
    exec::stop_source inner;
    inner.request_stop();
    {
      exec::scoped_ambient_stop s2(inner);
      EXPECT_TRUE(exec::ambient_stop_token().stop_requested());
    }
    // Back to the (unstopped) outer scope.
    EXPECT_TRUE(exec::ambient_stop_token().stop_possible());
    EXPECT_FALSE(exec::ambient_stop_token().stop_requested());
  }
  EXPECT_FALSE(exec::ambient_stop_token().stop_possible());
}

// --------------------------------------------------- fault framework (skip)

TEST(FaultSkip, SkipExemptsLeadingEvaluations) {
  FaultScope scope;
  support::arm_fault(FaultSite::snapshot_read, {1.0, 0, 0, 5});
  int thrown = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      support::fault_point(FaultSite::snapshot_read);
    } catch (const FaultInjected&) {
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, 5);  // evaluations 0..4 exempt, 5..9 fire
}

TEST(FaultSkip, SpecParsesFifthField) {
  FaultScope scope;
  ASSERT_EQ(support::arm_faults_from_spec("exec.chunk.hang:1:0:1:3"), 1u);
  EXPECT_TRUE(support::fault_armed(FaultSite::chunk_hang));
  // First three queries exempt, fourth fires, budget of one then exhausted.
  int fired = 0;
  for (int i = 0; i < 8; ++i) fired += support::fault_fires_now(FaultSite::chunk_hang);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(support::fault_evaluations(FaultSite::chunk_hang), 8u);
}

// --------------------------------------------- algorithm cancellation (4x)

TEST(CancelAlgorithms, PendingStopCancelsBeforeWork) {
  for (const auto b : kBackends) {
    BackendScope backend(b);
    exec::stop_source src;
    src.request_stop(stop_cause::requested, "pre-cancelled");
    exec::scoped_ambient_stop scope(src);
    std::atomic<std::size_t> done{0};
    EXPECT_THROW(exec::for_each_index(exec::par, 1u << 16,
                                      [&](std::size_t) {
                                        done.fetch_add(1, std::memory_order_relaxed);
                                      }),
                 Cancelled)
        << exec::backend_name(b);
    // Flag was up before dispatch: no stripe may start.
    EXPECT_EQ(done.load(), 0u) << exec::backend_name(b);
    EXPECT_THROW(exec::for_each_index(exec::seq, 16, [](std::size_t) {}), Cancelled);
  }
}

TEST(CancelAlgorithms, MidRunStopDrainsAndThrows) {
  for (const auto b : kBackends) {
    BackendScope backend(b);
    exec::stop_source src;
    exec::scoped_ambient_stop scope(src);
    std::atomic<std::size_t> done{0};
    const std::size_t n = 1u << 20;
    try {
      exec::for_each_index(exec::par, n, [&](std::size_t) {
        if (done.fetch_add(1, std::memory_order_relaxed) == 10000)
          src.request_stop(stop_cause::requested, "mid-run");
      });
      FAIL() << "expected Cancelled under " << exec::backend_name(b);
    } catch (const Cancelled& e) {
      EXPECT_EQ(e.cause(), stop_cause::requested);
    }
    EXPECT_GT(done.load(), 10000u);
    EXPECT_LT(done.load(), n) << "cancellation should shed remaining work ("
                              << exec::backend_name(b) << ")";
  }
}

TEST(CancelAlgorithms, TransformReduceCancels) {
  for (const auto b : kBackends) {
    BackendScope backend(b);
    exec::stop_source src;
    exec::scoped_ambient_stop scope(src);
    std::atomic<std::size_t> seen{0};
    EXPECT_THROW(
        (void)exec::transform_reduce_index(
            exec::par, std::size_t{1} << 20, 0.0,
            [](double a, double x) { return a + x; },
            [&](std::size_t i) {
              if (seen.fetch_add(1, std::memory_order_relaxed) == 5000)
                src.request_stop();
              return static_cast<double>(i);
            }),
        Cancelled)
        << exec::backend_name(b);
  }
}

// The satellite requirement: cancellation mid-sort / mid-exclusive_scan
// leaves the System restorable from the last checkpoint bit-identically,
// across all four backends (chaos with an explicit, replayable seed).

bool bytes_equal(const std::vector<core::System<double, 3>::vec_t>& a,
                 const std::vector<core::System<double, 3>::vec_t>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(a[0])) == 0;
}

TEST(CancelAlgorithms, MidSortRestorableBitIdentical) {
  if (exec::thread_pool::global().concurrency() < 2)
    GTEST_SKIP() << "parallel sort path needs >= 2 participants";
  auto sys = workloads::plummer_sphere(16384, 99);  // above the serial cutoff
  const auto ckpt = sys;                            // "last checkpoint"
  // Expected result of a clean sort (policy-independent: stable merge sort).
  auto expected = ckpt.x;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a[0] < b[0]; });
  for (const auto b : kBackends) {
    BackendScope backend(b);
    exec::chaos::set_seed(0xC0FFEEu);  // chaos schedules replay from this seed
    sys = ckpt;
    std::atomic<std::uint64_t> comparisons{0};
    {
      exec::stop_source src;
      exec::scoped_ambient_stop scope(src);
      auto cancelling_cmp = [&](const auto& lhs, const auto& rhs) {
        if (comparisons.fetch_add(1, std::memory_order_relaxed) == 20000)
          src.request_stop(stop_cause::requested, "mid-sort");
        return lhs[0] < rhs[0];
      };
      EXPECT_THROW(exec::sort(exec::par, sys.x.begin(), sys.x.end(), cancelling_cmp),
                   Cancelled)
          << exec::backend_name(b);
    }
    // The cancelled sort may have left sys.x partially permuted / merged —
    // that is exactly why the guarded loop restores. Restore and redo.
    sys = ckpt;
    EXPECT_TRUE(bytes_equal(sys.x, ckpt.x));
    exec::sort(exec::par, sys.x.begin(), sys.x.end(),
               [](const auto& a, const auto& b2) { return a[0] < b2[0]; });
    EXPECT_TRUE(bytes_equal(sys.x, expected)) << exec::backend_name(b);
  }
}

TEST(CancelAlgorithms, MidExclusiveScanRestorableBitIdentical) {
  if (exec::thread_pool::global().concurrency() < 2)
    GTEST_SKIP() << "parallel scan path needs >= 2 participants";
  auto sys = workloads::plummer_sphere(8192, 77);
  const auto ckpt = sys;
  std::vector<double> expected(sys.m.size());
  std::exclusive_scan(ckpt.m.begin(), ckpt.m.end(), expected.begin(), 0.0);
  for (const auto b : kBackends) {
    BackendScope backend(b);
    exec::chaos::set_seed(0xC0FFEEu);
    sys = ckpt;
    std::vector<double> out(sys.m.size(), -1.0);
    std::atomic<std::uint64_t> ops{0};
    {
      exec::stop_source src;
      exec::scoped_ambient_stop scope(src);
      auto cancelling_op = [&](double a, double x) {
        if (ops.fetch_add(1, std::memory_order_relaxed) == 1000) src.request_stop();
        return a + x;
      };
      EXPECT_THROW(exec::exclusive_scan(exec::par, sys.m.data(), out.data(),
                                        sys.m.size(), 0.0, cancelling_op),
                   Cancelled)
          << exec::backend_name(b);
    }
    // Restore + redo: bit-identical to the sequential reference.
    sys = ckpt;
    std::fill(out.begin(), out.end(), -1.0);
    exec::exclusive_scan(exec::par, sys.m.data(), out.data(), sys.m.size(), 0.0,
                         std::plus<>{});
    ASSERT_EQ(out.size(), expected.size());
    EXPECT_EQ(std::memcmp(out.data(), expected.data(), out.size() * sizeof(double)), 0)
        << exec::backend_name(b);
  }
}

// ------------------------------------------------------------- the watchdog

TEST(Watchdog, TripsOnWedgedWorker) {
  FaultScope faults;
  auto& pool = exec::thread_pool::global();
  support::arm_fault(FaultSite::chunk_hang, {1.0, 0, 1});  // wedge first chunk
  exec::stop_source src;
  exec::Watchdog dog(pool, std::chrono::milliseconds(50));
  dog.arm(src.state());
  exec::scoped_ambient_stop scope(src);
  try {
    exec::for_each_index(exec::par, 1u << 16, [](std::size_t) {});
    FAIL() << "expected the watchdog to cancel the wedged region";
  } catch (const Cancelled& e) {
    EXPECT_EQ(e.cause(), stop_cause::watchdog);
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
  }
  dog.disarm();
  EXPECT_EQ(dog.trips(), 1u);
  EXPECT_EQ(support::fault_fires(FaultSite::chunk_hang), 1u);
}

TEST(Watchdog, NoFalseTripOnHealthyRun) {
  auto& pool = exec::thread_pool::global();
  exec::stop_source src;
  exec::Watchdog dog(pool, std::chrono::milliseconds(250));
  dog.arm(src.state());
  exec::scoped_ambient_stop scope(src);
  std::atomic<double> sink{0};
  for (int r = 0; r < 20; ++r) {
    exec::for_each_index(exec::par, 1u << 14, [&](std::size_t i) {
      if (i == 0) sink.store(static_cast<double>(i));
    });
  }
  dog.disarm();
  EXPECT_EQ(dog.trips(), 0u);
  EXPECT_FALSE(src.stop_requested());
}

TEST(Watchdog, IdlePoolIsNotAStall) {
  auto& pool = exec::thread_pool::global();
  exec::stop_source src;
  exec::Watchdog dog(pool, std::chrono::milliseconds(20));
  dog.arm(src.state());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  dog.disarm();
  EXPECT_EQ(dog.trips(), 0u);  // nothing was running: nothing stalled
  EXPECT_FALSE(src.stop_requested());
}

TEST(Watchdog, PoolProgressCountersAdvance) {
  auto& pool = exec::thread_pool::global();
  exec::stop_source src;  // install a token so the stripe loop beats
  exec::scoped_ambient_stop scope(src);
  const auto before = pool.progress_sum();
  const auto regions_before = pool.regions_done();
  exec::for_each_index(exec::par, 1u << 16, [](std::size_t) {});
  EXPECT_GT(pool.progress_sum(), before);
  EXPECT_GT(pool.regions_done(), regions_before);
  EXPECT_EQ(pool.active_regions(), 0u);
}

// ------------------------------------- pool shutdown regression (satellite)

TEST(PoolShutdown, AllRanksThrowingDoesNotDeadlockJoin) {
  FaultScope faults;
  support::arm_fault(FaultSite::pool_task, {1.0, 0, 0});  // every rank throws
  {
    exec::thread_pool pool(4);
    for (int round = 0; round < 3; ++round) {
      EXPECT_THROW(pool.run([](unsigned) {}), FaultInjected);
    }
    // Destructor joins here: with the shutdown-vs-pending-epoch race fixed,
    // the join completes even though every region ended in simultaneous
    // throws (the CTest TIMEOUT property is the deadlock detector).
  }
  support::disarm_all_faults();
  exec::thread_pool pool2(4);
  std::atomic<unsigned> ran{0};
  pool2.run([&](unsigned) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4u);
}

// ------------------------------------------- run_guarded deadline recovery

TEST(GuardedDeadlines, StepDeadlineWalksAccuracyRungs) {
  auto sys = workloads::plummer_sphere(512, 5);
  auto cfg = small_cfg();
  cfg.group_size = 0;
  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> sim(sys, cfg);
  core::GuardedOptions<double> opts;
  opts.checkpoint_every = 1;
  opts.max_retries = 3;
  opts.step_deadline_ms = 1e-4;  // 100ns: every attempt misses immediately
  // Entry policy seq => the policy ladder has no lower rung, so each retry
  // consumes one accuracy rung before the budget runs out.
  EXPECT_THROW(sim.run_guarded(exec::seq, 4, opts), std::runtime_error);
  EXPECT_GT(sim.config().theta, 0.6);                    // rung 0: loosened theta
  EXPECT_GE(sim.strategy().reuse_interval(), 4u);        // rung 1: reuse raised
  EXPECT_EQ(sim.config().group_size, 256u);              // rung 2: group mode
}

TEST(GuardedDeadlines, RunDeadlineThrowsWhenExhausted) {
  auto sys = workloads::plummer_sphere(2048, 5);
  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> sim(sys, small_cfg());
  core::GuardedOptions<double> opts;
  opts.run_deadline_ms = 1.0;  // far too little for 200 steps at N=2048
  opts.max_retries = 100;
  try {
    sim.run_guarded(exec::par, 200, opts);
    FAIL() << "expected the run deadline to exhaust";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("run deadline"), std::string::npos);
  }
}

TEST(GuardedDeadlines, GenerousDeadlinesAreInvisible) {
  auto sys = workloads::plummer_sphere(256, 21);
  const auto cfg = small_cfg();
  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> ref(sys, cfg);
  ref.run(exec::par, 8);
  ref.synchronize_velocities(exec::par);
  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> sim(sys, cfg);
  core::GuardedOptions<double> opts;
  opts.step_deadline_ms = 60000;
  opts.run_deadline_ms = 600000;
  opts.watchdog_ms = 10000;
  const auto rep = sim.run_guarded(exec::par, 8, opts);
  sim.synchronize_velocities(exec::par);
  EXPECT_EQ(rep.steps_completed, 8u);
  EXPECT_EQ(rep.retries_used, 0u);
  EXPECT_EQ(rep.deadline_misses, 0u);
  EXPECT_EQ(rep.watchdog_trips, 0u);
  EXPECT_LT(core::l2_position_error(sim.system(), ref.system()), 1e-9);
}

TEST(GuardedDeadlines, StepDeadlineReclaimsInjectedHang) {
  FaultScope faults;
  auto sys = workloads::plummer_sphere(1024, 7);
  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> sim(sys, small_cfg());
  // One wedge, no watchdog: the step deadline alone must reclaim it.
  support::arm_fault(FaultSite::chunk_hang, {1.0, 0, 1});
  core::GuardedOptions<double> opts;
  opts.checkpoint_every = 2;
  opts.max_retries = 4;
  opts.step_deadline_ms = 150;
  const auto rep = sim.run_guarded(exec::par, 6, opts);
  EXPECT_EQ(rep.steps_completed, 6u);
  EXPECT_GE(rep.deadline_misses, 1u);
  EXPECT_GE(rep.restores, 1u);
}

// ------------------------------------------------- E2E acceptance scenario

// With a worker hang injected mid-run (aimed past the early steps via the
// fault's skip field), run_guarded trips the watchdog, restores the
// checkpoint, completes within the run deadline, and the final trajectory
// matches an un-faulted seq run within the energy tolerance.
TEST(CancellationE2E, WatchdogReclaimsHangAndRunCompletes) {
  FaultScope faults;
  const std::size_t kSteps = 12;
  auto sys = workloads::plummer_sphere(2048, 29);
  const auto cfg = small_cfg();

  // Un-faulted seq reference.
  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> ref(sys, cfg);
  ref.run(exec::seq, kSteps);
  ref.synchronize_velocities(exec::seq);
  const auto e_ref = core::total_energy(exec::par, ref.system(), cfg.G, cfg.eps2());

  core::GuardedOptions<double> opts;
  opts.checkpoint_every = 2;
  opts.max_retries = 6;
  opts.watchdog_ms = 80;
  opts.run_deadline_ms = 120000;

  // Probe pass: count chunk evaluations per guarded step with the site armed
  // at rate 0 (counts, never fires), then aim one hang mid-run.
  {
    core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> probe(sys, cfg);
    support::arm_fault(FaultSite::chunk_hang, {0.0, 0, 0});
    probe.run_guarded(exec::par, 3, opts);
  }
  const std::uint64_t evals_3_steps = support::fault_evaluations(FaultSite::chunk_hang);
  ASSERT_GT(evals_3_steps, 0u);
  // Mid-4th-step: past 3 steps of evaluations plus half a step more — the
  // force phase dominates the chunk count, so this lands inside it.
  const std::uint64_t skip = evals_3_steps + evals_3_steps / 6;

  core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> sim(sys, cfg);
  support::arm_fault(FaultSite::chunk_hang, {1.0, 0, 1, skip});
  const auto t0 = std::chrono::steady_clock::now();
  const auto rep = sim.run_guarded(exec::par, kSteps, opts);
  const auto wall = std::chrono::steady_clock::now() - t0;
  sim.synchronize_velocities(exec::par);

  // steps_completed counts surviving attempts, so steps replayed after the
  // checkpoint restore count twice; net progress is steps_done().
  EXPECT_EQ(sim.steps_done(), kSteps);
  EXPECT_GE(rep.steps_completed, kSteps);
  EXPECT_EQ(support::fault_fires(FaultSite::chunk_hang), 1u);
  EXPECT_GE(rep.watchdog_trips, 1u);
  EXPECT_GE(rep.restores, 1u);
  EXPECT_LT(wall, std::chrono::milliseconds(static_cast<int>(opts.run_deadline_ms)));

  // Trajectory agreement with the un-faulted seq reference: tree topology
  // differs between par and seq builds, so exact bits are not expected —
  // energy and L2 position agreement are.
  const auto e_sim = core::total_energy(exec::par, sim.system(), cfg.G, cfg.eps2());
  EXPECT_LT(std::abs(e_sim.total() - e_ref.total()) / std::abs(e_ref.total()), 1e-6);
  EXPECT_LT(core::l2_position_error(sim.system(), ref.system()), 1e-6);
}

// ------------------------------- per-job watchdog isolation (satellite)

// Two concurrent guarded jobs on the shared global pool, one injected hang:
// only the wedged job's watchdog trips, and both jobs complete. With the
// old pool-global stall signature (progress summed across all regions), a
// concurrent healthy job's heartbeats masked the wedged job's frozen
// counters — per-job attribution through the ambient stop state is what
// makes the JobServer's fault isolation sound.
TEST(CancellationE2E, ConcurrentJobsWatchdogTripsOnlyTheWedgedOne) {
  FaultScope faults;
  const auto cfg = small_cfg();
  support::arm_fault(FaultSite::chunk_hang, {1.0, 0, 1});
  core::GuardedOptions<double> opts;
  opts.checkpoint_every = 2;
  opts.max_retries = 6;
  opts.watchdog_ms = 80;
  std::atomic<int> ready{0};
  core::GuardedRunReport reps[2];
  std::size_t steps_done[2] = {0, 0};
  auto job = [&](int slot) {
    auto sys = workloads::plummer_sphere(512, 17 + static_cast<std::uint64_t>(slot));
    core::Simulation<double, 3, octree::OctreeStrategy<double, 3>> sim(sys, cfg);
    ready.fetch_add(1);
    while (ready.load() < 2) std::this_thread::yield();
    reps[slot] = sim.run_guarded(exec::par, 6, opts);
    steps_done[slot] = sim.steps_done();
  };
  std::thread a(job, 0), b(job, 1);
  a.join();
  b.join();
  EXPECT_EQ(steps_done[0], 6u);
  EXPECT_EQ(steps_done[1], 6u);
  EXPECT_EQ(support::fault_fires(FaultSite::chunk_hang), 1u);
  const unsigned t0 = reps[0].watchdog_trips, t1 = reps[1].watchdog_trips;
  EXPECT_GE(t0 + t1, 1u) << "the wedged job must be reclaimed by its own watchdog";
  EXPECT_EQ(std::min(t0, t1), 0u)
      << "the healthy job's watchdog must not trip on the other job's stall";
}

}  // namespace
