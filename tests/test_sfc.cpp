// Tests for the space-filling-curve module: Morton bit interleaving,
// Skilling's Hilbert transform (paper Sec. IV-B [17]), and the position ->
// grid mapper. The Hilbert properties checked are the ones HilbertSort
// relies on: bijectivity (sorting is a permutation) and unit-step adjacency
// (consecutive curve indices are neighboring cells — the locality that makes
// the sorted order tree-friendly).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "math/aabb.hpp"
#include "sfc/grid.hpp"
#include "sfc/hilbert.hpp"
#include "sfc/morton.hpp"
#include "core/bbox.hpp"
#include "sfc/reorder.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace nbody::sfc;

// ---------------------------------------------------------------- morton

TEST(Morton, Encode2dKnownValues) {
  std::uint32_t c00[2] = {0, 0};
  std::uint32_t c10[2] = {1, 0};
  std::uint32_t c01[2] = {0, 1};
  std::uint32_t c11[2] = {1, 1};
  EXPECT_EQ(morton_encode<2>(c00), 0u);
  EXPECT_EQ(morton_encode<2>(c10), 1u);
  EXPECT_EQ(morton_encode<2>(c01), 2u);
  EXPECT_EQ(morton_encode<2>(c11), 3u);
}

TEST(Morton, Encode3dKnownValues) {
  std::uint32_t c[3] = {1, 0, 0};
  EXPECT_EQ(morton_encode<3>(c), 1u);
  std::uint32_t cy[3] = {0, 1, 0};
  EXPECT_EQ(morton_encode<3>(cy), 2u);
  std::uint32_t cz[3] = {0, 0, 1};
  EXPECT_EQ(morton_encode<3>(cz), 4u);
  std::uint32_t call[3] = {1, 1, 1};
  EXPECT_EQ(morton_encode<3>(call), 7u);
}

TEST(Morton, RoundTrip2d) {
  nbody::support::Xoshiro256ss rng(1);
  for (int i = 0; i < 2000; ++i) {
    std::uint32_t c[2] = {static_cast<std::uint32_t>(rng.next()),
                          static_cast<std::uint32_t>(rng.next())};
    std::uint32_t out[2];
    morton_decode<2>(morton_encode<2>(c), out);
    EXPECT_EQ(out[0], c[0]);
    EXPECT_EQ(out[1], c[1]);
  }
}

TEST(Morton, RoundTrip3d) {
  nbody::support::Xoshiro256ss rng(2);
  for (int i = 0; i < 2000; ++i) {
    std::uint32_t c[3] = {static_cast<std::uint32_t>(rng.next()) & 0x1fffff,
                          static_cast<std::uint32_t>(rng.next()) & 0x1fffff,
                          static_cast<std::uint32_t>(rng.next()) & 0x1fffff};
    std::uint32_t out[3];
    morton_decode<3>(morton_encode<3>(c), out);
    EXPECT_EQ(out[0], c[0]);
    EXPECT_EQ(out[1], c[1]);
    EXPECT_EQ(out[2], c[2]);
  }
}

TEST(Morton, MonotonicPerAxis) {
  // Growing one coordinate never decreases the Morton key.
  for (std::uint32_t x = 0; x < 64; ++x) {
    std::uint32_t a[2] = {x, 17};
    std::uint32_t b[2] = {x + 1, 17};
    EXPECT_LT(morton_encode<2>(a), morton_encode<2>(b));
  }
}

// ---------------------------------------------------------------- hilbert

template <std::size_t D>
struct HilbertDims {
  static constexpr std::size_t dim = D;
};

TEST(Hilbert, Bits1Order2dIsGrayCodeSquare) {
  // The 2x2 first-order Hilbert curve visits (0,0),(0,1),(1,1),(1,0).
  std::array<std::uint32_t, 2> expect_x[4] = {{{0, 0}}, {{0, 1}}, {{1, 1}}, {{1, 0}}};
  for (std::uint64_t h = 0; h < 4; ++h) {
    const auto c = hilbert_decode<2>(h, 1);
    EXPECT_EQ(c, expect_x[h]) << "h=" << h;
  }
}

class HilbertBijection2d : public ::testing::TestWithParam<unsigned> {};

TEST_P(HilbertBijection2d, EveryCellVisitedExactlyOnce) {
  const unsigned bits = GetParam();
  const std::uint64_t cells = 1ull << (2 * bits);
  std::set<std::array<std::uint32_t, 2>> seen;
  for (std::uint64_t h = 0; h < cells; ++h) {
    seen.insert(hilbert_decode<2>(h, bits));
  }
  EXPECT_EQ(seen.size(), cells);
}

INSTANTIATE_TEST_SUITE_P(Orders, HilbertBijection2d, ::testing::Values(1u, 2u, 3u, 4u, 5u));

class HilbertAdjacency2d : public ::testing::TestWithParam<unsigned> {};

TEST_P(HilbertAdjacency2d, ConsecutiveIndicesAreGridNeighbors) {
  const unsigned bits = GetParam();
  const std::uint64_t cells = 1ull << (2 * bits);
  auto prev = hilbert_decode<2>(0, bits);
  for (std::uint64_t h = 1; h < cells; ++h) {
    const auto cur = hilbert_decode<2>(h, bits);
    const std::uint64_t manhattan =
        (cur[0] > prev[0] ? cur[0] - prev[0] : prev[0] - cur[0]) +
        (cur[1] > prev[1] ? cur[1] - prev[1] : prev[1] - cur[1]);
    EXPECT_EQ(manhattan, 1u) << "step " << h;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, HilbertAdjacency2d, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

class HilbertAdjacency3d : public ::testing::TestWithParam<unsigned> {};

TEST_P(HilbertAdjacency3d, ConsecutiveIndicesAreGridNeighbors) {
  const unsigned bits = GetParam();
  const std::uint64_t cells = 1ull << (3 * bits);
  auto prev = hilbert_decode<3>(0, bits);
  for (std::uint64_t h = 1; h < cells; ++h) {
    const auto cur = hilbert_decode<3>(h, bits);
    std::uint64_t manhattan = 0;
    for (int d = 0; d < 3; ++d)
      manhattan += cur[d] > prev[d] ? cur[d] - prev[d] : prev[d] - cur[d];
    EXPECT_EQ(manhattan, 1u) << "step " << h;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, HilbertAdjacency3d, ::testing::Values(1u, 2u, 3u, 4u));

TEST(Hilbert, RoundTrip2dRandom) {
  nbody::support::Xoshiro256ss rng(3);
  for (int i = 0; i < 2000; ++i) {
    const unsigned bits = 1 + static_cast<unsigned>(rng.next() % 32);
    const std::uint32_t mask = bits == 32 ? 0xFFFFFFFFu : ((1u << bits) - 1);
    std::array<std::uint32_t, 2> c = {static_cast<std::uint32_t>(rng.next()) & mask,
                                      static_cast<std::uint32_t>(rng.next()) & mask};
    const auto back = hilbert_decode<2>(hilbert_encode<2>(c, bits), bits);
    EXPECT_EQ(back, c) << "bits=" << bits;
  }
}

TEST(Hilbert, RoundTrip3dRandom) {
  nbody::support::Xoshiro256ss rng(4);
  for (int i = 0; i < 2000; ++i) {
    const unsigned bits = 1 + static_cast<unsigned>(rng.next() % 21);
    const std::uint32_t mask = (1u << bits) - 1;
    std::array<std::uint32_t, 3> c = {static_cast<std::uint32_t>(rng.next()) & mask,
                                      static_cast<std::uint32_t>(rng.next()) & mask,
                                      static_cast<std::uint32_t>(rng.next()) & mask};
    const auto back = hilbert_decode<3>(hilbert_encode<3>(c, bits), bits);
    EXPECT_EQ(back, c) << "bits=" << bits;
  }
}

TEST(Hilbert, TransposePackingRoundTrip) {
  nbody::support::Xoshiro256ss rng(5);
  for (int i = 0; i < 1000; ++i) {
    const unsigned bits = 1 + static_cast<unsigned>(rng.next() % 21);
    const std::uint64_t key = rng.next() & ((bits * 3 >= 64) ? ~0ull : ((1ull << (bits * 3)) - 1));
    const auto t = key_to_transpose<3>(key, bits);
    EXPECT_EQ(transpose_to_key<3>(t, bits), key);
  }
}

TEST(Hilbert, KeyRangeIsDense) {
  // encode covers exactly [0, 2^(D*bits)).
  const unsigned bits = 3;
  std::set<std::uint64_t> keys;
  for (std::uint32_t x = 0; x < 8; ++x)
    for (std::uint32_t y = 0; y < 8; ++y)
      keys.insert(hilbert_encode<2>({x, y}, bits));
  EXPECT_EQ(keys.size(), 64u);
  EXPECT_EQ(*keys.begin(), 0u);
  EXPECT_EQ(*keys.rbegin(), 63u);
}

TEST(Hilbert, LocalityBeatsRowMajorOrder) {
  // Average Euclidean jump between curve-consecutive cells: Hilbert == 1 by
  // adjacency; row-major order jumps across the row boundary. This is the
  // property that makes Hilbert the right sort key for the BVH.
  const unsigned bits = 4;
  const std::uint32_t side = 1u << bits;
  double hilbert_total = 0.0;
  auto prev = hilbert_decode<2>(0, bits);
  for (std::uint64_t h = 1; h < side * side; ++h) {
    const auto cur = hilbert_decode<2>(h, bits);
    const double dx = static_cast<double>(cur[0]) - prev[0];
    const double dy = static_cast<double>(cur[1]) - prev[1];
    hilbert_total += std::sqrt(dx * dx + dy * dy);
    prev = cur;
  }
  double rowmajor_total = 0.0;
  for (std::uint64_t i = 1; i < side * side; ++i) {
    const double dx = static_cast<double>(i % side) - static_cast<double>((i - 1) % side);
    const double dy = static_cast<double>(i / side) - static_cast<double>((i - 1) / side);
    rowmajor_total += std::sqrt(dx * dx + dy * dy);
  }
  EXPECT_LT(hilbert_total, rowmajor_total);
}

// ---------------------------------------------------------------- grid mapper

TEST(GridMapper, MapsCornersToExtremeCells) {
  const nbody::math::aabb3d box{{{0, 0, 0}}, {{1, 1, 1}}};
  const GridMapper<double, 3> grid(box, 4);
  const auto lo = grid.cell_of({{0, 0, 0}});
  const auto hi = grid.cell_of({{1, 1, 1}});
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(lo[d], 0u);
    EXPECT_EQ(hi[d], 15u);  // clamped into the last cell
  }
}

TEST(GridMapper, ClampsOutOfBoxPoints) {
  const nbody::math::aabb3d box{{{0, 0, 0}}, {{1, 1, 1}}};
  const GridMapper<double, 3> grid(box, 4);
  const auto below = grid.cell_of({{-5, -5, -5}});
  const auto above = grid.cell_of({{9, 9, 9}});
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(below[d], 0u);
    EXPECT_EQ(above[d], 15u);
  }
}

TEST(GridMapper, DegenerateAxisMapsToCellZero) {
  // All bodies share z: the z-axis has zero extent.
  const nbody::math::aabb3d box{{{0, 0, 5}}, {{1, 1, 5}}};
  const GridMapper<double, 3> grid(box, 4);
  EXPECT_EQ(grid.cell_of({{0.5, 0.5, 5}})[2], 0u);
}

TEST(GridMapper, HilbertKeysOrderNeighborsTogether) {
  const nbody::math::aabb2d box{{{0, 0}}, {{1, 1}}};
  const GridMapper<double, 2> grid(box, 8);
  // Two nearby points get closer keys than two distant points, typically.
  const auto kA = grid.hilbert_key({{0.1, 0.1}});
  const auto kB = grid.hilbert_key({{0.1001, 0.1001}});
  const auto kC = grid.hilbert_key({{0.9, 0.9}});
  const auto dAB = kA > kB ? kA - kB : kB - kA;
  const auto dAC = kA > kC ? kA - kC : kC - kA;
  EXPECT_LT(dAB, dAC);
}

TEST(GridMapper, RejectsEmptyBox) {
  EXPECT_THROW((GridMapper<double, 3>(nbody::math::aabb3d{}, 4)), std::invalid_argument);
}

TEST(GridMapper, RejectsBadBits) {
  const nbody::math::aabb3d box{{{0, 0, 0}}, {{1, 1, 1}}};
  EXPECT_THROW((GridMapper<double, 3>(box, 0)), std::invalid_argument);
  EXPECT_THROW((GridMapper<double, 3>(box, 22)), std::invalid_argument);  // 3*22 > 64
}

TEST(GridMapper, MortonKeyMatchesManualInterleave) {
  const nbody::math::aabb2d box{{{0, 0}}, {{1, 1}}};
  const GridMapper<double, 2> grid(box, 2);
  // Point in cell (1, 0) of a 4x4 grid -> morton key 1 at those low bits.
  const auto k = grid.morton_key({{0.3, 0.1}});
  std::uint32_t c[2] = {grid.cell_of({{0.3, 0.1}})[0], grid.cell_of({{0.3, 0.1}})[1]};
  EXPECT_EQ(k, morton_encode<2>(c));
}

// ---------------------------------------------------------------- reorder

TEST(Reorder, KeysComeBackSortedAndSystemPermuted) {
  auto sys = nbody::workloads::plummer_sphere(2000, 19);
  const auto original = sys;
  const auto box = nbody::core::compute_bounding_box(nbody::exec::par, sys.x);
  const auto keys = reorder_system(nbody::exec::par, sys, box);
  ASSERT_EQ(keys.size(), sys.size());
  for (std::size_t i = 1; i < keys.size(); ++i) EXPECT_LE(keys[i - 1], keys[i]);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    EXPECT_EQ(sys.x[i], original.x[sys.id[i]]);
    EXPECT_EQ(sys.m[i], original.m[sys.id[i]]);
    EXPECT_EQ(sys.v[i], original.v[sys.id[i]]);
  }
}

TEST(Reorder, RadixAndComparisonAgree) {
  auto a = nbody::workloads::plummer_sphere(3000, 20);
  auto b = a;
  const auto box = nbody::core::compute_bounding_box(nbody::exec::par, a.x);
  reorder_system(nbody::exec::par, a, box, KeyKind::hilbert, SortAlgo::comparison);
  reorder_system(nbody::exec::par, b, box, KeyKind::hilbert, SortAlgo::radix);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.id[i], b.id[i]) << i;
}

TEST(Reorder, MortonKeysAlsoSorted) {
  auto sys = nbody::workloads::plummer_sphere(1000, 21);
  const auto box = nbody::core::compute_bounding_box(nbody::exec::par, sys.x);
  const auto keys = reorder_system(nbody::exec::par, sys, box, KeyKind::morton);
  for (std::size_t i = 1; i < keys.size(); ++i) EXPECT_LE(keys[i - 1], keys[i]);
}

TEST(Reorder, EmptySystem) {
  nbody::core::System<double, 3> sys;
  const auto keys = reorder_system(nbody::exec::par, sys,
                                   nbody::math::aabb3d::cube({{0, 0, 0}}, 1.0));
  EXPECT_TRUE(keys.empty());
}

}  // namespace
