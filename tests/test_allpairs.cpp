// Tests for the O(N^2) baselines: AllPairs (par_unseq over bodies) and
// AllPairsCol (par over pairs with atomic accumulation), plus the triangular
// pair-index decoding.
#include <gtest/gtest.h>

#include <vector>

#include "allpairs/allpairs.hpp"
#include "core/reference.hpp"
#include "core/system.hpp"
#include "workloads/workloads.hpp"

namespace {

using nbody::exec::par;
using nbody::exec::par_unseq;
using nbody::exec::seq;
using vec3 = nbody::math::vec3d;

// ---------------------------------------------------------------- pair index

TEST(PairIndex, EnumeratesStrictUpperTriangle) {
  for (std::size_t n : {2u, 3u, 5u, 17u, 100u}) {
    const std::size_t pairs = n * (n - 1) / 2;
    std::size_t p = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j, ++p) {
        const auto [di, dj] = nbody::allpairs::detail::pair_from_index(p, n);
        EXPECT_EQ(di, i) << "n=" << n << " p=" << p;
        EXPECT_EQ(dj, j) << "n=" << n << " p=" << p;
      }
    }
    EXPECT_EQ(p, pairs);
  }
}

TEST(PairIndex, LargeNBoundaries) {
  const std::size_t n = 100'000;
  const std::size_t pairs = n * (n - 1) / 2;
  // First, last, and a handful of interior indices decode consistently.
  for (std::size_t p : {std::size_t{0}, std::size_t{1}, pairs / 3, pairs / 2, pairs - 1}) {
    const auto [i, j] = nbody::allpairs::detail::pair_from_index(p, n);
    EXPECT_LT(i, j);
    EXPECT_LT(j, n);
    // Re-encode: row_start(i) + (j - i - 1) == p.
    const std::size_t row_start = i * (n - 1) - i * (i - 1) / 2;
    EXPECT_EQ(row_start + (j - i - 1), p);
  }
}

// ---------------------------------------------------------------- all-pairs

TEST(AllPairs, MatchesReferenceExactly) {
  auto sys = nbody::workloads::plummer_sphere(300, 1);
  nbody::core::SimConfig<double> cfg;
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  nbody::allpairs::AllPairs<double, 3> strat;
  nbody::core::accelerate(strat, par_unseq, sys, cfg);
  for (std::size_t i = 0; i < sys.size(); ++i)
    for (int d = 0; d < 3; ++d) EXPECT_DOUBLE_EQ(sys.a[i][d], ref.a[i][d]) << i;
}

TEST(AllPairs, SeqMatchesPar) {
  auto s1 = nbody::workloads::plummer_sphere(200, 2);
  auto s2 = s1;
  nbody::core::SimConfig<double> cfg;
  nbody::allpairs::AllPairs<double, 3> strat;
  nbody::core::accelerate(strat, seq, s1, cfg);
  nbody::core::accelerate(strat, par_unseq, s2, cfg);
  for (std::size_t i = 0; i < s1.size(); ++i) EXPECT_EQ(s1.a[i], s2.a[i]);
}

TEST(AllPairs, EmptyAndSingle) {
  nbody::core::System<double, 3> sys;
  nbody::core::SimConfig<double> cfg;
  nbody::allpairs::AllPairs<double, 3> strat;
  nbody::core::accelerate(strat, par_unseq, sys, cfg);  // empty: no-op
  sys.add(1.0, {{0, 0, 0}}, vec3::zero());
  nbody::core::accelerate(strat, par_unseq, sys, cfg);
  EXPECT_EQ(sys.a[0], vec3::zero());
}

TEST(AllPairs, TwoDimensional) {
  nbody::core::System<double, 2> sys;
  sys.add(1.0, {{0, 0}}, nbody::math::vec2d::zero());
  sys.add(4.0, {{2, 0}}, nbody::math::vec2d::zero());
  nbody::core::SimConfig<double> cfg;
  cfg.softening = 0.0;
  nbody::allpairs::AllPairs<double, 2> strat;
  nbody::core::accelerate(strat, par_unseq, sys, cfg);
  EXPECT_NEAR(sys.a[0][0], 1.0, 1e-12);
  EXPECT_NEAR(sys.a[1][0], -0.25, 1e-12);
}

// ---------------------------------------------------------------- all-pairs-col

TEST(AllPairsCol, MatchesAllPairsWithinRounding) {
  auto sys_a = nbody::workloads::plummer_sphere(300, 3);
  auto sys_b = sys_a;
  nbody::core::SimConfig<double> cfg;
  nbody::allpairs::AllPairs<double, 3> a;
  nbody::allpairs::AllPairsCol<double, 3> b;
  nbody::core::accelerate(a, par_unseq, sys_a, cfg);
  nbody::core::accelerate(b, par, sys_b, cfg);
  for (std::size_t i = 0; i < sys_a.size(); ++i) {
    for (int d = 0; d < 3; ++d)
      EXPECT_NEAR(sys_a.a[i][d], sys_b.a[i][d],
                  1e-10 * std::max(1.0, std::abs(sys_a.a[i][d])))
          << i;
  }
}

TEST(AllPairsCol, HandlesMasslessBodies) {
  // Newton's-third-law accumulation must not divide by a zero mass.
  nbody::core::System<double, 3> sys;
  sys.add(5.0, {{0, 0, 0}}, vec3::zero());
  sys.add(0.0, {{1, 0, 0}}, vec3::zero());
  nbody::core::SimConfig<double> cfg;
  cfg.softening = 0.0;
  nbody::allpairs::AllPairsCol<double, 3> strat;
  nbody::core::accelerate(strat, par, sys, cfg);
  EXPECT_NEAR(sys.a[1][0], -5.0, 1e-12);  // tracer attracted
  EXPECT_NEAR(sys.a[0][0], 0.0, 1e-12);   // nothing back
}

TEST(AllPairsCol, MomentumNeutralAccumulation) {
  // sum(m a) == 0 exactly up to rounding: each pair adds equal and opposite.
  auto sys = nbody::workloads::plummer_sphere(400, 4);
  nbody::core::SimConfig<double> cfg;
  nbody::allpairs::AllPairsCol<double, 3> strat;
  nbody::core::accelerate(strat, par, sys, cfg);
  vec3 net = vec3::zero();
  for (std::size_t i = 0; i < sys.size(); ++i) net += sys.a[i] * sys.m[i];
  EXPECT_LT(norm(net), 1e-9);
}

TEST(AllPairsCol, SeqPolicyWorks) {
  auto sys = nbody::workloads::plummer_sphere(100, 5);
  nbody::core::SimConfig<double> cfg;
  nbody::allpairs::AllPairsCol<double, 3> strat;
  nbody::core::accelerate(strat, seq, sys, cfg);
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  for (std::size_t i = 0; i < sys.size(); ++i)
    for (int d = 0; d < 3; ++d) EXPECT_NEAR(sys.a[i][d], ref.a[i][d], 1e-10);
}

template <class P>
constexpr bool col_accepts = requires(nbody::allpairs::AllPairsCol<double, 3> c,
                                      nbody::core::System<double, 3> s,
                                      nbody::core::SimConfig<double> cfg) {
  nbody::core::accelerate(c, P{}, s, cfg);
};

TEST(AllPairsCol, RejectsParUnseqAtCompileTime) {
  // Atomic accumulation is vectorization-unsafe: the strategy only accepts
  // policies with parallel forward progress.
  static_assert(col_accepts<nbody::exec::parallel_policy>);
  static_assert(col_accepts<nbody::exec::sequenced_policy>);
  static_assert(!col_accepts<nbody::exec::parallel_unsequenced_policy>);
  EXPECT_TRUE(col_accepts<nbody::exec::parallel_policy>);
  EXPECT_FALSE(col_accepts<nbody::exec::parallel_unsequenced_policy>);
}

TEST(AllPairsCol, ClearsStaleAccelerations) {
  auto sys = nbody::workloads::plummer_sphere(50, 6);
  for (auto& a : sys.a) a = {{1e9, 1e9, 1e9}};  // garbage from a prior step
  nbody::core::SimConfig<double> cfg;
  nbody::allpairs::AllPairsCol<double, 3> strat;
  nbody::core::accelerate(strat, par, sys, cfg);
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  for (std::size_t i = 0; i < sys.size(); ++i)
    for (int d = 0; d < 3; ++d) EXPECT_NEAR(sys.a[i][d], ref.a[i][d], 1e-9);
}

// ---------------------------------------------------------------- tiled

TEST(AllPairsTiled, MatchesAllPairsExactly) {
  // Tiling only reorders the j loop in contiguous ascending blocks, so the
  // accumulation order — and therefore every bit — is identical.
  auto sys_a = nbody::workloads::plummer_sphere(400, 8);
  auto sys_b = sys_a;
  nbody::core::SimConfig<double> cfg;
  nbody::allpairs::AllPairs<double, 3> plain;
  nbody::allpairs::AllPairsTiled<double, 3> tiled(64);
  nbody::core::accelerate(plain, par_unseq, sys_a, cfg);
  nbody::core::accelerate(tiled, par_unseq, sys_b, cfg);
  for (std::size_t i = 0; i < sys_a.size(); ++i) EXPECT_EQ(sys_a.a[i], sys_b.a[i]) << i;
}

TEST(AllPairsTiled, TileSizesAllAgree) {
  auto base = nbody::workloads::plummer_sphere(300, 9);
  nbody::core::SimConfig<double> cfg;
  nbody::allpairs::AllPairs<double, 3> plain;
  auto want = base;
  nbody::core::accelerate(plain, par_unseq, want, cfg);
  for (std::size_t tile : {1u, 7u, 64u, 1024u}) {
    auto sys = base;
    nbody::allpairs::AllPairsTiled<double, 3> tiled(tile);
    nbody::core::accelerate(tiled, par_unseq, sys, cfg);
    for (std::size_t i = 0; i < sys.size(); ++i) EXPECT_EQ(sys.a[i], want.a[i]) << tile;
  }
}

TEST(AllPairsTiled, RejectsZeroTile) {
  EXPECT_THROW((nbody::allpairs::AllPairsTiled<double, 3>(0)), std::invalid_argument);
}

}  // namespace
