// Tests for the Concurrent Octree (paper Sec. IV-A): structural invariants
// of the parallel build, the multipole tree reduction, the stackless force
// DFS, and robustness cases the paper leaves implicit (pool overflow
// retries, coincident bodies, empty/singleton systems).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include <atomic>

#include "core/bbox.hpp"
#include "exec/thread_pool.hpp"
#include "core/diagnostics.hpp"
#include "core/reference.hpp"
#include "core/system.hpp"
#include "exec/algorithms.hpp"
#include "math/gravity.hpp"
#include "octree/concurrent_octree.hpp"
#include "octree/strategy.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using nbody::exec::par;
using nbody::exec::seq;
using Octree3 = nbody::octree::ConcurrentOctree<double, 3>;
using Octree2 = nbody::octree::ConcurrentOctree<double, 2>;
using vec3 = nbody::math::vec3d;
using vec2 = nbody::math::vec2d;

std::vector<vec3> random_positions(std::size_t n, std::uint64_t seed = 1) {
  nbody::support::Xoshiro256ss rng(seed);
  std::vector<vec3> x(n);
  for (auto& p : x) p = {{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)}};
  return x;
}

// Walks the tree recursively, checking structural invariants and collecting
// every body reachable from a leaf.
template <class Tree, class Vec>
void walk(const Tree& tree, std::uint32_t node, const nbody::math::aabb<double, Vec::dim>& box,
          const std::vector<Vec>& x, std::multiset<std::uint32_t>& bodies,
          std::size_t& node_visits) {
  ++node_visits;
  const std::uint32_t v = tree.slot(node);
  ASSERT_NE(v, Tree::kLocked) << "lock leaked past build";
  if (Tree::is_internal(v)) {
    // Child groups are group-aligned and inside the issued index range.
    // (Chunked arena allocation means child indices are NOT ordered
    // relative to the parent — the stackless DFS climbs via parent_ only.)
    ASSERT_EQ((v - 1) % Tree::K, 0u);
    ASSERT_NE(v, node);
    ASSERT_LT(v + Tree::K - 1, tree.node_index_end());
    // The children's group must point back at this node.
    ASSERT_EQ(tree.parent_of_group(Tree::group_of(v)), node);
    for (unsigned q = 0; q < Tree::K; ++q)
      walk(tree, v + q, box.child_box(q), x, bodies, node_visits);
    return;
  }
  for (std::uint32_t b : tree.chain(v)) {
    bodies.insert(b);
    EXPECT_TRUE(box.contains(x[b])) << "body " << b << " outside its leaf box";
  }
}

template <class Tree, class Vec>
void check_tree_invariants(const Tree& tree, const std::vector<Vec>& x) {
  std::multiset<std::uint32_t> bodies;
  std::size_t visits = 0;
  walk(tree, 0, tree.root_box(), x, bodies, visits);
  // Every body inserted exactly once.
  ASSERT_EQ(bodies.size(), x.size());
  for (std::uint32_t b = 0; b < x.size(); ++b) EXPECT_EQ(bodies.count(b), 1u) << b;
  // Every live node reachable exactly once (arena holes are not live).
  EXPECT_EQ(visits, tree.node_count());
}

// ---------------------------------------------------------------- build

TEST(OctreeBuild, EmptySystem) {
  Octree3 tree;
  std::vector<vec3> x;
  tree.build(par, x, nbody::math::aabb3d::cube(vec3::zero(), 1.0));
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_TRUE(Octree3::is_empty(tree.slot(0)));
}

TEST(OctreeBuild, SingleBody) {
  Octree3 tree;
  std::vector<vec3> x = {{{0.25, 0.25, 0.25}}};
  tree.build(par, x, nbody::math::aabb3d::cube(vec3::zero(), 1.0));
  EXPECT_EQ(tree.node_count(), 1u);
  ASSERT_TRUE(Octree3::is_body(tree.slot(0)));
  EXPECT_EQ(Octree3::body_of(tree.slot(0)), 0u);
}

TEST(OctreeBuild, TwoBodiesSubdivideRoot) {
  Octree3 tree;
  std::vector<vec3> x = {{{-0.5, -0.5, -0.5}}, {{0.5, 0.5, 0.5}}};
  tree.build(par, x, nbody::math::aabb3d::cube(vec3::zero(), 1.0));
  ASSERT_TRUE(Octree3::is_internal(tree.slot(0)));
  EXPECT_EQ(tree.node_count(), 1u + Octree3::K);
  check_tree_invariants(tree, x);
}

class OctreeBuildSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OctreeBuildSizes, InvariantsHoldPar) {
  const std::size_t n = GetParam();
  const auto x = random_positions(n, n);
  Octree3 tree;
  tree.build(par, x, nbody::core::compute_root_cube(par, x));
  check_tree_invariants(tree, x);
}

TEST_P(OctreeBuildSizes, InvariantsHoldSeq) {
  const std::size_t n = GetParam();
  const auto x = random_positions(n, n + 1);
  Octree3 tree;
  tree.build(seq, x, nbody::core::compute_root_cube(seq, x));
  check_tree_invariants(tree, x);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OctreeBuildSizes,
                         ::testing::Values(3, 10, 64, 257, 1000, 5000, 20000));

TEST(OctreeBuild, QuadtreeInvariants2d) {
  nbody::support::Xoshiro256ss rng(9);
  std::vector<vec2> x(3000);
  for (auto& p : x) p = {{rng.uniform(-2, 2), rng.uniform(-2, 2)}};
  Octree2 tree;
  tree.build(par, x, nbody::core::compute_root_cube(par, x));
  check_tree_invariants(tree, x);
}

TEST(OctreeBuild, CoincidentBodiesChainAtMaxDepth) {
  // 50 bodies at the exact same point: subdivision can never separate them;
  // the max-depth list leaf must absorb them all.
  std::vector<vec3> x(50, vec3{{0.1, 0.2, 0.3}});
  Octree3 tree;
  tree.build(par, x, nbody::math::aabb3d::cube(vec3::zero(), 1.0));
  check_tree_invariants(tree, x);
  // Exactly one non-empty leaf, holding all 50 bodies.
  std::size_t chained = 0;
  for (std::uint32_t node = 0; node < tree.node_index_end(); ++node) {
    const auto c = tree.chain(tree.slot(node));
    if (!c.empty()) {
      EXPECT_EQ(c.size(), 50u);
      ++chained;
    }
  }
  EXPECT_EQ(chained, 1u);
}

TEST(OctreeBuild, NearCoincidentClusters) {
  // Tight clusters force deep subdivision without hitting max depth.
  nbody::support::Xoshiro256ss rng(12);
  std::vector<vec3> x;
  for (int c = 0; c < 5; ++c) {
    const vec3 center{{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)}};
    for (int i = 0; i < 40; ++i)
      x.push_back(center + vec3{{rng.uniform(-1e-7, 1e-7), rng.uniform(-1e-7, 1e-7),
                                 rng.uniform(-1e-7, 1e-7)}});
  }
  Octree3 tree;
  tree.build(par, x, nbody::core::compute_root_cube(par, x));
  check_tree_invariants(tree, x);
}

TEST(OctreeBuild, OverflowRetriesWithLargerPool) {
  // Start with a pathologically small pool: build must retry, not corrupt.
  Octree3::Params tiny;
  tiny.min_capacity = 8;
  tiny.capacity_factor = 0.0;
  Octree3 tree(tiny);
  const auto x = random_positions(2000, 4);
  tree.build(par, x, nbody::core::compute_root_cube(par, x));
  check_tree_invariants(tree, x);
  EXPECT_GT(tree.capacity(), 8u);
}

TEST(OctreeBuild, RebuildReusesTreeObject) {
  Octree3 tree;
  for (int rep = 0; rep < 3; ++rep) {
    const auto x = random_positions(500 + 100 * rep, rep);
    tree.build(par, x, nbody::core::compute_root_cube(par, x));
    check_tree_invariants(tree, x);
  }
}

TEST(OctreeBuild, DeterministicStructureSeqVsPar) {
  // The tree *shape* (parent/child containment) is insertion-order
  // independent; compare leaf body sets between seq and par builds.
  const auto x = random_positions(2000, 21);
  const auto box = nbody::core::compute_root_cube(seq, x);
  Octree3 a, b;
  a.build(seq, x, box);
  b.build(par, x, box);
  // Same node count: the structure is unique for distinct positions.
  EXPECT_EQ(a.node_count(), b.node_count());
}

// ---------------------------------------------------------------- multipoles

TEST(OctreeMultipole, RootHoldsTotalMassAndCom) {
  const auto sys = nbody::workloads::plummer_sphere(3000, 5);
  Octree3 tree;
  tree.build(par, sys.x, nbody::core::compute_root_cube(par, sys.x));
  tree.compute_multipoles(par, sys.m, sys.x);
  double mass = 0;
  vec3 weighted = vec3::zero();
  for (std::size_t i = 0; i < sys.size(); ++i) {
    mass += sys.m[i];
    weighted += sys.x[i] * sys.m[i];
  }
  EXPECT_NEAR(tree.node_mass(0), mass, 1e-12 * mass);
  const vec3 com = weighted / mass;
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(tree.node_com(0)[d], com[d], 1e-9);
}

TEST(OctreeMultipole, InternalNodesEqualSumOfChildren) {
  const auto x = random_positions(4000, 8);
  std::vector<double> m(x.size());
  nbody::support::Xoshiro256ss rng(8);
  for (auto& mm : m) mm = rng.uniform(0.1, 2.0);
  Octree3 tree;
  tree.build(par, x, nbody::core::compute_root_cube(par, x));
  tree.compute_multipoles(par, m, x);
  for (std::uint32_t node = 0; node < tree.node_index_end(); ++node) {
    const std::uint32_t v = tree.slot(node);
    if (!Octree3::is_internal(v)) continue;
    double kids = 0;
    for (unsigned q = 0; q < Octree3::K; ++q) kids += tree.node_mass(v + q);
    EXPECT_NEAR(tree.node_mass(node), kids, 1e-9 * std::max(1.0, kids)) << node;
  }
}

TEST(OctreeMultipole, EmptyLeavesHaveZeroMass) {
  std::vector<vec3> x = {{{-0.5, -0.5, -0.5}}, {{0.5, 0.5, 0.5}}};
  std::vector<double> m = {1.0, 2.0};
  Octree3 tree;
  tree.build(par, x, nbody::math::aabb3d::cube(vec3::zero(), 1.0));
  tree.compute_multipoles(par, m, x);
  const std::uint32_t first = tree.slot(0);
  ASSERT_TRUE(Octree3::is_internal(first));
  int empties = 0;
  for (unsigned q = 0; q < Octree3::K; ++q) {
    if (Octree3::is_empty(tree.slot(first + q))) {
      ++empties;
      EXPECT_DOUBLE_EQ(tree.node_mass(first + q), 0.0);
    }
  }
  EXPECT_EQ(empties, 6);
  EXPECT_DOUBLE_EQ(tree.node_mass(0), 3.0);
}

TEST(OctreeMultipole, ParMatchesSeqWithinTolerance) {
  const auto sys = nbody::workloads::plummer_sphere(2000, 6);
  const auto box = nbody::core::compute_root_cube(seq, sys.x);
  Octree3 a, b;
  a.build(seq, sys.x, box);
  a.compute_multipoles(seq, sys.m, sys.x);
  b.build(par, sys.x, box);
  b.compute_multipoles(par, sys.m, sys.x);
  EXPECT_NEAR(a.node_mass(0), b.node_mass(0), 1e-9);
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(a.node_com(0)[d], b.node_com(0)[d], 1e-9);
}

TEST(OctreeMultipole, ListLeafSumsChain) {
  std::vector<vec3> x(10, vec3{{0.3, 0.3, 0.3}});
  std::vector<double> m(10, 0.5);
  Octree3 tree;
  tree.build(par, x, nbody::math::aabb3d::cube(vec3::zero(), 1.0));
  tree.compute_multipoles(par, m, x);
  EXPECT_NEAR(tree.node_mass(0), 5.0, 1e-12);
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(tree.node_com(0)[d], 0.3, 1e-12);
}

// ---------------------------------------------------------------- forces

TEST(OctreeForce, SmallThetaMatchesAllPairsClosely) {
  auto sys = nbody::workloads::plummer_sphere(500, 10);
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.1;  // nearly exact
  cfg.softening = 1e-3;
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  nbody::octree::OctreeStrategy<double, 3> strat;
  nbody::core::accelerate(strat, par, sys, cfg);
  const double err = nbody::core::rms_relative_error(sys.a, ref.a);
  EXPECT_LT(err, 5e-3);
}

TEST(OctreeForce, ModerateThetaWithinBarnesHutError) {
  auto sys = nbody::workloads::plummer_sphere(1500, 11);
  nbody::core::SimConfig<double> cfg;  // theta = 0.5
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  nbody::octree::OctreeStrategy<double, 3> strat;
  nbody::core::accelerate(strat, par, sys, cfg);
  EXPECT_LT(nbody::core::rms_relative_error(sys.a, ref.a), 3e-2);
}

TEST(OctreeForce, ErrorShrinksWithTheta) {
  auto base = nbody::workloads::plummer_sphere(800, 12);
  nbody::core::SimConfig<double> cfg;
  auto ref = base;
  nbody::core::reference_accelerations(ref, cfg);
  double prev_err = 1e9;
  for (double theta : {0.9, 0.5, 0.2}) {
    auto sys = base;
    auto c = cfg;
    c.theta = theta;
    nbody::octree::OctreeStrategy<double, 3> strat;
    nbody::core::accelerate(strat, par, sys, c);
    const double err = nbody::core::rms_relative_error(sys.a, ref.a);
    EXPECT_LT(err, prev_err * 1.5) << theta;  // monotone modulo noise
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-2);
}

TEST(OctreeForce, ThetaZeroIsExact) {
  // theta = 0: the MAC never accepts, every interaction is pairwise exact.
  auto sys = nbody::workloads::plummer_sphere(300, 13);
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.0;
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  nbody::octree::OctreeStrategy<double, 3> strat;
  nbody::core::accelerate(strat, par, sys, cfg);
  for (std::size_t i = 0; i < sys.size(); ++i)
    for (int d = 0; d < 3; ++d) EXPECT_NEAR(sys.a[i][d], ref.a[i][d], 1e-9) << i;
}

TEST(OctreeForce, TwoBodyForceIsNewtonian) {
  nbody::core::System<double, 3> sys;
  sys.add(2.0, {{0, 0, 0}}, vec3::zero());
  sys.add(3.0, {{1, 0, 0}}, vec3::zero());
  nbody::core::SimConfig<double> cfg;
  cfg.softening = 0.0;
  nbody::octree::OctreeStrategy<double, 3> strat;
  nbody::core::accelerate(strat, par, sys, cfg);
  EXPECT_NEAR(sys.a[0][0], 3.0, 1e-12);   // G m2 / r^2
  EXPECT_NEAR(sys.a[1][0], -2.0, 1e-12);  // -G m1 / r^2
}

TEST(OctreeForce, SeqEqualsSeqRerun) {
  // Sequential execution is bit-deterministic.
  auto sys1 = nbody::workloads::plummer_sphere(400, 14);
  auto sys2 = sys1;
  nbody::core::SimConfig<double> cfg;
  nbody::octree::OctreeStrategy<double, 3> s1, s2;
  nbody::core::accelerate(s1, seq, sys1, cfg);
  nbody::core::accelerate(s2, seq, sys2, cfg);
  for (std::size_t i = 0; i < sys1.size(); ++i) EXPECT_EQ(sys1.a[i], sys2.a[i]);
}

TEST(OctreeForce, Quadtree2dMatchesDirectSum) {
  nbody::support::Xoshiro256ss rng(15);
  nbody::core::System<double, 2> sys;
  for (int i = 0; i < 400; ++i)
    sys.add(rng.uniform(0.5, 1.5), {{rng.uniform(-1, 1), rng.uniform(-1, 1)}},
            nbody::math::vec2d::zero());
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.2;
  auto ref = sys;
  nbody::core::reference_accelerations(ref, cfg);
  nbody::octree::OctreeStrategy<double, 2> strat;
  nbody::core::accelerate(strat, par, sys, cfg);
  EXPECT_LT(nbody::core::rms_relative_error(sys.a, ref.a), 1e-2);
}

TEST(OctreeForce, MasslessTracersFeelForce) {
  nbody::core::System<double, 3> sys;
  sys.add(10.0, {{0, 0, 0}}, vec3::zero());
  sys.add(0.0, {{2, 0, 0}}, vec3::zero());  // tracer
  nbody::core::SimConfig<double> cfg;
  cfg.softening = 0.0;
  nbody::octree::OctreeStrategy<double, 3> strat;
  nbody::core::accelerate(strat, par, sys, cfg);
  EXPECT_NEAR(sys.a[1][0], -2.5, 1e-12);  // G*10/4 toward origin
  EXPECT_NEAR(sys.a[0][0], 0.0, 1e-12);   // tracer exerts nothing
}

TEST(OctreeForce, CountedTraversalMatchesPlainAndCountsAreSane) {
  const auto sys = nbody::workloads::plummer_sphere(1000, 16);
  Octree3 tree;
  tree.build(par, sys.x, nbody::core::compute_root_cube(par, sys.x));
  tree.compute_multipoles(par, sys.m, sys.x);
  Octree3::TraversalStats stats;
  for (std::size_t i = 0; i < sys.size(); i += 53) {
    Octree3::TraversalStats st;
    const auto counted = tree.acceleration_on_counted(
        sys.x[i], static_cast<std::uint32_t>(i), sys.m, sys.x, 0.25, 1.0, 1e-4, st);
    const auto plain = tree.acceleration_on(sys.x[i], static_cast<std::uint32_t>(i), sys.m,
                                            sys.x, 0.25, 1.0, 1e-4);
    EXPECT_EQ(counted, plain) << i;
    EXPECT_GT(st.nodes_visited, 0u);
    EXPECT_GT(st.accepts + st.exact_pairs, 0u);
    // Approximate + exact terms together cover far fewer than N bodies...
    EXPECT_LT(st.accepts + st.exact_pairs, sys.size());
    stats += st;
  }
  EXPECT_GT(stats.opens, 0u);
}

TEST(OctreeForce, SmallerThetaVisitsMoreNodes) {
  const auto sys = nbody::workloads::plummer_sphere(2000, 17);
  Octree3 tree;
  tree.build(par, sys.x, nbody::core::compute_root_cube(par, sys.x));
  tree.compute_multipoles(par, sys.m, sys.x);
  auto visits_at = [&](double theta) {
    Octree3::TraversalStats st;
    for (std::size_t i = 0; i < sys.size(); i += 101)
      tree.acceleration_on_counted(sys.x[i], static_cast<std::uint32_t>(i), sys.m, sys.x,
                                   theta * theta, 1.0, 1e-4, st);
    return st.nodes_visited;
  };
  EXPECT_GT(visits_at(0.2), visits_at(0.5));
  EXPECT_GT(visits_at(0.5), visits_at(1.0));
}

TEST(OctreeStress, RepeatedOversubscribedBuildsStayConsistent) {
  // Hammer the CAS protocol: an 8-way pool on however few cores the host
  // has maximizes preemption inside critical sections. Clustered positions
  // maximize lock contention. Every build must satisfy all invariants.
  nbody::exec::thread_pool pool(8);
  nbody::support::Xoshiro256ss rng(99);
  std::vector<vec3> x;
  for (int c = 0; c < 8; ++c) {
    const vec3 center{{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)}};
    for (int i = 0; i < 100; ++i)
      x.push_back(center + vec3{{rng.uniform(-1e-3, 1e-3), rng.uniform(-1e-3, 1e-3),
                                 rng.uniform(-1e-3, 1e-3)}});
  }
  const auto box = nbody::core::compute_root_cube(seq, x);
  Octree3 tree;
  for (int rep = 0; rep < 25; ++rep) {
    // Drive insertions through the dedicated pool rather than the global
    // one to control the thread count. prepare() sizes the pool from the
    // body count only; the tight clusters need deep subdivision, so mimic
    // build()'s retry-with-larger-pool loop on overflow.
    for (std::size_t capacity_hint = x.size();; capacity_hint *= 2) {
      tree.prepare(box, capacity_hint);
      std::atomic<std::size_t> next{0};
      std::atomic<bool> overflowed{false};
      auto worker = [&](unsigned) {
        nbody::exec::progress_region region(nbody::exec::forward_progress::parallel);
        for (;;) {
          const std::size_t b = next.fetch_add(1);
          if (b >= x.size()) break;
          if (!tree.insert_one(static_cast<std::uint32_t>(b), x)) {
            overflowed.store(true);
            break;
          }
        }
      };
      nbody::support::function_ref<void(unsigned)> ref(worker);
      pool.run(ref);
      if (!overflowed.load()) break;
      ASSERT_LT(capacity_hint, std::size_t{1} << 24) << "runaway pool growth";
    }
    check_tree_invariants(tree, x);
  }
}

// ---------------------------------------------------------------- stats

TEST(OctreeStats, CountsAreConsistent) {
  const auto x = random_positions(3000, 30);
  Octree3 tree;
  tree.build(par, x, nbody::core::compute_root_cube(par, x));
  const auto st = tree.stats();
  EXPECT_EQ(st.nodes, tree.node_count());
  EXPECT_EQ(st.internal_nodes + st.body_leaves + st.empty_leaves, st.nodes);
  EXPECT_EQ(st.bodies, x.size());
  // Every internal node contributes K children: nodes = 1 + K * internals.
  EXPECT_EQ(st.nodes, 1u + Octree3::K * st.internal_nodes);
  EXPECT_GT(st.max_depth, 2u);
  EXPECT_EQ(st.max_chain, 1u);  // random positions never chain
  EXPECT_GT(st.memory_bytes, 0u);
}

TEST(OctreeStats, ChainLengthReported) {
  std::vector<vec3> x(20, vec3{{0.1, 0.1, 0.1}});
  Octree3 tree;
  tree.build(par, x, nbody::math::aabb3d::cube(vec3::zero(), 1.0));
  const auto st = tree.stats();
  EXPECT_EQ(st.max_chain, 20u);
  EXPECT_EQ(st.bodies, 20u);
  EXPECT_EQ(st.max_depth, Octree3::kMaxDepth);
}

// ---------------------------------------------------------------- presort

TEST(OctreePresort, SameForcesAsUnsorted) {
  auto sys_a = nbody::workloads::plummer_sphere(2000, 31);
  auto sys_b = sys_a;
  nbody::core::SimConfig<double> cfg;
  nbody::octree::OctreeStrategy<double, 3> plain;
  typename nbody::octree::OctreeStrategy<double, 3>::Options po;
  po.presort = true;
  nbody::octree::OctreeStrategy<double, 3> pre(po);
  nbody::core::accelerate(plain, par, sys_a, cfg);
  nbody::core::accelerate(pre, par, sys_b, cfg);
  // Presorted system is permuted: match by id. The tree (and therefore the
  // monopole sums) is identical up to node numbering, so forces agree to
  // rounding of the multipole accumulation order.
  std::vector<vec3> got(sys_b.size());
  for (std::size_t i = 0; i < sys_b.size(); ++i) got[sys_b.id[i]] = sys_b.a[i];
  for (std::size_t i = 0; i < sys_a.size(); ++i)
    for (int d = 0; d < 3; ++d)
      EXPECT_NEAR(got[i][d], sys_a.a[i][d], 1e-9 * std::max(1.0, std::abs(sys_a.a[i][d])));
}

// ---------------------------------------------------------------- policy gate

template <class P>
constexpr bool octree_build_accepts =
    requires(Octree3 t, std::vector<vec3> x, nbody::math::aabb3d b) { t.build(P{}, x, b); };

TEST(OctreePolicy, BuildRejectsParUnseqAtCompileTime) {
  // The paper's core portability claim, enforced by the type system:
  // the starvation-free build is not invocable under weakly parallel
  // forward progress.
  static_assert(octree_build_accepts<nbody::exec::parallel_policy>);
  static_assert(octree_build_accepts<nbody::exec::sequenced_policy>);
  static_assert(!octree_build_accepts<nbody::exec::parallel_unsequenced_policy>,
                "octree build must reject par_unseq");
  EXPECT_TRUE(octree_build_accepts<nbody::exec::parallel_policy>);
  EXPECT_FALSE(octree_build_accepts<nbody::exec::parallel_unsequenced_policy>);
}

}  // namespace
