// Tests for the execution substrate: thread pool, parallel for/reduce/sort/
// scan, permutations, the policy semantics (forward-progress tags and the
// vectorization-unsafety enforcement), and the atomic helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/algorithms.hpp"
#include "exec/atomic.hpp"
#include "exec/policy.hpp"
#include "exec/thread_pool.hpp"
#include "support/rng.hpp"

namespace {

using namespace nbody::exec;

// ---------------------------------------------------------------- thread pool

TEST(ThreadPool, RunsEveryRankExactlyOnce) {
  thread_pool pool(4);
  std::vector<std::atomic<int>> hits(4);
  auto fn = [&](unsigned r) { hits[r].fetch_add(1); };
  nbody::support::function_ref<void(unsigned)> ref(fn);
  pool.run(ref);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossRegions) {
  thread_pool pool(3);
  std::atomic<int> total{0};
  for (int rep = 0; rep < 50; ++rep) {
    auto fn = [&](unsigned) { total.fetch_add(1); };
    nbody::support::function_ref<void(unsigned)> ref(fn);
    pool.run(ref);
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPool, SingleParticipantRunsInline) {
  thread_pool pool(1);
  int hits = 0;
  auto fn = [&](unsigned r) {
    EXPECT_EQ(r, 0u);
    ++hits;
  };
  nbody::support::function_ref<void(unsigned)> ref(fn);
  pool.run(ref);
  EXPECT_EQ(hits, 1);
}

TEST(ThreadPool, RejectsZeroConcurrency) {
  EXPECT_THROW(thread_pool(0), std::invalid_argument);
}

TEST(ThreadPool, PropagatesException) {
  thread_pool pool(4);
  auto fn = [&](unsigned r) {
    if (r == 2) throw std::runtime_error("boom");
  };
  nbody::support::function_ref<void(unsigned)> ref(fn);
  EXPECT_THROW(pool.run(ref), std::runtime_error);
  // Pool still usable afterwards.
  std::atomic<int> ok{0};
  auto fn2 = [&](unsigned) { ok.fetch_add(1); };
  nbody::support::function_ref<void(unsigned)> ref2(fn2);
  pool.run(ref2);
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, ConcurrentExceptionsFromMultipleRanks) {
  // Every rank throws at once; exactly one exception must surface per run
  // (first_error_ capture) and the pool must stay usable afterwards.
  thread_pool pool(4);
  for (int rep = 0; rep < 20; ++rep) {
    auto fn = [&](unsigned r) { throw std::runtime_error("rank " + std::to_string(r)); };
    nbody::support::function_ref<void(unsigned)> ref(fn);
    try {
      pool.run(ref);
      FAIL() << "expected an exception to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("rank "), std::string::npos);
    }
  }
  std::atomic<int> ok{0};
  auto fn2 = [&](unsigned) { ok.fetch_add(1); };
  nbody::support::function_ref<void(unsigned)> ref2(fn2);
  pool.run(ref2);
  EXPECT_EQ(ok.load(), 4);
}

TEST(ParallelBlocks, ChunkExceptionPropagatesFromDynamicBackend) {
  const backend saved = default_backend();
  set_default_backend(backend::dynamic_chunk);
  std::atomic<int> touched{0};
  EXPECT_THROW(for_each_index(par, 10000, [&](std::size_t i) {
    touched.fetch_add(1, std::memory_order_relaxed);
    if (i == 4321) throw std::runtime_error("dynamic chunk boom");
  }),
               std::runtime_error);
  set_default_backend(saved);
  EXPECT_GT(touched.load(), 0);
}

TEST(ParallelBlocks, ChunkExceptionPropagatesFromStealBackend) {
  const backend saved = default_backend();
  set_default_backend(backend::work_steal);
  std::atomic<int> touched{0};
  EXPECT_THROW(for_each_index(par, 10000, [&](std::size_t i) {
    touched.fetch_add(1, std::memory_order_relaxed);
    if (i == 1234) throw std::runtime_error("steal chunk boom");
  }),
               std::runtime_error);
  set_default_backend(saved);
  // The range stays reusable: a clean pass over the same backend works.
  set_default_backend(backend::work_steal);
  std::vector<int> out(10000, 0);
  for_each_index(par, out.size(), [&](std::size_t i) { out[i] = 1; });
  set_default_backend(saved);
  for (int v : out) ASSERT_EQ(v, 1);
}

TEST(ThreadPool, NestedRunDegradesToSequential) {
  thread_pool pool(3);
  std::atomic<int> inner{0};
  auto outer = [&](unsigned) {
    auto in = [&](unsigned) { inner.fetch_add(1); };
    nbody::support::function_ref<void(unsigned)> iref(in);
    pool.run(iref);  // nested: must not deadlock
  };
  nbody::support::function_ref<void(unsigned)> oref(outer);
  pool.run(oref);
  EXPECT_EQ(inner.load(), 9);  // 3 outer ranks x 3 inline inner ranks
}

TEST(ThreadPool, GlobalPoolExists) {
  EXPECT_GE(thread_pool::global().concurrency(), 1u);
}

// ---------------------------------------------------------------- for_each

template <class Policy>
void check_for_each_covers(Policy policy) {
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  for_each_index(policy, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ForEach, SeqCoversAllIndicesOnce) { check_for_each_covers(seq); }
TEST(ForEach, ParCoversAllIndicesOnce) { check_for_each_covers(par); }
TEST(ForEach, ParUnseqCoversAllIndicesOnce) { check_for_each_covers(par_unseq); }

TEST(ForEach, DynamicBackendCoversAllIndicesOnce) {
  const backend saved = default_backend();
  set_default_backend(backend::dynamic_chunk);
  check_for_each_covers(par);
  set_default_backend(saved);
}

TEST(ForEach, WorkStealBackendCoversAllIndicesOnce) {
  const backend saved = default_backend();
  set_default_backend(backend::work_steal);
  check_for_each_covers(par);
  check_for_each_covers(par_unseq);
  set_default_backend(saved);
}

std::atomic<long long> benchmark_sink{0};  // defeats dead-code elimination

TEST(ForEach, WorkStealBalancesSkewedIterations) {
  // First indices are expensive: stealing must still cover everything once.
  const backend saved = default_backend();
  set_default_backend(backend::work_steal);
  const std::size_t n = 2'000;
  std::vector<std::atomic<int>> hits(n);
  for_each_index(par, n, [&](std::size_t i) {
    if (i < 32) {
      double sink = 0;
      for (int k = 0; k < 200'000; ++k) sink += k;
      benchmark_sink.fetch_add(static_cast<long long>(sink), std::memory_order_relaxed);
    }
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  set_default_backend(saved);
}

TEST(StealDequeExec, OwnerPopsFrontInOrder) {
  nbody::exec::StealDeque d;
  d.reset(4);
  ASSERT_TRUE(d.push_back({10, 14}));
  ASSERT_TRUE(d.push_back({14, 20}));
  nbody::exec::IndexChunk c;
  ASSERT_TRUE(d.pop_front(c));
  EXPECT_EQ(c.begin, 10u);
  EXPECT_EQ(c.end, 14u);
  ASSERT_TRUE(d.pop_front(c));
  EXPECT_EQ(c.begin, 14u);
  EXPECT_EQ(c.end, 20u);
  EXPECT_FALSE(d.pop_front(c));
}

TEST(StealDequeExec, ThiefTakesBackHalf) {
  nbody::exec::StealDeque d;
  d.reset(8);
  for (std::uint32_t i = 0; i < 4; ++i) ASSERT_TRUE(d.push_back({i, i + 1}));
  nbody::exec::IndexChunk loot[8];
  // Half of 4 chunks = the back two, in curve order.
  ASSERT_EQ(d.steal_half(loot, 8), 2u);
  EXPECT_EQ(loot[0].begin, 2u);
  EXPECT_EQ(loot[1].begin, 3u);
  // Half (rounded up) of the remaining 2 = the back one.
  ASSERT_EQ(d.steal_half(loot, 8), 1u);
  EXPECT_EQ(loot[0].begin, 1u);
  // Owner still gets the front.
  nbody::exec::IndexChunk c;
  ASSERT_TRUE(d.pop_front(c));
  EXPECT_EQ(c.begin, 0u);
  EXPECT_FALSE(d.pop_front(c));
  EXPECT_EQ(d.steal_half(loot, 8), 0u);
}

TEST(StealDequeExec, ConcurrentPopsAndStealsAreDisjointAndComplete) {
  nbody::exec::StealDeque d;
  constexpr std::uint32_t kChunks = 4'000;
  d.reset(kChunks);
  for (std::uint32_t c = 0; c < kChunks; ++c) ASSERT_TRUE(d.push_back({c, c + 1}));
  std::vector<std::atomic<int>> taken(kChunks);
  thread_pool pool(4);
  auto worker = [&](unsigned rank) {
    nbody::exec::IndexChunk c;
    std::vector<nbody::exec::IndexChunk> loot(kChunks);
    for (;;) {
      if (rank % 2 == 0) {
        if (!d.pop_front(c)) break;
        taken[c.begin].fetch_add(1);
      } else {
        const std::size_t k = d.steal_half(loot.data(), loot.size());
        if (k == 0) break;
        for (std::size_t i = 0; i < k; ++i) taken[loot[i].begin].fetch_add(1);
      }
    }
  };
  nbody::support::function_ref<void(unsigned)> ref(worker);
  pool.run(ref);
  // Poppers and thieves race to empty; every chunk lands exactly once.
  for (std::uint32_t i = 0; i < kChunks; ++i) ASSERT_EQ(taken[i].load(), 1) << i;
}

TEST(ForEach, EmptyRangeIsNoop) {
  bool touched = false;
  for_each_index(par, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ForEach, IteratorFormMutatesElements) {
  std::vector<int> v(1000, 1);
  for_each(par, v.begin(), v.end(), [](int& x) { x *= 2; });
  EXPECT_TRUE(std::all_of(v.begin(), v.end(), [](int x) { return x == 2; }));
}

TEST(ForEach, InstallsProgressRegion) {
  forward_progress seen_par{};
  forward_progress seen_unseq{};
  for_each_index(par, 1, [&](std::size_t) { seen_par = current_progress(); });
  for_each_index(par_unseq, 1, [&](std::size_t) { seen_unseq = current_progress(); });
  EXPECT_EQ(seen_par, forward_progress::parallel);
  EXPECT_EQ(seen_unseq, forward_progress::weakly_parallel);
  EXPECT_EQ(current_progress(), forward_progress::concurrent);  // restored
}

// ---------------------------------------------------------------- reduce

TEST(TransformReduce, SumMatchesSequential) {
  const std::size_t n = 100'000;
  auto square = [](std::size_t i) { return static_cast<long long>(i) * 3; };
  const long long want = transform_reduce_index(seq, n, 0LL, std::plus<>{}, square);
  EXPECT_EQ(transform_reduce_index(par, n, 0LL, std::plus<>{}, square), want);
  EXPECT_EQ(transform_reduce_index(par_unseq, n, 0LL, std::plus<>{}, square), want);
}

TEST(TransformReduce, EmptyRangeReturnsInit) {
  EXPECT_EQ(transform_reduce_index(par, 0, 42, std::plus<>{}, [](std::size_t) { return 1; }),
            42);
}

TEST(TransformReduce, FloatingPointDeterministicAcrossRuns) {
  const std::size_t n = 200'000;
  nbody::support::Xoshiro256ss rng(11);
  std::vector<double> vals(n);
  for (auto& v : vals) v = rng.uniform(-1.0, 1.0) * 1e6;
  auto run = [&] {
    return transform_reduce_index(par, n, 0.0, std::plus<>{},
                                  [&](std::size_t i) { return vals[i]; });
  };
  const double first = run();
  for (int rep = 0; rep < 5; ++rep) EXPECT_EQ(run(), first);
}

TEST(TransformReduce, WorkStealBackendDeterministic) {
  const backend saved = default_backend();
  set_default_backend(backend::work_steal);
  const std::size_t n = 100'000;
  std::vector<double> vals(n);
  nbody::support::Xoshiro256ss rng(14);
  for (auto& v : vals) v = rng.uniform(-1.0, 1.0);
  auto run = [&] {
    return transform_reduce_index(par, n, 0.0, std::plus<>{},
                                  [&](std::size_t i) { return vals[i]; });
  };
  const double first = run();
  for (int rep = 0; rep < 5; ++rep) EXPECT_EQ(run(), first);
  set_default_backend(saved);
}

TEST(TransformReduce, DynamicBackendAlsoDeterministic) {
  const backend saved = default_backend();
  set_default_backend(backend::dynamic_chunk);
  const std::size_t n = 100'000;
  std::vector<double> vals(n);
  nbody::support::Xoshiro256ss rng(13);
  for (auto& v : vals) v = rng.uniform(-1.0, 1.0);
  auto run = [&] {
    return transform_reduce_index(par, n, 0.0, std::plus<>{},
                                  [&](std::size_t i) { return vals[i]; });
  };
  const double first = run();
  for (int rep = 0; rep < 5; ++rep) EXPECT_EQ(run(), first);
  set_default_backend(saved);
}

TEST(TransformReduce, IteratorFormMinMax) {
  std::vector<int> v = {5, -2, 9, 3, 9, -7};
  struct MinMax {
    int lo, hi;
  };
  const auto mm = nbody::exec::transform_reduce(
      par, v.begin(), v.end(), MinMax{1 << 30, -(1 << 30)},
      [](MinMax a, MinMax b) {
        return MinMax{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
      },
      [](int x) {
        return MinMax{x, x};
      });
  EXPECT_EQ(mm.lo, -7);
  EXPECT_EQ(mm.hi, 9);
}

// ---------------------------------------------------------------- sort

template <class Policy>
void check_sort(Policy policy, std::size_t n) {
  std::vector<std::uint64_t> v(n);
  nbody::support::Xoshiro256ss rng(n);
  for (auto& e : v) e = rng.next() % 1000;
  std::vector<std::uint64_t> want = v;
  std::stable_sort(want.begin(), want.end());
  nbody::exec::sort(policy, v.begin(), v.end());
  EXPECT_EQ(v, want);
}

TEST(Sort, WorkStealBackend) {
  const backend saved = default_backend();
  set_default_backend(backend::work_steal);
  check_sort(par, 50'000);
  set_default_backend(saved);
}

TEST(Sort, SeqSmall) { check_sort(seq, 100); }
TEST(Sort, ParBelowCutoff) { check_sort(par, 1000); }
TEST(Sort, ParAboveCutoff) { check_sort(par, 100'000); }
TEST(Sort, ParUnseqAboveCutoff) { check_sort(par_unseq, 50'000); }
TEST(Sort, Empty) { check_sort(par, 0); }
TEST(Sort, Single) { check_sort(par, 1); }

TEST(Sort, OddSizesRoundRobin) {
  for (std::size_t n : {4095u, 4097u, 10'001u, 65'537u}) check_sort(par, n);
}

TEST(Sort, AlreadySorted) {
  std::vector<int> v(50'000);
  std::iota(v.begin(), v.end(), 0);
  auto want = v;
  nbody::exec::sort(par, v.begin(), v.end());
  EXPECT_EQ(v, want);
}

TEST(Sort, ReverseSorted) {
  std::vector<int> v(50'000);
  std::iota(v.begin(), v.end(), 0);
  std::reverse(v.begin(), v.end());
  nbody::exec::sort(par, v.begin(), v.end());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(Sort, CustomComparatorDescending) {
  std::vector<int> v(30'000);
  nbody::support::Xoshiro256ss rng(77);
  for (auto& e : v) e = static_cast<int>(rng.next() % 100);
  nbody::exec::sort(par, v.begin(), v.end(), std::greater<>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>{}));
}

TEST(Sort, StableForEqualKeys) {
  // Pairs with few distinct keys: stability preserves second-component order.
  const std::size_t n = 60'000;
  std::vector<std::pair<int, int>> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = {static_cast<int>(i % 7), static_cast<int>(i)};
  nbody::exec::sort(par, v.begin(), v.end(),
                    [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i - 1].first == v[i].first) {
      EXPECT_LT(v[i - 1].second, v[i].second);
    }
  }
}

// ---------------------------------------------------------------- scan

TEST(Scan, ExclusiveMatchesStd) {
  const std::size_t n = 50'000;
  std::vector<long long> in(n), out(n), want(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = static_cast<long long>(i % 13) - 6;
  std::exclusive_scan(in.begin(), in.end(), want.begin(), 100LL);
  exclusive_scan(par, in.data(), out.data(), n, 100LL);
  EXPECT_EQ(out, want);
}

TEST(Scan, ExclusiveSmallAndEmpty) {
  std::vector<int> in = {1, 2, 3};
  std::vector<int> out(3);
  exclusive_scan(par, in.data(), out.data(), 3, 0);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 3}));
  exclusive_scan(par, in.data(), out.data(), 0, 0);  // no-op
}

TEST(Scan, InclusiveMatchesStd) {
  const std::size_t n = 30'000;
  std::vector<long long> in(n), out(n), want(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = static_cast<long long>(i % 7);
  std::inclusive_scan(in.begin(), in.end(), want.begin());
  inclusive_scan(par, in.data(), out.data(), n);
  EXPECT_EQ(out, want);
}

TEST(Scan, SeqPolicy) {
  std::vector<int> in = {4, 5, 6};
  std::vector<int> out(3);
  exclusive_scan(seq, in.data(), out.data(), 3, 1);
  EXPECT_EQ(out, (std::vector<int>{1, 5, 10}));
}

// ---------------------------------------------------------------- permutation

TEST(Permutation, SortPermutationOrdersKeys) {
  std::vector<std::uint64_t> keys = {5, 1, 4, 1, 3};
  const auto perm = make_sort_permutation(par, keys);
  ASSERT_EQ(perm.size(), 5u);
  for (std::size_t i = 1; i < perm.size(); ++i)
    EXPECT_LE(keys[perm[i - 1]], keys[perm[i]]);
  // Stability: the two 1-keys keep original relative order.
  EXPECT_EQ(perm[0], 1u);
  EXPECT_EQ(perm[1], 3u);
}

TEST(Permutation, ApplyGathers) {
  std::vector<std::uint32_t> perm = {2, 0, 1};
  std::vector<std::string> src = {"a", "b", "c"};
  std::vector<std::string> dst;
  apply_permutation(par, perm, src, dst);
  EXPECT_EQ(dst, (std::vector<std::string>{"c", "a", "b"}));
}

TEST(Permutation, LargeRandomIsPermutation) {
  const std::size_t n = 100'000;
  std::vector<std::uint64_t> keys(n);
  nbody::support::Xoshiro256ss rng(31);
  for (auto& k : keys) k = rng.next();
  const auto perm = make_sort_permutation(par, keys);
  std::vector<char> seen(n, 0);
  for (auto p : perm) {
    ASSERT_LT(p, n);
    ASSERT_EQ(seen[p], 0);
    seen[p] = 1;
  }
}

// ---------------------------------------------------------------- policy semantics

TEST(Policy, TagsMatchPaperRequirements) {
  static_assert(sequenced_policy::progress == forward_progress::concurrent);
  static_assert(parallel_policy::progress == forward_progress::parallel);
  static_assert(parallel_unsequenced_policy::progress == forward_progress::weakly_parallel);
  static_assert(StarvationFreeCapable<parallel_policy>);
  static_assert(StarvationFreeCapable<sequenced_policy>);
  static_assert(!StarvationFreeCapable<parallel_unsequenced_policy>);
  SUCCEED();
}

TEST(Policy, ViolationRecordedForSyncAtomicUnderParUnseq) {
  reset_vectorization_unsafe_violations();
  std::uint32_t word = 0;
  for_each_index(par_unseq, 1, [&](std::size_t) {
    (void)load_acquire(word);  // synchronizing atomic inside par_unseq
  });
  EXPECT_GE(vectorization_unsafe_violations(), 1u);
  reset_vectorization_unsafe_violations();
}

TEST(Policy, NoViolationUnderPar) {
  reset_vectorization_unsafe_violations();
  std::uint32_t word = 0;
  for_each_index(par, 100, [&](std::size_t) { (void)load_acquire(word); });
  EXPECT_EQ(vectorization_unsafe_violations(), 0u);
}

TEST(PolicyDeathTest, StrictModeAbortsOnViolation) {
  // NBODY_STRICT_POLICY=1 turns the diagnostic counter into an abort — the
  // "fail loudly instead of deadlocking a GPU" debugging mode.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ::setenv("NBODY_STRICT_POLICY", "1", 1);
        std::uint32_t word = 0;
        progress_region region(forward_progress::weakly_parallel);
        (void)load_acquire(word);
      },
      "vectorization-unsafe");
}

TEST(Policy, RelaxedAtomicsNotFlagged) {
  reset_vectorization_unsafe_violations();
  std::uint64_t counter = 0;
  for_each_index(par_unseq, 100, [&](std::size_t) { fetch_add_relaxed(counter, std::uint64_t{1}); });
  EXPECT_EQ(vectorization_unsafe_violations(), 0u);
  EXPECT_EQ(counter, 100u);
}

// ---------------------------------------------------------------- atomics

TEST(Atomics, IntegerFetchAddRelaxedCounts) {
  std::uint64_t counter = 0;
  for_each_index(par, 100'000, [&](std::size_t) { fetch_add_relaxed(counter, std::uint64_t{1}); });
  EXPECT_EQ(counter, 100'000u);
}

TEST(Atomics, DoubleFetchAddRelaxedAccumulates) {
  double sum = 0.0;
  for_each_index(par, 10'000, [&](std::size_t) { fetch_add_relaxed(sum, 0.5); });
  EXPECT_DOUBLE_EQ(sum, 5000.0);
}

TEST(Atomics, FetchAddReturnsPriorValue) {
  std::uint32_t c = 10;
  EXPECT_EQ(fetch_add_relaxed(c, 5u), 10u);
  EXPECT_EQ(c, 15u);
  EXPECT_EQ(fetch_add_acq_rel(c, 1u), 15u);
}

TEST(Atomics, CompareExchangeProtocol) {
  std::uint32_t slot = 7;
  std::uint32_t expected = 7;
  EXPECT_TRUE(compare_exchange_acq_rel(slot, expected, 9u));
  EXPECT_EQ(slot, 9u);
  expected = 7;
  // compare_exchange_weak may fail spuriously; a mismatch must *eventually*
  // report the observed value without storing.
  bool ok = compare_exchange_acquire(slot, expected, 11u);
  EXPECT_FALSE(ok);
  EXPECT_EQ(expected, 9u);
  EXPECT_EQ(slot, 9u);
}

TEST(Atomics, StoreLoadRoundTrip) {
  std::uint32_t w = 0;
  store_release(w, 123u);
  EXPECT_EQ(load_acquire(w), 123u);
  store_relaxed(w, 9u);
  EXPECT_EQ(load_relaxed(w), 9u);
}

TEST(Atomics, ConcurrentCountingElection) {
  // The multipole arrival-counter pattern: exactly one winner per group.
  constexpr int kGroups = 64;
  constexpr int kArrivalsPerGroup = 8;
  std::vector<std::uint32_t> counters(kGroups, 0);
  std::vector<std::uint32_t> winners(kGroups, 0);
  for_each_index(par, kGroups * kArrivalsPerGroup, [&](std::size_t i) {
    const std::size_t g = i / kArrivalsPerGroup;
    const std::uint32_t prior = fetch_add_acq_rel(counters[g], 1u);
    if (prior == kArrivalsPerGroup - 1) fetch_add_relaxed(winners[g], 1u);
  });
  for (int g = 0; g < kGroups; ++g) EXPECT_EQ(winners[g], 1u) << g;
}

// ---------------------------------------------------------------- backend

TEST(Backend, NamesAreStable) {
  EXPECT_STREQ(backend_name(backend::static_chunk), "static");
  EXPECT_STREQ(backend_name(backend::dynamic_chunk), "dynamic");
  EXPECT_STREQ(backend_name(backend::work_steal), "steal");
}

TEST(Backend, SetAndRestore) {
  const backend saved = default_backend();
  set_default_backend(backend::dynamic_chunk);
  EXPECT_EQ(default_backend(), backend::dynamic_chunk);
  set_default_backend(saved);
  EXPECT_EQ(default_backend(), saved);
}

}  // namespace
