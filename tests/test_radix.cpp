// Tests for the parallel LSD radix sort (exec/radix_sort.hpp): correctness
// against std::stable_sort across input shapes and policies, stability, the
// key_bits contract, and equivalence of the radix- and comparison-based sort
// permutations (both stable ascending => identical).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bvh/strategy.hpp"
#include "core/diagnostics.hpp"
#include "core/reference.hpp"
#include "exec/radix_sort.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace nbody::exec;

using Item = std::pair<std::uint64_t, std::uint32_t>;

std::vector<Item> random_items(std::size_t n, std::uint64_t key_mask,
                               std::uint64_t seed = 1) {
  nbody::support::Xoshiro256ss rng(seed);
  std::vector<Item> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = {rng.next() & key_mask, static_cast<std::uint32_t>(i)};
  return v;
}

void expect_sorted_stable(const std::vector<Item>& got, std::vector<Item> want_input) {
  std::stable_sort(want_input.begin(), want_input.end(),
                   [](const Item& a, const Item& b) { return a.first < b.first; });
  ASSERT_EQ(got.size(), want_input.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, want_input[i].first) << i;
    EXPECT_EQ(got[i].second, want_input[i].second) << i;  // stability
  }
}

class RadixSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RadixSizes, MatchesStableSortPar) {
  auto v = random_items(GetParam(), ~0ull, GetParam());
  const auto input = v;
  radix_sort_pairs(par, v);
  expect_sorted_stable(v, input);
}

TEST_P(RadixSizes, MatchesStableSortSeq) {
  auto v = random_items(GetParam(), ~0ull, GetParam() + 1);
  const auto input = v;
  radix_sort_pairs(seq, v);
  expect_sorted_stable(v, input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixSizes,
                         ::testing::Values(0, 1, 2, 3, 255, 256, 257, 10'000, 100'000));

TEST(RadixSort, FewDistinctKeysKeepsStability) {
  auto v = random_items(50'000, 0x7ull, 9);  // keys in [0, 8)
  const auto input = v;
  radix_sort_pairs(par, v);
  expect_sorted_stable(v, input);
}

TEST(RadixSort, AlreadySortedAndReverse) {
  std::vector<Item> v(10'000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = {static_cast<std::uint64_t>(i), static_cast<std::uint32_t>(i)};
  auto input = v;
  radix_sort_pairs(par, v);
  expect_sorted_stable(v, input);
  std::reverse(v.begin(), v.end());
  input = v;
  radix_sort_pairs(par, v);
  expect_sorted_stable(v, input);
}

TEST(RadixSort, NarrowKeyBitsRunsFewerPassesCorrectly) {
  // Keys below 2^16: two 8-bit passes suffice and must produce the same
  // order as the full 8-pass run.
  auto v = random_items(20'000, 0xFFFFull, 10);
  auto w = v;
  const auto input = v;
  radix_sort_pairs(par, v, 16);
  radix_sort_pairs(par, w, 64);
  expect_sorted_stable(v, input);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], w[i]);
}

TEST(RadixSort, OddPassCountEndsInPlace) {
  // 24 key bits -> 3 passes: exercises the copy-back from the ping buffer.
  auto v = random_items(10'000, 0xFFFFFFull, 11);
  const auto input = v;
  radix_sort_pairs(par, v, 24);
  expect_sorted_stable(v, input);
}

TEST(RadixSort, RejectsBadKeyBits) {
  auto v = random_items(16, ~0ull, 12);
  EXPECT_THROW(radix_sort_pairs(par, v, 0), std::invalid_argument);
  EXPECT_THROW(radix_sort_pairs(par, v, 65), std::invalid_argument);
}

TEST(RadixPermutation, IdenticalToComparisonPermutation) {
  // Both sorts are stable ascending, so the permutations must match exactly.
  nbody::support::Xoshiro256ss rng(13);
  std::vector<std::uint64_t> keys(30'000);
  for (auto& k : keys) k = rng.next() & 0xFFFFFFull;  // plenty of duplicates
  const auto a = make_sort_permutation(par, keys);
  const auto b = make_radix_sort_permutation(par, keys, 24);
  EXPECT_EQ(a, b);
}

TEST(RadixBvh, RadixSortedPipelineMatchesComparisonSorted) {
  // End to end: the BVH built from radix-sorted bodies is identical.
  auto sys_a = nbody::workloads::plummer_sphere(3000, 14);
  auto sys_b = sys_a;
  nbody::core::SimConfig<double> cfg;
  typename nbody::bvh::HilbertBVH<double, 3>::Options ra;
  ra.sort = nbody::bvh::SortKind::radix;
  nbody::bvh::BVHStrategy<double, 3> radix_strat(ra);
  nbody::bvh::BVHStrategy<double, 3> comp_strat;
  nbody::core::accelerate(radix_strat, par_unseq, sys_a, cfg);
  nbody::core::accelerate(comp_strat, par_unseq, sys_b, cfg);
  ASSERT_EQ(sys_a.size(), sys_b.size());
  for (std::size_t i = 0; i < sys_a.size(); ++i) {
    EXPECT_EQ(sys_a.id[i], sys_b.id[i]) << i;   // identical permutation
    EXPECT_EQ(sys_a.a[i], sys_b.a[i]) << i;     // identical forces
  }
}

}  // namespace
