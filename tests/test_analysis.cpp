// Tests for core/analysis.hpp: radial profiles, Lagrange radii, velocity
// dispersion, and virial diagnostics — checked against closed-form values
// on constructed systems and against theory on the Plummer model.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/analysis.hpp"
#include "workloads/workloads.hpp"

namespace {

using nbody::exec::par;
using nbody::exec::seq;
using vec3 = nbody::math::vec3d;

TEST(RadialProfile, BinsMassByShell) {
  nbody::core::System<double, 3> sys;
  sys.add(1.0, {{0.05, 0, 0}}, vec3::zero());  // bin 0 of [0, 1) in 10 bins
  sys.add(2.0, {{0.55, 0, 0}}, vec3::zero());  // bin 5
  sys.add(4.0, {{5.0, 0, 0}}, vec3::zero());   // beyond r_max -> last bin
  const auto prof = nbody::core::radial_profile(sys, vec3::zero(), 1.0, 10);
  ASSERT_EQ(prof.size(), 10u);
  EXPECT_DOUBLE_EQ(prof[0], 1.0);
  EXPECT_DOUBLE_EQ(prof[5], 2.0);
  EXPECT_DOUBLE_EQ(prof[9], 4.0);
  EXPECT_DOUBLE_EQ(std::accumulate(prof.begin(), prof.end(), 0.0), 7.0);
}

TEST(RadialProfile, RejectsBadArguments) {
  nbody::core::System<double, 3> sys(1);
  EXPECT_THROW(nbody::core::radial_profile(sys, vec3::zero(), 1.0, 0),
               std::invalid_argument);
  EXPECT_THROW(nbody::core::radial_profile(sys, vec3::zero(), 0.0, 4),
               std::invalid_argument);
}

TEST(RadialProfile, PlummerDensityFallsMonotonically) {
  const auto sys = nbody::workloads::plummer_sphere(30'000, 3);
  const auto prof = nbody::core::radial_profile(sys, vec3::zero(), 3.0, 6);
  // Density = mass / shell volume must decrease outward for Plummer.
  double prev = 1e300;
  for (std::size_t b = 0; b < prof.size() - 1; ++b) {  // skip overflow bin
    const double r0 = 0.5 * b, r1 = 0.5 * (b + 1);
    const double vol = 4.0 / 3.0 * 3.14159265 * (r1 * r1 * r1 - r0 * r0 * r0);
    const double density = prof[b] / vol;
    EXPECT_LT(density, prev) << b;
    prev = density;
  }
}

TEST(LagrangeRadii, ExactOnConstructedShells) {
  nbody::core::System<double, 3> sys;
  for (int i = 1; i <= 10; ++i)
    sys.add(1.0, {{0.1 * i, 0, 0}}, vec3::zero());  // radii 0.1 .. 1.0
  const auto radii =
      nbody::core::lagrange_radii(sys, vec3::zero(), std::vector<double>{0.1, 0.5, 1.0});
  EXPECT_NEAR(radii[0], 0.1, 1e-12);
  EXPECT_NEAR(radii[1], 0.5, 1e-12);
  EXPECT_NEAR(radii[2], 1.0, 1e-12);
}

TEST(LagrangeRadii, MonotoneInFraction) {
  const auto sys = nbody::workloads::plummer_sphere(5000, 4);
  const auto radii = nbody::core::lagrange_radii(
      sys, vec3::zero(), std::vector<double>{0.1, 0.25, 0.5, 0.75, 0.9});
  for (std::size_t i = 1; i < radii.size(); ++i) EXPECT_GT(radii[i], radii[i - 1]);
}

TEST(LagrangeRadii, HalfMassMatchesPlummerTheory) {
  const auto sys = nbody::workloads::plummer_sphere(30'000, 5);
  // r_half = scale / sqrt(2^(2/3) - 1) ~ 1.3048.
  EXPECT_NEAR(nbody::core::half_mass_radius(sys, vec3::zero()), 1.3048, 0.08);
}

TEST(LagrangeRadii, RejectsBadFraction) {
  nbody::core::System<double, 3> sys(2);
  EXPECT_THROW(
      nbody::core::lagrange_radii(sys, vec3::zero(), std::vector<double>{0.0}),
      std::invalid_argument);
  EXPECT_THROW(
      nbody::core::lagrange_radii(sys, vec3::zero(), std::vector<double>{1.5}),
      std::invalid_argument);
}

TEST(VelocityDispersion, ZeroForComovingSystem) {
  nbody::core::System<double, 3> sys;
  sys.add(1.0, {{0, 0, 0}}, {{3, 3, 3}});
  sys.add(5.0, {{1, 0, 0}}, {{3, 3, 3}});
  EXPECT_NEAR(nbody::core::velocity_dispersion(seq, sys), 0.0, 1e-12);
}

TEST(VelocityDispersion, KnownTwoBodyValue) {
  nbody::core::System<double, 3> sys;
  sys.add(1.0, {{0, 0, 0}}, {{+1, 0, 0}});
  sys.add(1.0, {{1, 0, 0}}, {{-1, 0, 0}});
  // Mean velocity zero; each |v - mean| = 1 -> dispersion 1.
  EXPECT_NEAR(nbody::core::velocity_dispersion(seq, sys), 1.0, 1e-12);
}

TEST(VelocityDispersion, PoliciesAgree) {
  const auto sys = nbody::workloads::plummer_sphere(3000, 6);
  EXPECT_NEAR(nbody::core::velocity_dispersion(seq, sys),
              nbody::core::velocity_dispersion(par, sys), 1e-12);
}

TEST(Virial, PlummerNearEquilibrium) {
  const auto sys = nbody::workloads::plummer_sphere(4000, 7);
  EXPECT_NEAR(nbody::core::virial_ratio(par, sys, 1.0, 0.0), 1.0, 0.25);
}

TEST(Virial, ColdSystemHasZeroRatio) {
  const auto sys = nbody::workloads::uniform_cube(100, 8);  // at rest
  EXPECT_DOUBLE_EQ(nbody::core::virial_ratio(seq, sys, 1.0, 0.0), 0.0);
}

TEST(Virial, EmptySystem) {
  nbody::core::System<double, 3> sys;
  EXPECT_DOUBLE_EQ(nbody::core::virial_ratio(seq, sys, 1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(nbody::core::velocity_dispersion(seq, sys), 0.0);
}

}  // namespace
