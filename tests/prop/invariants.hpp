// Force-comparison and metamorphic-transform helpers for the differential
// property harness. Everything operates on a copy of the input system so a
// single generated case can be pushed through every strategy and transform.
#pragma once

#include <cmath>
#include <cstddef>
#include <numeric>
#include <string>
#include <vector>

#include "core/reference.hpp"
#include "core/step_context.hpp"
#include "core/system.hpp"
#include "math/vec.hpp"
#include "support/rng.hpp"

namespace nbody::prop {

using System3 = core::System<double, 3>;
using Vec3 = math::vec<double, 3>;

/// Runs one force evaluation of `strategy` on a copy of `sys` and returns
/// the accelerations keyed by stable body id (strategies may reorder).
template <class Strategy, class Policy>
std::vector<Vec3> forces_of(Strategy&& strategy, Policy policy, const System3& sys,
                            const core::SimConfig<double>& cfg) {
  System3 work = sys;
  core::accelerate(strategy, policy, work, cfg);
  std::vector<Vec3> by_id(work.size(), Vec3::zero());
  for (std::size_t i = 0; i < work.size(); ++i) by_id[work.id[i]] = work.a[i];
  return by_id;
}

/// Exact O(N^2) reference accelerations, keyed by id (reference never
/// reorders, but keying keeps every comparison uniform).
inline std::vector<Vec3> reference_forces(const System3& sys,
                                          const core::SimConfig<double>& cfg) {
  System3 work = sys;
  core::reference_accelerations(work, cfg);
  std::vector<Vec3> by_id(work.size(), Vec3::zero());
  for (std::size_t i = 0; i < work.size(); ++i) by_id[work.id[i]] = work.a[i];
  return by_id;
}

/// Relative L2 error ||a - b|| / ||b||, the paper's Sec. V-A metric.
/// Returns 0 for two empty (or both-zero) sets.
inline double rel_l2_error(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  double num = 0, den = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += math::norm2(a[i] - b[i]);
    den += math::norm2(b[i]);
  }
  if (den == 0) return std::sqrt(num);
  return std::sqrt(num / den);
}

/// Largest absolute per-component difference; for bit-identity checks use
/// max_abs_diff(...) == 0.
inline double max_abs_diff(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t d = 0; d < 3; ++d)
      worst = std::max(worst, std::abs(a[i][d] - b[i][d]));
  return worst;
}

// ---- metamorphic transforms ------------------------------------------------

inline System3 translated(const System3& sys, const Vec3& t) {
  System3 out = sys;
  for (auto& x : out.x) x += t;
  return out;
}

/// Exact-in-FP rotation by 90 degrees about z: (x, y, z) -> (-y, x, z).
/// Negation and component swap are lossless, so equivariance holds up to
/// the kernel's summation-order sensitivity, not the transform's.
inline System3 rotated90_z(const System3& sys) {
  System3 out = sys;
  for (auto& x : out.x) x = Vec3{-x[1], x[0], x[2]};
  for (auto& v : out.v) v = Vec3{-v[1], v[0], v[2]};
  return out;
}

inline std::vector<Vec3> rotated90_z(const std::vector<Vec3>& a) {
  std::vector<Vec3> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = Vec3{-a[i][1], a[i][0], a[i][2]};
  return out;
}

/// Fisher-Yates shuffle of body storage order. Stable ids ride along, so
/// id-keyed force vectors of the shuffled system compare directly against
/// the original's.
inline System3 permuted(const System3& sys, std::uint64_t seed) {
  System3 out = sys;
  support::Xoshiro256ss rng(seed);
  for (std::size_t i = out.size(); i > 1; --i) {
    const std::size_t j = rng.next() % i;
    std::swap(out.m[i - 1], out.m[j]);
    std::swap(out.x[i - 1], out.x[j]);
    std::swap(out.v[i - 1], out.v[j]);
    std::swap(out.a[i - 1], out.a[j]);
    std::swap(out.id[i - 1], out.id[j]);
  }
  return out;
}

/// Coincident-pile carve-out for schedule-stability assertions. Bodies with
/// identical positions chain in tree-build order, so which *id* lands in
/// which group/leaf is schedule-dependent, and two groups' MACs differ at
/// truncation level: per-id forces move within the tree-truncation ball
/// under a permuted dispatch, not the accumulation-rounding ball. Every
/// schedule's result still sits in the reference ball — only the
/// run-to-run comparison needs the wider tolerance.
inline bool is_coincident_pile(const std::string& case_name) {
  return case_name.rfind("coincident", 0) == 0;
}

/// Tolerance for comparing two runs of the same tree strategy under
/// different schedules: the accumulation-rounding ball normally, widened to
/// twice the tree-truncation ball for coincident piles (id migration).
inline double schedule_stability_tol(const std::string& case_name, double tol_scale,
                                     double tree_tol, double atomic_tol) {
  return (is_coincident_pile(case_name) ? 2 * tree_tol : atomic_tol) * tol_scale;
}

/// |sum_i m_i a_i| / sum_i |m_i a_i| — Newton's third law residual.
/// Exactly summed pairwise kernels drive this to rounding error; Barnes-Hut
/// truncation leaves an O(theta^2) residual.
inline double momentum_residual(const System3& sys, const std::vector<Vec3>& forces_by_id) {
  Vec3 net = Vec3::zero();
  double scale = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const Vec3 f = forces_by_id[sys.id[i]] * sys.m[i];
    net += f;
    scale += std::sqrt(math::norm2(f));
  }
  if (scale == 0) return std::sqrt(math::norm2(net));
  return std::sqrt(math::norm2(net)) / scale;
}

}  // namespace nbody::prop
