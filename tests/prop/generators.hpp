// Randomized system generators for the differential property harness
// (tests/test_chaos.cpp, tests/test_chaos_sweep.cpp).
//
// Each case seed deterministically selects a shape and its parameters, so a
// failing case replays from the printed seed alone. The shapes deliberately
// include the degenerate inputs the strategies must survive: coincident
// bodies (softening keeps the forces finite), huge mass ratios, collinear
// chains, and tiny N including 0 and 1.
#pragma once

#include <cstdint>
#include <string>

#include "core/system.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace nbody::prop {

struct PropCase {
  std::string name;
  core::System<double, 3> sys;
  // Multiplier on the harness's base tree tolerance: degenerate geometries
  // (coincident clusters, extreme mass ratios) concentrate the Barnes-Hut
  // truncation error in a handful of bodies, so their L2 ball is wider.
  double tol_scale = 1.0;
};

inline double urand(support::Xoshiro256ss& rng, double lo, double hi) {
  return lo + (hi - lo) * rng.uniform();
}

/// `k` bodies stacked on exactly the same point plus a scattered background.
/// Exercises the octree's bounded-subdivision overflow path and the
/// softened kernel (r = 0 between stacked bodies).
inline core::System<double, 3> coincident_cluster(std::size_t n, std::uint64_t seed) {
  support::Xoshiro256ss rng(seed);
  core::System<double, 3> sys;
  const math::vec<double, 3> pile{urand(rng, -1, 1), urand(rng, -1, 1), urand(rng, -1, 1)};
  const std::size_t stacked = 2 + n / 4;
  for (std::size_t i = 0; i < n; ++i) {
    const bool on_pile = i < stacked;
    math::vec<double, 3> x =
        on_pile ? pile
                : math::vec<double, 3>{urand(rng, -4, 4), urand(rng, -4, 4), urand(rng, -4, 4)};
    sys.add(urand(rng, 0.5, 2.0), x, math::vec<double, 3>::zero());
  }
  return sys;
}

/// Mass ratios spanning ~18 decades: a solar-system-like hierarchy pushed to
/// the extreme. Checks that tiny bodies neither vanish from the multipole
/// moments nor destabilize the comparison.
inline core::System<double, 3> extreme_mass_ratio(std::size_t n, std::uint64_t seed) {
  support::Xoshiro256ss rng(seed);
  core::System<double, 3> sys;
  for (std::size_t i = 0; i < n; ++i) {
    const double exponent = urand(rng, -9.0, 9.0);
    const double mass = std::pow(10.0, exponent);
    sys.add(mass,
            {urand(rng, -2, 2), urand(rng, -2, 2), urand(rng, -2, 2)},
            math::vec<double, 3>::zero());
  }
  return sys;
}

/// All bodies on one line: every octree split puts bodies in at most two
/// octants, producing maximally skewed trees.
inline core::System<double, 3> collinear_chain(std::size_t n, std::uint64_t seed) {
  support::Xoshiro256ss rng(seed);
  core::System<double, 3> sys;
  const math::vec<double, 3> dir{urand(rng, 0.2, 1), urand(rng, 0.2, 1), urand(rng, 0.2, 1)};
  for (std::size_t i = 0; i < n; ++i) {
    const double t = urand(rng, -5, 5);
    sys.add(1.0, {dir[0] * t, dir[1] * t, dir[2] * t}, math::vec<double, 3>::zero());
  }
  return sys;
}

/// Two dense clusters far apart — the regime where the opening criterion
/// does the most work (whole far cluster accepted as one node).
inline core::System<double, 3> two_clusters(std::size_t n, std::uint64_t seed) {
  support::Xoshiro256ss rng(seed);
  core::System<double, 3> sys;
  const double sep = urand(rng, 8.0, 20.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double cx = (i % 2 == 0) ? -sep / 2 : sep / 2;
    sys.add(urand(rng, 0.5, 2.0),
            {cx + urand(rng, -0.5, 0.5), urand(rng, -0.5, 0.5), urand(rng, -0.5, 0.5)},
            math::vec<double, 3>::zero());
  }
  return sys;
}

/// Deterministically maps a case seed to a generated system. Shapes cycle so
/// any ≥10-case sweep covers every generator, including N = 0 / 1 / 2.
inline PropCase make_case(std::uint64_t case_seed) {
  support::Xoshiro256ss rng(support::hash_u64(case_seed ^ 0x9e3779b97f4a7c15ULL));
  const std::size_t n = 16 + static_cast<std::size_t>(rng.next() % 113);  // 16..128
  switch (case_seed % 10) {
    case 0: return {"plummer/n=" + std::to_string(n),
                    workloads::plummer_sphere(n, case_seed), 1.0};
    case 1: return {"uniform/n=" + std::to_string(n),
                    workloads::uniform_cube(n, case_seed), 1.0};
    case 2: return {"galaxy/n=" + std::to_string(n),
                    workloads::galaxy_collision(n, case_seed), 1.0};
    case 3: return {"coincident/n=" + std::to_string(n),
                    coincident_cluster(n, case_seed), 4.0};
    case 4: return {"mass-ratio/n=" + std::to_string(n),
                    extreme_mass_ratio(n, case_seed), 4.0};
    case 5: return {"collinear/n=" + std::to_string(n),
                    collinear_chain(n, case_seed), 2.0};
    case 6: return {"two-clusters/n=" + std::to_string(n),
                    two_clusters(n, case_seed), 2.0};
    case 7: return {"empty/n=0", core::System<double, 3>(), 1.0};
    case 8: {
      core::System<double, 3> one;
      one.add(urand(rng, 0.1, 10.0), {urand(rng, -1, 1), urand(rng, -1, 1), urand(rng, -1, 1)},
              math::vec<double, 3>::zero());
      return {"single/n=1", std::move(one), 1.0};
    }
    default: {
      core::System<double, 3> pair;
      pair.add(1.0, {urand(rng, -1, 1), 0, 0}, math::vec<double, 3>::zero());
      pair.add(urand(rng, 0.1, 10.0), {urand(rng, 1.5, 3.0), 0, 0},
               math::vec<double, 3>::zero());
      return {"pair/n=2", std::move(pair), 1.0};
    }
  }
}

}  // namespace nbody::prop
