// Tests for the quadrupole extension (paper Sec. IV-A-3: "the algorithms
// described here extend to multipoles"): SymTensor algebra, the point
// quadrupole and parallel-axis identity, the far-field expansion against
// direct summation, and — the property that matters — quadrupoles reducing
// the Barnes-Hut force error at fixed theta for octree, BVH, and reference.
#include <gtest/gtest.h>

#include <cmath>

#include "bvh/strategy.hpp"
#include "core/diagnostics.hpp"
#include "core/reference.hpp"
#include "math/multipole.hpp"
#include "octree/strategy.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using nbody::exec::par;
using nbody::exec::par_unseq;
using nbody::exec::seq;
using nbody::math::point_quadrupole;
using nbody::math::quadrupole_accel;
using nbody::math::SymTensor;
using vec3 = nbody::math::vec3d;

// ---------------------------------------------------------------- SymTensor

TEST(SymTensor, PackedIndexing3d) {
  SymTensor<double, 3> t;
  // (xx, xy, xz, yy, yz, zz)
  EXPECT_EQ(t.index(0, 0), 0u);
  EXPECT_EQ(t.index(0, 1), 1u);
  EXPECT_EQ(t.index(0, 2), 2u);
  EXPECT_EQ(t.index(1, 1), 3u);
  EXPECT_EQ(t.index(1, 2), 4u);
  EXPECT_EQ(t.index(2, 2), 5u);
  // Symmetry of access.
  EXPECT_EQ(t.index(2, 0), t.index(0, 2));
  EXPECT_EQ(t.index(1, 0), t.index(0, 1));
}

TEST(SymTensor, PackedIndexing2d) {
  SymTensor<double, 2> t;
  EXPECT_EQ(t.index(0, 0), 0u);
  EXPECT_EQ(t.index(0, 1), 1u);
  EXPECT_EQ(t.index(1, 1), 2u);
  EXPECT_EQ((SymTensor<double, 2>::size), 3u);
}

TEST(SymTensor, MulMatchesDenseMatrix) {
  SymTensor<double, 3> t;
  t.at(0, 0) = 1;
  t.at(0, 1) = 2;
  t.at(0, 2) = 3;
  t.at(1, 1) = 4;
  t.at(1, 2) = 5;
  t.at(2, 2) = 6;
  const vec3 v{{1, -1, 2}};
  // Dense: [1 2 3; 2 4 5; 3 5 6] * (1,-1,2) = (1-2+6, 2-4+10, 3-5+12).
  const vec3 r = t.mul(v);
  EXPECT_DOUBLE_EQ(r[0], 5.0);
  EXPECT_DOUBLE_EQ(r[1], 8.0);
  EXPECT_DOUBLE_EQ(r[2], 10.0);
  EXPECT_DOUBLE_EQ(t.quad_form(v), dot(v, r));
}

TEST(SymTensor, PointQuadrupoleIsTraceless) {
  nbody::support::Xoshiro256ss rng(1);
  for (int rep = 0; rep < 100; ++rep) {
    const vec3 d{{rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)}};
    const auto q = point_quadrupole(rng.uniform(0.1, 5.0), d);
    EXPECT_NEAR(q.trace(), 0.0, 1e-12);
  }
}

TEST(SymTensor, ParallelAxisMatchesDirectAccumulation) {
  // Q about new origin computed two ways: (a) directly from the points,
  // (b) from the old-origin Q via the parallel-axis shift.
  nbody::support::Xoshiro256ss rng(2);
  std::vector<vec3> pts(20);
  std::vector<double> masses(20);
  vec3 com_a = vec3::zero();
  double mass = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    pts[i] = {{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)}};
    masses[i] = rng.uniform(0.5, 2.0);
    com_a += pts[i] * masses[i];
    mass += masses[i];
  }
  com_a /= mass;  // cluster's own center of mass
  const vec3 com_b = com_a + vec3{{0.7, -0.3, 0.4}};  // parent's center of mass

  SymTensor<double, 3> direct_b{};
  SymTensor<double, 3> about_a{};
  for (std::size_t i = 0; i < pts.size(); ++i) {
    direct_b += point_quadrupole(masses[i], pts[i] - com_b);
    about_a += point_quadrupole(masses[i], pts[i] - com_a);
  }
  const auto shifted = about_a + point_quadrupole(mass, com_a - com_b);
  for (std::size_t c = 0; c < SymTensor<double, 3>::size; ++c)
    EXPECT_NEAR(shifted.q[c], direct_b.q[c], 1e-9) << c;
}

// ---------------------------------------------------------------- expansion

TEST(QuadrupoleAccel, ImprovesFarFieldOfPointCluster) {
  // A small dumbbell viewed from afar: monopole error is O((s/r)^2), adding
  // the quadrupole drops it to O((s/r)^3).
  const double m1 = 1.0, m2 = 2.0;
  const vec3 x1{{-0.1, 0, 0}}, x2{{0.05, 0.02, -0.01}};
  const double mass = m1 + m2;
  const vec3 com = (x1 * m1 + x2 * m2) / mass;
  auto quad = point_quadrupole(m1, x1 - com);
  quad += point_quadrupole(m2, x2 - com);

  nbody::support::Xoshiro256ss rng(3);
  for (int rep = 0; rep < 50; ++rep) {
    const double ct = rng.uniform(-1.0, 1.0);
    const double st = std::sqrt(1 - ct * ct);
    const double ph = rng.uniform(0.0, 6.28);
    const vec3 xi = vec3{{st * std::cos(ph), st * std::sin(ph), ct}} * 3.0;
    const vec3 exact = nbody::math::gravity_accel(xi, x1, m1, 1.0, 0.0) +
                       nbody::math::gravity_accel(xi, x2, m2, 1.0, 0.0);
    const vec3 mono = nbody::math::gravity_accel(xi, com, mass, 1.0, 0.0);
    const vec3 quad_a = mono + quadrupole_accel(xi, com, quad, 1.0, 0.0);
    EXPECT_LT(norm(quad_a - exact), 0.5 * norm(mono - exact)) << rep;
  }
}

TEST(QuadrupoleAccel, ZeroTensorAddsNothing) {
  const SymTensor<double, 3> zero{};
  const vec3 a = quadrupole_accel(vec3{{1, 2, 3}}, vec3{{4, 5, 6}}, zero, 1.0, 0.0);
  EXPECT_EQ(a, vec3::zero());
}

TEST(QuadrupoleAccel, SingleBodyNodeHasZeroQuadrupole) {
  const auto q = point_quadrupole(2.0, vec3::zero());
  for (double c : q.q) EXPECT_DOUBLE_EQ(c, 0.0);
}

// ---------------------------------------------------------------- end to end

template <class Strategy, class Policy>
double strategy_error(const nbody::core::System<double, 3>& initial,
                      nbody::core::SimConfig<double> cfg, Policy policy) {
  auto sys = initial;
  Strategy strat;
  nbody::core::accelerate(strat, policy, sys, cfg);
  std::vector<vec3> got(sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) got[sys.id[i]] = sys.a[i];
  auto exact = initial;
  cfg.quadrupole = false;
  nbody::core::reference_accelerations(exact, cfg);
  return nbody::core::rms_relative_error(got, exact.a);
}

TEST(QuadrupoleEndToEnd, OctreeErrorDropsAtFixedTheta) {
  const auto sys = nbody::workloads::plummer_sphere(1500, 21);
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.7;
  cfg.quadrupole = false;
  const double mono = strategy_error<nbody::octree::OctreeStrategy<double, 3>>(sys, cfg, par);
  cfg.quadrupole = true;
  const double quad = strategy_error<nbody::octree::OctreeStrategy<double, 3>>(sys, cfg, par);
  EXPECT_LT(quad, 0.5 * mono);
}

TEST(QuadrupoleEndToEnd, BvhErrorDropsAtFixedTheta) {
  const auto sys = nbody::workloads::plummer_sphere(1500, 22);
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.7;
  cfg.quadrupole = false;
  const double mono =
      strategy_error<nbody::bvh::BVHStrategy<double, 3>>(sys, cfg, par_unseq);
  cfg.quadrupole = true;
  const double quad =
      strategy_error<nbody::bvh::BVHStrategy<double, 3>>(sys, cfg, par_unseq);
  EXPECT_LT(quad, 0.5 * mono);
}

TEST(QuadrupoleEndToEnd, ReferenceErrorDropsAtFixedTheta) {
  const auto sys = nbody::workloads::plummer_sphere(1000, 23);
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.7;
  cfg.quadrupole = false;
  const double mono =
      strategy_error<nbody::core::ReferenceBarnesHut<double, 3>>(sys, cfg, seq);
  cfg.quadrupole = true;
  const double quad =
      strategy_error<nbody::core::ReferenceBarnesHut<double, 3>>(sys, cfg, seq);
  EXPECT_LT(quad, 0.5 * mono);
}

TEST(QuadrupoleEndToEnd, OctreeNodeQuadrupolesMatchReferenceSums) {
  // Cross-check the wait-free upward pass against a direct computation: the
  // root quadrupole equals the sum over all bodies about the global com.
  const auto sys = nbody::workloads::plummer_sphere(2000, 24);
  nbody::octree::ConcurrentOctree<double, 3> tree;
  tree.build(par, sys.x, nbody::core::compute_root_cube(par, sys.x));
  tree.compute_multipoles(par, sys.m, sys.x);
  tree.compute_quadrupoles(par, sys.m, sys.x);
  const vec3 com = tree.node_com(0);
  SymTensor<double, 3> want{};
  for (std::size_t i = 0; i < sys.size(); ++i)
    want += point_quadrupole(sys.m[i], sys.x[i] - com);
  const auto& got = tree.node_quadrupole(0);
  for (std::size_t c = 0; c < SymTensor<double, 3>::size; ++c)
    EXPECT_NEAR(got.q[c], want.q[c], 1e-9 * std::max(1.0, std::abs(want.q[c]))) << c;
}

TEST(QuadrupoleEndToEnd, BvhRootQuadrupoleMatchesDirect) {
  auto sys = nbody::workloads::plummer_sphere(1024, 25);
  nbody::bvh::HilbertBVH<double, 3> bvh;
  bvh.build(par_unseq, sys.m, sys.x, /*quadrupole=*/true);
  ASSERT_TRUE(bvh.has_quadrupoles());
  const vec3 com = bvh.node_com(1);
  SymTensor<double, 3> want{};
  for (std::size_t i = 0; i < sys.size(); ++i)
    want += point_quadrupole(sys.m[i], sys.x[i] - com);
  const auto& got = bvh.node_quadrupole(1);
  for (std::size_t c = 0; c < SymTensor<double, 3>::size; ++c)
    EXPECT_NEAR(got.q[c], want.q[c], 1e-9 * std::max(1.0, std::abs(want.q[c]))) << c;
}

TEST(QuadrupoleEndToEnd, RequestWithoutComputeThrows) {
  auto sys = nbody::workloads::plummer_sphere(64, 26);
  nbody::octree::ConcurrentOctree<double, 3> tree;
  tree.build(par, sys.x, nbody::core::compute_root_cube(par, sys.x));
  tree.compute_multipoles(par, sys.m, sys.x);
  std::vector<vec3> a(sys.size());
  EXPECT_THROW(tree.accelerations(par_unseq, sys.m, sys.x, a, 0.5, 1.0, 0.0, true),
               std::invalid_argument);
}

TEST(QuadrupoleEndToEnd, TwoDimensionalQuadrupolesWork) {
  nbody::support::Xoshiro256ss rng(27);
  nbody::core::System<double, 2> sys;
  for (int i = 0; i < 600; ++i)
    sys.add(rng.uniform(0.5, 1.5), {{rng.uniform(-1, 1), rng.uniform(-1, 1)}},
            nbody::math::vec2d::zero());
  nbody::core::SimConfig<double> cfg;
  cfg.theta = 0.7;
  auto exact = sys;
  nbody::core::reference_accelerations(exact, cfg);
  auto run2d = [&](bool quad) {
    auto s = sys;
    auto c = cfg;
    c.quadrupole = quad;
    nbody::octree::OctreeStrategy<double, 2> strat;
    nbody::core::accelerate(strat, par, s, c);
    return nbody::core::rms_relative_error(s.a, exact.a);
  };
  EXPECT_LT(run2d(true), 0.7 * run2d(false));
}

}  // namespace
