// Precision-genericity tests: the paper evaluates FP64 (footnote 2: "to
// enable comparisons with Thüring et al.") but the library is templated on
// the scalar. These tests instantiate the full pipelines with float and
// check they track the double-precision results within single-precision
// tolerances, plus angular-momentum conservation (diagnostics added beyond
// the paper's mass/energy checks).
#include <gtest/gtest.h>

#include <cmath>

#include "allpairs/allpairs.hpp"
#include "bvh/strategy.hpp"
#include "core/diagnostics.hpp"
#include "core/integrator.hpp"
#include "core/simulation.hpp"
#include "octree/strategy.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using nbody::exec::par;
using nbody::exec::par_unseq;
using nbody::exec::seq;

template <class T>
nbody::core::System<T, 3> random_system(std::size_t n, std::uint64_t seed) {
  nbody::support::Xoshiro256ss rng(seed);
  nbody::core::System<T, 3> sys;
  for (std::size_t i = 0; i < n; ++i) {
    sys.add(static_cast<T>(rng.uniform(0.5, 1.5)),
            {{static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1)),
              static_cast<T>(rng.uniform(-1, 1))}},
            nbody::math::vec<T, 3>::zero());
  }
  return sys;
}

template <class T>
std::vector<nbody::math::vec<T, 3>> exact_accels(const nbody::core::System<T, 3>& in,
                                                 T theta_unused, T eps2) {
  (void)theta_unused;
  std::vector<nbody::math::vec<T, 3>> a(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    auto acc = nbody::math::vec<T, 3>::zero();
    for (std::size_t j = 0; j < in.size(); ++j) {
      if (j == i) continue;
      acc += nbody::math::gravity_accel(in.x[i], in.x[j], in.m[j], T(1), eps2);
    }
    a[i] = acc;
  }
  return a;
}

TEST(Float32, OctreeForcesTrackFloatExactSum) {
  auto sys = random_system<float>(800, 1);
  nbody::core::SimConfig<float> cfg;
  cfg.theta = 0.3f;
  cfg.softening = 0.05f;
  const auto exact = exact_accels<float>(sys, cfg.theta, cfg.eps2());
  nbody::octree::OctreeStrategy<float, 3> strat;
  nbody::core::accelerate(strat, par, sys, cfg);
  double err2 = 0, norm2sum = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    err2 += static_cast<double>(norm2(sys.a[i] - exact[i]));
    norm2sum += static_cast<double>(norm2(exact[i]));
  }
  EXPECT_LT(std::sqrt(err2 / norm2sum), 2e-2);
}

TEST(Float32, BvhForcesTrackFloatExactSum) {
  auto sys = random_system<float>(800, 2);
  nbody::core::SimConfig<float> cfg;
  cfg.theta = 0.3f;
  cfg.softening = 0.05f;
  const auto before = sys;
  nbody::bvh::BVHStrategy<float, 3> strat;
  nbody::core::accelerate(strat, par_unseq, sys, cfg);
  const auto exact = exact_accels<float>(before, cfg.theta, cfg.eps2());
  double err2 = 0, norm2sum = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const auto want = exact[sys.id[i]];
    err2 += static_cast<double>(norm2(sys.a[i] - want));
    norm2sum += static_cast<double>(norm2(want));
  }
  EXPECT_LT(std::sqrt(err2 / norm2sum), 2e-2);
}

TEST(Float32, SimulationRunsAndConservesMass) {
  auto sys = random_system<float>(500, 3);
  nbody::core::SimConfig<float> cfg;
  cfg.dt = 1e-3f;
  const float m0 = nbody::core::total_mass(seq, sys);
  nbody::core::Simulation<float, 3, nbody::octree::OctreeStrategy<float, 3>> sim(
      std::move(sys), cfg);
  sim.run(par, 10);
  EXPECT_FLOAT_EQ(nbody::core::total_mass(seq, sim.system()), m0);
}

TEST(Float32, QuadrupoleAlsoWorksInSinglePrecision) {
  auto sys = random_system<float>(600, 4);
  nbody::core::SimConfig<float> cfg;
  cfg.theta = 0.7f;
  const auto before = sys;
  const auto exact = exact_accels<float>(before, cfg.theta, cfg.eps2());
  auto err_with = [&](bool quad) {
    auto s = before;
    auto c = cfg;
    c.quadrupole = quad;
    nbody::octree::OctreeStrategy<float, 3> strat;
    nbody::core::accelerate(strat, par, s, c);
    double err2 = 0, n2 = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      err2 += static_cast<double>(norm2(s.a[i] - exact[i]));
      n2 += static_cast<double>(norm2(exact[i]));
    }
    return std::sqrt(err2 / n2);
  };
  EXPECT_LT(err_with(true), err_with(false));
}

// ---------------------------------------------------------------- ang. momentum

TEST(AngularMomentum, KnownValue3d) {
  nbody::core::System<double, 3> sys;
  // m=2 at x=(1,0,0) with v=(0,3,0): L = m x cross v = (0,0,6).
  sys.add(2.0, {{1, 0, 0}}, {{0, 3, 0}});
  const auto L = nbody::core::angular_momentum(seq, sys);
  EXPECT_DOUBLE_EQ(L[0], 0.0);
  EXPECT_DOUBLE_EQ(L[1], 0.0);
  EXPECT_DOUBLE_EQ(L[2], 6.0);
}

TEST(AngularMomentum, KnownValue2d) {
  nbody::core::System<double, 2> sys;
  sys.add(2.0, {{1, 0}}, {{0, 3}});
  EXPECT_DOUBLE_EQ(nbody::core::angular_momentum(seq, sys), 6.0);
}

TEST(AngularMomentum, ConservedByCentralForceDynamics) {
  auto sys = nbody::workloads::plummer_sphere(300, 5);
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 1e-3;
  const auto L0 = nbody::core::angular_momentum(seq, sys);
  nbody::allpairs::AllPairsCol<double, 3> force;  // exactly pair-antisymmetric
  nbody::core::accelerate(force, par, sys, cfg);
  nbody::core::leapfrog_prime(seq, sys, cfg.dt);
  for (int s = 0; s < 100; ++s) {
    nbody::core::accelerate(force, par, sys, cfg);
    nbody::core::leapfrog_step(seq, sys, cfg.dt);
  }
  const auto L1 = nbody::core::angular_momentum(seq, sys);
  EXPECT_LT(norm(L1 - L0), 1e-6 * std::max(1.0, norm(L0)));
}

}  // namespace
