// JobServer end-to-end: journal durability, admission control, fault
// isolation (poison quarantine, retry/backoff, hang reclaim), memory-budget
// eviction, deadline shedding, crash/suspend resume, and checkpoint
// corruption recovery. Companion shell-level coverage: ci/run_matrix.sh
// (SERVE=1, SOAK=1 lanes).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "allpairs/allpairs.hpp"
#include "bvh/strategy.hpp"
#include "core/integrator.hpp"
#include "core/simulation.hpp"
#include "core/snapshot.hpp"
#include "exec/chaos/race_detector.hpp"
#include "exec/policy.hpp"
#include "server/job_server.hpp"
#include "support/fault.hpp"
#include "workloads/workloads.hpp"

namespace {

namespace fs = std::filesystem;
using namespace nbody;
using support::FaultSite;

struct FaultScope {
  FaultScope() { support::disarm_all_faults(); }
  ~FaultScope() { support::disarm_all_faults(); }
};

struct TempDir {
  fs::path path;
  // The pid suffix matters: ctest -j runs each discovered test as its own
  // process, so parametrized cases sharing a fixed name would remove_all
  // each other's state mid-test.
  explicit TempDir(const char* name) {
    path = fs::temp_directory_path() /
           (std::string(name) + "." + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string file(const char* f) const { return (path / f).string(); }
};

server::JobSpec quick_spec(const std::string& id, std::size_t n = 32,
                           std::size_t steps = 20) {
  server::JobSpec s;
  s.id = id;
  s.workload = "plummer";
  s.n = n;
  s.steps = steps;
  s.strategy = "allpairs";
  s.policy = "seq";
  s.checkpoint_every = 4;
  return s;
}

server::ServerOptions quick_opts(const TempDir& tmp, std::size_t runners = 1) {
  server::ServerOptions o;
  o.max_concurrent_jobs = runners;
  o.work_dir = tmp.path.string();
  o.journal_path = tmp.file("journal.nbjl");
  o.slice_steps = 8;
  return o;
}

// ------------------------------------------------------------- the journal

TEST(Journal, RoundtripAndSequenceContinuation) {
  TempDir tmp("nbody_server_journal");
  {
    server::JobJournal j(tmp.file("j.nbjl"));
    EXPECT_TRUE(j.append(server::JournalRecordType::admit, "a", 0, "id=a n=32"));
    EXPECT_TRUE(j.append(server::JournalRecordType::checkpoint, "a", 8, "a.8.snap"));
    EXPECT_TRUE(j.append(server::JournalRecordType::complete, "a", 20, "out/a.snap"));
  }
  auto rep = server::JobJournal::replay(tmp.file("j.nbjl"));
  EXPECT_FALSE(rep.truncated);
  ASSERT_EQ(rep.records.size(), 3u);
  EXPECT_EQ(rep.records[0].type, server::JournalRecordType::admit);
  EXPECT_EQ(rep.records[0].detail, "id=a n=32");
  EXPECT_EQ(rep.records[1].steps, 8u);
  EXPECT_EQ(rep.records[2].seq, 2u);
  // A reopened journal continues the sequence.
  server::JobJournal j2(tmp.file("j.nbjl"));
  EXPECT_TRUE(j2.append(server::JournalRecordType::retry, "a", 20, "again"));
  rep = server::JobJournal::replay(tmp.file("j.nbjl"));
  ASSERT_EQ(rep.records.size(), 4u);
  EXPECT_EQ(rep.records[3].seq, 3u);
}

TEST(Journal, TornTailToleratedAndStopsReplay) {
  TempDir tmp("nbody_server_journal_torn");
  {
    server::JobJournal j(tmp.file("j.nbjl"));
    j.append(server::JournalRecordType::admit, "a", 0, "spec");
    j.append(server::JournalRecordType::checkpoint, "a", 8, "a.8.snap");
  }
  {  // simulate kill -9 mid-append: a half-written last line
    std::ofstream out(tmp.file("j.nbjl"), std::ios::app);
    out << "NBJL1 2 complete a 2";  // no crc, no newline
  }
  const auto rep = server::JobJournal::replay(tmp.file("j.nbjl"));
  EXPECT_TRUE(rep.truncated);
  ASSERT_EQ(rep.records.size(), 2u);
  EXPECT_EQ(rep.records[1].type, server::JournalRecordType::checkpoint);
}

// The double-crash scenario: a torn tail must be healed when the journal is
// reopened, otherwise the first post-restart record glues onto the partial
// line, fails its CRC, and hides every later record from the NEXT replay —
// re-running finished jobs and dropping ones admitted after the restart.
TEST(Journal, TornTailHealedOnReopenSoLaterRecordsSurviveReplay) {
  TempDir tmp("nbody_server_journal_heal");
  {
    server::JobJournal j(tmp.file("j.nbjl"));
    j.append(server::JournalRecordType::admit, "a", 0, "spec");
    j.append(server::JournalRecordType::complete, "a", 20, "out/a.snap");
  }
  {  // first crash: kill -9 mid-append, half a line, no newline
    std::ofstream out(tmp.file("j.nbjl"), std::ios::app | std::ios::binary);
    out << "NBJL1 2 admit b 0 wo";
  }
  {  // restarted server: reopen heals the tail, then appends continue
    server::JobJournal j(tmp.file("j.nbjl"));
    EXPECT_TRUE(j.healed_torn_tail());
    EXPECT_TRUE(j.append(server::JournalRecordType::admit, "c", 0, "spec-c"));
    EXPECT_TRUE(j.append(server::JournalRecordType::complete, "c", 10, "out/c.snap"));
  }
  // Second crash + replay: every post-heal record must be reachable.
  const auto rep = server::JobJournal::replay(tmp.file("j.nbjl"));
  EXPECT_FALSE(rep.truncated);
  ASSERT_EQ(rep.records.size(), 4u);
  EXPECT_EQ(rep.records[2].job_id, "c");
  EXPECT_EQ(rep.records[2].seq, 2u);  // sequence continues past the valid prefix
  EXPECT_EQ(rep.records[3].type, server::JournalRecordType::complete);
  // A clean reopen does not report a heal.
  server::JobJournal clean(tmp.file("j.nbjl"));
  EXPECT_FALSE(clean.healed_torn_tail());
}

TEST(Journal, FlippedChecksumByteStopsReplayAtThatRecord) {
  TempDir tmp("nbody_server_journal_crc");
  {
    server::JobJournal j(tmp.file("j.nbjl"));
    j.append(server::JournalRecordType::admit, "a", 0, "spec");
    j.append(server::JournalRecordType::checkpoint, "a", 8, "a.8.snap");
    j.append(server::JournalRecordType::complete, "a", 20, "out/a.snap");
  }
  std::ifstream in(tmp.file("j.nbjl"));
  std::vector<std::string> lines;
  for (std::string l; std::getline(in, l);) lines.push_back(l);
  in.close();
  ASSERT_EQ(lines.size(), 3u);
  lines[1][10] ^= 1;  // flip a payload byte: crc no longer matches
  std::ofstream out(tmp.file("j.nbjl"), std::ios::trunc);
  for (const auto& l : lines) out << l << '\n';
  out.close();
  const auto rep = server::JobJournal::replay(tmp.file("j.nbjl"));
  EXPECT_TRUE(rep.truncated);
  ASSERT_EQ(rep.records.size(), 1u);  // only the record before the corruption
  EXPECT_EQ(rep.records[0].type, server::JournalRecordType::admit);
}

// ------------------------------------------------------------ the job spec

TEST(JobSpec, SerializeParseRoundtrip) {
  auto s = quick_spec("round-trip_1", 48, 30);
  s.strategy = "bvh";
  s.policy = "par";
  s.quadrupole = true;
  s.run_budget_ms = 1500;
  const auto back = server::parse_job_spec(server::serialize_job_spec(s), "x");
  EXPECT_EQ(back.id, s.id);
  EXPECT_EQ(back.n, s.n);
  EXPECT_EQ(back.steps, s.steps);
  EXPECT_EQ(back.strategy, s.strategy);
  EXPECT_EQ(back.quadrupole, true);
  EXPECT_DOUBLE_EQ(back.run_budget_ms, 1500);
}

TEST(JobSpec, RejectsInvalidSpecs) {
  EXPECT_THROW(server::parse_job_spec("workload=nope n=32", "j"),
               std::invalid_argument);
  EXPECT_THROW(server::parse_job_spec("n=1", "j"), std::invalid_argument);
  EXPECT_THROW(server::parse_job_spec("steps=0", "j"), std::invalid_argument);
  EXPECT_THROW(server::parse_job_spec("n=abc", "j"), std::invalid_argument);
  EXPECT_THROW(server::parse_job_spec("dt=-1", "j"), std::invalid_argument);
  EXPECT_THROW(server::parse_job_spec("bogus_key=1", "j"), std::invalid_argument);
  EXPECT_THROW(server::parse_job_spec("strategy=octree policy=par_unseq", "j"),
               std::invalid_argument);
  EXPECT_THROW(server::parse_job_spec("", "bad id!"), std::invalid_argument);
  // Comments and multi-line specs parse.
  const auto ok = server::parse_job_spec("# a comment\nn=64 steps=5\npolicy=seq\n", "ok");
  EXPECT_EQ(ok.n, 64u);
}

// --------------------------------------------------------- basic operation

TEST(JobServer, SingleJobCompletesWithResultSnapshot) {
  TempDir tmp("nbody_server_single");
  server::JobServer srv(quick_opts(tmp));
  ASSERT_TRUE(srv.submit(quick_spec("solo")).admitted);
  srv.run_until_drained();
  const auto r = srv.report_for("solo");
  EXPECT_EQ(r.state, server::JobState::completed);
  EXPECT_EQ(r.steps_done, 20u);
  EXPECT_EQ(r.failures, 0u);
  const auto sys = core::load_snapshot_binary<double, 3>(r.result_path);
  EXPECT_EQ(sys.size(), 32u);
}

TEST(JobServer, DuplicateIdAndBackpressureRejected) {
  TempDir tmp("nbody_server_admission");
  auto opts = quick_opts(tmp);
  opts.queue_capacity = 2;
  server::JobServer srv(opts);
  EXPECT_TRUE(srv.submit(quick_spec("a")).admitted);
  const auto dup = srv.submit(quick_spec("a"));
  EXPECT_FALSE(dup.admitted);
  EXPECT_NE(dup.reason.find("duplicate"), std::string::npos);
  EXPECT_TRUE(srv.submit(quick_spec("b")).admitted);
  const auto full = srv.submit(quick_spec("c"));
  EXPECT_FALSE(full.admitted);
  EXPECT_NE(full.reason.find("backpressure"), std::string::npos);
  EXPECT_EQ(srv.rejected_submits(), 2u);
  srv.run_until_drained();
}

TEST(JobServer, RejectsInvalidSpecWithoutThrowing) {
  TempDir tmp("nbody_server_invalid");
  server::JobServer srv(quick_opts(tmp));
  auto bad = quick_spec("bad");
  bad.steps = 0;
  const auto res = srv.submit(bad);
  EXPECT_FALSE(res.admitted);
  EXPECT_NE(res.reason.find("steps"), std::string::npos);
}

// The acceptance bar: >= 8 concurrent jobs, each bit-identical to a solo
// run of the same spec. Deterministic configurations only (seq policy), no
// memory pressure (retained runners, no eviction roundtrip), no failures.
TEST(JobServer, EightConcurrentJobsBitIdenticalToSoloRuns) {
  TempDir tmp("nbody_server_concurrent");
  auto opts = quick_opts(tmp, /*runners=*/8);
  opts.slice_steps = 7;  // deliberately not a divisor of any job's steps
  server::JobServer srv(opts);
  std::vector<server::JobSpec> specs;
  for (int i = 0; i < 8; ++i) {
    auto s = quick_spec("job" + std::to_string(i), 24 + 4 * (i % 3), 15 + i);
    s.seed = 100 + static_cast<std::uint64_t>(i);
    s.strategy = (i % 2 == 0) ? "allpairs" : "bvh";
    specs.push_back(s);
    ASSERT_TRUE(srv.submit(s).admitted);
  }
  srv.run_until_drained();
  for (const auto& s : specs) {
    const auto r = srv.report_for(s.id);
    ASSERT_EQ(r.state, server::JobState::completed) << s.id << ": " << r.last_error;
    ASSERT_EQ(r.restores, 0u) << s.id;  // restores would perturb bit-identity
    const auto got = core::load_snapshot_binary<double, 3>(r.result_path);

    // Solo reference: same spec, one straight-line guarded-free run.
    core::SimConfig<double> cfg;
    cfg.dt = s.dt;
    cfg.theta = s.theta;
    cfg.softening = s.softening;
    auto sys = server::make_job_system(s);
    core::System<double, 3> want;
    if (s.strategy == "allpairs") {
      core::Simulation<double, 3, allpairs::AllPairs<double, 3>> sim(sys, cfg);
      sim.run(exec::seq, s.steps);
      sim.synchronize_velocities(exec::seq);
      want = sim.system();
    } else {
      core::Simulation<double, 3, bvh::BVHStrategy<double, 3>> sim(sys, cfg);
      sim.run(exec::seq, s.steps);
      sim.synchronize_velocities(exec::seq);
      want = sim.system();
    }
    ASSERT_EQ(got.size(), want.size()) << s.id;
    for (std::size_t b = 0; b < want.size(); ++b)
      for (std::size_t d = 0; d < 3; ++d) {
        ASSERT_EQ(got.x[b][d], want.x[b][d]) << s.id << " body " << b;
        ASSERT_EQ(got.v[b][d], want.v[b][d]) << s.id << " body " << b;
      }
  }
}

// ---------------------------------------------------------- fault isolation

TEST(JobServer, PoisonJobQuarantinedHealthyJobsComplete) {
  TempDir tmp("nbody_server_poison");
  auto opts = quick_opts(tmp, /*runners=*/2);
  opts.job_retries = 2;
  opts.backoff_base_ms = 1;
  server::JobServer srv(opts);
  auto poison = quick_spec("venom", 16, 10);
  poison.workload = "poison";
  ASSERT_TRUE(srv.submit(poison).admitted);
  ASSERT_TRUE(srv.submit(quick_spec("healthy1")).admitted);
  ASSERT_TRUE(srv.submit(quick_spec("healthy2")).admitted);
  srv.run_until_drained();

  const auto q = srv.report_for("venom");
  EXPECT_EQ(q.state, server::JobState::quarantined);
  EXPECT_EQ(q.failures, 2u);  // exactly K consecutive failures
  ASSERT_FALSE(q.quarantine_path.empty());
  std::ifstream bundle(q.quarantine_path);
  std::string text((std::istreambuf_iterator<char>(bundle)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("venom"), std::string::npos);
  EXPECT_NE(text.find("workload=poison"), std::string::npos);
  EXPECT_NE(text.find("last error"), std::string::npos);

  EXPECT_EQ(srv.report_for("healthy1").state, server::JobState::completed);
  EXPECT_EQ(srv.report_for("healthy2").state, server::JobState::completed);
}

TEST(JobServer, DispatchFaultRetriesWithBackoffThenCompletes) {
  FaultScope faults;
  TempDir tmp("nbody_server_retry");
  auto opts = quick_opts(tmp);
  opts.job_retries = 4;
  opts.backoff_base_ms = 1;
  server::JobServer srv(opts);
  ASSERT_TRUE(srv.submit(quick_spec("flaky")).admitted);
  // First two dispatch attempts die; the third succeeds.
  support::arm_fault(FaultSite::server_dispatch, {1.0, 0, 2});
  srv.run_until_drained();
  const auto r = srv.report_for("flaky");
  EXPECT_EQ(r.state, server::JobState::completed);
  EXPECT_EQ(r.failures, 2u);
  EXPECT_EQ(r.steps_done, 20u);
  EXPECT_EQ(support::fault_fires(FaultSite::server_dispatch), 2u);
}

TEST(JobServer, AdmissionFaultRejectsWithoutCrashing) {
  FaultScope faults;
  TempDir tmp("nbody_server_admitfault");
  server::JobServer srv(quick_opts(tmp));
  support::arm_fault(FaultSite::server_admit, {1.0, 0, 1});
  const auto res = srv.submit(quick_spec("first"));
  EXPECT_FALSE(res.admitted);
  EXPECT_NE(res.reason.find("admission fault"), std::string::npos);
  EXPECT_TRUE(srv.submit(quick_spec("first")).admitted);  // transient: retry lands
  srv.run_until_drained();
  EXPECT_EQ(srv.report_for("first").state, server::JobState::completed);
}

TEST(JobServer, JournalWriteFaultCountedAndSurvived) {
  FaultScope faults;
  TempDir tmp("nbody_server_journalfault");
  server::JobServer srv(quick_opts(tmp));
  support::arm_fault(FaultSite::server_journal_write, {1.0, 0, 1});
  ASSERT_TRUE(srv.submit(quick_spec("stoic")).admitted);  // admit record is lost
  srv.run_until_drained();
  EXPECT_EQ(srv.report_for("stoic").state, server::JobState::completed);
  EXPECT_EQ(srv.journal_lost_writes(), 1u);
}

// An injected worker hang inside a job's parallel region: the per-job
// watchdog reclaims it via the guarded ladder; the server never sees a
// wedged runner thread.
TEST(JobServer, WatchdogReclaimsHungJob) {
  FaultScope faults;
  TempDir tmp("nbody_server_hang");
  auto opts = quick_opts(tmp);
  opts.guard_max_retries = 6;
  server::JobServer srv(opts);
  auto s = quick_spec("wedge", 64, 6);
  s.strategy = "bvh";
  s.policy = "par";
  s.watchdog_ms = 80;
  ASSERT_TRUE(srv.submit(s).admitted);
  support::arm_fault(FaultSite::chunk_hang, {1.0, 0, 1});
  srv.run_until_drained();
  const auto r = srv.report_for("wedge");
  EXPECT_EQ(r.state, server::JobState::completed) << r.last_error;
  EXPECT_EQ(support::fault_fires(FaultSite::chunk_hang), 1u);
  EXPECT_GE(r.watchdog_trips, 1u);
}

// --------------------------------------------- scheduling-policy behaviors

TEST(JobServer, StartDeadlineShedsQueuedJob) {
  TempDir tmp("nbody_server_shed");
  auto opts = quick_opts(tmp, /*runners=*/1);
  opts.slice_steps = 0;  // first job holds the runner for its whole run
  server::JobServer srv(opts);
  ASSERT_TRUE(srv.submit(quick_spec("hog", 256, 60)).admitted);
  auto late = quick_spec("late", 16, 5);
  late.start_deadline_ms = 1e-3;  // any queue wait at all overshoots this
  ASSERT_TRUE(srv.submit(late).admitted);
  srv.run_until_drained();
  EXPECT_EQ(srv.report_for("hog").state, server::JobState::completed);
  const auto r = srv.report_for("late");
  EXPECT_EQ(r.state, server::JobState::shed);
  EXPECT_EQ(r.steps_done, 0u);
  EXPECT_NE(r.last_error.find("start deadline"), std::string::npos);
  // The shed decision is journaled.
  bool saw_shed = false;
  for (const auto& rec : server::JobJournal::replay(opts.journal_path).records)
    saw_shed |= rec.type == server::JournalRecordType::shed && rec.job_id == "late";
  EXPECT_TRUE(saw_shed);
}

TEST(JobServer, MemoryBudgetEvictsAndBothJobsComplete) {
  TempDir tmp("nbody_server_evict");
  auto opts = quick_opts(tmp, /*runners=*/1);
  opts.memory_budget_bodies = 100;  // two n=64 jobs cannot both stay in core
  opts.slice_steps = 8;
  server::JobServer srv(opts);
  ASSERT_TRUE(srv.submit(quick_spec("fat1", 64, 24)).admitted);
  ASSERT_TRUE(srv.submit(quick_spec("fat2", 64, 24)).admitted);
  srv.run_until_drained();
  const auto r1 = srv.report_for("fat1");
  const auto r2 = srv.report_for("fat2");
  EXPECT_EQ(r1.state, server::JobState::completed) << r1.last_error;
  EXPECT_EQ(r2.state, server::JobState::completed) << r2.last_error;
  EXPECT_EQ(r1.steps_done, 24u);
  EXPECT_EQ(r2.steps_done, 24u);
  EXPECT_GE(r1.evictions + r2.evictions, 1u);
}

// ------------------------------------------------------------ crash resume

TEST(JobServer, WallBudgetSuspendsThenFreshServerResumesFromJournal) {
  TempDir tmp("nbody_server_resume");
  {
    auto opts = quick_opts(tmp);
    opts.wall_budget_ms = 25;
    opts.slice_steps = 8;
    server::JobServer srv(opts);
    ASSERT_TRUE(srv.submit(quick_spec("marathon", 256, 2000)).admitted);
    srv.run_until_drained();
    const auto r = srv.report_for("marathon");
    ASSERT_EQ(r.state, server::JobState::suspended);
    ASSERT_LT(r.steps_done, 2000u);
  }
  // A brand-new server (fresh process, in spirit) resumes from the journal.
  server::JobServer srv2(quick_opts(tmp));
  EXPECT_EQ(srv2.resume_from_journal(), 1u);
  {
    const auto r = srv2.report_for("marathon");
    EXPECT_EQ(r.state, server::JobState::queued);
    EXPECT_GT(r.steps_done, 0u);  // picked up at the last durable checkpoint
  }
  srv2.run_until_drained();
  const auto r = srv2.report_for("marathon");
  EXPECT_EQ(r.state, server::JobState::completed) << r.last_error;
  EXPECT_EQ(r.steps_done, 2000u);
  // A third replay sees the job retired and resumes nothing.
  server::JobServer srv3(quick_opts(tmp));
  EXPECT_EQ(srv3.resume_from_journal(), 0u);
}

// Crash DURING a crash-recovery cycle: the first kill -9 tears the journal
// tail, the restarted server heals it and finishes the work, and a third
// server must see everything retired — finished jobs stay finished even
// though their terminal records were appended after the torn line.
TEST(JobServer, TornJournalTailHealedAcrossRestartFinishedJobsStayFinished) {
  TempDir tmp("nbody_server_torn_resume");
  {
    auto opts = quick_opts(tmp);
    opts.wall_budget_ms = 25;
    opts.slice_steps = 8;
    server::JobServer srv(opts);
    ASSERT_TRUE(srv.submit(quick_spec("longhaul", 256, 2000)).admitted);
    ASSERT_TRUE(srv.submit(quick_spec("sprint", 16, 4)).admitted);
    srv.run_until_drained();
    ASSERT_EQ(srv.report_for("longhaul").state, server::JobState::suspended);
  }
  {  // kill -9 mid-append: a half-written record with no newline
    std::ofstream out(tmp.file("journal.nbjl"), std::ios::app | std::ios::binary);
    out << "NBJL1 999 checkpoint longhaul 1";
  }
  {
    server::JobServer srv2(quick_opts(tmp));
    EXPECT_GE(srv2.resume_from_journal(), 1u);
    srv2.run_until_drained();
    const auto r = srv2.report_for("longhaul");
    EXPECT_EQ(r.state, server::JobState::completed) << r.last_error;
  }
  // Without the heal, srv2's records would be glued onto the torn line and
  // unreachable here — and "longhaul" would be re-run from its pre-crash
  // progress on every subsequent restart.
  server::JobServer srv3(quick_opts(tmp));
  EXPECT_EQ(srv3.resume_from_journal(), 0u);
}

// The admit record must land in the journal before the job is runnable:
// runners poll every 10ms, so a small job submitted while the server is
// draining can otherwise journal its terminal record first, and
// last-record-wins replay would resurrect the finished job.
TEST(JobServer, AdmitRecordPrecedesAnyOutcomeRecordUnderConcurrentSubmit) {
  TempDir tmp("nbody_server_admit_order");
  auto opts = quick_opts(tmp, /*runners=*/2);
  opts.slice_steps = 0;  // whole job in one slice: fastest possible turnaround
  server::JobServer srv(opts);
  ASSERT_TRUE(srv.submit(quick_spec("first", 16, 2)).admitted);
  std::thread feeder([&] {
    for (int i = 1; i < 10; ++i)
      srv.submit(quick_spec("tiny" + std::to_string(i), 16, 2));
  });
  srv.run_until_drained();
  feeder.join();
  const auto rep = server::JobJournal::replay(opts.journal_path);
  EXPECT_FALSE(rep.truncated);
  std::set<std::string> admitted;
  for (const auto& r : rep.records) {
    if (r.type == server::JournalRecordType::admit)
      admitted.insert(r.job_id);
    else
      EXPECT_TRUE(admitted.count(r.job_id))
          << journal_record_type_name(r.type) << " record for '" << r.job_id
          << "' precedes its admit record";
  }
}

// job_retries above the width of unsigned must not shift UB into the
// backoff computation; the cap bounds every wait so quarantine is reached
// promptly. (The sanitizer lane is what would catch an unclamped shift.)
TEST(JobServer, ManyRetriesBackoffStaysClampedUntilQuarantine) {
  TempDir tmp("nbody_server_backoff");
  auto opts = quick_opts(tmp);
  opts.job_retries = 40;  // exponent would exceed 31 without the clamp
  opts.backoff_base_ms = 0.01;
  opts.backoff_cap_ms = 0.1;
  server::JobServer srv(opts);
  auto poison = quick_spec("relentless", 16, 10);
  poison.workload = "poison";
  ASSERT_TRUE(srv.submit(poison).admitted);
  srv.run_until_drained();
  const auto r = srv.report_for("relentless");
  EXPECT_EQ(r.state, server::JobState::quarantined);
  EXPECT_EQ(r.failures, 40u);
}

// ----------------------------------------- checkpoint corruption (satellite)

enum class Corruption { truncated, flipped_checksum, v1_header };

const char* corruption_name(Corruption c) {
  switch (c) {
    case Corruption::truncated: return "truncated";
    case Corruption::flipped_checksum: return "flipped_checksum";
    case Corruption::v1_header: return "v1_header";
  }
  return "?";
}

void corrupt_file(const std::string& path, Corruption how) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(f.tellg());
  switch (how) {
    case Corruption::truncated:
      f.close();
      fs::resize_file(path, size / 2);
      break;
    case Corruption::flipped_checksum: {
      f.seekg(-1, std::ios::end);
      char last = 0;
      f.get(last);
      last = static_cast<char>(last ^ 0x5a);
      f.seekp(-1, std::ios::end);
      f.put(last);
      break;
    }
    case Corruption::v1_header: {
      // Stamp the version field (after the 8-byte magic) to 1 and truncate
      // mid-payload: a v1 claim over a torn v2 body must fail cleanly in the
      // v2 reader's size validation, not read garbage.
      const std::uint32_t v1 = 1;
      f.seekp(8, std::ios::beg);
      f.write(reinterpret_cast<const char*>(&v1), sizeof v1);
      f.close();
      fs::resize_file(path, size / 2);
      break;
    }
  }
}

class CorruptCheckpoint
    : public ::testing::TestWithParam<std::tuple<Corruption, const char*>> {};

TEST_P(CorruptCheckpoint, RestartsCleanlyFromStepZero) {
  const auto [how, strategy] = GetParam();
  TempDir tmp("nbody_server_corrupt");
  auto spec = quick_spec("phoenix", 48, 24);
  spec.strategy = strategy;
  spec.policy = "seq";

  // Fabricate the durable state a crashed server would leave behind: a
  // journaled admit + checkpoint pair whose snapshot file we then corrupt.
  const std::string ckpt = tmp.file("checkpoints/phoenix.8.snap");
  fs::create_directories(tmp.path / "checkpoints");
  core::save_snapshot_binary(server::make_job_system(spec), ckpt);
  {
    server::JobJournal j(tmp.file("journal.nbjl"));
    j.append(server::JournalRecordType::admit, spec.id, 0,
             server::serialize_job_spec(spec));
    j.append(server::JournalRecordType::checkpoint, spec.id, 8, ckpt);
  }
  corrupt_file(ckpt, how);
  const auto load_corrupt = [&] { core::load_snapshot_binary<double, 3>(ckpt); };
  EXPECT_THROW(load_corrupt(), std::runtime_error);

  server::JobServer srv(quick_opts(tmp));
  ASSERT_EQ(srv.resume_from_journal(), 1u);
  srv.run_until_drained();
  const auto r = srv.report_for("phoenix");
  EXPECT_EQ(r.state, server::JobState::completed) << r.last_error;
  EXPECT_EQ(r.steps_done, 24u);  // restarted from 0, ran all 24 steps
  bool logged = false;
  for (const auto& line : r.recovery_log)
    logged |= line.find("unusable") != std::string::npos;
  EXPECT_TRUE(logged) << "corruption should be reported in the recovery log";
}

std::string corruption_case_name(
    const ::testing::TestParamInfo<std::tuple<Corruption, const char*>>& info) {
  return std::string(corruption_name(std::get<0>(info.param))) + "_" +
         std::get<1>(info.param);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, CorruptCheckpoint,
    ::testing::Combine(::testing::Values(Corruption::truncated,
                                         Corruption::flipped_checksum,
                                         Corruption::v1_header),
                       ::testing::Values("octree", "bvh")),
    corruption_case_name);

// ------------------------------------------------- chaos/detector coverage

// Negative control: a full server run under the race detector records lock
// traffic from the dispatch path (InstrumentedMutex) and reports zero
// violations.
TEST(JobServerChaos, DispatchPathIsRaceCleanUnderDetector) {
  TempDir tmp("nbody_server_detector");
  std::size_t lock_events = 0, races = 0;
  {
    exec::chaos::DetectorScope detector(/*log_accesses=*/true);
    server::JobServer srv(quick_opts(tmp, /*runners=*/2));
    ASSERT_TRUE(srv.submit(quick_spec("clean1", 24, 10)).admitted);
    ASSERT_TRUE(srv.submit(quick_spec("clean2", 24, 10)).admitted);
    srv.run_until_drained();
    auto& det = exec::chaos::RaceDetector::instance();
    races = det.lockset_races();
    for (const auto& a : det.access_log())
      if (a.kind == exec::chaos::AccessKind::lock_acquire) ++lock_events;
  }
  EXPECT_GT(lock_events, 0u) << "the server's dispatch lock should be instrumented";
  EXPECT_EQ(races, 0u) << exec::chaos::RaceDetector::instance().report();
}

// Positive control: an unsynchronized cross-thread write planted in the
// completion hook (which runs on runner threads, outside the server lock)
// is exactly what the lockset detector must flag.
TEST(JobServerChaos, PlantedRaceInCompletionHookIsDetected) {
  TempDir tmp("nbody_server_planted");
  int shared = 0;
  exec::chaos::DetectorScope detector;
  exec::chaos::checked_store(shared, 1);  // main thread writes first...
  server::JobServer srv(quick_opts(tmp));
  srv.set_completion_hook([&](const server::JobReport&) {
    exec::chaos::checked_store(shared, 2);  // ...runner thread writes lockless
  });
  ASSERT_TRUE(srv.submit(quick_spec("bait", 16, 5)).admitted);
  srv.run_until_drained();
  EXPECT_GE(exec::chaos::RaceDetector::instance().lockset_races(), 1u);
}

}  // namespace
