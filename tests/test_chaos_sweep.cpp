// Differential + metamorphic property sweep (CTest labels: chaos, slow).
//
// 50 randomized systems (tests/prop/generators.hpp: clustered, uniform,
// degenerate — coincident bodies, N = 0/1/2, 18-decade mass ratios) are each
// evaluated under 8 seed-permuted chaos schedules, asserting
//
//   octree  ≡  BVH  ≡  all-pairs  ≡  exact reference
//
// within analytic tolerance, plus metamorphic invariants (translation /
// rotation equivariance, body-permutation invariance, momentum conservation).
// Every assertion is scoped with the case name and NBODY_CHAOS_SEED so a
// failing (system, schedule) pair replays from the printed seeds alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "allpairs/allpairs.hpp"
#include "bvh/strategy.hpp"
#include "core/diagnostics.hpp"
#include "core/simulation.hpp"
#include "exec/algorithms.hpp"
#include "exec/chaos/chaos.hpp"
#include "octree/strategy.hpp"
#include "prop/generators.hpp"
#include "prop/invariants.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

namespace chaos = nbody::exec::chaos;
using nbody::exec::backend;
using nbody::exec::par;
using nbody::exec::par_unseq;
using nbody::prop::forces_of;
using nbody::prop::rel_l2_error;
using nbody::prop::System3;
using nbody::prop::Vec3;

const bool g_thread_env = [] {
  setenv("NBODY_THREADS", "4", /*overwrite=*/0);
  return true;
}();

constexpr std::size_t kSystems = 50;
constexpr std::size_t kSchedules = 8;

// Base tolerances; each case's tol_scale widens the tree bounds for
// degenerate geometries (see generators.hpp).
constexpr double kExactTol = 1e-10;   // same kernel, different summation order
constexpr double kAtomicTol = 1e-9;   // atomic scatter accumulation order
// Barnes-Hut truncation at theta = 0.5. The ball is sized for the worst of
// the small systems (few bodies average the per-body error down less), not
// the typical ~1e-2 of the larger ones.
constexpr double kTreeTol = 0.08;

struct Forces {
  std::vector<Vec3> octree, bvh, allpairs, allpairs_col;
};

Forces forces_under_schedule(const System3& sys, const nbody::core::SimConfig<double>& cfg,
                             std::uint64_t schedule_seed) {
  const backend saved = nbody::exec::default_backend();
  nbody::exec::set_default_backend(backend::chaos_permute);
  chaos::set_seed(schedule_seed);
  Forces f;
  f.octree = forces_of(nbody::octree::OctreeStrategy<double, 3>{}, par, sys, cfg);
  f.bvh = forces_of(nbody::bvh::BVHStrategy<double, 3>{}, par_unseq, sys, cfg);
  f.allpairs = forces_of(nbody::allpairs::AllPairs<double, 3>{}, par_unseq, sys, cfg);
  f.allpairs_col = forces_of(nbody::allpairs::AllPairsCol<double, 3>{}, par, sys, cfg);
  nbody::exec::set_default_backend(saved);
  return f;
}

TEST(DifferentialSweep, AllStrategiesAgreeAcrossFiftySystemsAndEightSchedules) {
  nbody::core::SimConfig<double> cfg;  // theta = 0.5, softened
  for (std::uint64_t case_seed = 0; case_seed < kSystems; ++case_seed) {
    const nbody::prop::PropCase c = nbody::prop::make_case(case_seed);
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);
    const auto ref = nbody::prop::reference_forces(c.sys, cfg);

    Forces first{};
    for (std::uint64_t k = 0; k < kSchedules; ++k) {
      const std::uint64_t sched = nbody::support::hash_u64(case_seed * kSchedules + k + 1);
      const Forces f = forces_under_schedule(c.sys, cfg, sched);
      SCOPED_TRACE("schedule NBODY_CHAOS_SEED=" + std::to_string(sched));

      // Differential: every strategy within its analytic ball of the exact sum.
      EXPECT_LE(rel_l2_error(f.allpairs, ref), kExactTol * c.tol_scale);
      EXPECT_LE(rel_l2_error(f.allpairs_col, ref), kAtomicTol * c.tol_scale);
      EXPECT_LE(rel_l2_error(f.octree, ref), kTreeTol * c.tol_scale);
      EXPECT_LE(rel_l2_error(f.bvh, ref), kTreeTol * c.tol_scale);

      // Schedule invariance: the dispatch permutation may only perturb
      // results through FP accumulation order, never through the answer.
      if (k == 0) {
        first = f;
      } else {
        EXPECT_EQ(nbody::prop::max_abs_diff(f.allpairs, first.allpairs), 0.0)
            << "all-pairs must be bitwise schedule-invariant";
        EXPECT_LE(rel_l2_error(f.allpairs_col, first.allpairs_col), kAtomicTol * c.tol_scale);
        EXPECT_LE(rel_l2_error(f.octree, first.octree), kAtomicTol * c.tol_scale);
        EXPECT_LE(rel_l2_error(f.bvh, first.bvh), kAtomicTol * c.tol_scale);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Group-traversal differential suite: the grouped force path (one MAC walk
// per spatially coherent block, replayed through the SoA batch kernels) must
// agree with the per-body DFS on every generated system — including the
// degenerate ones (coincident piles, 18-decade mass ratios, collinear
// chains, N = 0/1/2). The group MAC is a conservative subset of each
// member's per-body accepts, so the grouped result sits in the same
// truncation ball as the DFS (within kTreeTol of the exact reference) and
// within twice that ball of the DFS itself.
// ---------------------------------------------------------------------------

TEST(DifferentialSweep, GroupTraversalMatchesPerBodyDFSOnEverySystem) {
  nbody::core::SimConfig<double> cfg;  // group_size = 0: per-body DFS
  nbody::core::SimConfig<double> gcfg = cfg;
  for (std::uint64_t case_seed = 0; case_seed < kSystems; ++case_seed) {
    const nbody::prop::PropCase c = nbody::prop::make_case(case_seed);
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);
    const auto ref = nbody::prop::reference_forces(c.sys, cfg);
    const auto dfs_oct =
        forces_of(nbody::octree::OctreeStrategy<double, 3>{}, par, c.sys, cfg);
    const auto dfs_bvh = forces_of(nbody::bvh::BVHStrategy<double, 3>{}, par_unseq, c.sys, cfg);

    for (std::size_t gsize : {std::size_t{8}, std::size_t{32}}) {
      gcfg.group_size = gsize;
      SCOPED_TRACE("group_size=" + std::to_string(gsize));
      // Octree accepts seq and par (build needs starvation freedom); the
      // grouped force phase itself runs par_unseq under the par caller.
      for (int pol = 0; pol < 2; ++pol) {
        SCOPED_TRACE(pol == 0 ? "octree/seq" : "octree/par");
        const auto grp =
            pol == 0 ? forces_of(nbody::octree::OctreeStrategy<double, 3>{}, nbody::exec::seq,
                                 c.sys, gcfg)
                     : forces_of(nbody::octree::OctreeStrategy<double, 3>{}, par, c.sys, gcfg);
        EXPECT_LE(rel_l2_error(grp, ref), kTreeTol * c.tol_scale);
        EXPECT_LE(rel_l2_error(grp, dfs_oct), 2 * kTreeTol * c.tol_scale);
      }
      // BVH accepts the full policy ladder.
      for (int pol = 0; pol < 3; ++pol) {
        SCOPED_TRACE(pol == 0   ? "bvh/seq"
                     : pol == 1 ? "bvh/par"
                                : "bvh/par_unseq");
        nbody::bvh::BVHStrategy<double, 3> bvh;
        const auto grp = pol == 0   ? forces_of(bvh, nbody::exec::seq, c.sys, gcfg)
                         : pol == 1 ? forces_of(bvh, par, c.sys, gcfg)
                                    : forces_of(bvh, par_unseq, c.sys, gcfg);
        EXPECT_LE(rel_l2_error(grp, ref), kTreeTol * c.tol_scale);
        EXPECT_LE(rel_l2_error(grp, dfs_bvh), 2 * kTreeTol * c.tol_scale);
      }
    }
  }
}

TEST(DifferentialSweep, GroupTraversalStableAcrossChaosSchedules) {
  nbody::core::SimConfig<double> cfg;
  cfg.group_size = 16;
  constexpr std::size_t kGroupSchedules = 4;
  for (std::uint64_t case_seed = 0; case_seed < 25; ++case_seed) {
    const nbody::prop::PropCase c = nbody::prop::make_case(case_seed);
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);
    const auto ref = nbody::prop::reference_forces(c.sys, cfg);

    std::vector<Vec3> first_oct, first_bvh;
    for (std::uint64_t k = 0; k < kGroupSchedules; ++k) {
      const std::uint64_t sched =
          nbody::support::hash_u64(0x6000 + case_seed * kGroupSchedules + k + 1);
      SCOPED_TRACE("schedule NBODY_CHAOS_SEED=" + std::to_string(sched));
      const backend saved = nbody::exec::default_backend();
      nbody::exec::set_default_backend(backend::chaos_permute);
      chaos::set_seed(sched);
      const auto oct = forces_of(nbody::octree::OctreeStrategy<double, 3>{}, par, c.sys, cfg);
      const auto bvh = forces_of(nbody::bvh::BVHStrategy<double, 3>{}, par_unseq, c.sys, cfg);
      nbody::exec::set_default_backend(saved);

      EXPECT_LE(rel_l2_error(oct, ref), kTreeTol * c.tol_scale);
      EXPECT_LE(rel_l2_error(bvh, ref), kTreeTol * c.tol_scale);
      // The grouped path writes disjoint outputs and builds lists in
      // thread-local scratch, so a permuted dispatch order can only perturb
      // results through the build's accumulation order — same bound as the
      // per-body sweep above, with the coincident-pile id-migration
      // carve-out (see prop::schedule_stability_tol).
      const double stable_tol =
          nbody::prop::schedule_stability_tol(c.name, c.tol_scale, kTreeTol, kAtomicTol);
      if (k == 0) {
        first_oct = oct;
        first_bvh = bvh;
      } else {
        EXPECT_LE(rel_l2_error(oct, first_oct), stable_tol);
        EXPECT_LE(rel_l2_error(bvh, first_bvh), stable_tol);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dual-tree differential suite: the dual traversal (simultaneous target/source
// walk, M2L into local expansions carried down by L2L, L2P per body) must sit
// in the same theta-derived truncation ball as the DFS and group walks on
// every generated system. Because the mutual MAC's source-side test is
// exactly the group walk's acceptance, the M2L set is a subset of the group
// walk's M2P accepts — the dual-vs-group difference is purely the local-
// expansion truncation, which vanishes as theta -> 0.
// ---------------------------------------------------------------------------

TEST(DifferentialSweep, DualTraversalMatchesReferenceOnEverySystem) {
  nbody::core::SimConfig<double> dcfg;  // theta = 0.5, effective group size 64
  dcfg.traversal = nbody::core::TraversalMode::dual;
  nbody::core::SimConfig<double> gcfg = dcfg;
  gcfg.traversal = nbody::core::TraversalMode::group;
  for (std::uint64_t case_seed = 0; case_seed < kSystems; ++case_seed) {
    const nbody::prop::PropCase c = nbody::prop::make_case(case_seed);
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);
    const auto ref = nbody::prop::reference_forces(c.sys, dcfg);
    const auto grp_oct =
        forces_of(nbody::octree::OctreeStrategy<double, 3>{}, par, c.sys, gcfg);
    const auto grp_bvh = forces_of(nbody::bvh::BVHStrategy<double, 3>{}, par_unseq, c.sys, gcfg);

    // Octree accepts seq and par callers (build needs starvation freedom).
    for (int pol = 0; pol < 2; ++pol) {
      SCOPED_TRACE(pol == 0 ? "octree/seq" : "octree/par");
      const auto dual = pol == 0 ? forces_of(nbody::octree::OctreeStrategy<double, 3>{},
                                             nbody::exec::seq, c.sys, dcfg)
                                 : forces_of(nbody::octree::OctreeStrategy<double, 3>{}, par,
                                             c.sys, dcfg);
      EXPECT_LE(rel_l2_error(dual, ref), kTreeTol * c.tol_scale);
      EXPECT_LE(rel_l2_error(dual, grp_oct), 2 * kTreeTol * c.tol_scale);
    }
    // BVH accepts the full policy ladder.
    for (int pol = 0; pol < 3; ++pol) {
      SCOPED_TRACE(pol == 0   ? "bvh/seq"
                   : pol == 1 ? "bvh/par"
                              : "bvh/par_unseq");
      nbody::bvh::BVHStrategy<double, 3> bvh;
      const auto dual = pol == 0   ? forces_of(bvh, nbody::exec::seq, c.sys, dcfg)
                        : pol == 1 ? forces_of(bvh, par, c.sys, dcfg)
                                   : forces_of(bvh, par_unseq, c.sys, dcfg);
      EXPECT_LE(rel_l2_error(dual, ref), kTreeTol * c.tol_scale);
      EXPECT_LE(rel_l2_error(dual, grp_bvh), 2 * kTreeTol * c.tol_scale);
    }
  }
}

TEST(DifferentialSweep, DualTraversalAgreesAcrossFourBackends) {
  nbody::core::SimConfig<double> dcfg;
  dcfg.traversal = nbody::core::TraversalMode::dual;
  for (std::uint64_t case_seed = 0; case_seed < 25; ++case_seed) {
    const nbody::prop::PropCase c = nbody::prop::make_case(case_seed);
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);
    const auto ref = nbody::prop::reference_forces(c.sys, dcfg);
    // Dispatch may only perturb the dual result through accumulation order
    // (disjoint leaf outputs, thread-local scratch), with the coincident-
    // pile id-migration carve-out shared with the group sweep.
    const double stable_tol =
        nbody::prop::schedule_stability_tol(c.name, c.tol_scale, kTreeTol, kAtomicTol);

    std::vector<Vec3> first_oct, first_bvh;
    bool have_first = false;
    for (backend b : {backend::static_chunk, backend::dynamic_chunk, backend::work_steal,
                      backend::chaos_permute}) {
      SCOPED_TRACE(std::string("backend=") + nbody::exec::backend_name(b));
      const backend saved = nbody::exec::default_backend();
      nbody::exec::set_default_backend(b);
      if (b == backend::chaos_permute)
        chaos::set_seed(nbody::support::hash_u64(0x9000 + case_seed));
      const auto oct = forces_of(nbody::octree::OctreeStrategy<double, 3>{}, par, c.sys, dcfg);
      const auto bvh = forces_of(nbody::bvh::BVHStrategy<double, 3>{}, par_unseq, c.sys, dcfg);
      nbody::exec::set_default_backend(saved);

      EXPECT_LE(rel_l2_error(oct, ref), kTreeTol * c.tol_scale);
      EXPECT_LE(rel_l2_error(bvh, ref), kTreeTol * c.tol_scale);
      if (!have_first) {
        first_oct = oct;
        first_bvh = bvh;
        have_first = true;
      } else {
        EXPECT_LE(rel_l2_error(oct, first_oct), stable_tol);
        EXPECT_LE(rel_l2_error(bvh, first_bvh), stable_tol);
      }
    }
  }
}

// theta -> 0 drives the mutual MAC's accept set (and each accept's
// truncation error) to zero, so the dual-vs-group gap must tighten
// monotonically. The group walk is the comparison baseline because the two
// paths share the same M2P/P2P batch kernels — the gap isolates exactly the
// local-expansion truncation.
TEST(DifferentialSweep, DualVsGroupConvergesAsThetaShrinks) {
  const System3 sys = nbody::workloads::plummer_sphere(512, 7);
  nbody::core::SimConfig<double> dcfg;
  dcfg.traversal = nbody::core::TraversalMode::dual;
  nbody::core::SimConfig<double> gcfg = dcfg;
  gcfg.traversal = nbody::core::TraversalMode::group;

  std::vector<double> oct_err, bvh_err;
  for (double theta : {0.8, 0.4, 0.2}) {
    SCOPED_TRACE("theta=" + std::to_string(theta));
    dcfg.theta = gcfg.theta = theta;
    const auto dual_oct =
        forces_of(nbody::octree::OctreeStrategy<double, 3>{}, par, sys, dcfg);
    const auto grp_oct = forces_of(nbody::octree::OctreeStrategy<double, 3>{}, par, sys, gcfg);
    oct_err.push_back(rel_l2_error(dual_oct, grp_oct));
    const auto dual_bvh = forces_of(nbody::bvh::BVHStrategy<double, 3>{}, par_unseq, sys, dcfg);
    const auto grp_bvh = forces_of(nbody::bvh::BVHStrategy<double, 3>{}, par_unseq, sys, gcfg);
    bvh_err.push_back(rel_l2_error(dual_bvh, grp_bvh));
  }
  // theta = 0.8 must actually exercise M2L (a zero gap would make the
  // convergence assertion vacuous), and each halving must not widen the gap.
  EXPECT_GT(oct_err[0], 0.0);
  EXPECT_GT(bvh_err[0], 0.0);
  for (std::size_t i = 1; i < oct_err.size(); ++i) {
    EXPECT_LE(oct_err[i], oct_err[i - 1] + 1e-13);
    EXPECT_LE(bvh_err[i], bvh_err[i - 1] + 1e-13);
  }
  EXPECT_LT(oct_err.back(), oct_err.front());
  EXPECT_LT(bvh_err.back(), bvh_err.front());
}

// ---------------------------------------------------------------------------
// Tree-maintenance differential suite: the refit and incremental update modes
// are approximations of the per-step rebuild, so on every scheduling backend
// (static, dynamic, work-steal, chaos-permute) a short trajectory under
// either mode must stay inside the amortization ball of the rebuild-every-
// step trajectory. The coherently drifting cluster is the regime the
// incremental path is built for: the bulk translation relocates a small
// fraction of bodies per step while the cluster's shape barely changes.
// ---------------------------------------------------------------------------

template <class Strategy, class Policy>
System3 run_steps(const System3& initial, const nbody::core::SimConfig<double>& cfg,
                  typename Strategy::Options opts, Policy policy, std::size_t steps) {
  nbody::core::Simulation<double, 3, Strategy> sim(initial, cfg, Strategy(opts));
  sim.run(policy, steps);
  return sim.system();
}

TEST(DifferentialSweep, RefitAndIncrementalTrackRebuildOnEveryBackend) {
  using Oct = nbody::octree::OctreeStrategy<double, 3>;
  using Bvh = nbody::bvh::BVHStrategy<double, 3>;
  const System3 initial = nbody::workloads::drifting_cluster(600, 21);
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 5e-4;
  const std::size_t steps = 12;
  // Same amortization ball as TreeReuse.*StaysCloseToRebuilt over a
  // comparable horizon: the modes differ only in when geometry is refreshed.
  constexpr double kAmortTol = 1e-2;

  for (backend b : {backend::static_chunk, backend::dynamic_chunk, backend::work_steal,
                    backend::chaos_permute}) {
    SCOPED_TRACE(std::string("backend=") + nbody::exec::backend_name(b));
    const backend saved = nbody::exec::default_backend();
    nbody::exec::set_default_backend(b);
    if (b == backend::chaos_permute) chaos::set_seed(1234);

    typename Oct::Options oct_rebuild;  // default: rebuild every step
    const System3 oct_base = run_steps<Oct>(initial, cfg, oct_rebuild, par, steps);
    for (const char* spec : {"refit:4", "incremental"}) {
      SCOPED_TRACE(std::string("octree --tree-update=") + spec);
      typename Oct::Options o;
      o.update = nbody::core::TreeUpdatePolicy::parse(spec, "sweep");
      const System3 got = run_steps<Oct>(initial, cfg, o, par, steps);
      EXPECT_LT(nbody::core::l2_position_error(got, oct_base), kAmortTol);
    }

    typename Bvh::Options bvh_rebuild;
    const System3 bvh_base = run_steps<Bvh>(initial, cfg, bvh_rebuild, par_unseq, steps);
    for (const char* spec : {"refit:4", "incremental"}) {
      SCOPED_TRACE(std::string("bvh --tree-update=") + spec);
      typename Bvh::Options o;
      o.update = nbody::core::TreeUpdatePolicy::parse(spec, "sweep");
      const System3 got = run_steps<Bvh>(initial, cfg, o, par_unseq, steps);
      EXPECT_LT(nbody::core::l2_position_error(got, bvh_base), kAmortTol);
    }
    nbody::exec::set_default_backend(saved);
  }
}

// ---------------------------------------------------------------------------
// Work-steal (deque) backend sweep: the topology-aware steal dispatcher must
// land on the same physics as the static/dynamic/chaos dispatchers exercised
// above, over the same 50 generated systems. Steal scheduling is
// nondeterministic between runs (which rank executes which chunk depends on
// timing), so the pinned invariant is the same one the chaos sweep uses:
// dispatch may perturb results only through FP accumulation order, never
// through the answer.
// ---------------------------------------------------------------------------

struct StealBackendScope {
  StealBackendScope() : saved(nbody::exec::default_backend()) {
    nbody::exec::set_default_backend(backend::work_steal);
  }
  ~StealBackendScope() { nbody::exec::set_default_backend(saved); }
  backend saved;
};

TEST(DifferentialSweep, StealBackendAgreesAcrossFiftySystems) {
  StealBackendScope scope;
  nbody::core::SimConfig<double> cfg;
  for (std::uint64_t case_seed = 0; case_seed < kSystems; ++case_seed) {
    const nbody::prop::PropCase c = nbody::prop::make_case(case_seed);
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);
    const auto ref = nbody::prop::reference_forces(c.sys, cfg);

    Forces f;
    f.octree = forces_of(nbody::octree::OctreeStrategy<double, 3>{}, par, c.sys, cfg);
    f.bvh = forces_of(nbody::bvh::BVHStrategy<double, 3>{}, par_unseq, c.sys, cfg);
    f.allpairs = forces_of(nbody::allpairs::AllPairs<double, 3>{}, par_unseq, c.sys, cfg);
    f.allpairs_col = forces_of(nbody::allpairs::AllPairsCol<double, 3>{}, par, c.sys, cfg);

    EXPECT_LE(rel_l2_error(f.allpairs, ref), kExactTol * c.tol_scale);
    EXPECT_LE(rel_l2_error(f.allpairs_col, ref), kAtomicTol * c.tol_scale);
    EXPECT_LE(rel_l2_error(f.octree, ref), kTreeTol * c.tol_scale);
    EXPECT_LE(rel_l2_error(f.bvh, ref), kTreeTol * c.tol_scale);

    // Run-to-run stability: a second pass re-steals differently, but
    // disjoint per-body outputs mean all-pairs stays bitwise identical and
    // the trees move only within accumulation rounding.
    const auto ap2 = forces_of(nbody::allpairs::AllPairs<double, 3>{}, par_unseq, c.sys, cfg);
    EXPECT_EQ(nbody::prop::max_abs_diff(ap2, f.allpairs), 0.0)
        << "all-pairs must be bitwise steal-schedule-invariant";
    const auto oct2 = forces_of(nbody::octree::OctreeStrategy<double, 3>{}, par, c.sys, cfg);
    EXPECT_LE(rel_l2_error(oct2, f.octree), kAtomicTol * c.tol_scale);
  }
}

TEST(Metamorphic, StealBackendKeepsMetamorphicInvariants) {
  StealBackendScope scope;
  nbody::core::SimConfig<double> cfg;
  for (std::uint64_t case_seed = 0; case_seed < 12; ++case_seed) {
    const auto c = nbody::prop::make_case(case_seed);
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);

    // Translation equivariance (pairwise differences absorb the shift).
    const Vec3 t{13.5, -7.25, 3.0};
    const System3 moved = nbody::prop::translated(c.sys, t);
    nbody::allpairs::AllPairs<double, 3> ap;
    EXPECT_LE(rel_l2_error(forces_of(ap, par, moved, cfg), forces_of(ap, par, c.sys, cfg)),
              1e-8);

    // Body-permutation invariance keyed on stable ids.
    const System3 shuffled = nbody::prop::permuted(c.sys, case_seed + 4000);
    EXPECT_LE(rel_l2_error(forces_of(ap, par, shuffled, cfg), forces_of(ap, par, c.sys, cfg)),
              kExactTol * c.tol_scale);
    nbody::octree::OctreeStrategy<double, 3> oct;
    EXPECT_LE(
        rel_l2_error(forces_of(oct, par, shuffled, cfg), forces_of(oct, par, c.sys, cfg)),
        1e-7 * c.tol_scale);

    // Momentum conservation (Newton's third law under truncation).
    if (c.sys.size() >= 2) {
      EXPECT_LE(nbody::prop::momentum_residual(c.sys, forces_of(oct, par, c.sys, cfg)),
                kTreeTol * c.tol_scale);
    }
  }
}

// run_guarded's checkpoint/restore ladder composed with the steal dispatcher
// and incremental tree maintenance: an injected worker hang is reclaimed by
// the step deadline, the checkpoint restored, and the finished trajectory
// still sits in the amortization ball of an unfaulted rebuild-every-step run.
TEST(DifferentialSweep, StealBackendGuardedRestoreWithIncrementalUpdate) {
  using Oct = nbody::octree::OctreeStrategy<double, 3>;
  StealBackendScope scope;
  const System3 initial = nbody::workloads::drifting_cluster(600, 33);
  nbody::core::SimConfig<double> cfg;
  cfg.dt = 5e-4;
  const std::size_t steps = 10;

  typename Oct::Options rebuild_opts;  // rebuild every step, no faults
  const System3 base = run_steps<Oct>(initial, cfg, rebuild_opts, par, steps);

  typename Oct::Options inc_opts;
  inc_opts.update = nbody::core::TreeUpdatePolicy::parse("incremental", "steal-sweep");
  nbody::core::Simulation<double, 3, Oct> sim(initial, cfg, Oct(inc_opts));
  nbody::support::arm_fault(nbody::support::FaultSite::chunk_hang, {1.0, /*seed=*/0,
                                                                    /*max_fires=*/1});
  nbody::core::GuardedOptions<double> gopts;
  gopts.checkpoint_every = 2;
  gopts.max_retries = 4;
  gopts.step_deadline_ms = 150;
  const auto rep = sim.run_guarded(par, steps, gopts);
  nbody::support::disarm_all_faults();
  EXPECT_EQ(rep.steps_completed, steps);
  EXPECT_GE(rep.restores, 1u) << "the injected hang never forced a restore";
  EXPECT_LT(nbody::core::l2_position_error(sim.system(), base), 1e-2);
}

TEST(Metamorphic, TranslationEquivariance) {
  nbody::core::SimConfig<double> cfg;
  for (std::uint64_t case_seed = 0; case_seed < 12; ++case_seed) {
    const auto c = nbody::prop::make_case(case_seed);
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);
    const Vec3 t{13.5, -7.25, 3.0};
    const System3 moved = nbody::prop::translated(c.sys, t);

    nbody::allpairs::AllPairs<double, 3> ap;
    // Pairwise differences absorb the translation up to rounding of x + t.
    EXPECT_LE(rel_l2_error(forces_of(ap, par, moved, cfg), forces_of(ap, par, c.sys, cfg)),
              1e-8);
    // The tree root shifts with the bodies, so acceptance decisions can flip
    // near the theta boundary: both results sit in the reference's kTreeTol
    // ball, hence within twice that of each other.
    nbody::octree::OctreeStrategy<double, 3> oct;
    EXPECT_LE(rel_l2_error(forces_of(oct, par, moved, cfg), forces_of(oct, par, c.sys, cfg)),
              2 * kTreeTol * c.tol_scale);
  }
}

TEST(Metamorphic, RotationEquivariance) {
  nbody::core::SimConfig<double> cfg;
  for (std::uint64_t case_seed = 0; case_seed < 12; ++case_seed) {
    const auto c = nbody::prop::make_case(case_seed);
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);
    const System3 rot = nbody::prop::rotated90_z(c.sys);

    nbody::allpairs::AllPairs<double, 3> ap;
    // (x,y,z) -> (-y,x,z) is exact in FP; only summation order inside the
    // kernel's norm can differ.
    EXPECT_LE(rel_l2_error(forces_of(ap, par, rot, cfg),
                           nbody::prop::rotated90_z(forces_of(ap, par, c.sys, cfg))),
              1e-12);
    nbody::bvh::BVHStrategy<double, 3> bvh;
    EXPECT_LE(rel_l2_error(forces_of(bvh, par_unseq, rot, cfg),
                           nbody::prop::rotated90_z(forces_of(bvh, par_unseq, c.sys, cfg))),
              2 * kTreeTol * c.tol_scale);
  }
}

TEST(Metamorphic, BodyPermutationInvariance) {
  nbody::core::SimConfig<double> cfg;
  for (std::uint64_t case_seed = 0; case_seed < 12; ++case_seed) {
    const auto c = nbody::prop::make_case(case_seed);
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);
    const System3 shuffled = nbody::prop::permuted(c.sys, case_seed + 1000);

    // Stable ids key the comparison, so identical physics must come back.
    nbody::allpairs::AllPairs<double, 3> ap;
    EXPECT_LE(rel_l2_error(forces_of(ap, par, shuffled, cfg), forces_of(ap, par, c.sys, cfg)),
              kExactTol * c.tol_scale);
    // The octree's shape depends on positions only; storage order merely
    // reorders insertions and accumulation.
    nbody::octree::OctreeStrategy<double, 3> oct;
    EXPECT_LE(
        rel_l2_error(forces_of(oct, par, shuffled, cfg), forces_of(oct, par, c.sys, cfg)),
        1e-7 * c.tol_scale);
  }
}

TEST(Metamorphic, MomentumConservation) {
  nbody::core::SimConfig<double> cfg;
  for (std::uint64_t case_seed = 0; case_seed < 12; ++case_seed) {
    const auto c = nbody::prop::make_case(case_seed);
    if (c.sys.size() < 2) continue;
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);

    // Newton's third law: exact for symmetric pairwise kernels (up to
    // accumulation rounding), O(theta^2) for Barnes-Hut truncation.
    nbody::allpairs::AllPairsCol<double, 3> col;
    EXPECT_LE(nbody::prop::momentum_residual(c.sys, forces_of(col, par, c.sys, cfg)), 1e-10);
    nbody::octree::OctreeStrategy<double, 3> oct;
    EXPECT_LE(nbody::prop::momentum_residual(c.sys, forces_of(oct, par, c.sys, cfg)),
              kTreeTol * c.tol_scale);
  }
}

}  // namespace
