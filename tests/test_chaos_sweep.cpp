// Differential + metamorphic property sweep (CTest labels: chaos, slow).
//
// 50 randomized systems (tests/prop/generators.hpp: clustered, uniform,
// degenerate — coincident bodies, N = 0/1/2, 18-decade mass ratios) are each
// evaluated under 8 seed-permuted chaos schedules, asserting
//
//   octree  ≡  BVH  ≡  all-pairs  ≡  exact reference
//
// within analytic tolerance, plus metamorphic invariants (translation /
// rotation equivariance, body-permutation invariance, momentum conservation).
// Every assertion is scoped with the case name and NBODY_CHAOS_SEED so a
// failing (system, schedule) pair replays from the printed seeds alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "allpairs/allpairs.hpp"
#include "bvh/strategy.hpp"
#include "exec/algorithms.hpp"
#include "exec/chaos/chaos.hpp"
#include "octree/strategy.hpp"
#include "prop/generators.hpp"
#include "prop/invariants.hpp"
#include "support/rng.hpp"

namespace {

namespace chaos = nbody::exec::chaos;
using nbody::exec::backend;
using nbody::exec::par;
using nbody::exec::par_unseq;
using nbody::prop::forces_of;
using nbody::prop::rel_l2_error;
using nbody::prop::System3;
using nbody::prop::Vec3;

const bool g_thread_env = [] {
  setenv("NBODY_THREADS", "4", /*overwrite=*/0);
  return true;
}();

constexpr std::size_t kSystems = 50;
constexpr std::size_t kSchedules = 8;

// Base tolerances; each case's tol_scale widens the tree bounds for
// degenerate geometries (see generators.hpp).
constexpr double kExactTol = 1e-10;   // same kernel, different summation order
constexpr double kAtomicTol = 1e-9;   // atomic scatter accumulation order
// Barnes-Hut truncation at theta = 0.5. The ball is sized for the worst of
// the small systems (few bodies average the per-body error down less), not
// the typical ~1e-2 of the larger ones.
constexpr double kTreeTol = 0.08;

struct Forces {
  std::vector<Vec3> octree, bvh, allpairs, allpairs_col;
};

Forces forces_under_schedule(const System3& sys, const nbody::core::SimConfig<double>& cfg,
                             std::uint64_t schedule_seed) {
  const backend saved = nbody::exec::default_backend();
  nbody::exec::set_default_backend(backend::chaos_permute);
  chaos::set_seed(schedule_seed);
  Forces f;
  f.octree = forces_of(nbody::octree::OctreeStrategy<double, 3>{}, par, sys, cfg);
  f.bvh = forces_of(nbody::bvh::BVHStrategy<double, 3>{}, par_unseq, sys, cfg);
  f.allpairs = forces_of(nbody::allpairs::AllPairs<double, 3>{}, par_unseq, sys, cfg);
  f.allpairs_col = forces_of(nbody::allpairs::AllPairsCol<double, 3>{}, par, sys, cfg);
  nbody::exec::set_default_backend(saved);
  return f;
}

TEST(DifferentialSweep, AllStrategiesAgreeAcrossFiftySystemsAndEightSchedules) {
  nbody::core::SimConfig<double> cfg;  // theta = 0.5, softened
  for (std::uint64_t case_seed = 0; case_seed < kSystems; ++case_seed) {
    const nbody::prop::PropCase c = nbody::prop::make_case(case_seed);
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);
    const auto ref = nbody::prop::reference_forces(c.sys, cfg);

    Forces first{};
    for (std::uint64_t k = 0; k < kSchedules; ++k) {
      const std::uint64_t sched = nbody::support::hash_u64(case_seed * kSchedules + k + 1);
      const Forces f = forces_under_schedule(c.sys, cfg, sched);
      SCOPED_TRACE("schedule NBODY_CHAOS_SEED=" + std::to_string(sched));

      // Differential: every strategy within its analytic ball of the exact sum.
      EXPECT_LE(rel_l2_error(f.allpairs, ref), kExactTol * c.tol_scale);
      EXPECT_LE(rel_l2_error(f.allpairs_col, ref), kAtomicTol * c.tol_scale);
      EXPECT_LE(rel_l2_error(f.octree, ref), kTreeTol * c.tol_scale);
      EXPECT_LE(rel_l2_error(f.bvh, ref), kTreeTol * c.tol_scale);

      // Schedule invariance: the dispatch permutation may only perturb
      // results through FP accumulation order, never through the answer.
      if (k == 0) {
        first = f;
      } else {
        EXPECT_EQ(nbody::prop::max_abs_diff(f.allpairs, first.allpairs), 0.0)
            << "all-pairs must be bitwise schedule-invariant";
        EXPECT_LE(rel_l2_error(f.allpairs_col, first.allpairs_col), kAtomicTol * c.tol_scale);
        EXPECT_LE(rel_l2_error(f.octree, first.octree), kAtomicTol * c.tol_scale);
        EXPECT_LE(rel_l2_error(f.bvh, first.bvh), kAtomicTol * c.tol_scale);
      }
    }
  }
}

TEST(Metamorphic, TranslationEquivariance) {
  nbody::core::SimConfig<double> cfg;
  for (std::uint64_t case_seed = 0; case_seed < 12; ++case_seed) {
    const auto c = nbody::prop::make_case(case_seed);
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);
    const Vec3 t{13.5, -7.25, 3.0};
    const System3 moved = nbody::prop::translated(c.sys, t);

    nbody::allpairs::AllPairs<double, 3> ap;
    // Pairwise differences absorb the translation up to rounding of x + t.
    EXPECT_LE(rel_l2_error(forces_of(ap, par, moved, cfg), forces_of(ap, par, c.sys, cfg)),
              1e-8);
    // The tree root shifts with the bodies, so acceptance decisions can flip
    // near the theta boundary: both results sit in the reference's kTreeTol
    // ball, hence within twice that of each other.
    nbody::octree::OctreeStrategy<double, 3> oct;
    EXPECT_LE(rel_l2_error(forces_of(oct, par, moved, cfg), forces_of(oct, par, c.sys, cfg)),
              2 * kTreeTol * c.tol_scale);
  }
}

TEST(Metamorphic, RotationEquivariance) {
  nbody::core::SimConfig<double> cfg;
  for (std::uint64_t case_seed = 0; case_seed < 12; ++case_seed) {
    const auto c = nbody::prop::make_case(case_seed);
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);
    const System3 rot = nbody::prop::rotated90_z(c.sys);

    nbody::allpairs::AllPairs<double, 3> ap;
    // (x,y,z) -> (-y,x,z) is exact in FP; only summation order inside the
    // kernel's norm can differ.
    EXPECT_LE(rel_l2_error(forces_of(ap, par, rot, cfg),
                           nbody::prop::rotated90_z(forces_of(ap, par, c.sys, cfg))),
              1e-12);
    nbody::bvh::BVHStrategy<double, 3> bvh;
    EXPECT_LE(rel_l2_error(forces_of(bvh, par_unseq, rot, cfg),
                           nbody::prop::rotated90_z(forces_of(bvh, par_unseq, c.sys, cfg))),
              2 * kTreeTol * c.tol_scale);
  }
}

TEST(Metamorphic, BodyPermutationInvariance) {
  nbody::core::SimConfig<double> cfg;
  for (std::uint64_t case_seed = 0; case_seed < 12; ++case_seed) {
    const auto c = nbody::prop::make_case(case_seed);
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);
    const System3 shuffled = nbody::prop::permuted(c.sys, case_seed + 1000);

    // Stable ids key the comparison, so identical physics must come back.
    nbody::allpairs::AllPairs<double, 3> ap;
    EXPECT_LE(rel_l2_error(forces_of(ap, par, shuffled, cfg), forces_of(ap, par, c.sys, cfg)),
              kExactTol * c.tol_scale);
    // The octree's shape depends on positions only; storage order merely
    // reorders insertions and accumulation.
    nbody::octree::OctreeStrategy<double, 3> oct;
    EXPECT_LE(
        rel_l2_error(forces_of(oct, par, shuffled, cfg), forces_of(oct, par, c.sys, cfg)),
        1e-7 * c.tol_scale);
  }
}

TEST(Metamorphic, MomentumConservation) {
  nbody::core::SimConfig<double> cfg;
  for (std::uint64_t case_seed = 0; case_seed < 12; ++case_seed) {
    const auto c = nbody::prop::make_case(case_seed);
    if (c.sys.size() < 2) continue;
    SCOPED_TRACE("case_seed=" + std::to_string(case_seed) + " " + c.name);

    // Newton's third law: exact for symmetric pairwise kernels (up to
    // accumulation rounding), O(theta^2) for Barnes-Hut truncation.
    nbody::allpairs::AllPairsCol<double, 3> col;
    EXPECT_LE(nbody::prop::momentum_residual(c.sys, forces_of(col, par, c.sys, cfg)), 1e-10);
    nbody::octree::OctreeStrategy<double, 3> oct;
    EXPECT_LE(nbody::prop::momentum_residual(c.sys, forces_of(oct, par, c.sys, cfg)),
              kTreeTol * c.tol_scale);
  }
}

}  // namespace
