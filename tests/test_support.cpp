// Unit tests for src/support: env parsing, timers, RNG determinism,
// compensated summation, function_ref.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <thread>

#include "support/env.hpp"
#include "support/function_ref.hpp"
#include "support/kahan.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

using namespace nbody::support;

// ---------------------------------------------------------------- env

TEST(Env, UnsetReturnsFallback) {
  ::unsetenv("NBODY_TEST_UNSET");
  EXPECT_EQ(env_size("NBODY_TEST_UNSET", 7), 7u);
  EXPECT_DOUBLE_EQ(env_double("NBODY_TEST_UNSET", 1.5), 1.5);
  EXPECT_FALSE(env_flag("NBODY_TEST_UNSET"));
  EXPECT_TRUE(env_flag("NBODY_TEST_UNSET", true));
  EXPECT_FALSE(env_string("NBODY_TEST_UNSET").has_value());
}

TEST(Env, ParsesInteger) {
  ::setenv("NBODY_TEST_INT", "42", 1);
  EXPECT_EQ(env_size("NBODY_TEST_INT", 0), 42u);
  ::unsetenv("NBODY_TEST_INT");
}

TEST(Env, ParsesDouble) {
  ::setenv("NBODY_TEST_DBL", "2.25", 1);
  EXPECT_DOUBLE_EQ(env_double("NBODY_TEST_DBL", 0.0), 2.25);
  ::unsetenv("NBODY_TEST_DBL");
}

TEST(Env, RejectsGarbageInteger) {
  ::setenv("NBODY_TEST_BAD", "12abc", 1);
  EXPECT_THROW(env_size("NBODY_TEST_BAD", 0), std::invalid_argument);
  ::setenv("NBODY_TEST_BAD", "abc", 1);
  EXPECT_THROW(env_size("NBODY_TEST_BAD", 0), std::invalid_argument);
  ::unsetenv("NBODY_TEST_BAD");
}

TEST(Env, FlagSpellings) {
  for (const char* v : {"1", "true", "yes", "on"}) {
    ::setenv("NBODY_TEST_FLAG", v, 1);
    EXPECT_TRUE(env_flag("NBODY_TEST_FLAG")) << v;
  }
  for (const char* v : {"0", "false", "off", "banana"}) {
    ::setenv("NBODY_TEST_FLAG", v, 1);
    EXPECT_FALSE(env_flag("NBODY_TEST_FLAG")) << v;
  }
  ::unsetenv("NBODY_TEST_FLAG");
}

TEST(Env, EmptyStringIsUnset) {
  ::setenv("NBODY_TEST_EMPTY", "", 1);
  EXPECT_EQ(env_size("NBODY_TEST_EMPTY", 9), 9u);
  ::unsetenv("NBODY_TEST_EMPTY");
}

// ---------------------------------------------------------------- timer

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double s = w.seconds();
  EXPECT_GE(s, 0.005);
  EXPECT_LT(s, 5.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  w.reset();
  EXPECT_LT(w.seconds(), 0.005);
}

TEST(PhaseTimer, AccumulatesNamedPhases) {
  PhaseTimer t;
  t.add("build", 1.0);
  t.add("force", 2.0);
  t.add("build", 0.5);
  EXPECT_DOUBLE_EQ(t.seconds("build"), 1.5);
  EXPECT_DOUBLE_EQ(t.seconds("force"), 2.0);
  EXPECT_DOUBLE_EQ(t.seconds("missing"), 0.0);
  EXPECT_DOUBLE_EQ(t.total(), 3.5);
}

TEST(PhaseTimer, NamesInFirstUseOrder) {
  PhaseTimer t;
  t.add("b", 1.0);
  t.add("a", 1.0);
  t.add("b", 1.0);
  ASSERT_EQ(t.names().size(), 2u);
  EXPECT_EQ(t.names()[0], "b");
  EXPECT_EQ(t.names()[1], "a");
}

TEST(PhaseTimer, ScopeRecordsInterval) {
  PhaseTimer t;
  {
    auto s = t.scope("sleep");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(t.seconds("sleep"), 0.0);
}

TEST(PhaseTimer, MaybeWithNullIsNoop) {
  auto s = PhaseTimer::maybe(nullptr, "x");
  EXPECT_FALSE(s.has_value());
}

TEST(PhaseTimer, ClearResets) {
  PhaseTimer t;
  t.add("a", 1.0);
  t.clear();
  EXPECT_TRUE(t.names().empty());
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

// ---------------------------------------------------------------- rng

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMixSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministic) {
  Xoshiro256ss a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  Xoshiro256ss r(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundedRange) {
  Xoshiro256ss r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Xoshiro256ss r(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsAreSane) {
  Xoshiro256ss r(23);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, HashU64Differs) {
  EXPECT_NE(hash_u64(0), hash_u64(1));
  EXPECT_EQ(hash_u64(7), hash_u64(7));
}

// ---------------------------------------------------------------- kahan

TEST(Kahan, SumsExactly) {
  KahanSum s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.value(), 3.0);
}

TEST(Kahan, RecoversSmallTerms) {
  // 1e16 + 1 (x1000) - 1e16 == 1000 exactly with compensation; naive sum
  // loses every +1.
  KahanSum s(1e16);
  for (int i = 0; i < 1000; ++i) s.add(1.0);
  s.add(-1e16);
  EXPECT_DOUBLE_EQ(s.value(), 1000.0);

  double naive = 1e16;
  for (int i = 0; i < 1000; ++i) naive += 1.0;
  naive -= 1e16;
  EXPECT_NE(naive, 1000.0);  // demonstrates why compensation matters
}

TEST(Kahan, NeumaierHandlesLargeAddend) {
  // Classic case plain Kahan fails: the addend dwarfs the running sum.
  KahanSum s;
  s.add(1.0);
  s.add(1e100);
  s.add(1.0);
  s.add(-1e100);
  EXPECT_DOUBLE_EQ(s.value(), 2.0);
}

TEST(Kahan, MergeCombinesPartials) {
  KahanSum a, b;
  for (int i = 0; i < 500; ++i) a.add(0.1);
  for (int i = 0; i < 500; ++i) b.add(0.1);
  a.merge(b);
  EXPECT_NEAR(a.value(), 100.0, 1e-12);
}

// ---------------------------------------------------------------- function_ref

TEST(FunctionRef, CallsLambda) {
  int hits = 0;
  auto fn = [&](int v) { hits += v; };
  nbody::support::function_ref<void(int)> ref(fn);
  ref(3);
  ref(4);
  EXPECT_EQ(hits, 7);
}

TEST(FunctionRef, ReturnsValue) {
  auto fn = [](int a, int b) { return a * b; };
  nbody::support::function_ref<int(int, int)> ref(fn);
  EXPECT_EQ(ref(6, 7), 42);
}

}  // namespace
